// Quickstart: simulate the paper's 18-node office deployment running plain
// LWB at a few retransmission settings, with and without JamLab-style
// interference, and print reliability / radio-on time per configuration.
//
//   ./examples/quickstart [--rounds 100] [--duty 0.30] [--seed 1]
//
// This touches the main public surfaces: topology factories, interference
// fields, DimmerNetwork with a StaticController, and the round metrics.
#include <iostream>
#include <memory>

#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "phy/topology.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dimmer;
  util::Cli cli(argc, argv);
  const int rounds = static_cast<int>(cli.get_int("rounds", 100));
  const double duty = cli.get_double("duty", 0.30);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  phy::Topology topo = phy::make_office18_topology();
  auto hops = topo.hop_counts(0);
  int max_hop = 0;
  for (int h : hops) max_hop = std::max(max_hop, h);
  std::cout << "18-node office topology, diameter " << max_hop << " hops\n\n";

  std::vector<phy::NodeId> sources;
  for (int i = 1; i < topo.size(); ++i) sources.push_back(i);
  sources.push_back(0);

  util::Table table({"interference", "N_TX", "reliability", "radio-on [ms]",
                     "desync nodes"});
  for (bool jam : {false, true}) {
    phy::InterferenceField field;
    if (jam) core::add_static_jamming(field, topo, duty);
    for (int n_tx : {1, 3, 5, 8}) {
      core::ProtocolConfig cfg;
      cfg.initial_n_tx = n_tx;
      core::DimmerNetwork net(topo, field, cfg,
                              std::make_unique<core::StaticController>(n_tx),
                              /*coordinator=*/0, seed);
      util::RunningStats rel, radio;
      int desync = 0;
      for (int r = 0; r < rounds; ++r) {
        core::RoundStats rs = net.run_round(sources);
        rel.add(rs.reliability);
        radio.add(rs.radio_on_ms);
        desync = std::max(desync, rs.desynchronized);
      }
      table.add_row({jam ? util::Table::pct(duty, 0) + " jamming" : "none",
                     std::to_string(n_tx), util::Table::pct(rel.mean()),
                     util::Table::num(radio.mean()), std::to_string(desync)});
    }
  }
  table.print(std::cout);
  std::cout << "\nHigher N_TX buys reliability under interference at an"
               " energy cost —\nthe trade-off Dimmer's DQN learns to navigate"
               " automatically.\n";
  return 0;
}
