// Minimal exp::Runner walkthrough: a seed sweep of static LWB at several
// N_TX settings on the office topology, run on DIMMER_JOBS workers, printed
// as a table and written to BENCH_example_sweep.json.
//
//   DIMMER_JOBS=8 ./build/examples/sweep
//
// Results are bit-identical for every DIMMER_JOBS value: each trial owns
// its topology/network, and aggregation happens in spec order after the
// worker pool drains.
#include <iostream>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "phy/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/wallclock.hpp"

using namespace dimmer;

int main() {
  const int n_tx_values[] = {1, 2, 3, 5, 8};
  const int seeds_per_setting = 4;
  const int rounds = 60;  // 4 minutes at 4 s rounds

  // One spec per (N_TX, seed) cell.
  std::vector<exp::TrialSpec> specs;
  for (int n : n_tx_values) {
    for (int s = 0; s < seeds_per_setting; ++s) {
      exp::TrialSpec spec;
      spec.scenario = "n_tx=" + std::to_string(n);
      spec.seed = util::hash_u64(0x5EEDULL, n, s);
      spec.params["n_tx"] = n;
      specs.push_back(std::move(spec));
    }
  }

  // The trial function: builds everything it touches, returns metrics.
  auto trial = [&](const exp::TrialSpec& spec, util::Pcg32&) {
    phy::Topology topo = phy::make_office18_topology();
    phy::InterferenceField field;
    core::add_office_ambient(field, topo);
    core::add_static_jamming(field, topo, 0.15);

    core::ProtocolConfig cfg;
    cfg.start_time = sim::hours(10);
    core::DimmerNetwork net(
        topo, field, cfg,
        std::make_unique<core::StaticController>(
            static_cast<int>(spec.params.at("n_tx"))),
        0, spec.seed);
    std::vector<phy::NodeId> sources;
    for (phy::NodeId i = 1; i < topo.size(); ++i) sources.push_back(i);
    sources.push_back(0);

    util::RunningStats rel, radio;
    for (int r = 0; r < rounds; ++r) {
      core::RoundStats rs = net.run_round(sources);
      rel.add(rs.reliability);
      radio.add(rs.radio_on_ms);
    }
    exp::TrialResult res;
    res.metrics["reliability"] = rel.mean();
    res.metrics["radio_on_ms"] = radio.mean();
    res.stats["reliability"] = rel;
    return res;
  };

  exp::Runner runner;
  std::cout << "running " << specs.size() << " trials on " << runner.jobs()
            << " worker(s)...\n\n";
  util::Stopwatch sw;
  std::vector<exp::Trial> trials = runner.run(std::move(specs), trial);
  double wall = sw.seconds();

  util::Table table(
      {"N_TX", "reliability", "stddev", "radio-on [ms]", "rounds"});
  for (int n : n_tx_values) {
    std::string scenario = "n_tx=" + std::to_string(n);
    util::RunningStats rel = exp::metric_stats(trials, scenario, "reliability");
    util::RunningStats radio =
        exp::metric_stats(trials, scenario, "radio_on_ms");
    util::RunningStats merged = exp::merged_stat(trials, scenario,
                                                 "reliability");
    table.add_row({std::to_string(n), util::Table::pct(rel.mean(), 2),
                   util::Table::pct(rel.stddev(), 2),
                   util::Table::num(radio.mean()),
                   std::to_string(merged.count())});
  }
  table.print(std::cout);
  std::cout << "\n15% jamming: reliability climbs with N_TX while radio-on"
               " cost grows — the trade-off Dimmer's DQN navigates.\n";
  exp::write_json("example_sweep", trials,
                  {.jobs = runner.jobs(), .wall_seconds = wall}, &std::cout);
  return 0;
}
