// LWB stream scheduling demo: heterogeneous periodic streams served by the
// centralized scheduler over a Dimmer network, with a mid-run membership
// change and a crash fault.
//
//   ./examples/streams [--minutes 3] [--seed 4]
#include <iostream>
#include <memory>

#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "lwb/scheduler.hpp"
#include "phy/energy.hpp"
#include "phy/topology.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dimmer;
  util::Cli cli(argc, argv);
  const long minutes = cli.get_int("minutes", 3);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));

  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::add_office_ambient(field, topo);

  core::ProtocolConfig cfg;
  cfg.round_period = sim::seconds(1);
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<core::StaticController>(3), 0,
                          seed);

  // Streams: fast telemetry from 3 nodes, slow sensing from 5 nodes.
  lwb::Scheduler scheduler;
  for (phy::NodeId s : {3, 7, 12})
    scheduler.add_stream(s, sim::seconds(1), net.now());
  std::vector<std::size_t> slow_ids;
  for (phy::NodeId s : {2, 6, 9, 14, 16})
    slow_ids.push_back(scheduler.add_stream(s, sim::seconds(5), net.now()));

  const long rounds = minutes * 60;
  long slots_served = 0, delivered = 0;
  util::RunningStats duty;
  for (long r = 0; r < rounds; ++r) {
    if (r == rounds / 3) {
      std::cout << "[t=" << r << "s] node 16's stream leaves the bus\n";
      scheduler.remove_stream(slow_ids.back());
    }
    if (r == rounds / 2) {
      std::cout << "[t=" << r << "s] node 9 crashes (stays scheduled)\n";
      net.set_node_failed(9, true);
    }
    auto slots = scheduler.schedule_round(net.now(), /*max_slots=*/6);
    // Empty rounds still run their control slot (sync maintenance).
    core::RoundStats rs = net.run_round(slots);
    if (slots.empty()) continue;
    slots_served += static_cast<long>(slots.size());
    for (bool got : rs.sink_received) delivered += got;
    duty.add(static_cast<double>(rs.total_radio_on_us) /
             (topo.size() * static_cast<double>(cfg.round_period)));
  }

  phy::EnergyModel energy;
  std::cout << "\nserved " << slots_served << " stream slots, " << delivered
            << " delivered to the sink ("
            << util::Table::pct(static_cast<double>(delivered) /
                                static_cast<double>(slots_served))
            << ")\n"
            << "mean radio duty "
            << util::Table::pct(duty.mean(), 2) << " ≈ "
            << util::Table::num(energy.average_power_mw(duty.mean()), 2)
            << " mW average draw per node (CC2420 model)\n"
            << "(node 9's slots go silent after its crash — the scheduler "
               "keeps serving the rest)\n";
  return 0;
}
