// The paper's Fig. 6 scenario: forwarder selection with multi-armed bandits,
// alone (DQN deactivated), on channel 26 during the night, for 5 hours.
// Nodes take 10-round turns learning whether to act as active forwarders or
// passive receivers; prints active-forwarder count, reliability, and
// radio-on time over time.
//
//   ./examples/forwarder_selection [--hours 5] [--seed 6]
#include <iostream>
#include <memory>

#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "phy/topology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dimmer;
  util::Cli cli(argc, argv);
  const long hours = cli.get_int("hours", 5);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 6));

  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::add_office_ambient(field, topo);  // night profile: nearly silent

  core::ProtocolConfig cfg;
  cfg.start_time = sim::hours(22);  // "on channel 26 during the night"
  cfg.forwarder_selection = true;
  cfg.mab_calm_rounds = 0;  // §V-D: FS alone, learning every round
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<core::StaticController>(3), 0,
                          seed);

  std::vector<phy::NodeId> sources;
  for (int i = 1; i < topo.size(); ++i) sources.push_back(i);
  sources.push_back(0);

  const int rounds = static_cast<int>(hours * 3600 / 4);
  util::Table table(
      {"t [h]", "active forwarders", "reliability", "radio [ms]"});
  util::RunningStats rel_all, radio_all;
  util::RunningStats rel_win, radio_win, fwd_win;
  int fwd_min = topo.size();
  for (int r = 0; r < rounds; ++r) {
    core::RoundStats rs = net.run_round(sources);
    rel_all.add(rs.reliability);
    radio_all.add(rs.radio_on_ms);
    rel_win.add(rs.reliability);
    radio_win.add(rs.radio_on_ms);
    fwd_win.add(rs.active_forwarders);
    fwd_min = std::min(fwd_min, rs.active_forwarders);
    const int window = 15 * 60 / 4;  // 15-minute reporting bins
    if ((r + 1) % window == 0) {
      table.add_row({util::Table::num((r + 1) * 4.0 / 3600.0, 2),
                     util::Table::num(fwd_win.mean(), 1),
                     util::Table::pct(rel_win.mean(), 2),
                     util::Table::num(radio_win.mean())});
      rel_win = util::RunningStats{};
      radio_win = util::RunningStats{};
      fwd_win = util::RunningStats{};
    }
  }
  table.print(std::cout);
  std::cout << "\noverall: reliability " << util::Table::pct(rel_all.mean(), 2)
            << ", radio-on " << util::Table::num(radio_all.mean())
            << " ms, fewest simultaneous forwarders " << fwd_min << "\n"
            << "(paper: 99.9% reliability; 9.55 ms with forwarder selection"
               " vs 11.04 ms without)\n";
  return 0;
}
