// The paper's Fig. 4c/4d scenario: the 18-node office deployment during work
// hours; after 7 min of calm, 5 min of heavy (30%) 802.15.4 jamming, 5 min
// of calm, 5 min of light (5%) jamming, then calm again. Prints a time
// series of N_TX, reliability, and radio-on time for the chosen controller.
//
//   ./examples/dynamic_interference [--controller dqn|pid|static]
//                                   [--policy dimmer_dqn.mlp] [--seed 3]
#include <iostream>
#include <memory>

#include "baselines/pid.hpp"
#include "core/pretrained.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "phy/topology.hpp"
#include "rl/quantized.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dimmer;
  util::Cli cli(argc, argv);
  const std::string kind = cli.get("controller", "dqn");
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  phy::Topology topo = phy::make_office18_topology();
  const sim::TimeUs origin = sim::hours(10);  // daytime: ambient active

  phy::InterferenceField field;
  core::add_office_ambient(field, topo);
  core::add_dynamic_jamming(field, topo, phy::kControlChannel, origin);

  std::unique_ptr<core::AdaptivityController> controller;
  if (kind == "dqn") {
    core::PretrainedOptions opt;
    rl::Mlp net = core::load_or_train_policy(cli.get("policy", "dimmer_dqn.mlp"),
                                             opt, &std::cout);
    controller = std::make_unique<core::DqnController>(rl::QuantizedMlp(net),
                                                       opt.features);
  } else if (kind == "pid") {
    controller = std::make_unique<baselines::PidController>();
  } else {
    controller = std::make_unique<core::StaticController>(3);
  }

  core::ProtocolConfig cfg;
  cfg.start_time = origin;
  core::DimmerNetwork net(topo, field, cfg, std::move(controller), 0, seed);

  std::vector<phy::NodeId> sources;
  for (int i = 1; i < topo.size(); ++i) sources.push_back(i);
  sources.push_back(0);

  util::Table table({"t [min]", "phase", "N_TX", "reliability", "radio [ms]"});
  const int total_rounds = 27 * 60 / 4;  // 27 minutes at 4 s rounds
  util::RunningStats rel_all, radio_all;
  for (int r = 0; r < total_rounds; ++r) {
    core::RoundStats rs = net.run_round(sources);
    rel_all.add(rs.reliability);
    radio_all.add(rs.radio_on_ms);
    if (r % 15 == 0) {
      double t_min = static_cast<double>(r) * 4.0 / 60.0;
      const char* phase = t_min < 7    ? "calm"
                          : t_min < 12 ? "30% jam"
                          : t_min < 17 ? "calm"
                          : t_min < 22 ? "5% jam"
                                       : "calm";
      table.add_row({util::Table::num(t_min, 1), phase,
                     std::to_string(rs.n_tx), util::Table::pct(rs.reliability),
                     util::Table::num(rs.radio_on_ms)});
    }
  }
  table.print(std::cout);
  std::cout << "\noverall: reliability " << util::Table::pct(rel_all.mean())
            << ", radio-on " << util::Table::num(radio_all.mean())
            << " ms (paper: both ~99.3%; Dimmer 12.3 ms vs PID 14.4 ms)\n";
  return 0;
}
