// Offline DQN training tool (the paper's §IV-B workflow): collect traces on
// the 18-node office deployment under the training interference schedule,
// train the deep Q-network, report its quantized footprint, and save the
// weights for deployment.
//
//   ./examples/train_dqn [--out dimmer_dqn.mlp] [--trace-steps 2500]
//                        [--train-steps 120000] [--seed 2021]
#include <fstream>
#include <iostream>

#include "core/pretrained.hpp"
#include "rl/export.hpp"
#include "core/trace_env.hpp"
#include "core/scenarios.hpp"
#include "phy/topology.hpp"
#include "rl/quantized.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dimmer;
  util::Cli cli(argc, argv);

  core::PretrainedOptions opt;
  opt.trace_steps =
      static_cast<std::size_t>(cli.get_int("trace-steps", 2500));
  opt.train_steps =
      static_cast<std::size_t>(cli.get_int("train-steps", 200000));
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2021));
  const std::string out = cli.get("out", "dimmer_dqn.mlp");

  rl::Mlp net = core::train_default_policy(opt, &std::cout);

  std::ofstream os(out);
  if (!os.good()) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  net.save(os);

  rl::QuantizedMlp q(net);
  std::cout << "[dimmer] saved policy to " << out << '\n'
            << "[dimmer] embedded footprint: " << q.flash_bytes()
            << " B flash (paper: ~2.1 kB), " << q.ram_bytes()
            << " B RAM (paper: ~400 B)\n";

  // Firmware artifact: the quantized network as a C header (int16 weights,
  // integer-only inference), ready to compile into an MCU build.
  const std::string header_out = cli.get("c-header", out + ".h");
  {
    std::ofstream hs(header_out);
    if (hs.good()) {
      hs << rl::export_quantized_c_header(q, "dimmer_dqn");
      std::cout << "[dimmer] exported C inference header to " << header_out
                << '\n';
    }
  }

  // Quick held-out evaluation on a fresh interference schedule.
  phy::Topology topo = phy::make_office18_topology();
  core::TraceCollectionConfig ec;
  ec.steps = 600;
  ec.seed = util::hash_u64(opt.seed, 0xE7A1ULL);
  ec.start_time = sim::hours(10);
  phy::InterferenceField field;
  core::add_training_schedule(
      field, topo,
      ec.start_time + static_cast<sim::TimeUs>(ec.steps) * ec.round_period,
      util::hash_u64(opt.seed, 0xFEEDULL));
  core::TraceDataset eval = core::collect_traces(topo, field, ec);

  core::TraceEnv::Config env_cfg;
  env_cfg.features = opt.features;
  core::PolicyEvaluation ev =
      core::evaluate_policy(eval, q, env_cfg, 40, 7);
  std::cout << "[dimmer] held-out eval: reward " << ev.avg_reward
            << ", reliability " << ev.avg_reliability * 100 << "%, radio-on "
            << ev.avg_radio_on_ms << " ms, mean N_TX " << ev.avg_n_tx << '\n';
  return 0;
}
