// The paper's Fig. 7 scenario, one protocol at a time: aperiodic data
// collection on the 48-node D-Cube-like deployment under controlled WiFi
// interference, with channel-hopping and application-layer ACKs.
//
//   ./examples/dcube_collection [--protocol dimmer|lwb|crystal]
//                               [--wifi 0|1|2] [--minutes 10] [--seed 9]
#include <iostream>
#include <memory>

#include "baselines/crystal.hpp"
#include "core/collection.hpp"
#include "core/pretrained.hpp"
#include "core/scenarios.hpp"
#include "phy/topology.hpp"
#include "rl/quantized.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dimmer;
  util::Cli cli(argc, argv);
  const std::string protocol = cli.get("protocol", "dimmer");
  const int wifi = static_cast<int>(cli.get_int("wifi", 2));
  const long minutes = cli.get_int("minutes", 10);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));

  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  if (wifi > 0) phy::add_dcube_wifi_level(field, topo, wifi);

  core::CollectionConfig workload;
  workload.duration = sim::minutes(minutes);
  workload.seed = seed;

  if (protocol == "crystal") {
    baselines::CrystalNetwork::Config ccfg;
    baselines::CrystalNetwork net(topo, field, ccfg, /*sink=*/0, seed);
    auto res = baselines::run_crystal_collection(
        net, workload.n_sources, workload.mean_interarrival,
        workload.duration, seed);
    std::cout << "crystal: sent " << res.sent << ", delivered "
              << res.delivered << " (" << res.reliability * 100
              << "%), radio duty " << res.radio_duty * 100 << "%\n";
    return 0;
  }

  core::ProtocolConfig cfg;
  cfg.round_period = sim::seconds(1);  // paper: 1 s rounds in D-Cube
  // Interference evaluation accounts only the traffic-bearing subset
  // (sources + sink), with a freshness window spanning arrival gaps.
  for (int i = 1; i <= workload.n_sources; ++i) cfg.feedback_nodes.push_back(i);
  cfg.feedback_nodes.push_back(0);
  cfg.feedback_freshness_rounds = 2;
  cfg.stats_window_slots = 12;
  cfg.radio_window_slots = 7;  // ~2 rounds of slots, as on the testbed
  std::unique_ptr<core::AdaptivityController> controller;
  if (protocol == "dimmer") {
    // "We reuse the DQN trained for 18 nodes against 802.15.4 interference"
    core::PretrainedOptions opt;
    rl::Mlp net = core::load_or_train_policy(
        cli.get("policy", "dimmer_dqn.mlp"), opt, &std::cout);
    controller = std::make_unique<core::DqnController>(rl::QuantizedMlp(net),
                                                       opt.features);
    cfg.round.hop_sequence.assign(phy::default_hopping_sequence().begin(),
                                  phy::default_hopping_sequence().end());
    workload.acks = true;  // "simply add application-layer ACKs"
  } else {
    controller = std::make_unique<core::StaticController>(3);
    workload.acks = false;  // plain LWB is single-channel best-effort
  }

  core::DimmerNetwork net(topo, field, cfg, std::move(controller),
                          /*coordinator=*/0, seed);
  core::CollectionResult res = core::run_collection(net, workload);
  std::cout << protocol << ": sent " << res.sent << ", delivered "
            << res.delivered << " (" << res.reliability * 100
            << "%), radio duty " << res.radio_duty * 100 << "%, mean N_TX "
            << res.avg_n_tx << '\n';
  return 0;
}
