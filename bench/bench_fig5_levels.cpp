// Fig. 5a / 5b — adaptivity to static interference levels.
//
// Dimmer (DQN), the PID baseline, and static LWB (N_TX = 3) against
// continuous JamLab interference from 0% to 35% occupancy (13 ms bursts).
// Results are averaged over all rounds of several runs per level; the
// stddev columns are the paper's error bars (variation between runs).
//
// Expected shape (paper): reliability of every protocol decreases with the
// level, with the adaptive protocols surviving much longer than LWB (5a);
// the PID's radio-on time jumps to the maximum as soon as any interference
// appears, while Dimmer's scales with the interference strength and LWB's
// stays low (5b). The Dimmer-vs-PID energy crossover sits below ~15%.
//
// Every (level, protocol, run) cell is one trial on exp::Runner; the tables
// aggregate per-cell metrics in spec order, so output is identical for any
// DIMMER_JOBS.
#include <iostream>
#include <string>

#include "bench/common.hpp"
#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "phy/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/wallclock.hpp"

using namespace dimmer;

int main() {
  rl::Mlp policy = bench::shared_policy();
  core::PretrainedOptions popt;

  const int runs = bench::scaled(3);
  const int rounds_per_run = bench::scaled(30 * 60 / 4);  // 30-minute runs
  const double levels[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35};
  const char* protocols[] = {"dimmer", "pid", "lwb"};

  std::vector<exp::TrialSpec> specs;
  for (double level : levels) {
    for (const char* proto : protocols) {
      for (int run = 0; run < runs; ++run) {
        exp::TrialSpec s;
        s.scenario = std::string(proto) + "@" + util::Table::pct(level, 0);
        s.seed = util::hash_u64(0xF150ULL, static_cast<std::uint64_t>(run),
                                static_cast<std::uint64_t>(level * 100));
        s.params["level"] = level;
        s.params["run"] = run;
        s.tags["protocol"] = proto;
        specs.push_back(std::move(s));
      }
    }
  }

  auto trial = [&](const exp::TrialSpec& spec, util::Pcg32&) {
    phy::Topology topo = phy::make_office18_topology();
    auto sources = bench::all_to_all_sources(topo);
    double level = spec.params.at("level");
    int run = static_cast<int>(spec.params.at("run"));

    phy::InterferenceField field;
    core::add_office_ambient(field, topo);
    if (level > 0.0) core::add_static_jamming(field, topo, level);

    core::ProtocolConfig cfg;
    cfg.start_time = sim::hours(10) + sim::minutes(run * 40);
    core::DimmerNetwork net(
        topo, field, cfg,
        bench::make_controller(spec.tags.at("protocol"), policy,
                               popt.features),
        0, spec.seed);
    util::RunningStats rel, radio;
    for (int r = 0; r < rounds_per_run; ++r) {
      core::RoundStats rs = net.run_round(sources);
      rel.add(rs.reliability);
      radio.add(rs.radio_on_ms);
    }
    exp::TrialResult res;
    res.metrics["reliability"] = rel.mean();
    res.metrics["radio_on_ms"] = radio.mean();
    res.stats["reliability"] = rel;
    res.stats["radio_on_ms"] = radio;
    return res;
  };

  util::Stopwatch sw;
  bench::Sweep sweep = bench::run_sweep(std::move(specs), trial);
  std::vector<exp::Trial>& trials = sweep.trials;
  double wall = sw.seconds();
  bench::require_all_ok(trials);

  util::Table t5a({"interference", "protocol", "reliability", "stddev"});
  util::Table t5b({"interference", "protocol", "radio-on [ms]", "stddev"});
  for (double level : levels) {
    for (const char* proto : protocols) {
      std::string scenario =
          std::string(proto) + "@" + util::Table::pct(level, 0);
      util::RunningStats rel_runs =
          exp::metric_stats(trials, scenario, "reliability");
      util::RunningStats radio_runs =
          exp::metric_stats(trials, scenario, "radio_on_ms");
      t5a.add_row({util::Table::pct(level, 0), proto,
                   util::Table::pct(rel_runs.mean(), 2),
                   util::Table::pct(rel_runs.stddev(), 2)});
      t5b.add_row({util::Table::pct(level, 0), proto,
                   util::Table::num(radio_runs.mean()),
                   util::Table::num(radio_runs.stddev())});
    }
  }

  std::cout << "Fig. 5a: reliability vs interference level ("
            << runs << " x " << rounds_per_run * 4 / 60 << "-minute runs)\n\n";
  t5a.print(std::cout);
  std::cout << "\nFig. 5b: radio-on time vs interference level\n\n";
  t5b.print(std::cout);
  std::cout << "\n(paper: PID maxes out its radio-on immediately; Dimmer"
               " needs less energy below ~15% for similar reliability;\n"
               " LWB's reliability degrades but some slots fit between"
               " bursts)\n";
  exp::write_json("fig5_levels", trials,
                  {.jobs = sweep.jobs, .wall_seconds = wall}, &std::cerr);
  return 0;
}
