// Shared helpers for the figure-reproduction benches.
//
// Scaling: every harness honours DIMMER_BENCH_SCALE (a float; default 1.0).
// Values below 1 shrink run lengths / model counts proportionally for quick
// smoke runs (e.g. DIMMER_BENCH_SCALE=0.25); values above 1 extend them
// toward the paper's full durations.
//
// The trained policy is cached in ./dimmer_dqn.mlp (or $DIMMER_POLICY): the
// first bench that needs it trains once, subsequent benches reuse it — the
// same frozen-network deployment model as the paper.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/pid.hpp"
#include "core/controller.hpp"
#include "core/pretrained.hpp"
#include "exp/campaign.hpp"
#include "exp/runner.hpp"
#include "phy/topology.hpp"
#include "rl/quantized.hpp"

namespace dimmer::bench {

inline double scale() {
  const char* s = std::getenv("DIMMER_BENCH_SCALE");
  if (!s) return 1.0;
  double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

/// max(lo, round(x * scale)).
inline int scaled(int x, int lo = 1) {
  auto v = static_cast<int>(static_cast<double>(x) * scale() + 0.5);
  return v < lo ? lo : v;
}

inline std::string policy_cache_path() {
  const char* p = std::getenv("DIMMER_POLICY");
  return p ? p : "dimmer_dqn.mlp";
}

inline rl::Mlp shared_policy() {
  core::PretrainedOptions opt;
  return core::load_or_train_policy(policy_cache_path(), opt, &std::cerr);
}

/// The three adaptivity controllers the figure benches compare: "dimmer"
/// (the trained DQN), "pid" (the baseline), anything else = static LWB at
/// N_TX = 3. Safe to call from parallel trials: `policy` is only read.
inline std::unique_ptr<core::AdaptivityController> make_controller(
    const std::string& name, const rl::Mlp& policy,
    const core::FeatureConfig& features) {
  if (name == "dimmer")
    return std::make_unique<core::DqnController>(rl::QuantizedMlp(policy),
                                                 features);
  if (name == "pid") return std::make_unique<baselines::PidController>();
  return std::make_unique<core::StaticController>(3);
}

/// One executed sweep: the trials in spec order plus the parallelism that
/// ran them (timing metadata only — stripped before byte-identity diffs).
struct Sweep {
  std::vector<exp::Trial> trials;
  int jobs = 1;
};

/// Runs a spec matrix through exp::Runner — or, when DIMMER_CAMPAIGN_DIR is
/// set, through the sharded, checkpointed campaign engine (exp/campaign.hpp):
/// DIMMER_CAMPAIGN_SHARDS worker processes stream results into per-shard
/// journals under that directory, and a killed sweep re-run with the same
/// environment resumes, re-running only the missing trials. The merged
/// trials are byte-identical between the two engines and across any shard
/// count or kill/resume history (timing fields aside), so the BENCH json is
/// invariant to how the sweep was executed.
inline Sweep run_sweep(std::vector<exp::TrialSpec> specs,
                       const exp::TrialFn& fn) {
  const char* dir = std::getenv("DIMMER_CAMPAIGN_DIR");
  if (dir != nullptr && *dir != '\0') {
    exp::CampaignOptions opt;
    opt.dir = dir;
    opt.shards = exp::campaign_shards_from_env();
    exp::CampaignReport report = exp::Campaign(opt).run(specs, fn);
    const auto& c = report.counters.counters();
    auto count = [&](const char* k) {
      auto it = c.find(k);
      return it == c.end() ? std::uint64_t{0} : it->second;
    };
    std::cerr << "[bench] campaign '" << dir << "' ("
              << (report.resumed ? "resumed" : "fresh") << "): "
              << count("campaign.trials_run") << " trials run, "
              << count("campaign.resumed_trials") << " replayed, "
              << count("campaign.worker_deaths") << " worker deaths, "
              << count("campaign.trials_failed") << " failed\n";
    return {std::move(report.trials), opt.shards};
  }
  exp::Runner runner;
  return {runner.run(std::move(specs), fn), runner.jobs()};
}

/// Abort the bench if any trial of a sweep failed, with the error on stderr.
inline void require_all_ok(const std::vector<exp::Trial>& trials) {
  bool ok = true;
  for (const exp::Trial& t : trials)
    if (!t.result.ok) {
      std::cerr << "trial '" << t.spec.scenario << "' failed: " << t.result.error
                << "\n";
      ok = false;
    }
  if (!ok) std::exit(1);
}

/// All 18 nodes broadcast every round (paper §V-A: periodic 4 s traffic).
inline std::vector<phy::NodeId> all_to_all_sources(const phy::Topology& topo) {
  std::vector<phy::NodeId> sources;
  for (phy::NodeId i = 1; i < topo.size(); ++i) sources.push_back(i);
  sources.push_back(0);
  return sources;
}

}  // namespace dimmer::bench
