// Ablation — tabular Q-learning vs the deep Q-network (paper §III-B):
// "Traditional, tabular Q-learning provides learning with low-complexity
// costs, yet only supports problems with low-dimensional states... This
// high-dimensionality makes tabular Q-learning unfit."
//
// We train both on identical traces and compare on (a) the in-distribution
// evaluation set and (b) an unseen interference pattern — the
// generalization axis where function approximation is supposed to win.
// The table also reports how much of the tabular state space was never
// visited during training (the coverage problem).
//
// The two agents train as parallel trials via bench::run_sweep over a
// shared read-only trace dataset (DQN training dominates the wall-clock).
#include <iostream>

#include "bench/common.hpp"
#include "core/scenarios.hpp"
#include "core/trace_env.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "phy/topology.hpp"
#include "rl/quantized.hpp"
#include "util/table.hpp"
#include "util/wallclock.hpp"

using namespace dimmer;

namespace {
core::TraceDataset make_dataset(std::size_t steps, std::uint64_t seed,
                                sim::TimeUs start, bool wifi_flavoured) {
  phy::Topology topo = phy::make_office18_topology();
  core::TraceCollectionConfig tc;
  tc.steps = steps;
  tc.seed = seed;
  tc.start_time = start;
  phy::InterferenceField field;
  if (wifi_flavoured) {
    // Unseen dynamics: WiFi-style long bursts instead of JamLab periodic.
    phy::WifiInterferer::Config w;
    w.position = core::office_jammer_position(topo, 0);
    w.wifi_channel = 13;  // covers channel 26
    w.duty = 0.3;
    w.tx_power_dbm = 8.0;
    w.seed = seed;
    field.add(std::make_unique<phy::WifiInterferer>(w));
    core::add_office_ambient(field, topo, seed);
  } else {
    core::add_training_schedule(
        field, topo,
        start + static_cast<sim::TimeUs>(steps) * tc.round_period,
        util::hash_u64(seed, 0x7ABULL));
  }
  return core::collect_traces(topo, field, tc);
}
}  // namespace

int main() {
  std::cerr << "[tabular] building datasets...\n";
  core::TraceDataset train = make_dataset(
      static_cast<std::size_t>(bench::scaled(2200)), 61, sim::hours(9), false);
  core::TraceDataset eval_seen = make_dataset(
      static_cast<std::size_t>(bench::scaled(800)), 67, sim::hours(10), false);
  core::TraceDataset eval_unseen = make_dataset(
      static_cast<std::size_t>(bench::scaled(800)), 71, sim::hours(11), true);

  core::TraceEnv::Config env_cfg;
  const auto steps = static_cast<std::size_t>(bench::scaled(120000));
  const int episodes = bench::scaled(60);

  struct Case {
    const char* key;
    const core::TraceDataset* ds;
  };
  const Case cases[] = {{"seen", &eval_seen}, {"unseen", &eval_unseen}};

  std::vector<exp::TrialSpec> specs(2);
  specs[0].scenario = "dqn";
  specs[0].seed = 5;
  specs[1].scenario = "tabular";
  specs[1].seed = 5;

  auto evaluate_into = [&](exp::TrialResult& r, const Case& c,
                           const core::PolicyEvaluation& ev) {
    std::string p = std::string(c.key) + "_";
    r.metrics[p + "reward"] = ev.avg_reward;
    r.metrics[p + "reliability"] = ev.avg_reliability;
    r.metrics[p + "radio_on_ms"] = ev.avg_radio_on_ms;
    r.metrics[p + "n_tx"] = ev.avg_n_tx;
  };

  auto trial = [&](const exp::TrialSpec& spec, util::Pcg32&) {
    exp::TrialResult r;
    if (spec.scenario == "dqn") {
      std::cerr << "[tabular] training DQN (" << steps << " steps)...\n";
      core::TrainerConfig tr;
      tr.total_steps = steps;
      tr.dqn.epsilon_anneal_steps = steps / 2;
      tr.dqn.lr_decay_steps = steps * 3 / 4;
      tr.seed = spec.seed;
      rl::Mlp net = core::train_dqn_on_traces(train, env_cfg, tr);
      rl::QuantizedMlp qnet(net);
      for (const Case& c : cases)
        evaluate_into(r, c, core::evaluate_policy(*c.ds, qnet, env_cfg,
                                                  episodes, 3));
    } else {
      std::cerr << "[tabular] training tabular Q (" << steps << " steps)...\n";
      core::TabularDiscretizer disc;
      disc.features = env_cfg.features;
      core::TabularTrainerConfig tt;
      tt.total_steps = steps;
      tt.seed = spec.seed;
      rl::TabularQ table =
          core::train_tabular_on_traces(train, env_cfg, disc, tt);
      auto policy = [&](const std::vector<double>& x) {
        return static_cast<int>(table.greedy(disc.state(x)));
      };
      for (const Case& c : cases)
        evaluate_into(r, c, core::evaluate_policy(*c.ds, policy, env_cfg,
                                                  episodes, 3));
      r.metrics["n_states"] = static_cast<double>(disc.n_states());
      r.metrics["unvisited_states"] =
          static_cast<double>(table.unvisited_states());
    }
    return r;
  };

  util::Stopwatch sw;
  bench::Sweep sweep = bench::run_sweep(std::move(specs), trial);
  std::vector<exp::Trial>& trials = sweep.trials;
  double wall = sw.seconds();
  bench::require_all_ok(trials);
  const exp::TrialResult& dq = trials[0].result;
  const exp::TrialResult& tb = trials[1].result;

  util::Table out({"agent", "dataset", "reward", "reliability",
                   "radio-on [ms]", "mean N_TX"});
  struct Row {
    const char* key;
    const char* label;
  };
  const Row rows[] = {{"seen", "seen (802.15.4)"}, {"unseen", "unseen (WiFi)"}};
  for (const Row& row : rows) {
    std::string p = std::string(row.key) + "_";
    out.add_row({"DQN", row.label, util::Table::num(dq.metrics.at(p + "reward"), 3),
                 util::Table::pct(dq.metrics.at(p + "reliability"), 2),
                 util::Table::num(dq.metrics.at(p + "radio_on_ms")),
                 util::Table::num(dq.metrics.at(p + "n_tx"), 1)});
    out.add_row({"tabular Q", row.label,
                 util::Table::num(tb.metrics.at(p + "reward"), 3),
                 util::Table::pct(tb.metrics.at(p + "reliability"), 2),
                 util::Table::num(tb.metrics.at(p + "radio_on_ms")),
                 util::Table::num(tb.metrics.at(p + "n_tx"), 1)});
  }

  std::cout << "Tabular-vs-deep ablation (SIII-B)\n\n";
  out.print(std::cout);
  std::cout << "\ntabular state space: "
            << static_cast<long>(tb.metrics.at("n_states")) << " states, "
            << static_cast<long>(tb.metrics.at("unvisited_states"))
            << " never visited during training\n"
            << "(the coarse table collapses the continuous per-node feedback"
               " the DQN exploits; the paper's\n full input space would need"
               " a table exponential in K and is unrepresentable)\n";
  exp::write_json("ablation_tabular", trials,
                  {.jobs = sweep.jobs, .wall_seconds = wall}, &std::cerr);
  return 0;
}
