// Microbenchmarks (google-benchmark) for the performance-critical pieces:
//
//  - DQN inference, float vs quantized fixed-point (the paper's §IV-B
//    embedded DQN: int16 weights, int32 accumulators, 90 ms on a 4 MHz
//    16-bit TelosB; on a modern CPU both paths are sub-microsecond, the
//    interesting number is their ratio and the byte footprint);
//  - a full Glossy flood across the 18-node office topology;
//  - a complete LWB round (control + 18 data slots);
//  - Exp3 sampling + update.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "flood/glossy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phy/topology.hpp"
#include "rl/exp3.hpp"
#include "rl/mlp.hpp"
#include "rl/quantized.hpp"

using namespace dimmer;

namespace {

std::vector<double> example_input(int n) {
  std::vector<double> x(static_cast<std::size_t>(n));
  util::Pcg32 rng(7);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

void BM_DqnInferenceFloat(benchmark::State& state) {
  rl::Mlp net({31, 30, 3}, 1);
  std::vector<double> x = example_input(31);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_DqnInferenceFloat);

void BM_DqnInferenceQuantized(benchmark::State& state) {
  rl::Mlp net({31, 30, 3}, 1);
  rl::QuantizedMlp q(net);
  std::vector<double> x = example_input(31);
  for (auto _ : state) benchmark::DoNotOptimize(q.forward_fixed(x));
  state.SetLabel("flash=" + std::to_string(q.flash_bytes()) +
                 "B ram=" + std::to_string(q.ram_bytes()) + "B");
}
BENCHMARK(BM_DqnInferenceQuantized);

void BM_GlossyFlood(benchmark::State& state) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  flood::GlossyFlood engine(topo, field);
  std::vector<flood::NodeFloodConfig> cfgs(
      static_cast<std::size_t>(topo.size()),
      flood::NodeFloodConfig{static_cast<int>(state.range(0)), true});
  flood::FloodParams params;
  util::Pcg32 rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.run(0, cfgs, params, rng));
}
BENCHMARK(BM_GlossyFlood)->Arg(1)->Arg(3)->Arg(8);

// The steady-state hot path: run_into with a persistent workspace and reused
// result — zero allocations, warm link-matrix cache. The gap against
// BM_GlossyFlood at the same Arg is the per-flood setup cost alone; the
// CI perf-smoke job tracks this series for regressions.
void BM_FloodRun(benchmark::State& state) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  flood::GlossyFlood engine(topo, field);
  std::vector<flood::NodeFloodConfig> cfgs(
      static_cast<std::size_t>(topo.size()),
      flood::NodeFloodConfig{static_cast<int>(state.range(0)), true});
  flood::FloodParams params;
  flood::FloodWorkspace ws;
  flood::FloodResult result;
  util::Pcg32 rng(3);
  engine.run_into(0, cfgs, params, rng, ws, result);  // warm-up sizing
  long long steps = 0;
  for (auto _ : state) {
    engine.run_into(0, cfgs, params, rng, ws, result);
    steps += result.steps_simulated;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(steps));
}
BENCHMARK(BM_FloodRun)->Arg(1)->Arg(3)->Arg(8);

// Same flood with observability attached: metrics registry only, and
// metrics + ring-buffer trace. The delta against BM_GlossyFlood/3 is the
// instrumentation overhead (the no-sink cost is a pointer check).
void BM_GlossyFloodInstrumented(benchmark::State& state) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  flood::GlossyFlood engine(topo, field);
  obs::MetricsRegistry metrics;
  obs::RingBufferSink ring(1024);
  const bool with_trace = state.range(0) != 0;
  engine.set_instrumentation({with_trace ? &ring : nullptr, &metrics});
  std::vector<flood::NodeFloodConfig> cfgs(
      static_cast<std::size_t>(topo.size()), flood::NodeFloodConfig{3, true});
  flood::FloodParams params;
  util::Pcg32 rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.run(0, cfgs, params, rng));
  state.SetLabel(with_trace ? "metrics+trace" : "metrics");
}
BENCHMARK(BM_GlossyFloodInstrumented)->Arg(0)->Arg(1);

void BM_LwbRound(benchmark::State& state) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::add_static_jamming(field, topo, 0.30);
  core::ProtocolConfig cfg;
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<core::StaticController>(3), 0, 5);
  std::vector<phy::NodeId> sources;
  for (int i = 1; i < topo.size(); ++i) sources.push_back(i);
  sources.push_back(0);
  for (auto _ : state) benchmark::DoNotOptimize(net.run_round(sources));
}
BENCHMARK(BM_LwbRound);

void BM_Exp3Update(benchmark::State& state) {
  rl::Exp3 bandit(2, 0.12);
  util::Pcg32 rng(9);
  for (auto _ : state) {
    std::size_t arm = bandit.sample(rng);
    bandit.update(arm, rng.uniform());
  }
}
BENCHMARK(BM_Exp3Update);

void BM_TraceEventJsonl(benchmark::State& state) {
  obs::TraceEvent e;
  e.kind = "flood";
  e.round = 412;
  e.t_us = 1648000;
  e.node = 0;
  e.f("receivers", 17).f("delivery_ratio", 0.94117647058823528).f("steps", 9);
  for (auto _ : state) benchmark::DoNotOptimize(e.to_jsonl());
}
BENCHMARK(BM_TraceEventJsonl);

}  // namespace

BENCHMARK_MAIN();
