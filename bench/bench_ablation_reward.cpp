// Ablation — the reward trade-off constant C (paper Eq. 3, C = 3/10).
//
// "Low values favor high reliability, higher values encourage energy
// efficiency." This harness trains models with different C values on the
// same traces and reports where each policy settles: the reliability /
// radio-on operating point it chooses on the evaluation dataset.
//
// Each (C, model) pair trains as one trial via bench::run_sweep — the
// dominant cost here is DQN training, which parallelises across DIMMER_JOBS
// workers (or campaign shards) over a shared read-only trace dataset.
#include <iostream>

#include "bench/common.hpp"
#include "core/scenarios.hpp"
#include "core/trace_env.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "phy/topology.hpp"
#include "rl/quantized.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/wallclock.hpp"

using namespace dimmer;

namespace {
core::TraceDataset make_dataset(std::size_t steps, std::uint64_t seed,
                                sim::TimeUs start) {
  phy::Topology topo = phy::make_office18_topology();
  core::TraceCollectionConfig tc;
  tc.steps = steps;
  tc.seed = seed;
  tc.start_time = start;
  phy::InterferenceField field;
  core::add_training_schedule(
      field, topo,
      tc.start_time + static_cast<sim::TimeUs>(tc.steps) * tc.round_period,
      util::hash_u64(seed, 0xAB1ULL));
  return core::collect_traces(topo, field, tc);
}
}  // namespace

int main() {
  const int models = bench::scaled(2);
  const auto train_steps = static_cast<std::size_t>(bench::scaled(50000));
  const double c_values[] = {0.0, 0.15, 0.3, 0.6, 0.9};

  std::cerr << "[ablation] building trace datasets...\n";
  core::TraceDataset train = make_dataset(
      static_cast<std::size_t>(bench::scaled(2000)), 55, sim::hours(9));
  core::TraceDataset eval = make_dataset(
      static_cast<std::size_t>(bench::scaled(800)), 99, sim::hours(11));

  std::vector<exp::TrialSpec> specs;
  for (double c : c_values) {
    for (int m = 0; m < models; ++m) {
      exp::TrialSpec s;
      s.scenario = "C=" + util::Table::num(c, 2);
      s.seed = util::hash_u64(0xC0ULL, static_cast<std::uint64_t>(c * 100),
                              static_cast<std::uint64_t>(m));
      s.params["c"] = c;
      s.params["model"] = m;
      specs.push_back(std::move(s));
    }
  }

  auto trial = [&](const exp::TrialSpec& spec, util::Pcg32&) {
    core::TraceEnv::Config env_cfg;
    env_cfg.reward_c = spec.params.at("c");
    core::TrainerConfig tr;
    tr.total_steps = train_steps;
    tr.dqn.epsilon_anneal_steps = train_steps / 2;
    tr.seed = spec.seed;
    rl::Mlp net = core::train_dqn_on_traces(train, env_cfg, tr);
    core::PolicyEvaluation ev = core::evaluate_policy(
        eval, rl::QuantizedMlp(net), env_cfg, bench::scaled(50),
        util::hash_u64(tr.seed, 0xE7ULL));
    exp::TrialResult r;
    r.metrics["reliability"] = ev.avg_reliability;
    r.metrics["radio_on_ms"] = ev.avg_radio_on_ms;
    r.metrics["n_tx"] = ev.avg_n_tx;
    r.metrics["loss_rate"] = ev.loss_rate;
    r.metrics["reward"] = ev.avg_reward;
    return r;
  };

  util::Stopwatch sw;
  bench::Sweep sweep = bench::run_sweep(std::move(specs), trial);
  std::vector<exp::Trial>& trials = sweep.trials;
  double wall = sw.seconds();
  bench::require_all_ok(trials);

  util::Table table({"C", "reliability", "radio-on [ms]", "mean N_TX",
                     "loss rate"});
  for (double c : c_values) {
    std::string scenario = "C=" + util::Table::num(c, 2);
    util::RunningStats rel = exp::metric_stats(trials, scenario, "reliability");
    util::RunningStats radio =
        exp::metric_stats(trials, scenario, "radio_on_ms");
    util::RunningStats ntx = exp::metric_stats(trials, scenario, "n_tx");
    util::RunningStats loss = exp::metric_stats(trials, scenario, "loss_rate");
    table.add_row({util::Table::num(c, 2), util::Table::pct(rel.mean(), 2),
                   util::Table::num(radio.mean()),
                   util::Table::num(ntx.mean(), 1),
                   util::Table::pct(loss.mean(), 1)});
  }

  std::cout << "Reward-constant ablation (paper uses C = 0.30)\n\n";
  table.print(std::cout);
  std::cout << "\n(expected: radio-on time decreases with C — higher C"
               " trades reliability for energy)\n";
  exp::write_json("ablation_reward", trials,
                  {.jobs = sweep.jobs, .wall_seconds = wall}, &std::cerr);
  return 0;
}
