// Flood hot-path benchmark: frozen pre-refactor loop vs the shipped engine.
//
// Runs identical flood workloads through tests/flood/reference_glossy.cpp
// (the pre-refactor algorithm, kept as the differential oracle) and through
// GlossyFlood::run_into with a persistent workspace, verifies the results
// stay bit-identical while timing both, and writes
// BENCH_flood_hotpath.json with floods/sec, ns/step and the speedup per
// scenario. The refactor's acceptance bar is a >= 1.5x speedup on the
// office18 workloads.
//
// Timing fields here are measurements, not simulation outputs: this file is
// exempt from the byte-identity rule that covers the figure benches.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/scenarios.hpp"
#include "exp/json.hpp"
#include "flood/glossy.hpp"
#include "flood/workspace.hpp"
#include "phy/topology.hpp"
#include "tests/flood/reference_glossy.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/simd/simd.hpp"
#include "util/wallclock.hpp"

using namespace dimmer;

namespace {

struct Scenario {
  std::string name;
  phy::Topology topo;
  phy::InterferenceField field;
  int n_tx = 3;
};

struct Timing {
  double seconds = 0.0;
  long long steps = 0;
  int floods = 0;

  double floods_per_sec() const {
    return seconds > 0.0 ? floods / seconds : 0.0;
  }
  double ns_per_step() const {
    return steps > 0 ? seconds * 1e9 / static_cast<double>(steps) : 0.0;
  }
};

double now_sec() { return util::wallclock_seconds(); }

flood::FloodParams params_for(int flood_idx) {
  flood::FloodParams p;
  p.slot_start_us = static_cast<sim::TimeUs>(flood_idx) * sim::ms(25);
  return p;
}

// Digest of a FloodResult for the bit-identity smoke check (full per-field
// comparison lives in tests/flood/test_differential.cpp).
long long digest(const flood::FloodResult& r) {
  long long d = r.steps_simulated;
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    d = d * 31 + (r.nodes[i].received ? 1 : 0);
    d = d * 31 + r.nodes[i].first_rx_step;
    d = d * 31 + r.nodes[i].transmissions;
    d = d * 31 + static_cast<long long>(r.nodes[i].radio_on_us % 100003);
  }
  return d;
}

Timing time_reference(const Scenario& sc, int floods, std::uint64_t seed,
                      long long* digest_out) {
  const int n = sc.topo.size();
  std::vector<flood::NodeFloodConfig> cfgs(
      static_cast<std::size_t>(n), flood::NodeFloodConfig{sc.n_tx, true});
  util::Pcg32 rng(seed);
  Timing t;
  long long dg = 0;
  const double t0 = now_sec();
  for (int k = 0; k < floods; ++k) {
    flood::FloodResult r = flood::reference::run(
        sc.topo, sc.field, k % n, cfgs, params_for(k), rng);
    t.steps += r.steps_simulated;
    dg = dg * 131 + digest(r);
  }
  t.seconds = now_sec() - t0;
  t.floods = floods;
  *digest_out = dg;
  return t;
}

Timing time_optimized(const Scenario& sc, int floods, std::uint64_t seed,
                      long long* digest_out) {
  const int n = sc.topo.size();
  std::vector<flood::NodeFloodConfig> cfgs(
      static_cast<std::size_t>(n), flood::NodeFloodConfig{sc.n_tx, true});
  flood::GlossyFlood engine(sc.topo, sc.field);
  flood::FloodWorkspace ws;
  flood::FloodResult r;
  util::Pcg32 rng(seed);
  Timing t;
  long long dg = 0;
  const double t0 = now_sec();
  for (int k = 0; k < floods; ++k) {
    engine.run_into(k % n, cfgs, params_for(k), rng, ws, r);
    t.steps += r.steps_simulated;
    dg = dg * 131 + digest(r);
  }
  t.seconds = now_sec() - t0;
  t.floods = floods;
  *digest_out = dg;
  return t;
}

}  // namespace

int main() {
  std::vector<Scenario> scenarios;
  scenarios.push_back(Scenario{"office18/clean", phy::make_office18_topology(),
                               phy::InterferenceField{}, 3});
  scenarios.push_back(Scenario{"office18/jam30", phy::make_office18_topology(),
                               phy::InterferenceField{}, 3});
  core::add_static_jamming(scenarios.back().field, scenarios.back().topo,
                           0.30);
  scenarios.push_back(Scenario{"dcube48/clean", phy::make_dcube48_topology(),
                               phy::InterferenceField{}, 2});

  const int floods = bench::scaled(2000, 50);
  const int warmup = std::max(5, floods / 20);
  const std::uint64_t seed = 1234;

  std::string rows;
  bool identical = true;
  // Which util/simd backend the optimized engine was compiled against —
  // speedups are only comparable within a backend.
  std::printf("simd backend: %s\n\n", util::simd::backend_name());
  std::printf("%-18s %12s %12s %10s %10s %8s\n", "scenario", "ref fl/s",
              "opt fl/s", "ref ns/st", "opt ns/st", "speedup");
  for (const Scenario& sc : scenarios) {
    long long dg_warm;
    time_optimized(sc, warmup, seed, &dg_warm);  // warm caches, page in code
    time_reference(sc, warmup, seed, &dg_warm);

    long long dg_ref = 0, dg_opt = 0;
    Timing ref = time_reference(sc, floods, seed, &dg_ref);
    Timing opt = time_optimized(sc, floods, seed, &dg_opt);
    if (dg_ref != dg_opt) {
      std::cerr << "BIT-IDENTITY VIOLATION in " << sc.name
                << ": reference digest " << dg_ref << " != optimized "
                << dg_opt << "\n";
      identical = false;
    }
    const double speedup =
        opt.seconds > 0.0 ? ref.seconds / opt.seconds : 0.0;
    std::printf("%-18s %12.0f %12.0f %10.1f %10.1f %7.2fx\n", sc.name.c_str(),
                ref.floods_per_sec(), opt.floods_per_sec(), ref.ns_per_step(),
                opt.ns_per_step(), speedup);

    if (!rows.empty()) rows += ",";
    rows += "{\"scenario\": " + util::json_quote(sc.name) +
            ", \"floods\": " + std::to_string(floods) +
            ", \"steps\": " + std::to_string(ref.steps) +
            ", \"identical\": " + (dg_ref == dg_opt ? "true" : "false") +
            ", \"reference\": {\"floods_per_sec\": " +
            util::json_number(ref.floods_per_sec()) +
            ", \"ns_per_step\": " + util::json_number(ref.ns_per_step()) +
            "}, \"optimized\": {\"floods_per_sec\": " +
            util::json_number(opt.floods_per_sec()) +
            ", \"ns_per_step\": " + util::json_number(opt.ns_per_step()) +
            "}, \"speedup\": " + util::json_number(speedup) + "}";
  }

  const std::string path = exp::output_path("flood_hotpath");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "{\"bench\": \"flood_hotpath\", \"schema_version\": 1, "
         "\"simd_backend\": "
      << util::json_quote(util::simd::backend_name()) << ", \"scenarios\": ["
      << rows << "]}\n";
  out.close();
  std::cout << "\nwrote " << path << "\n";

  if (!identical) return 1;
  return 0;
}
