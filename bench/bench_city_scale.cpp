// City-scale federation benchmark (DESIGN.md §15).
//
// The paper's central-coordinator design tops out at one LWB cell; this
// harness exercises the multi-cell federation on a 1024-node campus
// topology partitioned into 8 cells backed by the culled CSR topology and
// SparseLinkModel. Two scenarios per protocol:
//
//  - "steady": periodic flows from every cell bridge hop-by-hop across
//    gateways to the global sink; no faults.
//  - "coord-kill": one third into the run the deepest cell's coordinator
//    AND all its backups are crashed. In-cell failover is impossible, so
//    after `handoff_silent_epochs` orphaned epochs the federation hands the
//    cell's flows to its parent, where the shared gateway proxies them —
//    delivery must continue after the handoff (checked below).
//
// Every (scenario, protocol, run) cell is one trial via bench::run_sweep
// (exp::Runner with DIMMER_JOBS workers, or the sharded campaign engine
// under DIMMER_CAMPAIGN_DIR). Within a trial, DIMMER_FED_WORKERS threads
// step the cells of each schedule phase (Federation::balance partitions
// cells across them). BENCH_city_scale.json is byte-identical for any
// DIMMER_JOBS, shard count, and DIMMER_FED_WORKERS value — trials share
// nothing, and the federation's bridging/accounting barriers are
// single-threaded in cell order.
//
// DIMMER_BENCH_SCALE shrinks the epoch count for smoke runs; the topology
// stays at 1024 nodes / 8 cells (the point of the bench).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/pid.hpp"
#include "bench/common.hpp"
#include "core/controller.hpp"
#include "core/federation.hpp"
#include "core/scenarios.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "phy/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/wallclock.hpp"

using namespace dimmer;

namespace {

constexpr int kNodes = 1024;
constexpr int kCells = 8;

int fed_workers() {
  const char* w = std::getenv("DIMMER_FED_WORKERS");
  if (!w) return 1;
  int v = std::atoi(w);
  return v >= 1 ? v : 1;
}

std::unique_ptr<core::AdaptivityController> cell_controller(
    const std::string& protocol) {
  if (protocol == "pid") return std::make_unique<baselines::PidController>();
  return std::make_unique<core::StaticController>(3);
}

/// The cell farthest from the root in the stripe path — the kill victim.
int deepest_cell(const core::Federation& fed) {
  int best = 0, best_depth = -1;
  for (int c = 0; c < fed.cell_count(); ++c) {
    int d = 0;
    for (int p = fed.parent(c); p != -1; p = fed.parent(p)) ++d;
    if (d > best_depth) {
      best_depth = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

int main() {
  const int epochs = bench::scaled(240, 20);  // 16 min of 4 s rounds
  const int kill_epoch = epochs / 3;
  const int workers = fed_workers();
  const char* protocols[] = {"lwb", "pid"};
  const char* scenarios[] = {"steady", "coord-kill"};
  const int runs = bench::scaled(2, 1);

  std::vector<exp::TrialSpec> specs;
  for (const char* scen : scenarios) {
    for (const char* proto : protocols) {
      for (int run = 0; run < runs; ++run) {
        exp::TrialSpec s;
        s.scenario = std::string(proto) + "@" + scen;
        const std::uint64_t variant =
            (std::string(scen) == "coord-kill" ? 2u : 0u) +
            (std::string(proto) == "pid" ? 1u : 0u);
        s.seed = util::hash_u64(0xC17FEDULL, variant,
                                static_cast<std::uint64_t>(run));
        s.params["run"] = run;
        s.params["kill"] = std::string(scen) == "coord-kill" ? 1.0 : 0.0;
        s.tags["protocol"] = proto;
        s.tags["scenario"] = scen;
        specs.push_back(std::move(s));
      }
    }
  }

  auto trial = [&](const exp::TrialSpec& spec, util::Pcg32&) {
    phy::Topology topo = phy::make_campus_topology_culled(
        kNodes, 42,
        phy::gain_cull_floor_db(phy::RadioConstants{}, 20.0));
    phy::InterferenceField field;
    core::add_office_ambient(field, topo);

    core::FederationConfig fc;
    fc.n_cells = kCells;
    fc.sink = 0;
    fc.sparse_links = true;
    fc.workers = workers;
    const std::string protocol = spec.tags.at("protocol");
    core::Federation fed(
        topo, field, fc,
        [&protocol](int) { return cell_controller(protocol); }, spec.seed);

    // Two periodic flows per cell, picked mid-list and high so they never
    // collide with the auto-assigned leadership (the lowest non-gateway
    // member ids).
    const sim::TimeUs ipi = fc.protocol.round_period;
    for (int c = 0; c < fed.cell_count(); ++c) {
      const auto& m = fed.cell(c).members();
      (void)fed.add_flow(m[m.size() / 2], ipi);
      phy::NodeId hi = m[m.size() - 2];
      if (hi == fed.gateway(c)) hi = m[m.size() - 3];
      (void)fed.add_flow(hi, ipi);
    }

    const bool kill = spec.params.at("kill") > 0.0;
    const int victim = deepest_cell(fed);

    util::RunningStats rel, radio_ms;
    double min_rel = 1.0;
    std::uint64_t delivered_pre_kill = 0;
    int orphaned_epoch_cells = 0;
    for (int e = 0; e < epochs; ++e) {
      if (kill && e == kill_epoch) {
        delivered_pre_kill = fed.packets_delivered();
        fed.fail_cell_leadership(victim);
      }
      core::FederationStats st = fed.run_epoch();
      rel.add(st.mean_reliability);
      min_rel = std::min(min_rel, st.min_reliability);
      radio_ms.add(sim::to_ms(st.total_radio_on_us));
      orphaned_epoch_cells += st.orphaned_cells;
    }

    exp::TrialResult r;
    if (fed.packets_originated() == 0) {
      r.ok = false;
      r.error = "no packets originated";
      return r;
    }
    if (kill) {
      if (fed.handoff_count() < 1) {
        r.ok = false;
        r.error = "coordinator kill produced no inter-cell handoff";
        return r;
      }
      if (fed.lost()) {
        r.ok = false;
        r.error = "federation lost: handoff chain reached the root";
        return r;
      }
      if (fed.packets_delivered() <= delivered_pre_kill) {
        r.ok = false;
        r.error = "no deliveries after the inter-cell handoff";
        return r;
      }
    } else if (fed.handoff_count() != 0) {
      r.ok = false;
      r.error = "spurious handoff in the steady scenario";
      return r;
    }

    r.metrics["delivery_ratio"] =
        static_cast<double>(fed.packets_delivered()) /
        static_cast<double>(fed.packets_originated());
    r.metrics["mean_reliability"] = rel.mean();
    r.metrics["min_reliability"] = min_rel;
    r.metrics["latency_epochs"] = fed.mean_delivery_latency_epochs();
    r.metrics["radio_on_ms_per_epoch"] = radio_ms.mean();
    r.metrics["handoffs"] = fed.handoff_count();
    r.metrics["orphaned_epoch_cells"] = orphaned_epoch_cells;
    r.metrics["dropped"] = static_cast<double>(fed.packets_dropped());
    r.stats["mean_reliability"] = rel;
    r.stats["radio_on_ms_per_epoch"] = radio_ms;
    // Per-cell registries merged in ascending cell order: deterministic for
    // any worker count.
    for (int c = 0; c < fed.cell_count(); ++c)
      r.registry.merge(fed.cell_metrics(c));
    return r;
  };

  util::Stopwatch sw;
  bench::Sweep sweep = bench::run_sweep(std::move(specs), trial);
  std::vector<exp::Trial>& trials = sweep.trials;
  double wall = sw.seconds();
  bench::require_all_ok(trials);

  util::Table t({"scenario", "protocol", "delivery", "mean rel", "min rel",
                 "latency [ep]", "radio-on [ms/ep]", "handoffs"});
  for (const char* scen : scenarios) {
    for (const char* proto : protocols) {
      std::string scenario = std::string(proto) + "@" + scen;
      t.add_row(
          {scen, proto,
           util::Table::pct(
               exp::metric_stats(trials, scenario, "delivery_ratio").mean(), 1),
           util::Table::pct(
               exp::metric_stats(trials, scenario, "mean_reliability").mean(),
               2),
           util::Table::pct(
               exp::metric_stats(trials, scenario, "min_reliability").mean(),
               2),
           util::Table::num(
               exp::metric_stats(trials, scenario, "latency_epochs").mean()),
           util::Table::num(exp::metric_stats(trials, scenario,
                                              "radio_on_ms_per_epoch")
                                .mean()),
           util::Table::num(
               exp::metric_stats(trials, scenario, "handoffs").mean(), 1)});
    }
  }

  std::cout << "City-scale federation: " << kNodes << " nodes, " << kCells
            << " cells, sparse links, " << epochs << " epochs, " << workers
            << " federation worker(s)\n\n";
  t.print(std::cout);
  std::cout << "\n(coord-kill crashes the deepest cell's coordinator and"
               " every backup at epoch " << kill_epoch
            << "; the federation hands its flows to the parent cell via the"
               " shared gateway)\n";
  exp::write_json("city_scale", trials,
                  {.jobs = sweep.jobs, .wall_seconds = wall}, &std::cerr);
  return 0;
}
