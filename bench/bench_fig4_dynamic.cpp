// Fig. 4c / 4d — adaptivity under dynamic interference.
//
// The 18-node office deployment during work hours. Timeline: 7 min calm,
// 5 min of 30% 802.15.4 jamming, 5 min calm, 5 min of 5% jamming, calm.
// Fig. 4c runs Dimmer's DQN; Fig. 4d runs the PID baseline; static LWB
// (N_TX = 3) is included for reference. For each controller the harness
// prints the N_TX time series plus the paper's headline aggregates
// (both ~99.3% reliable; Dimmer 12.3 ms vs PID 14.4 ms radio-on).
#include <iostream>
#include <memory>

#include "baselines/pid.hpp"
#include "bench/common.hpp"
#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "phy/topology.hpp"
#include "rl/quantized.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace dimmer;

namespace {
const char* phase_at(double t_min) {
  if (t_min < 7) return "calm";
  if (t_min < 12) return "30% jam";
  if (t_min < 17) return "calm";
  if (t_min < 22) return "5% jam";
  return "calm";
}
}  // namespace

int main() {
  phy::Topology topo = phy::make_office18_topology();
  const sim::TimeUs origin = sim::hours(10);
  const int rounds = 27 * 60 / 4;  // 27 minutes at 4 s rounds

  phy::InterferenceField field;
  core::add_office_ambient(field, topo);
  core::add_dynamic_jamming(field, topo, phy::kControlChannel, origin);

  rl::Mlp policy = bench::shared_policy();
  core::PretrainedOptions popt;

  struct Run {
    const char* figure;
    const char* name;
  };
  const Run runs[] = {{"Fig. 4c", "dimmer"},
                      {"Fig. 4d", "pid"},
                      {"(ref)", "lwb"}};

  util::Table summary(
      {"figure", "controller", "reliability", "radio-on [ms]", "mean N_TX"});

  for (const Run& run : runs) {
    std::unique_ptr<core::AdaptivityController> controller;
    if (std::string(run.name) == "dimmer")
      controller = std::make_unique<core::DqnController>(
          rl::QuantizedMlp(policy), popt.features);
    else if (std::string(run.name) == "pid")
      controller = std::make_unique<baselines::PidController>();
    else
      controller = std::make_unique<core::StaticController>(3);

    core::ProtocolConfig cfg;
    cfg.start_time = origin;
    core::DimmerNetwork net(topo, field, cfg, std::move(controller), 0, 3);
    auto sources = bench::all_to_all_sources(topo);

    std::cout << run.figure << " — " << run.name
              << " under dynamic interference\n";
    util::Table series({"t [min]", "phase", "N_TX", "reliability",
                        "radio-on [ms]"});
    util::RunningStats rel, radio, ntx;
    for (int r = 0; r < rounds; ++r) {
      core::RoundStats rs = net.run_round(sources);
      rel.add(rs.reliability);
      radio.add(rs.radio_on_ms);
      ntx.add(rs.n_tx);
      if (r % 30 == 0) {
        double t_min = static_cast<double>(r) * 4.0 / 60.0;
        series.add_row({util::Table::num(t_min, 0), phase_at(t_min),
                        std::to_string(rs.n_tx),
                        util::Table::pct(rs.reliability),
                        util::Table::num(rs.radio_on_ms)});
      }
    }
    series.print(std::cout);
    std::cout << '\n';
    summary.add_row({run.figure, run.name, util::Table::pct(rel.mean()),
                     util::Table::num(radio.mean()),
                     util::Table::num(ntx.mean())});
  }

  std::cout << "aggregates over the 27-minute experiment\n";
  summary.print(std::cout);
  std::cout << "(paper: Dimmer and PID both 99.3% reliable; Dimmer 12.3 ms"
               " vs PID 14.4 ms radio-on —\n the PID overshoots to N_max"
               " under light interference, Dimmer finds the setpoint)\n";
  return 0;
}
