// Fig. 4c / 4d — adaptivity under dynamic interference.
//
// The 18-node office deployment during work hours. Timeline: 7 min calm,
// 5 min of 30% 802.15.4 jamming, 5 min calm, 5 min of 5% jamming, calm.
// Fig. 4c runs Dimmer's DQN; Fig. 4d runs the PID baseline; static LWB
// (N_TX = 3) is included for reference. For each controller the harness
// prints the N_TX time series plus the paper's headline aggregates
// (both ~99.3% reliable; Dimmer 12.3 ms vs PID 14.4 ms radio-on).
//
// The three controller runs execute as parallel trials via
// bench::run_sweep (exp::Runner with DIMMER_JOBS workers, or the sharded
// campaign engine under DIMMER_CAMPAIGN_DIR); each trial owns its topology,
// interference field and network, so the table below is identical for every
// job or shard count.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "obs/trace.hpp"
#include "phy/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/wallclock.hpp"

using namespace dimmer;

namespace {
const char* phase_at(double t_min) {
  if (t_min < 7) return "calm";
  if (t_min < 12) return "30% jam";
  if (t_min < 17) return "calm";
  if (t_min < 22) return "5% jam";
  return "calm";
}
}  // namespace

int main() {
  const sim::TimeUs origin = sim::hours(10);
  const int rounds = 27 * 60 / 4;  // 27 minutes at 4 s rounds

  rl::Mlp policy = bench::shared_policy();
  core::PretrainedOptions popt;

  struct Run {
    const char* figure;
    const char* name;
  };
  const Run runs[] = {{"Fig. 4c", "dimmer"},
                      {"Fig. 4d", "pid"},
                      {"(ref)", "lwb"}};

  std::vector<exp::TrialSpec> specs;
  for (const Run& run : runs) {
    exp::TrialSpec s;
    s.scenario = run.name;
    s.seed = 3;
    s.tags["figure"] = run.figure;
    specs.push_back(std::move(s));
  }

  // DIMMER_TRACE=<path>: all trials share one JSONL sink; a per-trial
  // TaggedSink labels each line with its scenario (the file sink is
  // thread-safe, so lines interleave across workers but never tear).
  std::unique_ptr<obs::TraceSink> trace = obs::sink_from_env();

  auto trial = [&](const exp::TrialSpec& spec, util::Pcg32&) {
    phy::Topology topo = phy::make_office18_topology();
    phy::InterferenceField field;
    core::add_office_ambient(field, topo);
    core::add_dynamic_jamming(field, topo, phy::kControlChannel, origin);

    core::ProtocolConfig cfg;
    cfg.start_time = origin;
    core::DimmerNetwork net(
        topo, field, cfg,
        bench::make_controller(spec.scenario, policy, popt.features), 0,
        spec.seed);
    auto sources = bench::all_to_all_sources(topo);

    exp::TrialResult r;
    std::unique_ptr<obs::TaggedSink> tagged;
    if (trace)
      tagged = std::make_unique<obs::TaggedSink>(trace.get(), "scenario",
                                                 spec.scenario);
    net.set_instrumentation({tagged.get(), &r.registry});
    util::RunningStats rel, radio, ntx;
    for (int rd = 0; rd < rounds; ++rd) {
      core::RoundStats rs = net.run_round(sources);
      rel.add(rs.reliability);
      radio.add(rs.radio_on_ms);
      ntx.add(rs.n_tx);
      if (rd % 30 == 0) {
        r.series["t_min"].push_back(static_cast<double>(rd) * 4.0 / 60.0);
        r.series["n_tx"].push_back(rs.n_tx);
        r.series["reliability"].push_back(rs.reliability);
        r.series["radio_on_ms"].push_back(rs.radio_on_ms);
      }
    }
    r.metrics["reliability"] = rel.mean();
    r.metrics["radio_on_ms"] = radio.mean();
    r.metrics["n_tx"] = ntx.mean();
    r.stats["reliability"] = rel;
    r.stats["radio_on_ms"] = radio;
    r.stats["n_tx"] = ntx;
    return r;
  };

  util::Stopwatch sw;
  bench::Sweep sweep = bench::run_sweep(std::move(specs), trial);
  std::vector<exp::Trial>& trials = sweep.trials;
  double wall = sw.seconds();
  bench::require_all_ok(trials);

  util::Table summary(
      {"figure", "controller", "reliability", "radio-on [ms]", "mean N_TX"});
  for (const exp::Trial& t : trials) {
    std::cout << t.spec.tags.at("figure") << " — " << t.spec.scenario
              << " under dynamic interference\n";
    util::Table series({"t [min]", "phase", "N_TX", "reliability",
                        "radio-on [ms]"});
    const exp::TrialResult& r = t.result;
    for (std::size_t i = 0; i < r.series.at("t_min").size(); ++i) {
      double t_min = r.series.at("t_min")[i];
      series.add_row(
          {util::Table::num(t_min, 0), phase_at(t_min),
           std::to_string(
               static_cast<int>(std::llround(r.series.at("n_tx")[i]))),
           util::Table::pct(r.series.at("reliability")[i]),
           util::Table::num(r.series.at("radio_on_ms")[i])});
    }
    series.print(std::cout);
    std::cout << '\n';
    summary.add_row({t.spec.tags.at("figure"), t.spec.scenario,
                     util::Table::pct(r.metrics.at("reliability")),
                     util::Table::num(r.metrics.at("radio_on_ms")),
                     util::Table::num(r.metrics.at("n_tx"))});
  }

  std::cout << "aggregates over the 27-minute experiment\n";
  summary.print(std::cout);
  std::cout << "(paper: Dimmer and PID both 99.3% reliable; Dimmer 12.3 ms"
               " vs PID 14.4 ms radio-on —\n the PID overshoots to N_max"
               " under light interference, Dimmer finds the setpoint)\n";
  exp::write_json("fig4_dynamic", trials,
                  {.jobs = sweep.jobs, .wall_seconds = wall}, &std::cerr);
  return 0;
}
