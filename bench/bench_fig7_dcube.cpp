// Fig. 7 — Dimmer on the 48-device D-Cube deployment, without retraining.
//
// Aperiodic data collection (Data Collection V1): known sources, a known
// sink, packets at random intervals; reliability is the fraction of packets
// received at the sink. Protocols: static LWB (single-channel best-effort),
// Dimmer (the 18-node-trained DQN with channel-hopping and application-layer
// ACKs — no retraining), and Crystal (EWSN'19 configuration). Episodes:
// interference-free, WiFi level 1, WiFi level 2.
//
// Paper numbers: LWB 100 / 93.6 / 27 %, Dimmer 100 / 98.3 / 95.8 %,
// Crystal 100 / 100 / 99 %. Energy: LWB cheapest when calm and degraded by
// lost synchronization under jamming; Dimmer's rises with interference as
// N_TX ramps to N_max, comparable to the dependability-tuned Crystal.
//
// Every (episode, protocol, run) cell is a trial run via bench::run_sweep
// (exp::Runner, or the campaign engine under DIMMER_CAMPAIGN_DIR); workers
// share nothing mutable, so the table is job- and shard-count independent.
#include <iostream>
#include <memory>
#include <string>

#include "baselines/crystal.hpp"
#include "bench/common.hpp"
#include "core/collection.hpp"
#include "core/controller.hpp"
#include "core/pretrained.hpp"
#include "core/scenarios.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "phy/energy.hpp"
#include "phy/topology.hpp"
#include "rl/quantized.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/wallclock.hpp"

using namespace dimmer;

int main() {
  rl::Mlp policy = bench::shared_policy();
  core::PretrainedOptions popt;

  const int runs = bench::scaled(3);
  const long minutes = bench::scaled(8);
  const char* protocols[] = {"lwb", "dimmer", "crystal"};
  const char* episodes[] = {"no interference", "WiFi level 1",
                            "WiFi level 2"};

  std::vector<exp::TrialSpec> specs;
  for (int wifi = 0; wifi <= 2; ++wifi) {
    for (const char* proto : protocols) {
      for (int run = 0; run < runs; ++run) {
        exp::TrialSpec s;
        s.scenario = std::string(proto) + "@wifi" + std::to_string(wifi);
        s.seed = util::hash_u64(0xF700ULL, static_cast<std::uint64_t>(wifi),
                                static_cast<std::uint64_t>(run));
        s.params["wifi"] = wifi;
        s.tags["protocol"] = proto;
        s.tags["episode"] = episodes[wifi];
        specs.push_back(std::move(s));
      }
    }
  }

  auto trial = [&](const exp::TrialSpec& spec, util::Pcg32&) {
    phy::Topology topo = phy::make_dcube48_topology();
    int wifi = static_cast<int>(spec.params.at("wifi"));
    const std::string& proto = spec.tags.at("protocol");
    std::uint64_t seed = spec.seed;

    phy::InterferenceField field;
    if (wifi > 0)
      phy::add_dcube_wifi_level(field, topo, wifi,
                                util::hash_u64(seed, 0xA9ULL));

    core::CollectionConfig workload;
    workload.duration = sim::minutes(minutes);
    workload.seed = seed;

    exp::TrialResult r;
    if (proto == "crystal") {
      baselines::CrystalNetwork::Config ccfg;
      baselines::CrystalNetwork net(topo, field, ccfg, /*sink=*/0, seed);
      auto res = baselines::run_crystal_collection(
          net, workload.n_sources, workload.mean_interarrival,
          workload.duration, seed);
      r.metrics["reliability"] = res.reliability;
      r.metrics["radio_duty"] = res.radio_duty;
      return r;
    }

    core::ProtocolConfig cfg;
    cfg.round_period = sim::seconds(1);  // paper: 1 s rounds in D-Cube
    for (int i = 1; i <= workload.n_sources; ++i)
      cfg.feedback_nodes.push_back(i);
    cfg.feedback_nodes.push_back(0);
    cfg.feedback_freshness_rounds = 2;
    cfg.stats_window_slots = 12;
    cfg.radio_window_slots = 7;

    std::unique_ptr<core::AdaptivityController> controller;
    if (proto == "dimmer") {
      controller = std::make_unique<core::DqnController>(
          rl::QuantizedMlp(policy), popt.features);
      cfg.round.hop_sequence.assign(
          phy::default_hopping_sequence().begin(),
          phy::default_hopping_sequence().end());
      workload.acks = true;
    } else {
      controller = std::make_unique<core::StaticController>(3);
      workload.acks = false;
    }
    core::DimmerNetwork net(topo, field, cfg, std::move(controller), 0,
                            seed);
    core::CollectionResult res = core::run_collection(net, workload);
    r.metrics["reliability"] = res.reliability;
    r.metrics["radio_duty"] = res.radio_duty;
    r.metrics["avg_n_tx"] = res.avg_n_tx;
    r.metrics["radio_on_ms"] = res.radio_on_ms;
    return r;
  };

  util::Stopwatch sw;
  bench::Sweep sweep = bench::run_sweep(std::move(specs), trial);
  std::vector<exp::Trial>& trials = sweep.trials;
  double wall = sw.seconds();
  bench::require_all_ok(trials);

  phy::EnergyModel energy;
  util::Table table({"episode", "protocol", "reliability", "stddev",
                     "radio duty", "avg power [mW]", "mean N_TX"});
  for (int wifi = 0; wifi <= 2; ++wifi) {
    for (const char* proto : protocols) {
      std::string scenario =
          std::string(proto) + "@wifi" + std::to_string(wifi);
      util::RunningStats rel =
          exp::metric_stats(trials, scenario, "reliability");
      util::RunningStats duty =
          exp::metric_stats(trials, scenario, "radio_duty");
      util::RunningStats ntx =
          exp::metric_stats(trials, scenario, "avg_n_tx");
      table.add_row({episodes[wifi], proto, util::Table::pct(rel.mean()),
                     util::Table::pct(rel.stddev()),
                     util::Table::pct(duty.mean(), 2),
                     util::Table::num(energy.average_power_mw(duty.mean()), 2),
                     ntx.count() ? util::Table::num(ntx.mean(), 1) : "-"});
    }
  }

  std::cout << "Fig. 7: 48-node D-Cube aperiodic collection (" << runs
            << " x " << minutes << "-minute runs per cell)\n\n";
  table.print(std::cout);
  std::cout << "\n(paper: LWB 100/93.6/27%; Dimmer 100/98.3/95.8% without"
               " retraining; Crystal 100/100/99%)\n";
  exp::write_json("fig7_dcube", trials,
                  {.jobs = sweep.jobs, .wall_seconds = wall}, &std::cerr);
  return 0;
}
