// Fig. 4b — DQN feature selection.
//
//  (i)  Radio-on time (and reliability) as a function of K, the number of
//       lowest-reliability devices fed to the DQN. The paper finds K=1..5
//       too conservative (wasted energy), K=18 overfitting, and picks K=10.
//  (ii) Reliability as a function of the number of historical features M.
//       The paper reports ~98.5% without history vs ~99% with M=2.
//
// Plus the paper's §IV-B action-space ablation: the 3-action incremental
// space versus one action per N_TX value (argued to overfit).
//
// Methodology mirrors §V-B: an evaluation dataset with mild and heavy
// interference and interference-free episodes; several models per
// configuration, averaged; error bars are standard deviations across models.
#include <iostream>

#include "bench/common.hpp"
#include "core/scenarios.hpp"
#include "core/trace_env.hpp"
#include "phy/topology.hpp"
#include "rl/quantized.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace dimmer;

namespace {

core::TraceDataset make_dataset(std::size_t steps, std::uint64_t seed,
                                sim::TimeUs start) {
  phy::Topology topo = phy::make_office18_topology();
  core::TraceCollectionConfig tc;
  tc.steps = steps;
  tc.seed = seed;
  tc.start_time = start;
  phy::InterferenceField field;
  core::add_training_schedule(
      field, topo,
      tc.start_time + static_cast<sim::TimeUs>(tc.steps) * tc.round_period,
      util::hash_u64(seed, 0xF16ULL));
  return core::collect_traces(topo, field, tc);
}

struct ConfigResult {
  util::RunningStats radio, rel, reward;
};

ConfigResult run_config(const core::TraceDataset& train,
                        const core::TraceDataset& eval,
                        const core::TraceEnv::Config& env_cfg, int models,
                        std::size_t train_steps, int episodes,
                        std::uint64_t seed) {
  ConfigResult out;
  for (int m = 0; m < models; ++m) {
    core::TrainerConfig tr;
    tr.total_steps = train_steps;
    tr.dqn.epsilon_anneal_steps = train_steps / 2;
    tr.seed = util::hash_u64(seed, static_cast<std::uint64_t>(m));
    rl::Mlp net = core::train_dqn_on_traces(train, env_cfg, tr);
    core::PolicyEvaluation ev = core::evaluate_policy(
        eval, rl::QuantizedMlp(net), env_cfg, episodes,
        util::hash_u64(seed, static_cast<std::uint64_t>(m), 0xE7ULL));
    out.radio.add(ev.avg_radio_on_ms);
    out.rel.add(ev.avg_reliability);
    out.reward.add(ev.avg_reward);
  }
  return out;
}

}  // namespace

int main() {
  const int models = bench::scaled(3);
  const auto train_steps = static_cast<std::size_t>(bench::scaled(50000));
  const int episodes = bench::scaled(60);

  std::cerr << "[fig4b] building train/eval trace datasets...\n";
  core::TraceDataset train = make_dataset(
      static_cast<std::size_t>(bench::scaled(2200)), 31, sim::hours(9));
  core::TraceDataset eval = make_dataset(
      static_cast<std::size_t>(bench::scaled(900)), 77, sim::hours(10));

  std::cout << "Fig. 4b(i): number of device inputs K (M = 2 fixed; " << models
            << " models per K)\n\n";
  util::Table t1({"K", "radio-on [ms]", "stddev", "reliability", "stddev"});
  for (int k : {1, 2, 5, 10, 18}) {
    core::TraceEnv::Config env_cfg;
    env_cfg.features.k = k;
    ConfigResult r = run_config(train, eval, env_cfg, models, train_steps,
                                episodes, 0x4B00 + static_cast<std::uint64_t>(k));
    t1.add_row({std::to_string(k), util::Table::num(r.radio.mean()),
                util::Table::num(r.radio.stddev()),
                util::Table::pct(r.rel.mean(), 2),
                util::Table::pct(r.rel.stddev(), 2)});
  }
  t1.print(std::cout);
  std::cout << "(paper: K=1..5 conservative/high radio-on, K=18 overfits;"
               " K=10 minimizes radio-on)\n\n";

  std::cout << "Fig. 4b(ii): history size M (K = 10 fixed; short episodes"
               " probe transient-vs-persistent discrimination)\n\n";
  util::Table t2({"M", "reliability", "stddev", "radio-on [ms]"});
  for (int m_hist : {0, 1, 2, 4}) {
    core::TraceEnv::Config env_cfg;
    env_cfg.features.history = m_hist;
    env_cfg.episode_len = 2;  // paper: 1000 episodes of 2 decisions
    ConfigResult r =
        run_config(train, eval, env_cfg, models, train_steps,
                   bench::scaled(500), 0x4B40 + static_cast<std::uint64_t>(m_hist));
    t2.add_row({std::to_string(m_hist), util::Table::pct(r.rel.mean(), 2),
                util::Table::pct(r.rel.stddev(), 2),
                util::Table::num(r.radio.mean())});
  }
  t2.print(std::cout);
  std::cout << "(paper: ~98.5% without history vs ~99% with M=2; more than"
               " 2 adds little)\n\n";

  std::cout << "SIV-B ablation: incremental 3-action space vs one action per"
               " N_TX value\n\n";
  util::Table t3({"action space", "reward", "reliability", "radio-on [ms]"});
  for (bool per_value : {false, true}) {
    core::TraceEnv::Config env_cfg;
    env_cfg.action_per_value = per_value;
    ConfigResult r = run_config(train, eval, env_cfg, models, train_steps,
                                episodes, per_value ? 0x4B81 : 0x4B80);
    t3.add_row({per_value ? "one per value (8)" : "inc/keep/dec (3)",
                util::Table::num(r.reward.mean(), 3),
                util::Table::pct(r.rel.mean(), 2),
                util::Table::num(r.radio.mean())});
  }
  t3.print(std::cout);
  std::cout << "(paper argues the per-value space overfits environment"
               " specifics and behaves worse on unseen dynamics)\n";
  return 0;
}
