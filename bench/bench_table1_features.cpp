// Table I — the DQN input vector.
//
// Prints the paper's table (rows, normalization) from the live
// FeatureBuilder, verifies the 31-element layout, and shows a worked example
// of a snapshot being normalized, one-hot encoded, and history-tagged.
#include <deque>
#include <iostream>

#include "core/features.hpp"
#include "util/table.hpp"

int main() {
  using namespace dimmer;
  core::FeatureConfig cfg;  // K=10, M=2, N_max=8: the paper's configuration
  core::FeatureBuilder fb(cfg);

  std::cout << "Table I: Input vector of Dimmer's DQN\n\n";
  util::Table table({"Input", "Number of rows", "Normalization"});
  table.add_row({"Radio-on time", "K (" + std::to_string(cfg.k) + ")",
                 "[0, 20ms] -> [-1, 1]"});
  table.add_row({"Reliability", "K (" + std::to_string(cfg.k) + ")",
                 "[50, 100%] -> [-1, 1]"});
  table.add_row({"N parameter",
                 "N_max+1 (" + std::to_string(cfg.n_max + 1) + ")",
                 "one-hot encoding"});
  table.add_row({"History", "M (" + std::to_string(cfg.history) + ")",
                 "-1 if losses, otherwise 1"});
  table.print(std::cout);
  std::cout << "\ntotal input size: " << fb.input_size()
            << " (paper: 31)\n\n";

  // Worked example: an 18-node snapshot with two suffering nodes.
  core::GlobalSnapshot snap(18);
  snap.current_round = 7;
  for (int i = 0; i < 18; ++i) {
    auto& e = snap.entries[static_cast<std::size_t>(i)];
    e.reliability = i == 4 ? 0.62 : (i == 9 ? 0.88 : 1.0);
    e.radio_on_ms = i == 4 ? 18.0 : 7.5;
    e.round = 7;
    e.ever_heard = i != 13;  // node 13 was never heard: pessimistic fill
  }
  std::deque<bool> history = {false, true};  // losses last round
  std::vector<double> x = fb.build(snap, /*n_tx=*/3, history);

  std::cout << "example input vector (worst node first):\n  radio-on:   ";
  for (int i = 0; i < cfg.k; ++i) std::cout << x[static_cast<std::size_t>(i)] << ' ';
  std::cout << "\n  reliability:";
  for (int i = cfg.k; i < 2 * cfg.k; ++i)
    std::cout << ' ' << x[static_cast<std::size_t>(i)];
  std::cout << "\n  one-hot N=3:";
  for (int i = 2 * cfg.k; i < 2 * cfg.k + cfg.n_max + 1; ++i)
    std::cout << ' ' << x[static_cast<std::size_t>(i)];
  std::cout << "\n  history:    ";
  for (int i = 2 * cfg.k + cfg.n_max + 1; i < fb.input_size(); ++i)
    std::cout << ' ' << x[static_cast<std::size_t>(i)];
  std::cout << '\n';
  return 0;
}
