// Flood scaling benchmark: sparse (culled CSR) vs dense link backends on
// 1000+-node campus topologies.
//
// For each size the harness builds a make_campus_topology(n) deployment and
// times cycling-initiator floods through (a) GlossyFlood over the default
// CachedLinkModel (dense N^2 matrix, every listener swept every step) and
// (b) GlossyFlood over SparseLinkModel with the default 20 dB culling margin
// (CSR scatter + zero-power listener skip). The sparse leg runs on a
// construction-culled Topology (make_campus_topology_culled with the
// matching gain floor), so neither the topology nor the link model ever
// materializes an 8*N^2 matrix. It reports ns/step, floods/sec and delivery
// ratio for both, plus the storage story at both layers: link-model nnz/CSR
// bytes and topology gain nnz/bytes against the dense 8*N^2. The dense leg
// is skipped above kDenseMaxNodes — holding (and sweeping) the full matrix
// at 4096 nodes is exactly the cost the sparse backend exists to avoid.
//
// Timing fields here are measurements, not simulation outputs: this file is
// exempt from the byte-identity rule that covers the figure benches.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "exp/json.hpp"
#include "flood/glossy.hpp"
#include "flood/workspace.hpp"
#include "phy/link_model.hpp"
#include "phy/sparse_link_model.hpp"
#include "phy/topology.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/simd/simd.hpp"
#include "util/wallclock.hpp"

using namespace dimmer;

namespace {

/// Largest size the dense comparison leg still runs at (8*N^2 = 32 MiB of
/// matrix; beyond this the dense engine is measured as absent, not slow).
constexpr int kDenseMaxNodes = 2048;

struct Timing {
  double seconds = 0.0;
  long long steps = 0;
  int floods = 0;
  double delivery_sum = 0.0;

  double floods_per_sec() const {
    return seconds > 0.0 ? floods / seconds : 0.0;
  }
  double ns_per_step() const {
    return steps > 0 ? seconds * 1e9 / static_cast<double>(steps) : 0.0;
  }
  double mean_delivery() const {
    return floods > 0 ? delivery_sum / floods : 0.0;
  }
};

flood::FloodParams params_for(int flood_idx) {
  flood::FloodParams p;
  // Campus floods cross tens of hops: give the wave a 60 ms slot (~51
  // steps) instead of the paper's 20 ms office slot.
  p.slot_len_us = sim::ms(60);
  p.slot_start_us = static_cast<sim::TimeUs>(flood_idx) * sim::ms(80);
  return p;
}

Timing time_engine(const flood::GlossyFlood& engine, int n, int floods,
                   std::uint64_t seed) {
  std::vector<flood::NodeFloodConfig> cfgs(static_cast<std::size_t>(n),
                                           flood::NodeFloodConfig{2, true});
  flood::FloodWorkspace ws;
  flood::FloodResult r;
  util::Pcg32 rng(seed);
  engine.run_into(0, cfgs, params_for(0), rng, ws, r);  // warm-up: builds
                                                        // the link cache
  Timing t;
  const double t0 = util::wallclock_seconds();
  for (int k = 0; k < floods; ++k) {
    engine.run_into(k % n, cfgs, params_for(k), rng, ws, r);
    t.steps += r.steps_simulated;
    t.delivery_sum += r.delivery_ratio();
  }
  t.seconds = util::wallclock_seconds() - t0;
  t.floods = floods;
  return t;
}

}  // namespace

int main() {
  // DIMMER_BENCH_SCALE shrinks the node counts themselves (CI smoke at 0.1
  // runs 128/256/512); the full campaign covers 1k/2k/4k.
  const std::vector<int> sizes = {bench::scaled(1024, 128),
                                  bench::scaled(2048, 256),
                                  bench::scaled(4096, 512)};
  const int floods = bench::scaled(20, 5);
  const std::uint64_t seed = 2026;

  std::printf("simd backend: %s\n\n", util::simd::backend_name());
  std::printf("%-6s %10s %12s %12s %12s %10s %10s %8s %9s %9s\n", "nodes",
              "nnz", "sparse B", "topo B", "dense B", "sp ns/st", "dn ns/st",
              "speedup", "sp deliv", "dn deliv");

  std::string rows;
  bool ok = true;
  for (int n : sizes) {
    // Construction-culled topology with the floor matching the link model's
    // default 20 dB margin at 0 dBm TX: surviving gains are bit-identical to
    // make_campus_topology(n), and the dense gain matrix is never built.
    const double gain_floor =
        phy::gain_cull_floor_db(phy::RadioConstants{}, 20.0);
    phy::Topology topo =
        phy::make_campus_topology_culled(n, 1, gain_floor);
    phy::InterferenceField field;  // clean band: pure engine scaling

    phy::SparseLinkModel sparse_links(topo);  // default 20 dB margin
    flood::GlossyFlood sparse_engine(sparse_links, field);
    Timing sp = time_engine(sparse_engine, n, floods, seed);

    const auto un = static_cast<std::size_t>(n);
    const std::size_t dense_bytes = sizeof(double) * un * un;
    const bool run_dense = n <= kDenseMaxNodes;
    Timing dn;
    if (run_dense) {
      phy::Topology dense_topo = phy::make_campus_topology(n);
      flood::GlossyFlood dense_engine(dense_topo, field);
      dn = time_engine(dense_engine, n, floods, seed);
    }

    const double speedup =
        run_dense && sp.ns_per_step() > 0.0
            ? dn.ns_per_step() / sp.ns_per_step()
            : 0.0;
    std::printf("%-6d %10zu %12zu %12zu %12zu %10.1f %10s %7s %9.3f %9s\n", n,
                sparse_links.nnz(), sparse_links.storage_bytes(),
                topo.gain_storage_bytes(), dense_bytes, sp.ns_per_step(),
                run_dense ? std::to_string(static_cast<long long>(
                                dn.ns_per_step()))
                                .c_str()
                          : "-",
                run_dense
                    ? (std::to_string(speedup).substr(0, 5) + "x").c_str()
                    : "-",
                sp.mean_delivery(),
                run_dense
                    ? std::to_string(dn.mean_delivery()).substr(0, 5).c_str()
                    : "-");

    // The point of the backend: storage scales with survivors, not N^2. At
    // smoke sizes (a 128-node campus fits inside one culling radius) the CSR
    // bookkeeping can exceed the tiny dense matrix, so the bar only binds at
    // the campaign's real scales.
    if (n >= 1024 && sparse_links.storage_bytes() >= dense_bytes) {
      std::cerr << "SPARSE STORAGE NOT SMALLER THAN DENSE at n=" << n << "\n";
      ok = false;
    }
    if (n >= 1024 && topo.gain_storage_bytes() >= dense_bytes) {
      std::cerr << "TOPOLOGY GAIN STORAGE NOT SMALLER THAN DENSE at n=" << n
                << "\n";
      ok = false;
    }
    // Culling must not collapse the flood itself.
    if (sp.mean_delivery() < 0.5) {
      std::cerr << "SPARSE DELIVERY COLLAPSED at n=" << n << " ("
                << sp.mean_delivery() << ")\n";
      ok = false;
    }

    if (!rows.empty()) rows += ",";
    rows += "{\"nodes\": " + std::to_string(n) +
            ", \"floods\": " + std::to_string(floods) +
            ", \"nnz\": " + std::to_string(sparse_links.nnz()) +
            ", \"sparse_bytes\": " +
            std::to_string(sparse_links.storage_bytes()) +
            ", \"topo_gain_nnz\": " + std::to_string(topo.gain_nnz()) +
            ", \"topo_gain_bytes\": " +
            std::to_string(topo.gain_storage_bytes()) +
            ", \"dense_bytes\": " + std::to_string(dense_bytes) +
            ", \"sparse\": {\"floods_per_sec\": " +
            util::json_number(sp.floods_per_sec()) +
            ", \"ns_per_step\": " + util::json_number(sp.ns_per_step()) +
            ", \"delivery_ratio\": " + util::json_number(sp.mean_delivery()) +
            "}, \"dense\": " +
            (run_dense
                 ? "{\"floods_per_sec\": " +
                       util::json_number(dn.floods_per_sec()) +
                       ", \"ns_per_step\": " +
                       util::json_number(dn.ns_per_step()) +
                       ", \"delivery_ratio\": " +
                       util::json_number(dn.mean_delivery()) + "}"
                 : std::string("null")) +
            ", \"speedup_ns_per_step\": " + util::json_number(speedup) + "}";
  }

  const std::string path = exp::output_path("flood_scale");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "{\"bench\": \"flood_scale\", \"schema_version\": 1, "
         "\"simd_backend\": "
      << util::json_quote(util::simd::backend_name()) << ", \"sizes\": ["
      << rows << "]}\n";
  out.close();
  std::cout << "\nwrote " << path << "\n";

  return ok ? 0 : 1;
}
