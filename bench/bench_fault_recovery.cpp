// Fault-recovery bench: how fast does the network come back when the
// coordinator dies?
//
// The paper evaluates Dimmer under channel interference (Figs. 5-7) but its
// coordinator — where the DQN and the network-wide feedback live — is a
// single point of failure the evaluation never exercises. This harness
// measures the failover subsystem (src/fault, core failover): for each
// scenario a scripted FaultPlan kills the coordinator (and, in the "storm"
// variants, adds a severity-0.35 reception blackout plus leaf churn around
// the takeover window), and we report
//   - rounds-to-resync: takeover until every alive node holds a schedule,
//   - dip: the worst per-round reliability seen during recovery,
//   - orphaned rounds and the energy they burn (silent control slots),
//   - steady-state reliability / radio-on before vs after the handover,
// comparing warm takeover (controller state inherited) against cold
// (controller reset + Exp3 episode aborted network-wide).
//
// The PID controller keeps the bench self-contained (no policy training);
// warm-vs-cold differences show up in its integral state the same way they
// would in the DQN's history window.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/pid.hpp"
#include "bench/common.hpp"
#include "core/protocol.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "fault/plan.hpp"
#include "phy/topology.hpp"
#include "util/table.hpp"
#include "util/wallclock.hpp"

using namespace dimmer;

namespace {

constexpr int kCrashRound = 30;

fault::FaultPlan plan_for(const std::string& kind) {
  fault::FaultPlan plan;
  if (kind == "baseline") return plan;  // fault-free reference
  plan.crash_coordinator(kCrashRound);
  if (kind == "storm") {
    // The takeover happens *inside* a lossy window with node churn: the
    // hard case — backups miss control floods for reasons other than the
    // coordinator being dead, and rejoiners need schedules mid-recovery.
    plan.blackout(kCrashRound, kCrashRound + 10, 0.35);
    plan.crash(kCrashRound + 15, 9);
    plan.reboot(kCrashRound + 30, 9);
  }
  return plan;
}

exp::TrialResult run_trial(const exp::TrialSpec& spec, util::Pcg32& rng,
                           int rounds) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;

  core::ProtocolConfig cfg;
  cfg.fault_plan = spec.fault_plan;
  if (spec.tags.at("faults") != "baseline") {
    cfg.failover.backups = {1, 2};
    cfg.failover.takeover_silent_rounds = 3;
    cfg.failover.mode = spec.tags.at("mode") == "cold"
                            ? core::FailoverConfig::Mode::kCold
                            : core::FailoverConfig::Mode::kWarm;
  }
  core::DimmerNetwork net(topo, field, std::move(cfg),
                          std::make_unique<baselines::PidController>(), 0,
                          rng.next_u64());

  exp::TrialResult r;
  net.set_instrumentation(obs::Instrumentation{nullptr, &r.registry});
  auto sources = bench::all_to_all_sources(topo);

  auto& rel_series = r.series["reliability"];
  util::RunningStats pre, post;
  double dip = 1.0;
  for (int round = 0; round < rounds; ++round) {
    core::RoundStats rs = net.run_round(sources);
    rel_series.push_back(rs.reliability);
    r.stats["reliability"].add(rs.reliability);
    r.stats["radio_on_ms_per_node"].add(
        static_cast<double>(rs.total_radio_on_us) / 1000.0 / topo.size());
    if (round < kCrashRound) pre.add(rs.reliability);
    if (round >= kCrashRound) {
      if (rs.reliability < dip) dip = rs.reliability;
      // "post" = steady state under the new coordinator, clear of both the
      // recovery transient and the storm window.
      if (round >= kCrashRound + 35) post.add(rs.reliability);
    }
  }

  r.metrics["pre_reliability"] = pre.mean();
  r.metrics["post_reliability"] =
      spec.tags.at("faults") == "baseline" ? pre.mean() : post.mean();
  r.metrics["dip"] = dip;
  r.metrics["failovers"] = net.failover_count();
  r.metrics["rounds_to_resync"] = net.last_rounds_to_resync();
  const auto& counters = r.registry.counters();
  auto counter_or_zero = [&](const char* name) {
    auto it = counters.find(name);
    return it == counters.end() ? 0.0 : static_cast<double>(it->second);
  };
  r.metrics["orphaned_rounds"] = counter_or_zero("fault.orphaned_rounds");
  r.metrics["orphaned_radio_on_ms"] =
      counter_or_zero("fault.orphaned_radio_on_us") / 1000.0;
  return r;
}

}  // namespace

int main() {
  const int rounds = bench::scaled(120, 80);
  const int seeds = bench::scaled(5, 2);

  struct Case {
    const char* faults;  ///< "baseline" | "kill" | "storm"
    const char* mode;    ///< "warm" | "cold" (ignored for baseline)
  };
  const Case cases[] = {{"baseline", "warm"},
                        {"kill", "warm"},
                        {"kill", "cold"},
                        {"storm", "warm"},
                        {"storm", "cold"}};

  std::vector<exp::TrialSpec> specs;
  for (const Case& c : cases) {
    for (int s = 0; s < seeds; ++s) {
      exp::TrialSpec spec;
      spec.scenario = c.faults == std::string("baseline")
                          ? "baseline"
                          : std::string(c.faults) + "/" + c.mode;
      spec.seed = static_cast<std::uint64_t>(s);
      spec.tags["faults"] = c.faults;
      spec.tags["mode"] = c.mode;
      spec.fault_plan = plan_for(c.faults);
      specs.push_back(std::move(spec));
    }
  }

  auto trial = [&](const exp::TrialSpec& spec, util::Pcg32& rng) {
    return run_trial(spec, rng, rounds);
  };

  util::Stopwatch sw;
  bench::Sweep sweep = bench::run_sweep(std::move(specs), trial);
  std::vector<exp::Trial>& trials = sweep.trials;
  double wall = sw.seconds();
  bench::require_all_ok(trials);

  util::Table out({"scenario", "pre rel.", "post rel.", "dip", "resync [rounds]",
                   "failovers", "orphaned [rounds]", "orphan cost [ms]"});
  std::vector<std::string> order = {"baseline", "kill/warm", "kill/cold",
                                    "storm/warm", "storm/cold"};
  for (const std::string& sc : order) {
    out.add_row(
        {sc,
         util::Table::pct(exp::metric_stats(trials, sc, "pre_reliability").mean(), 2),
         util::Table::pct(exp::metric_stats(trials, sc, "post_reliability").mean(), 2),
         util::Table::pct(exp::metric_stats(trials, sc, "dip").mean(), 2),
         util::Table::num(exp::metric_stats(trials, sc, "rounds_to_resync").mean(), 1),
         util::Table::num(exp::metric_stats(trials, sc, "failovers").mean(), 1),
         util::Table::num(exp::metric_stats(trials, sc, "orphaned_rounds").mean(), 1),
         util::Table::num(exp::metric_stats(trials, sc, "orphaned_radio_on_ms").mean(), 1)});
  }

  std::cout << "Coordinator failover & recovery (" << seeds
            << " seeds x " << rounds << " rounds, office18, PID controller)\n\n";
  out.print(std::cout);
  std::cout << "\nwarm inherits controller state across the takeover; cold"
               " resets it and aborts the\nExp3 episode network-wide."
               " 'dip' is the worst single-round reliability after the"
               " crash;\n'resync' counts rounds from takeover until every"
               " alive node holds a schedule again.\n";
  exp::write_json("fault_recovery", trials,
                  {.jobs = sweep.jobs, .wall_seconds = wall}, &std::cerr);
  return 0;
}
