// Fig. 6 — forwarder selection with multi-armed bandits.
//
// The 18-node deployment on channel 26 at night for 5 hours, DQN
// deactivated; each device sequentially gets 10 consecutive rounds to learn
// a role (active forwarder / passive receiver). Prints the number of active
// forwarders, reliability, and radio-on time over time, and the comparison
// against the same run without forwarder selection.
//
// Paper: 99.9% reliability over 5 h; 9.55 ms average radio-on with
// forwarder selection vs 11.04 ms without; breaking configurations (first
// around 30 min) are punished and reliability maintained.
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "obs/trace.hpp"
#include "phy/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace dimmer;

int main() {
  phy::Topology topo = phy::make_office18_topology();
  auto sources = bench::all_to_all_sources(topo);
  const int rounds = bench::scaled(5 * 3600 / 4);  // 5 hours at 4 s rounds

  phy::InterferenceField field;
  core::add_office_ambient(field, topo);  // night: nearly silent

  // --- With forwarder selection (the Fig. 6 run).
  core::ProtocolConfig cfg;
  cfg.start_time = sim::hours(22);
  cfg.forwarder_selection = true;
  cfg.mab_calm_rounds = 0;  // SV-D: learning every round, DQN off
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<core::StaticController>(3), 0, 6);

  // DIMMER_TRACE=<path>: per-round / per-flood / exp3 events as JSONL.
  std::unique_ptr<obs::TraceSink> trace = obs::sink_from_env();
  std::unique_ptr<obs::TaggedSink> tagged;
  if (trace) {
    tagged = std::make_unique<obs::TaggedSink>(trace.get(), "scenario", "mab");
    net.set_instrumentation({tagged.get(), nullptr});
  }

  std::cout << "Fig. 6: forwarder selection over "
            << rounds * 4 / 3600.0 << " hours (night, channel 26)\n\n";
  util::Table series({"t [h]", "active forwarders", "reliability",
                      "radio-on [ms]"});
  util::RunningStats rel_all, radio_all;
  util::RunningStats rel_win, radio_win, fwd_win;
  const int bin = std::max(1, rounds / 20);
  for (int r = 0; r < rounds; ++r) {
    core::RoundStats rs = net.run_round(sources);
    rel_all.add(rs.reliability);
    radio_all.add(rs.radio_on_ms);
    rel_win.add(rs.reliability);
    radio_win.add(rs.radio_on_ms);
    fwd_win.add(rs.active_forwarders);
    if ((r + 1) % bin == 0) {
      series.add_row({util::Table::num((r + 1) * 4.0 / 3600.0, 2),
                      util::Table::num(fwd_win.mean(), 1),
                      util::Table::pct(rel_win.mean(), 2),
                      util::Table::num(radio_win.mean())});
      rel_win = util::RunningStats{};
      radio_win = util::RunningStats{};
      fwd_win = util::RunningStats{};
    }
  }
  series.print(std::cout);

  // --- Reference: the same night without forwarder selection.
  core::ProtocolConfig ref_cfg;
  ref_cfg.start_time = sim::hours(22);
  core::DimmerNetwork ref(topo, field, ref_cfg,
                          std::make_unique<core::StaticController>(3), 0, 6);
  std::unique_ptr<obs::TaggedSink> ref_tagged;
  if (trace) {
    ref_tagged = std::make_unique<obs::TaggedSink>(trace.get(), "scenario",
                                                   "all-forward");
    ref.set_instrumentation({ref_tagged.get(), nullptr});
  }
  util::RunningStats ref_rel, ref_radio;
  for (int r = 0; r < rounds; ++r) {
    core::RoundStats rs = ref.run_round(sources);
    ref_rel.add(rs.reliability);
    ref_radio.add(rs.radio_on_ms);
  }

  std::cout << '\n';
  util::Table summary({"configuration", "reliability", "radio-on [ms]"});
  summary.add_row({"forwarder selection", util::Table::pct(rel_all.mean(), 2),
                   util::Table::num(radio_all.mean())});
  summary.add_row({"all nodes forward", util::Table::pct(ref_rel.mean(), 2),
                   util::Table::num(ref_radio.mean())});
  summary.print(std::cout);
  std::cout << "(paper: 99.9% reliability; 9.55 ms with forwarder selection"
               " vs 11.04 ms without)\n";
  return 0;
}
