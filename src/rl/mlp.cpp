#include "rl/mlp.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace dimmer::rl {

Mlp::Mlp(const std::vector<int>& sizes, std::uint64_t seed) {
  DIMMER_REQUIRE(sizes.size() >= 2, "Mlp needs at least in+out sizes");
  for (int s : sizes) DIMMER_REQUIRE(s > 0, "layer sizes must be positive");
  util::Pcg32 rng(seed);
  layers_.reserve(sizes.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    DenseLayer layer;
    layer.in = sizes[l];
    layer.out = sizes[l + 1];
    layer.relu = (l + 2 < sizes.size());  // all but the last use ReLU
    layer.w.resize(static_cast<std::size_t>(layer.in) * layer.out);
    layer.b.assign(static_cast<std::size_t>(layer.out), 0.0);
    double scale = std::sqrt(2.0 / layer.in);  // He initialisation
    for (double& w : layer.w) w = rng.normal(0.0, scale);
    layers_.push_back(std::move(layer));
  }
}

int Mlp::input_size() const { return layers_.front().in; }
int Mlp::output_size() const { return layers_.back().out; }

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.w.size() + l.b.size();
  return n;
}

namespace {
void layer_forward(const DenseLayer& l, const std::vector<double>& x,
                   std::vector<double>& pre, std::vector<double>& post) {
  pre.assign(static_cast<std::size_t>(l.out), 0.0);
  for (int o = 0; o < l.out; ++o) {
    double acc = l.b[static_cast<std::size_t>(o)];
    const double* wrow = &l.w[static_cast<std::size_t>(o) * l.in];
    for (int i = 0; i < l.in; ++i) acc += wrow[i] * x[static_cast<std::size_t>(i)];
    pre[static_cast<std::size_t>(o)] = acc;
  }
  post = pre;
  if (l.relu)
    for (double& v : post)
      if (v < 0.0) v = 0.0;
}
}  // namespace

std::vector<double> Mlp::forward(const std::vector<double>& x) const {
  DIMMER_REQUIRE(static_cast<int>(x.size()) == input_size(),
                 "input size mismatch");
  std::vector<double> cur = x, pre, post;
  for (const auto& l : layers_) {
    layer_forward(l, cur, pre, post);
    cur = post;
  }
  return cur;
}

std::vector<double> Mlp::forward_cached(const std::vector<double>& x,
                                        ForwardCache& cache) const {
  DIMMER_REQUIRE(static_cast<int>(x.size()) == input_size(),
                 "input size mismatch");
  cache.inputs.clear();
  cache.pre_act.clear();
  std::vector<double> cur = x, pre, post;
  for (const auto& l : layers_) {
    cache.inputs.push_back(cur);
    layer_forward(l, cur, pre, post);
    cache.pre_act.push_back(pre);
    cur = post;
  }
  cache.output = cur;
  return cur;
}

void Mlp::backward(const ForwardCache& cache, const std::vector<double>& dout,
                   std::vector<LayerGrads>& grads) const {
  DIMMER_REQUIRE(grads.size() == layers_.size(), "grads shape mismatch");
  DIMMER_REQUIRE(static_cast<int>(dout.size()) == output_size(),
                 "dout size mismatch");
  std::vector<double> delta = dout;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const DenseLayer& l = layers_[li];
    LayerGrads& g = grads[li];
    const std::vector<double>& x = cache.inputs[li];
    const std::vector<double>& pre = cache.pre_act[li];

    // delta currently holds dLoss/d(post-activation of layer li).
    if (l.relu)
      for (int o = 0; o < l.out; ++o)
        if (pre[static_cast<std::size_t>(o)] <= 0.0)
          delta[static_cast<std::size_t>(o)] = 0.0;

    std::vector<double> dprev(static_cast<std::size_t>(l.in), 0.0);
    for (int o = 0; o < l.out; ++o) {
      double d = delta[static_cast<std::size_t>(o)];
      g.db[static_cast<std::size_t>(o)] += d;
      double* gw = &g.dw[static_cast<std::size_t>(o) * l.in];
      const double* wrow = &l.w[static_cast<std::size_t>(o) * l.in];
      for (int i = 0; i < l.in; ++i) {
        gw[i] += d * x[static_cast<std::size_t>(i)];
        dprev[static_cast<std::size_t>(i)] += d * wrow[i];
      }
    }
    delta = std::move(dprev);
  }
}

std::vector<LayerGrads> Mlp::make_grads() const {
  std::vector<LayerGrads> g(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    g[i].dw.assign(layers_[i].w.size(), 0.0);
    g[i].db.assign(layers_[i].b.size(), 0.0);
  }
  return g;
}

void Mlp::zero_grads(std::vector<LayerGrads>& grads) {
  for (auto& g : grads) {
    std::fill(g.dw.begin(), g.dw.end(), 0.0);
    std::fill(g.db.begin(), g.db.end(), 0.0);
  }
}

void Mlp::copy_parameters_from(const Mlp& other) {
  DIMMER_REQUIRE(layers_.size() == other.layers_.size(),
                 "architecture mismatch");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    DIMMER_REQUIRE(layers_[i].in == other.layers_[i].in &&
                       layers_[i].out == other.layers_[i].out,
                   "architecture mismatch");
    layers_[i].w = other.layers_[i].w;
    layers_[i].b = other.layers_[i].b;
  }
}

void Mlp::save(std::ostream& os) const {
  os << "dimmer-mlp 1\n" << layers_.size() << '\n';
  os.precision(17);
  for (const auto& l : layers_) {
    os << l.in << ' ' << l.out << ' ' << (l.relu ? 1 : 0) << '\n';
    for (double w : l.w) os << w << ' ';
    os << '\n';
    for (double b : l.b) os << b << ' ';
    os << '\n';
  }
}

Mlp Mlp::load(std::istream& is) {
  // Every field is validated before use: a truncated, corrupt or mismatched
  // stream must produce a clear util::RequireError, never a half-built
  // network (callers such as load_or_train_policy catch and retrain).
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DIMMER_REQUIRE(!is.fail() && magic == "dimmer-mlp" && version == 1,
                 "not a dimmer-mlp v1 stream");
  std::size_t n_layers = 0;
  is >> n_layers;
  DIMMER_REQUIRE(!is.fail() && n_layers >= 1 && n_layers < 64,
                 "implausible layer count in mlp stream");
  Mlp net;
  int prev_out = -1;
  for (std::size_t li = 0; li < n_layers; ++li) {
    DenseLayer l;
    int relu = 0;
    is >> l.in >> l.out >> relu;
    DIMMER_REQUIRE(!is.fail() && l.in > 0 && l.out > 0,
                   "corrupt mlp stream: bad layer header");
    DIMMER_REQUIRE(l.in <= 65536 && l.out <= 65536,
                   "implausible layer width in mlp stream");
    DIMMER_REQUIRE(relu == 0 || relu == 1,
                   "corrupt mlp stream: bad activation flag");
    DIMMER_REQUIRE(prev_out < 0 || l.in == prev_out,
                   "corrupt mlp stream: layer shapes do not chain");
    prev_out = l.out;
    l.relu = relu != 0;
    l.w.resize(static_cast<std::size_t>(l.in) * l.out);
    l.b.resize(static_cast<std::size_t>(l.out));
    for (double& w : l.w) is >> w;
    for (double& b : l.b) is >> b;
    DIMMER_REQUIRE(!is.fail(), "corrupt mlp stream: truncated weights");
    for (double w : l.w)
      DIMMER_REQUIRE(std::isfinite(w), "non-finite weight in mlp stream");
    for (double b : l.b)
      DIMMER_REQUIRE(std::isfinite(b), "non-finite bias in mlp stream");
    net.layers_.push_back(std::move(l));
  }
  return net;
}

Adam::Adam(const Mlp& net, Config cfg) : cfg_(cfg) {
  m_ = net.make_grads();
  v_ = net.make_grads();
}

void Adam::step(Mlp& net, const std::vector<LayerGrads>& grads,
                double batch_scale) {
  DIMMER_REQUIRE(grads.size() == m_.size(), "grads shape mismatch");
  ++t_;
  double bc1 = 1.0 - std::pow(cfg_.beta1, t_);
  double bc2 = 1.0 - std::pow(cfg_.beta2, t_);
  auto& layers = net.mutable_layers();
  for (std::size_t li = 0; li < layers.size(); ++li) {
    auto update = [&](std::vector<double>& p, const std::vector<double>& g,
                      std::vector<double>& m, std::vector<double>& v) {
      for (std::size_t i = 0; i < p.size(); ++i) {
        double grad = g[i] * batch_scale;
        m[i] = cfg_.beta1 * m[i] + (1.0 - cfg_.beta1) * grad;
        v[i] = cfg_.beta2 * v[i] + (1.0 - cfg_.beta2) * grad * grad;
        double mhat = m[i] / bc1;
        double vhat = v[i] / bc2;
        p[i] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
      }
    };
    update(layers[li].w, grads[li].dw, m_[li].dw, v_[li].dw);
    update(layers[li].b, grads[li].db, m_[li].db, v_[li].db);
  }
}

}  // namespace dimmer::rl
