// Deployment export: emit a quantized network as a self-contained C header.
//
// The paper's DQN runs inside Contiki-NG firmware on an FPU-less MSP430;
// this generator produces exactly the artifact such firmware would compile
// in — int16 weight arrays at the fixed-point scale, layer dimensions, and
// an inference routine written in portable C89 using only 32-bit integer
// arithmetic.
#pragma once

#include <string>

#include "rl/quantized.hpp"

namespace dimmer::rl {

/// Renders `net` as a C header. `symbol_prefix` must be a valid C
/// identifier prefix (e.g. "dimmer_dqn"). The header defines:
///   static const int16_t <prefix>_lN_w[], <prefix>_lN_b[];
///   enum dimensions;  and  static int <prefix>_infer(const int16_t *x)
/// returning the argmax action.
std::string export_quantized_c_header(const QuantizedMlp& net,
                                      const std::string& symbol_prefix);

}  // namespace dimmer::rl
