#include "rl/dqn.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "util/check.hpp"

namespace dimmer::rl {

DqnAgent::DqnAgent(DqnConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      online_(cfg.architecture, seed),
      target_(cfg.architecture, seed),
      adam_(online_, Adam::Config{cfg.lr, 0.9, 0.999, 1e-8}),
      replay_(cfg.replay_capacity),
      grads_(online_.make_grads()) {
  DIMMER_REQUIRE(cfg_.gamma >= 0.0 && cfg_.gamma < 1.0, "gamma out of [0,1)");
  DIMMER_REQUIRE(cfg_.batch_size > 0, "batch size must be positive");
  DIMMER_REQUIRE(cfg_.min_replay_before_training >= cfg_.batch_size,
                 "min_replay_before_training must be >= batch_size (training "
                 "on a smaller buffer just resamples the same transitions)");
  DIMMER_REQUIRE(cfg_.epsilon_anneal_steps > 0, "anneal steps must be > 0");
  target_.copy_parameters_from(online_);
}

double DqnAgent::epsilon() const {
  if (env_steps_ >= cfg_.epsilon_anneal_steps) return cfg_.epsilon_end;
  double frac = static_cast<double>(env_steps_) /
                static_cast<double>(cfg_.epsilon_anneal_steps);
  return cfg_.epsilon_start +
         frac * (cfg_.epsilon_end - cfg_.epsilon_start);
}

int DqnAgent::select_action(const std::vector<double>& state,
                            util::Pcg32& rng) {
  if (rng.uniform() < epsilon())
    return static_cast<int>(
        rng.uniform_below(static_cast<std::uint32_t>(online_.output_size())));
  return greedy_action(state);
}

int DqnAgent::greedy_action(const std::vector<double>& state) const {
  std::vector<double> q = online_.forward(state);
  return static_cast<int>(
      std::max_element(q.begin(), q.end()) - q.begin());
}

std::vector<double> DqnAgent::q_values(const std::vector<double>& state) const {
  return online_.forward(state);
}

void DqnAgent::observe(Transition t, util::Pcg32& rng) {
  DIMMER_REQUIRE(t.action >= 0 && t.action < online_.output_size(),
                 "action out of range");
  // Capture trace fields before the transition is moved into the buffer.
  const int action = t.action;
  const double reward = t.reward;
  const bool done = t.done;
  replay_.push(std::move(t));
  ++env_steps_;
  const std::size_t trained_before = train_steps_;
  if (replay_.size() >= cfg_.min_replay_before_training) train_step(rng);

  if (instr_.metrics) {
    obs::MetricsRegistry& m = *instr_.metrics;
    m.counter("dqn.observations") += 1;
    m.counter("dqn.train_steps") += train_steps_ - trained_before;
    m.gauge("dqn.epsilon") = epsilon();
    m.gauge("dqn.recent_loss") = recent_loss_;
  }
  if (instr_.trace) {
    obs::TraceEvent e;
    e.kind = "dqn_step";
    e.round = env_steps_ - 1;
    e.f("action", action)
        .f("reward", reward)
        .f("done", done ? 1.0 : 0.0)
        .f("epsilon", epsilon())
        .f("recent_loss", recent_loss_)
        .f("replay_size", static_cast<double>(replay_.size()))
        .f("train_steps", static_cast<double>(train_steps_));
    instr_.trace->emit(e);
  }
}

void DqnAgent::train_step(util::Pcg32& rng) {
  if (cfg_.lr_decay_steps > 0) {
    double frac = std::min(1.0, static_cast<double>(train_steps_) /
                                    static_cast<double>(cfg_.lr_decay_steps));
    adam_.set_learning_rate(cfg_.lr + frac * (cfg_.lr_final - cfg_.lr));
  }
  Mlp::zero_grads(grads_);
  auto idx = replay_.sample_indices(cfg_.batch_size, rng);
  double loss_acc = 0.0;
  ForwardCache cache;
  for (std::size_t i : idx) {
    const Transition& tr = replay_.at(i);
    // TD target: r + gamma * Q_target(s', a*) with a* = argmax Q_online
    // (Double DQN) or argmax Q_target (vanilla); 0 bootstrap if done.
    double target_v = tr.reward;
    if (!tr.done) {
      double disc = tr.discount > 0.0 ? tr.discount : cfg_.gamma;
      std::vector<double> qn = target_.forward(tr.next_state);
      if (cfg_.double_dqn) {
        std::vector<double> qo = online_.forward(tr.next_state);
        auto a_star = static_cast<std::size_t>(
            std::max_element(qo.begin(), qo.end()) - qo.begin());
        target_v += disc * qn[a_star];
      } else {
        target_v += disc * *std::max_element(qn.begin(), qn.end());
      }
    }
    std::vector<double> q = online_.forward_cached(tr.state, cache);
    double td = q[static_cast<std::size_t>(tr.action)] - target_v;

    // Huber loss gradient on the chosen action only.
    double d = cfg_.huber_delta;
    double g = std::abs(td) <= d ? td : (td > 0 ? d : -d);
    loss_acc += std::abs(td) <= d ? 0.5 * td * td
                                  : d * (std::abs(td) - 0.5 * d);

    std::vector<double> dout(q.size(), 0.0);
    dout[static_cast<std::size_t>(tr.action)] = g;
    online_.backward(cache, dout, grads_);
  }
  adam_.step(online_, grads_, 1.0 / static_cast<double>(cfg_.batch_size));
  ++train_steps_;
  recent_loss_ = 0.99 * recent_loss_ +
                 0.01 * (loss_acc / static_cast<double>(cfg_.batch_size));
  if (train_steps_ % cfg_.target_sync_period == 0)
    target_.copy_parameters_from(online_);
}

void DqnAgent::save_checkpoint(std::ostream& os) const {
  os << "dimmer-dqn-ckpt 1\n" << env_steps_ << ' ' << train_steps_ << ' ';
  os.precision(17);
  os << recent_loss_ << '\n';
  online_.save(os);
  target_.save(os);
}

void DqnAgent::restore_checkpoint(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DIMMER_REQUIRE(!is.fail() && magic == "dimmer-dqn-ckpt" && version == 1,
                 "not a dimmer-dqn-ckpt v1 stream");
  std::size_t env_steps = 0, train_steps = 0;
  double loss = 0.0;
  is >> env_steps >> train_steps >> loss;
  DIMMER_REQUIRE(!is.fail() && std::isfinite(loss),
                 "corrupt dqn checkpoint: bad step counters");

  // Parse into temporaries first so a corrupt stream leaves *this untouched.
  Mlp online = Mlp::load(is);
  Mlp target = Mlp::load(is);
  auto check_arch = [&](const Mlp& net) {
    DIMMER_REQUIRE(net.layers().size() + 1 == cfg_.architecture.size(),
                   "dqn checkpoint architecture mismatch");
    for (std::size_t l = 0; l < net.layers().size(); ++l)
      DIMMER_REQUIRE(net.layers()[l].in == cfg_.architecture[l] &&
                         net.layers()[l].out == cfg_.architecture[l + 1],
                     "dqn checkpoint architecture mismatch");
  };
  check_arch(online);
  check_arch(target);

  online_ = std::move(online);
  target_ = std::move(target);
  env_steps_ = env_steps;
  train_steps_ = train_steps;
  recent_loss_ = loss;
  // Adam moments are not checkpointed; the optimiser restarts cold.
  adam_ = Adam(online_, Adam::Config{cfg_.lr, 0.9, 0.999, 1e-8});
  grads_ = online_.make_grads();
}

}  // namespace dimmer::rl
