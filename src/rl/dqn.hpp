// Deep Q-Network agent (Mnih et al. 2015-style, scaled to the paper's
// 31 -> 30 ReLU -> 3 architecture): experience replay, a periodically
// synchronised target network, epsilon-greedy exploration with linear
// annealing, and Huber TD loss.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "rl/mlp.hpp"
#include "rl/replay.hpp"
#include "util/rng.hpp"

namespace dimmer::rl {

struct DqnConfig {
  std::vector<int> architecture = {31, 30, 3};  ///< paper Table I + §IV-B
  double gamma = 0.7;            ///< paper: "discount factor gamma of 0.7"
  double lr = 1e-3;
  std::size_t replay_capacity = 50000;
  std::size_t batch_size = 32;
  std::size_t min_replay_before_training = 500;
  std::size_t target_sync_period = 500;  ///< train steps between target syncs
  /// Paper: epsilon annealed 100% -> 1% linearly over 100 000 steps, then 1%.
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::size_t epsilon_anneal_steps = 100000;
  double huber_delta = 1.0;
  /// Linear learning-rate decay from `lr` to `lr_final` over
  /// `lr_decay_steps` training steps (0 disables the schedule). A lower
  /// final rate lets the Q-gaps between near-equal actions (decrease vs
  /// maintain in calm states) settle instead of jittering.
  double lr_final = 2e-4;
  std::size_t lr_decay_steps = 0;
  /// Double DQN (van Hasselt 2016): select the bootstrap action with the
  /// online network, evaluate it with the target network. Reduces the
  /// maximization bias that otherwise inflates "maintain" values.
  bool double_dqn = true;
};

class DqnAgent {
 public:
  DqnAgent(DqnConfig cfg, std::uint64_t seed);

  /// Epsilon-greedy action for the current annealing position.
  int select_action(const std::vector<double>& state, util::Pcg32& rng);

  /// Pure exploitation (deployment-time inference).
  int greedy_action(const std::vector<double>& state) const;

  /// Q-values from the online network.
  std::vector<double> q_values(const std::vector<double>& state) const;

  /// Store a transition and run one training step (if warm enough).
  void observe(Transition t, util::Pcg32& rng);

  double epsilon() const;
  std::size_t steps() const { return env_steps_; }
  std::size_t train_steps() const { return train_steps_; }
  const Mlp& online_network() const { return online_; }
  Mlp& mutable_online_network() { return online_; }
  const DqnConfig& config() const { return cfg_; }
  const ReplayBuffer& replay() const { return replay_; }

  /// Mean TD loss over recent training steps (diagnostics).
  double recent_loss() const { return recent_loss_; }

  /// Serialises the state a warm coordinator failover transfers: both
  /// network parameter sets plus the step counters (they drive epsilon
  /// annealing, lr decay and target syncs). The replay buffer and Adam
  /// moments are deliberately excluded — megabytes no backup would
  /// replicate over the air; a restored agent refills its buffer before
  /// training resumes.
  void save_checkpoint(std::ostream& os) const;
  /// Restores a checkpoint written by save_checkpoint. Throws
  /// util::RequireError on a corrupt/truncated stream or an architecture
  /// mismatch; the agent is left untouched on failure.
  void restore_checkpoint(std::istream& is);

  /// Optional observability hooks (a "dqn_step" event per observe()).
  /// Sinks never draw from the RNG, so learning is identical with or
  /// without instrumentation.
  void set_instrumentation(obs::Instrumentation instr) { instr_ = instr; }

 private:
  void train_step(util::Pcg32& rng);

  DqnConfig cfg_;
  Mlp online_;
  Mlp target_;
  Adam adam_;
  ReplayBuffer replay_;
  std::vector<LayerGrads> grads_;
  std::size_t env_steps_ = 0;
  std::size_t train_steps_ = 0;
  double recent_loss_ = 0.0;
  obs::Instrumentation instr_;
};

}  // namespace dimmer::rl
