// Tabular Q-learning — the classical alternative the paper argues against
// for the central adaptivity problem (§III-B: "our input space is ... high-
// dimensional[;] this makes tabular Q-learning unfit"). We implement it
// anyway, over a coarse discretization, so the claim can be measured
// (bench_ablation_tabular).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace dimmer::rl {

class TabularQ {
 public:
  TabularQ(std::size_t n_states, std::size_t n_actions, double alpha,
           double gamma);

  std::size_t n_states() const { return n_states_; }
  std::size_t n_actions() const { return n_actions_; }

  double q(std::size_t state, std::size_t action) const;
  std::size_t greedy(std::size_t state) const;
  std::size_t select(std::size_t state, double epsilon, util::Pcg32& rng);

  /// One-step Q-learning update.
  void update(std::size_t s, std::size_t a, double reward, std::size_t s2,
              bool done);

  /// States whose every action value is still exactly 0 (never visited) —
  /// a direct view of the coverage problem tabular methods face.
  std::size_t unvisited_states() const;

 private:
  std::size_t index(std::size_t s, std::size_t a) const;

  std::size_t n_states_;
  std::size_t n_actions_;
  double alpha_;
  double gamma_;
  std::vector<double> table_;
  std::vector<bool> visited_;
};

}  // namespace dimmer::rl
