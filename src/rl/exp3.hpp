// Exp3 — the adversarial multi-armed-bandit algorithm (Auer et al. 2002)
// behind Dimmer's distributed forwarder selection (paper §IV-C, Eq. 2):
//
//   p_i(t) = (1 - gamma) * w_i(t) / sum_j w_j(t) + gamma / K
//   w_i(t+1) = w_i(t) * exp(gamma * r_hat / K),  r_hat = r / p_i(t)
//
// plus Dimmer's stability extension: reset_arm() reinitialises an arm's
// weight after a network-breaking configuration (§IV-C "Improving
// stability" (b)).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace dimmer::rl {

class Exp3 {
 public:
  /// `arms` >= 2, `gamma` in (0,1] is the exploration factor.
  Exp3(std::size_t arms, double gamma);

  std::size_t arms() const { return weights_.size(); }
  double gamma() const { return gamma_; }

  /// Current action distribution (Eq. 2); sums to 1.
  std::vector<double> probabilities() const;

  /// Probability of a single arm. Allocation-free (called on the hot path
  /// by update()); exactly equal to probabilities()[arm].
  double probability(std::size_t arm) const;

  /// Sample an arm from the current distribution. Allocation-free; draws
  /// exactly one uniform from `rng` and walks the same per-arm probability
  /// expression as probabilities(), so the sampling sequence for a fixed
  /// seed is identical to materialising the distribution first.
  std::size_t sample(util::Pcg32& rng) const;

  /// Most probable arm (deployment-time role outside a learning turn).
  std::size_t best_arm() const;

  /// Exp3 update after playing `arm` and receiving reward in [0,1].
  void update(std::size_t arm, double reward);

  /// Dimmer's punishment: reinitialise an arm to the initial weight,
  /// "greatly reducing the risk of re-entering this bad configuration".
  void reset_arm(std::size_t arm);

  const std::vector<double>& weights() const { return weights_; }

 private:
  double total_weight() const;
  void normalise_if_needed();

  double gamma_;
  std::vector<double> weights_;
};

}  // namespace dimmer::rl
