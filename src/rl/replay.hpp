// Experience replay buffer for the DQN (uniform sampling, ring eviction).
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dimmer::rl {

/// One (s, a, R, s', done) tuple. For n-step returns, `reward` holds the
/// discounted n-step sum and `discount` the matching bootstrap factor
/// (gamma^n); discount < 0 means "single step, use the agent's gamma".
struct Transition {
  std::vector<double> state;
  int action = 0;
  double reward = 0.0;
  std::vector<double> next_state;
  bool done = false;
  double discount = -1.0;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : cap_(capacity) {
    DIMMER_REQUIRE(capacity > 0, "replay capacity must be positive");
    buf_.reserve(capacity);
  }

  void push(Transition t) {
    if (buf_.size() < cap_) {
      buf_.push_back(std::move(t));
    } else {
      buf_[head_] = std::move(t);
      head_ = (head_ + 1) % cap_;
    }
  }

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return buf_.empty(); }

  const Transition& at(std::size_t i) const {
    DIMMER_REQUIRE(i < buf_.size(), "replay index out of range");
    return buf_[i];
  }

  /// Uniform sample with replacement of `n` transition indices.
  std::vector<std::size_t> sample_indices(std::size_t n,
                                          util::Pcg32& rng) const {
    DIMMER_REQUIRE(!buf_.empty(), "cannot sample from an empty buffer");
    std::vector<std::size_t> out(n);
    for (auto& i : out)
      i = rng.uniform_below(static_cast<std::uint32_t>(buf_.size()));
    return out;
  }

 private:
  std::size_t cap_;
  std::vector<Transition> buf_;
  std::size_t head_ = 0;
};

}  // namespace dimmer::rl
