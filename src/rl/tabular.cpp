#include "rl/tabular.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dimmer::rl {

TabularQ::TabularQ(std::size_t n_states, std::size_t n_actions, double alpha,
                   double gamma)
    : n_states_(n_states),
      n_actions_(n_actions),
      alpha_(alpha),
      gamma_(gamma) {
  DIMMER_REQUIRE(n_states >= 1 && n_actions >= 2, "table too small");
  DIMMER_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha out of (0,1]");
  DIMMER_REQUIRE(gamma >= 0.0 && gamma < 1.0, "gamma out of [0,1)");
  table_.assign(n_states * n_actions, 0.0);
  visited_.assign(n_states, false);
}

std::size_t TabularQ::index(std::size_t s, std::size_t a) const {
  DIMMER_REQUIRE(s < n_states_ && a < n_actions_, "index out of range");
  return s * n_actions_ + a;
}

double TabularQ::q(std::size_t state, std::size_t action) const {
  return table_[index(state, action)];
}

std::size_t TabularQ::greedy(std::size_t state) const {
  DIMMER_REQUIRE(state < n_states_, "state out of range");
  auto begin = table_.begin() + static_cast<std::ptrdiff_t>(state * n_actions_);
  return static_cast<std::size_t>(
      std::max_element(begin, begin + static_cast<std::ptrdiff_t>(n_actions_)) -
      begin);
}

std::size_t TabularQ::select(std::size_t state, double epsilon,
                             util::Pcg32& rng) {
  if (rng.uniform() < epsilon)
    return rng.uniform_below(static_cast<std::uint32_t>(n_actions_));
  return greedy(state);
}

void TabularQ::update(std::size_t s, std::size_t a, double reward,
                      std::size_t s2, bool done) {
  DIMMER_REQUIRE(s2 < n_states_, "next state out of range");
  double target = reward;
  if (!done) {
    auto begin = table_.begin() + static_cast<std::ptrdiff_t>(s2 * n_actions_);
    target += gamma_ * *std::max_element(
                           begin, begin + static_cast<std::ptrdiff_t>(n_actions_));
  }
  double& cell = table_[index(s, a)];
  cell += alpha_ * (target - cell);
  visited_[s] = true;
}

std::size_t TabularQ::unvisited_states() const {
  return static_cast<std::size_t>(
      std::count(visited_.begin(), visited_.end(), false));
}

}  // namespace dimmer::rl
