// A minimal fully-connected network with ReLU hidden activations.
//
// This is deliberately a from-scratch implementation: the paper's DQN is a
// single 30-neuron hidden layer ("we implement our own neuronal
// compute-system rather than use an existing framework"), so a dependency-
// free forward/backward pass keeps the training loop transparent and portable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/rng.hpp"

namespace dimmer::rl {

/// One dense layer: y = act(W x + b). Weights are row-major [out][in].
struct DenseLayer {
  int in = 0;
  int out = 0;
  bool relu = false;  ///< ReLU if true, identity otherwise (output layer)
  std::vector<double> w;  // out*in
  std::vector<double> b;  // out
};

/// Gradients and Adam moments share the layer's parameter layout.
struct LayerGrads {
  std::vector<double> dw;
  std::vector<double> db;
};

/// Cached activations from a forward pass, needed for backprop.
struct ForwardCache {
  std::vector<std::vector<double>> inputs;      ///< input to each layer
  std::vector<std::vector<double>> pre_act;     ///< W x + b per layer
  std::vector<double> output;
};

class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}; hidden layers get ReLU, the output layer
  /// is linear (Q-values). He-initialised from `seed`.
  Mlp(const std::vector<int>& sizes, std::uint64_t seed);

  int input_size() const;
  int output_size() const;
  std::size_t parameter_count() const;
  const std::vector<DenseLayer>& layers() const { return layers_; }
  std::vector<DenseLayer>& mutable_layers() { return layers_; }

  /// Plain inference.
  std::vector<double> forward(const std::vector<double>& x) const;

  /// Inference keeping activations for a later backward() call.
  std::vector<double> forward_cached(const std::vector<double>& x,
                                     ForwardCache& cache) const;

  /// Backprop dLoss/dOutput through the cache, accumulating into `grads`
  /// (which must match shapes(); call zero_grads() first for a fresh batch).
  void backward(const ForwardCache& cache, const std::vector<double>& dout,
                std::vector<LayerGrads>& grads) const;

  /// Gradient buffers matching this network's shape, zero-initialised.
  std::vector<LayerGrads> make_grads() const;
  static void zero_grads(std::vector<LayerGrads>& grads);

  /// Copy all parameters from another identically-shaped network.
  void copy_parameters_from(const Mlp& other);

  /// Text (de)serialisation of the architecture + weights.
  void save(std::ostream& os) const;
  static Mlp load(std::istream& is);

 private:
  explicit Mlp() = default;
  std::vector<DenseLayer> layers_;
};

/// Adam optimiser over an Mlp's parameters.
class Adam {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
  };

  Adam(const Mlp& net, Config cfg);

  /// Applies one update from accumulated gradients (scaled by 1/batch).
  void step(Mlp& net, const std::vector<LayerGrads>& grads, double batch_scale);

  void set_learning_rate(double lr) { cfg_.lr = lr; }
  double learning_rate() const { return cfg_.lr; }

 private:
  Config cfg_;
  std::vector<LayerGrads> m_;
  std::vector<LayerGrads> v_;
  long t_ = 0;
};

}  // namespace dimmer::rl
