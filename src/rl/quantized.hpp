// The embedded DQN inference engine (paper §IV-B "Embedded DQN").
//
// Weights are quantized to 16-bit fixed-point integers with a decimal scale
// of 100 ("two floating digits"), and all intermediate computation uses
// 32-bit accumulators — exactly the arithmetic an FPU-less 16-bit MCU (the
// TelosB's MSP430) would run. The paper reports 2.1 kB of flash for weights
// and 400 B of RAM for intermediaries; flash_bytes()/ram_bytes() let tests
// and benches check our budget against those numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "rl/mlp.hpp"
#include "util/fixed_point.hpp"

namespace dimmer::rl {

/// One quantized dense layer.
struct QuantizedLayer {
  int in = 0;
  int out = 0;
  bool relu = false;
  std::vector<std::int16_t> w;  // scale-100 fixed point, row-major [out][in]
  std::vector<std::int16_t> b;  // scale-100
};

class QuantizedMlp {
 public:
  /// Quantizes a trained float network (saturating at int16 range).
  explicit QuantizedMlp(const Mlp& net,
                        std::int32_t scale = util::kFixedPointScale);

  /// Integer-only inference. Input values are floats in [-1,1] (the paper's
  /// normalized features); they are quantized to scale-100 on entry.
  /// Returns the Q-values in fixed-point (scale-100) units.
  std::vector<std::int32_t> forward_fixed(const std::vector<double>& x) const;

  /// Convenience: argmax action from integer inference.
  int greedy_action(const std::vector<double>& x) const;

  /// Q-values converted back to floats (for comparisons against the
  /// reference float network).
  std::vector<double> forward(const std::vector<double>& x) const;

  /// Bytes of weight storage (2 B per parameter — the paper's 2.1 kB).
  std::size_t flash_bytes() const;

  /// Peak bytes of intermediate storage during inference (4 B accumulators
  /// for the widest pair of adjacent layers — the paper's 400 B).
  std::size_t ram_bytes() const;

  std::int32_t scale() const { return scale_; }
  const std::vector<QuantizedLayer>& layers() const { return layers_; }

 private:
  std::vector<QuantizedLayer> layers_;
  std::int32_t scale_;
};

}  // namespace dimmer::rl
