#include "rl/exp3.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dimmer::rl {

namespace {
constexpr double kInitialWeight = 1.0;
// Renormalise when weights drift beyond these bounds to avoid overflow in
// long runs; Exp3's probabilities are scale-invariant.
constexpr double kMaxWeight = 1e100;
constexpr double kMinTotal = 1e-100;
}  // namespace

Exp3::Exp3(std::size_t arms, double gamma) : gamma_(gamma) {
  DIMMER_REQUIRE(arms >= 2, "Exp3 needs at least two arms");
  DIMMER_REQUIRE(gamma > 0.0 && gamma <= 1.0, "gamma out of (0,1]");
  weights_.assign(arms, kInitialWeight);
}

std::vector<double> Exp3::probabilities() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  std::vector<double> p(weights_.size());
  double k = static_cast<double>(weights_.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = (1.0 - gamma_) * weights_[i] / total + gamma_ / k;
  return p;
}

double Exp3::probability(std::size_t arm) const {
  DIMMER_REQUIRE(arm < weights_.size(), "arm out of range");
  return probabilities()[arm];
}

std::size_t Exp3::sample(util::Pcg32& rng) const {
  std::vector<double> p = probabilities();
  double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc += p[i];
    if (u < acc) return i;
  }
  return p.size() - 1;  // floating-point slack
}

std::size_t Exp3::best_arm() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < weights_.size(); ++i)
    if (weights_[i] > weights_[best]) best = i;
  return best;
}

void Exp3::update(std::size_t arm, double reward) {
  DIMMER_REQUIRE(arm < weights_.size(), "arm out of range");
  DIMMER_REQUIRE(reward >= 0.0 && reward <= 1.0, "reward out of [0,1]");
  double p = probability(arm);
  double r_hat = reward / p;  // importance-weighted reward
  double k = static_cast<double>(weights_.size());
  weights_[arm] *= std::exp(gamma_ * r_hat / k);
  normalise_if_needed();
}

void Exp3::reset_arm(std::size_t arm) {
  DIMMER_REQUIRE(arm < weights_.size(), "arm out of range");
  weights_[arm] = kInitialWeight;
}

void Exp3::normalise_if_needed() {
  double total = 0.0, maxw = 0.0;
  for (double w : weights_) {
    total += w;
    maxw = std::max(maxw, w);
  }
  if (maxw > kMaxWeight || total < kMinTotal) {
    for (double& w : weights_) w /= maxw;
  }
}

}  // namespace dimmer::rl
