#include "rl/exp3.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dimmer::rl {

namespace {
constexpr double kInitialWeight = 1.0;
// Renormalise when the largest weight drifts past this bound; Exp3's
// probabilities are scale-invariant, so rescaling is free.
constexpr double kMaxWeight = 1e100;
// Floor applied when rescaling. Without it, repeated renormalisations flush
// a long-losing arm's weight to exactly 0.0 (1e-100 -> 1e-200 -> ... -> 0),
// and the multiplicative update can never resurrect a zero weight: the arm
// is dead for the rest of the run even if it becomes the best one. A floor
// of 1e-100 is far below anything the gamma/K exploration term can tell
// apart, so probabilities are unaffected, but the arm stays recoverable.
constexpr double kMinWeight = 1e-100;
// The update exponent is gamma * r / (K * p) with p >= gamma / K, hence
// bounded by the reward r <= 1. The clamp is defence in depth (it keeps the
// weight finite even if the floor or reward validation ever regresses); it
// never binds on valid inputs, so it cannot perturb results.
constexpr double kMaxExponent = 200.0;
}  // namespace

Exp3::Exp3(std::size_t arms, double gamma) : gamma_(gamma) {
  DIMMER_REQUIRE(arms >= 2, "Exp3 needs at least two arms");
  DIMMER_REQUIRE(gamma > 0.0 && gamma <= 1.0, "gamma out of (0,1]");
  weights_.assign(arms, kInitialWeight);
}

double Exp3::total_weight() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  return total;
}

std::vector<double> Exp3::probabilities() const {
  double total = total_weight();
  std::vector<double> p(weights_.size());
  double k = static_cast<double>(weights_.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = (1.0 - gamma_) * weights_[i] / total + gamma_ / k;
  return p;
}

double Exp3::probability(std::size_t arm) const {
  DIMMER_REQUIRE(arm < weights_.size(), "arm out of range");
  double total = total_weight();
  double k = static_cast<double>(weights_.size());
  return (1.0 - gamma_) * weights_[arm] / total + gamma_ / k;
}

std::size_t Exp3::sample(util::Pcg32& rng) const {
  double total = total_weight();
  double k = static_cast<double>(weights_.size());
  double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += (1.0 - gamma_) * weights_[i] / total + gamma_ / k;
    if (u < acc) return i;
  }
  return weights_.size() - 1;  // floating-point slack
}

std::size_t Exp3::best_arm() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < weights_.size(); ++i)
    if (weights_[i] > weights_[best]) best = i;
  return best;
}

void Exp3::update(std::size_t arm, double reward) {
  DIMMER_REQUIRE(arm < weights_.size(), "arm out of range");
  DIMMER_REQUIRE(reward >= 0.0 && reward <= 1.0, "reward out of [0,1]");
  double p = probability(arm);
  double r_hat = reward / p;  // importance-weighted reward
  double k = static_cast<double>(weights_.size());
  double exponent = std::min(gamma_ * r_hat / k, kMaxExponent);
  weights_[arm] *= std::exp(exponent);
  DIMMER_CHECK(std::isfinite(weights_[arm]) && weights_[arm] > 0.0);
  normalise_if_needed();
}

void Exp3::reset_arm(std::size_t arm) {
  DIMMER_REQUIRE(arm < weights_.size(), "arm out of range");
  weights_[arm] = kInitialWeight;
}

void Exp3::normalise_if_needed() {
  double maxw = 0.0;
  for (double w : weights_) maxw = std::max(maxw, w);
  if (maxw <= kMaxWeight) return;
  // Rescale so the largest weight is 1, flooring the rest (see kMinWeight).
  for (double& w : weights_) w = std::max(w / maxw, kMinWeight);
}

}  // namespace dimmer::rl
