#include "rl/quantized.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dimmer::rl {

QuantizedMlp::QuantizedMlp(const Mlp& net, std::int32_t scale)
    : scale_(scale) {
  DIMMER_REQUIRE(scale > 0, "scale must be positive");
  for (const auto& l : net.layers()) {
    QuantizedLayer q;
    q.in = l.in;
    q.out = l.out;
    q.relu = l.relu;
    q.w.reserve(l.w.size());
    q.b.reserve(l.b.size());
    for (double w : l.w) q.w.push_back(util::to_fixed16(w, scale));
    for (double b : l.b) q.b.push_back(util::to_fixed16(b, scale));
    layers_.push_back(std::move(q));
  }
}

std::vector<std::int32_t> QuantizedMlp::forward_fixed(
    const std::vector<double>& x) const {
  DIMMER_REQUIRE(static_cast<int>(x.size()) == layers_.front().in,
                 "input size mismatch");
  // Quantize the normalized inputs to scale-100 integers.
  std::vector<std::int32_t> cur(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    cur[i] = util::to_fixed16(x[i], scale_);

  std::vector<std::int32_t> next;
  for (const auto& l : layers_) {
    next.assign(static_cast<std::size_t>(l.out), 0);
    for (int o = 0; o < l.out; ++o) {
      // 32-bit accumulator at scale^2; bias pre-scaled to match.
      std::int64_t acc = static_cast<std::int64_t>(
                             l.b[static_cast<std::size_t>(o)]) *
                         scale_;
      const std::int16_t* wrow = &l.w[static_cast<std::size_t>(o) * l.in];
      for (int i = 0; i < l.in; ++i)
        acc += static_cast<std::int32_t>(wrow[i]) *
               cur[static_cast<std::size_t>(i)];
      // Back to scale-100; truncation toward zero, like MCU int division.
      std::int32_t v = static_cast<std::int32_t>(acc / scale_);
      if (l.relu && v < 0) v = 0;
      next[static_cast<std::size_t>(o)] = v;
    }
    cur = next;
  }
  return cur;
}

int QuantizedMlp::greedy_action(const std::vector<double>& x) const {
  std::vector<std::int32_t> q = forward_fixed(x);
  return static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
}

std::vector<double> QuantizedMlp::forward(const std::vector<double>& x) const {
  std::vector<std::int32_t> q = forward_fixed(x);
  std::vector<double> out(q.size());
  for (std::size_t i = 0; i < q.size(); ++i)
    out[i] = static_cast<double>(q[i]) / static_cast<double>(scale_);
  return out;
}

std::size_t QuantizedMlp::flash_bytes() const {
  std::size_t params = 0;
  for (const auto& l : layers_) params += l.w.size() + l.b.size();
  return params * sizeof(std::int16_t);
}

std::size_t QuantizedMlp::ram_bytes() const {
  // Double-buffered activations: input vector + widest output vector of
  // 32-bit intermediaries live simultaneously.
  std::size_t widest = 0;
  std::size_t input = static_cast<std::size_t>(layers_.front().in);
  for (const auto& l : layers_)
    widest = std::max(widest, static_cast<std::size_t>(l.out));
  return (input + widest + widest) * sizeof(std::int32_t);
}

}  // namespace dimmer::rl
