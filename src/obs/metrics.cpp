#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace dimmer::obs {

void Histogram::add(double v) {
  DIMMER_CHECK(counts.size() == upper_bounds.size() + 1);
  // First bucket whose upper bound contains v; the overflow bucket otherwise.
  std::size_t b = static_cast<std::size_t>(
      std::lower_bound(upper_bounds.begin(), upper_bounds.end(), v) -
      upper_bounds.begin());
  ++counts[b];
  ++count;
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
}

void Histogram::merge(const Histogram& o) {
  if (o.count == 0 && o.upper_bounds.empty()) return;
  if (upper_bounds.empty() && count == 0) {
    *this = o;
    return;
  }
  DIMMER_REQUIRE(upper_bounds == o.upper_bounds,
                 "histogram merge with mismatched bucket bounds");
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += o.counts[i];
  count += o.count;
  sum += o.sum;
  min = std::min(min, o.min);
  max = std::max(max, o.max);
}

std::uint64_t& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), 0).first;
  return it->second;
}

double& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), 0.0).first;
  return it->second;
}

Histogram& MetricsRegistry::histogram(
    std::string_view name, std::initializer_list<double> upper_bounds) {
  return histogram_impl(name, upper_bounds.begin(), upper_bounds.size());
}

Histogram& MetricsRegistry::histogram(
    std::string_view name, const std::vector<double>& upper_bounds) {
  return histogram_impl(name, upper_bounds.data(), upper_bounds.size());
}

Histogram& MetricsRegistry::histogram_impl(std::string_view name,
                                           const double* bounds,
                                           std::size_t n) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    DIMMER_REQUIRE(n > 0, "histogram bucket bounds required on first use");
    DIMMER_REQUIRE(std::is_sorted(bounds, bounds + n) &&
                       std::adjacent_find(bounds, bounds + n) == bounds + n,
                   "histogram bucket bounds must be strictly ascending");
    Histogram h;
    h.upper_bounds.assign(bounds, bounds + n);
    h.counts.assign(n + 1, 0);
    it = histograms_.emplace(std::string(name), std::move(h)).first;
  } else if (n > 0) {
    DIMMER_REQUIRE(it->second.upper_bounds.size() == n &&
                       std::equal(bounds, bounds + n,
                                  it->second.upper_bounds.begin()),
                   "histogram re-registered with different bucket bounds");
  }
  return it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& o) {
  for (const auto& [k, v] : o.counters_) counters_[k] += v;
  for (const auto& [k, v] : o.gauges_) gauges_[k] = v;
  for (const auto& [k, h] : o.histograms_) {
    auto it = histograms_.find(k);
    if (it == histograms_.end())
      histograms_.emplace(k, h);
    else
      it->second.merge(h);
  }
}

namespace {
template <typename Map, typename EmitValue>
void emit_object(std::ostringstream& os, const Map& m, EmitValue&& ev) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) os << ", ";
    first = false;
    os << util::json_quote(k) << ": ";
    ev(v);
  }
  os << "}";
}
}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  auto section = [&](const char* name) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": ";
  };
  if (!counters_.empty()) {
    section("counters");
    emit_object(os, counters_, [&](std::uint64_t v) { os << v; });
  }
  if (!gauges_.empty()) {
    section("gauges");
    emit_object(os, gauges_, [&](double v) { os << util::json_number(v); });
  }
  if (!histograms_.empty()) {
    section("histograms");
    emit_object(os, histograms_, [&](const Histogram& h) {
      os << "{\"upper_bounds\": [";
      for (std::size_t i = 0; i < h.upper_bounds.size(); ++i)
        os << (i ? ", " : "") << util::json_number(h.upper_bounds[i]);
      os << "], \"counts\": [";
      for (std::size_t i = 0; i < h.counts.size(); ++i)
        os << (i ? ", " : "") << h.counts[i];
      os << "], \"count\": " << h.count
         << ", \"sum\": " << util::json_number(h.sum);
      if (h.count > 0)
        os << ", \"min\": " << util::json_number(h.min)
           << ", \"max\": " << util::json_number(h.max);
      os << "}";
    });
  }
  os << "}";
  return os.str();
}

MetricsRegistry MetricsRegistry::from_json(const std::string& text) {
  return from_value(util::json::parse(text));
}

MetricsRegistry MetricsRegistry::from_value(const util::json::Value& v) {
  MetricsRegistry r;
  if (const util::json::Value* counters = v.find("counters"))
    for (const auto& [name, c] : counters->as_object())
      r.counter(name) = c.as_u64();
  if (const util::json::Value* gauges = v.find("gauges"))
    for (const auto& [name, g] : gauges->as_object()) r.gauge(name) = g.as_double();
  if (const util::json::Value* histograms = v.find("histograms")) {
    for (const auto& [name, h] : histograms->as_object()) {
      std::vector<double> bounds;
      for (const util::json::Value& b : h.at("upper_bounds").as_array())
        bounds.push_back(b.as_double());
      Histogram& hist = r.histogram(name, bounds);
      const auto& counts = h.at("counts").as_array();
      DIMMER_REQUIRE(counts.size() == bounds.size() + 1,
                     "histogram counts/bounds size mismatch");
      for (std::size_t i = 0; i < counts.size(); ++i)
        hist.counts[i] = counts[i].as_u64();
      hist.count = h.at("count").as_u64();
      hist.sum = h.at("sum").as_double();
      // min/max are only serialized for non-empty histograms (the sentinels
      // are +/-inf, which JSON cannot carry); an empty one keeps them.
      if (hist.count > 0) {
        hist.min = h.at("min").as_double();
        hist.max = h.at("max").as_double();
        DIMMER_REQUIRE(hist.min <= hist.max, "histogram min > max");
      }
      std::uint64_t bucket_total = 0;
      for (std::uint64_t c : hist.counts) bucket_total += c;
      DIMMER_REQUIRE(bucket_total == hist.count,
                     "histogram bucket counts do not sum to count");
    }
  }
  return r;
}

}  // namespace dimmer::obs
