#include "obs/trace.hpp"

#include <cstdlib>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace dimmer::obs {

std::string TraceEvent::to_jsonl() const {
  std::ostringstream os;
  os << "{\"event\": " << util::json_quote(kind) << ", \"round\": " << round
     << ", \"t_us\": " << t_us << ", \"node\": " << node;
  if (!fields.empty()) {
    os << ", \"fields\": {";
    for (std::size_t i = 0; i < fields.size(); ++i)
      os << (i ? ", " : "") << util::json_quote(fields[i].first) << ": "
         << util::json_number(fields[i].second);
    os << "}";
  }
  if (!tags.empty()) {
    os << ", \"tags\": {";
    for (std::size_t i = 0; i < tags.size(); ++i)
      os << (i ? ", " : "") << util::json_quote(tags[i].first) << ": "
         << util::json_quote(tags[i].second);
    os << "}";
  }
  os << "}";
  return os.str();
}

// ---- RingBufferSink --------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity) : cap_(capacity) {
  DIMMER_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  buf_.reserve(capacity);
}

void RingBufferSink::emit(const TraceEvent& e) {
  ++total_;
  if (buf_.size() < cap_) {
    buf_.push_back(e);
    return;
  }
  buf_[head_] = e;
  head_ = (head_ + 1) % cap_;
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buf_.size());
  for (std::size_t i = 0; i < buf_.size(); ++i)
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  return out;
}

void RingBufferSink::clear() {
  buf_.clear();
  head_ = 0;
  total_ = 0;
}

// ---- JsonlFileSink ---------------------------------------------------------

JsonlFileSink::JsonlFileSink(const std::string& path)
    : path_(path), file_(path, std::ios::out | std::ios::trunc) {
  DIMMER_REQUIRE(file_.good(), "cannot open trace file for writing: " + path);
  out_ = &file_;
}

JsonlFileSink::JsonlFileSink(std::unique_ptr<std::ostream> out,
                             std::string label)
    : path_(std::move(label)), owned_(std::move(out)) {
  DIMMER_REQUIRE(owned_ != nullptr, "JsonlFileSink needs a stream");
  out_ = owned_.get();
}

void JsonlFileSink::emit(const TraceEvent& e) {
  // Serialize outside the lock; only the write itself is serialized so that
  // parallel trials sharing this sink never tear a line.
  std::string line = e.to_jsonl();
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) {
    ++dropped_;
    return;
  }
  *out_ << line;
  if (out_->fail()) {
    // First failed write: latch the failure and stop touching the stream.
    // The half-written line (if any) is the last output this sink produces.
    failed_ = true;
    ++dropped_;
    return;
  }
  ++lines_;
}

// ---- TaggedSink ------------------------------------------------------------

TaggedSink::TaggedSink(TraceSink* parent, std::string key, std::string value)
    : parent_(parent), key_(std::move(key)), value_(std::move(value)) {
  DIMMER_REQUIRE(parent != nullptr, "TaggedSink needs a parent sink");
}

void TaggedSink::emit(const TraceEvent& e) {
  TraceEvent tagged = e;
  tagged.tag(key_, value_);
  parent_->emit(tagged);
}

// ---- Environment wiring ----------------------------------------------------

std::unique_ptr<TraceSink> sink_from_env() {
  const char* path = std::getenv("DIMMER_TRACE");
  if (!path || !*path) return nullptr;
  return std::make_unique<JsonlFileSink>(path);
}

}  // namespace dimmer::obs
