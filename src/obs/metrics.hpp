// Lightweight metrics for the simulator's hot paths.
//
// A MetricsRegistry is a named collection of counters, gauges, and
// fixed-bucket histograms, designed to ride along the share-nothing
// experiment runner:
//
//  - single-threaded by design: each exp::Runner trial owns its own registry
//    (inside its TrialResult), and registries are merged after the worker
//    pool drains, walking trials in spec order — so the merged result is
//    bit-identical for any DIMMER_JOBS value or thread schedule;
//  - counter()/gauge()/histogram() return references to map nodes, which are
//    stable for the registry's lifetime (and survive moves of the registry),
//    so a hot loop can resolve a name once and bump a plain integer after;
//  - serialization is deterministic: std::map iteration order plus
//    util::json_number's "%.17g".
//
// Merge semantics: counters add, histograms add bucket-wise (bucket bounds
// must match), gauges are overwritten by the merged-in registry ("last
// writer wins" — deterministic because merges happen in spec order).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dimmer::util::json {
class Value;
}

namespace dimmer::obs {

/// Fixed-bucket histogram: `upper_bounds` are the inclusive upper edges of
/// the finite buckets (ascending); one implicit overflow bucket catches
/// everything above the last bound. Tracks count/sum/min/max alongside.
struct Histogram {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;  ///< upper_bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double v);

  /// Bucket-wise addition; `o` must have identical bounds (or be empty).
  void merge(const Histogram& o);
};

class MetricsRegistry {
 public:
  /// Transparent-comparator maps: lookups take string_view, so the hot-path
  /// accessors below never construct a std::string (and never touch the
  /// heap) once a metric exists — the federated round loop's steady-state
  /// allocation audit counts on this.
  using CounterMap = std::map<std::string, std::uint64_t, std::less<>>;
  using GaugeMap = std::map<std::string, double, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram, std::less<>>;

  /// Named monotonic counter; creates it at 0 on first use.
  std::uint64_t& counter(std::string_view name);

  /// Named last-value gauge; creates it at 0.0 on first use.
  double& gauge(std::string_view name);

  /// Named histogram. On first use the bucket upper bounds are installed
  /// (must be non-empty and strictly ascending); later calls must pass the
  /// same bounds (or an empty list to mean "whatever was installed").
  /// Braced-list call sites bind to the initializer_list overload, which
  /// stays off the heap after first use.
  Histogram& histogram(std::string_view name,
                       std::initializer_list<double> upper_bounds);
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& upper_bounds);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Fold `o` into this registry (see merge semantics in the header
  /// comment). Deterministic as long as merges happen in a fixed order.
  void merge(const MetricsRegistry& o);

  const CounterMap& counters() const { return counters_; }
  const GaugeMap& gauges() const { return gauges_; }
  const HistogramMap& histograms() const { return histograms_; }

  /// One deterministic JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {"<name>": {"upper_bounds": [...], "counts": [...],
  ///                              "count": n, "sum": s, "min": m, "max": M}}}
  /// Sections are omitted when empty; an entirely empty registry is "{}".
  std::string to_json() const;

  /// Inverse of to_json(): rebuilds a registry from its serialized form, so
  /// journaled trial registries and checkpointed campaign counters survive
  /// a process kill. Round-trip contract (tested):
  ///   from_json(r.to_json()).to_json() == r.to_json()   (byte-identical)
  /// Throws util::RequireError / json::JsonParseError on malformed input.
  static MetricsRegistry from_json(const std::string& text);

  /// Same, from an already-parsed JSON value (used when the registry is a
  /// subtree of a larger document, e.g. one journal record).
  static MetricsRegistry from_value(const util::json::Value& v);

 private:
  Histogram& histogram_impl(std::string_view name, const double* bounds,
                            std::size_t n);

  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

}  // namespace dimmer::obs
