// Structured per-round tracing.
//
// Dimmer's coordinator steers the network from two aggregate signals; when a
// sweep misbehaves, aggregates are exactly what you cannot debug with. The
// trace layer records *why* each decision was made: one TraceEvent per
// scheduler/controller/bandit/flood step, emitted into a TraceSink.
//
// The default is no sink at all. Every instrumented component holds an
// Instrumentation value (two raw pointers, both null by default) and guards
// each emission site with a pointer check, so with tracing off the hot paths
// pay one predictable branch — bench_micro's *Instrumented benchmarks
// measure the difference, and the integration tests assert that tracing
// never perturbs simulation results (sinks observe, they do not touch RNG
// streams or control flow).
//
// Event kinds and their fields are documented in DESIGN.md ("Observability").
// JSONL wire format (one event per line):
//   {"event": "<kind>", "round": R, "t_us": T, "node": N,
//    "fields": {"<k>": <number>, ...}, "tags": {"<k>": "<v>", ...}}
// `node` is -1 for network-wide events; "fields"/"tags" are omitted when
// empty. Doubles use "%.17g", so lines are deterministic given event order.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace dimmer::obs {

struct TraceEvent {
  std::string kind;        ///< e.g. "flood", "round", "controller", "exp3"
  std::uint64_t round = 0; ///< round / step / decision index of the emitter
  std::int64_t t_us = 0;   ///< simulation time, when the emitter has one
  int node = -1;           ///< node id; -1 = network-wide
  std::vector<std::pair<std::string, double>> fields;
  std::vector<std::pair<std::string, std::string>> tags;

  /// Builder-style append (numeric field / string tag).
  TraceEvent& f(std::string key, double value) {
    fields.emplace_back(std::move(key), value);
    return *this;
  }
  TraceEvent& tag(std::string key, std::string value) {
    tags.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// One JSONL line (no trailing newline).
  std::string to_jsonl() const;
};

/// Where instrumented components emit events. Implementations must not throw
/// out of emit() on the hot path and must not mutate the event.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& e) = 0;
};

/// Bounded in-memory sink: keeps the most recent `capacity` events, dropping
/// the oldest beyond that (dropped() counts the casualties). Single-threaded,
/// like the per-trial registries.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void emit(const TraceEvent& e) override;

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t size() const { return buf_.size(); }
  std::uint64_t total() const { return total_; }
  std::uint64_t dropped() const {
    return total_ - static_cast<std::uint64_t>(buf_.size());
  }
  void clear();

 private:
  std::size_t cap_;
  std::size_t head_ = 0;  ///< index of the oldest event once full
  std::uint64_t total_ = 0;
  std::vector<TraceEvent> buf_;
};

/// Appends one JSONL line per event to a file. Thread-safe: parallel trials
/// of one sweep may share a single file sink (lines from different trials
/// interleave in schedule order, but every line is complete and valid —
/// tag trials via TaggedSink to tell them apart).
///
/// Write failures (disk full, pipe closed) degrade gracefully: the sink
/// stops writing, counts every subsequent event in dropped(), and never
/// throws from emit() or the destructor — tracing is observability, and
/// observability must not take the simulation down with it.
class JsonlFileSink : public TraceSink {
 public:
  /// Throws util::RequireError if the file cannot be opened for writing.
  explicit JsonlFileSink(const std::string& path);
  /// Writes to a caller-supplied stream instead of a file (tests inject
  /// failing streams this way). The stream must not be null.
  JsonlFileSink(std::unique_ptr<std::ostream> out, std::string label);

  void emit(const TraceEvent& e) override;

  std::uint64_t lines() const { return lines_; }
  /// True once a write has failed; all later events are dropped.
  bool failed() const { return failed_; }
  /// Events discarded because the underlying stream failed.
  std::uint64_t dropped() const { return dropped_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream file_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_ = nullptr;
  std::mutex mu_;
  std::uint64_t lines_ = 0;
  std::uint64_t dropped_ = 0;
  bool failed_ = false;
};

/// Forwards to a parent sink with a fixed tag appended to every event (e.g.
/// the trial scenario, when parallel trials share one JSONL file).
class TaggedSink : public TraceSink {
 public:
  TaggedSink(TraceSink* parent, std::string key, std::string value);

  void emit(const TraceEvent& e) override;

 private:
  TraceSink* parent_;
  std::string key_, value_;
};

/// $DIMMER_TRACE=<path> -> a JsonlFileSink on that path; null when the
/// variable is unset or empty.
std::unique_ptr<TraceSink> sink_from_env();

/// What instrumented components carry: an optional event sink and an
/// optional metrics registry. Default-constructed = fully off; both
/// pointers are borrowed (the owner must outlive the component's use).
struct Instrumentation {
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool active() const { return trace != nullptr || metrics != nullptr; }
};

}  // namespace dimmer::obs
