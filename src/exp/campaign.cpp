#include "exp/campaign.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "exp/journal.hpp"
#include "exp/serialize.hpp"
#include "exp/watchdog.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/json_parse.hpp"
#include "util/rng.hpp"
#include "util/wallclock.hpp"

namespace dimmer::exp {

namespace {

// ---- small file / env helpers ---------------------------------------------

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return;
  DIMMER_REQUIRE(false, "campaign: cannot create directory '" + dir +
                            "': " + std::strerror(errno));
}

/// Strict-parsed positive integer from the environment (same discipline as
/// jobs_from_env); std::nullopt when the variable is unset.
std::optional<long> env_count(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  const bool parsed = end != s && *end == '\0' && errno != ERANGE &&
                      !std::isspace(static_cast<unsigned char>(*s));
  DIMMER_REQUIRE(parsed, std::string(name) + " is not a valid integer");
  DIMMER_REQUIRE(v >= 1, std::string(name) + " must be >= 1");
  return v;
}

/// Newline count of a file (== its record count for our JSONL formats,
/// ignoring at most one torn tail). Missing file counts zero.
std::size_t count_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return 0;
  std::size_t n = 0;
  char buf[4096];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    for (std::streamsize i = 0; i < in.gcount(); ++i)
      if (buf[i] == '\n') ++n;
    if (!in) break;
  }
  return n;
}

// ---- checkpoint ------------------------------------------------------------

struct Checkpoint {
  int shards = 0;
  int max_attempts = 0;
  std::uint64_t master_seed = 0;
  std::uint64_t digest = 0;
  obs::MetricsRegistry counters;
  std::vector<TrialSpec> specs;
};

std::string checkpoint_json(const CampaignOptions& opt,
                            const std::vector<TrialSpec>& specs,
                            std::uint64_t digest,
                            const obs::MetricsRegistry& counters) {
  std::ostringstream os;
  os << "{\"version\": 1, \"shards\": " << opt.shards
     << ", \"master_seed\": " << opt.master_seed
     << ", \"max_attempts\": " << opt.max_attempts
     << ", \"specs_digest\": " << digest
     << ", \"counters\": " << counters.to_json() << ", \"specs\": [";
  for (std::size_t i = 0; i < specs.size(); ++i)
    os << (i ? ",\n  " : "\n  ") << spec_to_json(specs[i]);
  os << "\n]}\n";
  return os.str();
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DIMMER_REQUIRE(in.is_open(),
                 "campaign: cannot read checkpoint '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  const util::json::Value v = util::json::parse(text.str());
  DIMMER_REQUIRE(v.at("version").as_u64() == 1,
                 "campaign: unsupported checkpoint version in '" + path + "'");
  Checkpoint ck;
  ck.shards = static_cast<int>(v.at("shards").as_i64());
  ck.max_attempts = static_cast<int>(v.at("max_attempts").as_i64());
  ck.master_seed = v.at("master_seed").as_u64();
  ck.digest = v.at("specs_digest").as_u64();
  ck.counters = obs::MetricsRegistry::from_value(v.at("counters"));
  for (const util::json::Value& s : v.at("specs").as_array())
    ck.specs.push_back(spec_from_value(s));
  DIMMER_REQUIRE(specs_digest(ck.specs) == ck.digest,
                 "campaign: checkpoint specs do not match their own digest "
                 "(corrupt checkpoint?) in '" +
                     path + "'");
  return ck;
}

// ---- locks -----------------------------------------------------------------

/// flock-based single-supervisor guard on <dir>/campaign.lock, held for the
/// supervisor's lifetime (and released by the kernel if it is killed).
class DirLock {
 public:
  explicit DirLock(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    DIMMER_REQUIRE(fd_ >= 0, "campaign: cannot open lock '" + path +
                                 "': " + std::strerror(errno));
    if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
      int err = errno;
      ::close(fd_);
      fd_ = -1;
      if (err == EWOULDBLOCK)
        throw LogLockedError("campaign: another supervisor holds '" + path +
                             "'");
      errno = err;
      DIMMER_REQUIRE(false, "campaign: flock failed on '" + path +
                                "': " + std::strerror(errno));
    }
  }
  ~DirLock() {
    if (fd_ >= 0) ::close(fd_);
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  /// Forked workers must close this fd immediately: flock travels with the
  /// open file description, so an inherited copy would keep the campaign
  /// locked after a SIGKILLed supervisor — and block the resume that the
  /// kill was supposed to be recoverable by.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

// ---- worker ----------------------------------------------------------------

/// Body of one forked shard worker. Never returns; all exits are _Exit so a
/// child can't run the parent's atexit handlers or flush its stdio buffers.
[[noreturn]] void worker_main(const CampaignOptions& opt,
                              std::uint64_t expected_digest, int shard,
                              const TrialFn& fn) {
  try {
#ifdef __linux__
    // Die with the supervisor: an orphaned worker must not keep a journal
    // flock (or CPU) after the campaign it belonged to is gone.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1) ::raise(SIGKILL);  // supervisor died before prctl
#endif
    // Re-read the spec matrix from the on-disk checkpoint rather than the
    // inherited memory image: resume-from-disk then exercises the exact
    // same path as a fresh run, and the spec round-trip stays load-bearing
    // (a serialization bug fails here, loudly, not only after a crash).
    Checkpoint ck = load_checkpoint(campaign_checkpoint_path(opt.dir));
    DIMMER_REQUIRE(ck.digest == expected_digest,
                   "campaign: worker re-read a checkpoint that does not "
                   "match the supervisor's spec matrix");

    const std::optional<long> kill_after =
        env_count("DIMMER_CAMPAIGN_KILL_AFTER");
    AppendLog journal(shard_journal_path(opt.dir, shard));
    AppendLog attempts_log(shard_attempts_path(opt.dir, shard));
    const JournalReplay done = replay_journal(journal.path());
    const AttemptsReplay attempts = replay_attempts(attempts_log.path());

    // Fork *all* trials' generators in global spec order and use only this
    // shard's: every trial's stream is independent of the shard count.
    std::vector<util::Pcg32> rngs = fork_trial_rngs(ck.specs, opt.master_seed);

    const double timeout = opt.trial_timeout_s < 0.0
                               ? trial_timeout_from_env()
                               : opt.trial_timeout_s;
    TrialWatchdog watchdog(timeout);

    long records_written = 0;
    auto after_record = [&] {
      ++records_written;
      if (kill_after && records_written >= *kill_after)
        ::raise(SIGKILL);  // test hook: simulate a worker crash
    };

    for (std::size_t i = 0; i < ck.specs.size(); ++i) {
      if (shard_of(i, opt.shards) != shard) continue;
      if (done.records.count(i) != 0) continue;
      const std::uint64_t digest = spec_digest(ck.specs[i]);

      auto it = attempts.attempts.find(i);
      const int prior = it == attempts.attempts.end() ? 0 : it->second;
      if (prior >= ck.max_attempts) {
        // This trial killed its worker max_attempts times; record the
        // deterministic verdict and move on so the sweep still completes.
        TrialResult r;
        r.ok = false;
        r.error = "campaign: trial exceeded attempt budget (" +
                  std::to_string(ck.max_attempts) + " attempts)";
        journal.append_line(failed_record(i, digest, r));
        after_record();
        continue;
      }
      // The attempt record is fsync'd *before* the trial runs: if the trial
      // kills the process, the next worker knows whom to blame.
      attempts_log.append_line(attempt_record(i, prior + 1));

      std::ostringstream label;
      label << ck.specs[i].scenario << "#" << i;
      TrialResult r;
      util::Stopwatch sw;
      {
        TrialWatchdog::Scope deadline = watchdog.watch(label.str());
        try {
          r = fn(ck.specs[i], rngs[i]);
        } catch (const std::exception& e) {
          r = TrialResult{};
          r.ok = false;
          r.error = e.what();
        } catch (...) {  // NOLINT-DIMMER(err-swallow): recorded, not
                         // swallowed — the journal carries ok=false.
          r = TrialResult{};
          r.ok = false;
          r.error = "unknown exception";
        }
      }
      r.wall_seconds = sw.seconds();
      journal.append_line(done_record(i, digest, r));
      after_record();
    }
    std::_Exit(0);
  } catch (const LogLockedError&) {
    std::_Exit(kJournalLockedExit);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dimmer: campaign worker (shard %d): %s\n", shard,
                 e.what());
    std::_Exit(1);
  } catch (...) {  // NOLINT-DIMMER(err-swallow): recorded, not swallowed —
                   // the nonzero exit is the supervisor's crash signal.
    std::fprintf(stderr,
                 "dimmer: campaign worker (shard %d): unknown exception\n",
                 shard);
    std::_Exit(1);
  }
}

}  // namespace

// ---- public helpers --------------------------------------------------------

int shard_of(std::size_t trial, int shards) {
  DIMMER_REQUIRE(shards >= 1, "shard_of: shards must be >= 1");
  return static_cast<int>(trial % static_cast<std::size_t>(shards));
}

std::string campaign_checkpoint_path(const std::string& dir) {
  return dir + "/checkpoint.json";
}

int campaign_shards_from_env() {
  const std::optional<long> v = env_count("DIMMER_CAMPAIGN_SHARDS");
  if (!v) return 1;
  DIMMER_REQUIRE(*v <= 999, "DIMMER_CAMPAIGN_SHARDS out of [1, 999]");
  return static_cast<int>(*v);
}

// ---- supervisor ------------------------------------------------------------

Campaign::Campaign(CampaignOptions opt) : opt_(std::move(opt)) {
  DIMMER_REQUIRE(!opt_.dir.empty(), "campaign: dir must be set");
  DIMMER_REQUIRE(opt_.shards >= 1 && opt_.shards <= 999,
                 "campaign: shards out of [1, 999]");
  DIMMER_REQUIRE(opt_.max_attempts >= 1, "campaign: max_attempts must be >= 1");
  DIMMER_REQUIRE(opt_.retry_backoff_s >= 0.0 &&
                     std::isfinite(opt_.retry_backoff_s),
                 "campaign: retry_backoff_s must be finite and >= 0");
  DIMMER_REQUIRE(opt_.max_fruitless_deaths >= 1,
                 "campaign: max_fruitless_deaths must be >= 1");
}

CampaignReport Campaign::run(const std::vector<TrialSpec>& specs,
                             const TrialFn& fn) const {
  DIMMER_REQUIRE(!specs.empty(), "campaign: empty spec matrix");
  ensure_dir(opt_.dir);
  DirLock lock(opt_.dir + "/campaign.lock");

  const std::uint64_t digest = specs_digest(specs);
  const std::string ck_path = campaign_checkpoint_path(opt_.dir);

  CampaignReport report;
  obs::MetricsRegistry& ctr = report.counters;

  if (file_exists(ck_path)) {
    const Checkpoint ck = load_checkpoint(ck_path);
    DIMMER_REQUIRE(ck.shards == opt_.shards,
                   "campaign: resuming with a different shard count than the "
                   "checkpoint (journal layout would not match)");
    DIMMER_REQUIRE(ck.master_seed == opt_.master_seed,
                   "campaign: resuming with a different master_seed");
    DIMMER_REQUIRE(ck.max_attempts == opt_.max_attempts,
                   "campaign: resuming with a different max_attempts");
    DIMMER_REQUIRE(ck.digest == digest && ck.specs.size() == specs.size(),
                   "campaign: checkpoint spec matrix does not match the "
                   "specs passed to run() — wrong directory?");
    ctr.merge(ck.counters);  // cumulative supervision history
    report.resumed = true;
  } else {
    for (int s = 0; s < opt_.shards; ++s) {
      DIMMER_REQUIRE(
          !file_exists(shard_journal_path(opt_.dir, s)) &&
              !file_exists(shard_attempts_path(opt_.dir, s)),
          "campaign: journals present but no checkpoint — refusing to run "
          "on top of an unrelated campaign directory '" +
              opt_.dir + "'");
    }
    util::write_file_atomic(ck_path, checkpoint_json(opt_, specs, digest, ctr));
  }
  ctr.gauge("campaign.trials_total") = static_cast<double>(specs.size());
  ctr.gauge("campaign.shards") = static_cast<double>(opt_.shards);

  // What is already on disk? (Journals may end in a torn record from a
  // killed worker; replay drops it and the next worker truncates it.)
  std::size_t records_at_start = 0;
  std::vector<bool> shard_done(static_cast<std::size_t>(opt_.shards), true);
  {
    std::vector<std::size_t> shard_size(static_cast<std::size_t>(opt_.shards),
                                        0);
    for (std::size_t i = 0; i < specs.size(); ++i)
      ++shard_size[static_cast<std::size_t>(shard_of(i, opt_.shards))];
    for (int s = 0; s < opt_.shards; ++s) {
      const JournalReplay rep =
          replay_journal(shard_journal_path(opt_.dir, s));
      records_at_start += rep.records.size();
      for (const auto& [trial, rec] : rep.records)
        DIMMER_REQUIRE(trial < specs.size() &&
                           shard_of(trial, opt_.shards) == s,
                       "campaign: journal record in the wrong shard file");
      shard_done[static_cast<std::size_t>(s)] =
          rep.records.size() == shard_size[static_cast<std::size_t>(s)];
    }
  }
  ctr.counter("campaign.resumed_trials") += records_at_start;

  const std::optional<long> abort_after =
      env_count("DIMMER_CAMPAIGN_ABORT_AFTER");
  auto total_records_now = [&] {
    std::size_t n = 0;
    for (int s = 0; s < opt_.shards; ++s)
      n += count_lines(shard_journal_path(opt_.dir, s));
    return n;
  };
  auto maybe_abort = [&] {
    if (abort_after &&
        total_records_now() >= static_cast<std::size_t>(*abort_after))
      ::raise(SIGKILL);  // test hook: simulate a supervisor crash
  };

  // Per-shard supervision state. `progress` snapshots journal + attempts
  // line counts so a crash loop that makes no progress is distinguishable
  // from a trial that keeps killing its (advancing) worker.
  struct WorkerState {
    pid_t pid = -1;
    int deaths = 0;
    int fruitless = 0;
    std::size_t progress = 0;
    double respawn_at = 0.0;  // supervisor clock seconds
  };
  std::vector<WorkerState> workers(static_cast<std::size_t>(opt_.shards));
  util::Stopwatch clock;

  auto shard_progress = [&](int s) {
    return count_lines(shard_journal_path(opt_.dir, s)) +
           count_lines(shard_attempts_path(opt_.dir, s));
  };
  auto spawn = [&](int s) {
    WorkerState& w = workers[static_cast<std::size_t>(s)];
    w.progress = shard_progress(s);
    const pid_t pid = ::fork();
    DIMMER_REQUIRE(pid >= 0, std::string("campaign: fork failed: ") +
                                 std::strerror(errno));
    if (pid == 0) {
      ::close(lock.fd());  // see DirLock::fd(): don't outlive-hold the lock
      worker_main(opt_, digest, s, fn);  // never returns
    }
    w.pid = pid;
  };

  // NOTE: the supervisor is single-threaded at every fork() above — trials
  // run in the children, never here — so fork's async-signal-safety rules
  // for multithreaded parents do not bite.
  for (int s = 0; s < opt_.shards; ++s)
    if (!shard_done[static_cast<std::size_t>(s)]) spawn(s);

  auto all_done = [&] {
    for (bool d : shard_done)
      if (!d) return false;
    return true;
  };
  while (!all_done()) {
    for (int s = 0; s < opt_.shards; ++s) {
      WorkerState& w = workers[static_cast<std::size_t>(s)];
      if (shard_done[static_cast<std::size_t>(s)]) continue;
      if (w.pid < 0) {  // waiting out a respawn backoff
        if (clock.seconds() >= w.respawn_at) spawn(s);
        continue;
      }
      int status = 0;
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      DIMMER_REQUIRE(r >= 0, std::string("campaign: waitpid failed: ") +
                                 std::strerror(errno));
      if (r == 0) continue;  // still running
      w.pid = -1;
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        // Worker claims completion; hold it to that.
        const std::size_t have =
            replay_journal(shard_journal_path(opt_.dir, s)).records.size();
        std::size_t want = 0;
        for (std::size_t i = 0; i < specs.size(); ++i)
          if (shard_of(i, opt_.shards) == s) ++want;
        DIMMER_REQUIRE(have == want,
                       "campaign: worker exited cleanly with trials still "
                       "pending (shard " +
                           std::to_string(s) + ")");
        shard_done[static_cast<std::size_t>(s)] = true;
        continue;
      }
      // Death (crash, watchdog, injected kill, or journal-locked retry).
      ++w.deaths;
      ctr.counter("campaign.worker_deaths") += 1;
      const std::size_t now = shard_progress(s);
      const bool lock_busy =
          WIFEXITED(status) && WEXITSTATUS(status) == kJournalLockedExit;
      if (now > w.progress || lock_busy)
        w.fruitless = 0;
      else
        ++w.fruitless;
      DIMMER_REQUIRE(
          w.fruitless < opt_.max_fruitless_deaths,
          "campaign: shard " + std::to_string(s) + " died " +
              std::to_string(w.fruitless) +
              " times in a row without making progress — giving up");
      // Deterministic exponential backoff with pure-hash jitter: the RNG
      // streams trials draw from are never touched by supervision.
      const int exponent = w.deaths > 16 ? 16 : w.deaths;
      const double jitter =
          0.5 + util::pure_uniform(util::hash_u64(
                    opt_.master_seed, static_cast<std::uint64_t>(s),
                    static_cast<std::uint64_t>(w.deaths)));
      w.respawn_at = clock.seconds() + opt_.retry_backoff_s *
                                           std::ldexp(1.0, exponent - 1) *
                                           jitter;
      // Persist supervision counters so even a killed-then-resumed campaign
      // reports cumulative deaths. Specs never change; atomic rename means
      // workers re-reading the checkpoint see old or new, both valid.
      util::write_file_atomic(ck_path,
                              checkpoint_json(opt_, specs, digest, ctr));
    }
    maybe_abort();
    util::sleep_seconds(0.002);
  }

  // Merge: journals -> trials in spec order, digest-verified.
  std::vector<JournalReplay> replays;
  replays.reserve(static_cast<std::size_t>(opt_.shards));
  for (int s = 0; s < opt_.shards; ++s)
    replays.push_back(replay_journal(shard_journal_path(opt_.dir, s)));
  report.trials.resize(specs.size());
  std::size_t failed = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const JournalReplay& rep =
        replays[static_cast<std::size_t>(shard_of(i, opt_.shards))];
    const auto it = rep.records.find(i);
    DIMMER_REQUIRE(it != rep.records.end(),
                   "campaign: trial " + std::to_string(i) +
                       " missing from its shard journal after completion");
    DIMMER_REQUIRE(it->second.digest == spec_digest(specs[i]),
                   "campaign: journal digest mismatch for trial " +
                       std::to_string(i) +
                       " — directory belongs to a different spec matrix");
    if (it->second.failed) ++failed;
    report.trials[i].spec = specs[i];
    report.trials[i].result = it->second.result;
  }

  std::size_t final_records = 0;
  for (const JournalReplay& rep : replays) final_records += rep.records.size();
  ctr.counter("campaign.trials_run") += final_records - records_at_start;
  // Absolute (not incremental) counters, recomputed from the on-disk truth:
  // attempts sidecars and failed records persist across resumes.
  std::uint64_t retries = 0;
  for (int s = 0; s < opt_.shards; ++s) {
    const AttemptsReplay att =
        replay_attempts(shard_attempts_path(opt_.dir, s));
    for (const auto& [trial, n] : att.attempts)
      if (n > 1) retries += static_cast<std::uint64_t>(n - 1);
  }
  ctr.counter("campaign.retries") = retries;
  ctr.counter("campaign.trials_failed") = failed;

  util::write_file_atomic(ck_path, checkpoint_json(opt_, specs, digest, ctr));
  return report;
}

}  // namespace dimmer::exp
