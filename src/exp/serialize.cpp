#include "exp/serialize.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace dimmer::exp {

namespace {

void emit_string_map(std::ostringstream& os,
                     const std::map<std::string, std::string>& m) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    os << (first ? "" : ", ") << util::json_quote(k) << ": "
       << util::json_quote(v);
    first = false;
  }
  os << "}";
}

void emit_double_map(std::ostringstream& os,
                     const std::map<std::string, double>& m) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    os << (first ? "" : ", ") << util::json_quote(k) << ": "
       << util::json_number(v);
    first = false;
  }
  os << "}";
}

}  // namespace

std::string spec_to_json(const TrialSpec& spec) {
  std::ostringstream os;
  os << "{\"scenario\": " << util::json_quote(spec.scenario)
     << ", \"seed\": " << spec.seed;
  if (!spec.params.empty()) {
    os << ", \"params\": ";
    emit_double_map(os, spec.params);
  }
  if (!spec.tags.empty()) {
    os << ", \"tags\": ";
    emit_string_map(os, spec.tags);
  }
  if (!spec.fault_plan.empty())
    os << ", \"fault_plan\": " << fault::to_json(spec.fault_plan);
  os << "}";
  return os.str();
}

TrialSpec spec_from_value(const util::json::Value& v) {
  TrialSpec spec;
  spec.scenario = v.at("scenario").as_string();
  spec.seed = v.at("seed").as_u64();
  if (const util::json::Value* params = v.find("params"))
    for (const auto& [k, p] : params->as_object())
      spec.params[k] = p.as_double();
  if (const util::json::Value* tags = v.find("tags"))
    for (const auto& [k, t] : tags->as_object()) spec.tags[k] = t.as_string();
  if (const util::json::Value* plan = v.find("fault_plan"))
    spec.fault_plan = fault::plan_from_json(*plan);
  return spec;
}

std::string result_to_json(const TrialResult& r) {
  std::ostringstream os;
  os << "{\"ok\": " << (r.ok ? "true" : "false");
  if (!r.ok) os << ", \"error\": " << util::json_quote(r.error);
  os << ", \"wall_seconds\": " << util::json_number(r.wall_seconds);
  if (!r.metrics.empty()) {
    os << ", \"metrics\": ";
    emit_double_map(os, r.metrics);
  }
  if (!r.stats.empty()) {
    os << ", \"stats\": {";
    bool first = true;
    for (const auto& [k, s] : r.stats) {
      os << (first ? "" : ", ") << util::json_quote(k)
         << ": {\"count\": " << s.count();
      if (s.count() > 0)
        os << ", \"mean\": " << util::json_number(s.mean())
           << ", \"m2\": " << util::json_number(s.m2())
           << ", \"min\": " << util::json_number(s.min())
           << ", \"max\": " << util::json_number(s.max());
      os << "}";
      first = false;
    }
    os << "}";
  }
  if (!r.series.empty()) {
    os << ", \"series\": {";
    bool first = true;
    for (const auto& [k, xs] : r.series) {
      os << (first ? "" : ", ") << util::json_quote(k) << ": [";
      for (std::size_t i = 0; i < xs.size(); ++i)
        os << (i ? ", " : "") << util::json_number(xs[i]);
      os << "]";
      first = false;
    }
    os << "}";
  }
  if (!r.registry.empty()) os << ", \"registry\": " << r.registry.to_json();
  os << "}";
  return os.str();
}

TrialResult result_from_value(const util::json::Value& v) {
  TrialResult r;
  r.ok = v.at("ok").as_bool();
  if (const util::json::Value* err = v.find("error"))
    r.error = err->as_string();
  r.wall_seconds = v.at("wall_seconds").as_double();
  if (const util::json::Value* metrics = v.find("metrics"))
    for (const auto& [k, m] : metrics->as_object())
      r.metrics[k] = m.as_double();
  if (const util::json::Value* stats = v.find("stats")) {
    for (const auto& [k, s] : stats->as_object()) {
      std::size_t count = static_cast<std::size_t>(s.at("count").as_u64());
      r.stats[k] =
          count == 0
              ? util::RunningStats{}
              : util::RunningStats::restore(
                    count, s.at("mean").as_double(), s.at("m2").as_double(),
                    s.at("min").as_double(), s.at("max").as_double());
    }
  }
  if (const util::json::Value* series = v.find("series")) {
    for (const auto& [k, xs] : series->as_object()) {
      std::vector<double>& dst = r.series[k];
      for (const util::json::Value& x : xs.as_array())
        dst.push_back(x.as_double());
    }
  }
  if (const util::json::Value* reg = v.find("registry"))
    r.registry = obs::MetricsRegistry::from_value(*reg);
  return r;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t spec_digest(const TrialSpec& spec) {
  return fnv1a64(spec_to_json(spec));
}

std::uint64_t specs_digest(const std::vector<TrialSpec>& specs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    // Fold (index, digest) pairs so reordering two specs changes the total.
    std::uint64_t d = spec_digest(specs[i]);
    for (int b = 0; b < 8; ++b) {
      h ^= (i >> (8 * b)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
    for (int b = 0; b < 8; ++b) {
      h ^= (d >> (8 * b)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace dimmer::exp
