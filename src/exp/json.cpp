#include "exp/json.hpp"

#include <cstdlib>
#include <iostream>
#include <ostream>
#include <sstream>

#include "exp/runner.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace dimmer::exp {
namespace {

// Shared deterministic serialization helpers (same ones obs:: uses, so the
// bench JSON and the trace JSONL render numbers identically).
using util::json_number;
using util::json_quote;

std::string fmt(double v) { return json_number(v); }
std::string quote(const std::string& s) { return json_quote(s); }

void emit_stats(std::ostringstream& os, const util::RunningStats& s) {
  os << "{\"count\": " << s.count() << ", \"mean\": " << fmt(s.mean())
     << ", \"stddev\": " << fmt(s.stddev()) << ", \"min\": " << fmt(s.min())
     << ", \"max\": " << fmt(s.max()) << "}";
}

template <typename Map, typename EmitValue>
void emit_object(std::ostringstream& os, const Map& m, EmitValue&& ev) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) os << ", ";
    first = false;
    os << quote(k) << ": ";
    ev(v);
  }
  os << "}";
}

}  // namespace

std::string to_json(const std::string& bench, const std::vector<Trial>& trials,
                    const JsonOptions& opt) {
  std::ostringstream os;
  os << "{\n  \"bench\": " << quote(bench) << ",\n  \"schema_version\": 1";
  if (opt.include_timing) {
    os << ",\n  \"jobs\": " << opt.jobs
       << ",\n  \"wall_seconds\": " << fmt(opt.wall_seconds);
  }
  os << ",\n  \"trials\": [";
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const Trial& t = trials[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"scenario\": " << quote(t.spec.scenario)
       << ", \"seed\": " << t.spec.seed;
    if (!t.spec.params.empty()) {
      os << ", \"params\": ";
      emit_object(os, t.spec.params, [&](double v) { os << fmt(v); });
    }
    if (!t.spec.tags.empty()) {
      os << ", \"tags\": ";
      emit_object(os, t.spec.tags, [&](const std::string& v) { os << quote(v); });
    }
    // Additive, optional key: fault-free benches render byte-identically to
    // builds that predate the fault subsystem.
    if (!t.spec.fault_plan.empty())
      os << ", \"fault_events\": " << t.spec.fault_plan.size();
    os << ", \"ok\": " << (t.result.ok ? "true" : "false");
    if (!t.result.ok) os << ", \"error\": " << quote(t.result.error);
    os << ",\n     \"metrics\": ";
    emit_object(os, t.result.metrics, [&](double v) { os << fmt(v); });
    if (!t.result.stats.empty()) {
      os << ",\n     \"stats\": ";
      emit_object(os, t.result.stats,
                  [&](const util::RunningStats& s) { emit_stats(os, s); });
    }
    if (!t.result.series.empty()) {
      os << ",\n     \"series\": ";
      emit_object(os, t.result.series, [&](const std::vector<double>& v) {
        os << "[";
        for (std::size_t j = 0; j < v.size(); ++j)
          os << (j ? ", " : "") << fmt(v[j]);
        os << "]";
      });
    }
    if (opt.include_timing)
      os << ", \"wall_seconds\": " << fmt(t.result.wall_seconds);
    os << "}";
  }
  os << "\n  ],\n  \"aggregates\": {";

  // Scenario groups in first-appearance order (deterministic: spec order).
  std::vector<std::string> scenarios;
  for (const Trial& t : trials) {
    bool seen = false;
    for (const std::string& s : scenarios) seen = seen || s == t.spec.scenario;
    if (!seen) scenarios.push_back(t.spec.scenario);
  }
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const std::string& sc = scenarios[si];
    std::size_t n_ok = 0;
    std::map<std::string, util::RunningStats> metric_acc;
    std::map<std::string, util::RunningStats> stat_acc;
    for (const Trial& t : trials) {
      if (t.spec.scenario != sc || !t.result.ok) continue;
      ++n_ok;
      for (const auto& [k, v] : t.result.metrics) metric_acc[k].add(v);
      for (const auto& [k, s] : t.result.stats) stat_acc[k].merge(s);
    }
    os << (si ? ",\n    " : "\n    ");
    os << quote(sc) << ": {\"trials\": " << n_ok;
    if (!metric_acc.empty()) {
      os << ", \"metrics\": ";
      emit_object(os, metric_acc,
                  [&](const util::RunningStats& s) { emit_stats(os, s); });
    }
    if (!stat_acc.empty()) {
      os << ", \"stats\": ";
      emit_object(os, stat_acc,
                  [&](const util::RunningStats& s) { emit_stats(os, s); });
    }
    os << "}";
  }
  os << "\n  }";

  // Structured metrics merged across ok trials in spec order (bit-identical
  // for any DIMMER_JOBS). Additive, optional key: absent when no trial
  // recorded anything, so benches without instrumentation are unchanged.
  obs::MetricsRegistry merged = merged_metrics(trials);
  if (!merged.empty()) os << ",\n  \"metrics\": " << merged.to_json();
  os << "\n}\n";
  return os.str();
}

std::string output_path(const std::string& bench) {
  const char* dir = std::getenv("DIMMER_BENCH_OUT");
  std::string d = dir && *dir ? dir : ".";
  if (d.back() != '/') d += '/';
  return d + "BENCH_" + bench + ".json";
}

bool write_json(const std::string& bench, const std::vector<Trial>& trials,
                const JsonOptions& opt, std::ostream* log) {
  std::string path = output_path(bench);
  try {
    // Atomic replacement (util/atomic_file.hpp): a bench killed mid-write
    // leaves the previous BENCH_*.json intact, never a truncated artifact.
    util::write_file_atomic(path, to_json(bench, trials, opt));
  } catch (const std::exception& e) {  // NOLINT-DIMMER(err-swallow):
    // recorded, not swallowed — the sweep's tables have already been
    // printed by the time the JSON artifact is written; a bad
    // DIMMER_BENCH_OUT must not abort the run.
    std::cerr << "[exp] ERROR: cannot write " << path << ": " << e.what()
              << " (check DIMMER_BENCH_OUT)\n";
    return false;
  }
  if (log) *log << "[exp] wrote " << path << "\n";
  return true;
}

}  // namespace dimmer::exp
