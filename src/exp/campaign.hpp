// Sharded, checkpointed campaign engine: the crash-safe big sibling of
// exp::Runner.
//
// A Campaign executes a TrialSpec matrix across `shards` worker *processes*
// (fork()ed, one per shard), streaming every finished trial into an
// append-only per-shard journal (exp/journal.hpp). The supervisor:
//
//  - persists the full spec matrix (including fault plans) in an atomic
//    checkpoint before any worker starts, so a killed sweep can resume:
//    completed trials are replayed from the journals and only the missing
//    ones re-run — a worker crash mid-trial costs exactly that one trial's
//    recomputation;
//  - supervises workers with bounded, deterministic retry: a dead worker is
//    respawned after an exponential backoff whose jitter is a pure
//    counter-based hash (never the protocol RNG); a trial that keeps
//    killing its worker is recorded as failed after `max_attempts` and the
//    rest of the sweep proceeds;
//  - merges the journals back into spec order at the end, digest-verifying
//    every record against its spec.
//
// Determinism contract (the whole point): the merged trials — and thus any
// BENCH_*.json written from them — are byte-identical (timing fields aside)
// for every shard count, every kill/resume history, and every worker-death
// pattern, because (a) each trial's RNG is forked from the master seed in
// spec order by *global* index (exp::fork_trial_rngs) no matter which shard
// runs it, (b) workers run their shard's trials serially in ascending
// global order, and (c) results round-trip through exp/serialize.hpp
// exactly. Supervision bookkeeping that *does* depend on crash timing
// (attempt counts, backoff, wall clocks) lives in sidecar files and
// campaign counters, never in the journalled results.
//
// Fault injection for tests/CI (strict-parsed env, see campaign.cpp):
//   DIMMER_CAMPAIGN_KILL_AFTER=N  — each worker SIGKILLs itself after
//                                   appending N journal records;
//   DIMMER_CAMPAIGN_ABORT_AFTER=N — the supervisor SIGKILLs itself once N
//                                   records exist across all journals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "obs/metrics.hpp"

namespace dimmer::exp {

/// Exit code of a worker that found its shard journal flock()ed (an orphan
/// predecessor still draining); the supervisor backs off and retries
/// without charging any trial's attempt budget.
inline constexpr int kJournalLockedExit = 87;

struct CampaignOptions {
  /// Campaign directory: checkpoint.json, campaign.lock, shard_NNN.jsonl
  /// journals and shard_NNN.attempts.jsonl sidecars. Created if missing
  /// (parent must exist). Resuming requires the same shards / master_seed /
  /// max_attempts / spec matrix the directory was created with.
  std::string dir;
  int shards = 1;        ///< worker process count, in [1, 999]
  int max_attempts = 3;  ///< per-trial attempt budget (>= 1)
  /// Base respawn backoff (seconds); doubles per consecutive death of the
  /// same shard, jittered by a pure hash of (master_seed, shard, deaths).
  double retry_backoff_s = 0.05;
  /// Per-trial deadline inside workers (exp/watchdog.hpp): a trial that
  /// exceeds it kills its worker, which the supervisor treats like any
  /// crash. < 0 = DIMMER_TRIAL_TIMEOUT_S; 0 = disabled.
  double trial_timeout_s = -1.0;
  /// Root of the per-trial RNG fork tree (must match exp::Runner's for
  /// bit-identical results between the two engines).
  std::uint64_t master_seed = 0xD133E201ULL;
  /// Give up on the campaign after this many *consecutive* worker deaths
  /// of one shard with zero new journal or attempt bytes (a crash loop
  /// outside any trial, e.g. a corrupt directory).
  int max_fruitless_deaths = 10;
};

/// What a campaign run produced. `counters` is deliberately separate from
/// the trials' own registries: supervision metrics depend on kill history,
/// so folding them into merged BENCH output would break byte-identity.
/// Counters: campaign.trials_run (trials executed, cumulative across
/// resumes), campaign.resumed_trials (journal records replayed instead of
/// re-run), campaign.worker_deaths, campaign.retries (re-attempts measured
/// from the attempts sidecars), campaign.trials_failed (attempt budget
/// exhausted); gauges campaign.trials_total / campaign.shards.
struct CampaignReport {
  std::vector<Trial> trials;  ///< in spec order, results from the journals
  obs::MetricsRegistry counters;
  bool resumed = false;  ///< a checkpoint existed when run() started
};

/// Round-robin shard assignment of global trial index `trial`. Fixed and
/// public so tests can predict journal layout.
int shard_of(std::size_t trial, int shards);

/// checkpoint.json under `dir`.
std::string campaign_checkpoint_path(const std::string& dir);

/// Shard count for bench campaign mode: DIMMER_CAMPAIGN_SHARDS if set
/// (strict full-string parse, in [1, 999]), else 1. Same loud-failure
/// discipline as jobs_from_env().
int campaign_shards_from_env();

class Campaign {
 public:
  explicit Campaign(CampaignOptions opt);

  /// Runs (or resumes) the campaign. Throws util::RequireError on option /
  /// directory mismatches and journal::LogLockedError when another
  /// supervisor holds the campaign lock. `fn` must obey the same contract
  /// as with Runner::run (pure in (spec, rng), no global mutable state) —
  /// plus, since workers are forked, it must not depend on threads or fds
  /// created before run() is called.
  CampaignReport run(const std::vector<TrialSpec>& specs,
                     const TrialFn& fn) const;

 private:
  CampaignOptions opt_;
};

}  // namespace dimmer::exp
