// Deterministic parallel experiment runner.
//
// The paper's evaluation is a pile of embarrassingly parallel trials: every
// (scenario, seed, config) cell builds its own Topology / DimmerNetwork /
// Pcg32 and never touches another trial's state. The Runner executes a
// vector of TrialSpecs on a fixed-size std::thread pool (an atomic index is
// the work queue) and returns results in spec order.
//
// Determinism contract: results are bit-identical for every DIMMER_JOBS
// value and any thread schedule, because
//  (a) each trial derives its RNG by Pcg32::fork *before* dispatch, in spec
//      order, so the stream a trial sees depends only on its index;
//  (b) trials share nothing mutable (shared inputs — a trained policy, a
//      trace dataset, a Topology — are const and their queries are pure);
//  (c) aggregation (RunningStats::merge and friends) happens after the pool
//      drains, walking trials in spec order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dimmer::exp {

/// One cell of a sweep: which scenario, which seed, which config overrides.
struct TrialSpec {
  /// Grouping key for aggregation and the JSON `aggregates` section
  /// (e.g. "dimmer@15%"). Trials sharing a scenario are summarised together.
  std::string scenario;
  /// Base seed the trial function should use for its simulation components.
  std::uint64_t seed = 0;
  /// Numeric config overrides (interference level, reward constant, ...).
  std::map<std::string, double> params;
  /// Non-numeric overrides (protocol name, episode label, ...).
  std::map<std::string, std::string> tags;
  /// Scripted faults for this trial (see src/fault). Empty = fault-free, and
  /// guaranteed bit-identical to a spec without a plan at all.
  fault::FaultPlan fault_plan;
};

/// What one trial produced. All fields are written by the trial function
/// except `wall_seconds` / `ok` / `error`, which the Runner fills in.
/// [[nodiscard]] (enforced by dimmer-lint's nodiscard-result rule): a
/// silently dropped result is how a bench diverges from what it reports.
struct [[nodiscard]] TrialResult {
  /// Scalar headline metrics (reliability, radio_on_ms, latency_ms, ...).
  std::map<std::string, double> metrics;
  /// Per-trial sample distributions (e.g. per-round reliability); scenarios
  /// are summarised across trials with RunningStats::merge.
  std::map<std::string, util::RunningStats> stats;
  /// Named trajectories (e.g. the N_TX time series).
  std::map<std::string, std::vector<double>> series;
  /// Structured counters/gauges/histograms (see obs/metrics.hpp). Each trial
  /// fills its own registry (point an obs::Instrumentation at it), and
  /// merged_metrics() combines them in spec order after the pool drains, so
  /// the merged registry is bit-identical for any DIMMER_JOBS value.
  obs::MetricsRegistry registry;
  double wall_seconds = 0.0;
  bool ok = true;
  std::string error;
};

struct Trial {
  TrialSpec spec;
  TrialResult result;
};

/// A trial receives its spec plus a private, pre-forked generator. It must
/// not touch global mutable state; it may read shared const inputs.
using TrialFn = std::function<TrialResult(const TrialSpec&, util::Pcg32&)>;

/// Worker count: DIMMER_JOBS if set to a positive integer, else
/// std::thread::hardware_concurrency() (at least 1).
int jobs_from_env();

/// Per-trial wall-clock deadline in seconds: DIMMER_TRIAL_TIMEOUT_S if set
/// (strict full-string parse; must be a positive finite number), else 0
/// (watchdog disabled). Same loud-failure discipline as jobs_from_env().
double trial_timeout_from_env();

/// Fork every trial's generator from one root in spec order: the stream a
/// trial sees is a function of (master_seed, its index, its seed) only,
/// never of which worker picks it up or when. Shared by Runner::run and the
/// campaign shard workers — a worker forks *all* trials' generators and
/// uses only its shard's, so sharding cannot shift anyone's stream.
std::vector<util::Pcg32> fork_trial_rngs(const std::vector<TrialSpec>& specs,
                                         std::uint64_t master_seed);

class Runner {
 public:
  struct Options {
    int jobs = 0;  ///< 0 = jobs_from_env()
    /// Root of the per-trial fork tree; fixed so a sweep's RNG streams are
    /// reproducible across runs and machines.
    std::uint64_t master_seed = 0xD133E201ULL;
    /// Per-trial wall-clock deadline; a trial that exceeds it kills the
    /// whole process (exit kTrialTimeoutExit — see exp/watchdog.hpp).
    /// < 0 = trial_timeout_from_env(); 0 = explicitly disabled.
    double trial_timeout_s = -1.0;
  };

  Runner();  ///< default Options
  explicit Runner(Options opt);

  int jobs() const { return jobs_; }
  double trial_timeout_s() const { return trial_timeout_s_; }

  /// Run every spec through `fn`. Trial exceptions are captured into
  /// TrialResult::ok/error; they do not abort the sweep.
  std::vector<Trial> run(std::vector<TrialSpec> specs, const TrialFn& fn) const;

 private:
  int jobs_;
  std::uint64_t master_seed_;
  double trial_timeout_s_;
};

/// Merge the named per-trial distribution across all ok trials of
/// `scenario` (empty scenario = every trial), via RunningStats::merge.
util::RunningStats merged_stat(const std::vector<Trial>& trials,
                               const std::string& scenario,
                               const std::string& key);

/// RunningStats over a scalar metric across ok trials of `scenario`
/// (empty scenario = every trial). Trials lacking the metric are skipped.
util::RunningStats metric_stats(const std::vector<Trial>& trials,
                                const std::string& scenario,
                                const std::string& metric);

/// Merge every ok trial's metrics registry, walking trials in spec order
/// (deterministic regardless of how many workers ran the sweep).
obs::MetricsRegistry merged_metrics(const std::vector<Trial>& trials);

}  // namespace dimmer::exp
