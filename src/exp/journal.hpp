// Append-only JSONL trial journals — the campaign's crash-safe record.
//
// Each shard worker streams one line per finished trial into its own
// journal file (shard_NNN.jsonl). A line is written with a single write(2)
// followed by fsync, so after any kill the file is a clean prefix of
// terminated records plus at most one torn tail fragment. Replay:
//
//  - a missing file is an empty journal (the worker never got that far);
//  - every '\n'-terminated line must parse — mid-file corruption is a real
//    integrity failure and throws;
//  - an unterminated final fragment is the torn write of the kill moment:
//    it is dropped (and repaired by truncation before the next append);
//  - two records for the same trial index throw (the single-writer flock
//    below makes this impossible unless the directory was hand-edited).
//
// Byte-determinism: a worker runs its shard's trials serially in ascending
// global-index order, so a journal's bytes depend only on (specs, shard
// assignment) — not on kill/resume history. The identity tests diff entire
// journal directories across kill schedules. Per-attempt bookkeeping that
// *does* depend on crash timing lives in a separate sidecar
// (shard_NNN.attempts.jsonl) excluded from those diffs.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "exp/runner.hpp"

namespace dimmer::exp {

/// shard_<NNN>.jsonl under `dir` (three-digit zero-padded shard index).
std::string shard_journal_path(const std::string& dir, int shard);

/// shard_<NNN>.attempts.jsonl under `dir`.
std::string shard_attempts_path(const std::string& dir, int shard);

/// Thrown when another live process holds the journal's flock — a second
/// worker for the same shard, or a second supervisor on the directory.
class LogLockedError : public std::runtime_error {
 public:
  explicit LogLockedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Append-only JSONL writer. Opens (creating if needed) with an exclusive
/// non-blocking flock held for the writer's lifetime; truncates a torn tail
/// fragment left by a killed predecessor; then append_line() emits one
/// record per call as a single write(2) + fsync.
class AppendLog {
 public:
  explicit AppendLog(std::string path);
  ~AppendLog();

  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Appends `line` (no trailing newline; one is added) atomically with
  /// respect to kill: the record is either fully on disk or fully absent.
  void append_line(const std::string& line);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// One replayed journal record.
struct JournalRecord {
  bool failed = false;  ///< "failed" (retry budget exhausted) vs "done"
  std::uint64_t digest = 0;  ///< spec_digest of the spec this result is for
  TrialResult result;
};

/// Journal line for a completed trial:
///   {"type": "done", "trial": I, "digest": D, "result": {...}}
std::string done_record(std::size_t trial, std::uint64_t digest,
                        const TrialResult& result);

/// Journal line for a trial whose retry budget is exhausted (written by
/// the respawned worker that finds the trial over budget, with a
/// deterministic synthetic error in `result`).
std::string failed_record(std::size_t trial, std::uint64_t digest,
                          const TrialResult& result);

struct JournalReplay {
  std::map<std::size_t, JournalRecord> records;  ///< keyed by trial index
  std::size_t torn_bytes = 0;  ///< length of the dropped unterminated tail
};

/// Parses a shard journal back (see crash-tolerance rules in the header
/// comment). Missing file => empty replay.
JournalReplay replay_journal(const std::string& path);

/// Attempts-sidecar line: {"trial": I, "attempt": K}  (K is 1-based).
std::string attempt_record(std::size_t trial, int attempt);

struct AttemptsReplay {
  /// Highest attempt number seen per trial index.
  std::map<std::size_t, int> attempts;
  std::size_t torn_bytes = 0;
};

/// Parses an attempts sidecar; same crash-tolerance rules as the journal.
AttemptsReplay replay_attempts(const std::string& path);

}  // namespace dimmer::exp
