// JSON round-trip for TrialSpec / TrialResult.
//
// The campaign engine (see campaign.hpp) persists specs in its checkpoint
// and streams results into per-shard journals; a killed sweep resumes by
// parsing both back. Everything here is therefore *exact*:
//
//  - doubles are "%.17g" (util::json_number) and re-read with strtod, which
//    round-trips every finite double bit-identically;
//  - u64 seeds and counters are printed as integers and re-read through the
//    raw lexeme (never through a double), so all 64 bits survive;
//  - RunningStats serializes its complete internal state (count/mean/m2/
//    min/max), so merged aggregates of replayed trials are bit-identical to
//    aggregates of the trials that actually ran;
//  - map-valued fields serialize in std::map (= byte) order, so the output
//    is deterministic and the digest below is stable.
//
// Non-finite doubles in a result (json_number prints them as null) fail the
// round-trip loudly at replay time rather than resurrecting as 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace dimmer::util::json {
class Value;
}

namespace dimmer::exp {

/// Canonical one-line JSON for a spec:
///   {"scenario": "...", "seed": S, "params": {...}, "tags": {...},
///    "fault_plan": [...]}
/// (params/tags/fault_plan omitted when empty.)
std::string spec_to_json(const TrialSpec& spec);

/// Inverse of spec_to_json. Throws on malformed input.
TrialSpec spec_from_value(const util::json::Value& v);

/// Canonical one-line JSON for a result:
///   {"ok": true, "wall_seconds": W, "metrics": {...},
///    "stats": {"k": {"count": n, "mean": m, "m2": q, "min": a, "max": b}},
///    "series": {...}, "registry": {...}}
/// ("error" present only when !ok; empty sections omitted; an empty stats
/// entry is {"count": 0}.)
std::string result_to_json(const TrialResult& r);

/// Inverse of result_to_json. Throws on malformed input (including the
/// nulls json_number emits for non-finite values).
TrialResult result_from_value(const util::json::Value& v);

/// FNV-1a 64-bit over a byte string. Stable across platforms; used to
/// fingerprint specs so a resumed campaign can prove the checkpoint it is
/// replaying matches the spec matrix the journals were written against.
std::uint64_t fnv1a64(const std::string& bytes);

/// Digest of one spec: fnv1a64(spec_to_json(spec)).
std::uint64_t spec_digest(const TrialSpec& spec);

/// Order-sensitive digest of a whole spec matrix (folds each spec's digest
/// with its index). Two matrices agree iff every spec and its position do.
std::uint64_t specs_digest(const std::vector<TrialSpec>& specs);

}  // namespace dimmer::exp
