// Structured JSON metrics for bench sweeps (BENCH_<name>.json).
//
// Every converted bench emits one machine-readable file next to its table
// output so the repo has a measurable perf/quality trajectory: per-trial
// metrics, per-trial sample distributions, trajectories, wall-clock, and
// per-scenario aggregates (merged with RunningStats::merge).
//
// Schema (schema_version 1):
//   {
//     "bench": "<name>", "schema_version": 1,
//     "jobs": N, "wall_seconds": W,            // omitted if !include_timing
//     "trials": [
//       { "scenario": "...", "seed": S,
//         "params": {"k": 1.5, ...}, "tags": {"k": "v", ...},
//         "ok": true,                          // "error": "..." when false
//         "metrics": {"reliability": 0.993, ...},
//         "stats":  {"reliability": {"count": n, "mean": m, "stddev": s,
//                                    "min": lo, "max": hi}, ...},
//         "series": {"n_tx": [3, 4, ...], ...},
//         "wall_seconds": w }                  // omitted if !include_timing
//     ],
//     "aggregates": {
//       "<scenario>": { "trials": n,
//                       "metrics": {"<m>": {summary-across-trials}},
//                       "stats":   {"<k>": {merge-across-trials}} }
//     },
//     "metrics": {                              // omitted when empty
//       "counters":   {"<name>": n, ...},       // merged across ok trials in
//       "gauges":     {"<name>": v, ...},       //   spec order (bit-identical
//       "histograms": {"<name>": {...}, ...}    //   for any DIMMER_JOBS)
//     }
//   }
//
// Doubles are printed with "%.17g" (round-trip exact); the serialization is
// deterministic, so two runs of the same sweep — at any DIMMER_JOBS — yield
// byte-identical files once timing fields are excluded.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace dimmer::exp {

struct JsonOptions {
  /// Include jobs + wall-clock fields. Disable to get a byte-comparable
  /// serialization (the determinism tests diff jobs=1 vs jobs=8 output).
  bool include_timing = true;
  int jobs = 0;
  double wall_seconds = 0.0;
};

/// Serialize a finished sweep.
std::string to_json(const std::string& bench, const std::vector<Trial>& trials,
                    const JsonOptions& opt = {});

/// $DIMMER_BENCH_OUT/BENCH_<bench>.json (default directory ".").
std::string output_path(const std::string& bench);

/// Serialize and write to output_path(bench); logs the path to `log` if
/// given. Returns false (after printing to stderr) if the file cannot be
/// opened — the metrics artifact is best-effort, it must never abort a
/// finished sweep.
bool write_json(const std::string& bench, const std::vector<Trial>& trials,
                const JsonOptions& opt = {}, std::ostream* log = nullptr);

}  // namespace dimmer::exp
