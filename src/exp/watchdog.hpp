// Per-trial deadline watchdog.
//
// A hung trial (deadlocked simulation, runaway loop) cannot be killed from
// inside its own thread portably, so the watchdog is deliberately blunt:
// when an armed scope outlives its deadline, the whole process dies, loudly,
// with a distinct exit code. Standalone bench runs fail fast instead of
// wedging CI; under the campaign supervisor the death is just another
// worker crash — the trial is retried with backoff and, if it keeps timing
// out, recorded as failed without losing the rest of the sweep.
//
// Timing uses util::Stopwatch + util::sleep_seconds polling (both from
// src/util, the det-clock-exempt seam) — wall time here observes the host,
// never feeds the simulation, so determinism of results is untouched.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "util/wallclock.hpp"

namespace dimmer::exp {

/// Exit code of a process killed by its TrialWatchdog. Distinct so the
/// campaign supervisor (and CI logs) can tell "trial deadline" from an
/// ordinary crash.
inline constexpr int kTrialTimeoutExit = 86;

class TrialWatchdog {
 public:
  /// timeout_s <= 0 disables the watchdog: no thread is started and
  /// watch() returns inert scopes.
  explicit TrialWatchdog(double timeout_s);
  ~TrialWatchdog();

  TrialWatchdog(const TrialWatchdog&) = delete;
  TrialWatchdog& operator=(const TrialWatchdog&) = delete;

  /// RAII deadline: the labelled trial must finish (scope destruction)
  /// within timeout_s of watch(), or the process exits.
  class Scope {
   public:
    ~Scope();
    Scope(Scope&& o) noexcept : dog_(o.dog_), id_(o.id_) {
      o.dog_ = nullptr;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;

   private:
    friend class TrialWatchdog;
    Scope(TrialWatchdog* dog, std::uint64_t id) : dog_(dog), id_(id) {}
    TrialWatchdog* dog_;
    std::uint64_t id_;
  };

  Scope watch(std::string label);

  bool enabled() const { return timeout_s_ > 0.0; }
  double timeout_s() const { return timeout_s_; }

 private:
  struct Entry {
    std::string label;
    util::Stopwatch since;
  };

  void unwatch(std::uint64_t id);
  void loop();

  double timeout_s_;
  std::mutex mu_;
  bool stop_ = false;
  std::uint64_t next_id_ = 0;
  std::map<std::uint64_t, Entry> active_;
  std::thread thread_;
};

}  // namespace dimmer::exp
