#include "exp/watchdog.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dimmer::exp {

TrialWatchdog::TrialWatchdog(double timeout_s) : timeout_s_(timeout_s) {
  if (enabled()) thread_ = std::thread([this] { loop(); });
}

TrialWatchdog::~TrialWatchdog() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  thread_.join();
}

TrialWatchdog::Scope::~Scope() {
  if (dog_ != nullptr) dog_->unwatch(id_);
}

TrialWatchdog::Scope TrialWatchdog::watch(std::string label) {
  if (!enabled()) return Scope(nullptr, 0);
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t id = next_id_++;
  active_.emplace(id, Entry{std::move(label), util::Stopwatch{}});
  return Scope(this, id);
}

void TrialWatchdog::unwatch(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(id);
}

void TrialWatchdog::loop() {
  // Polling granularity: fine enough that a deadline overshoots by at most
  // ~5% of the budget, coarse enough to cost nothing. The destructor also
  // waits out at most one interval.
  const double interval = std::min(0.05, timeout_s_ / 20.0);
  for (;;) {
    util::sleep_seconds(interval);
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    for (const auto& [id, entry] : active_) {
      double elapsed = entry.since.seconds();
      if (elapsed < timeout_s_) continue;
      std::fprintf(stderr,
                   "dimmer: watchdog: trial '%s' exceeded its deadline "
                   "(%.1fs elapsed, %.1fs budget); killing the process\n",
                   entry.label.c_str(), elapsed, timeout_s_);
      std::fflush(stderr);
      // _Exit, not abort: no core, no atexit handlers from a process whose
      // worker threads are mid-trial; the exit code carries the diagnosis.
      std::_Exit(kTrialTimeoutExit);
    }
  }
}

}  // namespace dimmer::exp
