#include "exp/journal.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "exp/serialize.hpp"
#include "util/check.hpp"
#include "util/json_parse.hpp"

namespace dimmer::exp {

namespace {

std::string errno_message(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

std::string shard_file(const std::string& dir, int shard, const char* suffix) {
  DIMMER_REQUIRE(shard >= 0 && shard <= 999, "shard index out of [0, 999]");
  char name[32];
  std::snprintf(name, sizeof(name), "shard_%03d", shard);
  return dir + "/" + name + suffix;
}

/// Reads a whole file; returns false if it does not exist, throws on any
/// other error.
bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream os;
  os << in.rdbuf();
  DIMMER_REQUIRE(!in.bad(), "journal: read failed for '" + path + "'");
  *out = os.str();
  return true;
}

/// Splits `text` into terminated lines; the length of an unterminated tail
/// fragment (if any) goes to *torn_bytes.
std::vector<std::string> split_lines(const std::string& text,
                                     std::size_t* torn_bytes) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      *torn_bytes = text.size() - start;
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

std::string shard_journal_path(const std::string& dir, int shard) {
  return shard_file(dir, shard, ".jsonl");
}

std::string shard_attempts_path(const std::string& dir, int shard) {
  return shard_file(dir, shard, ".attempts.jsonl");
}

AppendLog::AppendLog(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  DIMMER_REQUIRE(fd_ >= 0, errno_message("journal: cannot open", path_));
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    if (err == EWOULDBLOCK)
      throw LogLockedError("journal: another writer holds '" + path_ + "'");
    errno = err;
    DIMMER_REQUIRE(false, errno_message("journal: flock failed on", path_));
  }
  // Repair a torn tail left by a killed predecessor: truncate back to the
  // last terminated record so the next append starts on a clean boundary.
  struct stat st{};
  DIMMER_REQUIRE(::fstat(fd_, &st) == 0,
                 errno_message("journal: fstat failed on", path_));
  off_t size = st.st_size;
  off_t keep = size;
  while (keep > 0) {
    char c = 0;
    DIMMER_REQUIRE(::pread(fd_, &c, 1, keep - 1) == 1,
                   errno_message("journal: pread failed on", path_));
    if (c == '\n') break;
    --keep;
  }
  if (keep != size) {
    DIMMER_REQUIRE(::ftruncate(fd_, keep) == 0,
                   errno_message("journal: ftruncate failed on", path_));
    DIMMER_REQUIRE(::fsync(fd_) == 0,
                   errno_message("journal: fsync failed on", path_));
  }
}

AppendLog::~AppendLog() {
  if (fd_ >= 0) ::close(fd_);  // releases the flock
}

void AppendLog::append_line(const std::string& line) {
  DIMMER_REQUIRE(fd_ >= 0, "journal: append on a closed log");
  DIMMER_REQUIRE(line.find('\n') == std::string::npos,
                 "journal: record must be a single line");
  std::string rec = line + "\n";
  // One write(2) for the whole record: O_APPEND makes it land contiguously
  // at EOF, so a kill leaves either the full line or a torn tail that the
  // next writer truncates — never an interleaved or silently-half record.
  std::size_t off = 0;
  while (off < rec.size()) {
    ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
    if (n < 0 && errno == EINTR) continue;
    DIMMER_REQUIRE(n > 0, errno_message("journal: write failed on", path_));
    off += static_cast<std::size_t>(n);
  }
  DIMMER_REQUIRE(::fsync(fd_) == 0,
                 errno_message("journal: fsync failed on", path_));
}

namespace {
std::string record_json(const char* type, std::size_t trial,
                        std::uint64_t digest, const TrialResult& result) {
  std::ostringstream os;
  os << "{\"type\": \"" << type << "\", \"trial\": " << trial
     << ", \"digest\": " << digest
     << ", \"result\": " << result_to_json(result) << "}";
  return os.str();
}
}  // namespace

std::string done_record(std::size_t trial, std::uint64_t digest,
                        const TrialResult& result) {
  return record_json("done", trial, digest, result);
}

std::string failed_record(std::size_t trial, std::uint64_t digest,
                          const TrialResult& result) {
  return record_json("failed", trial, digest, result);
}

JournalReplay replay_journal(const std::string& path) {
  JournalReplay out;
  std::string text;
  if (!read_file(path, &text)) return out;
  const std::vector<std::string> lines = split_lines(text, &out.torn_bytes);
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    util::json::Value v;
    try {
      v = util::json::parse(lines[ln]);
    } catch (const util::json::JsonParseError& e) {
      // A terminated-but-unparsable line is mid-file corruption, not a torn
      // kill tail: refuse to resume on top of it.
      DIMMER_REQUIRE(false, "journal: corrupt record at " + path + ":" +
                                std::to_string(ln + 1) + ": " + e.what());
    }
    const std::string& type = v.at("type").as_string();
    DIMMER_REQUIRE(type == "done" || type == "failed",
                   "journal: unknown record type '" + type + "' in " + path);
    std::size_t trial = static_cast<std::size_t>(v.at("trial").as_u64());
    DIMMER_REQUIRE(out.records.find(trial) == out.records.end(),
                   "journal: duplicate record for trial " +
                       std::to_string(trial) + " in " + path);
    JournalRecord rec;
    rec.failed = (type == "failed");
    rec.digest = v.at("digest").as_u64();
    rec.result = result_from_value(v.at("result"));
    out.records.emplace(trial, std::move(rec));
  }
  return out;
}

std::string attempt_record(std::size_t trial, int attempt) {
  std::ostringstream os;
  os << "{\"trial\": " << trial << ", \"attempt\": " << attempt << "}";
  return os.str();
}

AttemptsReplay replay_attempts(const std::string& path) {
  AttemptsReplay out;
  std::string text;
  if (!read_file(path, &text)) return out;
  const std::vector<std::string> lines = split_lines(text, &out.torn_bytes);
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    util::json::Value v;
    try {
      v = util::json::parse(lines[ln]);
    } catch (const util::json::JsonParseError& e) {
      DIMMER_REQUIRE(false, "attempts: corrupt record at " + path + ":" +
                                std::to_string(ln + 1) + ": " + e.what());
    }
    std::size_t trial = static_cast<std::size_t>(v.at("trial").as_u64());
    int attempt = static_cast<int>(v.at("attempt").as_i64());
    DIMMER_REQUIRE(attempt >= 1, "attempts: attempt must be >= 1 in " + path);
    int& slot = out.attempts[trial];
    DIMMER_REQUIRE(attempt == slot + 1,
                   "attempts: non-consecutive attempt for trial " +
                       std::to_string(trial) + " in " + path);
    slot = attempt;
  }
  return out;
}

}  // namespace dimmer::exp
