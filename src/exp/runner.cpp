#include "exp/runner.hpp"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>

#include "exp/watchdog.hpp"
#include "util/check.hpp"
#include "util/wallclock.hpp"

namespace dimmer::exp {

int jobs_from_env() {
  if (const char* s = std::getenv("DIMMER_JOBS")) {
    // Strict full-string parse. The old std::atoi silently accepted trailing
    // garbage ("8x" -> 8), read "0x10" as 0 (a silent hardware-concurrency
    // fallback), and is undefined on out-of-range input — all three now fail
    // loudly so a mistyped override can't run a sweep at the wrong
    // parallelism unnoticed.
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s, &end, 10);
    // strtol itself skips leading whitespace; " 8" is still a typo here.
    const bool parsed = end != s && *end == '\0' && errno != ERANGE &&
                        !std::isspace(static_cast<unsigned char>(*s));
    DIMMER_REQUIRE(parsed, "DIMMER_JOBS is not a valid integer");
    DIMMER_REQUIRE(v >= 1 && v <= std::numeric_limits<int>::max(),
                   "DIMMER_JOBS out of range [1, INT_MAX]");
    return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

double trial_timeout_from_env() {
  const char* s = std::getenv("DIMMER_TRIAL_TIMEOUT_S");
  if (s == nullptr) return 0.0;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  const bool parsed = end != s && *end == '\0' && errno != ERANGE &&
                      !std::isspace(static_cast<unsigned char>(*s));
  DIMMER_REQUIRE(parsed, "DIMMER_TRIAL_TIMEOUT_S is not a valid number");
  DIMMER_REQUIRE(std::isfinite(v) && v > 0.0,
                 "DIMMER_TRIAL_TIMEOUT_S must be a positive finite number");
  return v;
}

std::vector<util::Pcg32> fork_trial_rngs(const std::vector<TrialSpec>& specs,
                                         std::uint64_t master_seed) {
  util::Pcg32 root(master_seed);
  std::vector<util::Pcg32> rngs;
  rngs.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    rngs.push_back(root.fork(util::hash_u64(specs[i].seed, i)));
  return rngs;
}

Runner::Runner() : Runner(Options{}) {}

Runner::Runner(Options opt)
    : jobs_(opt.jobs > 0 ? opt.jobs : jobs_from_env()),
      master_seed_(opt.master_seed),
      trial_timeout_s_(opt.trial_timeout_s < 0.0 ? trial_timeout_from_env()
                                                 : opt.trial_timeout_s) {}

std::vector<Trial> Runner::run(std::vector<TrialSpec> specs,
                               const TrialFn& fn) const {
  // Fork every trial's generator *before* dispatch (see fork_trial_rngs).
  std::vector<util::Pcg32> rngs = fork_trial_rngs(specs, master_seed_);

  std::vector<Trial> out(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    out[i].spec = std::move(specs[i]);

  // One watchdog for the whole sweep; armed per trial below. Disabled (no
  // thread at all) unless a deadline was configured.
  std::optional<TrialWatchdog> watchdog;
  if (trial_timeout_s_ > 0.0) watchdog.emplace(trial_timeout_s_);

  auto run_one = [&](std::size_t i) {
    std::optional<TrialWatchdog::Scope> deadline;
    if (watchdog) {
      std::ostringstream label;
      label << out[i].spec.scenario << "#" << i;
      deadline.emplace(watchdog->watch(label.str()));
    }
    util::Stopwatch sw;
    TrialResult r;
    try {
      r = fn(out[i].spec, rngs[i]);
    } catch (const std::exception& e) {
      r = TrialResult{};
      r.ok = false;
      r.error = e.what();
    } catch (...) {  // NOLINT-DIMMER(err-swallow): recorded, not swallowed —
                     // the trial is marked failed and require_all_ok aborts.
      r = TrialResult{};
      r.ok = false;
      r.error = "unknown exception";
    }
    r.wall_seconds = sw.seconds();
    out[i].result = std::move(r);
  };

  std::size_t n_workers = static_cast<std::size_t>(jobs_);
  if (n_workers > out.size()) n_workers = out.size();
  if (n_workers <= 1) {
    // Inline execution: no threads at DIMMER_JOBS=1, so single-job runs are
    // debuggable with plain gdb/asan and trivially schedule-free.
    for (std::size_t i = 0; i < out.size(); ++i) run_one(i);
    return out;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= out.size()) return;
      run_one(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return out;
}

namespace {
template <typename Fn>
void for_scenario(const std::vector<Trial>& trials, const std::string& scenario,
                  Fn&& fn) {
  for (const Trial& t : trials) {
    if (!t.result.ok) continue;
    if (!scenario.empty() && t.spec.scenario != scenario) continue;
    fn(t);
  }
}
}  // namespace

util::RunningStats merged_stat(const std::vector<Trial>& trials,
                               const std::string& scenario,
                               const std::string& key) {
  util::RunningStats acc;
  for_scenario(trials, scenario, [&](const Trial& t) {
    auto it = t.result.stats.find(key);
    if (it != t.result.stats.end()) acc.merge(it->second);
  });
  return acc;
}

util::RunningStats metric_stats(const std::vector<Trial>& trials,
                                const std::string& scenario,
                                const std::string& metric) {
  util::RunningStats acc;
  for_scenario(trials, scenario, [&](const Trial& t) {
    auto it = t.result.metrics.find(metric);
    if (it != t.result.metrics.end()) acc.add(it->second);
  });
  return acc;
}

obs::MetricsRegistry merged_metrics(const std::vector<Trial>& trials) {
  obs::MetricsRegistry merged;
  for (const Trial& t : trials)
    if (t.result.ok) merged.merge(t.result.registry);
  return merged;
}

}  // namespace dimmer::exp
