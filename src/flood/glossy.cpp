#include "flood/glossy.hpp"

#include <algorithm>
#include <cmath>

#include "phy/batched.hpp"
#include "phy/per.hpp"
#include "phy/propagation.hpp"
#include "util/check.hpp"
#include "util/simd/simd.hpp"

namespace dimmer::flood {

FloodResult::Summary FloodResult::summarize() const {
  Summary s;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!participated[i]) continue;
    const NodeFloodResult& r = nodes[i];
    s.transmissions += r.transmissions;
    s.radio_on_us += r.radio_on_us;
    if (static_cast<phy::NodeId>(i) == initiator) continue;
    ++s.participants;
    if (r.received) ++s.receivers;
  }
  return s;
}

double FloodResult::delivery_ratio() const {
  Summary s = summarize();
  if (s.participants == 0) return 1.0;
  return static_cast<double>(s.receivers) / s.participants;
}

// Capacity-recycling assign(): zero steady-state allocations, audited by the
// allocation-counting test (tests/flood/test_workspace.cpp).
// dimmer-lint: pure(may-allocate)
void FloodResult::make_silent(int n_nodes, phy::NodeId init) {
  nodes.assign(static_cast<std::size_t>(n_nodes), NodeFloodResult{});
  participated.assign(static_cast<std::size_t>(n_nodes), false);
  steps_simulated = 0;
  initiator = init;
}

FloodResult FloodResult::silent(int n_nodes, phy::NodeId initiator) {
  FloodResult r;
  r.make_silent(n_nodes, initiator);
  return r;
}

GlossyFlood::GlossyFlood(const phy::Topology& topo,
                         const phy::InterferenceField& interf)
    : owned_links_(std::make_unique<phy::CachedLinkModel>(topo)),
      links_(owned_links_.get()),
      interf_(&interf) {}

GlossyFlood::GlossyFlood(phy::LinkModel& links,
                         const phy::InterferenceField& interf)
    : links_(&links), interf_(&interf) {}

sim::TimeUs GlossyFlood::step_len_us(const FloodParams& p,
                                     const phy::RadioConstants& radio) {
  return static_cast<sim::TimeUs>(
             std::llround(radio.airtime_us(p.payload_bytes))) +
         p.processing_us;
}

int GlossyFlood::max_steps(const FloodParams& p,
                           const phy::RadioConstants& radio) {
  sim::TimeUs step = step_len_us(p, radio);
  DIMMER_REQUIRE(step > 0 && p.slot_len_us >= step,
                 "slot too short for even one frame");
  // The quotient is 64-bit; truncating it straight through static_cast<int>
  // used to wrap a pathological slot_len_us (fuzzed/hand-edited scenarios)
  // into a tiny or negative step count, silently simulating the wrong slot.
  const sim::TimeUs q = p.slot_len_us / step;
  DIMMER_REQUIRE(q <= kMaxFloodSteps,
                 "slot_len_us/step exceeds kMaxFloodSteps");
  return static_cast<int>(q);
}

FloodResult GlossyFlood::run(phy::NodeId initiator,
                             const std::vector<NodeFloodConfig>& configs,
                             const FloodParams& params,
                             util::Pcg32& rng) const {
  FloodWorkspace ws;
  FloodResult out;
  run_into(initiator, configs, params, rng, ws, out);
  return out;
}

// The prolog assign()/resize() calls recycle workspace capacity before the
// hot region starts; the steady state allocates nothing, enforced dynamically
// by tests/flood/test_workspace.cpp.
// dimmer-lint: pure(may-allocate)
void GlossyFlood::run_into(phy::NodeId initiator,
                           const std::vector<NodeFloodConfig>& configs,
                           const FloodParams& params, util::Pcg32& rng,
                           FloodWorkspace& ws, FloodResult& out) const {
  const phy::Topology& topo = links_->topology();
  const int n = topo.size();
  // Full argument validation happens here, once per flood; the per-link
  // lookups inside the loop index the precomputed matrix with ids generated
  // below, so they carry debug-only assertions (see util/check.hpp).
  DIMMER_REQUIRE(initiator >= 0 && initiator < n, "initiator out of range");
  DIMMER_REQUIRE(static_cast<int>(configs.size()) == n,
                 "one NodeFloodConfig per node required");
  DIMMER_REQUIRE(configs[static_cast<std::size_t>(initiator)].participates,
                 "initiator must participate");
  DIMMER_REQUIRE(phy::is_valid_channel(params.channel), "invalid channel");
  // Non-finite powers would defeat the LinkModel's != cache check (NaN
  // rebuilds every flood) and poison SINR/PER; non-positive payloads make
  // airtime/steps meaningless. Reject both up front.
  DIMMER_REQUIRE(std::isfinite(params.tx_power_dbm),
                 "tx_power_dbm must be finite");
  DIMMER_REQUIRE(params.payload_bytes > 0, "payload_bytes must be positive");
  for (const auto& c : configs)
    DIMMER_REQUIRE(c.n_tx >= 0, "negative n_tx");

  const phy::RadioConstants& radio = topo.radio();
  const sim::TimeUs step_len = step_len_us(params, radio);
  const int steps = max_steps(params, radio);
  const int frame_bytes = params.payload_bytes + radio.phy_overhead_bytes;
  const double noise_mw = phy::dbm_to_mw(radio.noise_floor_dbm);
  // Loop invariants, hoisted: each is the exact expression the step loop
  // historically evaluated per reception, so the bits are unchanged.
  const double noise_dbm = phy::mw_to_dbm(noise_mw);
  const double fading_sigma = topo.path_loss().fading_sigma_db;
  const auto airtime_us =
      static_cast<sim::TimeUs>(std::llround(radio.airtime_us(params.payload_bytes)));
  const double coherence_gain = params.coherence_gain;

  // Linear-domain link powers for this flood's TX power; cached across
  // floods by the LinkModel (recomputed only when the power changes).
  // Sparse backends (culled CSR rows, DESIGN.md §13) are probed first: the
  // step loop then scatters per-transmitter rows instead of sweeping dense
  // ones and skips listeners no surviving link reaches. With culling
  // disabled every link survives, both deviations are no-ops, and the
  // engine is bit-identical to the dense path — FloodResult and RNG
  // end-state (tests/flood/test_sparse_differential.cpp).
  const phy::SparseLinkView* sparse =
      links_->prepare_sparse(params.tx_power_dbm);
  phy::LinkMatrixView links{};
  if (sparse == nullptr) links = links_->prepare(params.tx_power_dbm);

  // Per-node dynamic state, in caller-owned scratch.
  const auto un = static_cast<std::size_t>(n);
  ws.state.assign(un, FloodWorkspace::NodeScratch{});
  ws.is_tx.assign(un, 0);
  ws.budget.resize(un);
  ws.total_mw.resize(un);
  ws.strongest_mw.resize(un);
  ws.transmitters.clear();
  ws.transmitters.reserve(un);
  ws.rx_nodes.resize(un);
  ws.rx_batch.resize(n);

  out.nodes.assign(un, NodeFloodResult{});
  out.participated.assign(un, false);
  out.steps_simulated = 0;
  out.initiator = initiator;

  for (int i = 0; i < n; ++i) {
    const auto& cfg = configs[static_cast<std::size_t>(i)];
    out.participated[static_cast<std::size_t>(i)] = cfg.participates;
    if (!cfg.participates) ws.state[static_cast<std::size_t>(i)].finished = true;
    // The initiator sources the packet: it transmits at least once even if
    // its own budget says 0 (a passive role never applies to one's own slot).
    ws.budget[static_cast<std::size_t>(i)] =
        i == initiator ? std::max(1, cfg.n_tx) : cfg.n_tx;
  }
  {
    auto& init = ws.state[static_cast<std::size_t>(initiator)];
    init.has_packet = true;
    init.first_step = -1;  // transmits at even steps 0, 2, 4, ...
  }

  // Observability accumulators; only touched when a sink is attached.
  const bool observed = instr_.active();
  double exposure_sum = 0.0;
  std::uint64_t exposure_n = 0;

  // dimmer-lint: hot-path begin — the zero-allocation flood step loop; the
  // operator-new audit in tests/flood/test_workspace.cpp enforces the same
  // contract at runtime.
  for (int t = 0; t < steps; ++t) {
    // 1. Who transmits at this step? Alternation: a node first involved at
    //    step f transmits at f+1, f+3, ... while budget remains.
    ws.transmitters.clear();
    for (phy::NodeId i = 0; i < n; ++i) {
      FloodWorkspace::NodeScratch& s = ws.state[static_cast<std::size_t>(i)];
      if (s.finished || !s.has_packet) continue;
      if ((t - s.first_step) % 2 == 1 &&
          s.tx_done < ws.budget[static_cast<std::size_t>(i)]) {
        // NOLINTNEXTLINE-DIMMER(hot-no-alloc): capacity reserved per flood
        ws.transmitters.push_back(i);
        ws.is_tx[static_cast<std::size_t>(i)] = 1;
      }
    }
    const bool any_tx = !ws.transmitters.empty();

    // 2. Early exit: nobody transmits now, and nobody ever will again.
    if (!any_tx) {
      bool future_tx = false;
      for (phy::NodeId i = 0; i < n && !future_tx; ++i) {
        const FloodWorkspace::NodeScratch& s =
            ws.state[static_cast<std::size_t>(i)];
        future_tx = !s.finished && s.has_packet &&
                    s.tx_done < ws.budget[static_cast<std::size_t>(i)];
      }
      if (!future_tx) {
        out.steps_simulated = t;
        break;
      }
    }

    const sim::TimeUs t0 = params.slot_start_us + t * step_len;
    const sim::TimeUs t1 = t0 + airtime_us;

    // 3a. Concurrent powers at every node: one contiguous matrix-row sweep
    //     per transmitter. Per-listener accumulation visits transmitters in
    //     the same ascending order as the historical per-listener loop, so
    //     the floating-point sums are bit-identical.
    if (any_tx) {
      std::fill(ws.total_mw.begin(), ws.total_mw.end(), 0.0);
      std::fill(ws.strongest_mw.begin(), ws.strongest_mw.end(), 0.0);
      if (sparse != nullptr) {
        // Sparse scatter: each transmitter's CSR row holds only surviving
        // links, listeners ascending. Transmitters are visited in the same
        // ascending order as the dense sweep, so every listener accumulates
        // its surviving transmitters with the exact adds/maxes the dense
        // loop would perform — culled links are the only difference.
        double* total = ws.total_mw.data();
        double* strongest = ws.strongest_mw.data();
        for (phy::NodeId tx : ws.transmitters) {
          const std::size_t row_end = sparse->row_end(tx);
          for (std::size_t k = sparse->row_begin(tx); k < row_end; ++k) {
            const double p_mw = sparse->mw[k];
            const auto rx = static_cast<std::size_t>(sparse->col[k]);
            total[rx] += p_mw;
            strongest[rx] = std::max(strongest[rx], p_mw);
          }
        }
      } else {
        for (phy::NodeId tx : ws.transmitters) {
          const double* row = links.row(tx);
          double* total = ws.total_mw.data();
          double* strongest = ws.strongest_mw.data();
          // Lanewise add/max over the contiguous row, transmitters in the
          // same ascending order as the historical per-listener loop: exact
          // IEEE ops with no cross-lane reduction, so this site is
          // bit-identical on every backend (DESIGN.md §12).
          using util::simd::vdouble;
          constexpr int kW = util::simd::native_width;
          int i = 0;
          // The next three NOLINTs sanction a name-resolution artifact:
          // `vdouble::load` (a register load, no allocation) shares its name
          // with `TraceDataset::load`, and the call graph widens by name.
          for (; i + kW <= n; i += kW) {
            const vdouble p = vdouble::load(row + i);  // NOLINT-DIMMER(hot-no-alloc)
            (vdouble::load(total + i) + p).store(total + i);  // NOLINT-DIMMER(hot-no-alloc)
            util::simd::max(vdouble::load(strongest + i), p)  // NOLINT-DIMMER(hot-no-alloc)
                .store(strongest + i);
          }
          for (; i < n; ++i) {  // scalar tail: the same add/max ops
            const double p_mw = row[i];
            total[i] += p_mw;
            strongest[i] = std::max(strongest[i], p_mw);
          }
        }
      }
    }

    // 3b. Receptions for every awake listener, in three passes:
    //     gather (all RNG draws, in the historical per-listener order:
    //     fading normal first, Bernoulli uniform second, listeners
    //     ascending), one batched evaluation of the transcendental chain
    //     (phy::reception_success_batch — the scalar backend replays the
    //     historical expressions verbatim), then decision application.
    //     rng.bernoulli(p) is exactly uniform() < p, so pre-drawing the
    //     uniform leaves the stream and the decisions bit-identical.
    int n_rx = 0;
    for (phy::NodeId i = 0; i < n; ++i) {
      FloodWorkspace::NodeScratch& s = ws.state[static_cast<std::size_t>(i)];
      if (s.finished) continue;
      s.radio_on += step_len;  // TX or RX, the radio is on this step
      if (ws.is_tx[static_cast<std::size_t>(i)] || !any_tx) continue;
      if (s.has_packet) continue;  // re-receptions only maintain sync
      // Sparse backends: a listener no surviving link reaches sees exactly
      // zero concurrent power, so its success probability is < 1e-86 —
      // reachable only by a uniform() draw of exactly 0.0 (p = 2^-53).
      // Skipping it before the interference sample and both RNG draws is
      // what makes the step cost scale with the flood frontier instead of
      // N. With culling disabled every stored power is positive, this never
      // fires, and the RNG stream stays bit-identical to the dense engine.
      if (sparse != nullptr &&
          ws.strongest_mw[static_cast<std::size_t>(i)] == 0.0)
        continue;

      const auto r = static_cast<std::size_t>(n_rx);
      ws.rx_batch.strongest_mw[r] =
          ws.strongest_mw[static_cast<std::size_t>(i)];
      ws.rx_batch.total_mw[r] = ws.total_mw[static_cast<std::size_t>(i)];
      // Per-reception block fading at the listener.
      ws.rx_batch.fade_db[r] =
          fading_sigma > 0.0 ? rng.normal(0.0, fading_sigma) : 0.0;
      phy::InterferenceSample interf =
          interf_->sample(t0, t1, params.channel, i, topo);
      if (observed) {
        exposure_sum += interf.exposure;
        ++exposure_n;
      }
      ws.rx_batch.interf_mw[r] = interf.power_mw;
      ws.rx_batch.jam_fraction[r] = interf.exposure;
      ws.rx_batch.uniform[r] = rng.uniform();  // the Bernoulli draw
      ws.rx_nodes[r] = i;
      ++n_rx;
    }
    ws.rx_batch.count = n_rx;

    if (n_rx > 0) {
      phy::reception_success_batch(ws.rx_batch, coherence_gain,
                                   fading_sigma > 0.0, noise_mw, noise_dbm,
                                   frame_bytes);
      for (int r = 0; r < n_rx; ++r) {
        const auto ur = static_cast<std::size_t>(r);
        if (ws.rx_batch.uniform[ur] < ws.rx_batch.p_ok[ur]) {
          FloodWorkspace::NodeScratch& s =
              ws.state[static_cast<std::size_t>(ws.rx_nodes[ur])];
          s.has_packet = true;
          s.first_step = t;
          if (ws.budget[static_cast<std::size_t>(ws.rx_nodes[ur])] == 0)
            s.finished = true;  // passive receiver: done
        }
      }
    }

    // 4. Transmitter bookkeeping (after receptions so a TX at step t is
    //    heard at step t, not retroactively). Also clears the step's marks.
    for (phy::NodeId tx : ws.transmitters) {
      FloodWorkspace::NodeScratch& s = ws.state[static_cast<std::size_t>(tx)];
      s.tx_done += 1;
      if (s.tx_done >= ws.budget[static_cast<std::size_t>(tx)])
        s.finished = true;
      ws.is_tx[static_cast<std::size_t>(tx)] = 0;
    }
    out.steps_simulated = t + 1;
  }
  // dimmer-lint: hot-path end

  // 5. Fill results. Nodes that never received and participated listened for
  //    the whole slot (the paper's pessimistic radio-on accounting).
  for (phy::NodeId i = 0; i < n; ++i) {
    const FloodWorkspace::NodeScratch& s =
        ws.state[static_cast<std::size_t>(i)];
    NodeFloodResult& r = out.nodes[static_cast<std::size_t>(i)];
    if (!out.participated[static_cast<std::size_t>(i)]) continue;
    r.received = s.has_packet;
    r.first_rx_step = (i == initiator) ? 0 : (s.has_packet ? s.first_step : -1);
    r.transmissions = s.tx_done;
    bool heard = s.has_packet;
    r.radio_on_us = heard ? std::min<sim::TimeUs>(s.radio_on, params.slot_len_us)
                          : params.slot_len_us;
  }

  if (observed) record(out, params, exposure_sum, exposure_n);
}

void GlossyFlood::record(const FloodResult& result, const FloodParams& params,
                         double exposure_sum,
                         std::uint64_t exposure_n) const {
  // Single O(n) pass over the result; historically receiver_count() alone
  // was recomputed three times per recorded flood.
  const FloodResult::Summary sum = result.summarize();
  const double delivery =
      sum.participants == 0
          ? 1.0
          : static_cast<double>(sum.receivers) / sum.participants;
  double mean_exposure =
      exposure_n > 0 ? exposure_sum / static_cast<double>(exposure_n) : 0.0;

  if (instr_.metrics) {
    obs::MetricsRegistry& m = *instr_.metrics;
    m.counter("flood.runs") += 1;
    m.counter("flood.receivers") += static_cast<std::uint64_t>(sum.receivers);
    m.counter("flood.transmissions") +=
        static_cast<std::uint64_t>(sum.transmissions);
    m.counter("flood.steps") +=
        static_cast<std::uint64_t>(result.steps_simulated);
    m.histogram("flood.radio_on_us", {1000, 2000, 5000, 10000, 20000})
        .add(static_cast<double>(sum.radio_on_us));
    m.histogram("flood.exposure", {0.01, 0.05, 0.1, 0.25, 0.5, 0.75})
        .add(mean_exposure);
  }
  if (instr_.trace) {
    obs::TraceEvent e;
    e.kind = "flood";
    e.round = params.trace_round;
    e.t_us = params.slot_start_us;
    e.node = result.initiator;
    e.f("receivers", sum.receivers)
        .f("delivery_ratio", delivery)
        .f("steps", result.steps_simulated)
        .f("transmissions", sum.transmissions)
        .f("radio_on_us", static_cast<double>(sum.radio_on_us))
        .f("exposure", mean_exposure)
        .f("channel", params.channel);
    instr_.trace->emit(e);
  }
}

}  // namespace dimmer::flood
