#include "flood/glossy.hpp"

#include <algorithm>
#include <cmath>

#include "phy/per.hpp"
#include "phy/propagation.hpp"
#include "util/check.hpp"

namespace dimmer::flood {

int FloodResult::receiver_count() const {
  int n = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (static_cast<phy::NodeId>(i) == initiator) continue;
    if (participated_[i] && nodes[i].received) ++n;
  }
  return n;
}

double FloodResult::delivery_ratio() const {
  int participants = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (static_cast<phy::NodeId>(i) == initiator) continue;
    if (participated_[i]) ++participants;
  }
  if (participants == 0) return 1.0;
  return static_cast<double>(receiver_count()) / participants;
}

FloodResult FloodResult::silent(int n_nodes, phy::NodeId initiator) {
  FloodResult r;
  r.nodes.assign(static_cast<std::size_t>(n_nodes), NodeFloodResult{});
  r.participated_.assign(static_cast<std::size_t>(n_nodes), false);
  r.initiator = initiator;
  return r;
}

sim::TimeUs GlossyFlood::step_len_us(const FloodParams& p,
                                     const phy::RadioConstants& radio) {
  return static_cast<sim::TimeUs>(
             std::llround(radio.airtime_us(p.payload_bytes))) +
         p.processing_us;
}

int GlossyFlood::max_steps(const FloodParams& p,
                           const phy::RadioConstants& radio) {
  sim::TimeUs step = step_len_us(p, radio);
  DIMMER_REQUIRE(step > 0 && p.slot_len_us >= step,
                 "slot too short for even one frame");
  return static_cast<int>(p.slot_len_us / step);
}

FloodResult GlossyFlood::run(phy::NodeId initiator,
                             const std::vector<NodeFloodConfig>& configs,
                             const FloodParams& params,
                             util::Pcg32& rng) const {
  const int n = topo_->size();
  DIMMER_REQUIRE(initiator >= 0 && initiator < n, "initiator out of range");
  DIMMER_REQUIRE(static_cast<int>(configs.size()) == n,
                 "one NodeFloodConfig per node required");
  DIMMER_REQUIRE(configs[static_cast<std::size_t>(initiator)].participates,
                 "initiator must participate");
  DIMMER_REQUIRE(phy::is_valid_channel(params.channel), "invalid channel");
  for (const auto& c : configs)
    DIMMER_REQUIRE(c.n_tx >= 0, "negative n_tx");

  const phy::RadioConstants& radio = topo_->radio();
  const sim::TimeUs step_len = step_len_us(params, radio);
  const int steps = max_steps(params, radio);
  const int frame_bytes = params.payload_bytes + radio.phy_overhead_bytes;
  const double noise_mw = phy::dbm_to_mw(radio.noise_floor_dbm);

  // Per-node dynamic state.
  struct State {
    bool has_packet = false;
    int first_step = 0;   // step of first involvement; initiator uses -1
    int tx_done = 0;
    bool finished = false;  // radio off for the rest of the slot
    sim::TimeUs radio_on = 0;
  };
  std::vector<State> st(static_cast<std::size_t>(n));

  FloodResult result;
  result.nodes.assign(static_cast<std::size_t>(n), NodeFloodResult{});
  result.participated_.assign(static_cast<std::size_t>(n), false);
  result.initiator = initiator;

  for (int i = 0; i < n; ++i) {
    const auto& cfg = configs[static_cast<std::size_t>(i)];
    result.participated_[static_cast<std::size_t>(i)] = cfg.participates;
    if (!cfg.participates) st[static_cast<std::size_t>(i)].finished = true;
  }
  {
    auto& init = st[static_cast<std::size_t>(initiator)];
    init.has_packet = true;
    init.first_step = -1;  // transmits at even steps 0, 2, 4, ...
  }

  // The initiator sources the packet: it transmits at least once even if its
  // own budget says 0 (a passive role never applies to one's own slot).
  auto budget = [&](phy::NodeId i) {
    int b = configs[static_cast<std::size_t>(i)].n_tx;
    return i == initiator ? std::max(1, b) : b;
  };

  std::vector<phy::NodeId> transmitters;
  transmitters.reserve(static_cast<std::size_t>(n));

  // Observability accumulators; only touched when a sink is attached.
  const bool observed = instr_.active();
  double exposure_sum = 0.0;
  std::uint64_t exposure_n = 0;

  for (int t = 0; t < steps; ++t) {
    // 1. Who transmits at this step? Alternation: a node first involved at
    //    step f transmits at f+1, f+3, ... while budget remains.
    transmitters.clear();
    for (phy::NodeId i = 0; i < n; ++i) {
      State& s = st[static_cast<std::size_t>(i)];
      if (s.finished || !s.has_packet) continue;
      if ((t - s.first_step) % 2 == 1 && s.tx_done < budget(i))
        transmitters.push_back(i);
    }

    // 2. Early exit: nobody transmits now, and nobody ever will again.
    if (transmitters.empty()) {
      bool future_tx = false;
      for (phy::NodeId i = 0; i < n && !future_tx; ++i) {
        const State& s = st[static_cast<std::size_t>(i)];
        future_tx = !s.finished && s.has_packet && s.tx_done < budget(i);
      }
      if (!future_tx) {
        result.steps_simulated = t;
        break;
      }
    }

    const sim::TimeUs t0 = params.slot_start_us + t * step_len;
    const sim::TimeUs t1 =
        t0 + static_cast<sim::TimeUs>(
                 std::llround(radio.airtime_us(params.payload_bytes)));

    // 3. Receptions for every awake listener.
    for (phy::NodeId i = 0; i < n; ++i) {
      State& s = st[static_cast<std::size_t>(i)];
      if (s.finished) continue;
      const bool is_tx = std::find(transmitters.begin(), transmitters.end(),
                                   i) != transmitters.end();
      s.radio_on += step_len;  // TX or RX, the radio is on this step
      if (is_tx || transmitters.empty()) continue;
      if (s.has_packet) continue;  // re-receptions only maintain sync

      // Partially-coherent combining of all concurrent identical frames.
      double strongest_mw = 0.0, total_mw = 0.0;
      for (phy::NodeId tx : transmitters) {
        double p_mw = phy::dbm_to_mw(
            topo_->rx_power_dbm(tx, i, params.tx_power_dbm));
        total_mw += p_mw;
        strongest_mw = std::max(strongest_mw, p_mw);
      }
      double signal_mw =
          strongest_mw + params.coherence_gain * (total_mw - strongest_mw);
      // Per-reception block fading at the listener.
      double fading_sigma = topo_->path_loss().fading_sigma_db;
      if (fading_sigma > 0.0)
        signal_mw *= std::pow(10.0, rng.normal(0.0, fading_sigma) / 10.0);

      phy::InterferenceSample interf =
          interf_->sample(t0, t1, params.channel, i, *topo_);
      if (observed) {
        exposure_sum += interf.exposure;
        ++exposure_n;
      }
      double sinr_clean_db =
          phy::mw_to_dbm(signal_mw) - phy::mw_to_dbm(noise_mw);
      double sinr_jam_db = phy::mw_to_dbm(signal_mw) -
                           phy::mw_to_dbm(noise_mw + interf.power_mw);
      double p_ok = phy::frame_success_prob(sinr_clean_db, sinr_jam_db,
                                            interf.exposure, frame_bytes);
      if (rng.bernoulli(p_ok)) {
        s.has_packet = true;
        s.first_step = t;
        if (budget(i) == 0) s.finished = true;  // passive receiver: done
      }
    }

    // 4. Transmitter bookkeeping (after receptions so a TX at step t is
    //    heard at step t, not retroactively).
    for (phy::NodeId tx : transmitters) {
      State& s = st[static_cast<std::size_t>(tx)];
      s.tx_done += 1;
      if (s.tx_done >= budget(tx)) s.finished = true;
    }
    result.steps_simulated = t + 1;
  }

  // 5. Fill results. Nodes that never received and participated listened for
  //    the whole slot (the paper's pessimistic radio-on accounting).
  for (phy::NodeId i = 0; i < n; ++i) {
    const State& s = st[static_cast<std::size_t>(i)];
    NodeFloodResult& r = result.nodes[static_cast<std::size_t>(i)];
    if (!result.participated_[static_cast<std::size_t>(i)]) continue;
    r.received = s.has_packet;
    r.first_rx_step = (i == initiator) ? 0 : (s.has_packet ? s.first_step : -1);
    r.transmissions = s.tx_done;
    bool heard = s.has_packet;
    r.radio_on_us = heard ? std::min<sim::TimeUs>(s.radio_on, params.slot_len_us)
                          : params.slot_len_us;
  }

  if (observed) record(result, params, exposure_sum, exposure_n);
  return result;
}

void GlossyFlood::record(const FloodResult& result, const FloodParams& params,
                         double exposure_sum,
                         std::uint64_t exposure_n) const {
  int transmissions = 0;
  sim::TimeUs radio_on_total = 0;
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    if (!result.participated_[i]) continue;
    transmissions += result.nodes[i].transmissions;
    radio_on_total += result.nodes[i].radio_on_us;
  }
  double mean_exposure =
      exposure_n > 0 ? exposure_sum / static_cast<double>(exposure_n) : 0.0;

  if (instr_.metrics) {
    obs::MetricsRegistry& m = *instr_.metrics;
    m.counter("flood.runs") += 1;
    m.counter("flood.receivers") +=
        static_cast<std::uint64_t>(result.receiver_count());
    m.counter("flood.transmissions") += static_cast<std::uint64_t>(transmissions);
    m.counter("flood.steps") +=
        static_cast<std::uint64_t>(result.steps_simulated);
    m.histogram("flood.radio_on_us", {1000, 2000, 5000, 10000, 20000})
        .add(static_cast<double>(radio_on_total));
    m.histogram("flood.exposure", {0.01, 0.05, 0.1, 0.25, 0.5, 0.75})
        .add(mean_exposure);
  }
  if (instr_.trace) {
    obs::TraceEvent e;
    e.kind = "flood";
    e.round = params.trace_round;
    e.t_us = params.slot_start_us;
    e.node = result.initiator;
    e.f("receivers", result.receiver_count())
        .f("delivery_ratio", result.delivery_ratio())
        .f("steps", result.steps_simulated)
        .f("transmissions", transmissions)
        .f("radio_on_us", static_cast<double>(radio_on_total))
        .f("exposure", mean_exposure)
        .f("channel", params.channel);
    instr_.trace->emit(e);
  }
}

}  // namespace dimmer::flood
