// Reusable scratch memory for the Glossy flood engine.
//
// GlossyFlood::run_into is allocation-free in steady state: every piece of
// per-flood state lives in a FloodWorkspace the caller owns and reuses across
// floods (lwb::RoundExecutor and baselines::CrystalNetwork each keep one for
// the lifetime of the simulation). The first flood on a given topology sizes
// the vectors; subsequent floods only clear/overwrite them.
//
// A workspace is plain scratch: it carries no results and no configuration,
// and any contents are invalidated by the next run_into call that uses it.
// Like a Pcg32, it must not be shared between concurrently running floods.
#pragma once

#include <vector>

#include "phy/batched.hpp"
#include "phy/topology.hpp"
#include "sim/time.hpp"

namespace dimmer::flood {

struct FloodWorkspace {
  /// Per-node dynamic flood state (mirrors the engine's step loop).
  struct NodeScratch {
    bool has_packet = false;
    int first_step = 0;  ///< step of first involvement; initiator uses -1
    int tx_done = 0;
    bool finished = false;  ///< radio off for the rest of the slot
    sim::TimeUs radio_on = 0;
  };

  std::vector<NodeScratch> state;
  std::vector<phy::NodeId> transmitters;  ///< transmitters of the current step
  std::vector<char> is_tx;                ///< per-step transmitter mark vector
  std::vector<int> budget;                ///< effective per-node TX budgets
  std::vector<double> total_mw;           ///< combined concurrent power per rx
  std::vector<double> strongest_mw;       ///< strongest concurrent power per rx
  phy::ReceptionBatch rx_batch;           ///< step-3b reception staging (SoA)
  std::vector<phy::NodeId> rx_nodes;      ///< node id per rx_batch entry

  /// Pre-sizes every buffer for an `n`-node topology (optional; run_into
  /// sizes on demand — calling this up front just front-loads the one-time
  /// allocations).
  void reserve(int n) {
    const auto m = static_cast<std::size_t>(n);
    state.reserve(m);
    transmitters.reserve(m);
    is_tx.reserve(m);
    budget.reserve(m);
    total_mw.reserve(m);
    strongest_mw.reserve(m);
    rx_nodes.reserve(m);
    rx_batch.resize(n);
  }
};

}  // namespace dimmer::flood
