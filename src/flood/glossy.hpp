// Glossy synchronous-transmission flood engine.
//
// A flood is simulated at packet granularity: time inside a slot is divided
// into steps of one frame airtime plus a software delay. The initiator
// transmits at step 0; any node that first receives at step t transmits at
// t+1 and then alternates RX/TX (Glossy's relay counting) until it has spent
// its retransmission budget N_TX, after which it turns its radio off.
// N_TX = 0 marks a *passive receiver* (Dimmer's forwarder selection): the
// node switches its radio off right after its first successful reception.
//
// Reception combines the powers of all concurrent synchronized transmitters
// (they send identical bits within <0.5 us, so there is no collision, only
// partially-coherent combining) against noise plus sampled interference.
// Bit-level constructive-interference fidelity is *not* modelled; see
// DESIGN.md ("Substitutions") for why slot-level behaviour is what Dimmer's
// control loop observes.
#pragma once

#include <vector>

#include <cstdint>

#include "obs/trace.hpp"
#include "phy/channels.hpp"
#include "phy/interference.hpp"
#include "phy/topology.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace dimmer::flood {

/// Per-node flood configuration.
struct NodeFloodConfig {
  /// Retransmission budget. 0 = passive receiver (radio off after first RX).
  /// The initiator always transmits at least once regardless.
  int n_tx = 3;
  /// False: the node sits this flood out entirely (e.g. desynchronized).
  bool participates = true;
};

/// Flood-wide parameters.
struct FloodParams {
  phy::Channel channel = phy::kControlChannel;
  sim::TimeUs slot_start_us = 0;        ///< absolute time (interference phase)
  sim::TimeUs slot_len_us = sim::ms(20);///< paper: slots last at most 20 ms
  int payload_bytes = 30;               ///< paper: 30 B incl. LWB+Dimmer hdrs
  double tx_power_dbm = 0.0;            ///< paper: 0 dBm
  /// Fraction of the non-strongest concurrent power that combines usefully
  /// at the receiver (1 = perfectly coherent, 0 = only capture of strongest).
  double coherence_gain = 0.5;
  /// Software turnaround between RX and TX (radio stays on).
  sim::TimeUs processing_us = 25;
  /// Round index stamped on trace events (purely observational; the engine
  /// itself is round-agnostic).
  std::uint64_t trace_round = 0;
};

/// Per-node flood outcome.
struct NodeFloodResult {
  bool received = false;   ///< got the packet (initiator: trivially true)
  int first_rx_step = -1;  ///< step of first successful reception
  int transmissions = 0;   ///< times this node transmitted the packet
  sim::TimeUs radio_on_us = 0;
};

/// Whole-flood outcome.
struct FloodResult {
  std::vector<NodeFloodResult> nodes;
  int steps_simulated = 0;
  phy::NodeId initiator = -1;

  /// Number of participating non-initiator nodes that received the packet.
  int receiver_count() const;
  /// received / participating non-initiator nodes (1.0 if none participate).
  double delivery_ratio() const;

  /// A flood that never happened (crashed initiator): `n_nodes` entries, no
  /// receptions, no participants, no energy. Used for orphaned control slots.
  static FloodResult silent(int n_nodes, phy::NodeId initiator);

 private:
  friend class GlossyFlood;
  std::vector<bool> participated_;
};

/// Stateless flood simulator bound to a topology + interference field.
class GlossyFlood {
 public:
  GlossyFlood(const phy::Topology& topo, const phy::InterferenceField& interf)
      : topo_(&topo), interf_(&interf) {}

  /// Number of airtime steps that fit in a slot.
  static int max_steps(const FloodParams& p, const phy::RadioConstants& radio);

  /// Step length (airtime + processing) in microseconds.
  static sim::TimeUs step_len_us(const FloodParams& p,
                                 const phy::RadioConstants& radio);

  /// Runs one flood. `configs` must have one entry per topology node.
  FloodResult run(phy::NodeId initiator,
                  const std::vector<NodeFloodConfig>& configs,
                  const FloodParams& params, util::Pcg32& rng) const;

  /// Optional observability hooks (see obs/trace.hpp). Sinks never touch the
  /// RNG stream or control flow, so results are identical with or without.
  void set_instrumentation(obs::Instrumentation instr) { instr_ = instr; }

 private:
  void record(const FloodResult& result, const FloodParams& params,
              double exposure_sum, std::uint64_t exposure_n) const;

  const phy::Topology* topo_;
  const phy::InterferenceField* interf_;
  obs::Instrumentation instr_;
};

}  // namespace dimmer::flood
