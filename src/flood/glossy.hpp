// Glossy synchronous-transmission flood engine.
//
// A flood is simulated at packet granularity: time inside a slot is divided
// into steps of one frame airtime plus a software delay. The initiator
// transmits at step 0; any node that first receives at step t transmits at
// t+1 and then alternates RX/TX (Glossy's relay counting) until it has spent
// its retransmission budget N_TX, after which it turns its radio off.
// N_TX = 0 marks a *passive receiver* (Dimmer's forwarder selection): the
// node switches its radio off right after its first successful reception.
//
// Reception combines the powers of all concurrent synchronized transmitters
// (they send identical bits within <0.5 us, so there is no collision, only
// partially-coherent combining) against noise plus sampled interference.
// Bit-level constructive-interference fidelity is *not* modelled; see
// DESIGN.md ("Substitutions") for why slot-level behaviour is what Dimmer's
// control loop observes.
//
// Hot path (DESIGN.md §10): link powers come from a phy::LinkModel — a
// precomputed linear-domain (mW) matrix — rather than per-reception
// dBm->mW conversions, and all per-flood scratch lives in a caller-owned
// FloodWorkspace so `run_into` allocates nothing in steady state. Results
// are bit-identical to the historical direct-Topology engine (asserted by
// tests/flood/test_differential.cpp against a frozen reference copy).
// Sparse backends (DESIGN.md §13): when the LinkModel offers a culled CSR
// view (prepare_sparse), the step loop scatters per-transmitter rows and
// skips unreachable listeners; with culling disabled this path is proven
// bit-identical to the dense one (tests/flood/test_sparse_differential.cpp).
#pragma once

#include <memory>
#include <vector>

#include <cstdint>

#include "flood/workspace.hpp"
#include "obs/trace.hpp"
#include "phy/channels.hpp"
#include "phy/interference.hpp"
#include "phy/link_model.hpp"
#include "phy/topology.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace dimmer::flood {

/// Documented cap on airtime steps per flood slot (~1M steps; every slot the
/// paper's protocols use is < 100 steps). GlossyFlood::max_steps rejects
/// slot_len_us / step quotients above this instead of letting the 64-bit
/// quotient wrap through an int truncation.
inline constexpr int kMaxFloodSteps = 1 << 20;

/// Per-node flood configuration.
struct NodeFloodConfig {
  /// Retransmission budget. 0 = passive receiver (radio off after first RX).
  /// The initiator always transmits at least once regardless.
  int n_tx = 3;
  /// False: the node sits this flood out entirely (e.g. desynchronized).
  bool participates = true;
};

/// Flood-wide parameters.
struct FloodParams {
  phy::Channel channel = phy::kControlChannel;
  sim::TimeUs slot_start_us = 0;        ///< absolute time (interference phase)
  sim::TimeUs slot_len_us = sim::ms(20);///< paper: slots last at most 20 ms
  int payload_bytes = 30;               ///< paper: 30 B incl. LWB+Dimmer hdrs
  double tx_power_dbm = 0.0;            ///< paper: 0 dBm
  /// Fraction of the non-strongest concurrent power that combines usefully
  /// at the receiver (1 = perfectly coherent, 0 = only capture of strongest).
  double coherence_gain = 0.5;
  /// Software turnaround between RX and TX (radio stays on).
  sim::TimeUs processing_us = 25;
  /// Round index stamped on trace events (purely observational; the engine
  /// itself is round-agnostic).
  std::uint64_t trace_round = 0;
};

/// Per-node flood outcome.
struct NodeFloodResult {
  bool received = false;   ///< got the packet (initiator: trivially true)
  int first_rx_step = -1;  ///< step of first successful reception
  int transmissions = 0;   ///< times this node transmitted the packet
  sim::TimeUs radio_on_us = 0;
};

/// Whole-flood outcome. [[nodiscard]] so `run()`'s return value cannot be
/// silently discarded (dimmer-lint: nodiscard-result).
struct [[nodiscard]] FloodResult {
  std::vector<NodeFloodResult> nodes;
  /// Per node: whether it took part in the flood. Non-participants keep a
  /// default NodeFloodResult and are excluded from every aggregate below.
  std::vector<bool> participated;
  int steps_simulated = 0;
  phy::NodeId initiator = -1;

  /// All aggregate counts, computed in a single O(n) pass.
  struct Summary {
    int receivers = 0;     ///< participating non-initiator nodes that received
    int participants = 0;  ///< participating non-initiator nodes
    int transmissions = 0; ///< total TX count incl. the initiator
    sim::TimeUs radio_on_us = 0;  ///< summed over participants incl. initiator
  };
  Summary summarize() const;

  /// Number of participating non-initiator nodes that received the packet.
  int receiver_count() const { return summarize().receivers; }
  /// received / participating non-initiator nodes (1.0 if none participate).
  double delivery_ratio() const;

  /// Reinitializes in place as a flood that never happened (crashed
  /// initiator): `n_nodes` entries, no receptions, no participants, no
  /// energy. Reuses existing capacity — no allocation in steady state.
  void make_silent(int n_nodes, phy::NodeId initiator);

  /// Convenience wrapper around make_silent for fresh results.
  static FloodResult silent(int n_nodes, phy::NodeId initiator);
};

/// Flood simulator bound to a link model + interference field.
///
/// The engine itself is stateless across floods except for the link-power
/// cache inside its LinkModel, so a single engine instance is meant to live
/// as long as its topology (lwb::RoundExecutor owns one for the whole
/// simulation). Like a Pcg32, one engine must not run floods concurrently
/// from multiple threads; independent trials own independent engines.
class GlossyFlood {
 public:
  /// Convenience: binds an internally-owned CachedLinkModel over `topo`.
  GlossyFlood(const phy::Topology& topo, const phy::InterferenceField& interf);

  /// Binds an external LinkModel backend (non-owning; must outlive the
  /// engine). This is the seam for alternate PHY backends.
  GlossyFlood(phy::LinkModel& links, const phy::InterferenceField& interf);

  /// Number of airtime steps that fit in a slot.
  static int max_steps(const FloodParams& p, const phy::RadioConstants& radio);

  /// Step length (airtime + processing) in microseconds.
  static sim::TimeUs step_len_us(const FloodParams& p,
                                 const phy::RadioConstants& radio);

  /// Runs one flood. `configs` must have one entry per topology node.
  /// Convenience wrapper over run_into with one-shot scratch/result storage.
  FloodResult run(phy::NodeId initiator,
                  const std::vector<NodeFloodConfig>& configs,
                  const FloodParams& params, util::Pcg32& rng) const;

  /// Hot-path entry: identical semantics to run(), but every byte of
  /// per-flood state lives in `ws` and `out`, so repeated calls with the
  /// same workspace/result perform zero heap allocations (asserted by
  /// tests/flood/test_workspace.cpp). `ws` and `out` are overwritten.
  void run_into(phy::NodeId initiator,
                const std::vector<NodeFloodConfig>& configs,
                const FloodParams& params, util::Pcg32& rng,
                FloodWorkspace& ws, FloodResult& out) const;

  /// Optional observability hooks (see obs/trace.hpp). Sinks never touch the
  /// RNG stream or control flow, so results are identical with or without.
  void set_instrumentation(obs::Instrumentation instr) { instr_ = instr; }

  const phy::LinkModel& link_model() const { return *links_; }

 private:
  void record(const FloodResult& result, const FloodParams& params,
              double exposure_sum, std::uint64_t exposure_n) const;

  std::unique_ptr<phy::CachedLinkModel> owned_links_;  // only for the
                                                       // Topology convenience
                                                       // constructor
  phy::LinkModel* links_;
  const phy::InterferenceField* interf_;
  obs::Instrumentation instr_;
};

}  // namespace dimmer::flood
