#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/check.hpp"

namespace dimmer::util {

namespace {

std::string errno_text() { return std::strerror(errno); }

std::string parent_dir(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Durability of the rename itself: without a directory fsync a power cut can
// roll the directory entry back to the old file. Best-effort — some
// filesystems refuse to fsync a directory fd, and the rename is already
// atomic for every crash short of power loss.
void fsync_dir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_(path_ + ".tmp") {
  // O_TRUNC reclaims the debris of a previously crashed writer: the temp
  // name is deterministic, so there is at most one stale file to overwrite.
  fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  DIMMER_REQUIRE(fd_ >= 0, "cannot create temp file " + tmp_ + ": " +
                               errno_text());
}

AtomicFileWriter::~AtomicFileWriter() {
  if (committed_) return;
  if (fd_ >= 0) (void)::close(fd_);
  (void)::unlink(tmp_.c_str());
}

void AtomicFileWriter::append(const std::string& data) {
  DIMMER_CHECK_MSG(fd_ >= 0 && !committed_, "write after commit");
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      DIMMER_CHECK_MSG(false, "write to " + tmp_ + " failed: " + errno_text());
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void AtomicFileWriter::commit() {
  DIMMER_CHECK_MSG(fd_ >= 0 && !committed_, "double commit");
  bool ok = ::fsync(fd_) == 0;
  ok = (::close(fd_) == 0) && ok;
  fd_ = -1;
  if (!ok) {
    std::string err = errno_text();
    (void)::unlink(tmp_.c_str());
    committed_ = true;  // writer is inert either way
    DIMMER_CHECK_MSG(false, "fsync/close of " + tmp_ + " failed: " + err);
  }
  if (::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::string err = errno_text();
    (void)::unlink(tmp_.c_str());
    committed_ = true;
    DIMMER_CHECK_MSG(false, "rename " + tmp_ + " -> " + path_ +
                                " failed: " + err);
  }
  committed_ = true;
  fsync_dir(parent_dir(path_));
}

void write_file_atomic(const std::string& path, const std::string& contents) {
  AtomicFileWriter w(path);
  w.append(contents);
  w.commit();
}

}  // namespace dimmer::util
