// The repo's only sanctioned wall-clock access.
//
// Simulation results must be a pure function of (spec, seed): the dimmer-lint
// `det-clock` rule forbids std::chrono clock reads (and every other ambient
// time/randomness source) everywhere outside src/util/. Code that needs to
// *report* elapsed wall time — trial timing in exp::Runner, the bench
// harnesses' wall_seconds fields, all of which are stripped before
// byte-identity diffs — measures it through this header instead, which keeps
// the forbidden tokens in exactly one audited file.
#pragma once

#include <chrono>
#include <thread>

namespace dimmer::util {

/// Monotonic wall-clock reading in seconds since an arbitrary epoch.
/// Reporting only: never feed this into a simulation, a seed, or anything
/// that ends up in a byte-compared artifact.
inline double wallclock_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Blocks the calling thread for (at least) `s` seconds. For supervision
/// paths only — worker respawn backoff, poll loops in the campaign engine —
/// never inside a simulation: like every wall-clock read, a sleep can shift
/// reported timing but must not be able to shift a single result bit.
/// Negative or zero durations return immediately.
inline void sleep_seconds(double s) {
  if (s <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

/// Monotonic elapsed-time measurement, started at construction.
///
/// The pure(may-touch-clock) annotations mark this class as the audited
/// wall-clock seam: its readings feed reporting only and are stripped from
/// every byte-identity diff, so the clock does not propagate to callers in
/// dimmer-lint's transitive analysis.
class Stopwatch {
 public:
  // dimmer-lint: pure(may-touch-clock)
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction (or the last reset()).
  // dimmer-lint: pure(may-touch-clock)
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  // dimmer-lint: pure(may-touch-clock)
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dimmer::util
