// Minimal command-line flag parsing for examples and bench harnesses.
// Supports `--key=value`, `--key value`, and boolean `--flag`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace dimmer::util {

class Cli {
 public:
  /// Parses argv; throws RequireError on malformed arguments.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long get_int(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dimmer::util
