// Fixed-point arithmetic matching the paper's embedded DQN (§IV-B):
// weights are stored as 16-bit integers with a decimal scale of 100 (two
// fractional digits), and intermediate results use 32-bit accumulators.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace dimmer::util {

/// The paper's fixed-point scale: "set to 100 (two floating digits)".
constexpr std::int32_t kFixedPointScale = 100;

/// Saturating conversion of a double to a scaled int16 weight.
inline std::int16_t to_fixed16(double x,
                               std::int32_t scale = kFixedPointScale) {
  double scaled = x * static_cast<double>(scale);
  double r = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;  // round half away
  if (r > std::numeric_limits<std::int16_t>::max())
    return std::numeric_limits<std::int16_t>::max();
  if (r < std::numeric_limits<std::int16_t>::min())
    return std::numeric_limits<std::int16_t>::min();
  return static_cast<std::int16_t>(r);
}

/// Inverse of to_fixed16.
inline double from_fixed16(std::int16_t x,
                           std::int32_t scale = kFixedPointScale) {
  return static_cast<double>(x) / static_cast<double>(scale);
}

/// Multiply two scale-S fixed numbers into a scale-S result with 32-bit
/// intermediate (the embedded DQN's MAC step); rounds toward zero like the
/// integer division a 16-bit MCU would perform.
inline std::int32_t fixed_mul(std::int32_t a, std::int32_t b,
                              std::int32_t scale = kFixedPointScale) {
  std::int64_t p = static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
  return static_cast<std::int32_t>(p / scale);
}

/// Saturate a 32-bit accumulator back into int16 range (scale preserved).
inline std::int16_t saturate16(std::int32_t x) {
  if (x > std::numeric_limits<std::int16_t>::max())
    return std::numeric_limits<std::int16_t>::max();
  if (x < std::numeric_limits<std::int16_t>::min())
    return std::numeric_limits<std::int16_t>::min();
  return static_cast<std::int16_t>(x);
}

}  // namespace dimmer::util
