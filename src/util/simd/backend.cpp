#include "util/simd/simd.hpp"

namespace dimmer::util::simd {

const char* backend_name() {
#if defined(DIMMER_SIMD_AVX512)
  return "avx512";
#elif defined(DIMMER_SIMD_AVX2)
  return "avx2";
#else
  return "scalar";
#endif
}

}  // namespace dimmer::util::simd
