// AVX2 backend: simd<double, 4> over __m256d.
//
// Only compiled when DIMMER_SIMD_AVX2 is defined (CMake -DDIMMER_SIMD=avx2,
// which also adds -mavx2). Deliberate choices:
//
//  - max/min are implemented with compare+blend so they reproduce
//    std::max/std::min semantics lane-for-lane ((a < b) ? b : a). The bare
//    vmaxpd instruction instead returns its *second* operand on NaN and
//    differs on ±0, which would silently diverge from the scalar engine.
//  - AVX2 has no packed int64<->double conversion, so exp2i and
//    exponent_part use the classic bit tricks: 32-bit convert + widen for
//    exp2i, and the 2^52 magic-number add for exponent extraction. Both are
//    exact integer manipulations — no rounding is introduced.
//  - No FMA is emitted: we only use mul/add/sub intrinsics and the TU is
//    compiled without -mfma contraction of intrinsics, so polynomial
//    evaluation order is exactly as written.
#pragma once

#if !defined(DIMMER_SIMD_AVX2) && !defined(DIMMER_SIMD_AVX512)
#error "avx2.hpp requires DIMMER_SIMD_AVX2 (configure with -DDIMMER_SIMD=avx2)"
#endif

#include <immintrin.h>

#include "util/simd/scalar.hpp"

namespace dimmer::util::simd {

template <>
struct simd<double, 4> {
  static constexpr int width = 4;
  using scalar_type = double;

  __m256d v;

  simd() : v(_mm256_setzero_pd()) {}
  explicit simd(double x) : v(_mm256_set1_pd(x)) {}
  explicit simd(__m256d x) : v(x) {}

  static simd load(const double* p) { return simd(_mm256_loadu_pd(p)); }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static simd broadcast(double x) { return simd(_mm256_set1_pd(x)); }
  double lane(int i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }

  friend simd operator+(simd a, simd b) {
    return simd(_mm256_add_pd(a.v, b.v));
  }
  friend simd operator-(simd a, simd b) {
    return simd(_mm256_sub_pd(a.v, b.v));
  }
  friend simd operator*(simd a, simd b) {
    return simd(_mm256_mul_pd(a.v, b.v));
  }
  friend simd operator/(simd a, simd b) {
    return simd(_mm256_div_pd(a.v, b.v));
  }
};

inline simd<double, 4> max(simd<double, 4> a, simd<double, 4> b) {
  // (a < b) ? b : a — std::max semantics, not vmaxpd.
  const __m256d lt = _mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ);
  return simd<double, 4>(_mm256_blendv_pd(a.v, b.v, lt));
}

inline simd<double, 4> min(simd<double, 4> a, simd<double, 4> b) {
  // (b < a) ? b : a — std::min semantics.
  const __m256d lt = _mm256_cmp_pd(b.v, a.v, _CMP_LT_OQ);
  return simd<double, 4>(_mm256_blendv_pd(a.v, b.v, lt));
}

inline simd<double, 4> round_nearest(simd<double, 4> x) {
  return simd<double, 4>(
      _mm256_round_pd(x.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
}

inline simd<double, 4> select_lt(simd<double, 4> a, simd<double, 4> b,
                                 simd<double, 4> x, simd<double, 4> y) {
  const __m256d lt = _mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ);
  return simd<double, 4>(_mm256_blendv_pd(y.v, x.v, lt));
}

inline simd<double, 4> select_eq(simd<double, 4> a, simd<double, 4> b,
                                 simd<double, 4> x, simd<double, 4> y) {
  const __m256d eq = _mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ);
  return simd<double, 4>(_mm256_blendv_pd(y.v, x.v, eq));
}

inline simd<double, 4> exp2i(simd<double, 4> n) {
  // n holds integer values in [-1022, 1024]: convert through int32 (exact in
  // that range), widen to int64, and build the exponent field directly.
  const __m128i n32 = _mm256_cvtpd_epi32(n.v);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i biased = _mm256_add_epi64(n64, _mm256_set1_epi64x(1023));
  return simd<double, 4>(_mm256_castsi256_pd(_mm256_slli_epi64(biased, 52)));
}

inline simd<double, 4> exponent_part(simd<double, 4> x) {
  // (bits >> 52) is a small non-negative integer; OR-ing in the bit pattern
  // of 2^52 and subtracting (2^52 + 1022) converts it to a double without a
  // 64-bit int->double instruction (absent in AVX2).
  const __m256i bits = _mm256_castpd_si256(x.v);
  const __m256i expo = _mm256_srli_epi64(bits, 52);
  const __m256i magic = _mm256_castpd_si256(_mm256_set1_pd(0x1.0p52));
  const __m256d as_pd = _mm256_castsi256_pd(_mm256_or_si256(expo, magic));
  return simd<double, 4>(
      _mm256_sub_pd(as_pd, _mm256_set1_pd(0x1.0p52 + 1022.0)));
}

inline simd<double, 4> mantissa_part(simd<double, 4> x) {
  const __m256i bits = _mm256_castpd_si256(x.v);
  const __m256i mant =
      _mm256_or_si256(_mm256_and_si256(bits, _mm256_set1_epi64x(
                                                0x000FFFFFFFFFFFFFLL)),
                      _mm256_set1_epi64x(0x3FE0000000000000LL));
  return simd<double, 4>(_mm256_castsi256_pd(mant));
}

}  // namespace dimmer::util::simd
