// AVX-512 backend: simd<double, 8> over __m512d.
//
// Only compiled when DIMMER_SIMD_AVX512 is defined (CMake
// -DDIMMER_SIMD=avx512, which adds -mavx512f -mavx512dq). AVX-512DQ provides
// native packed int64<->double conversion, so exp2i avoids the AVX2 bit
// tricks; selects use mask registers. Semantics are identical to the other
// backends: max/min follow std::max/std::min, and all polynomial evaluation
// happens through the same generic kernels in math.hpp.
#pragma once

#ifndef DIMMER_SIMD_AVX512
#error \
    "avx512.hpp requires DIMMER_SIMD_AVX512 (configure with -DDIMMER_SIMD=avx512)"
#endif

#include <immintrin.h>

#include "util/simd/scalar.hpp"

namespace dimmer::util::simd {

template <>
struct simd<double, 8> {
  static constexpr int width = 8;
  using scalar_type = double;

  __m512d v;

  simd() : v(_mm512_setzero_pd()) {}
  explicit simd(double x) : v(_mm512_set1_pd(x)) {}
  explicit simd(__m512d x) : v(x) {}

  static simd load(const double* p) { return simd(_mm512_loadu_pd(p)); }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  static simd broadcast(double x) { return simd(_mm512_set1_pd(x)); }
  double lane(int i) const {
    alignas(64) double tmp[8];
    _mm512_store_pd(tmp, v);
    return tmp[i];
  }

  friend simd operator+(simd a, simd b) {
    return simd(_mm512_add_pd(a.v, b.v));
  }
  friend simd operator-(simd a, simd b) {
    return simd(_mm512_sub_pd(a.v, b.v));
  }
  friend simd operator*(simd a, simd b) {
    return simd(_mm512_mul_pd(a.v, b.v));
  }
  friend simd operator/(simd a, simd b) {
    return simd(_mm512_div_pd(a.v, b.v));
  }
};

inline simd<double, 8> max(simd<double, 8> a, simd<double, 8> b) {
  // (a < b) ? b : a — std::max semantics.
  const __mmask8 lt = _mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ);
  return simd<double, 8>(_mm512_mask_blend_pd(lt, a.v, b.v));
}

inline simd<double, 8> min(simd<double, 8> a, simd<double, 8> b) {
  const __mmask8 lt = _mm512_cmp_pd_mask(b.v, a.v, _CMP_LT_OQ);
  return simd<double, 8>(_mm512_mask_blend_pd(lt, a.v, b.v));
}

inline simd<double, 8> round_nearest(simd<double, 8> x) {
  return simd<double, 8>(_mm512_roundscale_pd(
      x.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
}

inline simd<double, 8> select_lt(simd<double, 8> a, simd<double, 8> b,
                                 simd<double, 8> x, simd<double, 8> y) {
  const __mmask8 lt = _mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ);
  return simd<double, 8>(_mm512_mask_blend_pd(lt, y.v, x.v));
}

inline simd<double, 8> select_eq(simd<double, 8> a, simd<double, 8> b,
                                 simd<double, 8> x, simd<double, 8> y) {
  const __mmask8 eq = _mm512_cmp_pd_mask(a.v, b.v, _CMP_EQ_OQ);
  return simd<double, 8>(_mm512_mask_blend_pd(eq, y.v, x.v));
}

inline simd<double, 8> exp2i(simd<double, 8> n) {
  // AVX-512DQ: exact packed double -> int64 conversion.
  const __m512i n64 = _mm512_cvtpd_epi64(n.v);
  const __m512i biased = _mm512_add_epi64(n64, _mm512_set1_epi64(1023));
  return simd<double, 8>(_mm512_castsi512_pd(_mm512_slli_epi64(biased, 52)));
}

inline simd<double, 8> exponent_part(simd<double, 8> x) {
  const __m512i bits = _mm512_castpd_si512(x.v);
  const __m512i expo = _mm512_srli_epi64(bits, 52);
  const __m512d as_pd = _mm512_cvtepi64_pd(expo);
  return simd<double, 8>(_mm512_sub_pd(as_pd, _mm512_set1_pd(1022.0)));
}

inline simd<double, 8> mantissa_part(simd<double, 8> x) {
  const __m512i bits = _mm512_castpd_si512(x.v);
  const __m512i mant = _mm512_or_si512(
      _mm512_and_si512(bits, _mm512_set1_epi64(0x000FFFFFFFFFFFFFLL)),
      _mm512_set1_epi64(0x3FE0000000000000LL));
  return simd<double, 8>(_mm512_castsi512_pd(mant));
}

}  // namespace dimmer::util::simd
