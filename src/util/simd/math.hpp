// Backend-generic vector math: exp / exp10 / log2 / exp2 / pow for the
// simd<double, N> value types, written once against the primitive API.
//
// The kernels are Cephes-style rational approximations (the same family
// glibc's historical libm and most SIMD math layers descend from): reduce
// the argument with a Cody-Waite two-constant split, evaluate a short
// rational P/Q in the reduced argument, then scale by 2^n through direct
// exponent-field construction (exp2i). Accuracy is ~1-2 ulp across the
// ranges this simulator feeds them (SINR-driven exponents, dBm<->mW
// conversions, per-packet success powers).
//
// Determinism contract (DESIGN.md §12):
//  - The public entry points dispatch on V::width. At width 1 they call the
//    scalar std:: functions, so a scalar-backend build (DIMMER_SIMD=scalar)
//    is *byte-identical* to code that never heard of util/simd.
//  - At width > 1 the polynomial kernels run instead. They are pure
//    lanewise functions — no cross-lane reduction anywhere — so results
//    depend only on the input value, never on lane position or batch size.
//  - The detail:: kernels are also instantiable at width 1, which is how the
//    unit tests pin their accuracy on every build, including scalar-only.
//
// Preconditions: finite inputs. log2/pow require positive *normal* values
// (the callers in src/phy select around zero/negative power lanes before
// taking logs).
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

#include "util/simd/scalar.hpp"

namespace dimmer::util::simd {

namespace detail {

/// Horner evaluation of a polynomial with coefficients highest-order first.
template <typename V, std::size_t N>
inline V polevl(V x, const double (&coef)[N]) {
  V ans = V::broadcast(coef[0]);
  for (std::size_t i = 1; i < N; ++i) {
    ans = ans * x + V::broadcast(coef[i]);
  }
  return ans;
}

// Cephes exp() rational: exp(r) = 1 + 2r P(r^2) / (Q(r^2) - r P(r^2)) for
// |r| <= 0.5 ln 2.
constexpr double kExpP[] = {1.26177193074810590878e-4,
                            3.02994407707441961300e-2,
                            9.99999999999999999910e-1};
constexpr double kExpQ[] = {3.00198505138664455042e-6,
                            2.52448340349684104192e-3,
                            2.27265548208155028766e-1,
                            2.00000000000000000005e0};

constexpr double kLog2E = 1.4426950408889634073599;   // 1/ln(2)
constexpr double kC1 = 6.93145751953125e-1;           // ln(2) high part
constexpr double kC2 = 1.42860682030941723212e-6;     // ln(2) low part
constexpr double kExpMinArg = -708.396418532264106224;  // log(DBL_MIN)
constexpr double kExpMaxArg = 709.782712893383996843;   // log(DBL_MAX)

/// Shared tail of the exp-family kernels: the rational in the reduced
/// argument `r` (|r| <= 0.347), scaled by 2^n with n pre-clamped to
/// [-1022, 1024].
template <typename V>
inline V exp_rational_scaled(V r, V n) {
  const V rr = r * r;
  const V p = r * polevl(rr, kExpP);
  const V q = polevl(rr, kExpQ) - p;
  const V e = p / q;
  return (V::broadcast(1.0) + (e + e)) * exp2i(n);
}

/// e^x. Lanes below log(DBL_MIN) flush to +0.0 (subnormal results are not
/// produced); lanes above log(DBL_MAX) saturate to +inf.
template <typename V>
inline V poly_exp(V x) {
  // Clamp into the normal-result domain *before* reduction. Without this,
  // deeply negative lanes (the BER kernel routinely feeds exp(-600..-6000)
  // at good SINR) drag a huge reduced argument through the rational and
  // produce subnormal intermediates — an x86 microcode assist (~100 cycles
  // per op) on values the flush select below discards anyway.
  const V xc =
      min(max(x, V::broadcast(kExpMinArg)), V::broadcast(kExpMaxArg));
  V n = round_nearest(xc * V::broadcast(kLog2E));
  n = min(max(n, V::broadcast(-1022.0)), V::broadcast(1024.0));
  const V r = (xc - n * V::broadcast(kC1)) - n * V::broadcast(kC2);
  V out = exp_rational_scaled(r, n);
  out = select_lt(x, V::broadcast(kExpMinArg), V::broadcast(0.0), out);
  out = select_lt(V::broadcast(kExpMaxArg), x, V::broadcast(
                      std::numeric_limits<double>::infinity()),
                  out);
  return out;
}

constexpr double kLog210 = 3.32192809488736234787e0;  // log2(10)
constexpr double kLg102A = 3.01025390625e-1;          // log10(2) high part
constexpr double kLg102B = 4.60503898119521373889e-6;  // log10(2) low part
constexpr double kLn10 = 2.30258509299404568402e0;
constexpr double kExp10MaxArg = 308.2547155599167;   // log10(DBL_MAX)
constexpr double kExp10MinArg = -307.6526555685888;  // log10(DBL_MIN)

/// 10^x. Reduction is done in base 10 (r = x - n*log10(2), |r| <= 0.1505),
/// then r*ln10 feeds the exp rational. Lanes below log10(DBL_MIN) flush to
/// +0.0 (subnormal results are not produced); lanes above log10(DBL_MAX)
/// saturate to +inf.
template <typename V>
inline V poly_exp10(V x) {
  // Same pre-reduction clamp as poly_exp: keep out-of-domain lanes from
  // generating subnormal intermediates the selects below discard.
  const V xc =
      min(max(x, V::broadcast(kExp10MinArg)), V::broadcast(kExp10MaxArg));
  V n = round_nearest(xc * V::broadcast(kLog210));
  n = min(max(n, V::broadcast(-1022.0)), V::broadcast(1024.0));
  const V r =
      ((xc - n * V::broadcast(kLg102A)) - n * V::broadcast(kLg102B)) *
      V::broadcast(kLn10);
  V out = exp_rational_scaled(r, n);
  out = select_lt(x, V::broadcast(kExp10MinArg), V::broadcast(0.0), out);
  out = select_lt(V::broadcast(kExp10MaxArg), x, V::broadcast(
                      std::numeric_limits<double>::infinity()),
                  out);
  return out;
}

// Cephes exp2() rational (distinct coefficients from exp: the reduced
// argument is |r| <= 0.5 in base 2).
constexpr double kExp2P[] = {2.30933477057345225087e-2,
                             2.02020656693165307700e1,
                             1.51390680115615096133e3};
constexpr double kExp2Q[] = {2.33184211722314911771e2,
                             4.36821166879210612817e3};

/// 2^x. Lanes below -1022 flush to +0.0; lanes at or above 1024 saturate to
/// +inf.
template <typename V>
inline V poly_exp2(V x) {
  // Pre-reduction clamp (see poly_exp): pow_positive(tiny, huge) would
  // otherwise push a runaway reduced argument through the rational.
  const V xc = min(max(x, V::broadcast(-1022.0)), V::broadcast(1024.0));
  V n = round_nearest(xc);
  const V r = xc - n;
  const V rr = r * r;
  const V p = r * polevl(rr, kExp2P);
  // p1evl: leading coefficient of Q is an implicit 1.0.
  const V q = ((rr + V::broadcast(kExp2Q[0])) * rr + V::broadcast(kExp2Q[1])) -
              p;
  const V e = p / q;
  V out = (V::broadcast(1.0) + (e + e)) * exp2i(n);
  out = select_lt(x, V::broadcast(-1022.0), V::broadcast(0.0), out);
  out = select_lt(V::broadcast(1024.0), x + V::broadcast(1.0),
                  V::broadcast(std::numeric_limits<double>::infinity()), out);
  return out;
}

// Cephes log() rational, shared by log2: log(1+f) = f - f^2/2 +
// f^3 P(f)/Q(f) on f in [sqrt(1/2)-1, sqrt(2)-1].
constexpr double kLogP[] = {1.01875663804580931796e-4,
                            4.97494994976747001425e-1,
                            4.70579119878881725854e0,
                            1.44989225341610930846e1,
                            1.79368678507819816313e1,
                            7.70838733755885391666e0};
constexpr double kLogQ[] = {1.12873587189167450590e1,
                            4.52279145837532221105e1,
                            8.29875266912776603211e1,
                            7.11544750618563894466e1,
                            2.31251620126765340583e1};

constexpr double kSqrtHalf = 7.07106781186547524401e-1;
constexpr double kLog2EA = 4.4269504088896340735992e-1;  // log2(e) - 1

/// log2(x) for positive normal x.
template <typename V>
inline V poly_log2(V x) {
  // frexp: x = m * 2^e, m in [0.5, 1); fold m < sqrt(1/2) into the exponent
  // so the reduced argument is centred on 1.
  V e = exponent_part(x);
  V m = mantissa_part(x);
  e = select_lt(m, V::broadcast(kSqrtHalf), e - V::broadcast(1.0), e);
  const V fr = select_lt(m, V::broadcast(kSqrtHalf),
                         (m + m) - V::broadcast(1.0), m - V::broadcast(1.0));
  const V z = fr * fr;
  // p1evl: Q has an implicit leading 1.0.
  V q = fr + V::broadcast(kLogQ[0]);
  for (std::size_t i = 1; i < 5; ++i) {
    q = q * fr + V::broadcast(kLogQ[i]);
  }
  V y = fr * (z * polevl(fr, kLogP) / q);
  y = y - V::broadcast(0.5) * z;
  // Assemble in extended precision: log2(m) = (fr + y) * log2(e)
  //   = y*LOG2EA + fr*LOG2EA + y + fr, summed smallest-first.
  V out = y * V::broadcast(kLog2EA);
  out = out + fr * V::broadcast(kLog2EA);
  out = out + y;
  out = out + fr;
  out = out + e;
  return out;
}

/// x^y for positive normal x (exp2(y * log2(x))). Accuracy degrades with
/// |y*log2(x)| (~0.5 ulp of the product is amplified into the exponent);
/// for this simulator's powers (|y*log2(x)| < 2100) the end-to-end error
/// stays within a few ulp.
template <typename V>
inline V poly_pow_positive(V x, V y) {
  return poly_exp2(y * poly_log2(x));
}

}  // namespace detail

/// e^x. Width 1 uses std::exp (bit-identical to scalar code); wider
/// backends use the polynomial kernel (~1 ulp).
template <typename V>
inline V exp(V x) {
  if constexpr (V::width == 1) {
    return V(std::exp(x.v));
  } else {
    return detail::poly_exp(x);
  }
}

/// 10^x. Width 1 uses std::pow(10.0, x) — the exact expression the scalar
/// engine has always used for dBm -> mW — wider backends the kernel.
template <typename V>
inline V exp10(V x) {
  if constexpr (V::width == 1) {
    return V(std::pow(10.0, x.v));
  } else {
    return detail::poly_exp10(x);
  }
}

/// log2(x), positive normal x only.
template <typename V>
inline V log2(V x) {
  if constexpr (V::width == 1) {
    return V(std::log2(x.v));
  } else {
    return detail::poly_log2(x);
  }
}

/// x^y, positive normal x only.
template <typename V>
inline V pow_positive(V x, V y) {
  if constexpr (V::width == 1) {
    return V(std::pow(x.v, y.v));
  } else {
    return detail::poly_pow_positive(x, y);
  }
}

}  // namespace dimmer::util::simd
