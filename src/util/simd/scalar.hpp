// Scalar backend for the backend-generic SIMD value type (width 1).
//
// simd<double, 1> wraps a single double and implements the full primitive
// API (load/store, arithmetic, max/min, lane selects, exponent/mantissa bit
// extraction) with ordinary scalar operations. Two properties matter:
//
//  1. Every primitive is a single IEEE-754 double operation, so code written
//     against the generic API produces *exactly* the scalar instruction
//     sequence when compiled at width 1 — there is no "vectorized but
//     one-lane" penalty and no reassociation.
//  2. max/min follow std::max/std::min semantics ((a < b) ? b : a), which is
//     what the wider backends reproduce with compare+blend (NOT the bare
//     maxpd/minpd instruction, whose NaN/±0 behaviour differs).
//
// The scalar backend is always compiled, regardless of DIMMER_SIMD, so the
// generic polynomial kernels in math.hpp are unit-testable at width 1 on
// every build.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

namespace dimmer::util::simd {

/// Backend-generic SIMD value type. Specialised per (element type, width);
/// the primary template is intentionally undefined.
template <typename T, int N>
struct simd;

template <>
struct simd<double, 1> {
  static constexpr int width = 1;
  using scalar_type = double;

  double v = 0.0;

  simd() = default;
  explicit simd(double x) : v(x) {}

  static simd load(const double* p) { return simd(*p); }
  void store(double* p) const { *p = v; }
  static simd broadcast(double x) { return simd(x); }
  double lane(int) const { return v; }

  friend simd operator+(simd a, simd b) { return simd(a.v + b.v); }
  friend simd operator-(simd a, simd b) { return simd(a.v - b.v); }
  friend simd operator*(simd a, simd b) { return simd(a.v * b.v); }
  friend simd operator/(simd a, simd b) { return simd(a.v / b.v); }
};

/// std::max semantics: (a < b) ? b : a.
inline simd<double, 1> max(simd<double, 1> a, simd<double, 1> b) {
  return simd<double, 1>((a.v < b.v) ? b.v : a.v);
}

/// std::min semantics: (b < a) ? b : a.
inline simd<double, 1> min(simd<double, 1> a, simd<double, 1> b) {
  return simd<double, 1>((b.v < a.v) ? b.v : a.v);
}

/// Round to nearest, ties to even (the default FP environment; matches the
/// vector backends' _MM_FROUND_TO_NEAREST_INT).
inline simd<double, 1> round_nearest(simd<double, 1> x) {
  return simd<double, 1>(std::nearbyint(x.v));
}

/// Lanewise (a < b) ? x : y.
inline simd<double, 1> select_lt(simd<double, 1> a, simd<double, 1> b,
                                 simd<double, 1> x, simd<double, 1> y) {
  return simd<double, 1>((a.v < b.v) ? x.v : y.v);
}

/// Lanewise (a == b) ? x : y.
inline simd<double, 1> select_eq(simd<double, 1> a, simd<double, 1> b,
                                 simd<double, 1> x, simd<double, 1> y) {
  return simd<double, 1>((a.v == b.v) ? x.v : y.v);
}

/// 2^n for lanes of `n` holding integer values in [-1022, 1024]. n = 1024
/// yields +inf (exponent field saturates), n = -1023 yields 0; callers clamp
/// or select around those edges before scaling.
inline simd<double, 1> exp2i(simd<double, 1> n) {
  const auto e = static_cast<std::int64_t>(n.v);
  const std::uint64_t bits = static_cast<std::uint64_t>(e + 1023) << 52;
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return simd<double, 1>(out);
}

/// frexp-style exponent of a positive *normal* double: x = m * 2^e with
/// m in [0.5, 1). Returned as a double-valued lane.
inline simd<double, 1> exponent_part(simd<double, 1> x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x.v, sizeof(bits));
  return simd<double, 1>(static_cast<double>(
      static_cast<std::int64_t>(bits >> 52) - 1022));
}

/// frexp-style mantissa of a positive normal double, in [0.5, 1).
inline simd<double, 1> mantissa_part(simd<double, 1> x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x.v, sizeof(bits));
  bits = (bits & 0x000FFFFFFFFFFFFFULL) | 0x3FE0000000000000ULL;
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return simd<double, 1>(out);
}

}  // namespace dimmer::util::simd
