// Umbrella header for the backend-generic SIMD layer.
//
// The backend is chosen at configure time with the DIMMER_SIMD CMake option
// (scalar | avx2 | avx512); CMake translates it into the DIMMER_SIMD_AVX2 /
// DIMMER_SIMD_AVX512 compile definitions plus the matching -m flags. This
// header always provides:
//
//   simd<double, N>      the value type (scalar.hpp is always included; the
//                        wider specialisations only when their backend is on)
//   native_width         the widest lane count the build supports (1/4/8)
//   vdouble              simd<double, native_width> — what hot paths use
//   backend_name()       runtime introspection ("scalar"/"avx2"/"avx512"),
//                        reported by benches so artifacts are attributable
//
// Writing kernels against vdouble means the scalar build compiles the exact
// same source into plain scalar double arithmetic — the determinism anchor
// the differential suite and the BENCH byte-identity checks rely on
// (DESIGN.md §12).
#pragma once

#include "util/simd/scalar.hpp"

#if defined(DIMMER_SIMD_AVX512)
#include "util/simd/avx512.hpp"
#elif defined(DIMMER_SIMD_AVX2)
#include "util/simd/avx2.hpp"
#endif

#include "util/simd/math.hpp"

namespace dimmer::util::simd {

#if defined(DIMMER_SIMD_AVX512)
inline constexpr int native_width = 8;
#elif defined(DIMMER_SIMD_AVX2)
inline constexpr int native_width = 4;
#else
inline constexpr int native_width = 1;
#endif

using vdouble = simd<double, native_width>;

/// Name of the configured backend: "scalar", "avx2" or "avx512".
const char* backend_name();

}  // namespace dimmer::util::simd
