#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace dimmer::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DIMMER_REQUIRE(!header_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  DIMMER_REQUIRE(row.size() == header_.size(), "row arity != header arity");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
}

struct CsvWriter::Impl {
  std::ofstream out;
};

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string r = "\"";
  for (char ch : s) {
    if (ch == '"') r += '"';
    r += ch;
  }
  r += '"';
  return r;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : impl_(new Impl), arity_(header.size()) {
  DIMMER_REQUIRE(!header.empty(), "CSV requires at least one column");
  impl_->out.open(path);
  if (!impl_->out) {
    delete impl_;
    throw RequireError("cannot open CSV output: " + path);
  }
  add_row(header);
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::add_row(const std::vector<std::string>& row) {
  DIMMER_REQUIRE(row.size() == arity_, "CSV row arity mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << csv_escape(row[i]);
  }
  impl_->out << '\n';
}

}  // namespace dimmer::util
