// Leveled logging. Off by default above WARN so simulations stay quiet;
// harnesses can raise verbosity with set_log_level().
#pragma once

#include <sstream>
#include <string>

namespace dimmer::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace dimmer::util

#define DIMMER_LOG(level, expr)                                      \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::dimmer::util::log_level())) {             \
      std::ostringstream dimmer_log_os_;                             \
      dimmer_log_os_ << expr;                                        \
      ::dimmer::util::detail::log_line(level, dimmer_log_os_.str()); \
    }                                                                \
  } while (false)

#define DIMMER_DEBUG(expr) DIMMER_LOG(::dimmer::util::LogLevel::kDebug, expr)
#define DIMMER_INFO(expr) DIMMER_LOG(::dimmer::util::LogLevel::kInfo, expr)
#define DIMMER_WARN(expr) DIMMER_LOG(::dimmer::util::LogLevel::kWarn, expr)
#define DIMMER_ERROR(expr) DIMMER_LOG(::dimmer::util::LogLevel::kError, expr)
