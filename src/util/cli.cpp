#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace dimmer::util {

Cli::Cli(int argc, const char* const* argv) {
  DIMMER_REQUIRE(argc >= 1, "argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    DIMMER_REQUIRE(!body.empty(), "bare '--' is not a valid flag");
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";  // boolean flag
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  DIMMER_REQUIRE(end && *end == '\0', "flag --" + key + " is not an integer");
  return v;
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  DIMMER_REQUIRE(end && *end == '\0', "flag --" + key + " is not a number");
  return v;
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw RequireError("flag --" + key + " is not a boolean: " + v);
}

}  // namespace dimmer::util
