// Streaming and batch statistics helpers used by the evaluation harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace dimmer::util {

/// Welford running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    double d = o.mean_ - mean_;
    std::size_t n = n_ + o.n_;
    m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    mean_ += d * static_cast<double>(o.n_) / static_cast<double>(n);
    n_ = n;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Raw Welford second moment (sum of squared deviations). Together with
  /// count/mean/min/max this is the *complete* internal state: the campaign
  /// journal persists these five fields so a replayed trial's stats merge
  /// bit-identically to the stats of the trial that actually ran.
  double m2() const { return m2_; }

  /// Rebuilds a RunningStats from its serialized internal state. n == 0
  /// restores the pristine default (min/max sentinels included); otherwise
  /// every accessor and every later add()/merge() behaves bit-identically to
  /// the original instance. Throws util::RequireError on non-finite state
  /// or negative m2 (a corrupt journal, not a representable history).
  static RunningStats restore(std::size_t n, double mean, double m2,
                              double min, double max) {
    RunningStats s;
    if (n == 0) return s;
    DIMMER_REQUIRE(std::isfinite(mean) && std::isfinite(m2) &&
                       std::isfinite(min) && std::isfinite(max),
                   "RunningStats::restore: non-finite state");
    DIMMER_REQUIRE(m2 >= 0.0 && min <= max,
                   "RunningStats::restore: inconsistent state");
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average; alpha is the weight of new samples.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    DIMMER_REQUIRE(alpha > 0.0 && alpha <= 1.0, "Ewma alpha out of (0,1]");
  }

  void add(double x) {
    value_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seeded_ = true;
  }

  void reset() { seeded_ = false; value_ = 0.0; }
  bool seeded() const { return seeded_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Sliding-window mean over the last `capacity` samples (ring buffer).
class WindowMean {
 public:
  explicit WindowMean(std::size_t capacity) : cap_(capacity) {
    DIMMER_REQUIRE(capacity > 0, "WindowMean capacity must be positive");
    buf_.reserve(capacity);
  }

  void add(double x) {
    if (buf_.size() < cap_) {
      // Copied instances lose the ctor's reserve (vector copies drop spare
      // capacity); re-reserve in full so the window's growth phase costs at
      // most one allocation, not a doubling series — steady-state audits
      // count on add() never touching the heap after the first call.
      if (buf_.capacity() < cap_) buf_.reserve(cap_);
      buf_.push_back(x);
      sum_ += x;
    } else {
      sum_ += x - buf_[head_];
      buf_[head_] = x;
      head_ = (head_ + 1) % cap_;
    }
  }

  std::size_t count() const { return buf_.size(); }
  bool full() const { return buf_.size() == cap_; }
  double mean() const {
    return buf_.empty() ? 0.0 : sum_ / static_cast<double>(buf_.size());
  }
  void reset() {
    buf_.clear();
    head_ = 0;
    sum_ = 0.0;
  }

 private:
  std::size_t cap_;
  std::vector<double> buf_;
  std::size_t head_ = 0;
  double sum_ = 0.0;
};

/// Percentile (linear interpolation) of an unsorted sample; p in [0,100].
/// Selects the two neighbouring order statistics with nth_element instead of
/// sorting the whole sample: O(n) expected instead of O(n log n), with
/// bit-identical results (the same two order statistics feed the same
/// interpolation expression).
inline double percentile(std::vector<double> v, double p) {
  DIMMER_REQUIRE(!v.empty(), "percentile of empty sample");
  DIMMER_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  // NaN comparisons violate nth_element/min_element's strict-weak-ordering
  // precondition (UB that in practice selects garbage order statistics
  // silently), and infinities poison the interpolation below. Reject all
  // non-finite samples loudly instead.
  for (double x : v)
    DIMMER_REQUIRE(std::isfinite(x), "percentile sample must be finite");
  if (v.size() == 1) return v[0];
  double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = idx - static_cast<double>(lo);
  auto lo_it = v.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(v.begin(), lo_it, v.end());
  double v_lo = *lo_it;
  // Everything right of lo_it is >= v_lo, so the (lo+1)-th order statistic
  // is the minimum of that suffix.
  double v_hi = (hi == lo) ? v_lo : *std::min_element(lo_it + 1, v.end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

}  // namespace dimmer::util
