// Crash-safe file replacement: temp file + fsync + atomic rename.
//
// A killed bench must never leave a truncated BENCH_*.json or a half-written
// campaign checkpoint: readers either see the complete old contents or the
// complete new contents, never a prefix. The recipe is the standard POSIX
// one — write everything to `<path>.tmp` in the same directory, fsync the
// file, rename(2) it over the target (atomic within a filesystem), then
// fsync the directory so the rename itself survives a power cut.
//
// AtomicFileWriter exposes the intermediate states so tests can simulate a
// crash between any two steps (write a partial temp file, SIGKILL, assert
// the old artifact is intact).
#pragma once

#include <string>

namespace dimmer::util {

/// Staged writer for one atomic replacement of `path`. Data lands in
/// `path + ".tmp"` until commit(); the destructor discards an uncommitted
/// temp file. Not copyable; one writer per target at a time (the temp name
/// is deterministic so a crashed writer's debris is reclaimed — and a
/// *live* concurrent writer to the same target would be a caller bug).
class AtomicFileWriter {
 public:
  /// Opens (and truncates) the temp file. Throws util::RequireError if it
  /// cannot be created — e.g. the directory does not exist.
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Appends bytes to the temp file. Throws util::CheckError on I/O failure.
  void append(const std::string& data);

  /// fsync + close + rename over the target + best-effort directory fsync.
  /// After commit() the writer is inert. Throws util::CheckError on failure
  /// (the temp file is removed; the old target is left untouched).
  void commit();

  /// The temp path used while staging (exposed for tests).
  const std::string& temp_path() const { return tmp_; }

 private:
  std::string path_;
  std::string tmp_;
  int fd_ = -1;
  bool committed_ = false;
};

/// One-shot helper: atomically replace `path` with `contents`.
void write_file_atomic(const std::string& path, const std::string& contents);

}  // namespace dimmer::util
