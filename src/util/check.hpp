// Assertion and precondition macros used across the Dimmer codebase.
//
// DIMMER_CHECK is an always-on invariant check (never compiled out): simulator
// correctness matters more than the nanoseconds a branch costs. DIMMER_REQUIRE
// is for validating caller-supplied arguments at public API boundaries.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dimmer::util {

/// Thrown when an internal invariant is violated (a bug in this library).
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a caller violates a documented precondition.
class RequireError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'D') throw CheckError(os.str());
  throw RequireError(os.str());
}
}  // namespace detail

}  // namespace dimmer::util

#define DIMMER_CHECK(expr)                                                   \
  do {                                                                       \
    if (!(expr))                                                             \
      ::dimmer::util::detail::check_failed("DIMMER_CHECK", #expr, __FILE__,  \
                                           __LINE__, "");                    \
  } while (false)

#define DIMMER_CHECK_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr))                                                             \
      ::dimmer::util::detail::check_failed("DIMMER_CHECK", #expr, __FILE__,  \
                                           __LINE__, (msg));                 \
  } while (false)

#define DIMMER_REQUIRE(expr, msg)                                            \
  do {                                                                       \
    if (!(expr))                                                             \
      ::dimmer::util::detail::check_failed("REQUIRE", #expr, __FILE__,       \
                                           __LINE__, (msg));                 \
  } while (false)

// Debug-only precondition for *hot* accessors whose arguments have already
// been validated at the enclosing API boundary (e.g. per-link Topology reads
// inside the flood loop, which validates every node id at flood entry).
// Compiled out under NDEBUG; behaves like DIMMER_REQUIRE in debug builds.
#ifdef NDEBUG
#define DIMMER_DEBUG_ASSERT(expr, msg) \
  do {                                 \
    (void)sizeof(expr);                \
  } while (false)
#else
#define DIMMER_DEBUG_ASSERT(expr, msg) DIMMER_REQUIRE(expr, msg)
#endif
