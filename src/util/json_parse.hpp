// Minimal deterministic JSON parser — the read half of util/json.hpp.
//
// The campaign engine (src/exp/campaign) persists its state as JSON: the
// checkpoint manifest (serialized TrialSpecs, including fault plans) and the
// per-shard JSONL journals (one TrialResult per line). Resuming a killed
// sweep means parsing those files back *exactly*: every double must
// round-trip the "%.17g" emission bit-for-bit and every uint64 (seeds,
// counters) must survive without passing through a double. To guarantee
// that, numbers keep their raw lexeme and are converted on access
// (strtod / strtoull), never eagerly narrowed.
//
// Scope: RFC 8259 minus floating-point NaN/Inf (JSON has neither; the
// emitter writes them as null). Parse errors throw JsonParseError carrying
// 1-based line/column so a corrupt checkpoint names its own defect.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dimmer::util::json {

/// Parse failure: `what()` includes "line L, column C".
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& msg, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// One parsed JSON value. Object members are kept in *document order*
/// (every serializer in this repo emits std::map order, i.e. sorted keys,
/// so parse -> re-emit through the same emitters is byte-stable).
/// Duplicate keys are a parse error: the files we read never contain them,
/// so accepting one silently would hide corruption.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Members = std::vector<std::pair<std::string, Value>>;

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw util::RequireError on kind mismatch (a schema
  /// violation in the file being read, not a bug in the parser).
  bool as_bool() const;
  /// strtod of the raw lexeme: exact for everything "%.17g" can emit.
  double as_double() const;
  /// Integer lexeme in [0, 2^64); throws on sign, fraction, or exponent.
  std::uint64_t as_u64() const;
  /// Integer lexeme in [INT64_MIN, INT64_MAX].
  std::int64_t as_i64() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const Members& as_object() const;

  /// Object member lookup: `find` returns nullptr when absent, `at` throws.
  const Value* find(const std::string& key) const;
  const Value& at(const std::string& key) const;

  /// The raw number lexeme (e.g. "0.10000000000000001"); numbers only.
  const std::string& number_lexeme() const;

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< string value or number lexeme
  std::vector<Value> array_;
  Members members_;  ///< object members, document order
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
Value parse(const std::string& text);

}  // namespace dimmer::util::json
