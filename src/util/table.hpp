// Console table / series printers used by the benchmark harnesses to emit
// paper-style rows ("Fig. 5a: reliability vs interference level", ...).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dimmer::util {

/// A simple aligned text table. Add a header, then rows; print() pads columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  /// Render with column alignment to the stream.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes rows as CSV (for plotting the reproduced figures).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header line. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void add_row(const std::vector<std::string>& row);

 private:
  struct Impl;
  Impl* impl_;
  std::size_t arity_;
};

}  // namespace dimmer::util
