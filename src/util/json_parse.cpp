#include "util/json_parse.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace dimmer::util::json {

namespace {
std::string locate(const std::string& msg, int line, int column) {
  std::ostringstream os;
  os << "JSON parse error: " << msg << " (line " << line << ", column "
     << column << ")";
  return os.str();
}
}  // namespace

JsonParseError::JsonParseError(const std::string& msg, int line, int column)
    : std::runtime_error(locate(msg, line, column)),
      line_(line),
      column_(column) {}

bool Value::as_bool() const {
  DIMMER_REQUIRE(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double Value::as_double() const {
  DIMMER_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  // The lexeme was validated by the parser; strtod of a "%.17g" rendering
  // reproduces the original double bit-for-bit (round-trip guarantee).
  return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t Value::as_u64() const {
  DIMMER_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  DIMMER_REQUIRE(scalar_.find_first_of(".eE-") == std::string::npos,
                 "JSON number is not a non-negative integer");
  errno = 0;
  char* end = nullptr;
  std::uint64_t v = std::strtoull(scalar_.c_str(), &end, 10);
  DIMMER_REQUIRE(end == scalar_.c_str() + scalar_.size() && errno != ERANGE,
                 "JSON number does not fit in uint64");
  return v;
}

std::int64_t Value::as_i64() const {
  DIMMER_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  DIMMER_REQUIRE(scalar_.find_first_of(".eE") == std::string::npos,
                 "JSON number is not an integer");
  errno = 0;
  char* end = nullptr;
  std::int64_t v = std::strtoll(scalar_.c_str(), &end, 10);
  DIMMER_REQUIRE(end == scalar_.c_str() + scalar_.size() && errno != ERANGE,
                 "JSON number does not fit in int64");
  return v;
}

const std::string& Value::as_string() const {
  DIMMER_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return scalar_;
}

const std::vector<Value>& Value::as_array() const {
  DIMMER_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  return array_;
}

const Value::Members& Value::as_object() const {
  DIMMER_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

const Value* Value::find(const std::string& key) const {
  DIMMER_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  DIMMER_REQUIRE(v != nullptr, "missing JSON object key: " + key);
  return *v;
}

const std::string& Value::number_lexeme() const {
  DIMMER_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return scalar_;
}

// ---------------------------------------------------------------------------
// Recursive-descent parser.
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  // Nesting depth cap: a recursive parser over attacker-shaped (or merely
  // corrupt) input must not turn a deep bracket run into a stack overflow.
  static constexpr int kMaxDepth = 96;

  [[noreturn]] void fail(const std::string& msg) const {
    int line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonParseError(msg, line, col);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p; ++p)
      if (pos_ >= text_.size() || text_[pos_++] != *p)
        fail(std::string("invalid literal (expected `") + lit + "`)");
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case 'n': {
        expect_literal("null");
        return Value();
      }
      case 't': {
        expect_literal("true");
        Value v;
        v.kind_ = Value::Kind::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        expect_literal("false");
        Value v;
        v.kind_ = Value::Kind::kBool;
        v.bool_ = false;
        return v;
      }
      case '"': {
        Value v;
        v.kind_ = Value::Kind::kString;
        v.scalar_ = parse_string();
        return v;
      }
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    if (take() != '"') fail("expected string");
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape");
          }
          // Our emitter only writes \u00XX for control bytes; decode the
          // BMP code point as UTF-8 so arbitrary valid JSON still parses.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      fail("invalid value");
    // Leading zero rule: "0" may not be followed by another digit.
    if (peek() == '0') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())))
        fail("leading zero in number");
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("digit expected after decimal point");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("digit expected in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.scalar_ = text_.substr(start, pos_ - start);
    return v;
  }

  Value parse_array(int depth) {
    take();  // '['
    Value v;
    v.kind_ = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.array_.push_back(parse_value(depth + 1));
      skip_ws();
      char c = take();
      if (c == ']') return v;
      if (c != ',') fail("expected `,` or `]` in array");
    }
  }

  Value parse_object(int depth) {
    take();  // '{'
    Value v;
    v.kind_ = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected string key in object");
      std::string key = parse_string();
      for (const auto& [k, existing] : v.members_) {
        (void)existing;
        if (k == key) fail("duplicate object key: " + key);
      }
      skip_ws();
      if (take() != ':') fail("expected `:` after object key");
      skip_ws();
      v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      char c = take();
      if (c == '}') return v;
      if (c != ',') fail("expected `,` or `}` in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Value parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace dimmer::util::json
