// Deterministic random number generation.
//
// Every stochastic component in the simulator draws from an explicitly seeded
// Pcg32 stream. We also provide a *counter-based* pure hash (hash_u64 /
// pure_uniform) so that time-indexed processes (e.g. "is an ambient
// interference burst active at tick T?") can be evaluated as pure functions of
// (seed, counter) without mutable generator state.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace dimmer::util {

/// SplitMix64 step; used for seeding and as a counter-based hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mix an arbitrary number of 64-bit values into one hash (for sub-streams).
constexpr std::uint64_t hash_u64(std::uint64_t a) { return splitmix64(a); }
constexpr std::uint64_t hash_u64(std::uint64_t a, std::uint64_t b) {
  return splitmix64(splitmix64(a) ^ (b + 0x9e3779b97f4a7c15ULL));
}
constexpr std::uint64_t hash_u64(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c) {
  return hash_u64(hash_u64(a, b), c);
}

/// Uniform double in [0,1) as a pure function of a hash input.
inline double pure_uniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// PCG32: small, fast, statistically solid generator (O'Neill 2014).
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += splitmix64(seed);
    next_u32();
  }

  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform double in [0,1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo,hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0,n) without modulo bias (Lemire's method).
  std::uint32_t uniform_below(std::uint32_t n) {
    DIMMER_REQUIRE(n > 0, "uniform_below(0)");
    std::uint64_t m = std::uint64_t{next_u32()} * n;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < n) {
      std::uint32_t t = (0u - n) % n;
      while (lo < t) {
        m = std::uint64_t{next_u32()} * n;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform integer in [lo,hi] inclusive. The span arithmetic is 64-bit:
  /// `hi - lo + 1` evaluated in int is signed-overflow UB once the range
  /// spans more than INT_MAX values (e.g. uniform_int(INT_MIN, INT_MAX)).
  /// Every in-range call draws identically to the historical expression;
  /// the one span uniform_below can't represent — the full 2^32 range —
  /// consumes exactly one next_u32, the same as any non-rejected Lemire
  /// draw, so stream positions stay aligned.
  int uniform_int(int lo, int hi) {
    DIMMER_REQUIRE(lo <= hi, "uniform_int: lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) -
                                   static_cast<std::int64_t>(lo)) +
        1;
    const std::uint64_t offset =
        span > 0xffffffffULL
            ? next_u32()  // full 32-bit span: every u32 is already uniform
            : uniform_below(static_cast<std::uint32_t>(span));
    return static_cast<int>(static_cast<std::int64_t>(lo) +
                            static_cast<std::int64_t>(offset));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    s = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * s;
    have_spare_ = true;
    return u * s;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_below(static_cast<std::uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-component sub-streams).
  Pcg32 fork(std::uint64_t tag) {
    return Pcg32(hash_u64(next_u64(), tag), hash_u64(tag, 0x5bf0'3635ULL));
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace dimmer::util
