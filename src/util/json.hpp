// Minimal deterministic JSON emission helpers, shared by the bench metrics
// writer (exp/json) and the observability layer (obs).
//
// json_number prints doubles with "%.17g": round-trip exact and
// locale-independent for the characters it emits, so any serialization built
// from these helpers is byte-deterministic across runs and machines.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace dimmer::util {

/// "%.17g" rendering of a double; NaN/inf become "null" (JSON has neither).
inline std::string json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Quote and escape a string per RFC 8259.
inline std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace dimmer::util
