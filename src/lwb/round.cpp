#include "lwb/round.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dimmer::lwb {

RoundExecutor::RoundExecutor(const phy::Topology& topo,
                             const phy::InterferenceField& interference,
                             RoundConfig cfg)
    : topo_(&topo), cfg_(std::move(cfg)), engine_(topo, interference) {
  DIMMER_REQUIRE(phy::is_valid_channel(cfg_.control_channel),
                 "invalid control channel");
  for (phy::Channel c : cfg_.hop_sequence)
    DIMMER_REQUIRE(phy::is_valid_channel(c), "invalid hopping channel");
  DIMMER_REQUIRE(cfg_.max_sync_age >= 0, "max_sync_age must be >= 0");
  ws_.reserve(topo.size());
}

RoundExecutor::RoundExecutor(phy::LinkModel& links,
                             const phy::InterferenceField& interference,
                             RoundConfig cfg)
    : topo_(&links.topology()),
      cfg_(std::move(cfg)),
      engine_(links, interference) {
  DIMMER_REQUIRE(phy::is_valid_channel(cfg_.control_channel),
                 "invalid control channel");
  for (phy::Channel c : cfg_.hop_sequence)
    DIMMER_REQUIRE(phy::is_valid_channel(c), "invalid hopping channel");
  DIMMER_REQUIRE(cfg_.max_sync_age >= 0, "max_sync_age must be >= 0");
  ws_.reserve(topo_->size());
}

phy::Channel RoundExecutor::data_channel(std::uint64_t round_index,
                                         std::size_t slot_index) const {
  if (cfg_.hop_sequence.empty()) return cfg_.control_channel;
  return cfg_.hop_sequence[(round_index + slot_index) %
                           cfg_.hop_sequence.size()];
}

sim::TimeUs RoundExecutor::round_duration(std::size_t n_data_slots) const {
  auto slots = static_cast<sim::TimeUs>(n_data_slots + 1);
  return slots * cfg_.slot_len_us +
         static_cast<sim::TimeUs>(n_data_slots) * cfg_.slot_gap_us;
}

RoundResult RoundExecutor::run_round(sim::TimeUs start,
                                     std::uint64_t round_index,
                                     phy::NodeId coordinator,
                                     const std::vector<phy::NodeId>& data_sources,
                                     int next_n_tx,
                                     std::vector<NodeState>& states,
                                     util::Pcg32& rng,
                                     const RoundDisruptions* disruptions) const {
  RoundResult result;
  run_round_into(start, round_index, coordinator, data_sources, next_n_tx,
                 states, rng, disruptions, result);
  return result;
}

// All result buffers are assign()ed into recycled capacity (see the comment
// at the assigns); a reused RoundResult runs the round allocation-free.
// dimmer-lint: pure(may-allocate)
void RoundExecutor::run_round_into(sim::TimeUs start,
                                   std::uint64_t round_index,
                                   phy::NodeId coordinator,
                                   const std::vector<phy::NodeId>& data_sources,
                                   int next_n_tx,
                                   std::vector<NodeState>& states,
                                   util::Pcg32& rng,
                                   const RoundDisruptions* disruptions,
                                   RoundResult& result) const {
  const int n = topo_->size();
  DIMMER_REQUIRE(coordinator >= 0 && coordinator < n,
                 "coordinator out of range");
  DIMMER_REQUIRE(static_cast<int>(states.size()) == n,
                 "one NodeState per node required");
  DIMMER_REQUIRE(next_n_tx >= 0, "negative n_tx");
  DIMMER_REQUIRE(disruptions == nullptr || disruptions->deaf.empty() ||
                     static_cast<int>(disruptions->deaf.size()) == n,
                 "one deaf flag per node required");
  for (phy::NodeId s : data_sources)
    DIMMER_REQUIRE(s >= 0 && s < n, "data source out of range");

  const bool corrupted = disruptions != nullptr && disruptions->control_corrupted;
  auto deaf = [&](phy::NodeId i) {
    return disruptions != nullptr && disruptions->deaf_node(i);
  };
  // A failed coordinator makes this an *orphaned* round: no schedule flood.
  const bool coordinator_alive =
      !states[static_cast<std::size_t>(coordinator)].failed;

  // All result buffers are assign()ed, not reconstructed: with a reused
  // RoundResult the existing capacity (including each slot's FloodResult)
  // is recycled and the round runs allocation-free.
  result.radio_on_us.assign(static_cast<std::size_t>(n), 0);
  result.control_radio_on_us.assign(static_cast<std::size_t>(n), 0);
  result.awake_slots.assign(static_cast<std::size_t>(n), 0);
  result.got_control.assign(static_cast<std::size_t>(n), false);
  result.duration_us = round_duration(data_sources.size());
  // Size result.data without destroying warmed slots: a plain resize() would
  // free each trailing slot's FloodResult buffers whenever the slot count
  // dips (federated rounds see it vary with bridged traffic) and reallocate
  // them on the next growth. Excess slots park in slot_pool_ instead and
  // come back, capacity intact, when the count rises again.
  while (result.data.size() > data_sources.size()) {
    slot_pool_.push_back(std::move(result.data.back()));
    result.data.pop_back();
  }
  while (result.data.size() < data_sources.size()) {
    if (!slot_pool_.empty()) {
      result.data.push_back(std::move(slot_pool_.back()));
      slot_pool_.pop_back();
    } else {
      result.data.emplace_back();
    }
  }

  // dimmer-lint: hot-path begin — per-round flood execution; all buffers
  // recycle capacity assigned above, so steady-state rounds allocate nothing
  // (audited by tests/flood/test_workspace.cpp's 20-round operator-new count).
  // --- Control slot: everyone listens (desynced nodes are trying to
  // re-bootstrap on the control channel anyway).
  if (coordinator_alive) {
    flood::FloodParams params;
    params.channel = cfg_.control_channel;
    params.slot_start_us = start;
    params.slot_len_us = cfg_.slot_len_us;
    params.payload_bytes = cfg_.payload_bytes;
    params.tx_power_dbm = cfg_.tx_power_dbm;
    params.coherence_gain = cfg_.coherence_gain;
    params.trace_round = round_index;

    // NOLINTNEXTLINE-DIMMER(hot-no-alloc): assign() recycles capacity
    slot_cfgs_.assign(static_cast<std::size_t>(n), flood::NodeFloodConfig{});
    for (int i = 0; i < n; ++i) {
      auto& c = slot_cfgs_[static_cast<std::size_t>(i)];
      // Desynchronized nodes cannot relay (they have no slot alignment);
      // they listen only. Passive receivers do not relay either.
      bool synced = states[static_cast<std::size_t>(i)].sync_age <=
                    cfg_.max_sync_age;
      bool relay = synced && (states[static_cast<std::size_t>(i)].forwarder ||
                              i == coordinator);
      c.n_tx = relay ? states[static_cast<std::size_t>(i)].n_tx : 0;
      // Deaf nodes cannot receive, hence cannot relay either; the initiator
      // still transmits regardless (a blackout blinds receivers, not TX).
      c.participates = !states[static_cast<std::size_t>(i)].failed &&
                       (!deaf(i) || i == coordinator);
    }
    engine_.run_into(coordinator, slot_cfgs_, params, rng, ws_,
                     result.control);

    for (int i = 0; i < n; ++i) {
      auto& s = states[static_cast<std::size_t>(i)];
      if (s.failed) {
        s.sync_age += 1;  // a crashed node silently falls out of sync
        continue;
      }
      // The coordinator always has its own, locally-generated schedule; a
      // corrupt control packet is useless to everyone else even if the
      // flood physically delivered it.
      bool got = i == coordinator ||
                 (!corrupted && !deaf(i) &&
                  result.control.nodes[static_cast<std::size_t>(i)].received);
      result.got_control[static_cast<std::size_t>(i)] = got;
      if (got) {
        s.sync_age = 0;
        s.n_tx = next_n_tx;  // applied immediately after the control slot
      } else {
        s.sync_age += 1;
      }
      sim::TimeUs ctl =
          deaf(i) && i != coordinator
              ? cfg_.slot_len_us  // blind scanning, full slot
              : result.control.nodes[static_cast<std::size_t>(i)].radio_on_us;
      result.radio_on_us[static_cast<std::size_t>(i)] += ctl;
      result.control_radio_on_us[static_cast<std::size_t>(i)] = ctl;
      result.awake_slots[static_cast<std::size_t>(i)] += 1;
    }
  } else {
    // Orphaned round: the schedule flood never starts. Every alive node
    // listens the full control slot in vain and its sync age advances.
    result.control.make_silent(n, coordinator);
    for (int i = 0; i < n; ++i) {
      auto& s = states[static_cast<std::size_t>(i)];
      s.sync_age += 1;
      if (s.failed) continue;
      result.radio_on_us[static_cast<std::size_t>(i)] += cfg_.slot_len_us;
      result.control_radio_on_us[static_cast<std::size_t>(i)] =
          cfg_.slot_len_us;
      result.awake_slots[static_cast<std::size_t>(i)] += 1;
    }
  }

  // --- Data slots.
  sim::TimeUs slot_start = start + cfg_.slot_len_us + cfg_.slot_gap_us;
  for (std::size_t k = 0; k < data_sources.size(); ++k) {
    DataSlotOutcome& out = result.data[k];
    out.source = data_sources[k];
    out.channel = data_channel(round_index, k);

    auto synced = [&](phy::NodeId i) {
      const auto& st = states[static_cast<std::size_t>(i)];
      return !st.failed && st.sync_age <= cfg_.max_sync_age;
    };
    out.source_synced = synced(out.source);

    if (out.source_synced) {
      flood::FloodParams params;
      params.channel = out.channel;
      params.slot_start_us = slot_start;
      params.slot_len_us = cfg_.slot_len_us;
      params.payload_bytes = cfg_.payload_bytes;
      params.tx_power_dbm = cfg_.tx_power_dbm;
      params.coherence_gain = cfg_.coherence_gain;
      params.trace_round = round_index;

      // NOLINTNEXTLINE-DIMMER(hot-no-alloc): assign() recycles capacity
    slot_cfgs_.assign(static_cast<std::size_t>(n), flood::NodeFloodConfig{});
      for (int i = 0; i < n; ++i) {
        auto& c = slot_cfgs_[static_cast<std::size_t>(i)];
        const auto& s = states[static_cast<std::size_t>(i)];
        // A deaf node cannot receive (or relay), but a deaf *source* still
        // initiates its own slot — blackouts blind receivers, not TX.
        c.participates = synced(i) && (!deaf(i) || i == out.source);
        // Passive receivers keep n_tx = 0 except in their own slot (the
        // flood engine forces the initiator to transmit).
        c.n_tx = (s.forwarder || i == coordinator) ? s.n_tx : 0;
      }
      engine_.run_into(out.source, slot_cfgs_, params, rng, ws_, out.flood);

      for (int i = 0; i < n; ++i) {
        if (!synced(i)) continue;
        result.radio_on_us[static_cast<std::size_t>(i)] +=
            deaf(i) && i != out.source
                ? cfg_.slot_len_us  // deaf listener scans the whole slot
                : out.flood.nodes[static_cast<std::size_t>(i)].radio_on_us;
        result.awake_slots[static_cast<std::size_t>(i)] += 1;
      }
    } else {
      // Silent slot: the flood never runs — reset any reused buffer to the
      // documented "empty flood" state. Synced nodes still listen the full
      // slot for a packet that never comes (pessimistic accounting).
      out.flood.nodes.clear();
      out.flood.participated.clear();
      out.flood.steps_simulated = 0;
      out.flood.initiator = -1;
      for (int i = 0; i < n; ++i) {
        if (!synced(i)) continue;
        result.radio_on_us[static_cast<std::size_t>(i)] += cfg_.slot_len_us;
        result.awake_slots[static_cast<std::size_t>(i)] += 1;
      }
    }

    // Desynchronized nodes burn bootstrap-listening energy equivalent to the
    // slot length while scanning for a schedule. Crashed nodes are off.
    for (int i = 0; i < n; ++i) {
      const auto& st = states[static_cast<std::size_t>(i)];
      if (!st.failed && st.sync_age > cfg_.max_sync_age) {
        result.radio_on_us[static_cast<std::size_t>(i)] += cfg_.slot_len_us;
        result.awake_slots[static_cast<std::size_t>(i)] += 1;
      }
    }

    slot_start += cfg_.slot_len_us + cfg_.slot_gap_us;
  }
  // dimmer-lint: hot-path end

  if (instr_.active()) {
    int control_rx = 0, desynced = 0, silent = 0;
    for (int i = 0; i < n; ++i) {
      if (result.got_control[static_cast<std::size_t>(i)]) ++control_rx;
      const auto& st = states[static_cast<std::size_t>(i)];
      if (!st.failed && st.sync_age > cfg_.max_sync_age) ++desynced;
    }
    for (const auto& d : result.data)
      if (!d.source_synced) ++silent;
    if (instr_.metrics) {
      obs::MetricsRegistry& m = *instr_.metrics;
      m.counter("lwb.rounds") += 1;
      m.counter("lwb.data_slots") += result.data.size();
      m.counter("lwb.silent_slots") += static_cast<std::uint64_t>(silent);
      m.counter("lwb.control_receptions") +=
          static_cast<std::uint64_t>(control_rx);
      m.counter("lwb.desynced_node_rounds") +=
          static_cast<std::uint64_t>(desynced);
    }
    if (instr_.trace) {
      obs::TraceEvent e;
      e.kind = "lwb_round";
      e.round = round_index;
      e.t_us = start;
      e.node = coordinator;
      e.f("data_slots", static_cast<double>(result.data.size()))
          .f("silent_slots", silent)
          .f("control_receptions", control_rx)
          .f("desynced_nodes", desynced)
          .f("n_tx", next_n_tx)
          .f("duration_us", static_cast<double>(result.duration_us));
      instr_.trace->emit(e);
    }
  }
}

}  // namespace dimmer::lwb
