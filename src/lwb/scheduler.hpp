// Centralized LWB stream scheduler.
//
// LWB's host "computes a schedule that satisfies flows requested by
// (message-)source nodes and controls the periodicity of communication"
// (§II-B). This scheduler implements that substrate: sources register
// streams with an inter-packet interval (IPI); each round the host
// allocates data slots to the streams that are due, oldest-deadline first,
// under a per-round slot budget, carrying over anything that did not fit.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "phy/topology.hpp"
#include "sim/time.hpp"

namespace dimmer::lwb {

class Scheduler {
 public:
  struct Stream {
    phy::NodeId source = -1;
    sim::TimeUs ipi = 0;       ///< inter-packet interval
    sim::TimeUs next_due = 0;  ///< next time a slot is owed
  };

  /// Registers a periodic stream; the first slot is due at `now + ipi`.
  /// A source may hold several streams. Returns a stream id.
  std::size_t add_stream(phy::NodeId source, sim::TimeUs ipi, sim::TimeUs now);

  /// Removes a stream by id; ids of other streams remain valid.
  void remove_stream(std::size_t stream_id);

  std::size_t stream_count() const;
  const Stream& stream(std::size_t stream_id) const;

  /// Allocates data slots for the round starting at `now`: every stream
  /// whose deadline has passed gets a slot, earliest deadline first, up to
  /// `max_slots`; allocated streams advance their deadline by their IPI
  /// (missed intervals accumulate, so backlog drains on later rounds).
  std::vector<phy::NodeId> schedule_round(sim::TimeUs now,
                                          std::size_t max_slots);

  /// Hot-path variant: identical semantics to schedule_round, but writes the
  /// allocated slots into a caller-owned vector (overwritten) and reuses
  /// internal scratch — steady-state scheduling performs no heap
  /// allocations once capacities have warmed up (the federated round loop
  /// runs one of these per cell per epoch).
  void schedule_round_into(sim::TimeUs now, std::size_t max_slots,
                           std::vector<phy::NodeId>& slots);

  /// Earliest pending deadline (or -1 with no streams) — lets a host stretch
  /// the round period when nothing is due, LWB's energy lever.
  sim::TimeUs next_deadline() const;

  /// Caps how many owed-but-unserved intervals a stream may accumulate.
  /// During long outages (coordinator failover, blackouts) streams keep
  /// falling due; without a cap the backlog grows without bound and the
  /// network spends its first post-recovery rounds draining stale slots.
  /// When a stream is more than `cap` intervals behind at schedule time, the
  /// oldest overdue intervals are dropped (counted in backlog_dropped()).
  /// 0 disables the cap. Default: 64.
  void set_max_backlog(std::uint64_t cap) { max_backlog_ = cap; }
  std::uint64_t max_backlog() const { return max_backlog_; }
  /// Total overdue intervals dropped by the backlog cap since construction.
  std::uint64_t backlog_dropped() const { return backlog_dropped_; }

  /// Optional observability hooks (a "schedule" event per schedule_round).
  void set_instrumentation(obs::Instrumentation instr) { instr_ = instr; }

 private:
  std::vector<Stream> streams_;
  std::vector<bool> live_;
  std::vector<std::size_t> due_scratch_;  // reused by schedule_round_into
  obs::Instrumentation instr_;
  std::uint64_t schedule_calls_ = 0;
  std::uint64_t max_backlog_ = 64;
  std::uint64_t backlog_dropped_ = 0;
};

}  // namespace dimmer::lwb
