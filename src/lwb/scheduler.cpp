#include "lwb/scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dimmer::lwb {

std::size_t Scheduler::add_stream(phy::NodeId source, sim::TimeUs ipi,
                                  sim::TimeUs now) {
  DIMMER_REQUIRE(source >= 0, "invalid source");
  DIMMER_REQUIRE(ipi > 0, "IPI must be positive");
  streams_.push_back(Stream{source, ipi, now + ipi});
  live_.push_back(true);
  return streams_.size() - 1;
}

void Scheduler::remove_stream(std::size_t stream_id) {
  DIMMER_REQUIRE(stream_id < streams_.size() && live_[stream_id],
                 "unknown stream id");
  live_[stream_id] = false;
}

std::size_t Scheduler::stream_count() const {
  return static_cast<std::size_t>(
      std::count(live_.begin(), live_.end(), true));
}

const Scheduler::Stream& Scheduler::stream(std::size_t stream_id) const {
  DIMMER_REQUIRE(stream_id < streams_.size() && live_[stream_id],
                 "unknown stream id");
  return streams_[stream_id];
}

std::vector<phy::NodeId> Scheduler::schedule_round(sim::TimeUs now,
                                                   std::size_t max_slots) {
  std::vector<phy::NodeId> slots;
  schedule_round_into(now, max_slots, slots);
  return slots;
}

void Scheduler::schedule_round_into(sim::TimeUs now, std::size_t max_slots,
                                    std::vector<phy::NodeId>& slots) {
  DIMMER_REQUIRE(max_slots > 0, "max_slots must be positive");

  // Clamp runaway backlogs before collecting due streams: a stream more than
  // max_backlog_ intervals behind forfeits its oldest overdue intervals.
  std::uint64_t dropped_now = 0;
  if (max_backlog_ > 0) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (!live_[i] || streams_[i].next_due > now) continue;
      auto behind = static_cast<std::uint64_t>(
                        (now - streams_[i].next_due) / streams_[i].ipi) +
                    1;
      if (behind > max_backlog_) {
        std::uint64_t drop = behind - max_backlog_;
        streams_[i].next_due +=
            static_cast<sim::TimeUs>(drop) * streams_[i].ipi;
        dropped_now += drop;
      }
    }
    backlog_dropped_ += dropped_now;
  }

  // Due streams, earliest deadline first; stable on stream id. Scratch
  // reuses capacity across rounds (see schedule_round_into's contract).
  std::vector<std::size_t>& due = due_scratch_;
  due.clear();
  for (std::size_t i = 0; i < streams_.size(); ++i)
    if (live_[i] && streams_[i].next_due <= now) due.push_back(i);
  std::sort(due.begin(), due.end(), [&](std::size_t a, std::size_t b) {
    return streams_[a].next_due != streams_[b].next_due
               ? streams_[a].next_due < streams_[b].next_due
               : a < b;
  });

  slots.clear();
  for (std::size_t i : due) {
    if (slots.size() >= max_slots) break;  // carry over to the next round
    slots.push_back(streams_[i].source);
    streams_[i].next_due += streams_[i].ipi;
  }

  ++schedule_calls_;
  if (instr_.metrics) {
    obs::MetricsRegistry& m = *instr_.metrics;
    m.counter("scheduler.calls") += 1;
    m.counter("scheduler.slots_allocated") += slots.size();
    m.counter("scheduler.slots_carried_over") += due.size() - slots.size();
    m.counter("scheduler.backlog_dropped") += dropped_now;
  }
  if (instr_.trace) {
    obs::TraceEvent e;
    e.kind = "schedule";
    e.round = schedule_calls_ - 1;
    e.t_us = now;
    e.f("due_streams", static_cast<double>(due.size()))
        .f("allocated", static_cast<double>(slots.size()))
        .f("carried_over", static_cast<double>(due.size() - slots.size()))
        .f("live_streams", static_cast<double>(stream_count()));
    instr_.trace->emit(e);
  }
}

sim::TimeUs Scheduler::next_deadline() const {
  sim::TimeUs best = -1;
  for (std::size_t i = 0; i < streams_.size(); ++i)
    if (live_[i] && (best < 0 || streams_[i].next_due < best))
      best = streams_[i].next_due;
  return best;
}

}  // namespace dimmer::lwb
