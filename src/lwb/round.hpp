// LWB round structure on top of Glossy floods.
//
// A round starts with a control slot (the coordinator floods the schedule and
// — in Dimmer — the adaptivity command), followed by one data slot per
// scheduled source. The RoundExecutor runs the floods, maintains each node's
// synchronization state, and reports per-slot outcomes that the protocol
// layers (Dimmer, static LWB, the PID baseline, Crystal) consume.
//
// Synchronization model: every node listens to every control slot. A node
// that received the schedule recently (sync_age <= max_sync_age) participates
// in data slots using its cached schedule; beyond that it is desynchronized —
// it skips data slots, its own sourced slots stay silent, and it burns
// bootstrap-listening energy until it hears a schedule again (this is the
// mechanism behind LWB's reliability/energy collapse under heavy channel-26
// jamming in the paper's Fig. 7).
#pragma once

#include <cstdint>
#include <vector>

#include "flood/glossy.hpp"
#include "phy/channels.hpp"
#include "phy/interference.hpp"
#include "phy/topology.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace dimmer::lwb {

/// Static round-level configuration (paper §V-A "Parameters").
struct RoundConfig {
  sim::TimeUs slot_len_us = sim::ms(20);   ///< max slot duration
  sim::TimeUs slot_gap_us = sim::ms(2);    ///< inter-slot processing gap
  int payload_bytes = 30;                  ///< incl. 3 B LWB + 2 B Dimmer hdr
  double tx_power_dbm = 0.0;
  phy::Channel control_channel = phy::kControlChannel;
  /// Data-slot hopping sequence; empty = single-channel operation.
  std::vector<phy::Channel> hop_sequence;
  /// Rounds a node may coast on a cached schedule before desynchronizing.
  int max_sync_age = 2;
  double coherence_gain = 0.5;
};

/// Mutable per-node protocol state the executor updates every round.
struct NodeState {
  int n_tx = 3;            ///< retransmission parameter in effect
  bool forwarder = true;   ///< false = passive receiver (Dimmer MAB role)
  int sync_age = 0;        ///< rounds since last schedule reception
  /// Crash-fault injection: a failed node's radio is off — it neither
  /// receives nor relays nor sources, and costs no energy.
  bool failed = false;
};

/// Outcome of one data slot.
struct DataSlotOutcome {
  phy::NodeId source = -1;
  phy::Channel channel = 0;
  bool source_synced = false;  ///< silent slot if the source was desynced
  flood::FloodResult flood;    ///< empty flood if !source_synced
};

/// Transient, externally-injected disruptions for one round (fed by the
/// fault layer; see src/fault). Passing nullptr / a default-constructed
/// value leaves the executor's behaviour bit-identical to the undisrupted
/// path — the zero-perturbation guarantee the fault tests assert.
struct RoundDisruptions {
  /// The schedule packet is corrupt: the control flood runs and costs the
  /// usual energy, but no node can use its contents — nobody resyncs and
  /// the new N_TX command is not applied (the coordinator itself keeps its
  /// locally-generated schedule).
  bool control_corrupted = false;
  /// Per-node reception blackout. A deaf node cannot receive (and therefore
  /// cannot relay) in any slot of this round; it burns full listening
  /// energy while scanning. Empty = nobody is deaf.
  std::vector<bool> deaf;

  bool deaf_node(phy::NodeId i) const {
    return !deaf.empty() && deaf[static_cast<std::size_t>(i)];
  }
};

/// Outcome of one full round. [[nodiscard]] so a computed round can never be
/// dropped on the floor unnoticed (dimmer-lint: nodiscard-result).
struct [[nodiscard]] RoundResult {
  flood::FloodResult control;
  std::vector<DataSlotOutcome> data;
  /// Per node: total radio-on time this round and slots it was awake for
  /// (for the paper's "radio-on time averaged over all slots" metric).
  std::vector<sim::TimeUs> radio_on_us;
  /// Per node: the control slot's share of radio_on_us. Unlike
  /// control.nodes[i].radio_on_us this covers disrupted paths too (orphaned
  /// rounds, deaf listeners), so stats collectors charge the right energy.
  std::vector<sim::TimeUs> control_radio_on_us;
  std::vector<int> awake_slots;
  /// Nodes that received this round's control flood (schedule + command).
  std::vector<bool> got_control;
  sim::TimeUs duration_us = 0;
};

/// Executes LWB rounds over a persistent flood engine.
///
/// The executor owns the engine (and through it the cached mW link matrix)
/// plus a FloodWorkspace and per-slot config scratch, so steady-state rounds
/// perform no per-flood heap allocations; see DESIGN.md §10. One executor
/// serves one simulation thread — run_round reuses internal scratch, so
/// concurrent calls on the same instance are not allowed (the experiment
/// runner gives every trial its own DimmerNetwork, hence its own executor).
class RoundExecutor {
 public:
  RoundExecutor(const phy::Topology& topo,
                const phy::InterferenceField& interference, RoundConfig cfg);

  /// Binds an external LinkModel backend instead of the internally-owned
  /// dense cache (non-owning; must outlive the executor). This is how a
  /// federation cell runs its rounds over a SparseLinkModel at city scale.
  RoundExecutor(phy::LinkModel& links,
                const phy::InterferenceField& interference, RoundConfig cfg);

  /// Executes one round starting at absolute time `start`.
  /// `states` (one per node) is updated in place: sync ages advance, and the
  /// executor applies `next_n_tx` to nodes that receive the control slot
  /// (the paper: "Immediately after the control slot, all nodes apply the
  /// new N_TX parameter"). Desynchronized nodes keep their stale value.
  ///
  /// A *failed* coordinator yields an orphaned round: the control slot is
  /// silent (every alive node listens the full slot in vain and its sync age
  /// advances), while data slots still run off cached schedules until the
  /// sources desynchronize. `disruptions` injects per-round fault effects;
  /// nullptr means none.
  RoundResult run_round(sim::TimeUs start, std::uint64_t round_index,
                        phy::NodeId coordinator,
                        const std::vector<phy::NodeId>& data_sources,
                        int next_n_tx, std::vector<NodeState>& states,
                        util::Pcg32& rng,
                        const RoundDisruptions* disruptions = nullptr) const;

  /// Hot-path variant: identical semantics to run_round, but writes into a
  /// caller-owned RoundResult whose buffers (including every slot's
  /// FloodResult) are reused across rounds — with a stable source count the
  /// whole round executes without heap allocations. `result` is overwritten.
  void run_round_into(sim::TimeUs start, std::uint64_t round_index,
                      phy::NodeId coordinator,
                      const std::vector<phy::NodeId>& data_sources,
                      int next_n_tx, std::vector<NodeState>& states,
                      util::Pcg32& rng, const RoundDisruptions* disruptions,
                      RoundResult& result) const;

  const RoundConfig& config() const { return cfg_; }
  const phy::Topology& topology() const { return *topo_; }

  /// Channel used for the i-th data slot of a round (slot-based hopping).
  phy::Channel data_channel(std::uint64_t round_index,
                            std::size_t slot_index) const;

  /// Total on-air duration of a round with `n_data_slots` data slots.
  sim::TimeUs round_duration(std::size_t n_data_slots) const;

  /// Optional observability hooks; forwarded to the flood engine for every
  /// slot. Purely observational — results are identical with or without.
  void set_instrumentation(obs::Instrumentation instr) {
    instr_ = instr;
    engine_.set_instrumentation(instr);
  }

 private:
  const phy::Topology* topo_;
  RoundConfig cfg_;
  flood::GlossyFlood engine_;  ///< persistent: keeps the mW link cache warm
  obs::Instrumentation instr_;
  // Reused per-round scratch (hence "one executor per simulation thread").
  mutable flood::FloodWorkspace ws_;
  mutable std::vector<flood::NodeFloodConfig> slot_cfgs_;
  /// Warmed DataSlotOutcomes parked here when a round has fewer data slots
  /// than the last one, so a later growth recycles their buffers instead of
  /// allocating (the slot count varies round to round under federation
  /// bridging; see run_round_into).
  mutable std::vector<DataSlotOutcome> slot_pool_;
};

}  // namespace dimmer::lwb
