#include "baselines/crystal.hpp"

#include <algorithm>

#include "phy/propagation.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace dimmer::baselines {

CrystalNetwork::CrystalNetwork(const phy::Topology& topo,
                               const phy::InterferenceField& interference,
                               Config cfg, phy::NodeId sink,
                               std::uint64_t seed)
    : topo_(&topo),
      interf_(&interference),
      cfg_(std::move(cfg)),
      sink_(sink),
      rng_(seed),
      engine_(topo, interference),
      all_relay_(static_cast<std::size_t>(topo.size()),
                 flood::NodeFloodConfig{cfg_.n_tx, true}) {
  DIMMER_REQUIRE(sink >= 0 && sink < topo.size(), "sink out of range");
  DIMMER_REQUIRE(!cfg_.hop_sequence.empty(), "hopping sequence required");
  DIMMER_REQUIRE(cfg_.max_silent_pairs >= 1, "max_silent_pairs must be >= 1");
  DIMMER_REQUIRE(cfg_.max_pairs >= 1, "max_pairs must be >= 1");
  ws_.reserve(topo.size());
}

void CrystalNetwork::offer_packet(phy::NodeId source) {
  DIMMER_REQUIRE(source >= 0 && source < topo_->size(), "source out of range");
  DIMMER_REQUIRE(source != sink_, "the sink does not source packets");
  queue_.push_back(Pending{source});
}

int CrystalNetwork::pending_packets() const {
  return static_cast<int>(queue_.size());
}

CrystalNetwork::EpochStats CrystalNetwork::run_epoch() {
  const int n = topo_->size();
  EpochStats stats;

  std::vector<sim::TimeUs> radio(static_cast<std::size_t>(n), 0);
  int slots_run = 0;
  sim::TimeUs t = time_;

  // Floods reuse the persistent engine plus caller-owned workspace/result
  // buffers, so steady-state epochs run without flood-path allocations.
  // dimmer-lint: hot-path begin — every S/T/A slot funnels through here.
  auto run_flood = [&](phy::NodeId initiator, int bytes, phy::Channel ch,
                       flood::FloodResult& r) {
    flood::FloodParams params;
    params.channel = ch;
    params.slot_start_us = t;
    params.slot_len_us = cfg_.slot_len_us;
    params.payload_bytes = bytes;
    params.tx_power_dbm = cfg_.tx_power_dbm;
    params.coherence_gain = cfg_.coherence_gain;
    engine_.run_into(initiator, all_relay_, params, rng_, ws_, r);
    for (int i = 0; i < n; ++i)
      radio[static_cast<std::size_t>(i)] +=
          r.nodes[static_cast<std::size_t>(i)].radio_on_us;
    ++slots_run;
    t += cfg_.slot_len_us;
  };
  // dimmer-lint: hot-path end

  // --- S slot: sink-initiated synchronization flood on the first hop
  // channel. Nodes that miss it sit the epoch out (rare; counted as energy).
  phy::Channel s_ch = cfg_.hop_sequence[epoch_idx_ % cfg_.hop_sequence.size()];
  run_flood(sink_, cfg_.sync_bytes, s_ch, sync_buf_);
  const flood::FloodResult& sync = sync_buf_;
  std::vector<bool> in_epoch(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i)
    in_epoch[static_cast<std::size_t>(i)] =
        i == sink_ || sync.nodes[static_cast<std::size_t>(i)].received;

  // --- TA pairs.
  int silent = 0;
  int extra_budget = 0;
  for (int pair = 0; pair < cfg_.max_pairs; ++pair) {
    phy::Channel ch = cfg_.hop_sequence[(epoch_idx_ + pair + 1) %
                                        cfg_.hop_sequence.size()];

    // Contenders: queued packets whose source heard the sync flood.
    std::vector<std::size_t> contenders;
    for (std::size_t q = 0; q < queue_.size(); ++q)
      if (in_epoch[static_cast<std::size_t>(queue_[q].source)])
        contenders.push_back(q);

    bool sink_got = false;
    std::size_t won_index = 0;
    if (!contenders.empty()) {
      // Capture effect: the strongest source at the sink wins the T slot.
      std::size_t win = contenders[0];
      double best = -1e18;
      for (std::size_t q : contenders) {
        double p = topo_->rx_power_dbm(queue_[q].source, sink_,
                                       cfg_.tx_power_dbm);
        if (p > best) {
          best = p;
          win = q;
        }
      }
      run_flood(queue_[win].source, cfg_.payload_bytes, ch, tx_buf_);
      sink_got = tx_buf_.nodes[static_cast<std::size_t>(sink_)].received;
      won_index = win;
    } else {
      // Silent T slot: everyone performs a short listen (clear-channel
      // assessment timeout) instead of a full slot.
      sim::TimeUs listen = cfg_.slot_len_us / 4;
      for (int i = 0; i < n; ++i)
        if (in_epoch[static_cast<std::size_t>(i)])
          radio[static_cast<std::size_t>(i)] += listen;
      ++slots_run;
      t += cfg_.slot_len_us;
    }

    // --- A slot: sink acknowledges (or stays silent on a miss).
    if (sink_got) {
      run_flood(sink_, cfg_.ack_bytes, ch, ack_buf_);
      const flood::FloodResult& ack = ack_buf_;
      // Duplicate suppression by sequence number: count a packet once even
      // if the source retries because it missed the ACK.
      if (!queue_[won_index].counted) {
        stats.delivered += 1;
        queue_[won_index].counted = true;
      }
      bool src_heard_ack =
          ack.nodes[static_cast<std::size_t>(queue_[won_index].source)]
              .received;
      if (src_heard_ack) {
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(won_index));
      }
      silent = 0;
    } else {
      sim::TimeUs listen = cfg_.slot_len_us / 4;
      for (int i = 0; i < n; ++i)
        if (in_epoch[static_cast<std::size_t>(i)])
          radio[static_cast<std::size_t>(i)] += listen;
      ++slots_run;
      t += cfg_.slot_len_us;
      ++silent;
    }
    stats.pairs_executed += 1;

    // Termination with noise detection: sample the channel at the sink.
    if (silent >= cfg_.max_silent_pairs) {
      phy::InterferenceSample noise = interf_->sample(
          t, t + sim::ms(1), ch, sink_, *topo_);
      bool noisy = noise.exposure > 0.0 &&
                   phy::mw_to_dbm(noise.power_mw) > cfg_.noise_threshold_dbm;
      if (noisy && extra_budget < cfg_.extra_pairs_on_noise * 4) {
        stats.noise_detected = true;
        silent = 0;  // "additional TA pairs before turning off the radio"
        extra_budget += cfg_.extra_pairs_on_noise;
      } else {
        break;
      }
    }
  }

  stats.pending_after = static_cast<int>(queue_.size());

  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += sim::to_ms(radio[static_cast<std::size_t>(i)]) /
           std::max(1, slots_run);
    stats.total_radio_on_us += radio[static_cast<std::size_t>(i)];
  }
  stats.radio_on_ms = acc / n;

  time_ += cfg_.epoch_period;
  ++epoch_idx_;
  return stats;
}

CrystalCollectionResult run_crystal_collection(CrystalNetwork& net,
                                               int n_sources,
                                               sim::TimeUs mean_interarrival,
                                               sim::TimeUs duration,
                                               std::uint64_t seed) {
  DIMMER_REQUIRE(n_sources >= 1, "need at least one source");
  DIMMER_REQUIRE(mean_interarrival > 0 && duration > 0,
                 "timings must be positive");
  const int n = net.topology().size();
  std::vector<phy::NodeId> sources;
  for (phy::NodeId i = 0; i < n &&
                          static_cast<int>(sources.size()) < n_sources;
       ++i) {
    if (i == net.sink()) continue;
    sources.push_back(i);
  }
  DIMMER_REQUIRE(static_cast<int>(sources.size()) == n_sources,
                 "could not pick enough sources");

  util::Pcg32 rng(util::hash_u64(seed, 0xC2F57A1ULL));
  auto exponential = [&rng](double mean) {
    double u = rng.uniform();
    if (u < 1e-12) u = 1e-12;
    return -mean * std::log(u);
  };

  std::vector<sim::TimeUs> next_arrival(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i)
    next_arrival[i] = net.now() + static_cast<sim::TimeUs>(exponential(
                                      static_cast<double>(mean_interarrival)));

  CrystalCollectionResult result;
  util::RunningStats radio;
  sim::TimeUs total_radio = 0;
  const sim::TimeUs t_end = net.now() + duration;
  while (net.now() < t_end) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      while (next_arrival[i] <= net.now()) {
        net.offer_packet(sources[i]);
        ++result.sent;
        next_arrival[i] += static_cast<sim::TimeUs>(exponential(
            static_cast<double>(mean_interarrival)));
      }
    }
    CrystalNetwork::EpochStats es = net.run_epoch();
    result.delivered += es.delivered;
    radio.add(es.radio_on_ms);
    total_radio += es.total_radio_on_us;
    ++result.epochs;
  }
  result.reliability = result.sent > 0
                           ? static_cast<double>(result.delivered) /
                                 static_cast<double>(result.sent)
                           : 1.0;
  result.radio_on_ms = radio.mean();
  if (result.epochs > 0)
    result.radio_duty =
        static_cast<double>(total_radio) /
        (static_cast<double>(n) * static_cast<double>(result.epochs) *
         static_cast<double>(net.config().epoch_period));
  return result;
}

}  // namespace dimmer::baselines
