// Crystal baseline (Istomin et al., IPSN 2018; EWSN'19 competition config) —
// the dependable ST protocol the paper compares against in Fig. 7.
//
// Crystal serves aperiodic data collection: an epoch starts with a sink-
// initiated synchronization flood (S), followed by Transmission/
// Acknowledgement (TA) pairs. Sources with pending packets contend in the T
// slot (the capture effect resolves concurrent floods to one winner); the
// sink acknowledges the received packet in the A slot. The epoch terminates
// after R consecutive silent pairs — unless noise is detected at the sink,
// in which case extra TA pairs keep the radio on (interference resilience).
// Every TA pair hops to the next channel of the hopping sequence.
//
// Simplification (documented in DESIGN.md): concurrent contenders resolve to
// the source with the strongest received power at the sink, rather than a
// per-receiver capture race; with the paper's five aperiodic sources,
// concurrency in a T slot is rare and per-receiver mixing is second-order.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "flood/glossy.hpp"
#include "phy/interference.hpp"
#include "phy/topology.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace dimmer::baselines {

class CrystalNetwork {
 public:
  struct Config {
    sim::TimeUs epoch_period = sim::seconds(1);
    sim::TimeUs slot_len_us = sim::ms(10);  ///< T/A slots are short
    int n_tx = 2;                   ///< flood redundancy within a slot
    int payload_bytes = 30;
    int ack_bytes = 12;
    int sync_bytes = 14;
    int max_silent_pairs = 2;       ///< R: silent pairs before sleeping
    int max_pairs = 20;             ///< hard cap per epoch
    int extra_pairs_on_noise = 2;   ///< noise detection extends the epoch
    double noise_threshold_dbm = -88.0;
    std::vector<phy::Channel> hop_sequence = {11, 14, 17, 20, 22, 25};
    double tx_power_dbm = 0.0;
    double coherence_gain = 0.5;
  };

  CrystalNetwork(const phy::Topology& topo,
                 const phy::InterferenceField& interference, Config cfg,
                 phy::NodeId sink, std::uint64_t seed);

  /// Queue a packet at `source` for delivery to the sink.
  void offer_packet(phy::NodeId source);

  struct EpochStats {
    int pairs_executed = 0;
    int delivered = 0;        ///< packets first received at the sink
    int pending_after = 0;    ///< packets still queued at epoch end
    double radio_on_ms = 0.0; ///< mean per-slot radio-on across nodes
    sim::TimeUs total_radio_on_us = 0;  ///< summed across all nodes
    bool noise_detected = false;
  };

  /// Runs one Crystal epoch and advances time by the epoch period.
  EpochStats run_epoch();

  sim::TimeUs now() const { return time_; }
  int pending_packets() const;
  phy::NodeId sink() const { return sink_; }
  const phy::Topology& topology() const { return *topo_; }
  const Config& config() const { return cfg_; }

 private:
  struct Pending {
    phy::NodeId source;
    /// The sink already received (and counted) this packet but the source
    /// missed the ACK; retries are duplicates filtered by sequence number.
    bool counted = false;
  };

  const phy::Topology* topo_;
  const phy::InterferenceField* interf_;
  Config cfg_;
  phy::NodeId sink_;
  util::Pcg32 rng_;
  std::deque<Pending> queue_;
  sim::TimeUs time_ = 0;
  std::uint64_t epoch_idx_ = 0;
  // Persistent flood engine (keeps the mW link-matrix cache warm across
  // epochs) plus reused per-flood scratch/result buffers.
  flood::GlossyFlood engine_;
  flood::FloodWorkspace ws_;
  std::vector<flood::NodeFloodConfig> all_relay_;
  flood::FloodResult sync_buf_;
  flood::FloodResult tx_buf_;
  flood::FloodResult ack_buf_;
};

/// Aperiodic-collection workload over Crystal, mirroring
/// core::run_collection so Fig. 7 compares like with like.
struct CrystalCollectionResult {
  long sent = 0;
  long delivered = 0;
  double reliability = 1.0;
  double radio_on_ms = 0.0;
  double radio_duty = 0.0;  ///< fraction of wall-clock time radios were on
  long epochs = 0;
};

CrystalCollectionResult run_crystal_collection(CrystalNetwork& net,
                                               int n_sources,
                                               sim::TimeUs mean_interarrival,
                                               sim::TimeUs duration,
                                               std::uint64_t seed);

}  // namespace dimmer::baselines
