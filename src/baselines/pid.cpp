#include "baselines/pid.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dimmer::baselines {

PidController::PidController() : PidController(Config{}) {}

PidController::PidController(Config cfg) : cfg_(cfg) {
  DIMMER_REQUIRE(cfg_.n_max >= 1, "n_max must be >= 1");
  DIMMER_REQUIRE(cfg_.integral_max > 0.0, "integral_max must be positive");
  reset();
}

void PidController::reset() {
  // Start the integral where the output equals the common default N_TX = 3,
  // so the controller does not slam the network at startup.
  integral_ = cfg_.ki > 0.0 ? 3.0 / cfg_.ki : 0.0;
  prev_error_ = 0.0;
}

int PidController::decide(const core::GlobalSnapshot& snapshot,
                          bool round_lossless, int current_n_tx) {
  (void)current_n_tx;
  // Worst-device loss fraction; stale/missing feedback is pessimistic, the
  // same rule the DQN's feature builder applies.
  double worst_rel = 1.0;
  for (std::size_t i = 0; i < snapshot.entries.size(); ++i) {
    if (!snapshot.entries[i].accounted) continue;
    bool fresh = snapshot.fresh(static_cast<phy::NodeId>(i));
    double rel = fresh ? snapshot.entries[i].reliability : 0.0;
    worst_rel = std::min(worst_rel, rel);
  }

  double error;
  if (round_lossless && worst_rel >= 0.999) {
    error = -cfg_.energy_pressure;  // reliability at 100%: minimize energy
  } else {
    error = std::max(cfg_.loss_error_floor,
                     (1.0 - worst_rel) * static_cast<double>(cfg_.n_max));
  }

  integral_ = std::clamp(integral_ + error, 0.0, cfg_.integral_max);
  double derivative = error - prev_error_;
  prev_error_ = error;

  double u = cfg_.kp * error + cfg_.ki * integral_ + cfg_.kd * derivative;
  int n = static_cast<int>(std::lround(u));
  return std::clamp(n, 1, cfg_.n_max);
}

}  // namespace dimmer::baselines
