// The paper's adaptive baseline: a PI(D) controller on the retransmission
// parameter (§V-A "Baselines": K_P = 1, K_I = 0.25, "tuned ... to maximize
// reliability first, and minimize energy consumption if reliability is at
// 100%").
//
// The error signal is the loss fraction reported by the worst device in the
// coordinator's snapshot, scaled to N_TX units; on fully-reliable rounds a
// small negative "energy pressure" drains the integral so N_TX creeps down —
// which produces exactly the paper's observed behaviours: oscillation around
// N_TX = 3 in calm conditions, overshoot to N_max under interference, and a
// slow integral-driven recovery afterwards.
#pragma once

#include "core/controller.hpp"

namespace dimmer::baselines {

class PidController : public core::AdaptivityController {
 public:
  struct Config {
    double kp = 1.0;
    double ki = 0.25;
    double kd = 0.0;
    /// Error applied on lossless rounds (negative = push N_TX down).
    double energy_pressure = 0.18;
    /// Minimum error on any lossy round. Rule-based controllers "provide
    /// adaptivity by overshooting the optimal value" (SIII-B): one bad
    /// round must kick the output hard, which is what produces the paper's
    /// jump to N_max and the slow integral-driven recovery.
    double loss_error_floor = 2.0;
    int n_max = core::kNMax;
    /// Anti-windup clamp on the integral term.
    double integral_max = 3.0 * core::kNMax;
  };

  PidController();
  explicit PidController(Config cfg);

  int decide(const core::GlobalSnapshot& snapshot, bool round_lossless,
             int current_n_tx) override;
  const char* name() const override { return "pid"; }

  double integral() const { return integral_; }
  void reset() override;

 private:
  Config cfg_;
  double integral_;
  double prev_error_ = 0.0;
};

}  // namespace dimmer::baselines
