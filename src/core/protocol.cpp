#include "core/protocol.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dimmer::core {

DimmerNetwork::DimmerNetwork(const phy::Topology& topo,
                             const phy::InterferenceField& interference,
                             ProtocolConfig cfg,
                             std::unique_ptr<AdaptivityController> controller,
                             phy::NodeId coordinator, std::uint64_t seed)
    : topo_(&topo),
      cfg_(std::move(cfg)),
      executor_(topo, interference, cfg_.round),
      controller_(std::move(controller)),
      coordinator_(coordinator),
      rng_(seed) {
  init(seed);
}

DimmerNetwork::DimmerNetwork(phy::LinkModel& links,
                             const phy::InterferenceField& interference,
                             ProtocolConfig cfg,
                             std::unique_ptr<AdaptivityController> controller,
                             phy::NodeId coordinator, std::uint64_t seed)
    : topo_(&links.topology()),
      cfg_(std::move(cfg)),
      executor_(links, interference, cfg_.round),
      controller_(std::move(controller)),
      coordinator_(coordinator),
      rng_(seed) {
  init(seed);
}

void DimmerNetwork::init(std::uint64_t seed) {
  DIMMER_REQUIRE(controller_ != nullptr, "controller must not be null");
  DIMMER_REQUIRE(coordinator_ >= 0 && coordinator_ < topo_->size(),
                 "coordinator out of range");
  DIMMER_REQUIRE(cfg_.initial_n_tx >= 1 && cfg_.initial_n_tx <= cfg_.n_max,
                 "initial_n_tx out of [1, N_max]");
  DIMMER_REQUIRE(cfg_.round_period > 0, "round period must be positive");
  DIMMER_REQUIRE(cfg_.sink == -1 ||
                     (cfg_.sink >= 0 && cfg_.sink < topo_->size()),
                 "sink out of range");

  const int n = topo_->size();
  states_.assign(static_cast<std::size_t>(n),
                 lwb::NodeState{cfg_.initial_n_tx, true, 0});
  stats_.assign(static_cast<std::size_t>(n),
                StatsCollector(cfg_.stats_window_slots,
                               sim::to_ms(cfg_.round.slot_len_us),
                               cfg_.radio_window_slots));
  snapshots_.assign(static_cast<std::size_t>(n), GlobalSnapshot(n));
  DIMMER_REQUIRE(cfg_.feedback_freshness_rounds >= 1,
                 "freshness window must be >= 1 round");
  for (auto& snap : snapshots_) {
    snap.freshness_rounds =
        static_cast<std::uint64_t>(cfg_.feedback_freshness_rounds);
    if (!cfg_.feedback_nodes.empty()) {
      for (auto& e : snap.entries) e.accounted = false;
      for (phy::NodeId id : cfg_.feedback_nodes) {
        DIMMER_REQUIRE(id >= 0 && id < n, "feedback node out of range");
        snap.entries[static_cast<std::size_t>(id)].accounted = true;
      }
    }
  }
  local_view_.assign(static_cast<std::size_t>(n), 1.0);
  next_n_tx_ = cfg_.initial_n_tx;
  time_ = cfg_.start_time;
  if (cfg_.forwarder_selection)
    fs_.emplace(n, coordinator_, cfg_.forwarder);

  DIMMER_REQUIRE(cfg_.failover.takeover_silent_rounds >= 1,
                 "takeover_silent_rounds must be >= 1");
  for (phy::NodeId b : cfg_.failover.backups)
    DIMMER_REQUIRE(b >= 0 && b < n, "backup coordinator out of range");
  backup_silence_.assign(cfg_.failover.backups.size(), 0);
  // The injector exists only with a non-empty plan, and draws from a stream
  // forked off the trial seed — protocol RNG lockstep is never perturbed.
  if (!cfg_.fault_plan.empty())
    injector_.emplace(cfg_.fault_plan, n, seed);
}

void DimmerNetwork::set_instrumentation(obs::Instrumentation instr) {
  instr_ = instr;
  executor_.set_instrumentation(instr);
  controller_->set_instrumentation(instr);
  if (fs_.has_value()) fs_->set_instrumentation(instr);
}

phy::NodeId DimmerNetwork::sink() const {
  return cfg_.sink >= 0 ? cfg_.sink : coordinator_;
}

const GlobalSnapshot& DimmerNetwork::snapshot(phy::NodeId n) const {
  DIMMER_REQUIRE(n >= 0 && n < topo_->size(), "node out of range");
  return snapshots_[static_cast<std::size_t>(n)];
}

const StatsCollector& DimmerNetwork::stats(phy::NodeId n) const {
  DIMMER_REQUIRE(n >= 0 && n < topo_->size(), "node out of range");
  return stats_[static_cast<std::size_t>(n)];
}

double DimmerNetwork::local_reliability_view(phy::NodeId n) const {
  DIMMER_REQUIRE(n >= 0 && n < topo_->size(), "node out of range");
  return local_view_[static_cast<std::size_t>(n)];
}

void DimmerNetwork::set_node_failed(phy::NodeId n, bool failed) {
  DIMMER_REQUIRE(n >= 0 && n < topo_->size(), "node out of range");
  states_[static_cast<std::size_t>(n)].failed = failed;
}

bool DimmerNetwork::node_failed(phy::NodeId n) const {
  DIMMER_REQUIRE(n >= 0 && n < topo_->size(), "node out of range");
  return states_[static_cast<std::size_t>(n)].failed;
}

RoundStats DimmerNetwork::run_round(const std::vector<phy::NodeId>& sources) {
  RoundStats out;
  run_round_into(sources, out);
  return out;
}

// Vector assigns below recycle pooled capacity; a warmed-up RoundStats makes
// the round allocation-free (audited by the campaign allocation tests).
// dimmer-lint: pure(may-allocate)
void DimmerNetwork::run_round_into(const std::vector<phy::NodeId>& sources,
                                   RoundStats& out) {
  // Reset every field of the (possibly pooled) output; vector assigns reuse
  // capacity, so a warmed-up RoundStats makes this allocation-free.
  out.round = round_idx_;
  out.start_us = time_;
  out.n_tx = next_n_tx_;
  out.mab_round = false;
  out.active_forwarders = 0;
  out.coordinator = -1;
  out.orphaned = false;
  out.failover = false;
  out.reliability = 1.0;
  out.lossless = true;
  out.radio_on_ms = 0.0;
  out.total_radio_on_us = 0;
  out.coordinator_lossless = true;
  out.desynchronized = 0;
  out.sources.assign(sources.begin(), sources.end());

  // --- Scripted faults for this round, then the failover state machine.
  lwb::RoundDisruptions dis;
  if (injector_.has_value()) apply_faults(out, dis);
  maybe_failover(out);
  out.coordinator = coordinator_;
  const bool coord_alive =
      !states_[static_cast<std::size_t>(coordinator_)].failed;
  out.orphaned = !coord_alive;

  // --- Mode selection: MAB learning rounds happen after `mab_calm_rounds`
  // consecutive lossless rounds (0 = every round, the paper's §V-D setup
  // with the DQN deactivated). A dead coordinator grants no turns.
  bool mab_round =
      coord_alive && fs_.has_value() && calm_rounds_ >= cfg_.mab_calm_rounds;
  out.mab_round = mab_round;
  if (mab_round) {
    fs_->begin_round(rng_);
    const auto& roles = fs_->roles();
    for (std::size_t i = 0; i < states_.size(); ++i)
      states_[i].forwarder = roles[i];
  } else if (fs_.has_value() && calm_rounds_ > 0) {
    // Outside learning rounds in calm networks, frozen passive roles stay.
    const auto& roles = fs_->roles();
    for (std::size_t i = 0; i < states_.size(); ++i)
      states_[i].forwarder = roles[i];
  } else {
    // "Under interference, all devices are active."
    for (auto& s : states_) s.forwarder = true;
  }
  out.active_forwarders = static_cast<int>(std::count_if(
      states_.begin(), states_.end(),
      [](const lwb::NodeState& s) { return s.forwarder; }));

  // --- Execute the round into the pooled result (buffers reused across
  // rounds; see protocol.hpp).
  // dimmer-lint: hot-path begin — steady-state rounds recycle round_buf_ and
  // the executor workspace; nothing here may allocate.
  executor_.run_round_into(time_, round_idx_, coordinator_, sources,
                           next_n_tx_, states_, rng_,
                           injector_.has_value() ? &dis : nullptr, round_buf_);
  const lwb::RoundResult& rr = round_buf_;
  process_round(rr, sources, out);
  // dimmer-lint: hot-path end
  if (out.orphaned) {
    // Nobody computed a schedule, so nobody can claim the round was clean.
    out.coordinator_lossless = false;
    if (instr_.metrics) {
      instr_.metrics->counter("fault.orphaned_rounds") += 1;
      instr_.metrics->counter("fault.orphaned_radio_on_us") +=
          static_cast<std::uint64_t>(out.total_radio_on_us);
    }
  }

  // --- Close the adaptation loop. An orphaned round leaves the controller
  // untouched: there is no coordinator to run it.
  if (mab_round) {
    fs_->end_round(local_view_[static_cast<std::size_t>(fs_->current_learner())]);
  }
  if (fs_.has_value()) fs_->apply_breaking_penalty(local_view_);
  if (!mab_round && coord_alive) {
    next_n_tx_ = controller_->decide(
        snapshots_[static_cast<std::size_t>(coordinator_)],
        out.coordinator_lossless, next_n_tx_);
    DIMMER_CHECK(next_n_tx_ >= 1 && next_n_tx_ <= cfg_.n_max);
  }
  calm_rounds_ = out.coordinator_lossless ? calm_rounds_ + 1 : 0;

  update_failover_tracking(rr, out);

  if (instr_.metrics) {
    obs::MetricsRegistry& m = *instr_.metrics;
    m.counter("protocol.rounds") += 1;
    if (out.mab_round) m.counter("protocol.mab_rounds") += 1;
    if (!out.lossless) m.counter("protocol.lossy_rounds") += 1;
    if (out.lossless != out.coordinator_lossless)
      m.counter("protocol.loss_estimate_mismatches") += 1;
    m.counter("protocol.desynced_node_rounds") +=
        static_cast<std::uint64_t>(out.desynchronized);
    m.histogram("protocol.reliability", {0.5, 0.9, 0.95, 0.99, 0.999})
        .add(out.reliability);
    m.histogram("protocol.radio_on_ms", {0.5, 1.0, 2.0, 5.0, 10.0, 20.0})
        .add(out.radio_on_ms);
  }
  if (instr_.trace) {
    obs::TraceEvent e;
    e.kind = "round";
    e.round = out.round;
    e.t_us = out.start_us;
    e.node = coordinator_;
    e.f("n_tx", out.n_tx)
        .f("next_n_tx", next_n_tx_)
        .f("mab_round", out.mab_round ? 1.0 : 0.0)
        .f("active_forwarders", out.active_forwarders)
        .f("reliability", out.reliability)
        .f("lossless", out.lossless ? 1.0 : 0.0)
        .f("coordinator_lossless", out.coordinator_lossless ? 1.0 : 0.0)
        .f("radio_on_ms", out.radio_on_ms)
        .f("desynchronized", out.desynchronized)
        .f("calm_rounds", calm_rounds_)
        .f("orphaned", out.orphaned ? 1.0 : 0.0)
        .tag("controller", controller_->name());
    instr_.trace->emit(e);
  }

  time_ += cfg_.round_period;
  ++round_idx_;
}

void DimmerNetwork::apply_faults(RoundStats& out, lwb::RoundDisruptions& dis) {
  fault::RoundFaults rf = injector_->begin_round(round_idx_);

  for (fault::NodeId n : rf.crashes)
    states_[static_cast<std::size_t>(n)].failed = true;
  if (rf.coordinator_crash)
    states_[static_cast<std::size_t>(coordinator_)].failed = true;
  for (fault::NodeId n : rf.reboots) {
    auto& s = states_[static_cast<std::size_t>(n)];
    s.failed = false;
    // A rebooted node holds no schedule: it must re-bootstrap from scratch.
    s.sync_age = cfg_.round.max_sync_age + 1;
  }
  for (fault::NodeId n : rf.clock_drifts) {
    // Clock drift past the guard interval: the cached schedule is useless
    // until the node hears a fresh one.
    states_[static_cast<std::size_t>(n)].sync_age = cfg_.round.max_sync_age + 1;
  }
  dis.control_corrupted = rf.control_corrupted;
  dis.deaf = std::move(rf.deaf);

  if (instr_.metrics) {
    obs::MetricsRegistry& m = *instr_.metrics;
    if (!rf.crashes.empty())
      m.counter("fault.node_crashes") += rf.crashes.size();
    if (!rf.reboots.empty())
      m.counter("fault.node_reboots") += rf.reboots.size();
    if (!rf.clock_drifts.empty())
      m.counter("fault.clock_drifts") += rf.clock_drifts.size();
    if (rf.coordinator_crash) m.counter("fault.coordinator_crashes") += 1;
    if (rf.control_corrupted) m.counter("fault.control_corruptions") += 1;
    if (injector_->blackout_active()) m.counter("fault.blackout_rounds") += 1;
  }
  if (instr_.trace && rf.any()) {
    int deaf_count = 0;
    for (bool d : dis.deaf)
      if (d) ++deaf_count;
    obs::TraceEvent e;
    e.kind = "fault";
    e.round = round_idx_;
    e.t_us = time_;
    e.node = coordinator_;
    e.f("crashes", static_cast<double>(rf.crashes.size()))
        .f("reboots", static_cast<double>(rf.reboots.size()))
        .f("clock_drifts", static_cast<double>(rf.clock_drifts.size()))
        .f("coordinator_crash", rf.coordinator_crash ? 1.0 : 0.0)
        .f("control_corrupted", rf.control_corrupted ? 1.0 : 0.0)
        .f("deaf_nodes", deaf_count);
    instr_.trace->emit(e);
  }
  (void)out;
}

void DimmerNetwork::maybe_failover(RoundStats& out) {
  if (cfg_.failover.backups.empty()) return;
  const int k = cfg_.failover.takeover_silent_rounds;
  for (std::size_t j = 0; j < cfg_.failover.backups.size(); ++j) {
    phy::NodeId b = cfg_.failover.backups[j];
    if (b == coordinator_) continue;
    if (states_[static_cast<std::size_t>(b)].failed) continue;
    if (backup_silence_[j] < k) continue;

    // Highest-priority alive backup that counted K silent rounds takes over.
    const bool cold = cfg_.failover.mode == FailoverConfig::Mode::kCold;
    phy::NodeId old = coordinator_;
    coordinator_ = b;
    ++failover_count_;
    out.failover = true;
    std::fill(backup_silence_.begin(), backup_silence_.end(), 0);
    // The new coordinator resyncs by construction: it now *generates* the
    // schedule it was missing.
    states_[static_cast<std::size_t>(b)].sync_age = 0;
    if (cold) {
      controller_->reset();
      if (fs_.has_value()) fs_->abort_episode(b);
      calm_rounds_ = 0;
    } else if (fs_.has_value()) {
      fs_->set_coordinator(b);
    }
    recovering_ = true;
    takeover_round_ = round_idx_;
    recovery_min_rel_ = 1.0;
    last_rounds_to_resync_ = -1;

    if (instr_.metrics) {
      obs::MetricsRegistry& m = *instr_.metrics;
      m.counter("fault.failovers") += 1;
      m.counter(cold ? "fault.failovers_cold" : "fault.failovers_warm") += 1;
    }
    if (instr_.trace) {
      obs::TraceEvent e;
      e.kind = "failover";
      e.round = round_idx_;
      e.t_us = time_;
      e.node = b;
      e.f("old_coordinator", old)
          .f("new_coordinator", b)
          .f("cold", cold ? 1.0 : 0.0)
          .f("failover_count", failover_count_);
      instr_.trace->emit(e);
    }
    break;
  }
}

void DimmerNetwork::update_failover_tracking(const lwb::RoundResult& rr,
                                             const RoundStats& out) {
  for (std::size_t j = 0; j < cfg_.failover.backups.size(); ++j) {
    phy::NodeId b = cfg_.failover.backups[j];
    bool heard = b == coordinator_ ||
                 rr.got_control[static_cast<std::size_t>(b)];
    if (states_[static_cast<std::size_t>(b)].failed || heard)
      backup_silence_[j] = 0;
    else
      backup_silence_[j] += 1;
  }

  if (!recovering_) return;
  recovery_min_rel_ = std::min(recovery_min_rel_, out.reliability);
  // Recovered = a non-orphaned round in which every *alive* node holds a
  // usable schedule again (crashed nodes cannot resync by definition).
  int alive_desynced = 0;
  for (const auto& s : states_)
    if (!s.failed && s.sync_age > cfg_.round.max_sync_age) ++alive_desynced;
  if (!out.orphaned && alive_desynced == 0) {
    recovering_ = false;
    last_rounds_to_resync_ =
        static_cast<int>(round_idx_ - takeover_round_ + 1);
    if (instr_.metrics) {
      obs::MetricsRegistry& m = *instr_.metrics;
      m.gauge("fault.rounds_to_resync") =
          static_cast<double>(last_rounds_to_resync_);
      m.histogram("fault.rounds_to_resync", {1, 2, 3, 5, 8, 13, 21})
          .add(static_cast<double>(last_rounds_to_resync_));
      m.gauge("fault.reliability_dip_depth") = 1.0 - recovery_min_rel_;
    }
    if (instr_.trace) {
      obs::TraceEvent e;
      e.kind = "resync";
      e.round = round_idx_;
      e.t_us = time_;
      e.node = coordinator_;
      e.f("rounds_to_resync", last_rounds_to_resync_)
          .f("min_reliability", recovery_min_rel_)
          .f("dip_depth", 1.0 - recovery_min_rel_);
      instr_.trace->emit(e);
    }
  }
}

// Member-scratch assigns reuse capacity across rounds (see the scratch
// comments in the body); steady state allocates nothing.
// dimmer-lint: pure(may-allocate)
void DimmerNetwork::process_round(const lwb::RoundResult& rr,
                                  const std::vector<phy::NodeId>& sources,
                                  RoundStats& out) {
  const int n = topo_->size();
  const sim::TimeUs slot_len = cfg_.round.slot_len_us;
  const double slot_ms = sim::to_ms(slot_len);
  const phy::NodeId sink_id = sink();

  auto failed = [&](phy::NodeId i) {
    return states_[static_cast<std::size_t>(i)].failed;
  };
  auto synced = [&](phy::NodeId i) {
    return !failed(i) && states_[static_cast<std::size_t>(i)].sync_age <=
                             cfg_.round.max_sync_age;
  };

  // Control slot energy (covers orphaned rounds and deaf listeners too).
  for (phy::NodeId i = 0; i < n; ++i)
    stats_[static_cast<std::size_t>(i)].record_energy_only_slot(
        rr.control_radio_on_us[static_cast<std::size_t>(i)]);

  // Per-node local reliability view accumulators for this round (member
  // scratch: assign() reuses capacity across rounds).
  rx_ok_scratch_.assign(static_cast<std::size_t>(n), 0);
  rx_expected_scratch_.assign(static_cast<std::size_t>(n), 0);
  worst_header_scratch_.assign(static_cast<std::size_t>(n), 1.0);
  std::vector<int>& rx_ok = rx_ok_scratch_;
  std::vector<int>& rx_expected = rx_expected_scratch_;
  std::vector<double>& worst_header = worst_header_scratch_;

  long delivered_pairs = 0, expected_pairs = 0;
  bool coord_missed = false;

  out.sink_received.assign(sources.size(), false);

  for (std::size_t k = 0; k < rr.data.size(); ++k) {
    const lwb::DataSlotOutcome& slot = rr.data[k];
    const phy::NodeId s = slot.source;

    // The source freezes its feedback header *before* its slot (feedback
    // latency, §IV-E); quantization through the 2-byte wire format applies.
    FeedbackHeader header = stats_[static_cast<std::size_t>(s)].snapshot();
    double hdr_rel = decode_reliability(header);
    double hdr_radio = decode_radio_on_ms(header, slot_ms);

    for (phy::NodeId r = 0; r < n; ++r) {
      if (r == s) continue;
      if (failed(r)) continue;  // a crashed node is not a destination
      ++expected_pairs;
      bool got = slot.source_synced && synced(r) &&
                 slot.flood.nodes[static_cast<std::size_t>(r)].received;
      if (got) {
        ++delivered_pairs;
        auto& entry =
            snapshots_[static_cast<std::size_t>(r)].entries[static_cast<std::size_t>(s)];
        entry.reliability = hdr_rel;
        entry.radio_on_ms = hdr_radio;
        entry.round = round_idx_;
        entry.ever_heard = true;
        worst_header[static_cast<std::size_t>(r)] =
            std::min(worst_header[static_cast<std::size_t>(r)], hdr_rel);
      }
      if (r == sink_id) out.sink_received[k] = got;
      if (r == coordinator_ && !got) coord_missed = true;

      // Local statistics: every node that knows the schedule expects this
      // packet; desynchronized nodes know they are missing traffic.
      sim::TimeUs radio = synced(r)
                              ? (slot.source_synced
                                     ? slot.flood.nodes[static_cast<std::size_t>(r)]
                                           .radio_on_us
                                     : slot_len)
                              : slot_len;
      stats_[static_cast<std::size_t>(r)].record_reception_slot(got, radio);
      ++rx_expected[static_cast<std::size_t>(r)];
      if (got) ++rx_ok[static_cast<std::size_t>(r)];
    }

    // The source's own slot costs energy but is not a reception opportunity.
    sim::TimeUs src_radio =
        slot.source_synced
            ? slot.flood.nodes[static_cast<std::size_t>(s)].radio_on_us
            : slot_len;
    stats_[static_cast<std::size_t>(s)].record_energy_only_slot(src_radio);
  }

  // Refresh every node's own snapshot entry with exact local values.
  for (phy::NodeId i = 0; i < n; ++i) {
    if (failed(i)) continue;
    auto& snap = snapshots_[static_cast<std::size_t>(i)];
    snap.current_round = round_idx_;
    auto& own = snap.entries[static_cast<std::size_t>(i)];
    own.reliability = stats_[static_cast<std::size_t>(i)].reliability();
    own.radio_on_ms = stats_[static_cast<std::size_t>(i)].radio_on_ms();
    own.round = round_idx_;
    own.ever_heard = true;
  }

  // Local reliability views for MAB rewards.
  for (phy::NodeId i = 0; i < n; ++i) {
    double own = rx_expected[static_cast<std::size_t>(i)] > 0
                     ? static_cast<double>(rx_ok[static_cast<std::size_t>(i)]) /
                           rx_expected[static_cast<std::size_t>(i)]
                     : 1.0;
    local_view_[static_cast<std::size_t>(i)] =
        std::min(own, worst_header[static_cast<std::size_t>(i)]);
  }

  // Ground-truth round metrics.
  out.reliability = expected_pairs > 0
                        ? static_cast<double>(delivered_pairs) /
                              static_cast<double>(expected_pairs)
                        : 1.0;
  out.lossless = delivered_pairs == expected_pairs;

  double radio_acc = 0.0;
  int alive = 0;
  for (phy::NodeId i = 0; i < n; ++i)
    out.total_radio_on_us += rr.radio_on_us[static_cast<std::size_t>(i)];
  for (phy::NodeId i = 0; i < n; ++i) {
    if (failed(i)) continue;
    ++alive;
    double per_slot =
        rr.awake_slots[static_cast<std::size_t>(i)] > 0
            ? sim::to_ms(rr.radio_on_us[static_cast<std::size_t>(i)]) /
                  rr.awake_slots[static_cast<std::size_t>(i)]
            : 0.0;
    radio_acc += per_slot;
  }
  out.radio_on_ms = alive > 0 ? radio_acc / alive : 0.0;

  out.desynchronized = static_cast<int>(std::count_if(
      states_.begin(), states_.end(), [&](const lwb::NodeState& s) {
        return s.sync_age > cfg_.round.max_sync_age;
      }));

  // Coordinator's loss estimate: it must have heard every scheduled packet
  // and every header it heard must report 100% reliability.
  out.coordinator_lossless =
      !coord_missed &&
      worst_header[static_cast<std::size_t>(coordinator_)] >= 0.999;
}

}  // namespace dimmer::core
