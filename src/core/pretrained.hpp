// Convenience pipeline: obtain a trained Dimmer DQN policy.
//
// The paper trains offline on traces from the 18-node testbed under
// (predominantly) 802.15.4 jamming, then deploys the frozen, quantized
// network everywhere — including the 48-node D-Cube testbed, without
// retraining. load_or_train_policy() reproduces that workflow: it collects
// traces on the office topology under the training interference schedule,
// trains the DQN, and caches the weights on disk so examples and benchmark
// harnesses share one policy.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/features.hpp"
#include "core/trace_env.hpp"
#include "rl/mlp.hpp"

namespace dimmer::core {

struct PretrainedOptions {
  FeatureConfig features;        ///< K=10, M=2, N_max=8 by default
  std::size_t trace_steps = 2500;
  std::size_t train_steps = 200000;  ///< the paper's training budget
  sim::TimeUs round_period = sim::seconds(4);
  std::uint64_t seed = 2021;
  /// DQN training lands in seed-dependent equilibria (the paper averages
  /// 3 models per configuration in §V-B for the same reason). We train
  /// `candidates` seeds and deploy the one with the best reward on a
  /// held-out validation trace.
  int candidates = 4;
  std::size_t validation_steps = 700;
};

/// Loads the cached policy from `cache_path` if it exists and matches the
/// feature configuration; otherwise collects traces, trains, and saves.
/// Progress notes go to `log` when non-null.
rl::Mlp load_or_train_policy(const std::string& cache_path,
                             const PretrainedOptions& options,
                             std::ostream* log = nullptr);

/// Trains a fresh policy (no cache interaction).
rl::Mlp train_default_policy(const PretrainedOptions& options,
                             std::ostream* log = nullptr);

}  // namespace dimmer::core
