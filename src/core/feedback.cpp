#include "core/feedback.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dimmer::core {

namespace {
std::uint8_t quantize(double frac) {
  frac = std::clamp(frac, 0.0, 1.0);
  return static_cast<std::uint8_t>(std::lround(frac * 255.0));
}
}  // namespace

FeedbackHeader encode_feedback(double reliability, double radio_on_ms,
                               double slot_ms) {
  DIMMER_REQUIRE(slot_ms > 0.0, "slot_ms must be positive");
  FeedbackHeader h;
  h.reliability_q = quantize(reliability);
  h.radio_on_q = quantize(radio_on_ms / slot_ms);
  return h;
}

double decode_reliability(const FeedbackHeader& h) {
  return static_cast<double>(h.reliability_q) / 255.0;
}

double decode_radio_on_ms(const FeedbackHeader& h, double slot_ms) {
  DIMMER_REQUIRE(slot_ms > 0.0, "slot_ms must be positive");
  return static_cast<double>(h.radio_on_q) / 255.0 * slot_ms;
}

}  // namespace dimmer::core
