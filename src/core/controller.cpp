#include "core/controller.hpp"

#include <algorithm>
#include <string>

#include "util/check.hpp"

namespace dimmer::core {

int apply_action(int n_tx, AdaptAction a, int n_max) {
  int delta = static_cast<int>(a) - 1;  // kDecrease=-1, kMaintain=0, kIncrease=+1
  return std::clamp(n_tx + delta, 1, n_max);
}

StaticController::StaticController(int n_tx) : n_tx_(n_tx) {
  DIMMER_REQUIRE(n_tx >= 1 && n_tx <= kNMax, "static n_tx out of [1, N_max]");
}

DqnController::DqnController(rl::QuantizedMlp policy, FeatureConfig features)
    : policy_(std::move(policy)), features_(features) {
  DIMMER_REQUIRE(
      policy_.layers().front().in == features_.input_size(),
      "policy input width does not match the feature configuration");
  DIMMER_REQUIRE(policy_.layers().back().out == 3,
                 "policy must emit 3 Q-values (decrease/maintain/increase)");
}

int DqnController::decide(const GlobalSnapshot& snapshot, bool round_lossless,
                          int current_n_tx) {
  // The finished round's loss bit enters the history window first: with
  // M = 2 and 4 s rounds this is the paper's "data about losses over the
  // last 8 sec".
  history_.push_front(round_lossless);
  while (static_cast<int>(history_.size()) >
         std::max(1, features_.config().history))
    history_.pop_back();

  last_features_ = features_.build(snapshot, current_n_tx, history_);
  auto action = static_cast<AdaptAction>(policy_.greedy_action(last_features_));
  int next_n_tx = apply_action(current_n_tx, action, features_.config().n_max);

  ++decisions_;
  if (instr_.metrics) {
    obs::MetricsRegistry& m = *instr_.metrics;
    m.counter("controller.decisions") += 1;
    const char* names[] = {"controller.action_decrease",
                           "controller.action_maintain",
                           "controller.action_increase"};
    m.counter(names[static_cast<int>(action)]) += 1;
    m.gauge("controller.n_tx") = static_cast<double>(next_n_tx);
  }
  if (instr_.trace) {
    // Q-values are recomputed in double precision purely for the trace; the
    // decision above came from the fixed-point path either way.
    std::vector<double> q = policy_.forward(last_features_);
    obs::TraceEvent e;
    e.kind = "controller";
    e.round = decisions_ - 1;
    e.f("action", static_cast<double>(action))
        .f("n_tx", next_n_tx)
        .f("prev_n_tx", current_n_tx)
        .f("lossless", round_lossless ? 1.0 : 0.0);
    for (std::size_t i = 0; i < q.size(); ++i) {
      // Built with += rather than `"q" + to_string(i)`: GCC 12's -Wrestrict
      // false-fires on the char*+string&& operator+ under -O2 inlining.
      std::string key = "q";
      key += std::to_string(i);
      e.f(key, q[i]);
    }
    instr_.trace->emit(e);
  }
  return next_n_tx;
}

}  // namespace dimmer::core
