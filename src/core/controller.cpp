#include "core/controller.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dimmer::core {

int apply_action(int n_tx, AdaptAction a, int n_max) {
  int delta = static_cast<int>(a) - 1;  // kDecrease=-1, kMaintain=0, kIncrease=+1
  return std::clamp(n_tx + delta, 1, n_max);
}

StaticController::StaticController(int n_tx) : n_tx_(n_tx) {
  DIMMER_REQUIRE(n_tx >= 1 && n_tx <= kNMax, "static n_tx out of [1, N_max]");
}

DqnController::DqnController(rl::QuantizedMlp policy, FeatureConfig features)
    : policy_(std::move(policy)), features_(features) {
  DIMMER_REQUIRE(
      policy_.layers().front().in == features_.input_size(),
      "policy input width does not match the feature configuration");
  DIMMER_REQUIRE(policy_.layers().back().out == 3,
                 "policy must emit 3 Q-values (decrease/maintain/increase)");
}

int DqnController::decide(const GlobalSnapshot& snapshot, bool round_lossless,
                          int current_n_tx) {
  // The finished round's loss bit enters the history window first: with
  // M = 2 and 4 s rounds this is the paper's "data about losses over the
  // last 8 sec".
  history_.push_front(round_lossless);
  while (static_cast<int>(history_.size()) >
         std::max(1, features_.config().history))
    history_.pop_back();

  last_features_ = features_.build(snapshot, current_n_tx, history_);
  auto action = static_cast<AdaptAction>(policy_.greedy_action(last_features_));
  return apply_action(current_n_tx, action, features_.config().n_max);
}

}  // namespace dimmer::core
