#include "core/pretrained.hpp"

#include <fstream>
#include <ostream>

#include "core/scenarios.hpp"
#include "phy/topology.hpp"
#include "util/check.hpp"

namespace dimmer::core {

rl::Mlp train_default_policy(const PretrainedOptions& options,
                             std::ostream* log) {
  DIMMER_REQUIRE(options.candidates >= 1, "need at least one candidate");
  phy::Topology topo = phy::make_office18_topology();

  auto make_traces = [&](std::size_t steps, std::uint64_t tag) {
    TraceCollectionConfig tc;
    tc.steps = steps;
    tc.seed = util::hash_u64(options.seed, tag);
    tc.round_period = options.round_period;
    // Start mid-morning so traces span work hours and quiet evenings.
    tc.start_time = sim::hours(9) + sim::minutes(30);
    phy::InterferenceField field;
    add_training_schedule(
        field, topo,
        tc.start_time + static_cast<sim::TimeUs>(tc.steps) * tc.round_period,
        util::hash_u64(options.seed, tag, 0x5C4EDULL));
    return collect_traces(topo, field, tc);
  };

  if (log)
    *log << "[dimmer] collecting " << options.trace_steps
         << " training + " << options.validation_steps
         << " validation trace steps (8 shadow networks each)...\n";
  TraceDataset traces = make_traces(options.trace_steps, 0x717ACEULL);
  TraceDataset validation =
      make_traces(options.validation_steps, 0x7A11DULL);
  // A calm-only validation slice (daytime ambient, no jammers): separates
  // policies that converge back to the low-N_TX optimum from those that
  // park at a wasteful plateau after interference.
  TraceDataset calm_validation = [&] {
    TraceCollectionConfig tc;
    tc.steps = options.validation_steps / 2;
    tc.seed = util::hash_u64(options.seed, 0xCA17ULL);
    tc.round_period = options.round_period;
    tc.start_time = sim::hours(11);
    phy::InterferenceField field;
    add_office_ambient(field, topo, util::hash_u64(options.seed, 0xCA18ULL));
    return collect_traces(topo, field, tc);
  }();

  TraceEnv::Config env_cfg;
  env_cfg.features = options.features;

  rl::Mlp best({env_cfg.features.k * 2 + env_cfg.features.n_max + 1 +
                    env_cfg.features.history,
                30, 3},
               1);
  double best_reward = -1e18;
  for (int c = 0; c < options.candidates; ++c) {
    TrainerConfig tr;
    tr.total_steps = options.train_steps;
    tr.seed = util::hash_u64(options.seed, 0xD9AULL,
                             static_cast<std::uint64_t>(c));
    // Scale the annealing window with the training budget, keeping the
    // paper's 1:2 ratio (100k of 200k steps).
    tr.dqn.epsilon_anneal_steps = options.train_steps / 2;
    tr.dqn.lr_decay_steps = options.train_steps * 3 / 4;

    if (log)
      *log << "[dimmer] training DQN candidate " << (c + 1) << "/"
           << options.candidates << " for " << tr.total_steps
           << " steps...\n";
    rl::Mlp net = train_dqn_on_traces(traces, env_cfg, tr);
    rl::QuantizedMlp q(net);
    PolicyEvaluation ev =
        evaluate_policy(validation, q, env_cfg,
                        /*episodes=*/60, util::hash_u64(tr.seed, 0x5E1ULL));
    PolicyEvaluation calm =
        evaluate_policy(calm_validation, q, env_cfg,
                        /*episodes=*/40, util::hash_u64(tr.seed, 0x5E2ULL));
    double score = 0.5 * ev.avg_reward + 0.5 * calm.avg_reward;
    if (log)
      *log << "[dimmer]   validation: mixed reward " << ev.avg_reward
           << ", calm reward " << calm.avg_reward << " (calm mean N_TX "
           << calm.avg_n_tx << ") -> score " << score << '\n';
    if (score > best_reward) {
      best_reward = score;
      best = std::move(net);
    }
  }
  return best;
}

rl::Mlp load_or_train_policy(const std::string& cache_path,
                             const PretrainedOptions& options,
                             std::ostream* log) {
  {
    std::ifstream is(cache_path);
    if (is.good()) {
      // A stale, truncated or corrupt cache must never crash the caller:
      // Mlp::load validates everything and throws, and we fall back to
      // retraining (overwriting the bad cache below).
      try {
        rl::Mlp net = rl::Mlp::load(is);
        FeatureBuilder fb(options.features);
        if (net.input_size() == fb.input_size() && net.output_size() == 3) {
          if (log)
            *log << "[dimmer] loaded cached policy: " << cache_path << '\n';
          return net;
        }
        if (log)
          *log << "[dimmer] cached policy shape mismatch; retraining...\n";
      } catch (const std::exception& e) {
        if (log)
          *log << "[dimmer] cached policy unreadable (" << e.what()
               << "); retraining...\n";
      }
    }
  }
  rl::Mlp net = train_default_policy(options, log);
  std::ofstream os(cache_path);
  if (os.good()) {
    net.save(os);
    if (log) *log << "[dimmer] cached policy to " << cache_path << '\n';
  } else if (log) {
    *log << "[dimmer] warning: could not write cache " << cache_path << '\n';
  }
  return net;
}

}  // namespace dimmer::core
