// The two-byte Dimmer feedback header (paper §III-A, §IV-D).
//
// "For each data slot, the source appends to its payload a two-byte header
// representing two performance metrics: its radio-on time averaged over the
// last floods, and its reliability (packet reception rate)."
#pragma once

#include <cstdint>

namespace dimmer::core {

/// Wire format: one byte per metric.
struct FeedbackHeader {
  std::uint8_t reliability_q = 0;  ///< 0..255 over [0,1]
  std::uint8_t radio_on_q = 255;   ///< 0..255 over [0, slot_len]
};

/// Quantize local measurements into the 2-byte header.
/// `radio_on_ms` is clamped to [0, slot_ms]; `reliability` to [0,1].
FeedbackHeader encode_feedback(double reliability, double radio_on_ms,
                               double slot_ms = 20.0);

/// Decode the header back to engineering units.
double decode_reliability(const FeedbackHeader& h);
double decode_radio_on_ms(const FeedbackHeader& h, double slot_ms = 20.0);

/// Size of the header on the wire (paper: 2 bytes).
constexpr int kFeedbackHeaderBytes = 2;

}  // namespace dimmer::core
