// DQN input-vector construction (paper Table I).
//
//   Input          rows        normalization
//   radio-on time  K (10)      [0, 20 ms]  -> [-1, 1]
//   reliability    K (10)      [50, 100 %] -> [-1, 1] (below 50% saturates)
//   N parameter    N_max+1 (9) one-hot encoding
//   history        M (2)       -1 if losses that round, +1 otherwise
//
// The K rows come from the K devices with *lowest reliability* ("to correctly
// represent the suffered packet losses"); stale or missing feedback is filled
// pessimistically (0% reliability, 100% radio-on). This makes the input size
// independent of the deployment size — the property that lets the paper move
// an 18-node-trained DQN to a 48-node testbed without retraining.
#pragma once

#include <deque>
#include <vector>

#include "core/types.hpp"

namespace dimmer::core {

struct FeatureConfig {
  int k = 10;        ///< feedback rows (paper picks K = 10 in Fig. 4b)
  int history = 2;   ///< M historical loss bits (paper picks M = 2)
  int n_max = kNMax; ///< one-hot width is n_max + 1
  double slot_ms = 20.0;
};

class FeatureBuilder {
 public:
  explicit FeatureBuilder(FeatureConfig cfg);

  const FeatureConfig& config() const { return cfg_; }

  /// 2K + (N_max + 1) + M; 31 for the paper's K=10, M=2, N_max=8.
  int input_size() const;

  /// Build the normalized input vector.
  /// `history` holds per-round lossless flags, most recent first; missing
  /// entries (cold start) are treated as lossless.
  std::vector<double> build(const GlobalSnapshot& snapshot, int n_tx,
                            const std::deque<bool>& history) const;

  /// Normalizations exposed for tests.
  static double normalize_radio_on(double ms, double slot_ms);
  static double normalize_reliability(double reliability);

 private:
  FeatureConfig cfg_;
};

}  // namespace dimmer::core
