// Interference scenario factories mirroring the paper's evaluation setups
// (§V-A "Interference scenarios") plus the schedule used to collect training
// traces. All scenarios are deterministic given their seed.
#pragma once

#include <cstdint>

#include "phy/interference.hpp"
#include "phy/topology.hpp"
#include "sim/time.hpp"

namespace dimmer::core {

/// The paper's two TelosB jammer positions on the office testbed (Fig. 4a):
/// one near the middle of the deployment (moderately perturbing the
/// coordinator's reception) and one toward the far end.
phy::Vec2 office_jammer_position(const phy::Topology& topo, int which);

/// Static JamLab interference at a given occupancy (e.g. 0.30 = "a 13 ms
/// burst at 0 dBm, repeated every 43 ms"), on `channel`, from both office
/// jammers. duty = 0 adds nothing.
void add_static_jamming(phy::InterferenceField& field,
                        const phy::Topology& topo, double duty,
                        phy::Channel channel = phy::kControlChannel);

/// The Fig. 4c/4d dynamic scenario: jammers off for 7 min, 30% interference
/// for 5 min, off for 5 min, 5% interference for 5 min, off afterwards.
void add_dynamic_jamming(phy::InterferenceField& field,
                         const phy::Topology& topo,
                         phy::Channel channel = phy::kControlChannel,
                         sim::TimeUs origin = 0);

/// Daytime office background (uncontrolled WiFi + Bluetooth PANs) — the
/// paper's testbed "shares the spectrum ... during work hours".
void add_office_ambient(phy::InterferenceField& field,
                        const phy::Topology& topo, std::uint64_t seed = 5);

/// Training-trace schedule: alternating segments of calm and JamLab bursts
/// with randomized duty cycles and durations, "collected over multiple days,
/// for different times of the day", predominantly 802.15.4 jamming.
/// Segments cover absolute simulation time [0, until_time); pass the end of
/// your collection window (start time + steps * round period).
void add_training_schedule(phy::InterferenceField& field,
                           const phy::Topology& topo, sim::TimeUs until_time,
                           std::uint64_t seed,
                           phy::Channel channel = phy::kControlChannel);

}  // namespace dimmer::core
