// Central adaptivity controllers: the interface the Dimmer coordinator calls
// at the end of every round, plus the DQN-backed and static implementations.
// (The PID baseline implements the same interface in src/baselines.)
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/features.hpp"
#include "core/types.hpp"
#include "obs/trace.hpp"
#include "rl/quantized.hpp"

namespace dimmer::core {

/// The three actions of the paper's DQN (§IV-B "Action space").
enum class AdaptAction { kDecrease = 0, kMaintain = 1, kIncrease = 2 };

/// Apply an action to the current parameter, clamped to [1, n_max]:
/// the coordinator never commands a global N_TX of 0 (that would silence
/// every relay; N_TX = 0 exists only as the per-node passive role).
int apply_action(int n_tx, AdaptAction a, int n_max = kNMax);

/// Decides the global retransmission parameter once per round.
class AdaptivityController {
 public:
  virtual ~AdaptivityController() = default;

  /// Called by the coordinator at the end of a round. `snapshot` is the
  /// coordinator's global view; `round_lossless` its estimate of whether the
  /// finished round suffered any loss. Returns the N_TX to disseminate in
  /// the next control slot.
  virtual int decide(const GlobalSnapshot& snapshot, bool round_lossless,
                     int current_n_tx) = 0;

  virtual const char* name() const = 0;

  /// Discards accumulated adaptation state (loss history, integrators).
  /// Called on a *cold* coordinator failover: the backup starts from a blank
  /// controller rather than inheriting the dead coordinator's memory.
  /// Stateless controllers need not override.
  virtual void reset() {}

  /// Optional observability hooks; default implementation ignores them so
  /// controllers without interesting internals need not care.
  virtual void set_instrumentation(obs::Instrumentation) {}
};

/// Always returns the same value (the paper's "static LWB, N_TX = 3").
class StaticController : public AdaptivityController {
 public:
  explicit StaticController(int n_tx);
  int decide(const GlobalSnapshot&, bool, int) override { return n_tx_; }
  const char* name() const override { return "static"; }

 private:
  int n_tx_;
};

/// The embedded deep Q-network controller: builds the Table-I feature vector,
/// runs fixed-point inference, applies the greedy action.
class DqnController : public AdaptivityController {
 public:
  DqnController(rl::QuantizedMlp policy, FeatureConfig features);

  int decide(const GlobalSnapshot& snapshot, bool round_lossless,
             int current_n_tx) override;
  const char* name() const override { return "dqn"; }
  void reset() override {
    history_.clear();
    last_features_.clear();
  }
  void set_instrumentation(obs::Instrumentation instr) override {
    instr_ = instr;
  }

  /// Most recent input vector (diagnostics / tests).
  const std::vector<double>& last_features() const { return last_features_; }
  const FeatureBuilder& features() const { return features_; }

 private:
  rl::QuantizedMlp policy_;
  FeatureBuilder features_;
  std::deque<bool> history_;
  std::vector<double> last_features_;
  obs::Instrumentation instr_;
  std::uint64_t decisions_ = 0;
};

}  // namespace dimmer::core
