#include "core/scenarios.hpp"

#include <algorithm>
#include <memory>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dimmer::core {

namespace {
struct Bounds {
  double minx = 1e18, maxx = -1e18, miny = 1e18, maxy = -1e18;
};

Bounds bounds_of(const phy::Topology& topo) {
  Bounds b;
  for (int i = 0; i < topo.size(); ++i) {
    phy::Vec2 p = topo.position(i);
    b.minx = std::min(b.minx, p.x);
    b.maxx = std::max(b.maxx, p.x);
    b.miny = std::min(b.miny, p.y);
    b.maxy = std::max(b.maxy, p.y);
  }
  return b;
}
}  // namespace

phy::Vec2 office_jammer_position(const phy::Topology& topo, int which) {
  DIMMER_REQUIRE(which == 0 || which == 1, "two jammers exist: 0 and 1");
  Bounds b = bounds_of(topo);
  double midy = 0.5 * (b.miny + b.maxy);
  if (which == 0)  // nearer the coordinator's end, mid corridor
    return {b.minx + 0.30 * (b.maxx - b.minx), midy};
  return {b.minx + 0.72 * (b.maxx - b.minx), midy};
}

void add_static_jamming(phy::InterferenceField& field,
                        const phy::Topology& topo, double duty,
                        phy::Channel channel) {
  DIMMER_REQUIRE(duty >= 0.0 && duty <= 0.95, "duty out of [0,0.95]");
  if (duty <= 0.0) return;
  for (int j = 0; j < 2; ++j) {
    auto cfg = phy::BurstJammer::jamlab(office_jammer_position(topo, j), duty,
                                        channel,
                                        0x1A77ULL + static_cast<std::uint64_t>(j));
    // Offset the second jammer's phase so bursts are not synchronized.
    cfg.phase_us = j == 0 ? 0 : cfg.period_us / 2;
    field.add(std::make_unique<phy::BurstJammer>(cfg));
  }
}

void add_dynamic_jamming(phy::InterferenceField& field,
                         const phy::Topology& topo, phy::Channel channel,
                         sim::TimeUs origin) {
  // 0-7 min: calm | 7-12 min: 30% | 12-17 min: calm | 17-22 min: 5% | calm.
  struct Phase {
    double duty;
    sim::TimeUs start, stop;
  };
  const Phase phases[] = {
      {0.30, sim::minutes(7), sim::minutes(12)},
      {0.05, sim::minutes(17), sim::minutes(22)},
  };
  for (const Phase& ph : phases) {
    for (int j = 0; j < 2; ++j) {
      auto cfg = phy::BurstJammer::jamlab(
          office_jammer_position(topo, j), ph.duty, channel,
          0x2B88ULL + static_cast<std::uint64_t>(j) +
              static_cast<std::uint64_t>(ph.start));
      cfg.start_us = origin + ph.start;
      cfg.stop_us = origin + ph.stop;
      cfg.phase_us = j == 0 ? 0 : cfg.period_us / 2;
      field.add(std::make_unique<phy::BurstJammer>(cfg));
    }
  }
}

void add_office_ambient(phy::InterferenceField& field,
                        const phy::Topology& topo, std::uint64_t seed) {
  Bounds b = bounds_of(topo);
  // Background emitters spread through the offices (WiFi APs, Bluetooth
  // PANs from cellphones and headphones) so most of the deployment sees
  // occasional daytime bursts.
  const double fx[] = {0.15, 0.5, 0.85};
  for (int i = 0; i < 3; ++i) {
    phy::AmbientInterferer::Config cfg;
    cfg.position = {b.minx + fx[i] * (b.maxx - b.minx),
                    0.5 * (b.miny + b.maxy) + 2.0};
    cfg.seed = util::hash_u64(seed, static_cast<std::uint64_t>(i));
    cfg.tag = 0x3C99ULL + static_cast<std::uint64_t>(i);
    field.add(std::make_unique<phy::AmbientInterferer>(cfg));
  }
}

void add_training_schedule(phy::InterferenceField& field,
                           const phy::Topology& topo, sim::TimeUs until_time,
                           std::uint64_t seed, phy::Channel channel) {
  DIMMER_REQUIRE(until_time > 0, "until_time must be positive");
  const sim::TimeUs duration = until_time;
  util::Pcg32 rng(seed);
  sim::TimeUs t = 0;
  std::uint64_t segment = 0;
  while (t < duration) {
    // Segment lengths of 1.5-6 minutes; ~40% calm, otherwise a randomized
    // JamLab duty between 5% and 35%, from one or both jammers.
    sim::TimeUs len = sim::seconds(rng.uniform_int(90, 360));
    bool calm = rng.uniform() < 0.4;
    if (!calm) {
      double duty = rng.uniform(0.05, 0.35);
      int jammers = rng.bernoulli(0.7) ? 2 : 1;
      for (int j = 0; j < jammers; ++j) {
        auto cfg = phy::BurstJammer::jamlab(
            office_jammer_position(topo, j), duty, channel,
            util::hash_u64(seed, segment, static_cast<std::uint64_t>(j)));
        cfg.start_us = t;
        cfg.stop_us = std::min(t + len, duration);
        cfg.phase_us = j == 0 ? 0 : cfg.period_us / 2;
        field.add(std::make_unique<phy::BurstJammer>(cfg));
      }
    }
    t += len;
    ++segment;
  }
  add_office_ambient(field, topo, util::hash_u64(seed, 0xA3BULL));
}

}  // namespace dimmer::core
