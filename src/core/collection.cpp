#include "core/collection.hpp"

#include <cmath>
#include <deque>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dimmer::core {

CollectionResult run_collection(DimmerNetwork& net,
                                const CollectionConfig& cfg) {
  DIMMER_REQUIRE(cfg.n_sources >= 1, "need at least one source");
  DIMMER_REQUIRE(cfg.mean_interarrival > 0, "mean_interarrival must be > 0");
  DIMMER_REQUIRE(cfg.duration > 0, "duration must be positive");
  const int n = net.executor().topology().size();
  DIMMER_REQUIRE(cfg.n_sources < n, "more sources than nodes");

  // Pick sources: lowest ids, skipping sink and coordinator.
  std::vector<phy::NodeId> source_ids;
  for (phy::NodeId i = 0; i < n &&
                          static_cast<int>(source_ids.size()) < cfg.n_sources;
       ++i) {
    if (i == net.sink() || i == net.coordinator()) continue;
    source_ids.push_back(i);
  }
  DIMMER_REQUIRE(static_cast<int>(source_ids.size()) == cfg.n_sources,
                 "could not pick enough sources");

  util::Pcg32 rng(util::hash_u64(cfg.seed, 0xC0117ULL));
  auto exponential = [&rng](double mean) {
    double u = rng.uniform();
    if (u < 1e-12) u = 1e-12;
    return -mean * std::log(u);
  };

  // Next arrival time per source, and per-source pending packet queue.
  const sim::TimeUs t_end = net.now() + cfg.duration;
  std::vector<sim::TimeUs> next_arrival(source_ids.size());
  std::vector<std::deque<long>> queue(source_ids.size());
  for (std::size_t i = 0; i < source_ids.size(); ++i)
    next_arrival[i] =
        net.now() + static_cast<sim::TimeUs>(
                        exponential(static_cast<double>(cfg.mean_interarrival)));

  CollectionResult result;
  long next_packet_id = 0;
  util::RunningStats radio, n_tx;
  sim::TimeUs total_radio = 0;

  while (net.now() < t_end) {
    // Arrivals up to the start of this round.
    for (std::size_t i = 0; i < source_ids.size(); ++i) {
      while (next_arrival[i] <= net.now()) {
        queue[i].push_back(next_packet_id++);
        ++result.sent;
        next_arrival[i] += static_cast<sim::TimeUs>(
            exponential(static_cast<double>(cfg.mean_interarrival)));
      }
    }

    // Every source gets a slot every round (the paper's D-Cube parameters:
    // "10 source-nodes with 1-sec traffic period" at 1 s rounds). A source
    // with an empty queue sends a feedback-only packet; only payload slots
    // count toward the reliability metric.
    std::vector<phy::NodeId> slots(source_ids.begin(), source_ids.end());

    RoundStats rs = net.run_round(slots);
    radio.add(rs.radio_on_ms);
    n_tx.add(rs.n_tx);
    total_radio += rs.total_radio_on_us;
    ++result.rounds;

    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (queue[i].empty()) continue;  // feedback-only slot
      bool sunk = rs.sink_received[i];
      if (sunk) ++result.delivered;
      if (sunk || !cfg.acks) queue[i].pop_front();  // best effort: one shot
    }
  }

  result.reliability =
      result.sent > 0
          ? static_cast<double>(result.delivered) /
                static_cast<double>(result.sent)
          : 1.0;
  result.radio_on_ms = radio.mean();
  result.avg_n_tx = n_tx.mean();
  if (result.rounds > 0)
    result.radio_duty =
        static_cast<double>(total_radio) /
        (static_cast<double>(n) * static_cast<double>(result.rounds) *
         static_cast<double>(net.config().round_period));
  return result;
}

}  // namespace dimmer::core
