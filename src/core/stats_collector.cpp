#include "core/stats_collector.hpp"

#include "util/check.hpp"

namespace dimmer::core {

StatsCollector::StatsCollector(std::size_t prr_window_slots, double slot_ms,
                               std::size_t radio_window_slots)
    : slot_ms_(slot_ms),
      prr_(prr_window_slots),
      radio_ms_avg_(radio_window_slots) {
  DIMMER_REQUIRE(slot_ms > 0.0, "slot_ms must be positive");
}

void StatsCollector::record_reception_slot(bool received,
                                           sim::TimeUs radio_on_us) {
  prr_.add(received ? 1.0 : 0.0);
  radio_ms_avg_.add(sim::to_ms(radio_on_us));
  ++rx_slots_;
}

void StatsCollector::record_energy_only_slot(sim::TimeUs radio_on_us) {
  radio_ms_avg_.add(sim::to_ms(radio_on_us));
}

double StatsCollector::reliability() const {
  return prr_.count() == 0 ? 1.0 : prr_.mean();
}

double StatsCollector::radio_on_ms() const {
  return radio_ms_avg_.count() == 0 ? 0.0 : radio_ms_avg_.mean();
}

FeedbackHeader StatsCollector::snapshot() const {
  return encode_feedback(reliability(), radio_on_ms(), slot_ms_);
}

void StatsCollector::reset() {
  prr_.reset();
  radio_ms_avg_.reset();
  rx_slots_ = 0;
}

}  // namespace dimmer::core
