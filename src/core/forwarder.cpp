#include "core/forwarder.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace dimmer::core {

ForwarderSelection::ForwarderSelection(int n_nodes, phy::NodeId coordinator,
                                       ForwarderConfig cfg)
    : cfg_(cfg), coordinator_(coordinator) {
  DIMMER_REQUIRE(n_nodes >= 2, "need at least two nodes");
  DIMMER_REQUIRE(coordinator >= 0 && coordinator < n_nodes,
                 "coordinator out of range");
  DIMMER_REQUIRE(cfg_.rounds_per_turn >= 1, "rounds_per_turn must be >= 1");
  bandits_.assign(static_cast<std::size_t>(n_nodes),
                  rl::Exp3(2, cfg_.exp3_gamma));
  roles_.assign(static_cast<std::size_t>(n_nodes), true);  // all active
  order_.resize(static_cast<std::size_t>(n_nodes) - 1);
  std::size_t k = 0;
  for (phy::NodeId i = 0; i < n_nodes; ++i)
    if (i != coordinator_) order_[k++] = i;
  reshuffle_order();
}

void ForwarderSelection::reshuffle_order() {
  // Deterministic per-epoch shuffle: geographic spreading comes from the
  // pseudo-random order, and determinism keeps simulations reproducible.
  util::Pcg32 rng(util::hash_u64(cfg_.order_seed, epoch_));
  rng.shuffle(order_);
  order_pos_ = 0;
}

void ForwarderSelection::advance_turn(util::Pcg32& rng) {
  (void)rng;
  if (order_pos_ >= order_.size()) {
    ++epoch_;
    reshuffle_order();
  }
  learner_ = order_[order_pos_++];
  rounds_into_turn_ = 0;
}

void ForwarderSelection::begin_round(util::Pcg32& rng) {
  DIMMER_REQUIRE(!round_open_, "begin_round called twice without end_round");
  if (learner_ < 0 || rounds_into_turn_ >= cfg_.rounds_per_turn)
    advance_turn(rng);

  auto& bandit = bandits_[static_cast<std::size_t>(learner_)];
  learner_arm_ = static_cast<ForwarderArm>(bandit.sample(rng));
  roles_[static_cast<std::size_t>(learner_)] =
      learner_arm_ == ForwarderArm::kActive;
  round_open_ = true;
}

void ForwarderSelection::end_round(double observed_reliability) {
  DIMMER_REQUIRE(round_open_, "end_round without begin_round");
  round_open_ = false;
  ++rounds_into_turn_;

  bool lossless = observed_reliability >= 0.999;
  auto& bandit = bandits_[static_cast<std::size_t>(learner_)];
  double reward;
  if (learner_arm_ == ForwarderArm::kPassive) {
    reward = lossless ? cfg_.passive_reward_lossless
                      : cfg_.passive_reward_lossy;
  } else {
    reward = lossless ? cfg_.active_reward_lossless
                      : cfg_.active_reward_lossy;
  }
  bandit.update(static_cast<std::size_t>(learner_arm_), reward);

  // Stability technique (b): punish network-breaking configurations by
  // reinitialising the passive arm.
  const bool breaking_reset =
      observed_reliability <= cfg_.breaking_reliability &&
      learner_arm_ == ForwarderArm::kPassive;
  if (breaking_reset) {
    bandit.reset_arm(static_cast<std::size_t>(ForwarderArm::kPassive));
    roles_[static_cast<std::size_t>(learner_)] = true;  // recover immediately
  } else if (rounds_into_turn_ >= cfg_.rounds_per_turn) {
    // Between rounds of a turn the learner keeps its sampled role; once the
    // turn ends the next begin_round will freeze it at its best arm.
    roles_[static_cast<std::size_t>(learner_)] =
        bandit.best_arm() == static_cast<std::size_t>(ForwarderArm::kActive);
  }

  ++learning_rounds_;
  if (instr_.metrics) {
    obs::MetricsRegistry& m = *instr_.metrics;
    m.counter("mab.updates") += 1;
    m.counter(learner_arm_ == ForwarderArm::kPassive ? "mab.passive_plays"
                                                     : "mab.active_plays") += 1;
    if (breaking_reset) m.counter("mab.breaking_resets") += 1;
    m.gauge("mab.active_count") = static_cast<double>(active_count());
  }
  if (instr_.trace) {
    obs::TraceEvent e;
    e.kind = "exp3";
    e.round = learning_rounds_ - 1;
    e.node = learner_;
    e.f("arm", static_cast<double>(learner_arm_))
        .f("reward", reward)
        .f("observed_reliability", observed_reliability)
        .f("p_active",
           bandit.probability(static_cast<std::size_t>(ForwarderArm::kActive)))
        .f("p_passive",
           bandit.probability(static_cast<std::size_t>(ForwarderArm::kPassive)))
        .f("breaking_reset", breaking_reset ? 1.0 : 0.0)
        .f("active_count", active_count())
        .f("epoch", static_cast<double>(epoch_));
    instr_.trace->emit(e);
  }
}

void ForwarderSelection::abort_episode(phy::NodeId new_coordinator) {
  if (new_coordinator >= 0) {
    DIMMER_REQUIRE(new_coordinator < static_cast<int>(bandits_.size()),
                   "coordinator out of range");
    coordinator_ = new_coordinator;
  }
  for (auto& b : bandits_) b = rl::Exp3(2, cfg_.exp3_gamma);
  std::fill(roles_.begin(), roles_.end(), true);
  order_.clear();
  for (phy::NodeId i = 0; i < static_cast<int>(bandits_.size()); ++i)
    if (i != coordinator_) order_.push_back(i);
  learner_ = -1;
  rounds_into_turn_ = 0;
  round_open_ = false;
  ++epoch_;
  reshuffle_order();
  if (instr_.metrics) instr_.metrics->counter("mab.episode_aborts") += 1;
}

void ForwarderSelection::set_coordinator(phy::NodeId new_coordinator) {
  DIMMER_REQUIRE(new_coordinator >= 0 &&
                     new_coordinator < static_cast<int>(bandits_.size()),
                 "coordinator out of range");
  if (new_coordinator == coordinator_) return;
  // The new coordinator's slot in the turn order goes to the old one.
  for (auto& id : order_)
    if (id == new_coordinator) id = coordinator_;
  roles_[static_cast<std::size_t>(new_coordinator)] = true;
  if (learner_ == new_coordinator) {
    // A coordinator cannot be mid-turn; force the turn to end so the next
    // begin_round advances to another device.
    rounds_into_turn_ = cfg_.rounds_per_turn;
    round_open_ = false;
  }
  coordinator_ = new_coordinator;
}

void ForwarderSelection::apply_breaking_penalty(
    const std::vector<double>& local_views) {
  DIMMER_REQUIRE(local_views.size() == roles_.size(),
                 "one local view per node required");
  for (std::size_t i = 0; i < roles_.size(); ++i) {
    if (roles_[i]) continue;  // forwarders are not to blame
    if (local_views[i] > cfg_.breaking_reliability) continue;
    bandits_[i].reset_arm(static_cast<std::size_t>(ForwarderArm::kPassive));
    roles_[i] = true;
    if (instr_.metrics) instr_.metrics->counter("mab.penalty_resets") += 1;
  }
}

int ForwarderSelection::active_count() const {
  return static_cast<int>(
      std::count(roles_.begin(), roles_.end(), true));
}

const rl::Exp3& ForwarderSelection::bandit(phy::NodeId n) const {
  DIMMER_REQUIRE(n >= 0 && n < static_cast<int>(bandits_.size()),
                 "node out of range");
  return bandits_[static_cast<std::size_t>(n)];
}

}  // namespace dimmer::core
