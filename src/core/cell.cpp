#include "core/cell.hpp"

#include <string>
#include <utility>

#include "util/check.hpp"

namespace dimmer::core {

Cell::Cell(const phy::Topology& global_topo,
           const phy::InterferenceField& interference, CellConfig cfg,
           std::unique_ptr<AdaptivityController> controller, std::uint64_t seed)
    : cfg_(std::move(cfg)), topo_(global_topo.restricted(cfg_.members)) {
  DIMMER_REQUIRE(cfg_.cell_id >= 0, "cell_id must be >= 0");

  global_to_local_.assign(static_cast<std::size_t>(global_topo.size()), -1);
  for (std::size_t i = 0; i < cfg_.members.size(); ++i)
    global_to_local_[static_cast<std::size_t>(cfg_.members[i])] =
        static_cast<phy::NodeId>(i);

  // Remap the GLOBAL-id protocol knobs into the cell-local id space.
  ProtocolConfig local = cfg_.protocol;
  if (local.sink >= 0) local.sink = to_local(local.sink);
  for (phy::NodeId& b : local.failover.backups) b = to_local(b);
  for (phy::NodeId& f : local.feedback_nodes) f = to_local(f);

  const phy::NodeId coord = to_local(cfg_.coordinator);
  if (cfg_.sparse_links) {
    links_ = std::make_unique<phy::SparseLinkModel>(topo_);
    net_ = std::make_unique<DimmerNetwork>(*links_, interference,
                                           std::move(local),
                                           std::move(controller), coord, seed);
  } else {
    net_ = std::make_unique<DimmerNetwork>(topo_, interference,
                                           std::move(local),
                                           std::move(controller), coord, seed);
  }
}

bool Cell::is_member(phy::NodeId global) const {
  return global >= 0 &&
         global < static_cast<phy::NodeId>(global_to_local_.size()) &&
         global_to_local_[static_cast<std::size_t>(global)] >= 0;
}

phy::NodeId Cell::to_local(phy::NodeId global) const {
  DIMMER_REQUIRE(is_member(global), "node is not a member of this cell");
  return global_to_local_[static_cast<std::size_t>(global)];
}

phy::NodeId Cell::to_global(phy::NodeId local) const {
  DIMMER_REQUIRE(local >= 0 && local < size(), "local id out of range");
  return cfg_.members[static_cast<std::size_t>(local)];
}

const RoundStats& Cell::run_round(
    const std::vector<phy::NodeId>& local_sources) {
  net_->run_round_into(local_sources, round_buf_);
  return round_buf_;
}

void Cell::set_instrumentation(obs::Instrumentation instr) {
  if (instr.trace != nullptr) {
    tagged_.emplace(instr.trace, "cell", std::to_string(cfg_.cell_id));
    instr.trace = &*tagged_;
  } else {
    tagged_.reset();
  }
  net_->set_instrumentation(instr);
  sched_.set_instrumentation(instr);
}

}  // namespace dimmer::core
