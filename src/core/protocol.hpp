// The Dimmer protocol orchestrator.
//
// DimmerNetwork simulates an entire deployment running Dimmer (or one of the
// baselines sharing its round structure): it executes LWB rounds over the
// flood engine, maintains every node's statistics collector and global
// snapshot, runs the coordinator's adaptivity controller at the end of each
// round, and grants multi-armed-bandit learning turns during calm periods.
//
// The per-round data flow follows the paper's Fig. 1:
//   control slot (schedule + N_TX command) -> data slots with piggybacked
//   2-byte feedback headers -> coordinator aggregates feedback -> controller
//   (DQN / PID / static) decides the next N_TX -> next round.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/controller.hpp"
#include "core/forwarder.hpp"
#include "core/stats_collector.hpp"
#include "core/types.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "lwb/round.hpp"
#include "phy/interference.hpp"
#include "phy/topology.hpp"
#include "util/rng.hpp"

namespace dimmer::core {

/// Coordinator failover policy. The deployment designates an ordered list of
/// backup coordinators; a backup that misses `takeover_silent_rounds`
/// consecutive schedules assumes the coordinator is dead and takes over
/// (highest-priority alive backup wins — priorities keep simultaneous
/// takeovers from partitioning the network).
struct FailoverConfig {
  /// Backup coordinators in takeover-priority order. Empty = no failover:
  /// a dead coordinator orphans the network for good.
  std::vector<phy::NodeId> backups;
  /// Consecutive schedule misses before a backup takes over.
  int takeover_silent_rounds = 3;
  /// Warm: the backup inherits the adaptation state (controller memory,
  /// MAB episode continue). Cold: fresh controller, Exp3 episode aborted
  /// network-wide — models a backup that held no replicated state.
  enum class Mode { kWarm, kCold };
  Mode mode = Mode::kWarm;
};

struct ProtocolConfig {
  lwb::RoundConfig round;
  sim::TimeUs round_period = sim::seconds(4);  ///< paper: 4 s (1 s in D-Cube)
  /// Wall-clock time the simulation starts at (affects day/night ambient
  /// interference profiles; the paper runs some scenarios "during the day").
  sim::TimeUs start_time = 0;
  int initial_n_tx = 3;
  int n_max = kNMax;
  FeatureConfig features;
  std::size_t stats_window_slots = 36;  ///< PRR window: ~two rounds of slots
  std::size_t radio_window_slots = 20;  ///< radio-on window: ~one round
  /// Collection sink for point-to-point reliability; -1 = the coordinator.
  phy::NodeId sink = -1;
  /// Nodes accounted in the interference evaluation (empty = all; §IV-E).
  std::vector<phy::NodeId> feedback_nodes;
  /// Snapshot freshness window in rounds (see GlobalSnapshot).
  int feedback_freshness_rounds = 1;
  /// Enable the distributed forwarder selection (MAB).
  bool forwarder_selection = false;
  ForwarderConfig forwarder;
  /// The coordinator allows an MAB learning round only after this many
  /// consecutive lossless rounds ("If no interference is detected...").
  int mab_calm_rounds = 2;
  /// Coordinator failover policy (see FailoverConfig).
  FailoverConfig failover;
  /// Deterministic scripted faults applied on the round timeline. The
  /// injector draws from its own forked RNG stream, so an empty plan is
  /// bit-identical to no plan at all (asserted by the fault tests).
  fault::FaultPlan fault_plan;
};

/// Ground-truth and coordinator-view metrics of one executed round.
struct RoundStats {
  std::uint64_t round = 0;
  sim::TimeUs start_us = 0;
  int n_tx = 0;               ///< value commanded in this round's control slot
  bool mab_round = false;     ///< true if this was an MAB learning round
  int active_forwarders = 0;
  phy::NodeId coordinator = -1;  ///< coordinator that ran this round
  bool orphaned = false;      ///< the coordinator was dead; no schedule flood
  bool failover = false;      ///< a backup took over before this round

  double reliability = 1.0;   ///< delivered (slot,destination) pairs ratio
  bool lossless = true;       ///< ground truth: every pair delivered
  double radio_on_ms = 0.0;   ///< mean per-slot radio-on across nodes
  sim::TimeUs total_radio_on_us = 0;  ///< summed across all nodes (for duty)
  bool coordinator_lossless = true;  ///< the coordinator's own estimate
  int desynchronized = 0;     ///< nodes without a usable schedule

  std::vector<phy::NodeId> sources;  ///< data-slot sources, slot order
  std::vector<bool> sink_received;   ///< per data slot: sink got the packet
};

class DimmerNetwork {
 public:
  /// The controller decides N_TX each round; pass a StaticController for
  /// plain LWB, a DqnController for Dimmer, or the PID baseline.
  DimmerNetwork(const phy::Topology& topo,
                const phy::InterferenceField& interference, ProtocolConfig cfg,
                std::unique_ptr<AdaptivityController> controller,
                phy::NodeId coordinator, std::uint64_t seed);

  /// Same network over an external LinkModel backend (non-owning; must
  /// outlive the network). A federation cell at city scale binds a
  /// SparseLinkModel over its restricted sub-topology this way.
  DimmerNetwork(phy::LinkModel& links,
                const phy::InterferenceField& interference, ProtocolConfig cfg,
                std::unique_ptr<AdaptivityController> controller,
                phy::NodeId coordinator, std::uint64_t seed);

  /// Executes one round with the given data-slot sources and advances time
  /// by the round period.
  RoundStats run_round(const std::vector<phy::NodeId>& sources);

  /// Hot-path variant: identical semantics to run_round, but writes into a
  /// caller-owned RoundStats whose vectors are reused across rounds — with a
  /// stable source count the steady-state round performs no heap
  /// allocations. `out` is overwritten.
  void run_round_into(const std::vector<phy::NodeId>& sources,
                      RoundStats& out);

  // -- Introspection --------------------------------------------------------
  sim::TimeUs now() const { return time_; }
  std::uint64_t round_index() const { return round_idx_; }
  int commanded_n_tx() const { return next_n_tx_; }
  phy::NodeId coordinator() const { return coordinator_; }
  phy::NodeId sink() const;
  const GlobalSnapshot& snapshot(phy::NodeId n) const;
  const StatsCollector& stats(phy::NodeId n) const;
  const AdaptivityController& controller() const { return *controller_; }
  const ForwarderSelection* forwarder_selection() const {
    return fs_ ? &*fs_ : nullptr;
  }
  const ProtocolConfig& config() const { return cfg_; }
  const lwb::RoundExecutor& executor() const { return executor_; }
  /// The pooled RoundResult of the most recent run_round: full per-slot
  /// flood outcomes (a federation gateway checks whether it received a slot
  /// before bridging it; the bit-identity tests compare these per node).
  /// Valid until the next run_round.
  const lwb::RoundResult& last_round_result() const { return round_buf_; }
  /// The protocol RNG (read-only): lets tests assert two networks stayed in
  /// RNG lockstep — equal streams after N rounds means every draw matched.
  const util::Pcg32& rng() const { return rng_; }

  /// A node's local view of the last round's reliability (used for MAB
  /// rewards): its own reception ratio combined with the worst feedback
  /// header it heard.
  double local_reliability_view(phy::NodeId n) const;

  /// Attaches observability hooks and propagates them down the stack
  /// (round executor -> flood engine, controller, forwarder selection).
  /// Purely observational: simulation results are identical with or
  /// without a sink attached.
  void set_instrumentation(obs::Instrumentation instr);

  /// Crash-fault injection: mark a node failed (radio permanently off) or
  /// recovered. Failing the coordinator orphans subsequent rounds until a
  /// configured backup takes over (see FailoverConfig). Note that the
  /// coordinator cannot distinguish a crashed node from a jammed one: unless
  /// the node is removed from the feedback subset, its missing feedback keeps
  /// reading as 0% reliability and the controller escalates N_TX (by design —
  /// see the fault-injection tests).
  void set_node_failed(phy::NodeId n, bool failed);
  bool node_failed(phy::NodeId n) const;

  /// Number of coordinator takeovers so far.
  int failover_count() const { return failover_count_; }
  /// Rounds from the most recent takeover until every alive node was back in
  /// sync; -1 while recovery is still in progress or before any failover.
  int last_rounds_to_resync() const { return last_rounds_to_resync_; }
  /// Lowest ground-truth reliability observed during the recovery window of
  /// the most recent failover (1.0 before any failover).
  double recovery_min_reliability() const { return recovery_min_rel_; }
  const fault::FaultInjector* fault_injector() const {
    return injector_ ? &*injector_ : nullptr;
  }

 private:
  void init(std::uint64_t seed);  // shared ctor body (both LinkModel seams)
  void apply_faults(RoundStats& out, lwb::RoundDisruptions& dis);
  void maybe_failover(RoundStats& out);
  void update_failover_tracking(const lwb::RoundResult& rr,
                                const RoundStats& out);

  void process_round(const lwb::RoundResult& rr,
                     const std::vector<phy::NodeId>& sources,
                     RoundStats& out);

  const phy::Topology* topo_;
  ProtocolConfig cfg_;
  lwb::RoundExecutor executor_;
  std::unique_ptr<AdaptivityController> controller_;
  phy::NodeId coordinator_;
  util::Pcg32 rng_;

  std::vector<lwb::NodeState> states_;
  std::vector<StatsCollector> stats_;
  std::vector<GlobalSnapshot> snapshots_;
  std::optional<ForwarderSelection> fs_;

  sim::TimeUs time_ = 0;
  std::uint64_t round_idx_ = 0;
  int next_n_tx_ = 3;
  int calm_rounds_ = 0;
  // Learner's local view of the last executed round (for MAB end_round).
  std::vector<double> local_view_;
  obs::Instrumentation instr_;
  // Round-result pool and per-round scratch, reused across rounds so the
  // steady-state flood path performs no heap allocations (DESIGN.md §10).
  lwb::RoundResult round_buf_;
  std::vector<int> rx_ok_scratch_;
  std::vector<int> rx_expected_scratch_;
  std::vector<double> worst_header_scratch_;

  // -- Fault injection & failover ------------------------------------------
  std::optional<fault::FaultInjector> injector_;  // only with a non-empty plan
  std::vector<int> backup_silence_;  ///< consecutive missed schedules/backup
  int failover_count_ = 0;
  // Recovery tracking for the most recent failover.
  bool recovering_ = false;
  std::uint64_t takeover_round_ = 0;
  int last_rounds_to_resync_ = -1;
  double recovery_min_rel_ = 1.0;
};

}  // namespace dimmer::core
