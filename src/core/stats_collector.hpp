// Per-node statistics collector (paper Fig. 3, "statistics collector").
//
// "Each device continuously monitors its performance, i.e., its local packet
// reception rate and average radio-on time" over a sliding window of recent
// slots. The snapshot() a source embeds in its data packet is taken *before*
// its own slot (§IV-E "Feedback latency").
#pragma once

#include <cstddef>

#include "core/feedback.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

namespace dimmer::core {

class StatsCollector {
 public:
  /// `prr_window_slots`: slots covered by the packet-reception-rate average
  /// (roughly two rounds in the paper's deployments — loss memory).
  /// `radio_window_slots`: slots covered by the radio-on average ("radio-on
  /// time averaged over the last floods"). This window must be short —
  /// about one round — so that the energy feedback tracks the *current*
  /// N_TX instead of lagging a parameter switch and confusing the DQN.
  /// `slot_ms`: maximum slot duration, for radio-on normalization.
  explicit StatsCollector(std::size_t prr_window_slots = 36,
                          double slot_ms = 20.0,
                          std::size_t radio_window_slots = 20);

  /// Record a slot in which this node expected to receive a packet.
  void record_reception_slot(bool received, sim::TimeUs radio_on_us);

  /// Record a slot with radio cost but no reception expectation (the node's
  /// own TX slot, control slots, silent slots).
  void record_energy_only_slot(sim::TimeUs radio_on_us);

  /// Packet reception rate over the window, in [0,1]; 1.0 before any data.
  double reliability() const;

  /// Average radio-on per slot over the window, in milliseconds.
  double radio_on_ms() const;

  /// Quantized 2-byte header of the current values.
  FeedbackHeader snapshot() const;

  std::size_t reception_slots_seen() const { return rx_slots_; }
  void reset();

 private:
  double slot_ms_;
  util::WindowMean prr_;
  util::WindowMean radio_ms_avg_;
  std::size_t rx_slots_ = 0;
};

}  // namespace dimmer::core
