// Multi-cell federation of LWB cells with gateway bridging (DESIGN.md §15).
//
// The paper's central-coordinator design is its own stated scalability
// limit: one LWB host schedules every node. Federation composes many cells —
// each a full single-cell core (core::Cell: DimmerNetwork + scheduler +
// failover) over a restricted sub-topology — into one city-scale network:
//
//  - Deterministic geometric partitioner: nodes are sorted by position
//    (x, then y, then id) and split into `n_cells` contiguous stripes of
//    near-equal size. Same topology + same cell count = same partition,
//    on every machine and for any worker count.
//  - Cell tree + gateways: stripes form a path; each cell's parent is its
//    neighbor stripe toward the root cell (the one containing the global
//    sink). For every child/parent edge the strongest cross-stripe link is
//    found and its child-side endpoint becomes the *gateway*: a node that is
//    a member of BOTH cells. The child cell's protocol sink points at the
//    gateway, so RoundStats::sink_received answers "did the gateway hear
//    this slot?" — packets the gateway heard are queued and re-sourced by
//    the gateway in the parent cell's next round, hop by hop to the root.
//  - Offset round schedules: a cell's round starts at
//    (tree depth % 2) * round_period / 2 into the federation epoch. The
//    stripe tree is bipartite, so a gateway's two cells always run in
//    opposite phases — it is never in two overlapping rounds.
//  - Inter-cell handoff: coordinator failover (FailoverConfig) is per cell;
//    when a cell's coordinator AND all its backups die, its rounds stay
//    orphaned, and after `handoff_silent_epochs` consecutive orphaned
//    epochs the federation declares the cell dead and re-registers its
//    flows in the nearest alive ancestor cell's schedule, sourced at the
//    gateway on the path (a member of that ancestor). The gateway proxies
//    the orphaned flows — the neighbor's coordinator now allocates their
//    slots. If the root cell dies, the federation is lost.
//  - Worker partitioning: cells of one phase share no mutable state (own
//    RNG streams, own metrics registries, pure interference field), so each
//    phase fans out across `workers` threads — cells are assigned to
//    workers by greedy size-balancing (largest first, deterministic
//    tie-break). Results are bit-identical for ANY worker count; only trace
//    line order may vary (same caveat as parallel trials).
//
// Determinism: per-cell RNG seeds derive from hash_u64(seed, cell_id);
// bridging/handoff/accounting run single-threaded at phase barriers in
// ascending cell order. bench_city_scale runs federations through
// bench::run_sweep, so BENCH_city_scale.json is byte-identical for any
// DIMMER_JOBS / campaign shard count on top.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/cell.hpp"

namespace dimmer::core {

struct FederationConfig {
  int n_cells = 2;
  /// Per-cell protocol template. Cloned into every cell; sink/backups are
  /// overridden per cell (see federation rules above). round_period is the
  /// epoch length shared by all cells.
  ProtocolConfig protocol;
  /// Global sink node; its stripe becomes the root cell. Also the delivery
  /// target of every flow.
  phy::NodeId sink = 0;
  /// Cells back their flood engines with SparseLinkModel (city scale).
  bool sparse_links = true;
  /// Per-cell backup coordinators auto-assigned (the next N lowest own-node
  /// ids after the coordinator; the cell's own gateway is never picked for
  /// leadership, so a leadership wipe-out leaves the handoff proxy alive).
  /// 0 disables failover entirely.
  int auto_backups = 2;
  /// Consecutive fully-orphaned epochs before a dead cell's flows hand off.
  int handoff_silent_epochs = 3;
  /// Scheduler slot budget per cell round (streams first, then bridged).
  std::size_t max_slots_per_round = 16;
  /// Bridge queue cap per cell; oldest packets drop beyond it.
  std::size_t max_bridge_backlog = 64;
  /// Threads stepping cells within one phase. 1 = fully sequential (and the
  /// only mode the zero-allocation steady-state audit covers).
  int workers = 1;
};

/// One epoch's aggregate outcome (every cell ran exactly one round).
struct FederationStats {
  std::uint64_t epoch = 0;
  int cells_alive = 0;
  int orphaned_cells = 0;  ///< cells whose round ran without a coordinator
  double min_reliability = 1.0;   ///< across alive cells
  double mean_reliability = 1.0;  ///< across alive cells
  std::uint64_t originated = 0;   ///< new packets sourced this epoch
  std::uint64_t bridged = 0;      ///< packets queued at gateways this epoch
  std::uint64_t delivered = 0;    ///< packets that reached the sink this epoch
  sim::TimeUs total_radio_on_us = 0;  ///< summed across all cells
  int handoffs = 0;               ///< inter-cell handoffs this epoch
  bool lost = false;              ///< root cell died: federation over
};

class Federation {
 public:
  using ControllerFactory =
      std::function<std::unique_ptr<AdaptivityController>(int cell_id)>;

  /// Partitions `topo` into cfg.n_cells cells and builds them. The factory
  /// creates each cell's adaptivity controller (cells never share one).
  Federation(const phy::Topology& topo,
             const phy::InterferenceField& interference, FederationConfig cfg,
             const ControllerFactory& make_controller, std::uint64_t seed);

  // -- Introspection --------------------------------------------------------
  int cell_count() const { return static_cast<int>(cells_.size()); }
  Cell& cell(int c);
  const Cell& cell(int c) const;
  /// Home cell of a global node (gateways belong to their own stripe).
  int cell_of(phy::NodeId global) const;
  /// Parent cell index in the cell tree; -1 for the root cell.
  int parent(int c) const;
  int root() const { return root_; }
  /// Gateway (GLOBAL id) bridging cell `c` toward its parent; -1 for root.
  phy::NodeId gateway(int c) const;
  phy::NodeId sink() const { return cfg_.sink; }
  bool cell_dead(int c) const;
  bool lost() const { return lost_; }
  int handoff_count() const { return handoffs_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t packets_originated() const { return originated_; }
  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t packets_dropped() const { return dropped_; }
  /// Mean sink latency of delivered packets, in epochs (0 before any).
  double mean_delivery_latency_epochs() const;
  /// Per-cell metrics registry (cells never share one across threads).
  obs::MetricsRegistry& cell_metrics(int c);

  /// Deterministic greedy size-balanced assignment of `sizes` items across
  /// `workers` bins (largest item first to the least-loaded bin; ties to the
  /// lowest index). Exposed for the load-balance tests.
  static std::vector<int> balance(const std::vector<int>& sizes, int workers);

  // -- Traffic --------------------------------------------------------------
  /// Registers a periodic flow from a global source node toward the sink.
  /// The flow schedules in the source's home cell (until a handoff moves
  /// it). Returns a federation-wide flow id.
  std::size_t add_flow(phy::NodeId global_source, sim::TimeUs ipi);

  /// Marks a node failed/recovered in EVERY cell it is a member of (a
  /// gateway lives in two cells; a physical crash must hit both).
  void fail_node(phy::NodeId global, bool failed);
  /// Fails cell `c`'s current coordinator and every configured backup —
  /// the inter-cell handoff trigger (bench_city_scale's kill scenario).
  void fail_cell_leadership(int c);

  /// Runs one round in every cell (phase by phase), bridges gateway
  /// traffic, and advances the handoff state machine.
  FederationStats run_epoch();

  /// Per-cell trace tagging (cell=<id>); pass a thread-safe sink when
  /// workers > 1. Metrics flow into the per-cell registries regardless.
  void set_instrumentation(obs::TraceSink* trace);

 private:
  struct Flow {
    phy::NodeId source = -1;  ///< global id of the original source
    sim::TimeUs ipi = 0;
    int home_cell = -1;
    int current_cell = -1;
    std::size_t sched_id = 0;  ///< stream id within current_cell's scheduler
  };
  struct BridgedPacket {
    phy::NodeId origin = -1;      ///< global id (gateway for proxied flows)
    std::uint32_t born_epoch = 0;
  };
  /// FIFO with head compaction: steady-state push/pop never allocates once
  /// capacity has warmed up.
  struct BridgeQueue {
    std::vector<BridgedPacket> buf;
    std::size_t head = 0;
    std::size_t size() const { return buf.size() - head; }
    void push(const BridgedPacket& p) { buf.push_back(p); }
    BridgedPacket pop() {
      BridgedPacket p = buf[head++];
      if (head == buf.size()) {
        buf.clear();
        head = 0;
      }
      return p;
    }
  };

  void compose_sources(int c, FederationStats& st);
  void account_round(int c, FederationStats& st, double& rel_sum,
                     int& rel_cells);
  void handoff(int c, FederationStats& st);

  FederationConfig cfg_;
  const phy::Topology* topo_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> metrics_;
  std::vector<int> cell_of_;          // global node -> home cell
  std::vector<int> parent_;           // cell -> parent cell (-1 = root)
  std::vector<phy::NodeId> gateway_;  // cell -> gateway global id (-1 = root)
  std::vector<std::vector<int>> children_;
  std::vector<int> depth_;
  int root_ = 0;

  std::vector<Flow> flows_;
  std::vector<BridgeQueue> bridge_q_;       // per cell, toward its parent
  std::vector<int> orphan_streak_;          // consecutive orphaned epochs
  std::vector<char> dead_;                  // handed-off cells
  // Per-cell per-epoch slot composition (reused; parallel vectors).
  std::vector<std::vector<phy::NodeId>> sources_;  // local ids
  std::vector<std::vector<BridgedPacket>> origins_;
  // Phase structure: cells grouped by schedule offset, ascending.
  std::vector<std::vector<int>> phases_;

  std::uint64_t epoch_ = 0;
  std::uint64_t originated_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t latency_epochs_sum_ = 0;
  int handoffs_ = 0;
  bool lost_ = false;
};

}  // namespace dimmer::core
