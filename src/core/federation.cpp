#include "core/federation.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dimmer::core {

Federation::Federation(const phy::Topology& topo,
                       const phy::InterferenceField& interference,
                       FederationConfig cfg,
                       const ControllerFactory& make_controller,
                       std::uint64_t seed)
    : cfg_(std::move(cfg)), topo_(&topo) {
  const int n = topo.size();
  const int k = cfg_.n_cells;
  DIMMER_REQUIRE(k >= 1, "n_cells must be >= 1");
  DIMMER_REQUIRE(n >= 2 * k, "need >= 2 nodes per cell");
  DIMMER_REQUIRE(cfg_.sink >= 0 && cfg_.sink < n, "sink out of range");
  DIMMER_REQUIRE(cfg_.workers >= 1, "workers must be >= 1");
  DIMMER_REQUIRE(cfg_.auto_backups >= 0, "auto_backups must be >= 0");
  DIMMER_REQUIRE(cfg_.handoff_silent_epochs >= 1,
                 "handoff_silent_epochs must be >= 1");
  DIMMER_REQUIRE(cfg_.max_slots_per_round > 0,
                 "max_slots_per_round must be > 0");
  DIMMER_REQUIRE(cfg_.max_bridge_backlog > 0,
                 "max_bridge_backlog must be > 0");
  DIMMER_REQUIRE(make_controller != nullptr, "controller factory required");
  // These template knobs are per-cell and federation-owned; a global-id
  // value would silently mean different nodes in different cells.
  DIMMER_REQUIRE(cfg_.protocol.feedback_nodes.empty(),
                 "federation template must leave feedback_nodes empty");
  DIMMER_REQUIRE(cfg_.protocol.failover.backups.empty(),
                 "federation assigns backups; template must leave them empty");
  DIMMER_REQUIRE(cfg_.protocol.fault_plan.empty(),
                 "inject federation faults via fail_node, not a fault plan");

  // --- Geometric stripe partition: sort by (x, y, id), cut into k chunks.
  std::vector<phy::NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](phy::NodeId a, phy::NodeId b) {
    const phy::Vec2 pa = topo.position(a);
    const phy::Vec2 pb = topo.position(b);
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return a < b;
  });
  std::vector<std::vector<phy::NodeId>> own(static_cast<std::size_t>(k));
  std::size_t pos = 0;
  for (int c = 0; c < k; ++c) {
    std::size_t sz = static_cast<std::size_t>(n / k) +
                     (c < n % k ? std::size_t{1} : std::size_t{0});
    auto& o = own[static_cast<std::size_t>(c)];
    o.assign(order.begin() + static_cast<std::ptrdiff_t>(pos),
             order.begin() + static_cast<std::ptrdiff_t>(pos + sz));
    std::sort(o.begin(), o.end());
    pos += sz;
  }
  cell_of_.assign(static_cast<std::size_t>(n), -1);
  for (int c = 0; c < k; ++c)
    for (phy::NodeId id : own[static_cast<std::size_t>(c)])
      cell_of_[static_cast<std::size_t>(id)] = c;

  // --- Cell tree: stripes form a path; parents point toward the root
  // stripe (the sink's). Depth parity decides the schedule phase.
  root_ = cell_of_[static_cast<std::size_t>(cfg_.sink)];
  parent_.assign(static_cast<std::size_t>(k), -1);
  depth_.assign(static_cast<std::size_t>(k), 0);
  children_.assign(static_cast<std::size_t>(k), {});
  for (int c = 0; c < k; ++c) {
    if (c == root_) continue;
    const int p = c < root_ ? c + 1 : c - 1;
    parent_[static_cast<std::size_t>(c)] = p;
    depth_[static_cast<std::size_t>(c)] = c < root_ ? root_ - c : c - root_;
    children_[static_cast<std::size_t>(p)].push_back(c);
  }
  for (auto& ch : children_) std::sort(ch.begin(), ch.end());

  // --- Gateways: per child/parent edge, the strongest cross-stripe link;
  // its child-side endpoint joins BOTH member lists.
  gateway_.assign(static_cast<std::size_t>(k), -1);
  std::vector<std::vector<phy::NodeId>> members = own;
  for (int c = 0; c < k; ++c) {
    if (c == root_) continue;
    const int p = parent_[static_cast<std::size_t>(c)];
    double best = -std::numeric_limits<double>::infinity();
    phy::NodeId best_u = -1;
    for (phy::NodeId u : own[static_cast<std::size_t>(c)]) {
      for (phy::NodeId v : own[static_cast<std::size_t>(p)]) {
        const double g = topo.gain_db(u, v);
        if (g > best) {
          best = g;
          best_u = u;
        }
      }
    }
    DIMMER_REQUIRE(best > -std::numeric_limits<double>::infinity(),
                   "adjacent cells share no surviving link (over-culled?)");
    gateway_[static_cast<std::size_t>(c)] = best_u;
    auto& pm = members[static_cast<std::size_t>(p)];
    auto it = std::lower_bound(pm.begin(), pm.end(), best_u);
    if (it == pm.end() || *it != best_u) pm.insert(it, best_u);
  }

  // --- Build the cells.
  cells_.reserve(static_cast<std::size_t>(k));
  metrics_.reserve(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    const auto& o = own[static_cast<std::size_t>(c)];
    CellConfig cc;
    cc.cell_id = c;
    cc.members = members[static_cast<std::size_t>(c)];
    cc.sparse_links = cfg_.sparse_links;
    cc.schedule_offset =
        (depth_[static_cast<std::size_t>(c)] % 2) * (cfg_.protocol.round_period / 2);
    cc.protocol = cfg_.protocol;
    cc.protocol.start_time += cc.schedule_offset;
    cc.protocol.sink =
        c == root_ ? cfg_.sink : gateway_[static_cast<std::size_t>(c)];
    // Leadership (coordinator + backups) skips the cell's own gateway:
    // bridging and coordination must never share a node, or one crash would
    // sever both the cell and its uplink — and the handoff proxy would be
    // dead on arrival.
    const phy::NodeId gw = gateway_[static_cast<std::size_t>(c)];
    int picked = 0;
    for (phy::NodeId id : o) {
      if (id == gw) continue;
      if (picked == 0)
        cc.coordinator = id;
      else
        cc.protocol.failover.backups.push_back(id);
      if (++picked > cfg_.auto_backups) break;
    }
    cells_.push_back(std::make_unique<Cell>(topo, interference, std::move(cc),
                                            make_controller(c),
                                            util::hash_u64(seed, static_cast<std::uint64_t>(c))));
    metrics_.push_back(std::make_unique<obs::MetricsRegistry>());
    cells_.back()->set_instrumentation(
        obs::Instrumentation{nullptr, metrics_.back().get()});
  }

  // --- Phases: cells grouped by schedule offset, ascending offset, then
  // ascending cell id (accounting order within a phase barrier).
  std::vector<sim::TimeUs> offsets;
  for (int c = 0; c < k; ++c) {
    sim::TimeUs off = cells_[static_cast<std::size_t>(c)]->schedule_offset();
    if (std::find(offsets.begin(), offsets.end(), off) == offsets.end())
      offsets.push_back(off);
  }
  std::sort(offsets.begin(), offsets.end());
  phases_.assign(offsets.size(), {});
  for (int c = 0; c < k; ++c) {
    sim::TimeUs off = cells_[static_cast<std::size_t>(c)]->schedule_offset();
    const std::size_t ph = static_cast<std::size_t>(
        std::find(offsets.begin(), offsets.end(), off) - offsets.begin());
    phases_[ph].push_back(c);
  }

  bridge_q_.resize(static_cast<std::size_t>(k));
  orphan_streak_.assign(static_cast<std::size_t>(k), 0);
  dead_.assign(static_cast<std::size_t>(k), 0);
  sources_.assign(static_cast<std::size_t>(k), {});
  origins_.assign(static_cast<std::size_t>(k), {});
}

Cell& Federation::cell(int c) {
  DIMMER_REQUIRE(c >= 0 && c < cell_count(), "cell index out of range");
  return *cells_[static_cast<std::size_t>(c)];
}

const Cell& Federation::cell(int c) const {
  DIMMER_REQUIRE(c >= 0 && c < cell_count(), "cell index out of range");
  return *cells_[static_cast<std::size_t>(c)];
}

int Federation::cell_of(phy::NodeId global) const {
  DIMMER_REQUIRE(global >= 0 &&
                     global < static_cast<phy::NodeId>(cell_of_.size()),
                 "node id out of range");
  return cell_of_[static_cast<std::size_t>(global)];
}

int Federation::parent(int c) const {
  DIMMER_REQUIRE(c >= 0 && c < cell_count(), "cell index out of range");
  return parent_[static_cast<std::size_t>(c)];
}

phy::NodeId Federation::gateway(int c) const {
  DIMMER_REQUIRE(c >= 0 && c < cell_count(), "cell index out of range");
  return gateway_[static_cast<std::size_t>(c)];
}

bool Federation::cell_dead(int c) const {
  DIMMER_REQUIRE(c >= 0 && c < cell_count(), "cell index out of range");
  return dead_[static_cast<std::size_t>(c)] != 0;
}

double Federation::mean_delivery_latency_epochs() const {
  return delivered_ > 0 ? static_cast<double>(latency_epochs_sum_) /
                              static_cast<double>(delivered_)
                        : 0.0;
}

obs::MetricsRegistry& Federation::cell_metrics(int c) {
  DIMMER_REQUIRE(c >= 0 && c < cell_count(), "cell index out of range");
  return *metrics_[static_cast<std::size_t>(c)];
}

std::vector<int> Federation::balance(const std::vector<int>& sizes,
                                     int workers) {
  DIMMER_REQUIRE(workers >= 1, "workers must be >= 1");
  std::vector<std::size_t> order(sizes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sizes[a] != sizes[b] ? sizes[a] > sizes[b] : a < b;
  });
  std::vector<long long> load(static_cast<std::size_t>(workers), 0);
  std::vector<int> bin(sizes.size(), 0);
  for (std::size_t i : order) {
    const std::size_t w = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    bin[i] = static_cast<int>(w);
    load[w] += sizes[i];
  }
  return bin;
}

std::size_t Federation::add_flow(phy::NodeId global_source, sim::TimeUs ipi) {
  int c = cell_of(global_source);
  phy::NodeId src = global_source;
  // A dead home cell can never schedule the flow: register it directly in
  // the nearest alive ancestor, proxied at the gateway on the path.
  while (c != -1 && dead_[static_cast<std::size_t>(c)]) {
    src = gateway_[static_cast<std::size_t>(c)];
    c = parent_[static_cast<std::size_t>(c)];
  }
  DIMMER_REQUIRE(c != -1, "federation lost: no alive cell for this flow");
  Cell& cell = *cells_[static_cast<std::size_t>(c)];
  Flow f;
  f.source = global_source;
  f.ipi = ipi;
  f.home_cell = cell_of(global_source);
  f.current_cell = c;
  f.sched_id = cell.scheduler().add_stream(cell.to_local(src), ipi,
                                           cell.network().now());
  flows_.push_back(f);
  return flows_.size() - 1;
}

void Federation::fail_node(phy::NodeId global, bool failed) {
  for (auto& cp : cells_)
    if (cp->is_member(global))
      cp->network().set_node_failed(cp->to_local(global), failed);
}

void Federation::fail_cell_leadership(int c) {
  Cell& cl = cell(c);
  fail_node(cl.to_global(cl.network().coordinator()), true);
  for (phy::NodeId b : cl.network().config().failover.backups)
    fail_node(cl.to_global(b), true);
}

void Federation::compose_sources(int c, FederationStats& st) {
  Cell& cl = *cells_[static_cast<std::size_t>(c)];
  std::vector<phy::NodeId>& src = sources_[static_cast<std::size_t>(c)];
  std::vector<BridgedPacket>& org = origins_[static_cast<std::size_t>(c)];
  // Flow slots first (the scheduler's deadline order)...
  cl.scheduler().schedule_round_into(cl.network().now(),
                                     cfg_.max_slots_per_round, src);
  org.clear();
  for (phy::NodeId s : src) {
    org.push_back(
        BridgedPacket{cl.to_global(s), static_cast<std::uint32_t>(epoch_)});
    ++originated_;
    ++st.originated;
  }
  // ...then bridged packets from each child's gateway queue, in child order.
  for (int ch : children_[static_cast<std::size_t>(c)]) {
    BridgeQueue& q = bridge_q_[static_cast<std::size_t>(ch)];
    if (q.size() == 0) continue;
    const phy::NodeId g_local =
        cl.to_local(gateway_[static_cast<std::size_t>(ch)]);
    while (q.size() > 0 && src.size() < cfg_.max_slots_per_round) {
      src.push_back(g_local);
      org.push_back(q.pop());
    }
  }
}

void Federation::account_round(int c, FederationStats& st, double& rel_sum,
                               int& rel_cells) {
  Cell& cl = *cells_[static_cast<std::size_t>(c)];
  const RoundStats& rs = cl.last_round();
  const std::vector<BridgedPacket>& org =
      origins_[static_cast<std::size_t>(c)];

  st.total_radio_on_us += rs.total_radio_on_us;
  if (rs.orphaned) ++st.orphaned_cells;
  if (!dead_[static_cast<std::size_t>(c)]) {
    rel_sum += rs.reliability;
    st.min_reliability = std::min(st.min_reliability, rs.reliability);
    ++rel_cells;
  }

  for (std::size_t s = 0; s < rs.sink_received.size(); ++s) {
    if (!rs.sink_received[s]) continue;
    if (c == root_) {
      ++delivered_;
      ++st.delivered;
      latency_epochs_sum_ += epoch_ - org[s].born_epoch + 1;
    } else {
      BridgeQueue& q = bridge_q_[static_cast<std::size_t>(c)];
      if (q.size() >= cfg_.max_bridge_backlog) {
        (void)q.pop();  // drop-oldest keeps the queue bounded
        ++dropped_;
      }
      q.push(org[s]);
      ++st.bridged;
    }
  }

  // The inter-cell handoff state machine: failover inside the cell gets
  // first shot (a backup takeover clears the orphan streak); only a cell
  // whose coordinator AND backups are all gone stays orphaned long enough.
  if (!dead_[static_cast<std::size_t>(c)]) {
    if (rs.orphaned) {
      if (++orphan_streak_[static_cast<std::size_t>(c)] >=
          cfg_.handoff_silent_epochs)
        handoff(c, st);
    } else {
      orphan_streak_[static_cast<std::size_t>(c)] = 0;
    }
  }
}

void Federation::handoff(int c, FederationStats& st) {
  dead_[static_cast<std::size_t>(c)] = 1;
  ++handoffs_;
  ++st.handoffs;

  int a = parent_[static_cast<std::size_t>(c)];
  phy::NodeId g = gateway_[static_cast<std::size_t>(c)];
  while (a != -1 && dead_[static_cast<std::size_t>(a)]) {
    g = gateway_[static_cast<std::size_t>(a)];
    a = parent_[static_cast<std::size_t>(a)];
  }
  if (a == -1) {
    // The root (or its whole ancestor chain) is gone: nobody can schedule
    // toward the sink anymore.
    lost_ = true;
    st.lost = true;
    for (Flow& f : flows_) {
      if (f.current_cell != c) continue;
      cells_[static_cast<std::size_t>(c)]->scheduler().remove_stream(
          f.sched_id);
      f.current_cell = -1;
    }
    return;
  }

  // Re-register the dead cell's flows in the ancestor's schedule, sourced
  // at the gateway on the path (a member of that ancestor): the neighbor
  // coordinator now allocates their slots.
  Cell& anc = *cells_[static_cast<std::size_t>(a)];
  const phy::NodeId proxy = anc.to_local(g);
  for (Flow& f : flows_) {
    if (f.current_cell != c) continue;
    cells_[static_cast<std::size_t>(c)]->scheduler().remove_stream(f.sched_id);
    f.sched_id =
        anc.scheduler().add_stream(proxy, f.ipi, anc.network().now());
    f.current_cell = a;
  }
}

FederationStats Federation::run_epoch() {
  FederationStats st;
  st.epoch = epoch_;
  double rel_sum = 0.0;
  int rel_cells = 0;

  for (const std::vector<int>& phase : phases_) {
    // Barrier 1 (sequential, ascending cell id): schedule flows and drain
    // gateway queues into this phase's source lists.
    for (int c : phase) compose_sources(c, st);

    // Parallel section: cells of one phase share no mutable state.
    const int w =
        std::min(cfg_.workers, static_cast<int>(phase.size()));
    if (w <= 1) {
      for (int c : phase)
        (void)cells_[static_cast<std::size_t>(c)]->run_round(
            sources_[static_cast<std::size_t>(c)]);
    } else {
      std::vector<int> sizes;
      sizes.reserve(phase.size());
      for (int c : phase)
        sizes.push_back(cells_[static_cast<std::size_t>(c)]->size());
      const std::vector<int> bin = balance(sizes, w);
      auto run_bin = [&](int b) {
        for (std::size_t i = 0; i < phase.size(); ++i)
          if (bin[i] == b)
            (void)cells_[static_cast<std::size_t>(phase[i])]->run_round(
                sources_[static_cast<std::size_t>(phase[i])]);
      };
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(w - 1));
      for (int b = 1; b < w; ++b) threads.emplace_back(run_bin, b);
      run_bin(0);
      for (std::thread& t : threads) t.join();
    }

    // Barrier 2 (sequential, ascending cell id): bridge, deliver, and run
    // the handoff state machine — identical for any worker count.
    for (int c : phase) account_round(c, st, rel_sum, rel_cells);
  }

  st.cells_alive = rel_cells;
  st.mean_reliability = rel_cells > 0 ? rel_sum / rel_cells : 1.0;
  st.lost = lost_;
  ++epoch_;
  return st;
}

void Federation::set_instrumentation(obs::TraceSink* trace) {
  for (std::size_t c = 0; c < cells_.size(); ++c)
    cells_[c]->set_instrumentation(
        obs::Instrumentation{trace, metrics_[c].get()});
}

}  // namespace dimmer::core
