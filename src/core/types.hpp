// Shared Dimmer protocol types.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/topology.hpp"
#include "sim/time.hpp"

namespace dimmer::core {

/// Paper §IV-B: "N_max = 8 the maximum number of retransmissions achievable
/// within a slot".
constexpr int kNMax = 8;

/// Reward trade-off constant C = 3/10 (paper Eq. 3).
constexpr double kRewardC = 0.3;

/// The paper's reward function (Eq. 3): 1 - C * N_TX/N_max on a lossless
/// round, 0 otherwise.
inline double dimmer_reward(bool lossless, int n_tx, int n_max = kNMax,
                            double c = kRewardC) {
  return lossless ? 1.0 - c * static_cast<double>(n_tx) /
                              static_cast<double>(n_max)
                  : 0.0;
}

/// One node's latest performance feedback as recorded in a global snapshot.
struct NodeFeedback {
  double reliability = 0.0;   ///< packet reception rate in [0,1]
  double radio_on_ms = 20.0;  ///< average radio-on time per slot
  std::uint64_t round = 0;    ///< round in which the feedback was heard
  bool ever_heard = false;
  /// §IV-E Scalability: "it is possible to define a subset of nodes that
  /// will not be accounted in the interference evaluation". Unaccounted
  /// nodes are skipped by the feature builder and the PID baseline.
  bool accounted = true;
};

/// "Dimmer continuously builds a global snapshot of the network" (§IV-D).
/// Each device maintains one; the coordinator's instance feeds the DQN and
/// nodes' instances feed the forwarder-selection rewards.
struct GlobalSnapshot {
  std::vector<NodeFeedback> entries;  ///< one per node
  std::uint64_t current_round = 0;
  /// How many rounds a heard value stays fresh. 1 = feedback must arrive in
  /// the current round (the paper's 4 s all-to-all rounds, where every node
  /// reports every round). Aperiodic scenarios with sparse schedules use a
  /// wider window so silent-but-healthy sources do not read as jammed.
  std::uint64_t freshness_rounds = 1;

  explicit GlobalSnapshot(int n_nodes = 0)
      : entries(static_cast<std::size_t>(n_nodes)) {}

  /// Fresh entries are consumed as reported; stale or never-heard entries
  /// are treated pessimistically (0% reliability, 100% radio-on).
  bool fresh(phy::NodeId n) const {
    const auto& e = entries[static_cast<std::size_t>(n)];
    return e.ever_heard && e.round + freshness_rounds > current_round;
  }
};

}  // namespace dimmer::core
