// Distributed forwarder selection with adversarial multi-armed bandits
// (paper §IV-C).
//
// Each device runs a two-armed Exp3 instance: arm 0 = active forwarder,
// arm 1 = passive receiver. The coordinator grants learning turns; the
// paper's three stability techniques are implemented here:
//  (a) learning is sequential — each device gets `rounds_per_turn` (10)
//      consecutive rounds while everyone else's role is frozen;
//  (b) network-breaking configurations are punished — the passive arm is
//      reinitialised whenever passivity coincided with a breaking round;
//  (c) turns follow a pseudo-random order, reshuffled every epoch, so early
//      passive receivers are not clustered together.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "phy/topology.hpp"
#include "rl/exp3.hpp"
#include "util/rng.hpp"

namespace dimmer::core {

/// Arm indices of the two-armed bandit.
enum class ForwarderArm { kActive = 0, kPassive = 1 };

struct ForwarderConfig {
  int rounds_per_turn = 10;   ///< "each device has ten consecutive rounds"
  double exp3_gamma = 0.12;   ///< exploration factor
  /// Rewards (all in [0,1]). Passivity earns the full energy-saving reward
  /// on a lossless round and nothing otherwise; staying active earns a
  /// medium reward so that harmless passivity eventually wins, and a higher
  /// one on lossy rounds (forwarding was visibly needed).
  double passive_reward_lossless = 1.0;
  double passive_reward_lossy = 0.0;
  double active_reward_lossless = 0.55;
  double active_reward_lossy = 0.85;
  /// A round at or below this reliability is "network-breaking": the learner's
  /// passive arm is reset if it was passive.
  double breaking_reliability = 0.9;
  std::uint64_t order_seed = 0x0F02'77A3ULL;
};

class ForwarderSelection {
 public:
  ForwarderSelection(int n_nodes, phy::NodeId coordinator,
                     ForwarderConfig cfg);

  /// Starts (or continues) a learning round: picks the learner according to
  /// the sequential schedule and samples its role from Exp3. Roles of all
  /// other devices stay frozen at their best arm.
  void begin_round(util::Pcg32& rng);

  /// Reports the round outcome as observed by the learner (its local view of
  /// network reliability) and applies the Exp3 update + punishments.
  void end_round(double observed_reliability);

  /// Stability technique (b), network-wide: every *passive* device that
  /// locally observes a network-breaking round reinitialises its passive arm
  /// and falls back to forwarding. `local_views` holds each node's local
  /// reliability estimate for the finished round.
  void apply_breaking_penalty(const std::vector<double>& local_views);

  /// Cold coordinator failover: aborts the running learning episode
  /// network-wide — every bandit is reinitialised, every device falls back
  /// to active forwarding, and a fresh epoch order is drawn. Pass the new
  /// coordinator (or -1 to keep the current one); the coordinator never
  /// learns, so the turn order excludes it.
  void abort_episode(phy::NodeId new_coordinator = -1);

  /// Warm coordinator failover: the new coordinator stops learning (its
  /// pending turn ends; its role is forced active) and the old coordinator
  /// joins the turn order in its place. Bandit state is preserved.
  void set_coordinator(phy::NodeId new_coordinator);

  /// Current role assignment; true = active forwarder.
  const std::vector<bool>& roles() const { return roles_; }
  int active_count() const;

  phy::NodeId current_learner() const { return learner_; }
  std::uint64_t epoch() const { return epoch_; }
  const rl::Exp3& bandit(phy::NodeId n) const;

  const ForwarderConfig& config() const { return cfg_; }

  /// Optional observability hooks (an "exp3" event per learning round).
  void set_instrumentation(obs::Instrumentation instr) { instr_ = instr; }

 private:
  void advance_turn(util::Pcg32& rng);
  void reshuffle_order();

  ForwarderConfig cfg_;
  phy::NodeId coordinator_;
  std::vector<rl::Exp3> bandits_;   ///< one per node (coordinator's unused)
  std::vector<bool> roles_;
  std::vector<phy::NodeId> order_;  ///< learning order for this epoch
  std::size_t order_pos_ = 0;
  phy::NodeId learner_ = -1;
  int rounds_into_turn_ = 0;
  ForwarderArm learner_arm_ = ForwarderArm::kActive;
  bool round_open_ = false;
  std::uint64_t epoch_ = 0;
  obs::Instrumentation instr_;
  std::uint64_t learning_rounds_ = 0;
};

}  // namespace dimmer::core
