// The trace environment and offline DQN training (paper §IV-B).
//
// "It is impossible to play out two actions (N_TX +1 and -1) with identical
// wireless conditions; we execute them sequentially, with minimal latency
// between." We go one better in simulation: for every trace step, *all*
// candidate N_TX values 1..N_max experience the exact same interference
// timeline (interference sources are pure functions of time), by running
// N_max shadow networks side by side, each pinned at one N_TX value.
//
// A TraceDataset stores, per step and per candidate N_TX, the coordinator's
// aggregated feedback view plus ground truth. TraceEnv replays windows of a
// dataset as an MDP: the state is the Table-I feature vector, actions move
// N_TX, the reward is the paper's Eq. 3 on the ground-truth loss indicator.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "core/types.hpp"
#include "phy/interference.hpp"
#include "phy/topology.hpp"
#include "rl/dqn.hpp"
#include "rl/mlp.hpp"
#include "rl/quantized.hpp"
#include "rl/tabular.hpp"

namespace dimmer::core {

/// Outcome of one round executed at a fixed N_TX.
struct TraceOutcome {
  /// Coordinator-view feedback, one entry per node; `fresh[i]` false means
  /// the coordinator heard nothing from node i this round.
  std::vector<float> reliability;
  std::vector<float> radio_on_ms;
  std::vector<std::uint8_t> fresh;
  bool coordinator_lossless = true;
  bool true_lossless = true;
  float true_reliability = 1.0f;
  float true_radio_on_ms = 0.0f;
};

/// One trace step: the same wireless conditions under every candidate N_TX.
struct TraceStep {
  std::array<TraceOutcome, kNMax> by_n_tx;  ///< index n-1 holds N_TX = n

  const TraceOutcome& at(int n_tx) const { return by_n_tx.at(n_tx - 1); }
};

class TraceDataset {
 public:
  TraceDataset(int n_nodes, double slot_ms)
      : n_nodes_(n_nodes), slot_ms_(slot_ms) {}

  int n_nodes() const { return n_nodes_; }
  double slot_ms() const { return slot_ms_; }
  std::size_t size() const { return steps_.size(); }
  const TraceStep& step(std::size_t i) const { return steps_.at(i); }
  void push(TraceStep s) { steps_.push_back(std::move(s)); }

  void save(const std::string& path) const;
  static TraceDataset load(const std::string& path);

  /// Rebuild a GlobalSnapshot from a stored outcome (for feature building).
  GlobalSnapshot to_snapshot(const TraceOutcome& o) const;

 private:
  int n_nodes_;
  double slot_ms_;
  std::vector<TraceStep> steps_;
};

struct TraceCollectionConfig {
  sim::TimeUs round_period = sim::seconds(4);
  sim::TimeUs start_time = 0;
  std::size_t steps = 3000;
  std::size_t stats_window_slots = 36;
  std::uint64_t seed = 1;
};

/// Collect traces on `topo` under `interference` using shadow networks
/// pinned at N_TX = 1..N_max. All nodes broadcast every round (the paper's
/// 18-slot periodic traffic).
TraceDataset collect_traces(const phy::Topology& topo,
                            const phy::InterferenceField& interference,
                            const TraceCollectionConfig& cfg);

/// MDP over a trace dataset.
///
/// Feedback-latency model: a deployed source freezes its 2-byte header
/// *before* its own data slot, so roughly half of the radio-on feedback the
/// coordinator aggregates still reflects the previous round's N_TX (§IV-E
/// "Feedback latency"). The environment reproduces this by blending each
/// node's radio-on value 50/50 between the previous round's parameter and
/// the current one — without it, a trained policy stalls in limit cycles
/// when deployed, because deployment states lag in a way stationary traces
/// never show.
class TraceEnv {
 public:
  struct Config {
    FeatureConfig features;
    /// Shorter episodes mean more resets at random N_TX values, which is
    /// what covers the "calm network still running at high N" states the
    /// decay behaviour is learned from.
    int episode_len = 40;
    /// false: the paper's 3-action space (decrease/maintain/increase).
    /// true:  the ablation with one action per N_TX value (§IV-B argues
    ///        this overfits; bench_fig4b reproduces the comparison).
    bool action_per_value = false;
    double reward_c = kRewardC;
  };

  TraceEnv(const TraceDataset& dataset, Config cfg);

  int state_size() const { return features_.input_size(); }
  int action_count() const;

  /// Start an episode at a random window with a random initial N_TX.
  std::vector<double> reset(util::Pcg32& rng);

  struct StepResult {
    std::vector<double> state;
    double reward = 0.0;
    bool done = false;
  };
  StepResult step(int action);

  int current_n_tx() const { return n_tx_; }
  const TraceOutcome& current_outcome() const;

  /// Optional observability hooks (episode/step counters; no per-step
  /// events — the agent's "dqn_step" stream already covers those).
  void set_instrumentation(obs::Instrumentation instr) { instr_ = instr; }

 private:
  std::vector<double> observe() const;

  const TraceDataset* ds_;
  Config cfg_;
  FeatureBuilder features_;
  std::size_t pos_ = 0;
  int steps_taken_ = 0;
  int n_tx_ = 3;
  int prev_n_tx_ = 3;  ///< parameter in effect one round earlier (lag model)
  std::deque<bool> history_;
  obs::Instrumentation instr_;
};

/// Offline DQN training over a trace dataset (paper: 200 000 iterations,
/// epsilon 1.0 -> 0.01 over the first 100 000, gamma = 0.7).
struct TrainerConfig {
  rl::DqnConfig dqn;
  std::size_t total_steps = 200000;
  /// n-step returns: the energy gain of stepping N_TX down only pays off
  /// over a few consecutive rounds; multi-step targets propagate it without
  /// waiting for value iteration to crawl through the chain.
  int n_step = 3;
  std::uint64_t seed = 42;
  /// Optional observability hooks, forwarded to the agent and environment
  /// (a "dqn_step" event per training step when a trace sink is attached).
  obs::Instrumentation instrumentation;
};

rl::Mlp train_dqn_on_traces(const TraceDataset& dataset,
                            const TraceEnv::Config& env_cfg,
                            TrainerConfig cfg);

/// Greedy-policy evaluation over a dataset (used for the Fig. 4b sweeps).
struct PolicyEvaluation {
  double avg_reward = 0.0;
  double avg_reliability = 0.0;
  double avg_radio_on_ms = 0.0;
  double avg_n_tx = 0.0;
  double loss_rate = 0.0;  ///< fraction of rounds with any loss
};

PolicyEvaluation evaluate_policy(const TraceDataset& dataset,
                                 const rl::QuantizedMlp& policy,
                                 const TraceEnv::Config& env_cfg,
                                 int episodes, std::uint64_t seed);

/// Generic variant: any state -> action map (used for the tabular ablation
/// and for hand-crafted reference policies in tests).
PolicyEvaluation evaluate_policy(
    const TraceDataset& dataset,
    const std::function<int(const std::vector<double>&)>& policy,
    const TraceEnv::Config& env_cfg, int episodes, std::uint64_t seed);

// ---- Tabular Q-learning baseline (SIII-B ablation) -------------------------

/// Coarse discretization of the Table-I feature vector for tabular Q:
/// worst-node reliability bucket x worst-node radio bucket x one-hot N_TX x
/// most-recent history bit.
struct TabularDiscretizer {
  FeatureConfig features;
  int rel_buckets = 4;
  int radio_buckets = 3;

  std::size_t n_states() const {
    return static_cast<std::size_t>(rel_buckets) * radio_buckets *
           (features.n_max + 1) * 2;
  }
  std::size_t state(const std::vector<double>& x) const;
};

struct TabularTrainerConfig {
  double alpha = 0.15;
  double gamma = 0.7;
  std::size_t total_steps = 200000;
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::uint64_t seed = 42;
};

/// Trains tabular Q over the same trace environment as the DQN.
rl::TabularQ train_tabular_on_traces(const TraceDataset& dataset,
                                     const TraceEnv::Config& env_cfg,
                                     const TabularDiscretizer& disc,
                                     const TabularTrainerConfig& cfg);

}  // namespace dimmer::core
