#include "core/trace_env.hpp"

#include <fstream>
#include <memory>

#include "core/protocol.hpp"
#include "util/check.hpp"

namespace dimmer::core {

// ---- TraceDataset ----------------------------------------------------------

void TraceDataset::save(const std::string& path) const {
  std::ofstream os(path);
  DIMMER_REQUIRE(os.good(), "cannot open trace file for writing: " + path);
  os << "dimmer-trace 1\n"
     << n_nodes_ << ' ' << slot_ms_ << ' ' << steps_.size() << '\n';
  os.precision(9);
  for (const auto& step : steps_) {
    for (const auto& o : step.by_n_tx) {
      os << (o.coordinator_lossless ? 1 : 0) << ' '
         << (o.true_lossless ? 1 : 0) << ' ' << o.true_reliability << ' '
         << o.true_radio_on_ms << '\n';
      for (int i = 0; i < n_nodes_; ++i)
        os << o.reliability[static_cast<std::size_t>(i)] << ' '
           << o.radio_on_ms[static_cast<std::size_t>(i)] << ' '
           << static_cast<int>(o.fresh[static_cast<std::size_t>(i)]) << ' ';
      os << '\n';
    }
  }
  DIMMER_REQUIRE(os.good(), "write failure on trace file: " + path);
}

TraceDataset TraceDataset::load(const std::string& path) {
  std::ifstream is(path);
  DIMMER_REQUIRE(is.good(), "cannot open trace file: " + path);
  std::string magic;
  int version = 0, n_nodes = 0;
  double slot_ms = 0.0;
  std::size_t n_steps = 0;
  is >> magic >> version >> n_nodes >> slot_ms >> n_steps;
  DIMMER_REQUIRE(magic == "dimmer-trace" && version == 1,
                 "not a dimmer-trace v1 file");
  DIMMER_REQUIRE(n_nodes > 0 && slot_ms > 0.0, "corrupt trace header");
  TraceDataset ds(n_nodes, slot_ms);
  for (std::size_t s = 0; s < n_steps; ++s) {
    TraceStep step;
    for (auto& o : step.by_n_tx) {
      int cl = 0, tl = 0;
      is >> cl >> tl >> o.true_reliability >> o.true_radio_on_ms;
      o.coordinator_lossless = cl != 0;
      o.true_lossless = tl != 0;
      o.reliability.resize(static_cast<std::size_t>(n_nodes));
      o.radio_on_ms.resize(static_cast<std::size_t>(n_nodes));
      o.fresh.resize(static_cast<std::size_t>(n_nodes));
      for (int i = 0; i < n_nodes; ++i) {
        int fresh = 0;
        is >> o.reliability[static_cast<std::size_t>(i)] >>
            o.radio_on_ms[static_cast<std::size_t>(i)] >> fresh;
        o.fresh[static_cast<std::size_t>(i)] = fresh != 0 ? 1 : 0;
      }
    }
    DIMMER_REQUIRE(is.good(), "corrupt trace file body");
    ds.push(std::move(step));
  }
  return ds;
}

GlobalSnapshot TraceDataset::to_snapshot(const TraceOutcome& o) const {
  GlobalSnapshot snap(n_nodes_);
  snap.current_round = 1;
  for (int i = 0; i < n_nodes_; ++i) {
    auto& e = snap.entries[static_cast<std::size_t>(i)];
    if (o.fresh[static_cast<std::size_t>(i)]) {
      e.reliability = o.reliability[static_cast<std::size_t>(i)];
      e.radio_on_ms = o.radio_on_ms[static_cast<std::size_t>(i)];
      e.round = 1;
      e.ever_heard = true;
    }
  }
  return snap;
}

// ---- Trace collection ------------------------------------------------------

TraceDataset collect_traces(const phy::Topology& topo,
                            const phy::InterferenceField& interference,
                            const TraceCollectionConfig& cfg) {
  DIMMER_REQUIRE(cfg.steps > 0, "need at least one trace step");
  const int n = topo.size();

  // One shadow network per candidate N_TX, sharing the interference timeline.
  std::vector<std::unique_ptr<DimmerNetwork>> nets;
  nets.reserve(kNMax);
  for (int v = 1; v <= kNMax; ++v) {
    ProtocolConfig pc;
    pc.round_period = cfg.round_period;
    pc.start_time = cfg.start_time;
    pc.initial_n_tx = v;
    pc.stats_window_slots = cfg.stats_window_slots;
    nets.push_back(std::make_unique<DimmerNetwork>(
        topo, interference, pc, std::make_unique<StaticController>(v), 0,
        util::hash_u64(cfg.seed, static_cast<std::uint64_t>(v))));
  }

  std::vector<phy::NodeId> sources;
  for (phy::NodeId i = 1; i < n; ++i) sources.push_back(i);
  // The coordinator also sources a data slot (all-to-all traffic, 18 slots).
  sources.push_back(0);

  TraceDataset ds(n, sim::to_ms(nets[0]->config().round.slot_len_us));
  for (std::size_t s = 0; s < cfg.steps; ++s) {
    TraceStep step;
    for (int v = 1; v <= kNMax; ++v) {
      DimmerNetwork& net = *nets[static_cast<std::size_t>(v - 1)];
      RoundStats rs = net.run_round(sources);
      TraceOutcome& o = step.by_n_tx[static_cast<std::size_t>(v - 1)];
      o.coordinator_lossless = rs.coordinator_lossless;
      o.true_lossless = rs.lossless;
      o.true_reliability = static_cast<float>(rs.reliability);
      o.true_radio_on_ms = static_cast<float>(rs.radio_on_ms);
      o.reliability.resize(static_cast<std::size_t>(n));
      o.radio_on_ms.resize(static_cast<std::size_t>(n));
      o.fresh.resize(static_cast<std::size_t>(n));
      const GlobalSnapshot& snap = net.snapshot(net.coordinator());
      for (phy::NodeId i = 0; i < n; ++i) {
        bool fresh = snap.fresh(i);
        const auto& e = snap.entries[static_cast<std::size_t>(i)];
        o.fresh[static_cast<std::size_t>(i)] = fresh ? 1 : 0;
        o.reliability[static_cast<std::size_t>(i)] =
            fresh ? static_cast<float>(e.reliability) : 0.0f;
        o.radio_on_ms[static_cast<std::size_t>(i)] =
            fresh ? static_cast<float>(e.radio_on_ms)
                  : static_cast<float>(ds.slot_ms());
      }
    }
    ds.push(std::move(step));
  }
  return ds;
}

// ---- TraceEnv --------------------------------------------------------------

TraceEnv::TraceEnv(const TraceDataset& dataset, Config cfg)
    : ds_(&dataset), cfg_(cfg), features_(cfg.features) {
  DIMMER_REQUIRE(dataset.size() >= 2, "dataset too small");
  DIMMER_REQUIRE(cfg_.episode_len >= 1, "episode_len must be >= 1");
}

int TraceEnv::action_count() const {
  return cfg_.action_per_value ? cfg_.features.n_max : 3;
}

const TraceOutcome& TraceEnv::current_outcome() const {
  return ds_->step(pos_).at(n_tx_);
}

std::vector<double> TraceEnv::observe() const {
  GlobalSnapshot snap = ds_->to_snapshot(current_outcome());
  // Feedback latency: blend radio-on with the previous round's parameter.
  if (pos_ > 0 && prev_n_tx_ != n_tx_) {
    const TraceOutcome& prev = ds_->step(pos_ - 1).at(prev_n_tx_);
    for (std::size_t i = 0; i < snap.entries.size(); ++i) {
      if (!prev.fresh[i]) continue;
      snap.entries[i].radio_on_ms = 0.5 * snap.entries[i].radio_on_ms +
                                    0.5 * static_cast<double>(prev.radio_on_ms[i]);
    }
  }
  return features_.build(snap, n_tx_, history_);
}

std::vector<double> TraceEnv::reset(util::Pcg32& rng) {
  // Random window with room for a full episode; random initial N_TX.
  std::size_t span = static_cast<std::size_t>(cfg_.episode_len) + 1;
  std::size_t max_start = ds_->size() > span ? ds_->size() - span : 0;
  pos_ = max_start > 0
             ? rng.uniform_below(static_cast<std::uint32_t>(max_start + 1))
             : 0;
  n_tx_ = rng.uniform_int(1, cfg_.features.n_max);
  prev_n_tx_ = n_tx_;
  steps_taken_ = 0;
  history_.clear();
  history_.push_front(current_outcome().true_lossless);
  if (instr_.metrics) instr_.metrics->counter("trace_env.episodes") += 1;
  return observe();
}

TraceEnv::StepResult TraceEnv::step(int action) {
  DIMMER_REQUIRE(action >= 0 && action < action_count(), "action out of range");
  prev_n_tx_ = n_tx_;
  if (cfg_.action_per_value) {
    n_tx_ = action + 1;
  } else {
    n_tx_ = apply_action(n_tx_, static_cast<AdaptAction>(action),
                         cfg_.features.n_max);
  }

  ++pos_;
  ++steps_taken_;
  DIMMER_CHECK(pos_ < ds_->size());
  const TraceOutcome& o = current_outcome();

  StepResult out;
  out.reward = o.true_lossless
                   ? 1.0 - cfg_.reward_c * static_cast<double>(n_tx_) /
                               static_cast<double>(cfg_.features.n_max)
                   : 0.0;
  history_.push_front(o.true_lossless);
  while (static_cast<int>(history_.size()) >
         std::max(1, cfg_.features.history))
    history_.pop_back();
  out.state = observe();
  out.done = steps_taken_ >= cfg_.episode_len ||
             pos_ + 1 >= ds_->size();
  if (instr_.metrics) {
    obs::MetricsRegistry& m = *instr_.metrics;
    m.counter("trace_env.steps") += 1;
    if (!o.true_lossless) m.counter("trace_env.lossy_steps") += 1;
    m.gauge("trace_env.n_tx") = static_cast<double>(n_tx_);
  }
  return out;
}

// ---- Training and evaluation -----------------------------------------------

rl::Mlp train_dqn_on_traces(const TraceDataset& dataset,
                            const TraceEnv::Config& env_cfg,
                            TrainerConfig cfg) {
  DIMMER_REQUIRE(cfg.n_step >= 1, "n_step must be >= 1");
  TraceEnv env(dataset, env_cfg);
  env.set_instrumentation(cfg.instrumentation);
  rl::DqnConfig dqn_cfg = cfg.dqn;
  dqn_cfg.architecture = {env.state_size(), 30, env.action_count()};
  rl::DqnAgent agent(dqn_cfg, util::hash_u64(cfg.seed, 0xD40ULL));
  agent.set_instrumentation(cfg.instrumentation);
  util::Pcg32 rng(util::hash_u64(cfg.seed, 0xE47ULL));

  // n-step return assembly: emit the oldest pending (s, a) once its n
  // successor rewards are known (or the episode ends).
  struct Pending {
    std::vector<double> state;
    int action;
    double reward;
  };
  std::deque<Pending> window;
  const double gamma = dqn_cfg.gamma;
  auto flush_front = [&](const std::vector<double>& bootstrap_state,
                         bool done) {
    double ret = 0.0, g = 1.0;
    for (const Pending& p : window) {
      ret += g * p.reward;
      g *= gamma;
    }
    agent.observe(rl::Transition{window.front().state, window.front().action,
                                 ret, bootstrap_state, done, g},
                  rng);
    window.pop_front();
  };

  std::vector<double> state = env.reset(rng);
  for (std::size_t t = 0; t < cfg.total_steps; ++t) {
    int action = agent.select_action(state, rng);
    TraceEnv::StepResult sr = env.step(action);
    window.push_back(Pending{state, action, sr.reward});
    if (static_cast<int>(window.size()) == cfg.n_step)
      flush_front(sr.state, sr.done);
    if (sr.done) {
      while (!window.empty()) flush_front(sr.state, true);
      state = env.reset(rng);
    } else {
      state = sr.state;
    }
  }
  return agent.online_network();
}

PolicyEvaluation evaluate_policy(const TraceDataset& dataset,
                                 const rl::QuantizedMlp& policy,
                                 const TraceEnv::Config& env_cfg,
                                 int episodes, std::uint64_t seed) {
  return evaluate_policy(
      dataset,
      [&policy](const std::vector<double>& x) {
        return policy.greedy_action(x);
      },
      env_cfg, episodes, seed);
}

PolicyEvaluation evaluate_policy(
    const TraceDataset& dataset,
    const std::function<int(const std::vector<double>&)>& policy,
    const TraceEnv::Config& env_cfg, int episodes, std::uint64_t seed) {
  DIMMER_REQUIRE(episodes > 0, "episodes must be positive");
  TraceEnv env(dataset, env_cfg);
  util::Pcg32 rng(seed);
  PolicyEvaluation ev;
  long steps = 0, losses = 0;
  for (int e = 0; e < episodes; ++e) {
    std::vector<double> state = env.reset(rng);
    for (;;) {
      int action = policy(state);
      TraceEnv::StepResult sr = env.step(action);
      const TraceOutcome& o = env.current_outcome();
      ev.avg_reward += sr.reward;
      ev.avg_reliability += static_cast<double>(o.true_reliability);
      ev.avg_radio_on_ms += static_cast<double>(o.true_radio_on_ms);
      ev.avg_n_tx += env.current_n_tx();
      if (!o.true_lossless) ++losses;
      ++steps;
      if (sr.done) break;
      state = sr.state;
    }
  }
  double inv = 1.0 / static_cast<double>(steps);
  ev.avg_reward *= inv;
  ev.avg_reliability *= inv;
  ev.avg_radio_on_ms *= inv;
  ev.avg_n_tx *= inv;
  ev.loss_rate = static_cast<double>(losses) * inv;
  return ev;
}

// ---- Tabular baseline ------------------------------------------------------

std::size_t TabularDiscretizer::state(const std::vector<double>& x) const {
  FeatureBuilder fb(features);
  DIMMER_REQUIRE(static_cast<int>(x.size()) == fb.input_size(),
                 "feature vector size mismatch");
  auto bucket = [](double v, int buckets) {
    // v in [-1,1] -> 0..buckets-1
    double f = (v + 1.0) / 2.0;
    int b = static_cast<int>(f * buckets);
    return std::min(std::max(b, 0), buckets - 1);
  };
  const int k = features.k;
  int rel_b = bucket(x[static_cast<std::size_t>(k)], rel_buckets);
  int radio_b = bucket(x[0], radio_buckets);
  int n = 0;
  for (int v = 0; v <= features.n_max; ++v)
    if (x[static_cast<std::size_t>(2 * k + v)] > 0.5) n = v;
  int hist = 0;
  if (features.history > 0)
    hist = x[static_cast<std::size_t>(2 * k + features.n_max + 1)] > 0 ? 1 : 0;
  std::size_t idx = static_cast<std::size_t>(rel_b);
  idx = idx * radio_buckets + static_cast<std::size_t>(radio_b);
  idx = idx * (features.n_max + 1) + static_cast<std::size_t>(n);
  idx = idx * 2 + static_cast<std::size_t>(hist);
  DIMMER_CHECK(idx < n_states());
  return idx;
}

rl::TabularQ train_tabular_on_traces(const TraceDataset& dataset,
                                     const TraceEnv::Config& env_cfg,
                                     const TabularDiscretizer& disc,
                                     const TabularTrainerConfig& cfg) {
  TraceEnv env(dataset, env_cfg);
  rl::TabularQ agent(disc.n_states(), static_cast<std::size_t>(env.action_count()),
                     cfg.alpha, cfg.gamma);
  util::Pcg32 rng(util::hash_u64(cfg.seed, 0x7AB1ULL));
  std::vector<double> state = env.reset(rng);
  std::size_t s = disc.state(state);
  for (std::size_t t = 0; t < cfg.total_steps; ++t) {
    double frac = std::min(
        1.0, static_cast<double>(t) / (0.5 * static_cast<double>(cfg.total_steps)));
    double eps = cfg.epsilon_start + frac * (cfg.epsilon_end - cfg.epsilon_start);
    std::size_t a = agent.select(s, eps, rng);
    TraceEnv::StepResult sr = env.step(static_cast<int>(a));
    std::size_t s2 = disc.state(sr.state);
    agent.update(s, a, sr.reward, s2, sr.done);
    if (sr.done) {
      state = env.reset(rng);
      s = disc.state(state);
    } else {
      s = s2;
    }
  }
  return agent;
}

}  // namespace dimmer::core
