// One LWB cell of a multi-cell federation.
//
// A Cell is the single-network core (DimmerNetwork + lwb::Scheduler) wrapped
// with the three things federation needs and the paper's single-cell design
// never had (DESIGN.md §15):
//
//  - Node-id remapping: the cell simulates over a Topology::restricted()
//    sub-topology whose local ids 0..m-1 map to the federation's global
//    topology ids. Every gain a member pair shares is copied bit-for-bit
//    from the global topology, so a cell covering *all* nodes is provably
//    byte-identical to a bare DimmerNetwork over the global topology
//    (tests/core/test_cell.cpp asserts FloodResult and RNG end-state).
//  - A per-cell RNG stream: each cell draws from its own seed (the
//    federation derives seeds via util::hash_u64(federation_seed, cell_id)),
//    so cells stay in RNG lockstep regardless of how many of them run or in
//    which order/threads they are stepped.
//  - Per-cell observability tagging: set_instrumentation wraps the trace
//    sink in a TaggedSink("cell", "<id>"), and the federation gives each
//    cell its own MetricsRegistry, so city-scale traces stay attributable.
//
// The cell's protocol sink doubles as its *uplink*: for non-root cells the
// federation points it at the gateway node, so RoundStats::sink_received
// directly answers "did the gateway hear this slot's packet?" — the bridging
// predicate (see federation.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "lwb/scheduler.hpp"
#include "phy/sparse_link_model.hpp"

namespace dimmer::core {

struct CellConfig {
  int cell_id = 0;
  /// Strictly ascending GLOBAL node ids (>= 2). Gateways shared with a
  /// neighbor cell appear in both cells' member lists.
  std::vector<phy::NodeId> members;
  /// Coordinator, GLOBAL id; must be a member.
  phy::NodeId coordinator = -1;
  /// Per-cell protocol configuration. sink, failover.backups and
  /// feedback_nodes are GLOBAL ids (remapped internally; -1 sink stays -1 =
  /// the cell coordinator). fault_plan node ids are cell-LOCAL: fault plans
  /// are authored against one cell's own timeline.
  ProtocolConfig protocol;
  /// Back the flood engine with a SparseLinkModel over the cell topology
  /// (city scale) instead of the dense per-cell CachedLinkModel.
  bool sparse_links = false;
  /// This cell's round-start offset inside the federation round period.
  /// Neighboring cells get opposite parity offsets so a shared gateway is
  /// never in two overlapping rounds (federation.hpp).
  sim::TimeUs schedule_offset = 0;
};

class Cell {
 public:
  /// `seed` seeds the cell's own protocol RNG stream. The global topology
  /// and interference field must outlive the cell.
  Cell(const phy::Topology& global_topo,
       const phy::InterferenceField& interference, CellConfig cfg,
       std::unique_ptr<AdaptivityController> controller, std::uint64_t seed);

  int id() const { return cfg_.cell_id; }
  int size() const { return static_cast<int>(cfg_.members.size()); }
  sim::TimeUs schedule_offset() const { return cfg_.schedule_offset; }
  const std::vector<phy::NodeId>& members() const { return cfg_.members; }

  // -- Id remapping ---------------------------------------------------------
  bool is_member(phy::NodeId global) const;
  /// Local id of a member; throws for non-members.
  phy::NodeId to_local(phy::NodeId global) const;
  /// Global id of a local node.
  phy::NodeId to_global(phy::NodeId local) const;

  // -- The wrapped single-cell core ----------------------------------------
  DimmerNetwork& network() { return *net_; }
  const DimmerNetwork& network() const { return *net_; }
  lwb::Scheduler& scheduler() { return sched_; }
  const lwb::Scheduler& scheduler() const { return sched_; }
  /// The restricted per-cell topology (local ids).
  const phy::Topology& topology() const { return topo_; }

  /// Executes one round with LOCAL-id sources (the federation schedules in
  /// local ids: scheduler streams and bridge slots are registered locally).
  /// Returns the pooled per-cell RoundStats, valid until the next call.
  const RoundStats& run_round(const std::vector<phy::NodeId>& local_sources);
  /// The pooled stats of the most recent round (run_round's return value).
  const RoundStats& last_round() const { return round_buf_; }

  /// Tags the trace sink with cell=<id> and forwards to the network and
  /// scheduler. Give each cell its own MetricsRegistry for per-cell metrics.
  void set_instrumentation(obs::Instrumentation instr);

 private:
  CellConfig cfg_;
  phy::Topology topo_;  // restricted to cfg_.members (owned; net_ borrows)
  std::unique_ptr<phy::SparseLinkModel> links_;  // only when sparse_links
  std::unique_ptr<DimmerNetwork> net_;
  lwb::Scheduler sched_;
  std::vector<phy::NodeId> global_to_local_;  // -1 = not a member
  std::optional<obs::TaggedSink> tagged_;
  RoundStats round_buf_;  // pooled across rounds (zero-alloc steady state)
};

}  // namespace dimmer::core
