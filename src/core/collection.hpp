// Aperiodic data-collection scenario (D-Cube "Data Collection V1", §V-E):
// a handful of known sources generate packets at random intervals for a
// known sink. This file runs the scenario over a DimmerNetwork (Dimmer or
// an LWB-family baseline); the Crystal counterpart lives in src/baselines.
//
// Two delivery modes mirror the paper:
//  - best-effort (plain LWB): each packet rides exactly one data slot;
//  - ACK mode (Dimmer in §V-E): "we ... simply add application-layer ACKs" —
//    a packet stays queued until a round in which the sink received it.
#pragma once

#include <cstdint>

#include "core/protocol.hpp"

namespace dimmer::core {

struct CollectionConfig {
  int n_sources = 5;
  /// Mean packet inter-arrival time per source (exponential arrivals).
  sim::TimeUs mean_interarrival = sim::seconds(5);
  sim::TimeUs duration = sim::minutes(10);
  bool acks = true;  ///< false = best-effort single shot (plain LWB)
  /// At most one slot per source per round (the LWB schedule granularity).
  std::uint64_t seed = 1;
};

struct CollectionResult {
  long sent = 0;         ///< packets generated at sources
  long delivered = 0;    ///< unique packets received at the sink
  double reliability = 1.0;  ///< delivered / sent
  double radio_on_ms = 0.0;  ///< mean per-slot radio-on across nodes/rounds
  double radio_duty = 0.0;   ///< fraction of wall-clock time radios were on
  double avg_n_tx = 0.0;     ///< mean commanded N_TX across rounds
  long rounds = 0;
};

/// Runs the collection workload on an already-constructed network. Sources
/// are the `n_sources` lowest node ids other than the sink/coordinator.
CollectionResult run_collection(DimmerNetwork& net,
                                const CollectionConfig& cfg);

}  // namespace dimmer::core
