#include "core/features.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dimmer::core {

FeatureBuilder::FeatureBuilder(FeatureConfig cfg) : cfg_(cfg) {
  DIMMER_REQUIRE(cfg_.k >= 1, "K must be >= 1");
  DIMMER_REQUIRE(cfg_.history >= 0, "M must be >= 0");
  DIMMER_REQUIRE(cfg_.n_max >= 1, "N_max must be >= 1");
  DIMMER_REQUIRE(cfg_.slot_ms > 0.0, "slot_ms must be positive");
}

int FeatureBuilder::input_size() const {
  return 2 * cfg_.k + (cfg_.n_max + 1) + cfg_.history;
}

double FeatureBuilder::normalize_radio_on(double ms, double slot_ms) {
  double v = 2.0 * (ms / slot_ms) - 1.0;
  return std::clamp(v, -1.0, 1.0);
}

double FeatureBuilder::normalize_reliability(double reliability) {
  // [50%, 100%] -> [-1, 1]; "we depict any reliability below 50% [as] -1".
  double v = 4.0 * reliability - 3.0;
  return std::clamp(v, -1.0, 1.0);
}

std::vector<double> FeatureBuilder::build(
    const GlobalSnapshot& snapshot, int n_tx,
    const std::deque<bool>& history) const {
  DIMMER_REQUIRE(n_tx >= 0 && n_tx <= cfg_.n_max, "n_tx out of [0, N_max]");

  // Effective per-node values: fresh feedback or pessimistic fill
  // ("Absence of feedback is treated as 0% reliability, 100% radio-on").
  struct Row {
    phy::NodeId id;
    double rel;
    double radio_ms;
  };
  std::vector<Row> rows;
  rows.reserve(snapshot.entries.size());
  for (std::size_t i = 0; i < snapshot.entries.size(); ++i) {
    auto id = static_cast<phy::NodeId>(i);
    if (!snapshot.entries[i].accounted) continue;  // §IV-E subset rule
    if (snapshot.fresh(id)) {
      const auto& e = snapshot.entries[i];
      rows.push_back({id, e.reliability, e.radio_on_ms});
    } else {
      rows.push_back({id, 0.0, cfg_.slot_ms});
    }
  }

  // K devices with lowest reliability; deterministic tie-break on id.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.rel != b.rel ? a.rel < b.rel : a.id < b.id;
  });
  // Fewer accounted reporters than K (small networks or a restricted
  // feedback subset): repeat the available rows cyclically, worst first.
  // Oversampling real reporters keeps the vector inside the distribution the
  // DQN trained on, unlike padding with synthetic "perfect" rows.
  if (rows.empty()) rows.push_back({-1, 0.0, cfg_.slot_ms});  // all silent
  const std::size_t real_rows = rows.size();
  for (std::size_t i = 0; static_cast<int>(rows.size()) < cfg_.k; ++i) {
    Row repeat = rows[i % real_rows];
    rows.push_back(repeat);
  }

  std::vector<double> x;
  x.reserve(static_cast<std::size_t>(input_size()));
  for (int i = 0; i < cfg_.k; ++i)
    x.push_back(normalize_radio_on(rows[static_cast<std::size_t>(i)].radio_ms,
                                   cfg_.slot_ms));
  for (int i = 0; i < cfg_.k; ++i)
    x.push_back(
        normalize_reliability(rows[static_cast<std::size_t>(i)].rel));

  for (int v = 0; v <= cfg_.n_max; ++v) x.push_back(v == n_tx ? 1.0 : 0.0);

  for (int m = 0; m < cfg_.history; ++m) {
    bool lossless =
        m < static_cast<int>(history.size()) ? history[static_cast<std::size_t>(m)] : true;
    x.push_back(lossless ? 1.0 : -1.0);
  }

  DIMMER_CHECK(static_cast<int>(x.size()) == input_size());
  return x;
}

}  // namespace dimmer::core
