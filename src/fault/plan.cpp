#include "fault/plan.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dimmer::fault {

FaultPlan& FaultPlan::crash(std::uint64_t round, NodeId node) {
  events.push_back({round, FaultKind::kNodeCrash, node, 1.0});
  return *this;
}

FaultPlan& FaultPlan::reboot(std::uint64_t round, NodeId node) {
  events.push_back({round, FaultKind::kNodeReboot, node, 1.0});
  return *this;
}

FaultPlan& FaultPlan::crash_coordinator(std::uint64_t round) {
  events.push_back({round, FaultKind::kCoordinatorCrash, -1, 1.0});
  return *this;
}

FaultPlan& FaultPlan::blackout(std::uint64_t start_round,
                               std::uint64_t end_round, double severity) {
  DIMMER_REQUIRE(end_round > start_round,
                 "blackout window must end after it starts");
  events.push_back({start_round, FaultKind::kBlackoutStart, -1, severity});
  events.push_back({end_round, FaultKind::kBlackoutEnd, -1, 0.0});
  return *this;
}

FaultPlan& FaultPlan::corrupt_control(std::uint64_t round) {
  events.push_back({round, FaultKind::kControlCorruption, -1, 1.0});
  return *this;
}

FaultPlan& FaultPlan::clock_drift(std::uint64_t round, NodeId node) {
  events.push_back({round, FaultKind::kClockDrift, node, 1.0});
  return *this;
}

void FaultPlan::validate(int n_nodes) const {
  long open_blackouts = 0;
  // Walk in replay (round-sorted, stable) order so window matching mirrors
  // what the injector will actually do.
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return events[a].round < events[b].round;
                   });
  for (std::size_t i : order) {
    const FaultEvent& e = events[i];
    switch (e.kind) {
      case FaultKind::kNodeCrash:
      case FaultKind::kNodeReboot:
      case FaultKind::kClockDrift:
        DIMMER_REQUIRE(e.node >= 0 && e.node < n_nodes,
                       "fault event targets a node out of range");
        break;
      case FaultKind::kCoordinatorCrash:
      case FaultKind::kControlCorruption:
        break;
      case FaultKind::kBlackoutStart:
        DIMMER_REQUIRE(e.severity >= 0.0 && e.severity <= 1.0,
                       "blackout severity must be in [0,1]");
        ++open_blackouts;
        DIMMER_REQUIRE(open_blackouts == 1,
                       "blackout windows must not overlap");
        break;
      case FaultKind::kBlackoutEnd:
        --open_blackouts;
        DIMMER_REQUIRE(open_blackouts == 0,
                       "blackout end without a matching start");
        break;
    }
  }
  DIMMER_REQUIRE(open_blackouts == 0, "unterminated blackout window");
}

}  // namespace dimmer::fault
