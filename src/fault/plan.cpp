#include "fault/plan.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace dimmer::fault {

FaultPlan& FaultPlan::crash(std::uint64_t round, NodeId node) {
  events.push_back({round, FaultKind::kNodeCrash, node, 1.0});
  return *this;
}

FaultPlan& FaultPlan::reboot(std::uint64_t round, NodeId node) {
  events.push_back({round, FaultKind::kNodeReboot, node, 1.0});
  return *this;
}

FaultPlan& FaultPlan::crash_coordinator(std::uint64_t round) {
  events.push_back({round, FaultKind::kCoordinatorCrash, -1, 1.0});
  return *this;
}

FaultPlan& FaultPlan::blackout(std::uint64_t start_round,
                               std::uint64_t end_round, double severity) {
  DIMMER_REQUIRE(end_round > start_round,
                 "blackout window must end after it starts");
  events.push_back({start_round, FaultKind::kBlackoutStart, -1, severity});
  events.push_back({end_round, FaultKind::kBlackoutEnd, -1, 0.0});
  return *this;
}

FaultPlan& FaultPlan::corrupt_control(std::uint64_t round) {
  events.push_back({round, FaultKind::kControlCorruption, -1, 1.0});
  return *this;
}

FaultPlan& FaultPlan::clock_drift(std::uint64_t round, NodeId node) {
  events.push_back({round, FaultKind::kClockDrift, node, 1.0});
  return *this;
}

void FaultPlan::validate(int n_nodes) const {
  long open_blackouts = 0;
  // Walk in replay (round-sorted, stable) order so window matching mirrors
  // what the injector will actually do.
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return events[a].round < events[b].round;
                   });
  for (std::size_t i : order) {
    const FaultEvent& e = events[i];
    switch (e.kind) {
      case FaultKind::kNodeCrash:
      case FaultKind::kNodeReboot:
      case FaultKind::kClockDrift:
        DIMMER_REQUIRE(e.node >= 0 && e.node < n_nodes,
                       "fault event targets a node out of range");
        break;
      case FaultKind::kCoordinatorCrash:
      case FaultKind::kControlCorruption:
        break;
      case FaultKind::kBlackoutStart:
        DIMMER_REQUIRE(e.severity >= 0.0 && e.severity <= 1.0,
                       "blackout severity must be in [0,1]");
        ++open_blackouts;
        DIMMER_REQUIRE(open_blackouts == 1,
                       "blackout windows must not overlap");
        break;
      case FaultKind::kBlackoutEnd:
        --open_blackouts;
        DIMMER_REQUIRE(open_blackouts == 0,
                       "blackout end without a matching start");
        break;
    }
  }
  DIMMER_REQUIRE(open_blackouts == 0, "unterminated blackout window");
}

namespace {
// Wire names, indexed by FaultKind's enumerator values. Append-only: these
// strings live in checkpoints on disk, so renaming one orphans every
// campaign directory that mentions it.
constexpr const char* kKindNames[] = {
    "node_crash",     "node_reboot",  "coordinator_crash", "blackout_start",
    "blackout_end",   "control_corruption",               "clock_drift"};
constexpr int kKindCount = static_cast<int>(sizeof(kKindNames) / sizeof(kKindNames[0]));
}  // namespace

const char* to_string(FaultKind kind) {
  int i = static_cast<int>(kind);
  DIMMER_REQUIRE(i >= 0 && i < kKindCount, "unknown FaultKind value");
  return kKindNames[i];
}

FaultKind fault_kind_from_string(const std::string& name) {
  for (int i = 0; i < kKindCount; ++i)
    if (name == kKindNames[i]) return static_cast<FaultKind>(i);
  DIMMER_REQUIRE(false, "unknown fault kind name: " + name);
  return FaultKind::kNodeCrash;  // unreachable
}

std::string to_json(const FaultPlan& plan) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& e = plan.events[i];
    os << (i ? ", " : "") << "{\"round\": " << e.round << ", \"kind\": "
       << util::json_quote(to_string(e.kind)) << ", \"node\": " << e.node
       << ", \"severity\": " << util::json_number(e.severity) << "}";
  }
  os << "]";
  return os.str();
}

FaultPlan plan_from_json(const util::json::Value& events) {
  FaultPlan plan;
  for (const util::json::Value& ev : events.as_array()) {
    FaultEvent e;
    e.round = ev.at("round").as_u64();
    e.kind = fault_kind_from_string(ev.at("kind").as_string());
    e.node = static_cast<NodeId>(ev.at("node").as_i64());
    e.severity = ev.at("severity").as_double();
    plan.events.push_back(e);
  }
  return plan;
}

}  // namespace dimmer::fault
