// Declarative, deterministic fault timelines.
//
// Dimmer's coordinator is a single point of failure (the DQN runs centrally
// over network-wide feedback), so a production-scale deployment must be
// measured under coordinator loss, node churn, and transient blackouts — not
// just the calm/jammed scenarios of the paper's evaluation. A FaultPlan is a
// scripted list of events on the round timeline; the FaultInjector replays it
// against a DimmerNetwork with its *own* RNG stream, so fault randomness
// never perturbs the protocol's RNG lockstep: a trial with an empty plan is
// bit-identical to a trial with no plan at all, and a faulted trial is
// bit-identical across reruns and DIMMER_JOBS values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dimmer::util::json {
class Value;
}

namespace dimmer::fault {

/// Node identifier, mirroring phy::NodeId (kept local so the fault layer
/// depends only on util and can sit below exp in the build graph).
using NodeId = int;

enum class FaultKind {
  kNodeCrash = 0,         ///< radio permanently off until a reboot
  kNodeReboot,            ///< crashed node powers back up (desynchronized)
  kCoordinatorCrash,      ///< crash whoever is coordinator when it fires
  kBlackoutStart,         ///< begin a reception-blackout window (severity =
                          ///< per-node per-round probability of deafness)
  kBlackoutEnd,           ///< end the blackout window
  kControlCorruption,     ///< this round's schedule packet is garbage:
                          ///< energy is spent but no node can resync on it
  kClockDrift,            ///< node's clock drifts past slot alignment: it is
                          ///< desynchronized until it hears a schedule again
};

/// One scripted event. `round` is the round index at whose *start* the event
/// takes effect; `node` targets crash/reboot/drift; `severity` parameterises
/// blackout windows (probability in [0,1] that a given node is deaf in a
/// given blacked-out round).
struct FaultEvent {
  std::uint64_t round = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  NodeId node = -1;
  double severity = 1.0;
};

/// An ordered fault script. Events may be appended in any round order; the
/// injector replays them sorted by round (stable on insertion order for
/// same-round events). The fluent builders make bench sweeps readable.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }

  FaultPlan& crash(std::uint64_t round, NodeId node);
  FaultPlan& reboot(std::uint64_t round, NodeId node);
  FaultPlan& crash_coordinator(std::uint64_t round);
  /// Blackout over rounds [start_round, end_round).
  FaultPlan& blackout(std::uint64_t start_round, std::uint64_t end_round,
                      double severity);
  FaultPlan& corrupt_control(std::uint64_t round);
  FaultPlan& clock_drift(std::uint64_t round, NodeId node);

  /// Throws util::RequireError if any event targets a node outside
  /// [0, n_nodes), has a severity outside [0,1], or a blackout window is
  /// malformed (end before start, unmatched start/end).
  void validate(int n_nodes) const;
};

/// Stable wire name of a fault kind ("node_crash", "blackout_start", ...).
const char* to_string(FaultKind kind);

/// Inverse of to_string; throws util::RequireError on an unknown name.
FaultKind fault_kind_from_string(const std::string& name);

/// Deterministic JSON array of events, in insertion (replay-stable) order:
///   [{"round": R, "kind": "node_crash", "node": N, "severity": S}, ...]
/// Used by the campaign checkpoint so a resumed sweep re-runs missing
/// trials under byte-identical fault scripts. Severity is "%.17g", so
/// plan_from_json(parse(to_json(p))) reproduces `p` field-for-field.
std::string to_json(const FaultPlan& plan);

/// Parses the to_json() form back. Structural validation only (kinds,
/// field types); node-range / window checks remain in validate().
FaultPlan plan_from_json(const util::json::Value& events);

}  // namespace dimmer::fault
