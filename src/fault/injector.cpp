#include "fault/injector.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dimmer::fault {

FaultInjector::FaultInjector(FaultPlan plan, int n_nodes, std::uint64_t seed)
    : plan_(std::move(plan)),
      n_nodes_(n_nodes),
      rng_(util::hash_u64(seed, 0xFA17ULL)) {
  DIMMER_REQUIRE(n_nodes_ >= 1, "need at least one node");
  plan_.validate(n_nodes_);
  std::stable_sort(plan_.events.begin(), plan_.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.round < b.round;
                   });
}

RoundFaults FaultInjector::begin_round(std::uint64_t round) {
  DIMMER_REQUIRE(!started_ || round > last_round_,
                 "rounds must be queried in strictly increasing order");
  started_ = true;
  last_round_ = round;

  RoundFaults rf;
  while (next_event_ < plan_.events.size() &&
         plan_.events[next_event_].round <= round) {
    const FaultEvent& e = plan_.events[next_event_++];
    ++applied_;
    switch (e.kind) {
      case FaultKind::kNodeCrash:
        rf.crashes.push_back(e.node);
        break;
      case FaultKind::kNodeReboot:
        rf.reboots.push_back(e.node);
        break;
      case FaultKind::kCoordinatorCrash:
        rf.coordinator_crash = true;
        break;
      case FaultKind::kBlackoutStart:
        blackout_severity_ = e.severity;
        break;
      case FaultKind::kBlackoutEnd:
        blackout_severity_ = 0.0;
        break;
      case FaultKind::kControlCorruption:
        rf.control_corrupted = true;
        break;
      case FaultKind::kClockDrift:
        rf.clock_drifts.push_back(e.node);
        break;
    }
  }

  if (blackout_severity_ > 0.0) {
    // One Bernoulli per node per blacked-out round, always in node order:
    // the deaf pattern is a pure function of (seed, sequence of blacked-out
    // rounds), independent of anything the protocol does.
    rf.deaf.resize(static_cast<std::size_t>(n_nodes_));
    for (int i = 0; i < n_nodes_; ++i)
      rf.deaf[static_cast<std::size_t>(i)] = rng_.bernoulli(blackout_severity_);
  }
  return rf;
}

}  // namespace dimmer::fault
