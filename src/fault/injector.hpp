// Deterministic replay of a FaultPlan against the round timeline.
//
// The injector owns a private Pcg32 stream seeded independently of every
// protocol generator: stochastic fault decisions (which nodes go deaf in a
// blackout round) are a pure function of (injector seed, round sequence) and
// never consume draws from — or add draws to — the simulation's RNG streams.
// That is what makes the zero-perturbation guarantee hold: a network driven
// with an empty plan executes the exact same RNG lockstep as one with no
// injector at all, and a faulted trial replays bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "util/rng.hpp"

namespace dimmer::fault {

/// What the protocol layer must apply at the start of one round.
struct RoundFaults {
  std::vector<NodeId> crashes;       ///< nodes whose radio dies now
  std::vector<NodeId> reboots;       ///< crashed nodes powering back up
  std::vector<NodeId> clock_drifts;  ///< nodes desynchronized by drift
  bool coordinator_crash = false;    ///< crash the *current* coordinator
  bool control_corrupted = false;    ///< this round's schedule is garbage
  /// Non-empty during a blackout window: deaf[i] == true means node i
  /// cannot receive anything this round (it still burns listen energy).
  std::vector<bool> deaf;

  bool any() const {
    return coordinator_crash || control_corrupted || !crashes.empty() ||
           !reboots.empty() || !clock_drifts.empty() || !deaf.empty();
  }
};

class FaultInjector {
 public:
  /// `seed` roots the injector's private RNG stream; pass a hash of the
  /// simulation seed so faulted sweeps stay reproducible per trial.
  FaultInjector(FaultPlan plan, int n_nodes, std::uint64_t seed);

  /// Faults taking effect at the start of `round`. Rounds must be queried in
  /// strictly increasing order (the injector replays a timeline, it does not
  /// support rewinding).
  RoundFaults begin_round(std::uint64_t round);

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t events_applied() const { return applied_; }
  bool blackout_active() const { return blackout_severity_ > 0.0; }

 private:
  FaultPlan plan_;  ///< events stable-sorted by round
  std::size_t next_event_ = 0;
  int n_nodes_;
  double blackout_severity_ = 0.0;
  util::Pcg32 rng_;
  bool started_ = false;
  std::uint64_t last_round_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace dimmer::fault
