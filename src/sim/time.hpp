// Simulation time. All protocol timing is expressed in integer microseconds,
// which is the native granularity of the timers on the TelosB-class hardware
// the paper targets and avoids floating-point drift in long runs.
#pragma once

#include <cstdint>

namespace dimmer::sim {

/// Microseconds since simulation start.
using TimeUs = std::int64_t;

constexpr TimeUs us(std::int64_t v) { return v; }
constexpr TimeUs ms(std::int64_t v) { return v * 1000; }
constexpr TimeUs seconds(std::int64_t v) { return v * 1000000; }
constexpr TimeUs minutes(std::int64_t v) { return v * 60 * 1000000; }
constexpr TimeUs hours(std::int64_t v) { return v * 3600 * 1000000; }

constexpr double to_ms(TimeUs t) { return static_cast<double>(t) / 1000.0; }
constexpr double to_seconds(TimeUs t) {
  return static_cast<double>(t) / 1000000.0;
}

}  // namespace dimmer::sim
