// A deterministic discrete-event scheduler.
//
// Events with equal timestamps fire in insertion order (a strict tiebreak —
// crucial for reproducibility). The round-driven protocols in this repo
// mostly advance in fixed periods, but the queue also backs the aperiodic
// traffic generators (D-Cube data collection) and scenario scripts
// (jammer on/off at minute marks).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <vector>

#include "sim/time.hpp"
#include "util/check.hpp"

namespace dimmer::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  /// Schedule `cb` at absolute time `at` (must not be in the past).
  EventId schedule_at(TimeUs at, Callback cb) {
    DIMMER_REQUIRE(at >= now_, "cannot schedule an event in the past");
    EventId id = next_id_++;
    heap_.push(Event{at, id, std::move(cb)});
    pending_.insert(id);
    return id;
  }

  /// Schedule `cb` after a relative delay from now.
  EventId schedule_in(TimeUs delay, Callback cb) {
    DIMMER_REQUIRE(delay >= 0, "negative delay");
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event; returns false if it already fired or is unknown.
  bool cancel(EventId id) { return pending_.erase(id) > 0; }

  TimeUs now() const { return now_; }
  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Run the next live event; returns false if the queue is empty.
  bool step() {
    while (!heap_.empty()) {
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      if (pending_.erase(ev.id) == 0) continue;  // was cancelled
      now_ = ev.at;
      ev.cb();
      return true;
    }
    return false;
  }

  /// Run all events with timestamp <= `until` (inclusive); time ends at
  /// max(now, until).
  void run_until(TimeUs until) {
    while (!heap_.empty() && heap_.top().at <= until) step();
    now_ = std::max(now_, until);
  }

  /// Drain the whole queue.
  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Event {
    TimeUs at;
    EventId id;
    Callback cb;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::set<EventId> pending_;
  TimeUs now_ = 0;
  EventId next_id_ = 0;
};

}  // namespace dimmer::sim
