// A deterministic discrete-event scheduler.
//
// Events with equal timestamps fire in insertion order (a strict tiebreak —
// crucial for reproducibility). The round-driven protocols in this repo
// mostly advance in fixed periods, but the queue also backs the aperiodic
// traffic generators (D-Cube data collection) and scenario scripts
// (jammer on/off at minute marks).
//
// Cancellation: the heap stores only (timestamp, id) keys; callbacks live in
// a side table keyed by id. cancel() releases the callback (and whatever it
// captures) immediately, and the heap is compacted once cancelled residue
// outnumbers live events — long-lived queues with many cancelled far-future
// timers stay bounded by the live event count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "util/check.hpp"

namespace dimmer::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  /// Schedule `cb` at absolute time `at` (must not be in the past).
  EventId schedule_at(TimeUs at, Callback cb) {
    DIMMER_REQUIRE(at >= now_, "cannot schedule an event in the past");
    EventId id = next_id_++;
    heap_.push_back(Key{at, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    callbacks_.emplace(id, std::move(cb));
    return id;
  }

  /// Schedule `cb` after a relative delay from now.
  EventId schedule_in(TimeUs delay, Callback cb) {
    DIMMER_REQUIRE(delay >= 0, "negative delay");
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event; returns false if it already fired or is unknown.
  /// The callback (and everything it captures) is destroyed immediately.
  bool cancel(EventId id) {
    if (callbacks_.erase(id) == 0) return false;
    ++cancelled_;
    if (cancelled_ > callbacks_.size() && heap_.size() >= kCompactMin)
      compact();
    return true;
  }

  TimeUs now() const { return now_; }
  bool empty() const { return callbacks_.empty(); }

  /// Number of live (non-cancelled, not yet fired) events.
  std::size_t size() const { return callbacks_.size(); }

  /// Heap entries including cancelled residue awaiting compaction
  /// (diagnostics; bounded by 2 * size() + a small constant).
  std::size_t heap_size() const { return heap_.size(); }

  /// Run the next live event; returns false if the queue is empty.
  bool step() {
    while (!heap_.empty()) {
      Key key = pop_heap_top();
      auto it = callbacks_.find(key.id);
      if (it == callbacks_.end()) {  // was cancelled
        --cancelled_;
        continue;
      }
      now_ = key.at;
      Callback cb = std::move(it->second);
      callbacks_.erase(it);
      cb();
      return true;
    }
    return false;
  }

  /// Run all events with timestamp <= `until` (inclusive); time ends at
  /// max(now, until).
  void run_until(TimeUs until) {
    for (;;) {
      drop_cancelled_head();
      if (heap_.empty() || heap_.front().at > until) break;
      step();
    }
    now_ = std::max(now_, until);
  }

  /// Drain the whole queue.
  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Key {
    TimeUs at;
    EventId id;
  };
  /// Min-heap comparator: a sorts after b if it fires later (or, at the
  /// same timestamp, was inserted later).
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };

  static constexpr std::size_t kCompactMin = 64;

  Key pop_heap_top() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Key key = heap_.back();
    heap_.pop_back();
    return key;
  }

  /// Discard cancelled entries sitting at the head of the heap so that
  /// heap_.front() is the next *live* event (or the heap is empty).
  void drop_cancelled_head() {
    while (!heap_.empty() && !callbacks_.count(heap_.front().id)) {
      pop_heap_top();
      --cancelled_;
    }
  }

  /// Rebuild the heap from live entries only.
  void compact() {
    std::vector<Key> live;
    live.reserve(callbacks_.size());
    for (const Key& k : heap_)
      if (callbacks_.count(k.id)) live.push_back(k);
    heap_ = std::move(live);
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    cancelled_ = 0;
  }

  std::vector<Key> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::size_t cancelled_ = 0;  ///< cancelled entries still in heap_
  TimeUs now_ = 0;
  EventId next_id_ = 0;
};

}  // namespace dimmer::sim
