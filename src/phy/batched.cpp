#include "phy/batched.hpp"

#include <algorithm>
#include <cmath>

#include "phy/propagation.hpp"
#include "util/check.hpp"

namespace dimmer::phy {

namespace {

using util::simd::native_width;
using util::simd::vdouble;

// Tail policy: remainders (count % native_width) are copied into a benign
// stack pad and run through the *same* vector kernel, so a value's result
// never depends on whether it landed in a full chunk or the tail. (At
// native_width == 1 there is no tail and the loops below are the plain
// scalar loops.)
constexpr int kW = native_width;

}  // namespace

void dbm_to_mw_batch(const double* dbm, double* mw, int count) {
  if constexpr (kW == 1) {
    for (int i = 0; i < count; ++i) mw[i] = dbm_to_mw(dbm[i]);
  } else {
    const vdouble ten = vdouble::broadcast(10.0);
    int i = 0;
    for (; i + kW <= count; i += kW) {
      util::simd::exp10(vdouble::load(dbm + i) / ten).store(mw + i);
    }
    if (i < count) {
      double pad_in[kW] = {};
      double pad_out[kW];
      std::copy(dbm + i, dbm + count, pad_in);
      util::simd::exp10(vdouble::load(pad_in) / ten).store(pad_out);
      std::copy(pad_out, pad_out + (count - i), mw + i);
    }
  }
}

void ber_802154_batch(const double* sinr_db, double* ber, int count) {
  if constexpr (kW == 1) {
    using s1 = util::simd::simd<double, 1>;
    for (int i = 0; i < count; ++i) {
      ber[i] = simd_kernels::ber_802154_kernel(s1(sinr_db[i])).v;
    }
  } else {
    int i = 0;
    for (; i + kW <= count; i += kW) {
      simd_kernels::ber_802154_kernel(vdouble::load(sinr_db + i))
          .store(ber + i);
    }
    if (i < count) {
      double pad_in[kW] = {};
      double pad_out[kW];
      std::copy(sinr_db + i, sinr_db + count, pad_in);
      simd_kernels::ber_802154_kernel(vdouble::load(pad_in)).store(pad_out);
      std::copy(pad_out, pad_out + (count - i), ber + i);
    }
  }
}

void frame_success_prob_batch(const double* sinr_clean_db,
                              const double* sinr_jammed_db,
                              const double* jam_fraction, int frame_bytes,
                              double* p_ok, int count) {
  DIMMER_REQUIRE(frame_bytes > 0, "frame_bytes must be positive");
  if constexpr (kW == 1) {
    for (int i = 0; i < count; ++i) {
      p_ok[i] = frame_success_prob(sinr_clean_db[i], sinr_jammed_db[i],
                                   jam_fraction[i], frame_bytes);
    }
  } else {
    int i = 0;
    for (; i + kW <= count; i += kW) {
      simd_kernels::frame_success_kernel(vdouble::load(sinr_clean_db + i),
                                         vdouble::load(sinr_jammed_db + i),
                                         vdouble::load(jam_fraction + i),
                                         frame_bytes)
          .store(p_ok + i);
    }
    if (i < count) {
      double pad_clean[kW] = {};
      double pad_jam[kW] = {};
      double pad_frac[kW] = {};
      double pad_out[kW];
      std::copy(sinr_clean_db + i, sinr_clean_db + count, pad_clean);
      std::copy(sinr_jammed_db + i, sinr_jammed_db + count, pad_jam);
      std::copy(jam_fraction + i, jam_fraction + count, pad_frac);
      simd_kernels::frame_success_kernel(
          vdouble::load(pad_clean), vdouble::load(pad_jam),
          vdouble::load(pad_frac), frame_bytes)
          .store(pad_out);
      std::copy(pad_out, pad_out + (count - i), p_ok + i);
    }
  }
}

namespace {

// One vector chunk of the step-3b reception chain. Pointers index the
// chunk's first element; lanes are independent listeners. The pure()
// annotation cuts a name-resolution artifact: `vdouble::load` (a register
// load) shares its name with the allocating `TraceDataset::load`.
// dimmer-lint: pure(may-allocate)
inline vdouble reception_chunk(const double* strongest, const double* total,
                               const double* fade, const double* interf,
                               const double* frac, double coherence_gain,
                               bool apply_fading, double noise_mw,
                               double noise_dbm, int frame_bytes) {
  using util::simd::select_eq;
  const vdouble s = vdouble::load(strongest);
  const vdouble t = vdouble::load(total);
  vdouble sig = s + vdouble::broadcast(coherence_gain) * (t - s);
  if (apply_fading) {
    sig = sig * util::simd::exp10(vdouble::load(fade) /
                                  vdouble::broadcast(10.0));
  }
  const vdouble sig_dbm = simd_kernels::mw_to_dbm_kernel(sig);
  const vdouble sinr_clean = sig_dbm - vdouble::broadcast(noise_dbm);
  const vdouble iv = vdouble::load(interf);
  const vdouble denom_dbm =
      simd_kernels::mw_to_dbm_kernel(vdouble::broadcast(noise_mw) + iv);
  const vdouble sinr_jam = select_eq(iv, vdouble::broadcast(0.0), sinr_clean,
                                     sig_dbm - denom_dbm);
  return simd_kernels::frame_success_kernel(sinr_clean, sinr_jam,
                                            vdouble::load(frac), frame_bytes);
}

}  // namespace

void reception_success_batch(ReceptionBatch& b, double coherence_gain,
                             bool apply_fading, double noise_mw,
                             double noise_dbm, int frame_bytes) {
  const int count = b.count;
  DIMMER_DEBUG_ASSERT(count <= static_cast<int>(b.strongest_mw.size()),
                      "ReceptionBatch count exceeds its arrays");
  if constexpr (kW == 1) {
    // The historical per-listener expressions, verbatim: this path is what
    // keeps the scalar backend byte-identical to the pre-SIMD engine.
    for (int i = 0; i < count; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const double strongest = b.strongest_mw[u];
      double signal_mw =
          strongest + coherence_gain * (b.total_mw[u] - strongest);
      if (apply_fading)
        signal_mw *= std::pow(10.0, b.fade_db[u] / 10.0);
      const double signal_dbm = mw_to_dbm(signal_mw);
      const double sinr_clean_db = signal_dbm - noise_dbm;
      const double sinr_jam_db =
          b.interf_mw[u] == 0.0
              ? sinr_clean_db
              : signal_dbm - mw_to_dbm(noise_mw + b.interf_mw[u]);
      b.p_ok[u] = frame_success_prob(sinr_clean_db, sinr_jam_db,
                                     b.jam_fraction[u], frame_bytes);
    }
  } else {
    int i = 0;
    for (; i + kW <= count; i += kW) {
      reception_chunk(b.strongest_mw.data() + i, b.total_mw.data() + i,
                      b.fade_db.data() + i, b.interf_mw.data() + i,
                      b.jam_fraction.data() + i, coherence_gain, apply_fading,
                      noise_mw, noise_dbm, frame_bytes)
          .store(b.p_ok.data() + i);
    }
    if (i < count) {
      const int rem = count - i;
      // Benign pad: 1 mW signal, no fading/interference — keeps every lane
      // inside the kernels' (positive, finite) domain.
      double pad_s[kW], pad_t[kW], pad_f[kW], pad_i[kW], pad_j[kW];
      double pad_out[kW];
      for (int l = 0; l < kW; ++l) {
        pad_s[l] = 1.0;
        pad_t[l] = 1.0;
        pad_f[l] = 0.0;
        pad_i[l] = 0.0;
        pad_j[l] = 0.0;
      }
      std::copy(b.strongest_mw.data() + i, b.strongest_mw.data() + count,
                pad_s);
      std::copy(b.total_mw.data() + i, b.total_mw.data() + count, pad_t);
      std::copy(b.fade_db.data() + i, b.fade_db.data() + count, pad_f);
      std::copy(b.interf_mw.data() + i, b.interf_mw.data() + count, pad_i);
      std::copy(b.jam_fraction.data() + i, b.jam_fraction.data() + count,
                pad_j);
      reception_chunk(pad_s, pad_t, pad_f, pad_i, pad_j, coherence_gain,
                      apply_fading, noise_mw, noise_dbm, frame_bytes)
          .store(pad_out);
      std::copy(pad_out, pad_out + rem, b.p_ok.data() + i);
    }
  }
}

}  // namespace dimmer::phy
