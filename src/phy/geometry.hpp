// 2D geometry for node placement.
#pragma once

#include <cmath>

namespace dimmer::phy {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }
};

inline double distance(Vec2 a, Vec2 b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace dimmer::phy
