// Radio energy model for the TelosB's CC2420 (datasheet currents), turning
// the protocol-level radio-on times into charge and energy figures — the
// units the paper's Fig. 7 reports ("energy [J]").
//
// Listening and transmitting draw almost the same current on the CC2420
// (19.7 mA RX vs 17.4 mA TX at 0 dBm), which is why the paper can use
// radio-on time as its energy proxy; this model makes the conversion
// explicit and lets harnesses report joules.
#pragma once

#include "sim/time.hpp"

namespace dimmer::phy {

struct EnergyModel {
  double supply_voltage_v = 3.0;
  double rx_current_ma = 19.7;      ///< CC2420 receive / listen
  double tx_current_ma = 17.4;      ///< CC2420 transmit at 0 dBm
  double sleep_current_ua = 1.0;    ///< deep sleep (radio off, MCU LPM3)

  /// Energy (mJ) for a radio-on interval split into RX and TX time.
  double radio_energy_mj(sim::TimeUs rx_time, sim::TimeUs tx_time) const {
    return (rx_current_ma * sim::to_seconds(rx_time) +
            tx_current_ma * sim::to_seconds(tx_time)) *
           supply_voltage_v;
  }

  /// Energy (mJ) for a radio-on interval, approximating everything as RX
  /// (listening dominates in ST floods; error < 12% on the CC2420).
  double radio_energy_mj(sim::TimeUs on_time) const {
    return rx_current_ma * sim::to_seconds(on_time) * supply_voltage_v;
  }

  /// Sleep energy (mJ) for the remainder of a period.
  double sleep_energy_mj(sim::TimeUs off_time) const {
    return sleep_current_ua * 1e-3 * sim::to_seconds(off_time) *
           supply_voltage_v;
  }

  /// Average power draw (mW) at a given radio duty cycle in [0,1].
  double average_power_mw(double radio_duty) const {
    double on = rx_current_ma * radio_duty;
    double off = sleep_current_ua * 1e-3 * (1.0 - radio_duty);
    return (on + off) * supply_voltage_v;
  }
};

}  // namespace dimmer::phy
