#include "phy/per.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dimmer::phy {

namespace {
// C(16, k) for k = 0..16.
constexpr double kBinom16[17] = {
    1,    16,   120,  560,   1820,  4368, 8008, 11440, 12870,
    11440, 8008, 4368, 1820, 560,   120,  16,   1};
}  // namespace

double ber_802154(double sinr_db) {
  // BER = (8/15) * (1/16) * sum_{k=2}^{16} (-1)^k C(16,k) exp(20*SINR*(1/k-1))
  // (e.g. TinyOS/TOSSIM CPM and 802.15.4-2006 Annex E).
  double sinr = std::pow(10.0, sinr_db / 10.0);
  double acc = 0.0;
  for (int k = 2; k <= 16; ++k) {
    double term = kBinom16[k] * std::exp(20.0 * sinr * (1.0 / k - 1.0));
    acc += (k % 2 == 0) ? term : -term;
  }
  double ber = (8.0 / 15.0) * (1.0 / 16.0) * acc;
  if (ber < 0.0) ber = 0.0;
  if (ber > 0.5) ber = 0.5;
  return ber;
}

double per_802154(double sinr_db, int frame_bytes) {
  DIMMER_REQUIRE(frame_bytes > 0, "frame_bytes must be positive");
  double ber = ber_802154(sinr_db);
  double bits = 8.0 * frame_bytes;
  return 1.0 - std::pow(1.0 - ber, bits);
}

double frame_success_prob(double sinr_clean_db, double sinr_jammed_db,
                          double jam_fraction, int frame_bytes) {
  DIMMER_REQUIRE(frame_bytes > 0, "frame_bytes must be positive");
  if (jam_fraction < 0.0) jam_fraction = 0.0;
  if (jam_fraction > 1.0) jam_fraction = 1.0;
  double bits = 8.0 * frame_bytes;
  // Degenerate fractions short-circuit one ber_802154 evaluation (15 exp
  // calls) and one pow. Bit-identical to the general expression below:
  // bits * 0.0 == +0.0, pow(x, +0.0) == 1.0, and p * 1.0 == p exactly.
  if (jam_fraction == 0.0)
    return std::pow(1.0 - ber_802154(sinr_clean_db), bits);
  if (jam_fraction == 1.0)
    return std::pow(1.0 - ber_802154(sinr_jammed_db), bits);
  double clean_bits = bits * (1.0 - jam_fraction);
  double jam_bits = bits * jam_fraction;
  // Equal SINRs (zero interference power under a nonzero exposure) give
  // bitwise-equal BERs; skip the duplicate evaluation.
  double ber_clean = ber_802154(sinr_clean_db);
  double ber_jam = sinr_jammed_db == sinr_clean_db
                       ? ber_clean
                       : ber_802154(sinr_jammed_db);
  return std::pow(1.0 - ber_clean, clean_bits) *
         std::pow(1.0 - ber_jam, jam_bits);
}

}  // namespace dimmer::phy
