// Packet error rate for IEEE 802.15.4 O-QPSK with DSSS.
//
// We use the standard analytic chain (as in TOSSIM and the 802.15.4 std
// annex): SINR -> symbol/bit error rate of the 16-ary orthogonal modulation,
// then PER = 1 - (1 - BER)^(8 * frame_bytes) assuming independent bit errors.
#pragma once

namespace dimmer::phy {

/// Bit error rate as a function of SINR in dB.
double ber_802154(double sinr_db);

/// Packet error rate for a frame of `frame_bytes` (PHY payload incl. headers)
/// at the given SINR. Monotonically decreasing in SINR.
double per_802154(double sinr_db, int frame_bytes);

/// Success probability for a frame where a fraction `jam_fraction` of the
/// bits see `sinr_jammed_db` and the remainder see `sinr_clean_db`.
/// This models an interference burst overlapping only part of the frame.
double frame_success_prob(double sinr_clean_db, double sinr_jammed_db,
                          double jam_fraction, int frame_bytes);

}  // namespace dimmer::phy
