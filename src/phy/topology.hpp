// Node placement and the static link-gain matrix.
//
// A Topology owns node positions plus a deterministic per-link shadowing draw,
// and answers "what power does node j see when node i transmits?" for both
// in-network nodes and external points (jammers, WiFi APs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "phy/geometry.hpp"
#include "phy/propagation.hpp"

namespace dimmer::phy {

using NodeId = int;

/// CSR adjacency over "good" links (see Topology::good_neighbors): per node,
/// the neighbors it can reach with clean-SNR PER below the builder's target.
/// Neighbor ids are strictly ascending within a row and never include the
/// node itself. Symmetric by construction (links are reciprocal).
struct NeighborCsr {
  std::vector<std::size_t> row_ptr;  ///< n+1 offsets into col
  std::vector<NodeId> col;           ///< neighbor ids
  int n = 0;

  std::size_t degree(NodeId u) const {
    return row_ptr[static_cast<std::size_t>(u) + 1] -
           row_ptr[static_cast<std::size_t>(u)];
  }
};

class Topology {
 public:
  /// Builds the dense gain matrix. `shadow_seed` fixes the lognormal
  /// shadowing draws; identical seeds give identical radio environments.
  Topology(std::vector<Vec2> positions, PathLossModel model,
           RadioConstants radio, std::uint64_t shadow_seed);

  /// Culling constructor (ROADMAP item 2): link gains below `gain_floor_db`
  /// are dropped *at construction* and the survivors stored as CSR rows —
  /// O(nnz) instead of the dense 8*N^2 bytes. Surviving entries hold the
  /// exact double the dense constructor would hold (same distance, same
  /// hashed shadowing draw); culled pairs read as -infinity, i.e. a link
  /// that physically does not exist. Self-gains (the 0.0 diagonal) always
  /// survive. Pass -infinity to keep every link in CSR form.
  Topology(std::vector<Vec2> positions, PathLossModel model,
           RadioConstants radio, std::uint64_t shadow_seed,
           double gain_floor_db);

  int size() const { return static_cast<int>(positions_.size()); }
  Vec2 position(NodeId n) const;
  const PathLossModel& path_loss() const { return model_; }
  const RadioConstants& radio() const { return radio_; }
  std::uint64_t shadow_seed() const { return shadow_seed_; }

  /// True when this topology stores a construction-culled CSR gain matrix.
  bool culled() const { return culled_; }
  /// The culling floor (-infinity for dense topologies: nothing was culled).
  double gain_floor_db() const { return gain_floor_db_; }
  /// Stored gain entries (diagonal included); N^2 for dense topologies.
  std::size_t gain_nnz() const;
  /// Bytes held by the gain storage (dense matrix, or CSR arrays when
  /// culled) — the number bench_flood_scale reports against 8*N^2.
  std::size_t gain_storage_bytes() const;

  /// Link gain in dB between two nodes (path loss + static shadowing, < 0).
  /// Hot accessor: bounds are checked in debug builds only — callers are
  /// expected to validate node ids at their own API boundary (the flood
  /// engine does so at flood entry). On a culled topology this is a binary
  /// search within the CSR row; culled pairs return -infinity.
  double gain_db(NodeId tx, NodeId rx) const;

  /// Received power in dBm at `rx` for a transmission from `tx`. Same
  /// debug-only bounds policy as gain_db.
  double rx_power_dbm(NodeId tx, NodeId rx, double tx_power_dbm) const;

  /// Gain from an arbitrary point (e.g. a jammer) to a node. `shadow_tag`
  /// identifies the external transmitter so its shadowing is stable. On a
  /// restricted() sub-topology the shadowing draw keys on the node's
  /// *parent* id, so a cell-local node hears exactly the interference its
  /// global counterpart would.
  double gain_from_point_db(Vec2 p, NodeId rx, std::uint64_t shadow_tag) const;

  /// Extracts the sub-topology induced by `members` (strictly ascending
  /// parent node ids, >= 2 of them): local node i is parent node members[i],
  /// every surviving gain entry is copied bit-for-bit from the parent (no
  /// re-draw — pairwise shadowing between members is preserved, unlike
  /// rebuilding a Topology from the member positions, which would re-key
  /// the draws on the compacted ids), and external-point shadowing keys on
  /// the parent ids (see gain_from_point_db). Culling state (floor, CSR
  /// storage) is inherited. This is the Cell seam's id-remapping primitive:
  /// restricting to *all* nodes yields a topology whose every query is
  /// bit-identical to the parent (asserted in tests/phy/test_topology.cpp).
  Topology restricted(const std::vector<NodeId>& members) const;

  /// Parent id of a local node: members[n] for restricted() topologies, n
  /// itself otherwise. Composes across nested restrictions.
  NodeId parent_id(NodeId n) const;

  /// CSR neighbor lists over "good" links (clean-SNR PER below 10% for
  /// `frame_bytes` at `tx_power_dbm`). Built in one O(N^2) pass over the
  /// gain matrix; reuse the result across hop_counts_from calls when
  /// querying many roots of the same topology.
  NeighborCsr good_neighbors(int frame_bytes = 36,
                             double tx_power_dbm = 0.0) const;

  /// BFS hop counts from `root` over "good" links (clean-SNR PER below 10%
  /// for `frame_bytes`). Unreachable nodes get -1. One-shot convenience
  /// over good_neighbors + hop_counts_from.
  std::vector<int> hop_counts(NodeId root, int frame_bytes = 36,
                              double tx_power_dbm = 0.0) const;

  /// BFS hop counts over a prebuilt adjacency: O(N + E) per root instead of
  /// the O(N) scan per dequeue the dense BFS paid — the difference between
  /// usable and unusable topology factories past a few hundred nodes.
  /// Identical output to hop_counts for the same (frame_bytes, power).
  std::vector<int> hop_counts_from(NodeId root, const NeighborCsr& adj) const;

  /// Smallest SINR (dB) with per_802154(sinr, frame_bytes) <= target_per.
  /// Memoized per thread: the 60-iteration bisection runs once per distinct
  /// (frame_bytes, target_per) pair.
  static double sinr_threshold_db(int frame_bytes, double target_per);

 private:
  struct RestrictedTag {};
  Topology(RestrictedTag, const Topology& parent,
           const std::vector<NodeId>& members);

  /// The exact pairwise gain expression of the dense constructor, evaluated
  /// symmetrically (distance and the shadowing hash key on the lower id
  /// first), so per-row culled construction reproduces the dense bits.
  double pair_gain(NodeId a, NodeId b) const;

  std::vector<Vec2> positions_;
  PathLossModel model_;
  RadioConstants radio_;
  std::uint64_t shadow_seed_;
  std::vector<double> gain_;  // row-major size*size, symmetric (dense mode)

  // Construction-culled CSR storage (culled_ == true): survivors per row,
  // ascending column ids, parallel gain values. gain_ stays empty.
  bool culled_ = false;
  double gain_floor_db_ = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> row_ptr_;  // n+1 offsets
  std::vector<NodeId> col_;
  std::vector<double> cgain_;

  // restricted(): local -> parent node ids (empty = identity).
  std::vector<NodeId> parent_ids_;

  double& gain_at(NodeId a, NodeId b) { return gain_[a * size() + b]; }
};

// ---- Topology factories ------------------------------------------------

/// n nodes on a line, `spacing_m` apart (multi-hop chains for tests).
Topology make_line_topology(int n, double spacing_m,
                            std::uint64_t shadow_seed = 1);

/// rows x cols grid with `spacing_m` pitch.
Topology make_grid_topology(int rows, int cols, double spacing_m,
                            std::uint64_t shadow_seed = 1);

/// n nodes placed uniformly at random in a width x height box; retries the
/// placement until the topology is connected from node 0.
Topology make_random_topology(int n, double width_m, double height_m,
                              std::uint64_t seed);

/// The paper's 18-node, 3-hop office deployment (Fig. 4a): offices and lab
/// rooms along a corridor; node 0 is the coordinator at one end.
Topology make_office18_topology(std::uint64_t shadow_seed = 18);

/// A 48-node D-Cube-like deployment spanning several rooms/floors;
/// node 0 is the coordinator (paper: device ID 202).
Topology make_dcube48_topology(std::uint64_t shadow_seed = 48);

/// Large deterministic campus: `n` nodes on a near-square jittered grid
/// (the dcube48 recipe generalized), 9 m pitch with ±2.5 m seeded jitter so
/// adjacent nodes sit well inside the office model's ~15 m solid-link range.
/// Connected by construction — no placement retries — which is what makes
/// 1000+-node topologies build in one Topology construction instead of
/// make_random_topology's rejection loop. Node 0 is the coordinator in the
/// first grid corner; the flood diameter grows as sqrt(n).
Topology make_campus_topology(int n, std::uint64_t shadow_seed = 1);

/// Campus factory with construction-time gain culling (see the culling
/// Topology constructor): identical placement and surviving gains to
/// make_campus_topology(n, shadow_seed), stored as CSR above the floor.
Topology make_campus_topology_culled(int n, std::uint64_t shadow_seed,
                                     double gain_floor_db);

/// A gain floor consistent with SparseLinkModel's rx-power culling: a link
/// culled at construction (gain < floor) would also have been culled by a
/// SparseLinkModel with `cull_margin_db` at any TX power <= max_tx_power_dbm,
/// because rx_power = tx_power + gain < noise_floor - margin. Topology-level
/// culling with this floor therefore never removes a link the link model
/// would have kept.
double gain_cull_floor_db(const RadioConstants& radio, double cull_margin_db,
                          double max_tx_power_dbm = 0.0);

}  // namespace dimmer::phy
