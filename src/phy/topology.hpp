// Node placement and the static link-gain matrix.
//
// A Topology owns node positions plus a deterministic per-link shadowing draw,
// and answers "what power does node j see when node i transmits?" for both
// in-network nodes and external points (jammers, WiFi APs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "phy/geometry.hpp"
#include "phy/propagation.hpp"

namespace dimmer::phy {

using NodeId = int;

/// CSR adjacency over "good" links (see Topology::good_neighbors): per node,
/// the neighbors it can reach with clean-SNR PER below the builder's target.
/// Neighbor ids are strictly ascending within a row and never include the
/// node itself. Symmetric by construction (links are reciprocal).
struct NeighborCsr {
  std::vector<std::size_t> row_ptr;  ///< n+1 offsets into col
  std::vector<NodeId> col;           ///< neighbor ids
  int n = 0;

  std::size_t degree(NodeId u) const {
    return row_ptr[static_cast<std::size_t>(u) + 1] -
           row_ptr[static_cast<std::size_t>(u)];
  }
};

class Topology {
 public:
  /// Builds the gain matrix. `shadow_seed` fixes the lognormal shadowing
  /// draws; identical seeds give identical radio environments.
  Topology(std::vector<Vec2> positions, PathLossModel model,
           RadioConstants radio, std::uint64_t shadow_seed);

  int size() const { return static_cast<int>(positions_.size()); }
  Vec2 position(NodeId n) const;
  const PathLossModel& path_loss() const { return model_; }
  const RadioConstants& radio() const { return radio_; }
  std::uint64_t shadow_seed() const { return shadow_seed_; }

  /// Link gain in dB between two nodes (path loss + static shadowing, < 0).
  /// Hot accessor: bounds are checked in debug builds only — callers are
  /// expected to validate node ids at their own API boundary (the flood
  /// engine does so at flood entry).
  double gain_db(NodeId tx, NodeId rx) const;

  /// Received power in dBm at `rx` for a transmission from `tx`. Same
  /// debug-only bounds policy as gain_db.
  double rx_power_dbm(NodeId tx, NodeId rx, double tx_power_dbm) const;

  /// Gain from an arbitrary point (e.g. a jammer) to a node. `shadow_tag`
  /// identifies the external transmitter so its shadowing is stable.
  double gain_from_point_db(Vec2 p, NodeId rx, std::uint64_t shadow_tag) const;

  /// CSR neighbor lists over "good" links (clean-SNR PER below 10% for
  /// `frame_bytes` at `tx_power_dbm`). Built in one O(N^2) pass over the
  /// gain matrix; reuse the result across hop_counts_from calls when
  /// querying many roots of the same topology.
  NeighborCsr good_neighbors(int frame_bytes = 36,
                             double tx_power_dbm = 0.0) const;

  /// BFS hop counts from `root` over "good" links (clean-SNR PER below 10%
  /// for `frame_bytes`). Unreachable nodes get -1. One-shot convenience
  /// over good_neighbors + hop_counts_from.
  std::vector<int> hop_counts(NodeId root, int frame_bytes = 36,
                              double tx_power_dbm = 0.0) const;

  /// BFS hop counts over a prebuilt adjacency: O(N + E) per root instead of
  /// the O(N) scan per dequeue the dense BFS paid — the difference between
  /// usable and unusable topology factories past a few hundred nodes.
  /// Identical output to hop_counts for the same (frame_bytes, power).
  std::vector<int> hop_counts_from(NodeId root, const NeighborCsr& adj) const;

  /// Smallest SINR (dB) with per_802154(sinr, frame_bytes) <= target_per.
  /// Memoized per thread: the 60-iteration bisection runs once per distinct
  /// (frame_bytes, target_per) pair.
  static double sinr_threshold_db(int frame_bytes, double target_per);

 private:
  std::vector<Vec2> positions_;
  PathLossModel model_;
  RadioConstants radio_;
  std::uint64_t shadow_seed_;
  std::vector<double> gain_;  // row-major size*size, symmetric

  double& gain_at(NodeId a, NodeId b) { return gain_[a * size() + b]; }
};

// ---- Topology factories ------------------------------------------------

/// n nodes on a line, `spacing_m` apart (multi-hop chains for tests).
Topology make_line_topology(int n, double spacing_m,
                            std::uint64_t shadow_seed = 1);

/// rows x cols grid with `spacing_m` pitch.
Topology make_grid_topology(int rows, int cols, double spacing_m,
                            std::uint64_t shadow_seed = 1);

/// n nodes placed uniformly at random in a width x height box; retries the
/// placement until the topology is connected from node 0.
Topology make_random_topology(int n, double width_m, double height_m,
                              std::uint64_t seed);

/// The paper's 18-node, 3-hop office deployment (Fig. 4a): offices and lab
/// rooms along a corridor; node 0 is the coordinator at one end.
Topology make_office18_topology(std::uint64_t shadow_seed = 18);

/// A 48-node D-Cube-like deployment spanning several rooms/floors;
/// node 0 is the coordinator (paper: device ID 202).
Topology make_dcube48_topology(std::uint64_t shadow_seed = 48);

/// Large deterministic campus: `n` nodes on a near-square jittered grid
/// (the dcube48 recipe generalized), 9 m pitch with ±2.5 m seeded jitter so
/// adjacent nodes sit well inside the office model's ~15 m solid-link range.
/// Connected by construction — no placement retries — which is what makes
/// 1000+-node topologies build in one Topology construction instead of
/// make_random_topology's rejection loop. Node 0 is the coordinator in the
/// first grid corner; the flood diameter grows as sqrt(n).
Topology make_campus_topology(int n, std::uint64_t shadow_seed = 1);

}  // namespace dimmer::phy
