// Interference sources.
//
// Every source is a positioned transmitter with a *pure* activity function:
// given an interval and a channel it reports which fraction of the interval
// the source occupies. Purity (no mutable state) lets the flood engine query
// arbitrary time windows in any order while staying fully deterministic.
//
// Three families mirror the paper's scenarios:
//  - BurstJammer: JamLab-style periodic 13 ms bursts (controlled 802.15.4
//    interference, §V-A), plus on/off scenario windows.
//  - WifiInterferer: WiFi-like traffic bursts blanketing the 802.15.4
//    channels under a WiFi channel (D-Cube levels, §V-E).
//  - AmbientInterferer: low-duty office background (WiFi/Bluetooth PANs
//    "outside of our control ... during work hours").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/channels.hpp"
#include "phy/geometry.hpp"
#include "phy/topology.hpp"
#include "sim/time.hpp"

namespace dimmer::phy {

class InterferenceSource {
 public:
  virtual ~InterferenceSource() = default;

  /// Fraction of [t0,t1) during which the source transmits on `ch`, in [0,1].
  virtual double activity(sim::TimeUs t0, sim::TimeUs t1, Channel ch) const = 0;

  virtual Vec2 position() const = 0;
  virtual double tx_power_dbm() const = 0;

  /// Stable identity for shadowing draws toward network nodes.
  virtual std::uint64_t shadow_tag() const = 0;
};

/// JamLab-style periodic jammer: `burst` of carrier every `period`, within an
/// optional [start,stop) scenario window. Channels are an explicit set.
class BurstJammer : public InterferenceSource {
 public:
  struct Config {
    Vec2 position{};
    double tx_power_dbm = 0.0;
    sim::TimeUs burst_us = sim::ms(13);   ///< "13 ms TX bursts" (§V-A)
    sim::TimeUs period_us = sim::ms(130); ///< e.g. 10% duty
    sim::TimeUs phase_us = 0;
    sim::TimeUs start_us = 0;
    sim::TimeUs stop_us = -1;  ///< -1: never stops
    std::vector<Channel> channels{kControlChannel};
    std::uint64_t tag = 1;
  };

  explicit BurstJammer(Config cfg);

  double activity(sim::TimeUs t0, sim::TimeUs t1, Channel ch) const override;
  Vec2 position() const override { return cfg_.position; }
  double tx_power_dbm() const override { return cfg_.tx_power_dbm; }
  std::uint64_t shadow_tag() const override { return cfg_.tag; }

  const Config& config() const { return cfg_; }

  /// Convenience: a jammer occupying the medium `duty` (0..1) of the time
  /// with 13 ms bursts, the paper's parameterisation ("a 10% interference
  /// corresponds to a 13 ms burst every 130 ms").
  static Config jamlab(Vec2 pos, double duty, Channel ch = kControlChannel,
                       std::uint64_t tag = 1);

 private:
  Config cfg_;
};

/// WiFi-like interferer: in every frame of `frame_us` it emits one burst of
/// hash-randomised length (mean `duty * frame_us`) at a hash-randomised
/// offset, covering all 802.15.4 channels under its WiFi channel.
class WifiInterferer : public InterferenceSource {
 public:
  struct Config {
    Vec2 position{};
    double tx_power_dbm = 12.0;   ///< APs are louder than motes
    int wifi_channel = 13;        ///< covers 802.15.4 channels 24..26
    double duty = 0.4;            ///< mean occupied fraction
    sim::TimeUs frame_us = sim::ms(40);
    sim::TimeUs start_us = 0;
    sim::TimeUs stop_us = -1;
    std::uint64_t seed = 7;
    std::uint64_t tag = 100;
  };

  explicit WifiInterferer(Config cfg);

  double activity(sim::TimeUs t0, sim::TimeUs t1, Channel ch) const override;
  Vec2 position() const override { return cfg_.position; }
  double tx_power_dbm() const override { return cfg_.tx_power_dbm; }
  std::uint64_t shadow_tag() const override { return cfg_.tag; }

  const Config& config() const { return cfg_; }

 private:
  bool covers(Channel ch) const;
  double frame_overlap(sim::TimeUs t0, sim::TimeUs t1,
                       std::int64_t frame_idx) const;

  Config cfg_;
  std::vector<Channel> covered_;
};

/// Ambient office background: independent low-duty bursts on every channel,
/// modulated by a work-hours profile (quiet at night).
class AmbientInterferer : public InterferenceSource {
 public:
  struct Config {
    Vec2 position{};
    double tx_power_dbm = -4.0;
    double day_duty = 0.06;    ///< mean duty during work hours
    double night_duty = 0.003; ///< "experiments run at night" are clean
    sim::TimeUs frame_us = sim::ms(60);
    /// Burst length as a fraction of the frame. Ambient traffic (Bluetooth
    /// polls, WiFi beacons/ACKs) is short: a few ms. Short bursts are what
    /// extra retransmissions can actually escape within a slot.
    double burst_fraction = 1.0 / 12.0;
    double day_start_h = 8.0;  ///< work-hours window within a 24 h day
    double day_end_h = 19.0;
    std::uint64_t seed = 11;
    std::uint64_t tag = 200;
  };

  explicit AmbientInterferer(Config cfg);

  double activity(sim::TimeUs t0, sim::TimeUs t1, Channel ch) const override;
  Vec2 position() const override { return cfg_.position; }
  double tx_power_dbm() const override { return cfg_.tx_power_dbm; }
  std::uint64_t shadow_tag() const override { return cfg_.tag; }

 private:
  double duty_at(sim::TimeUs t) const;

  Config cfg_;
};

/// What a receiver experiences during one packet reception window.
struct InterferenceSample {
  double power_mw = 0.0;  ///< summed received interference power when jammed
  double exposure = 0.0;  ///< fraction of the window exposed to interference
};

/// An owning collection of interference sources, sampled per reception.
class InterferenceField {
 public:
  InterferenceField() = default;

  void add(std::unique_ptr<InterferenceSource> src);
  std::size_t size() const { return sources_.size(); }
  bool empty() const { return sources_.empty(); }
  void clear() { sources_.clear(); }

  /// Received interference at node `rx` for a packet spanning [t0,t1) on `ch`.
  InterferenceSample sample(sim::TimeUs t0, sim::TimeUs t1, Channel ch,
                            NodeId rx, const Topology& topo) const;

 private:
  std::vector<std::unique_ptr<InterferenceSource>> sources_;
};

/// D-Cube style controlled WiFi interference profiles (§V-E): level 1 is
/// moderate AP traffic; level 2 adds APs and raises the duty cycle.
void add_dcube_wifi_level(InterferenceField& field, const Topology& topo,
                          int level, std::uint64_t seed = 0xD0CBEULL);

}  // namespace dimmer::phy
