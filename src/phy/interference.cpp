#include "phy/interference.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dimmer::phy {

namespace {
/// Overlap length of [a0,a1) and [b0,b1).
sim::TimeUs overlap(sim::TimeUs a0, sim::TimeUs a1, sim::TimeUs b0,
                    sim::TimeUs b1) {
  sim::TimeUs lo = std::max(a0, b0);
  sim::TimeUs hi = std::min(a1, b1);
  return hi > lo ? hi - lo : 0;
}

/// Clip [t0,t1) to a scenario window [start, stop); stop < 0 means open.
bool clip_window(sim::TimeUs& t0, sim::TimeUs& t1, sim::TimeUs start,
                 sim::TimeUs stop) {
  t0 = std::max(t0, start);
  if (stop >= 0) t1 = std::min(t1, stop);
  return t1 > t0;
}
}  // namespace

// ---- BurstJammer -----------------------------------------------------------

BurstJammer::BurstJammer(Config cfg) : cfg_(std::move(cfg)) {
  DIMMER_REQUIRE(cfg_.burst_us > 0, "burst length must be positive");
  DIMMER_REQUIRE(cfg_.period_us >= cfg_.burst_us,
                 "period must be >= burst length");
  for (Channel c : cfg_.channels)
    DIMMER_REQUIRE(is_valid_channel(c), "invalid 802.15.4 channel");
}

BurstJammer::Config BurstJammer::jamlab(Vec2 pos, double duty, Channel ch,
                                        std::uint64_t tag) {
  DIMMER_REQUIRE(duty > 0.0 && duty <= 1.0, "duty out of (0,1]");
  Config cfg;
  cfg.position = pos;
  cfg.burst_us = sim::ms(13);
  cfg.period_us = static_cast<sim::TimeUs>(
      std::llround(static_cast<double>(cfg.burst_us) / duty));
  cfg.channels = {ch};
  cfg.tag = tag;
  return cfg;
}

double BurstJammer::activity(sim::TimeUs t0, sim::TimeUs t1,
                             Channel ch) const {
  DIMMER_REQUIRE(t1 > t0, "empty interval");
  if (std::find(cfg_.channels.begin(), cfg_.channels.end(), ch) ==
      cfg_.channels.end())
    return 0.0;
  sim::TimeUs len = t1 - t0;
  sim::TimeUs w0 = t0, w1 = t1;
  if (!clip_window(w0, w1, cfg_.start_us, cfg_.stop_us)) return 0.0;

  // Sum overlap with every burst the window can touch.
  sim::TimeUs rel0 = w0 - cfg_.phase_us;
  std::int64_t first = rel0 >= 0 ? rel0 / cfg_.period_us
                                 : -((-rel0 + cfg_.period_us - 1) / cfg_.period_us);
  sim::TimeUs occupied = 0;
  for (std::int64_t k = first;; ++k) {
    sim::TimeUs b0 = cfg_.phase_us + k * cfg_.period_us;
    if (b0 >= w1) break;
    occupied += overlap(w0, w1, b0, b0 + cfg_.burst_us);
  }
  return static_cast<double>(occupied) / static_cast<double>(len);
}

// ---- WifiInterferer --------------------------------------------------------

WifiInterferer::WifiInterferer(Config cfg) : cfg_(std::move(cfg)) {
  DIMMER_REQUIRE(cfg_.duty >= 0.0 && cfg_.duty <= 0.95,
                 "WiFi duty out of [0,0.95]");
  DIMMER_REQUIRE(cfg_.frame_us > 0, "frame must be positive");
  covered_ = channels_under_wifi(cfg_.wifi_channel);
}

bool WifiInterferer::covers(Channel ch) const {
  return std::find(covered_.begin(), covered_.end(), ch) != covered_.end();
}

double WifiInterferer::frame_overlap(sim::TimeUs t0, sim::TimeUs t1,
                                     std::int64_t frame_idx) const {
  sim::TimeUs fstart = frame_idx * cfg_.frame_us;
  // Hash-randomised burst: length ~ duty*frame +/- 50%, offset uniform.
  std::uint64_t h =
      util::hash_u64(cfg_.seed, static_cast<std::uint64_t>(frame_idx));
  double len_frac =
      cfg_.duty * (0.5 + util::pure_uniform(h));  // in [0.5,1.5]*duty
  len_frac = std::min(len_frac, 0.98);
  auto blen = static_cast<sim::TimeUs>(
      len_frac * static_cast<double>(cfg_.frame_us));
  if (blen <= 0) return 0.0;
  auto max_off = static_cast<double>(cfg_.frame_us - blen);
  auto off = static_cast<sim::TimeUs>(
      util::pure_uniform(util::splitmix64(h ^ 0x0ff5e7ULL)) * max_off);
  return static_cast<double>(
      overlap(t0, t1, fstart + off, fstart + off + blen));
}

double WifiInterferer::activity(sim::TimeUs t0, sim::TimeUs t1,
                                Channel ch) const {
  DIMMER_REQUIRE(t1 > t0, "empty interval");
  if (!covers(ch)) return 0.0;
  sim::TimeUs len = t1 - t0;
  sim::TimeUs w0 = t0, w1 = t1;
  if (!clip_window(w0, w1, cfg_.start_us, cfg_.stop_us)) return 0.0;

  std::int64_t f0 = w0 / cfg_.frame_us;
  std::int64_t f1 = (w1 - 1) / cfg_.frame_us;
  double occupied = 0.0;
  for (std::int64_t frame = f0; frame <= f1; ++frame)
    occupied += frame_overlap(w0, w1, frame);
  return occupied / static_cast<double>(len);
}

// ---- AmbientInterferer -----------------------------------------------------

AmbientInterferer::AmbientInterferer(Config cfg) : cfg_(std::move(cfg)) {
  DIMMER_REQUIRE(cfg_.frame_us > 0, "frame must be positive");
  DIMMER_REQUIRE(cfg_.day_duty >= 0.0 && cfg_.day_duty <= 0.5,
                 "ambient day duty out of [0,0.5]");
}

double AmbientInterferer::duty_at(sim::TimeUs t) const {
  double hour = std::fmod(sim::to_seconds(t) / 3600.0, 24.0);
  bool day = hour >= cfg_.day_start_h && hour < cfg_.day_end_h;
  return day ? cfg_.day_duty : cfg_.night_duty;
}

double AmbientInterferer::activity(sim::TimeUs t0, sim::TimeUs t1,
                                   Channel ch) const {
  DIMMER_REQUIRE(t1 > t0, "empty interval");
  sim::TimeUs len = t1 - t0;
  std::int64_t f0 = t0 / cfg_.frame_us;
  std::int64_t f1 = (t1 - 1) / cfg_.frame_us;
  double occupied = 0.0;
  for (std::int64_t frame = f0; frame <= f1; ++frame) {
    sim::TimeUs fstart = frame * cfg_.frame_us;
    double duty = duty_at(fstart);
    std::uint64_t h =
        util::hash_u64(cfg_.seed, static_cast<std::uint64_t>(frame),
                       static_cast<std::uint64_t>(ch));
    // In each frame the channel carries one short burst with probability
    // duty / burst_fraction, preserving the mean occupancy `duty`.
    if (util::pure_uniform(h) >= duty / cfg_.burst_fraction) continue;
    auto blen = static_cast<sim::TimeUs>(
        cfg_.burst_fraction * static_cast<double>(cfg_.frame_us));
    auto off = static_cast<sim::TimeUs>(
        util::pure_uniform(util::splitmix64(h ^ 0xa3b1e7ULL)) *
        static_cast<double>(cfg_.frame_us - blen));
    occupied += static_cast<double>(
        overlap(t0, t1, fstart + off, fstart + off + blen));
  }
  return std::min(1.0, occupied / static_cast<double>(len));
}

// ---- InterferenceField -----------------------------------------------------

void InterferenceField::add(std::unique_ptr<InterferenceSource> src) {
  DIMMER_REQUIRE(src != nullptr, "null interference source");
  sources_.push_back(std::move(src));
}

InterferenceSample InterferenceField::sample(sim::TimeUs t0, sim::TimeUs t1,
                                             Channel ch, NodeId rx,
                                             const Topology& topo) const {
  InterferenceSample out;
  for (const auto& src : sources_) {
    double act = src->activity(t0, t1, ch);
    if (act <= 0.0) continue;
    double rx_dbm = src->tx_power_dbm() +
                    topo.gain_from_point_db(src->position(), rx,
                                            src->shadow_tag());
    out.power_mw += dbm_to_mw(rx_dbm);
    out.exposure = std::max(out.exposure, act);
  }
  return out;
}

// ---- D-Cube profiles -------------------------------------------------------

void add_dcube_wifi_level(InterferenceField& field, const Topology& topo,
                          int level, std::uint64_t seed) {
  DIMMER_REQUIRE(level == 1 || level == 2, "D-Cube WiFi level is 1 or 2");
  // APs placed across the deployment area. Level 1: three APs at moderate
  // duty leaving parts of the band free; level 2: eight APs, higher duty,
  // covering the whole band including channel 26.
  double minx = 1e9, maxx = -1e9, miny = 1e9, maxy = -1e9;
  for (int n = 0; n < topo.size(); ++n) {
    Vec2 p = topo.position(n);
    minx = std::min(minx, p.x);
    maxx = std::max(maxx, p.x);
    miny = std::min(miny, p.y);
    maxy = std::max(maxy, p.y);
  }
  auto at = [&](double fx, double fy) {
    return Vec2{minx + fx * (maxx - minx), miny + fy * (maxy - miny)};
  };
  struct Ap {
    Vec2 pos;
    int wifi_channel;
  };
  // WiFi channels 3 / 8 / 13 blanket the 802.15.4 band in three stripes
  // (11-15, 16-20, 23-26); D-Cube's controlled interference leaves no
  // escape channel, only temporal gaps.
  std::vector<Ap> aps;
  if (level == 1) {
    aps = {{at(0.2, 0.3), 3}, {at(0.55, 0.7), 8}, {at(0.65, 0.35), 13}};
  } else {
    aps = {{at(0.15, 0.25), 3},
           {at(0.4, 0.8), 8},
           {at(0.6, 0.2), 13},
           {at(0.85, 0.7), 3},
           {at(0.05, 0.5), 13},   // one AP sits near the coordinator
           {at(0.35, 0.45), 13},  // and the band edge is hit twice more
           {at(0.7, 0.6), 13},
           {at(0.5, 0.5), 8}};
  }
  double duty = level == 1 ? 0.35 : 0.85;
  std::uint64_t tag = 0x0DCBE000ULL + static_cast<std::uint64_t>(level) * 16;
  for (std::size_t i = 0; i < aps.size(); ++i) {
    WifiInterferer::Config cfg;
    cfg.position = aps[i].pos;
    cfg.wifi_channel = aps[i].wifi_channel;
    cfg.duty = duty;
    cfg.tx_power_dbm = level == 1 ? 10.0 : 15.0;
    // Level 2 emits longer contiguous bursts: fewer within-slot gaps.
    cfg.frame_us = level == 1 ? sim::ms(40) : sim::ms(100);
    cfg.seed = util::hash_u64(seed, i);
    cfg.tag = tag + i;
    field.add(std::make_unique<WifiInterferer>(cfg));
  }
}

}  // namespace dimmer::phy
