// Sparse (culled CSR) LinkModel backend for large topologies.
//
// A dense link matrix costs 8*N^2 bytes and makes every flood step sweep
// mostly-irrelevant rows: at city scale almost all (tx, rx) pairs are so far
// apart that their received power is orders of magnitude below the noise
// floor and can never influence a reception decision. SparseLinkModel culls
// those links at build time — a link survives iff its rx power (dBm) is at
// or above a configurable floor relative to the radio's noise floor —
// and stores the survivors as CSR rows per transmitter.
//
// Determinism contract (DESIGN.md §13):
//  - Surviving links hold the *exact* double the dense CachedLinkModel would
//    hold: the same rx_power_dbm expression fed through the same
//    dbm_to_mw_batch kernel (which is lanewise pure, so compacting survivors
//    before the batch conversion cannot change their bits).
//  - With culling disabled (Config::no_culling), every link survives, rows
//    are full, and a flood engine driven by this backend is bit-identical to
//    one driven by CachedLinkModel — FloodResult AND RNG end-state
//    (tests/flood/test_sparse_differential.cpp).
//  - With culling enabled, the total culled power any listener could ever
//    lose is bounded by cull_floor_mw * fan-in (each culled link is below
//    the floor; tests/phy/test_sparse_link_model.cpp proves the bound), so a
//    floor chosen via Config::bounded_influence keeps the aggregate error
//    strictly below the noise floor's own contribution to SINR.
#pragma once

#include <cstddef>
#include <vector>

#include "phy/link_model.hpp"
#include "phy/topology.hpp"

namespace dimmer::phy {

class SparseLinkModel final : public LinkModel {
 public:
  struct Config {
    /// Links whose rx power falls below noise_floor_dbm - cull_margin_db are
    /// dropped. Must be positive; +infinity keeps every link.
    double cull_margin_db = 20.0;

    /// Culling disabled: every link survives and results are bit-identical
    /// to CachedLinkModel (the point of this config is the differential
    /// suite; it stores N^2 entries, so only use it at small N).
    static Config no_culling();

    /// A margin guaranteeing that the *summed* culled power at any listener
    /// stays at least `headroom_db` below the noise floor even if all n-1
    /// other nodes transmit at once: cull_floor_mw * (n-1) <=
    /// noise_mw / 10^(headroom_db/10). Grows as 10*log10(n-1), so the bound
    /// holds at any scale.
    static Config bounded_influence(int n, double headroom_db = 10.0);
  };

  /// Default config: the 20 dB culling margin.
  explicit SparseLinkModel(const Topology& topo);
  SparseLinkModel(const Topology& topo, Config cfg);

  const Topology& topology() const override { return *topo_; }

  /// Dense compatibility fallback: scatters the CSR rows into an internally
  /// held row-major matrix (culled entries read as exactly 0.0 mW). Costs
  /// O(N^2) memory — the flood engine never calls it when prepare_sparse is
  /// available; it exists for dense-only consumers and tests.
  LinkMatrixView prepare(double tx_power_dbm) override;

  const SparseLinkView* prepare_sparse(double tx_power_dbm) override;

  /// Number of full CSR recomputations so far (test/bench introspection).
  int rebuilds() const { return rebuilds_; }

  /// Culling floor in dBm (noise floor minus the configured margin).
  double cull_floor_dbm() const;

  /// Survived-link count of the last prepared view (0 before any prepare).
  std::size_t nnz() const { return mw_.size(); }

  /// Bytes held by the CSR arrays (row_ptr + col + mw) — the number the
  /// scale bench reports against the dense 8*N^2.
  std::size_t storage_bytes() const;

 private:
  void rebuild(double tx_power_dbm);

  const Topology* topo_;
  Config cfg_;
  std::vector<std::size_t> row_ptr_;  // n+1 offsets
  std::vector<NodeId> col_;           // nnz listener ids
  std::vector<double> mw_;            // nnz received powers
  std::vector<double> dbm_row_;       // rebuild scratch: one full dBm row
  std::vector<double> keep_dbm_;      // rebuild scratch: compacted survivors
  std::vector<double> dense_;         // lazily sized only if prepare() runs
  SparseLinkView view_;
  double cached_power_dbm_ = 0.0;
  bool valid_ = false;
  int rebuilds_ = 0;
};

}  // namespace dimmer::phy
