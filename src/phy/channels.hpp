// IEEE 802.15.4 (2.4 GHz) channel plan and its overlap with IEEE 802.11.
//
// 802.15.4 defines channels 11..26 at 2405 + 5*(k-11) MHz, 2 MHz wide.
// A 20 MHz WiFi channel w is centered at 2412 + 5*(w-1) MHz and blankets the
// four-ish 802.15.4 channels within +/-11 MHz of its center. Channel 26
// (2480 MHz) escapes WiFi channels 1-11 in most regulatory domains, which is
// why the paper runs its control slots there.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace dimmer::phy {

using Channel = std::uint8_t;

constexpr Channel kFirstChannel = 11;
constexpr Channel kLastChannel = 26;
constexpr int kNumChannels = kLastChannel - kFirstChannel + 1;

/// Channel the paper uses for all control slots.
constexpr Channel kControlChannel = 26;

constexpr bool is_valid_channel(Channel c) {
  return c >= kFirstChannel && c <= kLastChannel;
}

/// Center frequency in MHz of an 802.15.4 channel.
constexpr double channel_mhz(Channel c) { return 2405.0 + 5.0 * (c - 11); }

/// Center frequency in MHz of a 2.4 GHz WiFi channel (1..13).
constexpr double wifi_channel_mhz(int w) { return 2412.0 + 5.0 * (w - 1); }

/// 802.15.4 channels blanketed by a given WiFi channel (within +/-11 MHz).
inline std::vector<Channel> channels_under_wifi(int wifi_channel) {
  DIMMER_REQUIRE(wifi_channel >= 1 && wifi_channel <= 13,
                 "WiFi channel out of 1..13");
  std::vector<Channel> out;
  for (Channel c = kFirstChannel; c <= kLastChannel; ++c) {
    double delta = channel_mhz(c) - wifi_channel_mhz(wifi_channel);
    if (delta >= -11.0 && delta <= 11.0) out.push_back(c);
  }
  return out;
}

/// The paper's slot-based hopping: "a static, global hopping-sequence is used
/// for data slots, while all control slots are executed on channel 26". The
/// sequence spreads across the band so that at least some slots land outside
/// whatever stripe of the spectrum WiFi currently occupies.
inline const std::array<Channel, 4>& default_hopping_sequence() {
  static const std::array<Channel, 4> seq = {15, 20, 22, 26};
  return seq;
}

}  // namespace dimmer::phy
