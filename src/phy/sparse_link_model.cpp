#include "phy/sparse_link_model.hpp"

#include <cmath>
#include <limits>

#include "phy/batched.hpp"
#include "util/check.hpp"

namespace dimmer::phy {

SparseLinkModel::Config SparseLinkModel::Config::no_culling() {
  Config c;
  c.cull_margin_db = std::numeric_limits<double>::infinity();
  return c;
}

SparseLinkModel::Config SparseLinkModel::Config::bounded_influence(
    int n, double headroom_db) {
  DIMMER_REQUIRE(n >= 2, "bounded_influence needs >= 2 nodes");
  DIMMER_REQUIRE(headroom_db >= 0.0, "headroom_db must be >= 0");
  // floor_mw * (n-1) <= noise_mw * 10^(-headroom/10)
  //   <=> margin_db >= headroom_db + 10*log10(n-1).
  Config c;
  c.cull_margin_db = headroom_db + 10.0 * std::log10(static_cast<double>(n - 1));
  return c;
}

SparseLinkModel::SparseLinkModel(const Topology& topo)
    : SparseLinkModel(topo, Config{}) {}

SparseLinkModel::SparseLinkModel(const Topology& topo, Config cfg)
    : topo_(&topo), cfg_(cfg) {
  // NaN margins would make the keep predicate silently drop every link
  // (NaN comparisons are false); a zero/negative margin would cull links
  // *above* the noise floor, which is a config error, not a model.
  DIMMER_REQUIRE(cfg_.cull_margin_db > 0.0,
                 "cull_margin_db must be positive (may be +inf)");
}

double SparseLinkModel::cull_floor_dbm() const {
  return topo_->radio().noise_floor_dbm - cfg_.cull_margin_db;
}

std::size_t SparseLinkModel::storage_bytes() const {
  return row_ptr_.size() * sizeof(std::size_t) + col_.size() * sizeof(NodeId) +
         mw_.size() * sizeof(double);
}

void SparseLinkModel::rebuild(double tx_power_dbm) {
  const int n = topo_->size();
  const auto un = static_cast<std::size_t>(n);
  const double floor_dbm = cull_floor_dbm();  // -inf when culling is disabled

  row_ptr_.assign(un + 1, 0);
  col_.clear();
  mw_.clear();
  dbm_row_.resize(un);
  keep_dbm_.resize(un);

  for (NodeId tx = 0; tx < n; ++tx) {
    // The exact dense expression: rx_power_dbm per listener, survivors
    // compacted, then the same batch dBm->mW kernel CachedLinkModel uses.
    // The kernel is lanewise pure (DESIGN.md §12), so a survivor's mW bits
    // do not depend on which other listeners sit beside it in the batch.
    for (NodeId rx = 0; rx < n; ++rx)
      dbm_row_[static_cast<std::size_t>(rx)] =
          topo_->rx_power_dbm(tx, rx, tx_power_dbm);
    int kept = 0;
    for (NodeId rx = 0; rx < n; ++rx) {
      const double dbm = dbm_row_[static_cast<std::size_t>(rx)];
      if (dbm >= floor_dbm) {
        col_.push_back(rx);
        keep_dbm_[static_cast<std::size_t>(kept++)] = dbm;
      }
    }
    const std::size_t base = mw_.size();
    mw_.resize(base + static_cast<std::size_t>(kept));
    dbm_to_mw_batch(keep_dbm_.data(), mw_.data() + base, kept);
    row_ptr_[static_cast<std::size_t>(tx) + 1] = mw_.size();
  }

  view_ = SparseLinkView{row_ptr_.data(), col_.data(), mw_.data(), n};
}

const SparseLinkView* SparseLinkModel::prepare_sparse(double tx_power_dbm) {
  // Same NaN rejection as CachedLinkModel: NaN != NaN defeats the cache
  // check and would rebuild the CSR on every flood.
  DIMMER_REQUIRE(std::isfinite(tx_power_dbm), "tx_power_dbm must be finite");
  if (!valid_ || tx_power_dbm != cached_power_dbm_) {
    rebuild(tx_power_dbm);
    cached_power_dbm_ = tx_power_dbm;
    valid_ = true;
    ++rebuilds_;
  }
  return &view_;
}

LinkMatrixView SparseLinkModel::prepare(double tx_power_dbm) {
  const SparseLinkView* v = prepare_sparse(tx_power_dbm);
  const auto un = static_cast<std::size_t>(v->n);
  dense_.assign(un * un, 0.0);
  for (NodeId tx = 0; tx < v->n; ++tx) {
    double* row = dense_.data() + static_cast<std::size_t>(tx) * un;
    for (std::size_t k = v->row_begin(tx); k < v->row_end(tx); ++k)
      row[static_cast<std::size_t>(v->col[k])] = v->mw[k];
  }
  return LinkMatrixView{dense_.data(), v->n};
}

}  // namespace dimmer::phy
