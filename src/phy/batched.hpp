// Batched PHY evaluators over the util/simd backend-generic value type.
//
// The Glossy step loop evaluates the same short chain of transcendental math
// for every awake listener: fading (10^(x/10)), mW -> dBm (log10), the
// 15-term 802.15.4 BER exp sum, and the (1-BER)^bits success power. This
// header provides batch forms of that chain, written once against
// simd<double, N> so one source compiles to scalar code (DIMMER_SIMD=scalar)
// or to 4/8-lane AVX kernels (avx2/avx512).
//
// Determinism contract (DESIGN.md §12):
//  - At native_width == 1 every entry point below reduces to the *exact*
//    historical scalar expressions (std::pow / std::exp / std::log10, same
//    association, same branch structure), so scalar-backend results are
//    byte-identical to pre-SIMD builds. Tests pin this bitwise.
//  - At native_width > 1 the kernels are pure lanewise functions: a value's
//    result depends only on that value, never on its lane position or on the
//    other batch entries. Results differ from scalar std:: by bounded ulp
//    (the polynomial kernels in util/simd/math.hpp); the scalar-vs-SIMD
//    equivalence tests bound the difference per site.
//  - No cross-lane reductions anywhere (the dimmer-lint simd-fp-order rule
//    polices this in hot regions).
//
// The templated kernels live in phy::simd_kernels so tests can instantiate
// them at width 1 on any build; the non-template entry points (batched.cpp)
// run them at util::simd::native_width.
#pragma once

#include <cmath>
#include <vector>

#include "phy/per.hpp"
#include "util/simd/simd.hpp"

namespace dimmer::phy {

namespace simd_kernels {

/// C(16, k) for k = 0..16 — the 802.15.4 BER binomial table (the canonical
/// copy of the formula lives in per.cpp; equality of the two is pinned
/// bitwise by tests/phy/test_batched.cpp).
constexpr double kBinom16Batch[17] = {
    1,    16,   120,  560,   1820,  4368, 8008, 11440, 12870,
    11440, 8008, 4368, 1820, 560,   120,  16,   1};

/// Lanewise ber_802154: at width 1 this is the scalar function's expression
/// sequence verbatim (via the width-1 dispatch of exp10/exp).
template <typename V>
inline V ber_802154_kernel(V sinr_db) {
  using util::simd::max;
  using util::simd::min;
  const V sinr = util::simd::exp10(sinr_db / V::broadcast(10.0));
  V acc = V::broadcast(0.0);
  for (int k = 2; k <= 16; ++k) {
    const double ck = 1.0 / k - 1.0;
    const V term = V::broadcast(kBinom16Batch[k]) *
                   util::simd::exp((V::broadcast(20.0) * sinr) *
                                   V::broadcast(ck));
    acc = (k % 2 == 0) ? acc + term : acc - term;
  }
  V ber = V::broadcast((8.0 / 15.0) * (1.0 / 16.0)) * acc;
  ber = max(ber, V::broadcast(0.0));
  ber = min(ber, V::broadcast(0.5));
  return ber;
}

/// Lanewise mw_to_dbm. Width 1 matches phy::mw_to_dbm bitwise (std::log10);
/// wider backends compute 10*log10(mw) as log2(mw) * (10*log10(2)).
template <typename V>
inline V mw_to_dbm_kernel(V mw) {
  if constexpr (V::width == 1) {
    return V(mw.v > 0.0 ? 10.0 * std::log10(mw.v) : -300.0);
  } else {
    using util::simd::select_lt;
    const V zero = V::broadcast(0.0);
    // Feed a benign 1.0 into log2 on non-positive lanes; the select below
    // overwrites them with the -300 dBm floor.
    const V safe = select_lt(zero, mw, mw, V::broadcast(1.0));
    const V dbm =
        util::simd::log2(safe) * V::broadcast(10.0 * 3.01029995663981195214e-1);
    return select_lt(zero, mw, dbm, V::broadcast(-300.0));
  }
}

/// Lanewise frame_success_prob. Width 1 defers to the branchy scalar
/// combine (including the jam_fraction == 0/1 short-circuits and the
/// equal-SINR BER reuse); wider backends evaluate the general expression
/// branchlessly — the short-circuit cases coincide with it because
/// bits * 0.0 == +0.0 and pow_positive(x, +0.0) == 1.0 exactly, and equal
/// SINR lanes produce bitwise-equal BERs from the same lanewise kernel.
template <typename V>
inline V frame_success_kernel(V sinr_clean_db, V sinr_jammed_db,
                              V jam_fraction, int frame_bytes) {
  if constexpr (V::width == 1) {
    return V(frame_success_prob(sinr_clean_db.v, sinr_jammed_db.v,
                                jam_fraction.v, frame_bytes));
  } else {
    using util::simd::max;
    using util::simd::min;
    using util::simd::pow_positive;
    const V one = V::broadcast(1.0);
    const V jam = min(max(jam_fraction, V::broadcast(0.0)), one);
    const V bits = V::broadcast(8.0 * frame_bytes);
    const V clean_bits = bits * (one - jam);
    const V jam_bits = bits * jam;
    const V ber_clean = ber_802154_kernel(sinr_clean_db);
    const V ber_jam = ber_802154_kernel(sinr_jammed_db);
    return pow_positive(one - ber_clean, clean_bits) *
           pow_positive(one - ber_jam, jam_bits);
  }
}

}  // namespace simd_kernels

/// Batch phy::dbm_to_mw: mw[i] = 10^(dbm[i]/10) for i in [0, count).
/// Scalar backend: bitwise std::pow(10.0, dbm/10.0).
void dbm_to_mw_batch(const double* dbm, double* mw, int count);

/// Batch phy::ber_802154 over SINRs in dB.
void ber_802154_batch(const double* sinr_db, double* ber, int count);

/// Batch phy::frame_success_prob (same argument conventions).
void frame_success_prob_batch(const double* sinr_clean_db,
                              const double* sinr_jammed_db,
                              const double* jam_fraction, int frame_bytes,
                              double* p_ok, int count);

/// Structure-of-arrays staging buffer for one flood step's receptions.
///
/// The flood engine gathers per-listener inputs (powers, the pre-drawn
/// fading and Bernoulli variates, interference) in listener order, calls
/// reception_success_batch once, then applies the decisions — preserving
/// the historical per-listener RNG draw order exactly (normal before
/// uniform, listeners ascending). Reused across steps/floods; size with
/// resize(n) outside the hot loop, then set `count` per step.
struct ReceptionBatch {
  std::vector<double> strongest_mw;  ///< strongest concurrent TX power
  std::vector<double> total_mw;      ///< summed concurrent TX power
  std::vector<double> fade_db;       ///< rng.normal(0, sigma) draw (if fading)
  std::vector<double> interf_mw;     ///< sampled interference power
  std::vector<double> jam_fraction;  ///< interference exposure
  std::vector<double> uniform;       ///< rng.uniform() draw (Bernoulli)
  std::vector<double> p_ok;          ///< output: success probability
  int count = 0;                     ///< active prefix length

  /// Sizes every array to n (count is left to the caller). Amortized: no
  /// reallocation once capacity is established.
  void resize(int n) {
    const auto m = static_cast<std::size_t>(n);
    strongest_mw.resize(m);
    total_mw.resize(m);
    fade_db.resize(m);
    interf_mw.resize(m);
    jam_fraction.resize(m);
    uniform.resize(m);
    p_ok.resize(m);
  }
};

/// Computes p_ok[0, count) from the gathered inputs — the exact reception
/// math of GlossyFlood step 3b:
///
///   signal = strongest + coherence_gain * (total - strongest)
///   if (apply_fading) signal *= 10^(fade_db/10)
///   sinr_clean = mw_to_dbm(signal) - noise_dbm
///   sinr_jam   = interf == 0 ? sinr_clean
///                            : mw_to_dbm(signal) - mw_to_dbm(noise_mw+interf)
///   p_ok = frame_success_prob(sinr_clean, sinr_jam, jam_fraction, frame_bytes)
///
/// `noise_dbm` must be the caller's hoisted mw_to_dbm(noise_mw) so the
/// zero-interference path reuses its exact bits (as the engine always has).
void reception_success_batch(ReceptionBatch& b, double coherence_gain,
                             bool apply_fading, double noise_mw,
                             double noise_dbm, int frame_bytes);

}  // namespace dimmer::phy
