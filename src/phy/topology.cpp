#include "phy/topology.hpp"

#include <algorithm>
#include <cmath>

#include "phy/per.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dimmer::phy {

namespace {
/// Deterministic standard-normal draw from a hash (Box-Muller on two hashes).
double hashed_normal(std::uint64_t h) {
  double u1 = util::pure_uniform(util::splitmix64(h));
  double u2 = util::pure_uniform(util::splitmix64(h ^ 0xabcdef1234567890ULL));
  if (u1 < 1e-12) u1 = 1e-12;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}
}  // namespace

Topology::Topology(std::vector<Vec2> positions, PathLossModel model,
                   RadioConstants radio, std::uint64_t shadow_seed)
    : positions_(std::move(positions)),
      model_(model),
      radio_(radio),
      shadow_seed_(shadow_seed) {
  DIMMER_REQUIRE(positions_.size() >= 2, "topology needs at least two nodes");
  int n = size();
  gain_.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      double d = distance(positions_[a], positions_[b]);
      double shadow =
          model_.shadowing_sigma_db *
          hashed_normal(util::hash_u64(shadow_seed_, static_cast<std::uint64_t>(a),
                                       static_cast<std::uint64_t>(b)));
      double g = -model_.path_loss_db(d) + shadow;
      gain_at(a, b) = g;
      gain_at(b, a) = g;  // symmetric links
    }
    gain_at(a, a) = 0.0;
  }
}

double Topology::pair_gain(NodeId a, NodeId b) const {
  if (a == b) return 0.0;
  // Evaluate with the lower id first: distance() is bitwise symmetric
  // ((x-y)^2 == (y-x)^2 exactly) and the dense constructor keys the
  // shadowing hash on (min, max), so this reproduces its bits for either
  // argument order.
  const NodeId lo = a < b ? a : b;
  const NodeId hi = a < b ? b : a;
  const double d = distance(positions_[static_cast<std::size_t>(lo)],
                            positions_[static_cast<std::size_t>(hi)]);
  const double shadow =
      model_.shadowing_sigma_db *
      hashed_normal(util::hash_u64(shadow_seed_, static_cast<std::uint64_t>(lo),
                                   static_cast<std::uint64_t>(hi)));
  return -model_.path_loss_db(d) + shadow;
}

Topology::Topology(std::vector<Vec2> positions, PathLossModel model,
                   RadioConstants radio, std::uint64_t shadow_seed,
                   double gain_floor_db)
    : positions_(std::move(positions)),
      model_(model),
      radio_(radio),
      shadow_seed_(shadow_seed),
      culled_(true),
      gain_floor_db_(gain_floor_db) {
  DIMMER_REQUIRE(positions_.size() >= 2, "topology needs at least two nodes");
  DIMMER_REQUIRE(!std::isnan(gain_floor_db), "gain_floor_db must not be NaN");
  const int n = size();
  const auto un = static_cast<std::size_t>(n);
  row_ptr_.assign(un + 1, 0);
  // Typical mesh survivor count; rows append without a dense intermediate,
  // which is the point: peak memory is O(nnz), never O(N^2).
  col_.reserve(un * 16);
  cgain_.reserve(un * 16);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      // The diagonal (0.0 self-gain) always survives, matching the dense
      // matrix; NaN floors are rejected above so `>=` is a total predicate.
      const double g = pair_gain(a, b);
      if (a == b || g >= gain_floor_db) {
        col_.push_back(b);
        cgain_.push_back(g);
      }
    }
    row_ptr_[static_cast<std::size_t>(a) + 1] = col_.size();
  }
}

Vec2 Topology::position(NodeId n) const {
  DIMMER_REQUIRE(n >= 0 && n < size(), "node id out of range");
  return positions_[static_cast<std::size_t>(n)];
}

std::size_t Topology::gain_nnz() const {
  return culled_ ? cgain_.size() : gain_.size();
}

std::size_t Topology::gain_storage_bytes() const {
  if (!culled_) return gain_.size() * sizeof(double);
  return row_ptr_.size() * sizeof(std::size_t) + col_.size() * sizeof(NodeId) +
         cgain_.size() * sizeof(double);
}

double Topology::gain_db(NodeId tx, NodeId rx) const {
  // Hot accessor: called O(n^2) per link-matrix build and per BFS sweep.
  // Bounds are validated at the enclosing API boundaries (flood entry,
  // hop_counts), so the per-call check is debug-only.
  DIMMER_DEBUG_ASSERT(tx >= 0 && tx < size() && rx >= 0 && rx < size(),
                      "node id out of range");
  if (!culled_) return gain_[static_cast<std::size_t>(tx) * size() + rx];
  // CSR row binary search; a culled pair is a link that does not exist.
  const NodeId* lo = col_.data() + row_ptr_[static_cast<std::size_t>(tx)];
  const NodeId* hi = col_.data() + row_ptr_[static_cast<std::size_t>(tx) + 1];
  const NodeId* it = std::lower_bound(lo, hi, rx);
  if (it == hi || *it != rx)
    return -std::numeric_limits<double>::infinity();
  return cgain_[static_cast<std::size_t>(it - col_.data())];
}

double Topology::rx_power_dbm(NodeId tx, NodeId rx,
                              double tx_power_dbm) const {
  return tx_power_dbm + gain_db(tx, rx);
}

double Topology::gain_from_point_db(Vec2 p, NodeId rx,
                                    std::uint64_t shadow_tag) const {
  DIMMER_REQUIRE(rx >= 0 && rx < size(), "node id out of range");
  double d = distance(p, positions_[static_cast<std::size_t>(rx)]);
  // Restricted sub-topologies key the draw on the parent id, so a cell-local
  // node sees the exact interference shadowing of its global counterpart.
  double shadow =
      model_.shadowing_sigma_db *
      hashed_normal(util::hash_u64(shadow_seed_ ^ 0x9d2c5680ULL, shadow_tag,
                                   static_cast<std::uint64_t>(parent_id(rx))));
  return -model_.path_loss_db(d) + shadow;
}

NodeId Topology::parent_id(NodeId n) const {
  DIMMER_REQUIRE(n >= 0 && n < size(), "node id out of range");
  return parent_ids_.empty() ? n : parent_ids_[static_cast<std::size_t>(n)];
}

Topology::Topology(RestrictedTag, const Topology& parent,
                   const std::vector<NodeId>& members)
    : model_(parent.model_),
      radio_(parent.radio_),
      shadow_seed_(parent.shadow_seed_),
      culled_(parent.culled_),
      gain_floor_db_(parent.gain_floor_db_) {
  const int m = static_cast<int>(members.size());
  DIMMER_REQUIRE(m >= 2, "restricted topology needs >= 2 members");
  positions_.reserve(members.size());
  parent_ids_.reserve(members.size());
  for (int i = 0; i < m; ++i) {
    const NodeId g = members[static_cast<std::size_t>(i)];
    DIMMER_REQUIRE(g >= 0 && g < parent.size(), "member id out of range");
    DIMMER_REQUIRE(i == 0 || g > members[static_cast<std::size_t>(i) - 1],
                   "members must be strictly ascending");
    positions_.push_back(parent.positions_[static_cast<std::size_t>(g)]);
    // Compose through the parent's own mapping so nested restrictions still
    // key external shadowing on the original topology's ids.
    parent_ids_.push_back(parent.parent_id(g));
  }
  if (!culled_) {
    gain_.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(m),
                 0.0);
    for (NodeId a = 0; a < m; ++a)
      for (NodeId b = 0; b < m; ++b)
        gain_at(a, b) = parent.gain_db(members[static_cast<std::size_t>(a)],
                                       members[static_cast<std::size_t>(b)]);
    return;
  }
  // Culled parent: copy the member rows' survivors (bit-identical values);
  // a pair culled in the parent stays culled here.
  row_ptr_.assign(static_cast<std::size_t>(m) + 1, 0);
  for (NodeId a = 0; a < m; ++a) {
    const NodeId ga = members[static_cast<std::size_t>(a)];
    for (NodeId b = 0; b < m; ++b) {
      const double g = parent.gain_db(ga, members[static_cast<std::size_t>(b)]);
      if (g == -std::numeric_limits<double>::infinity()) continue;
      col_.push_back(b);
      cgain_.push_back(g);
    }
    row_ptr_[static_cast<std::size_t>(a) + 1] = col_.size();
  }
}

Topology Topology::restricted(const std::vector<NodeId>& members) const {
  return Topology(RestrictedTag{}, *this, members);
}

double Topology::sinr_threshold_db(int frame_bytes, double target_per) {
  DIMMER_REQUIRE(target_per > 0.0 && target_per < 1.0,
                 "target_per out of (0,1)");
  // The bisection is a pure function of (frame_bytes, target_per) but costs
  // 60 per_802154 evaluations; hop_counts historically re-ran it on every
  // call (make_random_topology: up to 256 calls per topology). Memoize the
  // handful of distinct argument pairs per thread — the cached value is the
  // bisection's own output, so results are unchanged.
  struct Entry {
    int frame_bytes;
    double target_per;
    double threshold;
  };
  thread_local std::vector<Entry> cache;
  for (const Entry& e : cache)
    if (e.frame_bytes == frame_bytes && e.target_per == target_per)
      return e.threshold;

  double lo = -10.0, hi = 20.0;
  for (int i = 0; i < 60; ++i) {
    double mid = 0.5 * (lo + hi);
    if (per_802154(mid, frame_bytes) > target_per)
      lo = mid;
    else
      hi = mid;
  }
  cache.push_back(Entry{frame_bytes, target_per, hi});
  return hi;
}

NeighborCsr Topology::good_neighbors(int frame_bytes,
                                     double tx_power_dbm) const {
  const int n = size();
  const double need_dbm =
      radio_.noise_floor_dbm + sinr_threshold_db(frame_bytes, 0.1);
  NeighborCsr adj;
  adj.n = n;
  adj.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  adj.col.reserve(static_cast<std::size_t>(n) * 8);  // typical mesh degree
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (v == u) continue;
      if (rx_power_dbm(u, v, tx_power_dbm) >= need_dbm) adj.col.push_back(v);
    }
    adj.row_ptr[static_cast<std::size_t>(u) + 1] = adj.col.size();
  }
  return adj;
}

std::vector<int> Topology::hop_counts_from(NodeId root,
                                           const NeighborCsr& adj) const {
  DIMMER_REQUIRE(root >= 0 && root < size(), "node id out of range");
  DIMMER_REQUIRE(adj.n == size(), "adjacency built for another topology size");
  std::vector<int> hops(static_cast<std::size_t>(size()), -1);
  // BFS over the CSR rows. The frontier is a plain vector consumed front to
  // back (never reallocated past n); neighbors are stored ascending per row,
  // so discovery order — and therefore every hop count — matches the
  // historical dense BFS that scanned all N nodes per dequeue.
  std::vector<NodeId> frontier;
  frontier.reserve(static_cast<std::size_t>(size()));
  hops[static_cast<std::size_t>(root)] = 0;
  frontier.push_back(root);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId u = frontier[head];
    const std::size_t end = adj.row_ptr[static_cast<std::size_t>(u) + 1];
    for (std::size_t k = adj.row_ptr[static_cast<std::size_t>(u)]; k < end;
         ++k) {
      const NodeId v = adj.col[k];
      if (hops[static_cast<std::size_t>(v)] >= 0) continue;
      hops[static_cast<std::size_t>(v)] = hops[static_cast<std::size_t>(u)] + 1;
      frontier.push_back(v);
    }
  }
  return hops;
}

std::vector<int> Topology::hop_counts(NodeId root, int frame_bytes,
                                      double tx_power_dbm) const {
  DIMMER_REQUIRE(root >= 0 && root < size(), "node id out of range");
  return hop_counts_from(root, good_neighbors(frame_bytes, tx_power_dbm));
}

// ---- Factories -----------------------------------------------------------

namespace {
/// Office-grade propagation: walls push the exponent up; links are solid to
/// ~15 m and marginal around ~25 m at 0 dBm, giving multi-hop office scales.
PathLossModel office_path_loss() {
  PathLossModel m;
  m.pl_d0_db = 46.0;
  m.exponent = 3.8;  // walls between offices and lab rooms
  m.shadowing_sigma_db = 4.0;
  return m;
}
}  // namespace

Topology make_line_topology(int n, double spacing_m,
                            std::uint64_t shadow_seed) {
  DIMMER_REQUIRE(n >= 2, "line topology needs >= 2 nodes");
  std::vector<Vec2> pos;
  pos.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pos.push_back({spacing_m * i, 0.0});
  return Topology(std::move(pos), office_path_loss(), RadioConstants{},
                  shadow_seed);
}

Topology make_grid_topology(int rows, int cols, double spacing_m,
                            std::uint64_t shadow_seed) {
  DIMMER_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2,
                 "grid topology needs >= 2 nodes");
  std::vector<Vec2> pos;
  pos.reserve(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      pos.push_back({spacing_m * c, spacing_m * r});
  return Topology(std::move(pos), office_path_loss(), RadioConstants{},
                  shadow_seed);
}

Topology make_random_topology(int n, double width_m, double height_m,
                              std::uint64_t seed) {
  DIMMER_REQUIRE(n >= 2, "random topology needs >= 2 nodes");
  util::Pcg32 rng(seed);
  for (int attempt = 0; attempt < 256; ++attempt) {
    std::vector<Vec2> pos;
    pos.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      pos.push_back({rng.uniform(0.0, width_m), rng.uniform(0.0, height_m)});
    Topology t(std::move(pos), office_path_loss(), RadioConstants{},
               util::hash_u64(seed, static_cast<std::uint64_t>(attempt)));
    auto hops = t.hop_counts(0);
    if (std::all_of(hops.begin(), hops.end(), [](int h) { return h >= 0; }))
      return t;
  }
  throw util::RequireError(
      "could not generate a connected random topology; "
      "box too large for the node count");
}

Topology make_office18_topology(std::uint64_t shadow_seed) {
  // 18 nodes along a 55 m office corridor with lab rooms on both sides;
  // node 0 (coordinator) sits in the first office, matching the paper's
  // 3-hop diameter at 0 dBm.
  std::vector<Vec2> pos = {
      {2.0, 3.0},   // 0: coordinator, first office
      {6.5, 9.0},   // 1
      {9.5, 2.5},   // 2
      {13.5, 9.5},  // 3
      {16.5, 3.5},  // 4
      {20.0, 9.0},  // 5
      {23.5, 2.5},  // 6
      {27.0, 9.5},  // 7
      {30.0, 4.0},  // 8
      {33.5, 10.5}, // 9
      {36.5, 2.5},  // 10
      {40.0, 9.0},  // 11
      {43.0, 3.5},  // 12
      {46.0, 10.0}, // 13
      {48.5, 4.5},  // 14
      {51.5, 10.5}, // 15
      {54.0, 2.5},  // 16
      {55.0, 9.5},  // 17
  };
  return Topology(std::move(pos), office_path_loss(), RadioConstants{},
                  shadow_seed);
}

Topology make_dcube48_topology(std::uint64_t shadow_seed) {
  // 48 devices over an 85 m x 30 m multi-room floor, deterministic placement
  // (jittered grid) so the topology is stable across runs; ~4-5 hops.
  std::vector<Vec2> pos;
  pos.reserve(48);
  util::Pcg32 rng(util::hash_u64(0xDC0BEULL, shadow_seed));
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 8; ++c) {
      double x = 4.0 + c * 11.0 + rng.uniform(-3.0, 3.0);
      double y = 3.0 + r * 5.0 + rng.uniform(-1.8, 1.8);
      pos.push_back({x, y});
    }
  }
  return Topology(std::move(pos), office_path_loss(), RadioConstants{},
                  shadow_seed);
}

Topology make_campus_topology(int n, std::uint64_t shadow_seed) {
  DIMMER_REQUIRE(n >= 2, "campus topology needs >= 2 nodes");
  // Near-square layout: cols = ceil(sqrt(n)), last row possibly partial.
  // Pitch 9 m with ±2.5 m jitter keeps adjacent nodes between 4 m and
  // ~14 m apart — inside the office model's solid-link range — so the grid
  // is connected without the placement-retry loop make_random_topology
  // needs (asserted for representative sizes in tests/phy/test_topology).
  const int cols =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))));
  std::vector<Vec2> pos;
  pos.reserve(static_cast<std::size_t>(n));
  util::Pcg32 rng(util::hash_u64(0xCA3D05ULL, shadow_seed));
  for (int i = 0; i < n; ++i) {
    const int r = i / cols;
    const int c = i % cols;
    const double x = 4.0 + 9.0 * c + rng.uniform(-2.5, 2.5);
    const double y = 4.0 + 9.0 * r + rng.uniform(-2.5, 2.5);
    pos.push_back({x, y});
  }
  return Topology(std::move(pos), office_path_loss(), RadioConstants{},
                  shadow_seed);
}

Topology make_campus_topology_culled(int n, std::uint64_t shadow_seed,
                                     double gain_floor_db) {
  DIMMER_REQUIRE(n >= 2, "campus topology needs >= 2 nodes");
  // Same placement loop (and RNG stream) as make_campus_topology so the
  // surviving gains are bit-identical to the dense factory's.
  const int cols =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))));
  std::vector<Vec2> pos;
  pos.reserve(static_cast<std::size_t>(n));
  util::Pcg32 rng(util::hash_u64(0xCA3D05ULL, shadow_seed));
  for (int i = 0; i < n; ++i) {
    const int r = i / cols;
    const int c = i % cols;
    const double x = 4.0 + 9.0 * c + rng.uniform(-2.5, 2.5);
    const double y = 4.0 + 9.0 * r + rng.uniform(-2.5, 2.5);
    pos.push_back({x, y});
  }
  return Topology(std::move(pos), office_path_loss(), RadioConstants{},
                  shadow_seed, gain_floor_db);
}

double gain_cull_floor_db(const RadioConstants& radio, double cull_margin_db,
                          double max_tx_power_dbm) {
  return radio.noise_floor_dbm - cull_margin_db - max_tx_power_dbm;
}

}  // namespace dimmer::phy
