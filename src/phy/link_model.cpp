#include "phy/link_model.hpp"

#include <cmath>

#include "phy/batched.hpp"
#include "phy/propagation.hpp"
#include "util/check.hpp"

namespace dimmer::phy {

CachedLinkModel::CachedLinkModel(const Topology& topo) : topo_(&topo) {
  const auto n = static_cast<std::size_t>(topo.size());
  mw_.resize(n * n);
}

LinkMatrixView CachedLinkModel::prepare(double tx_power_dbm) {
  // A NaN power would fail the != cache check on *every* call (NaN != NaN),
  // silently rebuilding the O(N^2) matrix per flood and filling it with NaN
  // that poisons SINR/PER downstream. Reject it here, at the seam.
  DIMMER_REQUIRE(std::isfinite(tx_power_dbm), "tx_power_dbm must be finite");
  const int n = topo_->size();
  if (!valid_ || tx_power_dbm != cached_power_dbm_) {
    // Exactly the expression the flood engine historically evaluated inline
    // per reception; precomputing it here is what keeps results bit-identical
    // on the scalar backend (dbm_to_mw_batch is the bounded-ulp SIMD form on
    // the wider ones — see DESIGN.md §12).
    dbm_row_.resize(static_cast<std::size_t>(n));
    for (NodeId tx = 0; tx < n; ++tx) {
      double* row = mw_.data() + static_cast<std::size_t>(tx) *
                                     static_cast<std::size_t>(n);
      for (NodeId rx = 0; rx < n; ++rx)
        dbm_row_[static_cast<std::size_t>(rx)] =
            topo_->rx_power_dbm(tx, rx, tx_power_dbm);
      dbm_to_mw_batch(dbm_row_.data(), row, n);
    }
    cached_power_dbm_ = tx_power_dbm;
    valid_ = true;
    ++rebuilds_;
  }
  return LinkMatrixView{mw_.data(), n};
}

}  // namespace dimmer::phy
