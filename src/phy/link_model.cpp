#include "phy/link_model.hpp"

#include "phy/propagation.hpp"

namespace dimmer::phy {

CachedLinkModel::CachedLinkModel(const Topology& topo) : topo_(&topo) {
  const auto n = static_cast<std::size_t>(topo.size());
  mw_.resize(n * n);
}

LinkMatrixView CachedLinkModel::prepare(double tx_power_dbm) {
  const int n = topo_->size();
  if (!valid_ || tx_power_dbm != cached_power_dbm_) {
    // Exactly the expression the flood engine historically evaluated inline
    // per reception; precomputing it here is what keeps results bit-identical.
    for (NodeId tx = 0; tx < n; ++tx) {
      double* row = mw_.data() + static_cast<std::size_t>(tx) *
                                     static_cast<std::size_t>(n);
      for (NodeId rx = 0; rx < n; ++rx)
        row[rx] = dbm_to_mw(topo_->rx_power_dbm(tx, rx, tx_power_dbm));
    }
    cached_power_dbm_ = tx_power_dbm;
    valid_ = true;
    ++rebuilds_;
  }
  return LinkMatrixView{mw_.data(), n};
}

}  // namespace dimmer::phy
