// The PHY <-> flood seam: linear-domain link powers behind an interface.
//
// The flood engine's inner loop needs one number per (tx, rx) pair: the
// received power in mW when `tx` transmits at the flood's TX power. Computing
// it from the Topology on every reception costs a pow(10, x/10) per listener
// per transmitter per step. A LinkModel answers the same question through a
// precomputed row-major matrix instead: `prepare(tx_power_dbm)` returns a
// LinkMatrixView whose entries are computed *once* per (topology, power) with
// the exact same expression the direct path used —
//
//     dbm_to_mw(topo.rx_power_dbm(tx, rx, tx_power_dbm))
//
// — so flood results stay bit-identical to evaluating the Topology inline.
//
// The seam also decouples the flood engine from the Topology class itself:
// alternate backends (trace-driven gain matrices, GPU-resident batches,
// time-varying channels) only need to produce a LinkMatrixView.
#pragma once

#include <cstddef>
#include <vector>

#include "phy/topology.hpp"

namespace dimmer::phy {

/// Non-owning view of a row-major n*n linear-domain (mW) link-power matrix.
/// `row(tx)[rx]` is the received power at `rx` for a transmission from `tx`
/// at the power the view was prepared for. Valid until the next `prepare()`
/// call on (or destruction of) the model that produced it.
struct LinkMatrixView {
  const double* mw = nullptr;
  int n = 0;

  const double* row(NodeId tx) const {
    return mw + static_cast<std::size_t>(tx) * static_cast<std::size_t>(n);
  }
};

/// Non-owning CSR view of a *culled* link-power matrix: per transmitter, only
/// the links whose rx power survived the backend's culling floor, as parallel
/// (col, mw) arrays. Listener ids are strictly ascending within a row, and
/// every stored power is positive (dbm_to_mw never produces 0 for a finite
/// dBm value) — the flood engine relies on both to keep its per-listener
/// accumulation order identical to the dense sweep and to use "accumulated
/// power == 0.0" as "no surviving transmitter reaches this listener".
/// Same validity rule as LinkMatrixView: good until the next prepare call.
struct SparseLinkView {
  const std::size_t* row_ptr = nullptr;  ///< n+1 offsets into col/mw
  const NodeId* col = nullptr;           ///< listener ids, ascending per row
  const double* mw = nullptr;            ///< received powers, parallel to col
  int n = 0;

  std::size_t nnz() const {
    return row_ptr == nullptr ? 0 : row_ptr[static_cast<std::size_t>(n)];
  }
  std::size_t row_begin(NodeId tx) const {
    return row_ptr[static_cast<std::size_t>(tx)];
  }
  std::size_t row_end(NodeId tx) const {
    return row_ptr[static_cast<std::size_t>(tx) + 1];
  }
};

/// Interface the flood engine consumes instead of poking Topology directly.
///
/// Implementations are stateful caches: `prepare` may recompute internal
/// storage, so a single LinkModel instance must not be shared by concurrently
/// running flood engines (one model per simulation thread, as with RNGs).
class LinkModel {
 public:
  virtual ~LinkModel() = default;

  /// The topology this model describes (radio constants, interference
  /// geometry). Every view has exactly `topology().size()` rows/columns.
  virtual const Topology& topology() const = 0;

  /// Returns the mW link matrix for `tx_power_dbm`. Implementations cache:
  /// repeated calls with the same power are O(1).
  virtual LinkMatrixView prepare(double tx_power_dbm) = 0;

  /// Optional sparse path: backends that cull sub-floor links return a CSR
  /// view for `tx_power_dbm` (same caching contract as prepare); dense-only
  /// backends return nullptr and callers fall back to the matrix view. The
  /// flood engine probes this first, so a sparse backend never has to
  /// materialize the O(N^2) matrix on the simulation path.
  virtual const SparseLinkView* prepare_sparse(double tx_power_dbm) {
    (void)tx_power_dbm;
    return nullptr;
  }
};

/// The standard backend: caches one matrix keyed by the last-prepared TX
/// power. Recomputes only when the power changes (floods within a protocol
/// run virtually always share one TX power, so steady state is one compute
/// per topology).
class CachedLinkModel final : public LinkModel {
 public:
  explicit CachedLinkModel(const Topology& topo);

  const Topology& topology() const override { return *topo_; }
  LinkMatrixView prepare(double tx_power_dbm) override;

  /// Number of full matrix recomputations so far (test/bench introspection).
  int rebuilds() const { return rebuilds_; }

 private:
  const Topology* topo_;
  std::vector<double> mw_;        // row-major size*size
  std::vector<double> dbm_row_;   // rebuild scratch: one row of dBm powers
  double cached_power_dbm_ = 0.0;
  bool valid_ = false;
  int rebuilds_ = 0;
};

}  // namespace dimmer::phy
