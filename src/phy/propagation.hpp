// Radio propagation: log-distance path loss with static per-link lognormal
// shadowing, plus dBm/mW conversions and CC2420-style radio constants.
#pragma once

#include <cmath>
#include <cstdint>

#include "phy/geometry.hpp"

namespace dimmer::phy {

/// dBm <-> milliwatt conversions.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
inline double mw_to_dbm(double mw) {
  return mw > 0.0 ? 10.0 * std::log10(mw) : -300.0;
}

/// CC2420-class radio constants (the paper's TelosB platform).
struct RadioConstants {
  double bitrate_bps = 250000.0;     ///< 802.15.4 2.4 GHz O-QPSK
  int phy_overhead_bytes = 6;        ///< 4 B preamble + 1 B SFD + 1 B length
  double default_tx_power_dbm = 0.0; ///< the paper transmits at 0 dBm
  double noise_floor_dbm = -98.0;    ///< thermal noise + NF over 2 MHz
  double sensitivity_dbm = -94.0;    ///< CC2420 datasheet sensitivity

  /// Airtime of a frame with `payload_bytes` of MAC payload+header bytes.
  double airtime_us(int payload_bytes) const {
    return (payload_bytes + phy_overhead_bytes) * 8.0 * 1e6 / bitrate_bps;
  }
};

/// Log-distance path loss: PL(d) = PL(d0) + 10*n*log10(d/d0).
/// Defaults approximate an indoor office at 2.4 GHz.
struct PathLossModel {
  double pl_d0_db = 40.0;   ///< path loss at reference distance (1 m)
  double exponent = 3.0;    ///< indoor office with obstructions
  double d0_m = 1.0;        ///< reference distance
  double shadowing_sigma_db = 4.0;  ///< lognormal shadowing std-dev (static)
  /// Per-reception block-fading std-dev (temporal variation): multipath in
  /// office environments makes even "good" links drop occasional packets,
  /// which is why a single transmission (N_TX = 1) is never fully reliable.
  double fading_sigma_db = 2.0;
  double min_distance_m = 0.1;      ///< clamp to avoid log(0)

  /// Deterministic (pre-shadowing) path loss in dB at distance d (meters).
  double path_loss_db(double d_m) const {
    double d = d_m < min_distance_m ? min_distance_m : d_m;
    return pl_d0_db + 10.0 * exponent * std::log10(d / d0_m);
  }
};

}  // namespace dimmer::phy
