file(REMOVE_RECURSE
  "CMakeFiles/train_dqn.dir/train_dqn.cpp.o"
  "CMakeFiles/train_dqn.dir/train_dqn.cpp.o.d"
  "train_dqn"
  "train_dqn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_dqn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
