# Empty dependencies file for train_dqn.
# This may be replaced when dependencies are built.
