# Empty compiler generated dependencies file for dcube_collection.
# This may be replaced when dependencies are built.
