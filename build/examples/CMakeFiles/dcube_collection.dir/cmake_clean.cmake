file(REMOVE_RECURSE
  "CMakeFiles/dcube_collection.dir/dcube_collection.cpp.o"
  "CMakeFiles/dcube_collection.dir/dcube_collection.cpp.o.d"
  "dcube_collection"
  "dcube_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcube_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
