# Empty dependencies file for streams.
# This may be replaced when dependencies are built.
