file(REMOVE_RECURSE
  "CMakeFiles/streams.dir/streams.cpp.o"
  "CMakeFiles/streams.dir/streams.cpp.o.d"
  "streams"
  "streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
