# Empty dependencies file for forwarder_selection.
# This may be replaced when dependencies are built.
