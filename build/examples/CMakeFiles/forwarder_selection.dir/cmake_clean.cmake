file(REMOVE_RECURSE
  "CMakeFiles/forwarder_selection.dir/forwarder_selection.cpp.o"
  "CMakeFiles/forwarder_selection.dir/forwarder_selection.cpp.o.d"
  "forwarder_selection"
  "forwarder_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forwarder_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
