# Empty compiler generated dependencies file for dynamic_interference.
# This may be replaced when dependencies are built.
