file(REMOVE_RECURSE
  "CMakeFiles/dynamic_interference.dir/dynamic_interference.cpp.o"
  "CMakeFiles/dynamic_interference.dir/dynamic_interference.cpp.o.d"
  "dynamic_interference"
  "dynamic_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
