file(REMOVE_RECURSE
  "../bench/bench_fig6_forwarder"
  "../bench/bench_fig6_forwarder.pdb"
  "CMakeFiles/bench_fig6_forwarder.dir/bench_fig6_forwarder.cpp.o"
  "CMakeFiles/bench_fig6_forwarder.dir/bench_fig6_forwarder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_forwarder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
