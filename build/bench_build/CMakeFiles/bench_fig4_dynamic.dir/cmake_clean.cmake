file(REMOVE_RECURSE
  "../bench/bench_fig4_dynamic"
  "../bench/bench_fig4_dynamic.pdb"
  "CMakeFiles/bench_fig4_dynamic.dir/bench_fig4_dynamic.cpp.o"
  "CMakeFiles/bench_fig4_dynamic.dir/bench_fig4_dynamic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
