# Empty dependencies file for bench_fig4_dynamic.
# This may be replaced when dependencies are built.
