file(REMOVE_RECURSE
  "../bench/bench_ablation_reward"
  "../bench/bench_ablation_reward.pdb"
  "CMakeFiles/bench_ablation_reward.dir/bench_ablation_reward.cpp.o"
  "CMakeFiles/bench_ablation_reward.dir/bench_ablation_reward.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
