# Empty dependencies file for bench_ablation_tabular.
# This may be replaced when dependencies are built.
