file(REMOVE_RECURSE
  "../bench/bench_ablation_tabular"
  "../bench/bench_ablation_tabular.pdb"
  "CMakeFiles/bench_ablation_tabular.dir/bench_ablation_tabular.cpp.o"
  "CMakeFiles/bench_ablation_tabular.dir/bench_ablation_tabular.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tabular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
