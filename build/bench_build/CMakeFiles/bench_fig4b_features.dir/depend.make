# Empty dependencies file for bench_fig4b_features.
# This may be replaced when dependencies are built.
