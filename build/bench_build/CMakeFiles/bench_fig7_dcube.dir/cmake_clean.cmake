file(REMOVE_RECURSE
  "../bench/bench_fig7_dcube"
  "../bench/bench_fig7_dcube.pdb"
  "CMakeFiles/bench_fig7_dcube.dir/bench_fig7_dcube.cpp.o"
  "CMakeFiles/bench_fig7_dcube.dir/bench_fig7_dcube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dcube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
