# Empty dependencies file for bench_fig7_dcube.
# This may be replaced when dependencies are built.
