# Empty compiler generated dependencies file for dimmer_test_integration.
# This may be replaced when dependencies are built.
