file(REMOVE_RECURSE
  "CMakeFiles/dimmer_test_integration.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/dimmer_test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/dimmer_test_integration.dir/integration/test_fault_injection.cpp.o"
  "CMakeFiles/dimmer_test_integration.dir/integration/test_fault_injection.cpp.o.d"
  "dimmer_test_integration"
  "dimmer_test_integration.pdb"
  "dimmer_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
