
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/dimmer_test_integration.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/dimmer_test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_fault_injection.cpp" "tests/CMakeFiles/dimmer_test_integration.dir/integration/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/dimmer_test_integration.dir/integration/test_fault_injection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dimmer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dimmer_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/lwb/CMakeFiles/dimmer_lwb.dir/DependInfo.cmake"
  "/root/repo/build/src/flood/CMakeFiles/dimmer_flood.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/dimmer_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/dimmer_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dimmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
