# Empty dependencies file for dimmer_test_lwb.
# This may be replaced when dependencies are built.
