file(REMOVE_RECURSE
  "CMakeFiles/dimmer_test_lwb.dir/lwb/test_round.cpp.o"
  "CMakeFiles/dimmer_test_lwb.dir/lwb/test_round.cpp.o.d"
  "CMakeFiles/dimmer_test_lwb.dir/lwb/test_scheduler.cpp.o"
  "CMakeFiles/dimmer_test_lwb.dir/lwb/test_scheduler.cpp.o.d"
  "dimmer_test_lwb"
  "dimmer_test_lwb.pdb"
  "dimmer_test_lwb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_test_lwb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
