# Empty dependencies file for dimmer_test_sim.
# This may be replaced when dependencies are built.
