file(REMOVE_RECURSE
  "CMakeFiles/dimmer_test_sim.dir/sim/test_event_queue.cpp.o"
  "CMakeFiles/dimmer_test_sim.dir/sim/test_event_queue.cpp.o.d"
  "dimmer_test_sim"
  "dimmer_test_sim.pdb"
  "dimmer_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
