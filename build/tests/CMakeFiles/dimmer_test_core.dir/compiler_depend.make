# Empty compiler generated dependencies file for dimmer_test_core.
# This may be replaced when dependencies are built.
