file(REMOVE_RECURSE
  "CMakeFiles/dimmer_test_core.dir/core/test_controller.cpp.o"
  "CMakeFiles/dimmer_test_core.dir/core/test_controller.cpp.o.d"
  "CMakeFiles/dimmer_test_core.dir/core/test_features.cpp.o"
  "CMakeFiles/dimmer_test_core.dir/core/test_features.cpp.o.d"
  "CMakeFiles/dimmer_test_core.dir/core/test_feedback_stats.cpp.o"
  "CMakeFiles/dimmer_test_core.dir/core/test_feedback_stats.cpp.o.d"
  "CMakeFiles/dimmer_test_core.dir/core/test_forwarder.cpp.o"
  "CMakeFiles/dimmer_test_core.dir/core/test_forwarder.cpp.o.d"
  "CMakeFiles/dimmer_test_core.dir/core/test_pretrained_tabular.cpp.o"
  "CMakeFiles/dimmer_test_core.dir/core/test_pretrained_tabular.cpp.o.d"
  "CMakeFiles/dimmer_test_core.dir/core/test_protocol.cpp.o"
  "CMakeFiles/dimmer_test_core.dir/core/test_protocol.cpp.o.d"
  "CMakeFiles/dimmer_test_core.dir/core/test_scenarios_collection.cpp.o"
  "CMakeFiles/dimmer_test_core.dir/core/test_scenarios_collection.cpp.o.d"
  "CMakeFiles/dimmer_test_core.dir/core/test_trace_env.cpp.o"
  "CMakeFiles/dimmer_test_core.dir/core/test_trace_env.cpp.o.d"
  "dimmer_test_core"
  "dimmer_test_core.pdb"
  "dimmer_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
