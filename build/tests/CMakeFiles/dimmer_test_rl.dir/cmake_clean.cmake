file(REMOVE_RECURSE
  "CMakeFiles/dimmer_test_rl.dir/rl/test_dqn.cpp.o"
  "CMakeFiles/dimmer_test_rl.dir/rl/test_dqn.cpp.o.d"
  "CMakeFiles/dimmer_test_rl.dir/rl/test_exp3.cpp.o"
  "CMakeFiles/dimmer_test_rl.dir/rl/test_exp3.cpp.o.d"
  "CMakeFiles/dimmer_test_rl.dir/rl/test_mlp.cpp.o"
  "CMakeFiles/dimmer_test_rl.dir/rl/test_mlp.cpp.o.d"
  "CMakeFiles/dimmer_test_rl.dir/rl/test_quantized.cpp.o"
  "CMakeFiles/dimmer_test_rl.dir/rl/test_quantized.cpp.o.d"
  "CMakeFiles/dimmer_test_rl.dir/rl/test_tabular_export.cpp.o"
  "CMakeFiles/dimmer_test_rl.dir/rl/test_tabular_export.cpp.o.d"
  "dimmer_test_rl"
  "dimmer_test_rl.pdb"
  "dimmer_test_rl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_test_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
