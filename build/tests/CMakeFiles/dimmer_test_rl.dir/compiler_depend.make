# Empty compiler generated dependencies file for dimmer_test_rl.
# This may be replaced when dependencies are built.
