file(REMOVE_RECURSE
  "CMakeFiles/dimmer_test_phy.dir/phy/test_channels.cpp.o"
  "CMakeFiles/dimmer_test_phy.dir/phy/test_channels.cpp.o.d"
  "CMakeFiles/dimmer_test_phy.dir/phy/test_energy.cpp.o"
  "CMakeFiles/dimmer_test_phy.dir/phy/test_energy.cpp.o.d"
  "CMakeFiles/dimmer_test_phy.dir/phy/test_interference.cpp.o"
  "CMakeFiles/dimmer_test_phy.dir/phy/test_interference.cpp.o.d"
  "CMakeFiles/dimmer_test_phy.dir/phy/test_per.cpp.o"
  "CMakeFiles/dimmer_test_phy.dir/phy/test_per.cpp.o.d"
  "CMakeFiles/dimmer_test_phy.dir/phy/test_topology.cpp.o"
  "CMakeFiles/dimmer_test_phy.dir/phy/test_topology.cpp.o.d"
  "dimmer_test_phy"
  "dimmer_test_phy.pdb"
  "dimmer_test_phy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_test_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
