# Empty compiler generated dependencies file for dimmer_test_phy.
# This may be replaced when dependencies are built.
