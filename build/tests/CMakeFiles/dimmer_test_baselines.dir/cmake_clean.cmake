file(REMOVE_RECURSE
  "CMakeFiles/dimmer_test_baselines.dir/baselines/test_crystal.cpp.o"
  "CMakeFiles/dimmer_test_baselines.dir/baselines/test_crystal.cpp.o.d"
  "CMakeFiles/dimmer_test_baselines.dir/baselines/test_pid.cpp.o"
  "CMakeFiles/dimmer_test_baselines.dir/baselines/test_pid.cpp.o.d"
  "dimmer_test_baselines"
  "dimmer_test_baselines.pdb"
  "dimmer_test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
