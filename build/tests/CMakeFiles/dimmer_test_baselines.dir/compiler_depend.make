# Empty compiler generated dependencies file for dimmer_test_baselines.
# This may be replaced when dependencies are built.
