# Empty compiler generated dependencies file for dimmer_test_util.
# This may be replaced when dependencies are built.
