file(REMOVE_RECURSE
  "CMakeFiles/dimmer_test_util.dir/util/test_fixed_point.cpp.o"
  "CMakeFiles/dimmer_test_util.dir/util/test_fixed_point.cpp.o.d"
  "CMakeFiles/dimmer_test_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/dimmer_test_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/dimmer_test_util.dir/util/test_stats.cpp.o"
  "CMakeFiles/dimmer_test_util.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/dimmer_test_util.dir/util/test_table_cli.cpp.o"
  "CMakeFiles/dimmer_test_util.dir/util/test_table_cli.cpp.o.d"
  "dimmer_test_util"
  "dimmer_test_util.pdb"
  "dimmer_test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
