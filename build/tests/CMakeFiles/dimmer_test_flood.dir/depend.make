# Empty dependencies file for dimmer_test_flood.
# This may be replaced when dependencies are built.
