file(REMOVE_RECURSE
  "CMakeFiles/dimmer_test_flood.dir/flood/test_glossy.cpp.o"
  "CMakeFiles/dimmer_test_flood.dir/flood/test_glossy.cpp.o.d"
  "CMakeFiles/dimmer_test_flood.dir/flood/test_latency.cpp.o"
  "CMakeFiles/dimmer_test_flood.dir/flood/test_latency.cpp.o.d"
  "dimmer_test_flood"
  "dimmer_test_flood.pdb"
  "dimmer_test_flood[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_test_flood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
