# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dimmer_test_util[1]_include.cmake")
include("/root/repo/build/tests/dimmer_test_sim[1]_include.cmake")
include("/root/repo/build/tests/dimmer_test_phy[1]_include.cmake")
include("/root/repo/build/tests/dimmer_test_flood[1]_include.cmake")
include("/root/repo/build/tests/dimmer_test_lwb[1]_include.cmake")
include("/root/repo/build/tests/dimmer_test_rl[1]_include.cmake")
include("/root/repo/build/tests/dimmer_test_core[1]_include.cmake")
include("/root/repo/build/tests/dimmer_test_baselines[1]_include.cmake")
include("/root/repo/build/tests/dimmer_test_integration[1]_include.cmake")
