file(REMOVE_RECURSE
  "libdimmer_core.a"
)
