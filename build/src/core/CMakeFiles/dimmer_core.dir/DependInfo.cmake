
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collection.cpp" "src/core/CMakeFiles/dimmer_core.dir/collection.cpp.o" "gcc" "src/core/CMakeFiles/dimmer_core.dir/collection.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/dimmer_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/dimmer_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/dimmer_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/dimmer_core.dir/features.cpp.o.d"
  "/root/repo/src/core/feedback.cpp" "src/core/CMakeFiles/dimmer_core.dir/feedback.cpp.o" "gcc" "src/core/CMakeFiles/dimmer_core.dir/feedback.cpp.o.d"
  "/root/repo/src/core/forwarder.cpp" "src/core/CMakeFiles/dimmer_core.dir/forwarder.cpp.o" "gcc" "src/core/CMakeFiles/dimmer_core.dir/forwarder.cpp.o.d"
  "/root/repo/src/core/pretrained.cpp" "src/core/CMakeFiles/dimmer_core.dir/pretrained.cpp.o" "gcc" "src/core/CMakeFiles/dimmer_core.dir/pretrained.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/dimmer_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/dimmer_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/scenarios.cpp" "src/core/CMakeFiles/dimmer_core.dir/scenarios.cpp.o" "gcc" "src/core/CMakeFiles/dimmer_core.dir/scenarios.cpp.o.d"
  "/root/repo/src/core/stats_collector.cpp" "src/core/CMakeFiles/dimmer_core.dir/stats_collector.cpp.o" "gcc" "src/core/CMakeFiles/dimmer_core.dir/stats_collector.cpp.o.d"
  "/root/repo/src/core/trace_env.cpp" "src/core/CMakeFiles/dimmer_core.dir/trace_env.cpp.o" "gcc" "src/core/CMakeFiles/dimmer_core.dir/trace_env.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lwb/CMakeFiles/dimmer_lwb.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/dimmer_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/flood/CMakeFiles/dimmer_flood.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/dimmer_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dimmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
