# Empty dependencies file for dimmer_core.
# This may be replaced when dependencies are built.
