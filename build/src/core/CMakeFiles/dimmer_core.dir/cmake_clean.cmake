file(REMOVE_RECURSE
  "CMakeFiles/dimmer_core.dir/collection.cpp.o"
  "CMakeFiles/dimmer_core.dir/collection.cpp.o.d"
  "CMakeFiles/dimmer_core.dir/controller.cpp.o"
  "CMakeFiles/dimmer_core.dir/controller.cpp.o.d"
  "CMakeFiles/dimmer_core.dir/features.cpp.o"
  "CMakeFiles/dimmer_core.dir/features.cpp.o.d"
  "CMakeFiles/dimmer_core.dir/feedback.cpp.o"
  "CMakeFiles/dimmer_core.dir/feedback.cpp.o.d"
  "CMakeFiles/dimmer_core.dir/forwarder.cpp.o"
  "CMakeFiles/dimmer_core.dir/forwarder.cpp.o.d"
  "CMakeFiles/dimmer_core.dir/pretrained.cpp.o"
  "CMakeFiles/dimmer_core.dir/pretrained.cpp.o.d"
  "CMakeFiles/dimmer_core.dir/protocol.cpp.o"
  "CMakeFiles/dimmer_core.dir/protocol.cpp.o.d"
  "CMakeFiles/dimmer_core.dir/scenarios.cpp.o"
  "CMakeFiles/dimmer_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/dimmer_core.dir/stats_collector.cpp.o"
  "CMakeFiles/dimmer_core.dir/stats_collector.cpp.o.d"
  "CMakeFiles/dimmer_core.dir/trace_env.cpp.o"
  "CMakeFiles/dimmer_core.dir/trace_env.cpp.o.d"
  "libdimmer_core.a"
  "libdimmer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
