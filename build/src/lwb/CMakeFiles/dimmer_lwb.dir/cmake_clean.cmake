file(REMOVE_RECURSE
  "CMakeFiles/dimmer_lwb.dir/round.cpp.o"
  "CMakeFiles/dimmer_lwb.dir/round.cpp.o.d"
  "CMakeFiles/dimmer_lwb.dir/scheduler.cpp.o"
  "CMakeFiles/dimmer_lwb.dir/scheduler.cpp.o.d"
  "libdimmer_lwb.a"
  "libdimmer_lwb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_lwb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
