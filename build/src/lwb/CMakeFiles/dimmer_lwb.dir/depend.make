# Empty dependencies file for dimmer_lwb.
# This may be replaced when dependencies are built.
