file(REMOVE_RECURSE
  "libdimmer_lwb.a"
)
