# CMake generated Testfile for 
# Source directory: /root/repo/src/lwb
# Build directory: /root/repo/build/src/lwb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
