# Empty dependencies file for dimmer_baselines.
# This may be replaced when dependencies are built.
