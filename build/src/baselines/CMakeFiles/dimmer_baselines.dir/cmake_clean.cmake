file(REMOVE_RECURSE
  "CMakeFiles/dimmer_baselines.dir/crystal.cpp.o"
  "CMakeFiles/dimmer_baselines.dir/crystal.cpp.o.d"
  "CMakeFiles/dimmer_baselines.dir/pid.cpp.o"
  "CMakeFiles/dimmer_baselines.dir/pid.cpp.o.d"
  "libdimmer_baselines.a"
  "libdimmer_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
