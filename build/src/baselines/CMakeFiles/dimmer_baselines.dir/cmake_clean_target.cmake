file(REMOVE_RECURSE
  "libdimmer_baselines.a"
)
