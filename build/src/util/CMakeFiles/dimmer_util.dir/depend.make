# Empty dependencies file for dimmer_util.
# This may be replaced when dependencies are built.
