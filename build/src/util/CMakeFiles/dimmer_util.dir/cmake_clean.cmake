file(REMOVE_RECURSE
  "CMakeFiles/dimmer_util.dir/cli.cpp.o"
  "CMakeFiles/dimmer_util.dir/cli.cpp.o.d"
  "CMakeFiles/dimmer_util.dir/log.cpp.o"
  "CMakeFiles/dimmer_util.dir/log.cpp.o.d"
  "CMakeFiles/dimmer_util.dir/table.cpp.o"
  "CMakeFiles/dimmer_util.dir/table.cpp.o.d"
  "libdimmer_util.a"
  "libdimmer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
