file(REMOVE_RECURSE
  "libdimmer_util.a"
)
