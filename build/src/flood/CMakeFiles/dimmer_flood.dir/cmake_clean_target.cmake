file(REMOVE_RECURSE
  "libdimmer_flood.a"
)
