# Empty dependencies file for dimmer_flood.
# This may be replaced when dependencies are built.
