file(REMOVE_RECURSE
  "CMakeFiles/dimmer_flood.dir/glossy.cpp.o"
  "CMakeFiles/dimmer_flood.dir/glossy.cpp.o.d"
  "libdimmer_flood.a"
  "libdimmer_flood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_flood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
