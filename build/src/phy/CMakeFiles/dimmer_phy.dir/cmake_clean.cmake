file(REMOVE_RECURSE
  "CMakeFiles/dimmer_phy.dir/interference.cpp.o"
  "CMakeFiles/dimmer_phy.dir/interference.cpp.o.d"
  "CMakeFiles/dimmer_phy.dir/per.cpp.o"
  "CMakeFiles/dimmer_phy.dir/per.cpp.o.d"
  "CMakeFiles/dimmer_phy.dir/topology.cpp.o"
  "CMakeFiles/dimmer_phy.dir/topology.cpp.o.d"
  "libdimmer_phy.a"
  "libdimmer_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
