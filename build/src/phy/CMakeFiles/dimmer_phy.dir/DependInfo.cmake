
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/interference.cpp" "src/phy/CMakeFiles/dimmer_phy.dir/interference.cpp.o" "gcc" "src/phy/CMakeFiles/dimmer_phy.dir/interference.cpp.o.d"
  "/root/repo/src/phy/per.cpp" "src/phy/CMakeFiles/dimmer_phy.dir/per.cpp.o" "gcc" "src/phy/CMakeFiles/dimmer_phy.dir/per.cpp.o.d"
  "/root/repo/src/phy/topology.cpp" "src/phy/CMakeFiles/dimmer_phy.dir/topology.cpp.o" "gcc" "src/phy/CMakeFiles/dimmer_phy.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dimmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
