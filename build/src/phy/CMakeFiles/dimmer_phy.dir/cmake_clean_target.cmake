file(REMOVE_RECURSE
  "libdimmer_phy.a"
)
