# Empty compiler generated dependencies file for dimmer_phy.
# This may be replaced when dependencies are built.
