# Empty dependencies file for dimmer_rl.
# This may be replaced when dependencies are built.
