file(REMOVE_RECURSE
  "libdimmer_rl.a"
)
