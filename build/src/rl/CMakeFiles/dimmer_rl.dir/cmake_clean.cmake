file(REMOVE_RECURSE
  "CMakeFiles/dimmer_rl.dir/dqn.cpp.o"
  "CMakeFiles/dimmer_rl.dir/dqn.cpp.o.d"
  "CMakeFiles/dimmer_rl.dir/exp3.cpp.o"
  "CMakeFiles/dimmer_rl.dir/exp3.cpp.o.d"
  "CMakeFiles/dimmer_rl.dir/export.cpp.o"
  "CMakeFiles/dimmer_rl.dir/export.cpp.o.d"
  "CMakeFiles/dimmer_rl.dir/mlp.cpp.o"
  "CMakeFiles/dimmer_rl.dir/mlp.cpp.o.d"
  "CMakeFiles/dimmer_rl.dir/quantized.cpp.o"
  "CMakeFiles/dimmer_rl.dir/quantized.cpp.o.d"
  "CMakeFiles/dimmer_rl.dir/tabular.cpp.o"
  "CMakeFiles/dimmer_rl.dir/tabular.cpp.o.d"
  "libdimmer_rl.a"
  "libdimmer_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimmer_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
