
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/dqn.cpp" "src/rl/CMakeFiles/dimmer_rl.dir/dqn.cpp.o" "gcc" "src/rl/CMakeFiles/dimmer_rl.dir/dqn.cpp.o.d"
  "/root/repo/src/rl/exp3.cpp" "src/rl/CMakeFiles/dimmer_rl.dir/exp3.cpp.o" "gcc" "src/rl/CMakeFiles/dimmer_rl.dir/exp3.cpp.o.d"
  "/root/repo/src/rl/export.cpp" "src/rl/CMakeFiles/dimmer_rl.dir/export.cpp.o" "gcc" "src/rl/CMakeFiles/dimmer_rl.dir/export.cpp.o.d"
  "/root/repo/src/rl/mlp.cpp" "src/rl/CMakeFiles/dimmer_rl.dir/mlp.cpp.o" "gcc" "src/rl/CMakeFiles/dimmer_rl.dir/mlp.cpp.o.d"
  "/root/repo/src/rl/quantized.cpp" "src/rl/CMakeFiles/dimmer_rl.dir/quantized.cpp.o" "gcc" "src/rl/CMakeFiles/dimmer_rl.dir/quantized.cpp.o.d"
  "/root/repo/src/rl/tabular.cpp" "src/rl/CMakeFiles/dimmer_rl.dir/tabular.cpp.o" "gcc" "src/rl/CMakeFiles/dimmer_rl.dir/tabular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dimmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
