// util/json_parse.hpp: strict RFC 8259 parser with exact number round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

using dimmer::util::RequireError;
using dimmer::util::json::JsonParseError;
using dimmer::util::json::parse;
using dimmer::util::json::Value;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_EQ(parse("null").kind(), Value::Kind::kNull);
  EXPECT_DOUBLE_EQ(parse("1.5").as_double(), 1.5);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, ObjectKeepsDocumentOrderAndFinds) {
  const Value v = parse("{\"b\": 1, \"a\": 2}");
  ASSERT_EQ(v.as_object().size(), 2u);
  EXPECT_EQ(v.as_object()[0].first, "b");
  EXPECT_EQ(v.as_object()[1].first, "a");
  EXPECT_EQ(v.at("a").as_i64(), 2);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), RequireError);
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse("{\"xs\": [1, [2, 3], {\"k\": null}]}");
  const auto& xs = v.at("xs").as_array();
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_EQ(xs[1].as_array()[1].as_i64(), 3);
  EXPECT_EQ(xs[2].at("k").kind(), Value::Kind::kNull);
}

TEST(JsonParse, DoubleRoundTripIsBitExact) {
  // json_number is "%.17g"; parsing it back must reproduce every finite
  // double bit-for-bit — journaled results depend on it.
  const double cases[] = {0.0,
                          -0.0,
                          1.0 / 3.0,
                          6.02214076e23,
                          -2.2250738585072014e-308,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::denorm_min(),
                          0.1 + 0.2};
  for (double x : cases) {
    const std::string text = dimmer::util::json_number(x);
    const double back = parse(text).as_double();
    EXPECT_EQ(std::signbit(back), std::signbit(x)) << text;
    EXPECT_EQ(back, x) << text;
  }
}

TEST(JsonParse, U64FullRangeSurvives) {
  // Seeds and counters must not pass through a double (2^53 cliff).
  const std::uint64_t big = 18446744073709551615ULL;  // 2^64 - 1
  EXPECT_EQ(parse("18446744073709551615").as_u64(), big);
  EXPECT_EQ(parse("0").as_u64(), 0u);
  const std::uint64_t odd = 9007199254740993ULL;  // 2^53 + 1: not a double
  EXPECT_EQ(parse("9007199254740993").as_u64(), odd);
}

TEST(JsonParse, U64RejectsFractionsExponentsAndNegatives) {
  EXPECT_THROW(parse("1.5").as_u64(), RequireError);
  EXPECT_THROW(parse("1e3").as_u64(), RequireError);
  EXPECT_THROW(parse("-1").as_u64(), RequireError);
  EXPECT_THROW(parse("18446744073709551616").as_u64(), RequireError);
  EXPECT_THROW(parse("2.5").as_i64(), RequireError);
  EXPECT_EQ(parse("-9").as_i64(), -9);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse("\"a\\n\\t\\\"b\\\\\"").as_string(), "a\n\t\"b\\");
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xc3\xa9");   // é as UTF-8
  EXPECT_EQ(parse("\"\\u0041\"").as_string(), "A");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), JsonParseError);
  EXPECT_THROW(parse("{"), JsonParseError);
  EXPECT_THROW(parse("[1,]"), JsonParseError);
  EXPECT_THROW(parse("{\"a\": 1,}"), JsonParseError);
  EXPECT_THROW(parse("01"), JsonParseError);      // leading zero
  EXPECT_THROW(parse("1 2"), JsonParseError);     // trailing garbage
  EXPECT_THROW(parse("'a'"), JsonParseError);     // single quotes
  EXPECT_THROW(parse("{\"a\": 1, \"a\": 2}"), JsonParseError);  // dup key
  EXPECT_THROW(parse("{\"t\": tru"), JsonParseError);  // torn literal
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    parse("{\"a\": 1,\n  !}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 1);
  }
}

TEST(JsonParse, DepthLimitIsEnforced) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_THROW(parse(deep), JsonParseError);
  // A modestly nested document is fine.
  EXPECT_NO_THROW(parse("[[[[[[[[[[1]]]]]]]]]]"));
}

TEST(JsonParse, NumberLexemeIsPreservedVerbatim) {
  EXPECT_EQ(parse("1.2500").number_lexeme(), "1.2500");
  EXPECT_EQ(parse("-0.0").number_lexeme(), "-0.0");
}

TEST(JsonParse, TypeMismatchesThrow) {
  EXPECT_THROW(parse("1").as_string(), RequireError);
  EXPECT_THROW(parse("\"x\"").as_double(), RequireError);
  EXPECT_THROW(parse("[1]").as_object(), RequireError);
  EXPECT_THROW(parse("null").as_bool(), RequireError);
}
