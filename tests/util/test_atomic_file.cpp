// util/atomic_file.hpp: readers must see the complete old artifact or the
// complete new one — never a prefix — across every crash point.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

using dimmer::util::AtomicFileWriter;
using dimmer::util::write_file_atomic;

namespace {

std::string make_temp_dir() {
  std::string tmpl = ::testing::TempDir() + "dimmer_atomic_XXXXXX";
  char* got = mkdtemp(tmpl.data());
  EXPECT_NE(got, nullptr);
  return tmpl;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

TEST(AtomicFile, WritesAndOverwrites) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/artifact.json";
  write_file_atomic(path, "{\"v\": 1}\n");
  EXPECT_EQ(slurp(path), "{\"v\": 1}\n");
  write_file_atomic(path, "{\"v\": 2}\n");
  EXPECT_EQ(slurp(path), "{\"v\": 2}\n");
  EXPECT_FALSE(exists(path + ".tmp")) << "temp must not outlive commit";
}

TEST(AtomicFile, StagesInTempUntilCommit) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/out.txt";
  write_file_atomic(path, "old contents\n");
  {
    AtomicFileWriter w(path);
    w.append("new ");
    w.append("contents\n");
    // Mid-write: the target still holds the complete old artifact.
    EXPECT_EQ(slurp(path), "old contents\n");
    EXPECT_TRUE(exists(w.temp_path()));
    w.commit();
  }
  EXPECT_EQ(slurp(path), "new contents\n");
}

TEST(AtomicFile, UncommittedWriterDiscardsAndOldFileSurvives) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/out.txt";
  write_file_atomic(path, "precious\n");
  std::string tmp;
  {
    AtomicFileWriter w(path);
    w.append("half-writ");
    tmp = w.temp_path();
    // No commit: scope exit models an exception path.
  }
  EXPECT_EQ(slurp(path), "precious\n");
  EXPECT_FALSE(exists(tmp));
}

TEST(AtomicFile, ReclaimsDebrisFromKilledPredecessor) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/out.txt";
  write_file_atomic(path, "survivor\n");
  // A process killed mid-stage leaves <path>.tmp behind; the deterministic
  // temp name means the next writer truncates it rather than choking.
  {
    std::ofstream debris(path + ".tmp", std::ios::binary);
    debris << "torn garbage from a dead writer";
  }
  EXPECT_EQ(slurp(path), "survivor\n");
  write_file_atomic(path, "fresh\n");
  EXPECT_EQ(slurp(path), "fresh\n");
  EXPECT_FALSE(exists(path + ".tmp"));
}

TEST(AtomicFile, MissingDirectoryThrowsLoudly) {
  EXPECT_THROW(write_file_atomic("/nonexistent-dir-xyz/out.json", "x"),
               dimmer::util::RequireError);
}
