#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dimmer::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), RequireError);
}

TEST(Table, RejectsEmptyHeader) { EXPECT_THROW(Table({}), RequireError); }

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.987, 1), "98.7%");
}

TEST(CsvWriter, WritesEscapedRows) {
  std::string path = ::testing::TempDir() + "dimmer_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"plain", "with,comma"});
    csv.add_row({"with\"quote", "x"});
  }
  std::ifstream is(path);
  std::string l1, l2, l3;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "plain,\"with,comma\"");
  EXPECT_EQ(l3, "\"with\"\"quote\",x");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsArityMismatch) {
  std::string path = ::testing::TempDir() + "dimmer_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"x"}), RequireError);
  std::remove(path.c_str());
}

TEST(CsvWriter, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), RequireError);
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--key=value", "--n=42"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get("key", ""), "value");
  EXPECT_EQ(cli.get_int("n", 0), 42);
}

TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--key", "value"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get("key", ""), "value");
}

TEST(Cli, BooleanFlagWithoutValue) {
  const char* argv[] = {"prog", "--verbose", "--x=1"};
  Cli cli(3, argv);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "file1", "--k=v", "file2"};
  Cli cli(4, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(cli.get_bool("missing", false));
}

TEST(Cli, MalformedNumbersThrow) {
  const char* argv[] = {"prog", "--n=abc", "--f=1.2.3"};
  Cli cli(3, argv);
  EXPECT_THROW(cli.get_int("n", 0), RequireError);
  EXPECT_THROW(cli.get_double("f", 0.0), RequireError);
}

TEST(Cli, BooleanVariants) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=off"};
  Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

}  // namespace
}  // namespace dimmer::util
