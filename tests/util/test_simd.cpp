#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "util/simd/simd.hpp"

namespace dimmer::util::simd {
namespace {

using s1 = simd<double, 1>;

// Maps a double's bit pattern onto a monotone signed-integer line so that
// |ordered(a) - ordered(b)| counts the representable doubles between a and b.
std::int64_t ordered_bits(double x) {
  std::int64_t i;
  std::memcpy(&i, &x, sizeof(i));
  return i < 0 ? static_cast<std::int64_t>(0x8000000000000000ULL) - i : i;
}

std::int64_t ulp_diff(double a, double b) {
  if (a == b) return 0;  // covers +0.0 vs -0.0
  const std::int64_t d = ordered_bits(a) - ordered_bits(b);
  return d < 0 ? -d : d;
}

// ---------------------------------------------------------------------------
// Backend identity.

TEST(SimdBackend, NameMatchesNativeWidth) {
  const std::string name = backend_name();
  if (native_width == 8) {
    EXPECT_EQ(name, "avx512");
  } else if (native_width == 4) {
    EXPECT_EQ(name, "avx2");
  } else {
    EXPECT_EQ(native_width, 1);
    EXPECT_EQ(name, "scalar");
  }
  EXPECT_EQ(vdouble::width, native_width);
}

// ---------------------------------------------------------------------------
// Primitive API, exercised on the native vector type. Inputs go through
// load/store so every lane carries a distinct value.

TEST(SimdPrimitives, LoadStoreBroadcastLaneRoundTrip) {
  constexpr int w = native_width;
  double in[w], out[w];
  for (int i = 0; i < w; ++i) in[i] = 1.5 * i - 3.0;
  const vdouble v = vdouble::load(in);
  v.store(out);
  for (int i = 0; i < w; ++i) {
    EXPECT_EQ(out[i], in[i]);
    EXPECT_EQ(v.lane(i), in[i]);
  }
  const vdouble b = vdouble::broadcast(2.25);
  for (int i = 0; i < w; ++i) EXPECT_EQ(b.lane(i), 2.25);
}

TEST(SimdPrimitives, ArithmeticIsLanewiseIeee) {
  constexpr int w = native_width;
  double a[w], b[w], got[w];
  for (int i = 0; i < w; ++i) {
    a[i] = 0.1 * (i + 1);
    b[i] = 3.7 - 0.5 * i;
  }
  (vdouble::load(a) + vdouble::load(b)).store(got);
  for (int i = 0; i < w; ++i) EXPECT_EQ(got[i], a[i] + b[i]);
  (vdouble::load(a) - vdouble::load(b)).store(got);
  for (int i = 0; i < w; ++i) EXPECT_EQ(got[i], a[i] - b[i]);
  (vdouble::load(a) * vdouble::load(b)).store(got);
  for (int i = 0; i < w; ++i) EXPECT_EQ(got[i], a[i] * b[i]);
  (vdouble::load(a) / vdouble::load(b)).store(got);
  for (int i = 0; i < w; ++i) EXPECT_EQ(got[i], a[i] / b[i]);
}

TEST(SimdPrimitives, MaxMinFollowStdSemantics) {
  constexpr int w = native_width;
  double a[w], b[w], got_max[w], got_min[w];
  for (int i = 0; i < w; ++i) {
    a[i] = (i % 2 == 0) ? 1.0 + i : -2.0 * i;
    b[i] = 0.5 * i;
  }
  max(vdouble::load(a), vdouble::load(b)).store(got_max);
  min(vdouble::load(a), vdouble::load(b)).store(got_min);
  for (int i = 0; i < w; ++i) {
    EXPECT_EQ(got_max[i], std::max(a[i], b[i]));
    EXPECT_EQ(got_min[i], std::min(a[i], b[i]));
  }
}

TEST(SimdPrimitives, RoundNearestTiesToEven) {
  const double in[] = {0.5, 1.5, 2.5, -0.5, -1.5, 3.2, -3.8, 4.0};
  for (double x : in) {
    constexpr int w = native_width;
    double got[w];
    round_nearest(vdouble::broadcast(x)).store(got);
    for (int i = 0; i < w; ++i) {
      EXPECT_EQ(got[i], std::nearbyint(x)) << "x=" << x;
    }
  }
}

TEST(SimdPrimitives, SelectsAreLanewise) {
  constexpr int w = native_width;
  double a[w], b[w], got[w];
  for (int i = 0; i < w; ++i) {
    a[i] = static_cast<double>(i);
    b[i] = static_cast<double>(w - i);  // a < b exactly for i < w/2 (w>1)
  }
  select_lt(vdouble::load(a), vdouble::load(b), vdouble::broadcast(1.0),
            vdouble::broadcast(-1.0))
      .store(got);
  for (int i = 0; i < w; ++i) {
    EXPECT_EQ(got[i], a[i] < b[i] ? 1.0 : -1.0) << "lane " << i;
  }
  select_eq(vdouble::load(a), vdouble::load(b), vdouble::broadcast(1.0),
            vdouble::broadcast(-1.0))
      .store(got);
  for (int i = 0; i < w; ++i) {
    EXPECT_EQ(got[i], a[i] == b[i] ? 1.0 : -1.0) << "lane " << i;
  }
}

TEST(SimdPrimitives, Exp2iBuildsExactPowersOfTwo) {
  for (int e : {-1022, -512, -1, 0, 1, 52, 511, 1023}) {
    constexpr int w = native_width;
    double got[w];
    exp2i(vdouble::broadcast(static_cast<double>(e))).store(got);
    for (int i = 0; i < w; ++i) {
      EXPECT_EQ(got[i], std::ldexp(1.0, e)) << "e=" << e;
    }
  }
  // The documented saturation edge: n == 1024 overflows the exponent field
  // into +inf, which is exactly what the exp kernels rely on.
  constexpr int w = native_width;
  double got[w];
  exp2i(vdouble::broadcast(1024.0)).store(got);
  for (int i = 0; i < w; ++i) {
    EXPECT_EQ(got[i], std::numeric_limits<double>::infinity());
  }
}

TEST(SimdPrimitives, ExponentMantissaMatchFrexp) {
  const double in[] = {1.0,    0.5,     2.0,      0.75,    1e-300,
                       1e300,  3.14159, 123456.0, 7.5e-12, 0.9999999};
  for (double x : in) {
    int se = 0;
    const double sm = std::frexp(x, &se);
    constexpr int w = native_width;
    double ge[w], gm[w];
    exponent_part(vdouble::broadcast(x)).store(ge);
    mantissa_part(vdouble::broadcast(x)).store(gm);
    for (int i = 0; i < w; ++i) {
      EXPECT_EQ(ge[i], static_cast<double>(se)) << "x=" << x;
      EXPECT_EQ(gm[i], sm) << "x=" << x;
      // Reconstruction is exact: x = m * 2^e.
      EXPECT_EQ(std::ldexp(gm[i], static_cast<int>(ge[i])), x);
    }
  }
}

// ---------------------------------------------------------------------------
// Polynomial math kernels at width 1. detail:: kernels are instantiable at
// width 1 on every build (including DIMMER_SIMD=scalar), so these accuracy
// pins run everywhere.

TEST(SimdMathKernels, PolyExpWithinUlpOfStd) {
  for (double x = -705.0; x <= 705.0; x += 0.7734) {
    const double got = detail::poly_exp(s1(x)).v;
    const double want = std::exp(x);
    EXPECT_LE(ulp_diff(got, want), 4) << "x=" << x << " got=" << got
                                      << " want=" << want;
  }
}

TEST(SimdMathKernels, PolyExpFlushesAndSaturates) {
  EXPECT_EQ(detail::poly_exp(s1(-800.0)).v, 0.0);
  EXPECT_EQ(detail::poly_exp(s1(-1.0e4)).v, 0.0);
  EXPECT_EQ(detail::poly_exp(s1(800.0)).v,
            std::numeric_limits<double>::infinity());
}

TEST(SimdMathKernels, PolyExp10WithinUlpOfStd) {
  for (double x = -305.0; x <= 305.0; x += 0.3117) {
    const double got = detail::poly_exp10(s1(x)).v;
    const double want = std::pow(10.0, x);
    EXPECT_LE(ulp_diff(got, want), 4) << "x=" << x << " got=" << got
                                      << " want=" << want;
  }
}

TEST(SimdMathKernels, PolyExp10FlushesAndSaturates) {
  EXPECT_EQ(detail::poly_exp10(s1(-320.0)).v, 0.0);
  EXPECT_EQ(detail::poly_exp10(s1(320.0)).v,
            std::numeric_limits<double>::infinity());
}

TEST(SimdMathKernels, PolyExp2WithinUlpOfStd) {
  for (double x = -1020.0; x <= 1020.0; x += 1.37) {
    const double got = detail::poly_exp2(s1(x)).v;
    const double want = std::exp2(x);
    EXPECT_LE(ulp_diff(got, want), 4) << "x=" << x;
  }
}

TEST(SimdMathKernels, PolyLog2WithinUlpOfStd) {
  // Log-spaced sweep across the positive normals the PHY feeds log2
  // (mW powers spanning roughly 1e-30 .. 1e3, plus a wide safety margin).
  for (double e = -280.0; e <= 280.0; e += 1.83) {
    const double x = std::pow(10.0, e / 10.0) * 1.2345;
    const double got = detail::poly_log2(s1(x)).v;
    const double want = std::log2(x);
    EXPECT_LE(ulp_diff(got, want), 4) << "x=" << x;
  }
  // Near 1.0 the result approaches zero; the compensated assembly keeps the
  // *absolute* error tiny there (relative ulp is the wrong yardstick at 0).
  for (double x : {0.999, 0.9999999, 1.0, 1.0000001, 1.001}) {
    EXPECT_NEAR(detail::poly_log2(s1(x)).v, std::log2(x), 1e-16) << "x=" << x;
  }
}

TEST(SimdMathKernels, PolyPowPositiveWithinRelativeTolerance) {
  // The flood engine's exponents: base = 1 - BER in (0.5, 1], y = bits up to
  // a few thousand. |y*log2(x)| stays < ~2100, where the exp2(y*log2(x))
  // construction holds ~1e-13 relative error.
  for (double base : {0.5000001, 0.75, 0.9, 0.99, 0.999999, 1.0}) {
    for (double bits : {0.0, 1.0, 8.0, 288.0, 1024.0, 2040.0}) {
      const double got = detail::poly_pow_positive(s1(base), s1(bits)).v;
      const double want = std::pow(base, bits);
      EXPECT_NEAR(got, want, std::abs(want) * 1e-11 + 1e-300)
          << "base=" << base << " bits=" << bits;
    }
  }
  // pow(x, +0.0) == 1.0 exactly — the identity the branchless
  // frame_success_kernel relies on for the jam_fraction == 0/1 cases.
  for (double base : {0.5000001, 0.9, 1.0}) {
    EXPECT_EQ(detail::poly_pow_positive(s1(base), s1(0.0)).v, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Public dispatch: width 1 must be the literal std:: call (bit-identity is
// the scalar backend's whole determinism story).

TEST(SimdMathDispatch, WidthOneIsBitwiseStd) {
  for (double x = -50.0; x <= 50.0; x += 0.917) {
    EXPECT_EQ(exp(s1(x)).v, std::exp(x));
    EXPECT_EQ(exp10(s1(x * 3.0)).v, std::pow(10.0, x * 3.0));
  }
  for (double x : {1e-20, 0.3, 1.0, 2.5, 1e15}) {
    EXPECT_EQ(log2(s1(x)).v, std::log2(x));
    EXPECT_EQ(pow_positive(s1(x), s1(2.75)).v, std::pow(x, 2.75));
  }
}

// ---------------------------------------------------------------------------
// Lanewise purity on the native type: a value's result must not depend on
// which lane it occupies. Rotate the inputs through every lane and demand
// bit-identical per-value results.

TEST(SimdMathNative, ResultsAreLanePositionIndependent) {
  constexpr int w = native_width;
  double base[w];
  for (int i = 0; i < w; ++i) base[i] = -3.0 + 1.618 * i;
  double ref[w];
  exp(vdouble::load(base)).store(ref);
  for (int rot = 1; rot < w; ++rot) {
    double in[w], out[w];
    for (int i = 0; i < w; ++i) in[i] = base[(i + rot) % w];
    exp(vdouble::load(in)).store(out);
    for (int i = 0; i < w; ++i) {
      EXPECT_EQ(out[i], ref[(i + rot) % w]) << "rot=" << rot << " lane=" << i;
    }
  }
}

TEST(SimdMathNative, NativeExpMatchesStdWithinUlp) {
  // On the scalar backend this is exact (std::exp IS the implementation);
  // on wider backends the polynomial kernel must stay within a few ulp.
  const std::int64_t bound = native_width == 1 ? 0 : 4;
  constexpr int w = native_width;
  for (double x = -40.0; x <= 40.0; x += 0.73) {
    double got[w];
    exp(vdouble::broadcast(x)).store(got);
    for (int i = 0; i < w; ++i) {
      EXPECT_LE(ulp_diff(got[i], std::exp(x)), bound) << "x=" << x;
    }
  }
}

}  // namespace
}  // namespace dimmer::util::simd
