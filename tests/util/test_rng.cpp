#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "util/rng.hpp"

namespace dimmer::util {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg32, UniformRangeRespectsBounds) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Pcg32, UniformMeanIsCentered) {
  Pcg32 rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Pcg32, UniformBelowCoversAllValues) {
  Pcg32 rng(3);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Pcg32, UniformBelowZeroThrows) {
  Pcg32 rng(3);
  EXPECT_THROW(rng.uniform_below(0), RequireError);
}

TEST(Pcg32, UniformIntInclusiveBounds) {
  Pcg32 rng(5);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    int v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Pcg32, UniformIntReversedBoundsThrows) {
  Pcg32 rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), RequireError);
}

TEST(Pcg32, UniformIntFullIntRangeIsDefined) {
  // Regression: `hi - lo + 1` evaluated in int was signed-overflow UB for
  // any span wider than INT_MAX; under UBSan this test aborted on the old
  // code. The widened span must cover the whole domain, both signs
  // included (a truncated span would pin one sign).
  Pcg32 rng(101);
  bool neg = false, pos = false;
  for (int i = 0; i < 200; ++i) {
    int v = rng.uniform_int(std::numeric_limits<int>::min(),
                            std::numeric_limits<int>::max());
    neg = neg || v < 0;
    pos = pos || v > 0;
  }
  EXPECT_TRUE(neg);
  EXPECT_TRUE(pos);
}

TEST(Pcg32, UniformIntDegenerateAndExtremeBounds) {
  Pcg32 rng(7);
  const int lo = std::numeric_limits<int>::min();
  const int hi = std::numeric_limits<int>::max();
  EXPECT_EQ(rng.uniform_int(lo, lo), lo);
  EXPECT_EQ(rng.uniform_int(hi, hi), hi);
  // A just-past-INT_MAX span (another historically overflowing case).
  for (int i = 0; i < 200; ++i) {
    int v = rng.uniform_int(-2, hi);
    EXPECT_GE(v, -2);
  }
}

TEST(Pcg32, UniformIntInRangeDrawsMatchUniformBelow) {
  // The widening must not change any in-range draw: uniform_int(lo, hi) is
  // still lo + uniform_below(hi - lo + 1), bit for bit, stream for stream.
  Pcg32 a(42), b(42);
  struct Range {
    int lo, hi;
  } ranges[] = {{0, 0}, {-2, 2}, {0, 6}, {-100, 100}, {5, 1000000}};
  for (const Range& r : ranges) {
    for (int i = 0; i < 50; ++i) {
      int want = r.lo + static_cast<int>(b.uniform_below(
                            static_cast<std::uint32_t>(r.hi - r.lo + 1)));
      EXPECT_EQ(a.uniform_int(r.lo, r.hi), want)
          << "[" << r.lo << "," << r.hi << "] draw " << i;
    }
  }
  // And the streams stay aligned afterwards.
  EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, BernoulliFrequencyMatchesP) {
  Pcg32 rng(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Pcg32, NormalMomentsAreStandard) {
  Pcg32 rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Pcg32, ShuffleIsAPermutation) {
  Pcg32 rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Pcg32, ForkProducesIndependentStream) {
  Pcg32 a(23);
  Pcg32 child = a.fork(1);
  Pcg32 b(23);
  Pcg32 child2 = b.fork(1);
  // Forks of identical parents with the same tag agree...
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(child.next_u32(), child2.next_u32());
  // ...and differ from the parent stream.
  Pcg32 c(23);
  Pcg32 child3 = c.fork(2);
  Pcg32 d(23);
  Pcg32 child4 = d.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (child3.next_u32() == child4.next_u32()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Hashing, SplitmixIsPure) {
  EXPECT_EQ(splitmix64(123), splitmix64(123));
  EXPECT_NE(splitmix64(123), splitmix64(124));
}

TEST(Hashing, MultiArgHashOrderSensitive) {
  EXPECT_NE(hash_u64(1, 2), hash_u64(2, 1));
  EXPECT_NE(hash_u64(1, 2, 3), hash_u64(3, 2, 1));
}

TEST(Hashing, PureUniformInUnitInterval) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    double u = pure_uniform(splitmix64(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace dimmer::util
