#include <gtest/gtest.h>

#include <limits>

#include "util/fixed_point.hpp"

namespace dimmer::util {
namespace {

TEST(FixedPoint, RoundTripWithinResolution) {
  for (double x : {0.0, 0.5, -0.5, 1.23, -7.77, 42.42}) {
    std::int16_t q = to_fixed16(x);
    EXPECT_NEAR(from_fixed16(q), x, 0.5 / kFixedPointScale + 1e-12);
  }
}

TEST(FixedPoint, RoundsHalfAwayFromZero) {
  EXPECT_EQ(to_fixed16(0.005), 1);    // 0.5 -> 1
  EXPECT_EQ(to_fixed16(-0.005), -1);  // -0.5 -> -1
  EXPECT_EQ(to_fixed16(0.004), 0);
}

TEST(FixedPoint, SaturatesAtInt16Limits) {
  EXPECT_EQ(to_fixed16(1e9), std::numeric_limits<std::int16_t>::max());
  EXPECT_EQ(to_fixed16(-1e9), std::numeric_limits<std::int16_t>::min());
  // Boundary: 327.67 is exactly representable, 327.68 saturates.
  EXPECT_EQ(to_fixed16(327.67), 32767);
  EXPECT_EQ(to_fixed16(327.68), 32767);
}

TEST(FixedPoint, MulMatchesFloatWithinResolution) {
  // (1.50 * 2.25) = 3.375; scale-100 fixed: 150 * 225 / 100 = 337 (trunc).
  EXPECT_EQ(fixed_mul(150, 225), 337);
  // Negative operand truncates toward zero like MCU integer division.
  EXPECT_EQ(fixed_mul(-150, 225), -337);
}

TEST(FixedPoint, MulByOneIsIdentity) {
  EXPECT_EQ(fixed_mul(12345, 100), 12345);
}

TEST(FixedPoint, Saturate16Clamps) {
  EXPECT_EQ(saturate16(40000), std::numeric_limits<std::int16_t>::max());
  EXPECT_EQ(saturate16(-40000), std::numeric_limits<std::int16_t>::min());
  EXPECT_EQ(saturate16(1234), 1234);
}

TEST(FixedPoint, CustomScale) {
  std::int16_t q = to_fixed16(1.5, 1000);
  EXPECT_EQ(q, 1500);
  EXPECT_DOUBLE_EQ(from_fixed16(q, 1000), 1.5);
}

}  // namespace
}  // namespace dimmer::util
