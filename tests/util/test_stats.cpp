#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dimmer::util {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  double mean = sum / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i * 0.7) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(3.0);
  a.add(5.0);
  double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

// Property test: merging any partition of a sample stream equals a single
// sequential pass. The parallel experiment runner aggregates per-trial
// RunningStats with merge(), so this identity is load-bearing.
TEST(RunningStats, MergeOverArbitrarySplitsEqualsSequentialAdd) {
  Pcg32 rng(0xCAFEu);
  for (int rep = 0; rep < 200; ++rep) {
    const int n = 1 + rng.uniform_int(0, 300);
    std::vector<double> xs(n);
    double scale = std::pow(10.0, rng.uniform_int(-3, 3));
    for (double& x : xs) x = rng.normal(rng.uniform(-5.0, 5.0), 1.0) * scale;

    RunningStats seq;
    for (double x : xs) seq.add(x);

    // Random split into contiguous chunks, one RunningStats each, merged
    // left to right.
    RunningStats merged;
    int i = 0;
    while (i < n) {
      int len = 1 + rng.uniform_int(0, n - i - 1);
      RunningStats part;
      for (int j = 0; j < len; ++j) part.add(xs[i++]);
      merged.merge(part);
    }

    ASSERT_EQ(merged.count(), seq.count());
    double tol = 1e-9 * std::max(1.0, std::abs(seq.mean()));
    ASSERT_NEAR(merged.mean(), seq.mean(), tol);
    double vtol = 1e-9 * std::max(1.0, seq.variance());
    ASSERT_NEAR(merged.variance(), seq.variance(), vtol);
    ASSERT_DOUBLE_EQ(merged.min(), seq.min());
    ASSERT_DOUBLE_EQ(merged.max(), seq.max());
  }
}

TEST(Ewma, FirstSampleSeeds) {
  Ewma e(0.5);
  EXPECT_FALSE(e.seeded());
  e.add(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstantInput) {
  Ewma e(0.2);
  e.add(0.0);
  for (int i = 0; i < 100; ++i) e.add(1.0);
  EXPECT_NEAR(e.value(), 1.0, 1e-6);
}

TEST(Ewma, InvalidAlphaThrows) {
  EXPECT_THROW(Ewma(0.0), RequireError);
  EXPECT_THROW(Ewma(1.5), RequireError);
}

TEST(WindowMean, PartialWindow) {
  WindowMean w(4);
  w.add(2.0);
  w.add(4.0);
  EXPECT_EQ(w.count(), 2u);
  EXPECT_FALSE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(WindowMean, EvictsOldestWhenFull) {
  WindowMean w(3);
  for (double x : {1.0, 2.0, 3.0, 10.0}) w.add(x);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);  // {2, 3, 10}
  w.add(11.0);
  EXPECT_DOUBLE_EQ(w.mean(), 8.0);  // {3, 10, 11}
}

TEST(WindowMean, ResetClears) {
  WindowMean w(2);
  w.add(5.0);
  w.reset();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(WindowMean, ZeroCapacityThrows) {
  EXPECT_THROW(WindowMean(0), RequireError);
}

TEST(Percentile, OrderStatistics) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), RequireError);
  EXPECT_THROW(percentile({1.0}, 101), RequireError);
}

// Reference implementation: the original full-sort version. The selection
// rewrite must be bit-identical to it (same order statistics, same
// interpolation expression), not merely close.
double percentile_by_sort(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

TEST(Percentile, RejectsNonFiniteSamples) {
  // Regression: NaN breaks nth_element's strict weak ordering — the old
  // code was UB (in practice: an arbitrary element returned silently). Any
  // non-finite sample must instead fail loudly.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)percentile({nan}, 50.0), RequireError);
  EXPECT_THROW((void)percentile({1.0, nan, 3.0}, 50.0), RequireError);
  EXPECT_THROW((void)percentile({1.0, 2.0, inf}, 99.0), RequireError);
  EXPECT_THROW((void)percentile({-inf, 2.0, 3.0}, 0.0), RequireError);
  // Finite samples — including extreme but representable ones — still work.
  EXPECT_EQ(percentile({5.0}, 50.0), 5.0);
  EXPECT_EQ(percentile({1e308, -1e308}, 0.0), -1e308);
}

TEST(Percentile, BitIdenticalToSortBasedReference) {
  Pcg32 rng(404);
  const double ps[] = {0.0, 1.0, 12.5, 25.0, 50.0, 66.6, 90.0, 99.0, 100.0};
  for (std::size_t n : {1u, 2u, 3u, 5u, 10u, 37u, 100u, 1000u}) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform(-50.0, 50.0);
    // Duplicates exercise the equal-elements partition path.
    if (n >= 10) v[n / 2] = v[0];
    for (double p : ps) {
      EXPECT_EQ(percentile(v, p), percentile_by_sort(v, p))
          << "n=" << n << " p=" << p;  // exact, not NEAR
    }
  }
}

}  // namespace
}  // namespace dimmer::util
