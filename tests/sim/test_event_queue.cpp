#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace dimmer::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(ms(30), [&] { fired.push_back(3); });
  q.schedule_at(ms(10), [&] { fired.push_back(1); });
  q.schedule_at(ms(20), [&] { fired.push_back(2); });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), ms(30));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    q.schedule_at(ms(10), [&fired, i] { fired.push_back(i); });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  TimeUs seen = -1;
  q.schedule_at(ms(5), [&] {
    q.schedule_in(ms(7), [&] { seen = q.now(); });
  });
  q.run_all();
  EXPECT_EQ(seen, ms(12));
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule_at(ms(10), [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(ms(5), [] {}), util::RequireError);
  EXPECT_THROW(q.schedule_in(-1, [] {}), util::RequireError);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto id = q.schedule_at(ms(10), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  q.run_all();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelReleasesCallbackImmediately) {
  EventQueue q;
  auto payload = std::make_shared<int>(42);
  auto id = q.schedule_at(hours(24), [payload] { (void)*payload; });
  EXPECT_EQ(payload.use_count(), 2);
  EXPECT_TRUE(q.cancel(id));
  // The callback and its captures are destroyed on cancel, not at the
  // event's (far-future) timestamp.
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(EventQueue, MassCancellationKeepsHeapBounded) {
  EventQueue q;
  auto payload = std::make_shared<int>(0);
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 10000; ++i)
    ids.push_back(q.schedule_at(hours(100) + ms(i), [payload] { ++*payload; }));
  EXPECT_EQ(q.size(), 10000u);
  for (auto id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(payload.use_count(), 1);       // all captures released
  EXPECT_LT(q.heap_size(), 64u);           // residue compacted away
}

TEST(EventQueue, RepeatedScheduleCancelCyclesStayBounded) {
  EventQueue q;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    std::vector<EventQueue::EventId> ids;
    for (int i = 0; i < 100; ++i)
      ids.push_back(q.schedule_at(hours(1000), [] {}));
    for (auto id : ids) q.cancel(id);
    ASSERT_LT(q.heap_size(), 256u);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, RunUntilIgnoresCancelledHead) {
  EventQueue q;
  bool late_fired = false;
  auto id = q.schedule_at(ms(10), [] {});
  q.schedule_at(ms(30), [&] { late_fired = true; });
  q.cancel(id);
  // A cancelled entry at ms(10) must not drag execution past `until`.
  q.run_until(ms(20));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(q.now(), ms(20));
  EXPECT_EQ(q.size(), 1u);
  q.run_all();
  EXPECT_TRUE(late_fired);
}

TEST(EventQueue, CancelAfterFiringReturnsFalse) {
  EventQueue q;
  auto id = q.schedule_at(ms(1), [] {});
  q.run_all();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(ms(10), [&] { fired.push_back(1); });
  q.schedule_at(ms(20), [&] { fired.push_back(2); });
  q.schedule_at(ms(30), [&] { fired.push_back(3); });
  q.run_until(ms(20));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), ms(20));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWithoutEvents) {
  EventQueue q;
  q.run_until(seconds(5));
  EXPECT_EQ(q.now(), seconds(5));
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.schedule_in(ms(1), recurse);
  };
  q.schedule_at(0, recurse);
  q.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(q.now(), ms(9));
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(ms(1), 1000);
  EXPECT_EQ(seconds(1), 1000000);
  EXPECT_EQ(minutes(2), 120000000);
  EXPECT_EQ(hours(1), 3600000000LL);
  EXPECT_DOUBLE_EQ(to_ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(2500000), 2.5);
}

}  // namespace
}  // namespace dimmer::sim
