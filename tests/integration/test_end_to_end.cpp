// Integration tests crossing module boundaries: trace collection -> DQN
// training -> quantized deployment -> closed-loop adaptation; plus the PID
// baseline driving a live network, and the combined DQN + forwarder
// selection mode.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/pid.hpp"
#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "core/trace_env.hpp"
#include "phy/topology.hpp"
#include "rl/quantized.hpp"
#include "util/stats.hpp"

namespace dimmer {
namespace {

std::vector<phy::NodeId> all_sources(int n) {
  std::vector<phy::NodeId> s;
  for (int i = 1; i < n; ++i) s.push_back(i);
  s.push_back(0);
  return s;
}

TEST(Integration, PidClosedLoopCountersInterference) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::add_static_jamming(field, topo, 0.30);

  core::ProtocolConfig cfg;
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<baselines::PidController>(), 0, 3);
  auto sources = all_sources(18);
  util::RunningStats early, late;
  int max_n = 0;
  for (int r = 0; r < 40; ++r) {
    core::RoundStats rs = net.run_round(sources);
    (r < 5 ? early : late).add(rs.reliability);
    max_n = std::max(max_n, rs.n_tx);
  }
  EXPECT_EQ(max_n, 8);               // the controller ramped up
  EXPECT_GT(late.mean(), 0.99);      // and interference is countered
}

TEST(Integration, TrainedQuantizedPolicyAdaptsEndToEnd) {
  phy::Topology topo = phy::make_office18_topology();

  // 1. Collect traces under the training schedule (small but real).
  core::TraceCollectionConfig tc;
  tc.steps = 400;
  tc.seed = 13;
  tc.start_time = sim::hours(10);
  phy::InterferenceField train_field;
  core::add_training_schedule(
      train_field, topo,
      tc.start_time + static_cast<sim::TimeUs>(tc.steps) * tc.round_period,
      13);
  core::TraceDataset traces = core::collect_traces(topo, train_field, tc);

  // 2. Train a small-budget DQN.
  core::TraceEnv::Config env_cfg;
  core::TrainerConfig tr;
  tr.total_steps = 30000;
  tr.dqn.epsilon_anneal_steps = 15000;
  tr.seed = 29;
  rl::Mlp policy = core::train_dqn_on_traces(traces, env_cfg, tr);

  // 3. Deploy the quantized network in a closed loop under heavy jamming.
  phy::InterferenceField jam;
  core::add_static_jamming(jam, topo, 0.30);
  core::ProtocolConfig cfg;
  core::DimmerNetwork net(
      topo, jam, cfg,
      std::make_unique<core::DqnController>(rl::QuantizedMlp(policy),
                                            env_cfg.features),
      0, 31);
  auto sources = all_sources(18);
  int max_n = 0;
  util::RunningStats rel;
  for (int r = 0; r < 30; ++r) {
    core::RoundStats rs = net.run_round(sources);
    max_n = std::max(max_n, rs.n_tx);
    if (r >= 10) rel.add(rs.reliability);
  }
  // Even a small-budget policy must learn the core reflex: raise N_TX
  // under sustained losses, and beat the static N=3 reliability floor.
  EXPECT_GE(max_n, 5);
  EXPECT_GT(rel.mean(), 0.95);
}

TEST(Integration, AdaptiveBeatsStaticUnderJamming) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::add_static_jamming(field, topo, 0.30);
  auto sources = all_sources(18);

  auto run = [&](std::unique_ptr<core::AdaptivityController> c) {
    core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                            std::move(c), 0, 5);
    util::RunningStats rel;
    for (int r = 0; r < 30; ++r) rel.add(net.run_round(sources).reliability);
    return rel.mean();
  };

  double adaptive = run(std::make_unique<baselines::PidController>());
  double fixed = run(std::make_unique<core::StaticController>(3));
  EXPECT_GT(adaptive, fixed + 0.02);
}

TEST(Integration, CombinedModeSwitchesBetweenDqnAndMab) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  // Interference only in the middle third of the run.
  phy::BurstJammer::Config jam = phy::BurstJammer::jamlab(
      core::office_jammer_position(topo, 0), 0.3);
  jam.start_us = sim::seconds(4) * 30;
  jam.stop_us = sim::seconds(4) * 60;
  field.add(std::make_unique<phy::BurstJammer>(jam));

  core::ProtocolConfig cfg;
  cfg.forwarder_selection = true;
  cfg.mab_calm_rounds = 2;
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<baselines::PidController>(), 0, 7);
  auto sources = all_sources(18);
  int mab_calm = 0, mab_jam = 0, all_active_jam = 0;
  for (int r = 0; r < 90; ++r) {
    core::RoundStats rs = net.run_round(sources);
    if (r >= 35 && r < 60) {
      mab_jam += rs.mab_round;
      // "Under interference, all devices are active" on post-loss rounds.
      if (!rs.mab_round && rs.active_forwarders == 18) ++all_active_jam;
    }
    if (r >= 5 && r < 30) mab_calm += rs.mab_round;
  }
  EXPECT_GT(mab_calm, 20);        // calm: learning rounds dominate
  EXPECT_LT(mab_jam, mab_calm);   // jam: control rounds claw time back
  EXPECT_GT(all_active_jam, 0);   // the all-active fallback was exercised
}

TEST(Integration, FullRunStaysDeterministic) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::add_dynamic_jamming(field, topo);
  auto run_once = [&] {
    core::ProtocolConfig cfg;
    cfg.forwarder_selection = true;
    cfg.mab_calm_rounds = 0;
    core::DimmerNetwork net(topo, field, cfg,
                            std::make_unique<core::StaticController>(3), 0,
                            11);
    double acc = 0.0;
    auto sources = all_sources(18);
    for (int r = 0; r < 50; ++r) {
      core::RoundStats rs = net.run_round(sources);
      acc += rs.reliability + rs.radio_on_ms + rs.active_forwarders;
    }
    return acc;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dimmer
