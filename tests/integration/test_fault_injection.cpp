// Crash-fault injection: nodes dropping out of (and rejoining) a live
// network. Exercises the pessimistic-feedback path the paper's design
// implies: a coordinator cannot distinguish a crashed node from a jammed
// one, so missing feedback escalates N_TX until the operator prunes the
// feedback subset.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/pid.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "phy/topology.hpp"
#include "util/stats.hpp"

namespace dimmer {
namespace {

std::vector<phy::NodeId> sources_excluding(int n, phy::NodeId skip) {
  std::vector<phy::NodeId> s;
  for (int i = 1; i < n; ++i)
    if (i != skip) s.push_back(i);
  s.push_back(0);
  return s;
}

TEST(FaultInjection, NetworkSurvivesALeafCrash) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 1);
  net.set_node_failed(17, true);  // far-end leaf
  auto sources = sources_excluding(18, 17);
  util::RunningStats rel;
  for (int r = 0; r < 20; ++r) rel.add(net.run_round(sources).reliability);
  // Remaining destinations still get everything.
  EXPECT_GT(rel.mean(), 0.999);
}

TEST(FaultInjection, CrashedNodeConsumesNoEnergy) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 2);
  net.set_node_failed(9, true);
  core::RoundStats before = net.run_round(sources_excluding(18, 9));
  (void)before;
  // The failed node's stats collector never advances.
  EXPECT_EQ(net.stats(9).reception_slots_seen(), 0u);
}

TEST(FaultInjection, CrashedSourceYieldsSilentSlots) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 3);
  net.set_node_failed(5, true);
  // Node 5 stays in the schedule (the coordinator does not know yet).
  std::vector<phy::NodeId> sources;
  for (int i = 1; i < 18; ++i) sources.push_back(i);
  core::RoundStats rs = net.run_round(sources);
  EXPECT_FALSE(rs.lossless);      // everyone misses node 5's packets
  EXPECT_LT(rs.reliability, 1.0);
  EXPECT_FALSE(rs.sink_received[4]);  // slot of source 5 (index 4)
}

TEST(FaultInjection, MissingFeedbackEscalatesAdaptiveController) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<baselines::PidController>(), 0, 4);
  auto sources = sources_excluding(18, -1);  // everyone reports
  for (int r = 0; r < 5; ++r) net.run_round(sources);
  EXPECT_LE(net.commanded_n_tx(), 4);  // calm network, cheap parameter
  // Node 11 crashes but stays scheduled: its silence reads as losses and
  // 0% reliability, so the controller escalates.
  net.set_node_failed(11, true);
  for (int r = 0; r < 10; ++r) net.run_round(sources);
  EXPECT_EQ(net.commanded_n_tx(), 8);
}

TEST(FaultInjection, FeedbackSubsetPruningRestoresCalm) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::ProtocolConfig cfg;
  for (int i = 0; i < 18; ++i)
    if (i != 11) cfg.feedback_nodes.push_back(i);  // 11 pre-excluded
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<baselines::PidController>(), 0, 5);
  net.set_node_failed(11, true);
  auto sources = sources_excluding(18, 11);
  for (int r = 0; r < 10; ++r) net.run_round(sources);
  EXPECT_LE(net.commanded_n_tx(), 4);  // the crash is invisible and harmless
}

TEST(FaultInjection, RecoveredNodeResynchronizes) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 6);
  auto sources = sources_excluding(18, -1);  // node 13 stays scheduled
  net.set_node_failed(13, true);
  for (int r = 0; r < 5; ++r) {
    core::RoundStats down = net.run_round(sources);
    EXPECT_LT(down.reliability, 1.0);  // its slots are silent
  }
  EXPECT_TRUE(net.node_failed(13));
  net.set_node_failed(13, false);
  core::RoundStats rs{};
  for (int r = 0; r < 4; ++r) rs = net.run_round(sources);
  // Back in sync: the node hears schedules, sources again, and its header
  // reaches the coordinator.
  EXPECT_TRUE(net.snapshot(0).fresh(13));
  EXPECT_GT(rs.reliability, 0.99);
}

TEST(FaultInjection, CoordinatorCannotBeFailed) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 7);
  EXPECT_THROW(net.set_node_failed(0, true), util::RequireError);
  EXPECT_THROW(net.set_node_failed(99, true), util::RequireError);
}

TEST(FaultInjection, HalfTheNetworkCanDieAndTheRestStillFloods) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(4), 0, 8);
  // Kill every second node (odd ids); even ids remain a connected chain.
  std::vector<phy::NodeId> sources;
  for (int i = 1; i < 18; ++i) {
    if (i % 2 == 1)
      net.set_node_failed(i, true);
    else
      sources.push_back(i);
  }
  util::RunningStats rel;
  for (int r = 0; r < 20; ++r) rel.add(net.run_round(sources).reliability);
  EXPECT_GT(rel.mean(), 0.9);  // sparser, but alive
}

}  // namespace
}  // namespace dimmer
