// Crash-fault injection: nodes dropping out of (and rejoining) a live
// network. Exercises the pessimistic-feedback path the paper's design
// implies: a coordinator cannot distinguish a crashed node from a jammed
// one, so missing feedback escalates N_TX until the operator prunes the
// feedback subset.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/pid.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "fault/plan.hpp"
#include "phy/topology.hpp"
#include "util/stats.hpp"

namespace dimmer {
namespace {

std::vector<phy::NodeId> sources_excluding(int n, phy::NodeId skip) {
  std::vector<phy::NodeId> s;
  for (int i = 1; i < n; ++i)
    if (i != skip) s.push_back(i);
  s.push_back(0);
  return s;
}

TEST(FaultInjection, NetworkSurvivesALeafCrash) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 1);
  net.set_node_failed(17, true);  // far-end leaf
  auto sources = sources_excluding(18, 17);
  util::RunningStats rel;
  for (int r = 0; r < 20; ++r) rel.add(net.run_round(sources).reliability);
  // Remaining destinations still get everything.
  EXPECT_GT(rel.mean(), 0.999);
}

TEST(FaultInjection, CrashedNodeConsumesNoEnergy) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 2);
  net.set_node_failed(9, true);
  core::RoundStats before = net.run_round(sources_excluding(18, 9));
  (void)before;
  // The failed node's stats collector never advances.
  EXPECT_EQ(net.stats(9).reception_slots_seen(), 0u);
}

TEST(FaultInjection, CrashedSourceYieldsSilentSlots) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 3);
  net.set_node_failed(5, true);
  // Node 5 stays in the schedule (the coordinator does not know yet).
  std::vector<phy::NodeId> sources;
  for (int i = 1; i < 18; ++i) sources.push_back(i);
  core::RoundStats rs = net.run_round(sources);
  EXPECT_FALSE(rs.lossless);      // everyone misses node 5's packets
  EXPECT_LT(rs.reliability, 1.0);
  EXPECT_FALSE(rs.sink_received[4]);  // slot of source 5 (index 4)
}

TEST(FaultInjection, MissingFeedbackEscalatesAdaptiveController) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<baselines::PidController>(), 0, 4);
  auto sources = sources_excluding(18, -1);  // everyone reports
  for (int r = 0; r < 5; ++r) net.run_round(sources);
  EXPECT_LE(net.commanded_n_tx(), 4);  // calm network, cheap parameter
  // Node 11 crashes but stays scheduled: its silence reads as losses and
  // 0% reliability, so the controller escalates.
  net.set_node_failed(11, true);
  for (int r = 0; r < 10; ++r) net.run_round(sources);
  EXPECT_EQ(net.commanded_n_tx(), 8);
}

TEST(FaultInjection, FeedbackSubsetPruningRestoresCalm) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::ProtocolConfig cfg;
  for (int i = 0; i < 18; ++i)
    if (i != 11) cfg.feedback_nodes.push_back(i);  // 11 pre-excluded
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<baselines::PidController>(), 0, 5);
  net.set_node_failed(11, true);
  auto sources = sources_excluding(18, 11);
  for (int r = 0; r < 10; ++r) net.run_round(sources);
  EXPECT_LE(net.commanded_n_tx(), 4);  // the crash is invisible and harmless
}

TEST(FaultInjection, RecoveredNodeResynchronizes) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 6);
  auto sources = sources_excluding(18, -1);  // node 13 stays scheduled
  net.set_node_failed(13, true);
  for (int r = 0; r < 5; ++r) {
    core::RoundStats down = net.run_round(sources);
    EXPECT_LT(down.reliability, 1.0);  // its slots are silent
  }
  EXPECT_TRUE(net.node_failed(13));
  net.set_node_failed(13, false);
  core::RoundStats rs{};
  for (int r = 0; r < 4; ++r) rs = net.run_round(sources);
  // Back in sync: the node hears schedules, sources again, and its header
  // reaches the coordinator.
  EXPECT_TRUE(net.snapshot(0).fresh(13));
  EXPECT_GT(rs.reliability, 0.99);
}

TEST(FaultInjection, SetNodeFailedRejectsOutOfRange) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 7);
  EXPECT_THROW(net.set_node_failed(99, true), util::RequireError);
  EXPECT_THROW(net.set_node_failed(-1, true), util::RequireError);
}

// ---- Coordinator failover --------------------------------------------------

core::ProtocolConfig failover_config(core::FailoverConfig::Mode mode) {
  core::ProtocolConfig cfg;
  cfg.failover.backups = {1, 2};
  cfg.failover.takeover_silent_rounds = 3;
  cfg.failover.mode = mode;
  return cfg;
}

TEST(Failover, CoordinatorCrashOrphansRoundsWithoutBackups) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(3), 0, 21);
  auto sources = sources_excluding(18, -1);
  for (int r = 0; r < 5; ++r) net.run_round(sources);
  net.set_node_failed(0, true);  // no backups configured: orphaned for good
  core::RoundStats rs{};
  for (int r = 0; r < 6; ++r) {
    rs = net.run_round(sources);
    EXPECT_TRUE(rs.orphaned);
    EXPECT_FALSE(rs.coordinator_lossless);
  }
  // Everyone coasts past max_sync_age and desynchronizes; the network dies
  // quietly instead of throwing.
  EXPECT_EQ(rs.desynchronized, 18);
  EXPECT_EQ(rs.reliability, 0.0);
  EXPECT_EQ(net.failover_count(), 0);
}

TEST(Failover, BackupTakesOverWithinKRoundsAndNetworkReconverges) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field,
                          failover_config(core::FailoverConfig::Mode::kWarm),
                          std::make_unique<core::StaticController>(3), 0, 22);
  auto sources = sources_excluding(18, -1);
  for (int r = 0; r < 5; ++r) net.run_round(sources);
  net.set_node_failed(0, true);

  int orphaned = 0, failover_round = -1;
  core::RoundStats rs{};
  for (int r = 0; r < 10; ++r) {
    rs = net.run_round(sources);
    if (rs.orphaned) ++orphaned;
    if (rs.failover && failover_round < 0) failover_round = r;
  }
  // Exactly K rounds of silence, then backup 1 takes over.
  EXPECT_EQ(orphaned, 3);
  EXPECT_EQ(failover_round, 3);
  EXPECT_EQ(net.coordinator(), 1);
  EXPECT_EQ(net.failover_count(), 1);
  EXPECT_GT(net.last_rounds_to_resync(), 0);
  // The dead coordinator stays scheduled, so its slots are silent; every
  // surviving destination pair works again.
  util::RunningStats rel;
  for (int r = 0; r < 5; ++r) rel.add(net.run_round(sources).reliability);
  double n_pairs = 18.0 * 17.0, dead_pairs = 17.0 + 16.0;
  EXPECT_GT(rel.mean(), (n_pairs - dead_pairs) / n_pairs - 0.01);
  EXPECT_EQ(rs.coordinator, 1);
}

TEST(Failover, WarmKeepsControllerMemoryColdResetsIt) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  double integral[2] = {0.0, 0.0};
  const core::FailoverConfig::Mode modes[2] = {
      core::FailoverConfig::Mode::kWarm, core::FailoverConfig::Mode::kCold};
  for (int m = 0; m < 2; ++m) {
    core::DimmerNetwork net(topo, field, failover_config(modes[m]),
                            std::make_unique<baselines::PidController>(), 0,
                            23);
    auto sources = sources_excluding(18, -1);
    // 40 calm rounds drain the PID integral via energy pressure.
    for (int r = 0; r < 40; ++r) net.run_round(sources);
    net.set_node_failed(0, true);
    for (int r = 0; r < 4; ++r) net.run_round(sources);  // 3 orphans + takeover
    ASSERT_EQ(net.failover_count(), 1) << "mode " << m;
    integral[m] =
        dynamic_cast<const baselines::PidController&>(net.controller())
            .integral();
  }
  // Both modes see the same big lossy error on the takeover round (the dead
  // ex-coordinator's slots are silent), but warm carries the drained
  // pre-crash integral into it while cold starts from zero — so the cold
  // integral ends strictly higher, by roughly the drained amount.
  EXPECT_GT(integral[1], integral[0] + 2.0);
  EXPECT_NEAR(integral[1] - integral[0], 40 * 0.18, 1.5);
}

TEST(Failover, ColdAbortsForwarderEpisodeNetworkWide) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::ProtocolConfig cfg = failover_config(core::FailoverConfig::Mode::kCold);
  cfg.forwarder_selection = true;
  cfg.mab_calm_rounds = 1;
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<core::StaticController>(3), 0, 24);
  auto sources = sources_excluding(18, -1);
  // Long calm phase: the bandits learn and some devices turn passive.
  for (int r = 0; r < 120; ++r) net.run_round(sources);
  ASSERT_NE(net.forwarder_selection(), nullptr);
  std::uint64_t epoch_before = net.forwarder_selection()->epoch();
  net.set_node_failed(0, true);
  for (int r = 0; r < 4; ++r) net.run_round(sources);
  ASSERT_EQ(net.failover_count(), 1);
  // Episode aborted: every device is an active forwarder again and the
  // epoch advanced (fresh turn order excluding the new coordinator).
  EXPECT_EQ(net.forwarder_selection()->active_count(), 18);
  EXPECT_GT(net.forwarder_selection()->epoch(), epoch_before);
}

TEST(Failover, SecondBackupTakesOverWhenFirstAlsoDies) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field,
                          failover_config(core::FailoverConfig::Mode::kWarm),
                          std::make_unique<core::StaticController>(3), 0, 25);
  auto sources = sources_excluding(18, -1);
  for (int r = 0; r < 3; ++r) net.run_round(sources);
  net.set_node_failed(0, true);
  for (int r = 0; r < 5; ++r) net.run_round(sources);
  ASSERT_EQ(net.coordinator(), 1);
  net.set_node_failed(1, true);  // the first backup dies too
  for (int r = 0; r < 5; ++r) net.run_round(sources);
  EXPECT_EQ(net.coordinator(), 2);
  EXPECT_EQ(net.failover_count(), 2);
  util::RunningStats rel;
  for (int r = 0; r < 5; ++r) rel.add(net.run_round(sources).reliability);
  EXPECT_GT(rel.mean(), 0.7);  // two dead scheduled sources, rest delivered
}

TEST(Failover, LateRejoinerResyncsUnderTheNewCoordinator) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field,
                          failover_config(core::FailoverConfig::Mode::kWarm),
                          std::make_unique<core::StaticController>(3), 0, 26);
  auto sources = sources_excluding(18, -1);
  for (int r = 0; r < 3; ++r) net.run_round(sources);
  net.set_node_failed(17, true);  // leaf down before the coordinator dies
  net.set_node_failed(0, true);
  for (int r = 0; r < 6; ++r) net.run_round(sources);
  ASSERT_EQ(net.coordinator(), 1);
  net.set_node_failed(17, false);  // rejoins under the *new* coordinator
  for (int r = 0; r < 4; ++r) net.run_round(sources);
  EXPECT_FALSE(net.node_failed(17));
  // The rejoiner hears the new coordinator's schedules and reports again.
  EXPECT_TRUE(net.snapshot(1).fresh(17));
}

TEST(FaultInjection, HalfTheNetworkCanDieAndTheRestStillFloods) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::DimmerNetwork net(topo, field, core::ProtocolConfig{},
                          std::make_unique<core::StaticController>(4), 0, 8);
  // Kill every second node (odd ids); even ids remain a connected chain.
  std::vector<phy::NodeId> sources;
  for (int i = 1; i < 18; ++i) {
    if (i % 2 == 1)
      net.set_node_failed(i, true);
    else
      sources.push_back(i);
  }
  util::RunningStats rel;
  for (int r = 0; r < 20; ++r) rel.add(net.run_round(sources).reliability);
  EXPECT_GT(rel.mean(), 0.9);  // sparser, but alive
}

// ---- Scripted fault plans --------------------------------------------------

TEST(FaultPlanIntegration, ScriptedCoordinatorCrashDrivesFailover) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::ProtocolConfig cfg = failover_config(core::FailoverConfig::Mode::kWarm);
  cfg.fault_plan.crash_coordinator(5);
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<core::StaticController>(3), 0, 31);
  auto sources = sources_excluding(18, -1);
  int orphaned = 0;
  for (int r = 0; r < 15; ++r)
    if (net.run_round(sources).orphaned) ++orphaned;
  EXPECT_EQ(orphaned, 3);  // rounds 5,6,7 orphaned; takeover at round 8
  EXPECT_EQ(net.coordinator(), 1);
  EXPECT_EQ(net.failover_count(), 1);
  ASSERT_NE(net.fault_injector(), nullptr);
  EXPECT_EQ(net.fault_injector()->events_applied(), 1u);
}

TEST(FaultPlanIntegration, BlackoutWindowDegradesThenRecovers) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::ProtocolConfig cfg;
  cfg.fault_plan.blackout(5, 10, 1.0);  // everyone deaf for 5 rounds
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<core::StaticController>(3), 0, 32);
  auto sources = sources_excluding(18, -1);
  util::RunningStats during, after;
  for (int r = 0; r < 16; ++r) {
    core::RoundStats rs = net.run_round(sources);
    if (r >= 5 && r < 10) during.add(rs.reliability);
    if (r >= 12) after.add(rs.reliability);
  }
  EXPECT_LT(during.mean(), 0.1);  // total blackout: nothing gets through
  EXPECT_GT(after.mean(), 0.99);  // window over, everyone resyncs
}

TEST(FaultPlanIntegration, ControlCorruptionDelaysSyncByOneRound) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::ProtocolConfig cfg;
  cfg.fault_plan.corrupt_control(4);
  core::DimmerNetwork net(topo, field, cfg,
                          std::make_unique<core::StaticController>(3), 0, 33);
  auto sources = sources_excluding(18, -1);
  for (int r = 0; r < 4; ++r) net.run_round(sources);
  // max_sync_age = 2, so a single corrupt schedule does not desynchronize
  // anyone — but nobody (except the coordinator) refreshed its sync age.
  core::RoundStats rs = net.run_round(sources);
  EXPECT_EQ(rs.desynchronized, 0);
  EXPECT_GT(rs.reliability, 0.99);
  core::RoundStats next = net.run_round(sources);
  EXPECT_GT(next.reliability, 0.99);
}

// ---- Zero-perturbation and determinism -------------------------------------

TEST(FaultDeterminism, EmptyPlanAndFailoverConfigPerturbNothing) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::ProtocolConfig plain;  // no failover, no plan
  core::ProtocolConfig armed = failover_config(core::FailoverConfig::Mode::kCold);
  ASSERT_TRUE(armed.fault_plan.empty());
  core::DimmerNetwork a(topo, field, plain,
                        std::make_unique<baselines::PidController>(), 0, 41);
  core::DimmerNetwork b(topo, field, armed,
                        std::make_unique<baselines::PidController>(), 0, 41);
  auto sources = sources_excluding(18, -1);
  for (int r = 0; r < 30; ++r) {
    core::RoundStats ra = a.run_round(sources);
    core::RoundStats rb = b.run_round(sources);
    ASSERT_EQ(ra.reliability, rb.reliability) << "round " << r;
    ASSERT_EQ(ra.total_radio_on_us, rb.total_radio_on_us) << "round " << r;
    ASSERT_EQ(ra.n_tx, rb.n_tx) << "round " << r;
    ASSERT_EQ(ra.desynchronized, rb.desynchronized) << "round " << r;
  }
}

exp::TrialResult faulted_trial(const exp::TrialSpec& spec, util::Pcg32& rng) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::ProtocolConfig cfg;
  cfg.failover.backups = {1, 2};
  cfg.failover.takeover_silent_rounds = 3;
  cfg.failover.mode = spec.tags.count("mode") && spec.tags.at("mode") == "cold"
                          ? core::FailoverConfig::Mode::kCold
                          : core::FailoverConfig::Mode::kWarm;
  cfg.fault_plan = spec.fault_plan;
  core::DimmerNetwork net(topo, field,
                          std::move(cfg),
                          std::make_unique<baselines::PidController>(), 0,
                          rng.next_u64());
  std::vector<phy::NodeId> sources;
  for (int i = 1; i < 18; ++i) sources.push_back(i);
  sources.push_back(0);

  exp::TrialResult res;
  auto& rel_series = res.series["reliability"];
  for (int r = 0; r < 40; ++r) {
    core::RoundStats rs = net.run_round(sources);
    rel_series.push_back(rs.reliability);
    res.stats["reliability"].add(rs.reliability);
  }
  res.metrics["failovers"] = net.failover_count();
  res.metrics["rounds_to_resync"] = net.last_rounds_to_resync();
  res.metrics["final_n_tx"] = net.commanded_n_tx();
  return res;
}

std::string faulted_sweep_json(int jobs) {
  std::vector<exp::TrialSpec> specs;
  for (std::uint64_t s = 0; s < 4; ++s) {
    exp::TrialSpec spec;
    spec.scenario = s % 2 ? "cold" : "warm";
    spec.seed = s;
    spec.tags["mode"] = spec.scenario;
    spec.fault_plan.crash_coordinator(10).blackout(20, 25, 0.35).crash(15, 9);
    specs.push_back(std::move(spec));
  }
  exp::Runner runner(exp::Runner::Options{jobs, 0xFA57EEDULL});
  std::vector<exp::Trial> trials = runner.run(std::move(specs), faulted_trial);
  for (const exp::Trial& t : trials) EXPECT_TRUE(t.result.ok) << t.result.error;
  exp::JsonOptions opt;
  opt.include_timing = false;
  return exp::to_json("fault_determinism", trials, opt);
}

TEST(FaultDeterminism, FaultedSweepIsBitIdenticalAcrossRerunsAndJobCounts) {
  std::string serial = faulted_sweep_json(1);
  std::string serial_again = faulted_sweep_json(1);
  std::string parallel = faulted_sweep_json(4);
  EXPECT_EQ(serial, serial_again);  // rerun: bit-identical
  EXPECT_EQ(serial, parallel);      // any job count: bit-identical
  // The plan actually did something (failovers happened).
  EXPECT_NE(serial.find("\"failovers\": 1"), std::string::npos);
  EXPECT_NE(serial.find("\"fault_events\": 4"), std::string::npos);
}

}  // namespace
}  // namespace dimmer
