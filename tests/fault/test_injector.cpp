// FaultInjector replay semantics: event timing, blackout windows, stream
// isolation and determinism.
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "util/check.hpp"

namespace dimmer {
namespace {

TEST(FaultInjector, EventsFireAtTheirRound) {
  fault::FaultPlan plan;
  plan.crash(3, 1).reboot(6, 1).crash_coordinator(9);
  fault::FaultInjector inj(plan, 4, 42);

  for (std::uint64_t r = 0; r < 12; ++r) {
    fault::RoundFaults rf = inj.begin_round(r);
    if (r == 3) {
      ASSERT_EQ(rf.crashes.size(), 1u);
      EXPECT_EQ(rf.crashes[0], 1);
    } else if (r == 6) {
      ASSERT_EQ(rf.reboots.size(), 1u);
      EXPECT_EQ(rf.reboots[0], 1);
    } else if (r == 9) {
      EXPECT_TRUE(rf.coordinator_crash);
    } else {
      EXPECT_FALSE(rf.any());
    }
  }
  EXPECT_EQ(inj.events_applied(), 3u);
}

TEST(FaultInjector, SkippedRoundsStillDeliverPastEvents) {
  fault::FaultPlan plan;
  plan.crash(2, 0).clock_drift(4, 1);
  fault::FaultInjector inj(plan, 4, 1);
  // Jumping straight to round 10 drains everything scheduled earlier.
  fault::RoundFaults rf = inj.begin_round(10);
  ASSERT_EQ(rf.crashes.size(), 1u);
  ASSERT_EQ(rf.clock_drifts.size(), 1u);
  EXPECT_EQ(inj.events_applied(), 2u);
}

TEST(FaultInjector, RequiresStrictlyIncreasingRounds) {
  fault::FaultInjector inj(fault::FaultPlan{}, 4, 7);
  inj.begin_round(5);
  EXPECT_THROW(inj.begin_round(5), util::RequireError);
  EXPECT_THROW(inj.begin_round(4), util::RequireError);
  inj.begin_round(6);  // forward is fine
}

TEST(FaultInjector, BlackoutWindowIsHalfOpen) {
  fault::FaultPlan plan;
  plan.blackout(2, 5, 1.0);  // severity 1: everyone deaf, no randomness
  fault::FaultInjector inj(plan, 3, 11);
  for (std::uint64_t r = 0; r < 8; ++r) {
    fault::RoundFaults rf = inj.begin_round(r);
    if (r >= 2 && r < 5) {
      EXPECT_TRUE(inj.blackout_active());
      ASSERT_EQ(rf.deaf.size(), 3u);
      EXPECT_TRUE(rf.deaf[0] && rf.deaf[1] && rf.deaf[2]);
    } else {
      EXPECT_FALSE(inj.blackout_active());
      EXPECT_TRUE(rf.deaf.empty());
    }
  }
}

TEST(FaultInjector, BlackoutDeafPatternIsSeedDeterministic) {
  fault::FaultPlan plan;
  plan.blackout(0, 20, 0.5);
  fault::FaultInjector a(plan, 16, 1234);
  fault::FaultInjector b(plan, 16, 1234);
  fault::FaultInjector c(plan, 16, 9999);
  bool any_differs_from_c = false;
  for (std::uint64_t r = 0; r < 20; ++r) {
    fault::RoundFaults ra = a.begin_round(r);
    fault::RoundFaults rb = b.begin_round(r);
    fault::RoundFaults rc = c.begin_round(r);
    EXPECT_EQ(ra.deaf, rb.deaf) << "round " << r;
    if (ra.deaf != rc.deaf) any_differs_from_c = true;
  }
  // Different seeds give a different pattern (overwhelmingly likely over
  // 320 Bernoulli draws).
  EXPECT_TRUE(any_differs_from_c);
}

TEST(FaultInjector, SameRoundEventsKeepInsertionOrder) {
  fault::FaultPlan plan;
  plan.crash(4, 2).crash(4, 0).reboot(4, 1);
  fault::FaultInjector inj(plan, 4, 5);
  fault::RoundFaults rf = inj.begin_round(4);
  ASSERT_EQ(rf.crashes.size(), 2u);
  EXPECT_EQ(rf.crashes[0], 2);  // stable sort preserves script order
  EXPECT_EQ(rf.crashes[1], 0);
  ASSERT_EQ(rf.reboots.size(), 1u);
}

TEST(FaultInjector, RejectsInvalidPlan) {
  fault::FaultPlan plan;
  plan.crash(1, 99);
  EXPECT_THROW(fault::FaultInjector(plan, 4, 0), util::RequireError);
}

}  // namespace
}  // namespace dimmer
