// FaultPlan builders and validation.
#include <gtest/gtest.h>

#include "fault/plan.hpp"
#include "util/check.hpp"

namespace dimmer {
namespace {

TEST(FaultPlan, EmptyByDefault) {
  fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.size(), 0u);
  plan.validate(4);  // an empty plan is always valid
}

TEST(FaultPlan, BuildersAppendEvents) {
  fault::FaultPlan plan;
  plan.crash(5, 2)
      .reboot(9, 2)
      .crash_coordinator(12)
      .corrupt_control(3)
      .clock_drift(7, 1);
  EXPECT_EQ(plan.size(), 5u);
  EXPECT_EQ(plan.events[0].kind, fault::FaultKind::kNodeCrash);
  EXPECT_EQ(plan.events[0].round, 5u);
  EXPECT_EQ(plan.events[0].node, 2);
  EXPECT_EQ(plan.events[2].kind, fault::FaultKind::kCoordinatorCrash);
  plan.validate(4);
}

TEST(FaultPlan, BlackoutAppendsMatchedWindow) {
  fault::FaultPlan plan;
  plan.blackout(10, 20, 0.4);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, fault::FaultKind::kBlackoutStart);
  EXPECT_EQ(plan.events[0].round, 10u);
  EXPECT_DOUBLE_EQ(plan.events[0].severity, 0.4);
  EXPECT_EQ(plan.events[1].kind, fault::FaultKind::kBlackoutEnd);
  EXPECT_EQ(plan.events[1].round, 20u);
  plan.validate(4);
}

TEST(FaultPlan, BlackoutRejectsEmptyWindow) {
  fault::FaultPlan plan;
  EXPECT_THROW(plan.blackout(10, 10, 0.5), util::RequireError);
  EXPECT_THROW(plan.blackout(10, 5, 0.5), util::RequireError);
}

TEST(FaultPlan, ValidateRejectsOutOfRangeNode) {
  fault::FaultPlan plan;
  plan.crash(1, 7);
  EXPECT_THROW(plan.validate(4), util::RequireError);
  fault::FaultPlan neg;
  neg.clock_drift(1, -1);
  EXPECT_THROW(neg.validate(4), util::RequireError);
}

TEST(FaultPlan, ValidateRejectsBadSeverity) {
  fault::FaultPlan plan;
  plan.events.push_back(
      {3, fault::FaultKind::kBlackoutStart, -1, 1.5});
  plan.events.push_back({5, fault::FaultKind::kBlackoutEnd, -1, 1.0});
  EXPECT_THROW(plan.validate(4), util::RequireError);
}

TEST(FaultPlan, ValidateRejectsOverlappingBlackouts) {
  fault::FaultPlan plan;
  plan.blackout(5, 15, 0.5);
  plan.blackout(10, 20, 0.5);  // starts inside the first window
  EXPECT_THROW(plan.validate(4), util::RequireError);
}

TEST(FaultPlan, ValidateRejectsUnmatchedBlackout) {
  fault::FaultPlan plan;
  plan.events.push_back({5, fault::FaultKind::kBlackoutStart, -1, 0.5});
  EXPECT_THROW(plan.validate(4), util::RequireError);

  fault::FaultPlan end_only;
  end_only.events.push_back({5, fault::FaultKind::kBlackoutEnd, -1, 1.0});
  EXPECT_THROW(end_only.validate(4), util::RequireError);
}

TEST(FaultPlan, SequentialBlackoutsAreFine) {
  fault::FaultPlan plan;
  plan.blackout(5, 10, 0.3);
  plan.blackout(10, 15, 0.8);  // back-to-back: [5,10) then [10,15)
  plan.validate(4);
}

}  // namespace
}  // namespace dimmer
