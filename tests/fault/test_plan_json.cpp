// fault plan <-> JSON: a resumed campaign must re-run missing trials under
// byte-identical fault scripts.
#include <gtest/gtest.h>

#include <string>

#include "fault/plan.hpp"
#include "util/check.hpp"
#include "util/json_parse.hpp"

using dimmer::fault::fault_kind_from_string;
using dimmer::fault::FaultKind;
using dimmer::fault::FaultPlan;
using dimmer::fault::plan_from_json;
using dimmer::fault::to_json;
using dimmer::fault::to_string;

TEST(FaultPlanJson, KindNamesRoundTrip) {
  const FaultKind kinds[] = {
      FaultKind::kNodeCrash,      FaultKind::kNodeReboot,
      FaultKind::kCoordinatorCrash, FaultKind::kBlackoutStart,
      FaultKind::kBlackoutEnd,    FaultKind::kControlCorruption,
      FaultKind::kClockDrift};
  for (FaultKind k : kinds) {
    EXPECT_EQ(fault_kind_from_string(to_string(k)), k) << to_string(k);
  }
  EXPECT_THROW(fault_kind_from_string("meteor_strike"),
               dimmer::util::RequireError);
}

TEST(FaultPlanJson, PlanRoundTripsFieldForField) {
  FaultPlan plan;
  plan.crash(5, 3)
      .reboot(9, 3)
      .crash_coordinator(30)
      .blackout(30, 40, 0.35)
      .corrupt_control(31)
      .clock_drift(33, 7);

  const std::string text = to_json(plan);
  const FaultPlan back = plan_from_json(dimmer::util::json::parse(text));
  ASSERT_EQ(back.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(back.events[i].round, plan.events[i].round) << i;
    EXPECT_EQ(back.events[i].kind, plan.events[i].kind) << i;
    EXPECT_EQ(back.events[i].node, plan.events[i].node) << i;
    EXPECT_EQ(back.events[i].severity, plan.events[i].severity) << i;
  }
  // Replay-stable insertion order => serialization is byte-stable too.
  EXPECT_EQ(to_json(back), text);
}

TEST(FaultPlanJson, EmptyPlanIsEmptyArray) {
  EXPECT_EQ(to_json(FaultPlan{}), "[]");
  EXPECT_TRUE(plan_from_json(dimmer::util::json::parse("[]")).empty());
}

TEST(FaultPlanJson, MalformedEventsThrow) {
  using dimmer::util::json::parse;
  EXPECT_THROW(plan_from_json(parse("{}")), dimmer::util::RequireError);
  EXPECT_THROW(plan_from_json(parse("[{\"round\": 1}]")),
               dimmer::util::RequireError);
  EXPECT_THROW(
      plan_from_json(parse(
          "[{\"round\": 1, \"kind\": \"bad\", \"node\": 0, \"severity\": 1}]")),
      dimmer::util::RequireError);
}
