#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "core/scenarios.hpp"
#include "flood/glossy.hpp"
#include "phy/topology.hpp"

namespace dimmer::flood {
namespace {

std::vector<NodeFloodConfig> uniform_configs(int n, int n_tx) {
  return std::vector<NodeFloodConfig>(static_cast<std::size_t>(n),
                                      NodeFloodConfig{n_tx, true});
}

TEST(GlossyFlood, CleanNetworkDeliversToEveryone) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  util::Pcg32 rng(1);
  FloodResult r = engine.run(0, uniform_configs(18, 3), FloodParams{}, rng);
  EXPECT_EQ(r.receiver_count(), 17);
  EXPECT_DOUBLE_EQ(r.delivery_ratio(), 1.0);
}

TEST(GlossyFlood, StepTimingMatchesPaperSlot) {
  phy::RadioConstants radio;
  FloodParams p;  // 30 B payload, 20 ms slot
  // One step = 1152 us airtime + 25 us turnaround.
  EXPECT_EQ(GlossyFlood::step_len_us(p, radio), 1177);
  // N_max = 8 must be achievable: the initiator transmits at even steps
  // 0..14, so at least 15 steps must fit in the slot.
  EXPECT_GE(GlossyFlood::max_steps(p, radio), 15);
}

TEST(GlossyFlood, InitiatorTransmitsEvenWithZeroBudget) {
  phy::Topology topo = phy::make_line_topology(3, 8.0);
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  util::Pcg32 rng(2);
  auto cfgs = uniform_configs(3, 0);  // everyone passive
  FloodResult r = engine.run(0, cfgs, FloodParams{}, rng);
  EXPECT_GE(r.nodes[0].transmissions, 1);
}

TEST(GlossyFlood, PassiveReceiverNeverForwards) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  util::Pcg32 rng(3);
  auto cfgs = uniform_configs(18, 3);
  cfgs[5].n_tx = 0;
  FloodResult r = engine.run(0, cfgs, FloodParams{}, rng);
  EXPECT_EQ(r.nodes[5].transmissions, 0);
  EXPECT_TRUE(r.nodes[5].received);
}

TEST(GlossyFlood, PassiveReceiverSavesEnergy) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  util::Pcg32 rng(4);

  auto active = uniform_configs(18, 3);
  FloodResult ra = engine.run(0, active, FloodParams{}, rng);

  auto passive = uniform_configs(18, 3);
  passive[9].n_tx = 0;
  util::Pcg32 rng2(4);
  FloodResult rp = engine.run(0, passive, FloodParams{}, rng2);

  ASSERT_TRUE(rp.nodes[9].received);
  EXPECT_LT(rp.nodes[9].radio_on_us, ra.nodes[9].radio_on_us);
}

TEST(GlossyFlood, NonParticipantIsUntouched) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  util::Pcg32 rng(5);
  auto cfgs = uniform_configs(18, 3);
  cfgs[7].participates = false;
  FloodResult r = engine.run(0, cfgs, FloodParams{}, rng);
  EXPECT_FALSE(r.nodes[7].received);
  EXPECT_EQ(r.nodes[7].transmissions, 0);
  EXPECT_EQ(r.nodes[7].radio_on_us, 0);
  // Delivery ratio ignores the non-participant.
  EXPECT_DOUBLE_EQ(r.delivery_ratio(), 1.0);
}

TEST(GlossyFlood, RadioOnBoundedBySlot) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  util::Pcg32 rng(6);
  FloodParams params;
  FloodResult r = engine.run(0, uniform_configs(18, 8), params, rng);
  for (const auto& node : r.nodes) {
    EXPECT_LE(node.radio_on_us, params.slot_len_us);
    EXPECT_GT(node.radio_on_us, 0);
  }
}

TEST(GlossyFlood, HigherBudgetCostsMoreEnergy) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  double prev = 0.0;
  for (int n_tx : {1, 3, 5, 8}) {
    util::Pcg32 rng(7);
    FloodResult r = engine.run(0, uniform_configs(18, n_tx), FloodParams{}, rng);
    double total = 0.0;
    for (const auto& node : r.nodes) total += static_cast<double>(node.radio_on_us);
    EXPECT_GT(total, prev);
    prev = total;
  }
}

TEST(GlossyFlood, UnreachedNodeListensWholeSlot) {
  phy::Topology topo = phy::make_line_topology(3, 500.0);  // disconnected
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  util::Pcg32 rng(8);
  FloodParams params;
  FloodResult r = engine.run(0, uniform_configs(3, 3), params, rng);
  EXPECT_FALSE(r.nodes[2].received);
  EXPECT_EQ(r.nodes[2].radio_on_us, params.slot_len_us);
}

TEST(GlossyFlood, GoldenRadioOnAccountingOnThreeHopLine) {
  // Golden accounting on a 3-node line where each node only reaches its
  // neighbour (15 m spacing, clean channel, N_TX = 1). The timeline is fully
  // determined — every reception has p_ok ~ 1 over its single hop:
  //   step 0: node 0 transmits; node 1 receives (step length 1177 us).
  //   step 1: node 1 relays; node 2 receives; node 0 is done (budget spent).
  //   step 2: node 2 relays into silence and finishes.
  // Radio-on is charged per step the radio is up: 1 step for node 0, 2 for
  // node 1, 3 for node 2.
  phy::Topology topo = phy::make_line_topology(3, 15.0);
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  FloodParams params;  // 30 B payload -> 1152 us airtime + 25 us turnaround

  for (std::uint64_t seed : {1u, 7u, 1234u}) {
    util::Pcg32 rng(seed);
    FloodResult r = engine.run(0, uniform_configs(3, 1), params, rng);
    EXPECT_EQ(r.steps_simulated, 3);
    EXPECT_EQ(r.nodes[0].radio_on_us, 1177);
    EXPECT_EQ(r.nodes[1].radio_on_us, 2354);
    EXPECT_EQ(r.nodes[2].radio_on_us, 3531);
    EXPECT_EQ(r.nodes[1].first_rx_step, 0);
    EXPECT_EQ(r.nodes[2].first_rx_step, 1);
    for (const auto& node : r.nodes) {
      EXPECT_TRUE(node.received);
      EXPECT_EQ(node.transmissions, 1);
    }
  }
}

TEST(GlossyFlood, FullResultDeterministicUnderJamming) {
  // Same RNG state -> identical FloodResult in every field, including under
  // interference where each reception consumes fading + bernoulli draws.
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  dimmer::core::add_static_jamming(field, topo, 0.3);
  GlossyFlood engine(topo, field);
  FloodParams params;
  params.slot_start_us = sim::seconds(9);  // mid-burst phase
  util::Pcg32 a(77), b(77);
  FloodResult ra = engine.run(4, uniform_configs(18, 2), params, a);
  FloodResult rb = engine.run(4, uniform_configs(18, 2), params, b);
  EXPECT_EQ(ra.steps_simulated, rb.steps_simulated);
  EXPECT_EQ(ra.initiator, rb.initiator);
  for (int i = 0; i < 18; ++i) {
    EXPECT_EQ(ra.nodes[i].received, rb.nodes[i].received);
    EXPECT_EQ(ra.nodes[i].first_rx_step, rb.nodes[i].first_rx_step);
    EXPECT_EQ(ra.nodes[i].transmissions, rb.nodes[i].transmissions);
    EXPECT_EQ(ra.nodes[i].radio_on_us, rb.nodes[i].radio_on_us);
  }
  EXPECT_EQ(a.next_u32(), b.next_u32());  // streams fully consumed in lockstep
}

TEST(GlossyFlood, DeterministicGivenRngState) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  dimmer::core::add_static_jamming(field, topo, 0.3);
  GlossyFlood engine(topo, field);
  util::Pcg32 a(11), b(11);
  FloodResult ra = engine.run(0, uniform_configs(18, 3), FloodParams{}, a);
  FloodResult rb = engine.run(0, uniform_configs(18, 3), FloodParams{}, b);
  for (int i = 0; i < 18; ++i) {
    EXPECT_EQ(ra.nodes[i].received, rb.nodes[i].received);
    EXPECT_EQ(ra.nodes[i].radio_on_us, rb.nodes[i].radio_on_us);
  }
}

TEST(GlossyFlood, BudgetIsRespected) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  util::Pcg32 rng(12);
  for (int n_tx : {1, 2, 4, 8}) {
    FloodResult r = engine.run(0, uniform_configs(18, n_tx), FloodParams{}, rng);
    for (const auto& node : r.nodes) EXPECT_LE(node.transmissions, n_tx);
  }
}

TEST(GlossyFlood, RejectsBadArguments) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  util::Pcg32 rng(13);
  EXPECT_THROW(engine.run(-1, uniform_configs(18, 3), FloodParams{}, rng),
               util::RequireError);
  EXPECT_THROW(engine.run(0, uniform_configs(17, 3), FloodParams{}, rng),
               util::RequireError);
  auto bad = uniform_configs(18, 3);
  bad[0].participates = false;  // initiator must participate
  EXPECT_THROW(engine.run(0, bad, FloodParams{}, rng), util::RequireError);
  auto neg = uniform_configs(18, 3);
  neg[4].n_tx = -1;
  EXPECT_THROW(engine.run(0, neg, FloodParams{}, rng), util::RequireError);
}

TEST(GlossyFlood, RejectsNonFiniteTxPowerAndBadPayload) {
  // Regression: a NaN tx_power_dbm used to sail into the LinkModel, where
  // NaN != NaN defeated the cache check (rebuild every flood) and poisoned
  // every SINR. Non-positive payloads similarly made airtime meaningless.
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  util::Pcg32 rng(13);
  FloodParams nan_power;
  nan_power.tx_power_dbm = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(engine.run(0, uniform_configs(18, 3), nan_power, rng),
               util::RequireError);
  FloodParams inf_power;
  inf_power.tx_power_dbm = std::numeric_limits<double>::infinity();
  EXPECT_THROW(engine.run(0, uniform_configs(18, 3), inf_power, rng),
               util::RequireError);
  FloodParams no_payload;
  no_payload.payload_bytes = 0;
  EXPECT_THROW(engine.run(0, uniform_configs(18, 3), no_payload, rng),
               util::RequireError);
  FloodParams neg_payload;
  neg_payload.payload_bytes = -4;
  EXPECT_THROW(engine.run(0, uniform_configs(18, 3), neg_payload, rng),
               util::RequireError);
}

TEST(GlossyFlood, MaxStepsBoundaryAtDocumentedCap) {
  // Regression: max_steps used to push the 64-bit slot/step quotient through
  // static_cast<int>, so a pathological slot_len_us wrapped into a tiny or
  // negative step count. The quotient is now checked against kMaxFloodSteps.
  phy::RadioConstants radio;
  FloodParams p;  // 30 B payload + 6 B PHY overhead -> 1152 us + 25 us
  const sim::TimeUs step = GlossyFlood::step_len_us(p, radio);
  ASSERT_GT(step, 0);

  p.slot_len_us = step * static_cast<sim::TimeUs>(kMaxFloodSteps);
  EXPECT_EQ(GlossyFlood::max_steps(p, radio), kMaxFloodSteps);

  // One step past the cap (and far past it) must throw, not wrap.
  p.slot_len_us = step * (static_cast<sim::TimeUs>(kMaxFloodSteps) + 1);
  EXPECT_THROW(GlossyFlood::max_steps(p, radio), util::RequireError);
  p.slot_len_us = std::numeric_limits<sim::TimeUs>::max();
  EXPECT_THROW(GlossyFlood::max_steps(p, radio), util::RequireError);
}

// Property: the paper's central premise — under JamLab bursts, delivery
// improves monotonically (on average) with the retransmission budget.
class NtxReliabilityProperty : public ::testing::TestWithParam<double> {};

TEST_P(NtxReliabilityProperty, MoreRetransmissionsMoreDelivery) {
  double duty = GetParam();
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  dimmer::core::add_static_jamming(field, topo, duty);
  GlossyFlood engine(topo, field);

  auto mean_delivery = [&](int n_tx) {
    util::Pcg32 rng(17);
    double acc = 0.0;
    const int floods = 150;
    for (int f = 0; f < floods; ++f) {
      FloodParams params;
      params.slot_start_us = f * sim::ms(22);  // spread over burst phases
      FloodResult r =
          engine.run(f % 18, uniform_configs(18, n_tx), params, rng);
      acc += r.delivery_ratio();
    }
    return acc / floods;
  };

  double d1 = mean_delivery(1);
  double d4 = mean_delivery(4);
  double d8 = mean_delivery(8);
  EXPECT_GT(d4, d1);
  EXPECT_GE(d8, d4 - 0.005);
  EXPECT_GT(d8, 0.97);
}

INSTANTIATE_TEST_SUITE_P(JamDuty, NtxReliabilityProperty,
                         ::testing::Values(0.10, 0.20, 0.30));

}  // namespace
}  // namespace dimmer::flood
