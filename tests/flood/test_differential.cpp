// Differential bit-identity suite for the hot-path refactor (DESIGN.md §10).
//
// Every case runs the frozen pre-refactor loop (reference_glossy.cpp) and
// the shipped engine from identical RNG states and asserts that (a) every
// FloodResult field is exactly equal — including floating-point-derived
// radio timings — and (b) the two RNG streams end in the same state, so a
// longer simulation embedding the flood would stay bit-identical too.
#include <gtest/gtest.h>

#include <vector>

#include "core/scenarios.hpp"
#include "flood/glossy.hpp"
#include "flood/workspace.hpp"
#include "phy/topology.hpp"
#include "reference_glossy.hpp"
#include "util/rng.hpp"

namespace dimmer::flood {
namespace {

void expect_identical(const FloodResult& a, const FloodResult& b) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.initiator, b.initiator);
  EXPECT_EQ(a.steps_simulated, b.steps_simulated);
  ASSERT_EQ(a.participated.size(), b.participated.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    EXPECT_EQ(a.participated[i], b.participated[i]);
    EXPECT_EQ(a.nodes[i].received, b.nodes[i].received);
    EXPECT_EQ(a.nodes[i].first_rx_step, b.nodes[i].first_rx_step);
    EXPECT_EQ(a.nodes[i].transmissions, b.nodes[i].transmissions);
    EXPECT_EQ(a.nodes[i].radio_on_us, b.nodes[i].radio_on_us);
  }
}

void expect_same_rng_state(util::Pcg32& a, util::Pcg32& b) {
  // Same stream position...
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
  // ...and the same Marsaglia spare state (a cached spare would make the
  // next normal() differ even with aligned raw streams).
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a.normal(), b.normal());
}

struct Case {
  phy::Topology topo;
  phy::InterferenceField field;
};

phy::Topology topo_for(const std::string& name) {
  if (name == "line") return phy::make_line_topology(8, 12.0);
  if (name == "grid") return phy::make_grid_topology(4, 4, 10.0);
  if (name == "office18") return phy::make_office18_topology();
  return phy::make_dcube48_topology();
}

Case make_case(const std::string& name, double jam_duty) {
  Case c{topo_for(name), phy::InterferenceField{}};
  if (jam_duty > 0.0 &&
      (name == "office18" || name == "dcube48")) {
    core::add_static_jamming(c.field, c.topo, jam_duty);
  } else if (jam_duty > 0.0) {
    // Line/grid topologies have no office jammer positions; use ambient
    // office noise as the interference source instead.
    core::add_office_ambient(c.field, c.topo);
  }
  return c;
}

void run_differential(const std::string& topo_name, double jam_duty,
                      const std::vector<NodeFloodConfig>& configs,
                      phy::NodeId initiator, const FloodParams& params,
                      std::uint64_t seed) {
  Case c = make_case(topo_name, jam_duty);
  ASSERT_EQ(static_cast<int>(configs.size()), c.topo.size());

  util::Pcg32 rng_ref(seed);
  FloodResult want =
      reference::run(c.topo, c.field, initiator, configs, params, rng_ref);

  GlossyFlood engine(c.topo, c.field);
  util::Pcg32 rng_new(seed);
  FloodResult got = engine.run(initiator, configs, params, rng_new);

  expect_identical(want, got);
  expect_same_rng_state(rng_ref, rng_new);
}

std::vector<NodeFloodConfig> uniform_configs(int n, int n_tx) {
  return std::vector<NodeFloodConfig>(static_cast<std::size_t>(n),
                                      NodeFloodConfig{n_tx, true});
}

TEST(FloodDifferential, CleanTopologies) {
  for (const char* name : {"line", "grid", "office18", "dcube48"}) {
    SCOPED_TRACE(name);
    Case c = make_case(name, 0.0);
    const int n = c.topo.size();
    for (std::uint64_t seed : {1ULL, 77ULL, 4242ULL}) {
      run_differential(name, 0.0, uniform_configs(n, 3), 0, FloodParams{},
                       seed);
    }
  }
}

TEST(FloodDifferential, JammedTopologies) {
  for (const char* name : {"line", "grid", "office18", "dcube48"}) {
    SCOPED_TRACE(name);
    Case c = make_case(name, 0.3);
    const int n = c.topo.size();
    for (std::uint64_t seed : {9ULL, 1234ULL}) {
      FloodParams p;
      p.slot_start_us = sim::seconds(5);  // land inside jammer bursts
      run_differential(name, 0.3, uniform_configs(n, 3), n / 2, p, seed);
    }
  }
}

TEST(FloodDifferential, MixedBudgetsAndPassiveReceivers) {
  Case probe = make_case("office18", 0.0);
  const int n = probe.topo.size();
  auto cfgs = uniform_configs(n, 3);
  for (int i = 0; i < n; ++i) {
    cfgs[static_cast<std::size_t>(i)].n_tx = i % 4;  // includes n_tx = 0
  }
  for (std::uint64_t seed : {3ULL, 31ULL, 314ULL}) {
    run_differential("office18", 0.0, cfgs, 1, FloodParams{}, seed);
    run_differential("office18", 0.3, cfgs, 1, FloodParams{}, seed);
  }
}

TEST(FloodDifferential, NonParticipantsFaultStyle) {
  // Crashed/desynced nodes sit floods out, as the fault injector produces.
  Case probe = make_case("dcube48", 0.0);
  const int n = probe.topo.size();
  auto cfgs = uniform_configs(n, 2);
  for (int i = 0; i < n; i += 5)
    cfgs[static_cast<std::size_t>(i)].participates = false;
  cfgs[3].participates = true;  // keep the initiator participating
  for (std::uint64_t seed : {11ULL, 99ULL}) {
    run_differential("dcube48", 0.0, cfgs, 3, FloodParams{}, seed);
    run_differential("dcube48", 0.3, cfgs, 3, FloodParams{}, seed);
  }
}

TEST(FloodDifferential, MultipleInitiators) {
  Case probe = make_case("grid", 0.0);
  const int n = probe.topo.size();
  for (phy::NodeId init : {0, 5, 15}) {
    SCOPED_TRACE("initiator " + std::to_string(init));
    run_differential("grid", 0.0, uniform_configs(n, 3), init, FloodParams{},
                     21u);
  }
}

TEST(FloodDifferential, AlternatingTxPowerRebindsCache) {
  // Back-to-back floods at different TX powers through ONE engine must each
  // match the reference — the cached link matrix rebinds per power.
  Case c = make_case("office18", 0.3);
  const int n = c.topo.size();
  auto cfgs = uniform_configs(n, 3);

  GlossyFlood engine(c.topo, c.field);
  util::Pcg32 rng_new(55);
  util::Pcg32 rng_ref(55);
  for (double power : {0.0, -7.0, 0.0, 3.0, -7.0}) {
    SCOPED_TRACE("tx_power_dbm " + std::to_string(power));
    FloodParams p;
    p.tx_power_dbm = power;
    FloodResult want = reference::run(c.topo, c.field, 0, cfgs, p, rng_ref);
    FloodResult got = engine.run(0, cfgs, p, rng_new);
    expect_identical(want, got);
  }
  expect_same_rng_state(rng_ref, rng_new);
}

TEST(FloodDifferential, RunIntoReusedBuffersMatchFreshRuns) {
  // run_into with dirty, reused workspace/result buffers must equal both the
  // reference and a fresh run(): buffer reuse is invisible in the results.
  Case c = make_case("office18", 0.3);
  const int n = c.topo.size();
  auto cfgs = uniform_configs(n, 3);
  cfgs[4].n_tx = 0;
  cfgs[9].participates = false;

  GlossyFlood engine(c.topo, c.field);
  FloodWorkspace ws;
  FloodResult reused;
  util::Pcg32 rng_ref(88);
  util::Pcg32 rng_new(88);
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    FloodParams p;
    p.slot_start_us = round * sim::ms(40);
    phy::NodeId init = static_cast<phy::NodeId>((round * 3) % n);
    if (!cfgs[static_cast<std::size_t>(init)].participates) init += 1;
    FloodResult want =
        reference::run(c.topo, c.field, init, cfgs, p, rng_ref);
    engine.run_into(init, cfgs, p, rng_new, ws, reused);
    expect_identical(want, reused);
  }
  expect_same_rng_state(rng_ref, rng_new);
}

}  // namespace
}  // namespace dimmer::flood
