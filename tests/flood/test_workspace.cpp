// Steady-state allocation audit for the reusable flood workspace
// (DESIGN.md §10): after a warm-up flood has grown every buffer to capacity,
// repeated GlossyFlood::run_into and RoundExecutor::run_round_into calls
// must perform ZERO heap allocations.
//
// The audit instruments global operator new/delete with a counter. Only the
// bracketed region between alloc_count snapshots is attributed to the flood
// path; gtest's own bookkeeping happens outside the brackets.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/scenarios.hpp"
#include "flood/glossy.hpp"
#include "flood/workspace.hpp"
#include "lwb/round.hpp"
#include "phy/sparse_link_model.hpp"
#include "phy/topology.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<long> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dimmer::flood {
namespace {

TEST(FloodWorkspaceAlloc, RunIntoIsAllocationFreeAfterWarmup) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::add_static_jamming(field, topo, 0.3);
  GlossyFlood engine(topo, field);
  std::vector<NodeFloodConfig> cfgs(18, NodeFloodConfig{3, true});
  cfgs[5].n_tx = 0;

  FloodWorkspace ws;
  FloodResult result;
  util::Pcg32 rng(7);

  FloodParams params;
  // Warm-up: grows the workspace, the result buffers, and the engine's
  // cached link matrix.
  engine.run_into(0, cfgs, params, rng, ws, result);

  const long before = g_allocs.load(std::memory_order_relaxed);
  for (int k = 0; k < 50; ++k) {
    params.slot_start_us = k * sim::ms(25);
    engine.run_into(k % 18, cfgs, params, rng, ws, result);
  }
  const long after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "steady-state floods must not allocate (got "
      << (after - before) << " allocations over 50 floods)";
  EXPECT_TRUE(result.nodes.size() == 18u);
}

TEST(FloodWorkspaceAlloc, SparseEngineRunIntoIsAllocationFreeAfterWarmup) {
  // The sparse scatter path has its own steady state: the warm-up flood
  // builds the CSR (and sizes the workspace); after that, repeated floods at
  // the same TX power must not touch the heap — including the zero-power
  // listener skip, which must not shrink or regrow any buffer.
  phy::Topology topo = phy::make_campus_topology(96);
  phy::InterferenceField field;
  core::add_office_ambient(field, topo);
  phy::SparseLinkModel links(topo);  // default 20 dB culling margin
  GlossyFlood engine(links, field);
  std::vector<NodeFloodConfig> cfgs(96, NodeFloodConfig{2, true});
  cfgs[7].n_tx = 0;

  FloodWorkspace ws;
  FloodResult result;
  util::Pcg32 rng(13);

  FloodParams params;
  engine.run_into(0, cfgs, params, rng, ws, result);
  ASSERT_EQ(links.rebuilds(), 1);

  const long before = g_allocs.load(std::memory_order_relaxed);
  for (int k = 0; k < 50; ++k) {
    params.slot_start_us = k * sim::ms(25);
    engine.run_into(k % 96, cfgs, params, rng, ws, result);
  }
  const long after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "steady-state sparse floods must not allocate (got "
      << (after - before) << " allocations over 50 floods)";
  EXPECT_EQ(links.rebuilds(), 1);  // one CSR build serves every flood
  EXPECT_TRUE(result.nodes.size() == 96u);
}

TEST(FloodWorkspaceAlloc, RoundExecutorSteadyStateIsAllocationFree) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::add_static_jamming(field, topo, 0.3);
  lwb::RoundConfig cfg;
  lwb::RoundExecutor exec(topo, field, cfg);

  std::vector<lwb::NodeState> states(18);
  for (auto& s : states) s.n_tx = 3;
  std::vector<phy::NodeId> sources = {2, 7, 11, 15};
  util::Pcg32 rng(11);
  lwb::RoundResult result;

  // Warm-up round sizes every nested buffer (incl. per-slot FloodResults).
  exec.run_round_into(0, 0, 0, sources, 3, states, rng, nullptr, result);

  const long before = g_allocs.load(std::memory_order_relaxed);
  for (std::uint64_t r = 1; r <= 20; ++r) {
    exec.run_round_into(r * sim::seconds(1), r, 0, sources, 3, states, rng,
                        nullptr, result);
  }
  const long after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "steady-state rounds must not allocate (got "
      << (after - before) << " allocations over 20 rounds)";
}

TEST(FloodWorkspaceAlloc, WorkspaceAdaptsAcrossTopologySizes) {
  // One workspace serving engines of different sizes stays correct: buffers
  // resize up and down without stale state leaking between floods.
  phy::Topology small = phy::make_line_topology(4, 10.0);
  phy::Topology big = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine_small(small, field);
  GlossyFlood engine_big(big, field);

  FloodWorkspace ws;
  FloodResult r;
  util::Pcg32 rng(3);
  std::vector<NodeFloodConfig> cfg_small(4, NodeFloodConfig{2, true});
  std::vector<NodeFloodConfig> cfg_big(18, NodeFloodConfig{2, true});

  engine_big.run_into(0, cfg_big, FloodParams{}, rng, ws, r);
  ASSERT_EQ(r.nodes.size(), 18u);

  engine_small.run_into(0, cfg_small, FloodParams{}, rng, ws, r);
  ASSERT_EQ(r.nodes.size(), 4u);
  EXPECT_TRUE(r.nodes[0].received);
  EXPECT_GE(r.nodes[0].transmissions, 1);

  engine_big.run_into(5, cfg_big, FloodParams{}, rng, ws, r);
  ASSERT_EQ(r.nodes.size(), 18u);
  EXPECT_EQ(r.initiator, 5);
}

}  // namespace
}  // namespace dimmer::flood
