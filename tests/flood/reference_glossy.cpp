#include "reference_glossy.hpp"

#include <algorithm>
#include <cmath>

#include "phy/per.hpp"
#include "phy/propagation.hpp"
#include "util/check.hpp"

namespace dimmer::flood::reference {

namespace {

// The pre-refactor phy::frame_success_prob: evaluates ber_802154 for both
// SINR domains unconditionally. PR 4 short-circuits degenerate jam
// fractions and equal SINRs in the shipped function; the results are
// bit-identical (pow(x, +0.0) == 1.0, p * 1.0 == p, equal inputs give
// equal BERs), so this copy exists purely so the reference engine times
// the historical instruction stream, not just the historical loop shape.
double frame_success_prob(double sinr_clean_db, double sinr_jammed_db,
                          double jam_fraction, int frame_bytes) {
  DIMMER_REQUIRE(frame_bytes > 0, "frame_bytes must be positive");
  if (jam_fraction < 0.0) jam_fraction = 0.0;
  if (jam_fraction > 1.0) jam_fraction = 1.0;
  double bits = 8.0 * frame_bytes;
  double clean_bits = bits * (1.0 - jam_fraction);
  double jam_bits = bits * jam_fraction;
  double p = std::pow(1.0 - phy::ber_802154(sinr_clean_db), clean_bits) *
             std::pow(1.0 - phy::ber_802154(sinr_jammed_db), jam_bits);
  return p;
}

}  // namespace

FloodResult run(const phy::Topology& topo,
                const phy::InterferenceField& interference,
                phy::NodeId initiator,
                const std::vector<NodeFloodConfig>& configs,
                const FloodParams& params, util::Pcg32& rng) {
  const int n = topo.size();
  DIMMER_REQUIRE(initiator >= 0 && initiator < n, "initiator out of range");
  DIMMER_REQUIRE(static_cast<int>(configs.size()) == n,
                 "one NodeFloodConfig per node required");
  DIMMER_REQUIRE(configs[static_cast<std::size_t>(initiator)].participates,
                 "initiator must participate");
  DIMMER_REQUIRE(phy::is_valid_channel(params.channel), "invalid channel");
  for (const auto& c : configs)
    DIMMER_REQUIRE(c.n_tx >= 0, "negative n_tx");

  const phy::RadioConstants& radio = topo.radio();
  const sim::TimeUs step_len = GlossyFlood::step_len_us(params, radio);
  const int steps = GlossyFlood::max_steps(params, radio);
  const int frame_bytes = params.payload_bytes + radio.phy_overhead_bytes;
  const double noise_mw = phy::dbm_to_mw(radio.noise_floor_dbm);

  // Per-node dynamic state.
  struct State {
    bool has_packet = false;
    int first_step = 0;   // step of first involvement; initiator uses -1
    int tx_done = 0;
    bool finished = false;  // radio off for the rest of the slot
    sim::TimeUs radio_on = 0;
  };
  std::vector<State> st(static_cast<std::size_t>(n));

  FloodResult result;
  result.nodes.assign(static_cast<std::size_t>(n), NodeFloodResult{});
  result.participated.assign(static_cast<std::size_t>(n), false);
  result.initiator = initiator;
  result.steps_simulated = 0;

  for (int i = 0; i < n; ++i) {
    const auto& cfg = configs[static_cast<std::size_t>(i)];
    result.participated[static_cast<std::size_t>(i)] = cfg.participates;
    if (!cfg.participates) st[static_cast<std::size_t>(i)].finished = true;
  }
  {
    auto& init = st[static_cast<std::size_t>(initiator)];
    init.has_packet = true;
    init.first_step = -1;  // transmits at even steps 0, 2, 4, ...
  }

  // The initiator sources the packet: it transmits at least once even if its
  // own budget says 0 (a passive role never applies to one's own slot).
  auto budget = [&](phy::NodeId i) {
    int b = configs[static_cast<std::size_t>(i)].n_tx;
    return i == initiator ? std::max(1, b) : b;
  };

  std::vector<phy::NodeId> transmitters;
  transmitters.reserve(static_cast<std::size_t>(n));

  for (int t = 0; t < steps; ++t) {
    // 1. Who transmits at this step? Alternation: a node first involved at
    //    step f transmits at f+1, f+3, ... while budget remains.
    transmitters.clear();
    for (phy::NodeId i = 0; i < n; ++i) {
      State& s = st[static_cast<std::size_t>(i)];
      if (s.finished || !s.has_packet) continue;
      if ((t - s.first_step) % 2 == 1 && s.tx_done < budget(i))
        transmitters.push_back(i);
    }

    // 2. Early exit: nobody transmits now, and nobody ever will again.
    if (transmitters.empty()) {
      bool future_tx = false;
      for (phy::NodeId i = 0; i < n && !future_tx; ++i) {
        const State& s = st[static_cast<std::size_t>(i)];
        future_tx = !s.finished && s.has_packet && s.tx_done < budget(i);
      }
      if (!future_tx) {
        result.steps_simulated = t;
        break;
      }
    }

    const sim::TimeUs t0 = params.slot_start_us + t * step_len;
    const sim::TimeUs t1 =
        t0 + static_cast<sim::TimeUs>(
                 std::llround(radio.airtime_us(params.payload_bytes)));

    // 3. Receptions for every awake listener.
    for (phy::NodeId i = 0; i < n; ++i) {
      State& s = st[static_cast<std::size_t>(i)];
      if (s.finished) continue;
      const bool is_tx = std::find(transmitters.begin(), transmitters.end(),
                                   i) != transmitters.end();
      s.radio_on += step_len;  // TX or RX, the radio is on this step
      if (is_tx || transmitters.empty()) continue;
      if (s.has_packet) continue;  // re-receptions only maintain sync

      // Partially-coherent combining of all concurrent identical frames.
      double strongest_mw = 0.0, total_mw = 0.0;
      for (phy::NodeId tx : transmitters) {
        double p_mw = phy::dbm_to_mw(
            topo.rx_power_dbm(tx, i, params.tx_power_dbm));
        total_mw += p_mw;
        strongest_mw = std::max(strongest_mw, p_mw);
      }
      double signal_mw =
          strongest_mw + params.coherence_gain * (total_mw - strongest_mw);
      // Per-reception block fading at the listener.
      double fading_sigma = topo.path_loss().fading_sigma_db;
      if (fading_sigma > 0.0)
        signal_mw *= std::pow(10.0, rng.normal(0.0, fading_sigma) / 10.0);

      phy::InterferenceSample interf =
          interference.sample(t0, t1, params.channel, i, topo);
      double sinr_clean_db =
          phy::mw_to_dbm(signal_mw) - phy::mw_to_dbm(noise_mw);
      double sinr_jam_db = phy::mw_to_dbm(signal_mw) -
                           phy::mw_to_dbm(noise_mw + interf.power_mw);
      double p_ok = frame_success_prob(sinr_clean_db, sinr_jam_db,
                                       interf.exposure, frame_bytes);
      if (rng.bernoulli(p_ok)) {
        s.has_packet = true;
        s.first_step = t;
        if (budget(i) == 0) s.finished = true;  // passive receiver: done
      }
    }

    // 4. Transmitter bookkeeping (after receptions so a TX at step t is
    //    heard at step t, not retroactively).
    for (phy::NodeId tx : transmitters) {
      State& s = st[static_cast<std::size_t>(tx)];
      s.tx_done += 1;
      if (s.tx_done >= budget(tx)) s.finished = true;
    }
    result.steps_simulated = t + 1;
  }

  // 5. Fill results. Nodes that never received and participated listened for
  //    the whole slot (the paper's pessimistic radio-on accounting).
  for (phy::NodeId i = 0; i < n; ++i) {
    const State& s = st[static_cast<std::size_t>(i)];
    NodeFloodResult& r = result.nodes[static_cast<std::size_t>(i)];
    if (!result.participated[static_cast<std::size_t>(i)]) continue;
    r.received = s.has_packet;
    r.first_rx_step = (i == initiator) ? 0 : (s.has_packet ? s.first_step : -1);
    r.transmissions = s.tx_done;
    bool heard = s.has_packet;
    r.radio_on_us = heard ? std::min<sim::TimeUs>(s.radio_on, params.slot_len_us)
                          : params.slot_len_us;
  }

  return result;
}

}  // namespace dimmer::flood::reference
