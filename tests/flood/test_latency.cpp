// Flood propagation latency properties: Glossy delivers hop by hop, one
// airtime step per hop, so reception step indices must grow with distance
// from the initiator.
#include <gtest/gtest.h>

#include "flood/glossy.hpp"
#include "phy/topology.hpp"

namespace dimmer::flood {
namespace {

TEST(FloodLatency, ReceptionStepGrowsAlongAChain) {
  phy::Topology topo = phy::make_line_topology(6, 14.0, /*seed=*/2);
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  std::vector<NodeFloodConfig> cfgs(6, NodeFloodConfig{3, true});
  // Average first-reception step over many floods (fading jitters singles).
  std::vector<double> avg(6, 0.0);
  util::Pcg32 rng(3);
  const int floods = 100;
  int delivered_all = 0;
  for (int f = 0; f < floods; ++f) {
    FloodResult r = engine.run(0, cfgs, FloodParams{}, rng);
    bool all = true;
    for (int i = 1; i < 6; ++i) {
      if (!r.nodes[i].received) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    ++delivered_all;
    for (int i = 1; i < 6; ++i) avg[i] += r.nodes[i].first_rx_step;
  }
  ASSERT_GT(delivered_all, floods / 2);
  for (int i = 1; i < 6; ++i) avg[i] /= delivered_all;
  // Strictly increasing mean latency along the chain.
  for (int i = 2; i < 6; ++i) EXPECT_GT(avg[i], avg[i - 1]) << "hop " << i;
  // The far end needs several steps; the first hop arrives almost at once.
  EXPECT_LT(avg[1], 1.5);
  EXPECT_GT(avg[5], 2.5);
}

TEST(FloodLatency, InitiatorNeighborsHearTheFirstTransmission) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  std::vector<NodeFloodConfig> cfgs(18, NodeFloodConfig{3, true});
  util::Pcg32 rng(4);
  FloodResult r = engine.run(0, cfgs, FloodParams{}, rng);
  int heard_at_step0 = 0;
  for (int i = 1; i < 18; ++i)
    if (r.nodes[i].received && r.nodes[i].first_rx_step == 0)
      ++heard_at_step0;
  EXPECT_GE(heard_at_step0, 2);  // the initiator has one-hop neighbors
}

TEST(FloodLatency, HigherBudgetDoesNotSlowFirstReception) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  GlossyFlood engine(topo, field);
  auto mean_latency = [&](int n_tx) {
    std::vector<NodeFloodConfig> cfgs(18, NodeFloodConfig{n_tx, true});
    util::Pcg32 rng(5);
    double acc = 0.0;
    int count = 0;
    for (int f = 0; f < 60; ++f) {
      FloodResult r = engine.run(0, cfgs, FloodParams{}, rng);
      for (int i = 1; i < 18; ++i) {
        if (!r.nodes[i].received) continue;
        acc += r.nodes[i].first_rx_step;
        ++count;
      }
    }
    return acc / count;
  };
  // More retransmissions may only help stragglers; the bulk latency stays.
  EXPECT_NEAR(mean_latency(8), mean_latency(3), 1.0);
}

}  // namespace
}  // namespace dimmer::flood
