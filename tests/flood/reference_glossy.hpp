// Frozen pre-refactor flood loop, kept verbatim as the differential oracle
// for the hot-path refactor (DESIGN.md §10). This is the original
// GlossyFlood::run: per-reception dB-domain power lookups via
// Topology::rx_power_dbm, std::find over the transmitter list, and a budget
// lambda evaluated per call. It must never be "optimised" — its only job is
// to stay byte-for-byte equivalent to the shipped engine so the differential
// suite (test_differential.cpp) and the hot-path benchmark can prove the
// refactor bit-identical and quantify the speedup.
#pragma once

#include "flood/glossy.hpp"
#include "phy/interference.hpp"
#include "phy/topology.hpp"
#include "util/rng.hpp"

namespace dimmer::flood::reference {

/// Runs one flood with the pre-refactor algorithm. Same contract as
/// GlossyFlood::run; consumes the RNG stream identically.
FloodResult run(const phy::Topology& topo,
                const phy::InterferenceField& interf, phy::NodeId initiator,
                const std::vector<NodeFloodConfig>& configs,
                const FloodParams& params, util::Pcg32& rng);

}  // namespace dimmer::flood::reference
