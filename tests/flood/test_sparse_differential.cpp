// Sparse-vs-dense differential suite for the CSR link backend (DESIGN.md
// §13): a GlossyFlood driven by SparseLinkModel with culling *disabled* must
// be bit-identical — every FloodResult field AND the RNG end-state — to the
// dense CachedLinkModel engine on every canonical topology, clean or jammed.
// With culling *enabled*, results may legitimately differ in individual
// receptions, but the aggregate delivery ratio stays within a tight band of
// the dense engine's (the culled power is provably below the noise floor;
// tests/phy/test_sparse_link_model.cpp carries the bound).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "flood/glossy.hpp"
#include "flood/workspace.hpp"
#include "phy/sparse_link_model.hpp"
#include "phy/topology.hpp"
#include "util/rng.hpp"

namespace dimmer::flood {
namespace {

void expect_identical(const FloodResult& a, const FloodResult& b) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.initiator, b.initiator);
  EXPECT_EQ(a.steps_simulated, b.steps_simulated);
  ASSERT_EQ(a.participated.size(), b.participated.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    EXPECT_EQ(a.participated[i], b.participated[i]);
    EXPECT_EQ(a.nodes[i].received, b.nodes[i].received);
    EXPECT_EQ(a.nodes[i].first_rx_step, b.nodes[i].first_rx_step);
    EXPECT_EQ(a.nodes[i].transmissions, b.nodes[i].transmissions);
    EXPECT_EQ(a.nodes[i].radio_on_us, b.nodes[i].radio_on_us);
  }
}

void expect_same_rng_state(util::Pcg32& a, util::Pcg32& b) {
  // Same stream position, and the same Marsaglia spare state (a cached
  // spare would make the next normal() differ with aligned raw streams).
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a.normal(), b.normal());
}

struct Case {
  phy::Topology topo;
  phy::InterferenceField field;
};

phy::Topology topo_for(const std::string& name) {
  if (name == "line") return phy::make_line_topology(8, 12.0);
  if (name == "grid") return phy::make_grid_topology(4, 4, 10.0);
  if (name == "office18") return phy::make_office18_topology();
  if (name == "campus") return phy::make_campus_topology(60);
  return phy::make_dcube48_topology();
}

Case make_case(const std::string& name, double jam_duty) {
  Case c{topo_for(name), phy::InterferenceField{}};
  if (jam_duty > 0.0 && (name == "office18" || name == "dcube48")) {
    core::add_static_jamming(c.field, c.topo, jam_duty);
  } else if (jam_duty > 0.0) {
    // Line/grid/campus have no office jammer positions; use ambient office
    // noise as the interference source instead.
    core::add_office_ambient(c.field, c.topo);
  }
  return c;
}

/// Runs the dense (CachedLinkModel) engine and the sparse engine with
/// culling disabled from identical RNG states and asserts bit-identity.
void run_sparse_differential(const std::string& topo_name, double jam_duty,
                             const std::vector<NodeFloodConfig>& configs,
                             phy::NodeId initiator, const FloodParams& params,
                             std::uint64_t seed) {
  Case c = make_case(topo_name, jam_duty);
  ASSERT_EQ(static_cast<int>(configs.size()), c.topo.size());

  GlossyFlood dense_engine(c.topo, c.field);
  util::Pcg32 rng_dense(seed);
  FloodResult want = dense_engine.run(initiator, configs, params, rng_dense);

  phy::SparseLinkModel links(c.topo, phy::SparseLinkModel::Config::no_culling());
  GlossyFlood sparse_engine(links, c.field);
  util::Pcg32 rng_sparse(seed);
  FloodResult got = sparse_engine.run(initiator, configs, params, rng_sparse);

  expect_identical(want, got);
  expect_same_rng_state(rng_dense, rng_sparse);
}

std::vector<NodeFloodConfig> uniform_configs(int n, int n_tx) {
  return std::vector<NodeFloodConfig>(static_cast<std::size_t>(n),
                                      NodeFloodConfig{n_tx, true});
}

TEST(SparseDifferential, CleanTopologies) {
  for (const char* name : {"line", "grid", "office18", "dcube48", "campus"}) {
    SCOPED_TRACE(name);
    Case c = make_case(name, 0.0);
    const int n = c.topo.size();
    for (std::uint64_t seed : {1ULL, 77ULL, 4242ULL}) {
      run_sparse_differential(name, 0.0, uniform_configs(n, 3), 0,
                              FloodParams{}, seed);
    }
  }
}

TEST(SparseDifferential, JammedTopologies) {
  for (const char* name : {"line", "grid", "office18", "dcube48"}) {
    SCOPED_TRACE(name);
    Case c = make_case(name, 0.3);
    const int n = c.topo.size();
    for (std::uint64_t seed : {9ULL, 1234ULL}) {
      FloodParams p;
      p.slot_start_us = sim::seconds(5);  // land inside jammer bursts
      run_sparse_differential(name, 0.3, uniform_configs(n, 3), n / 2, p,
                              seed);
    }
  }
}

TEST(SparseDifferential, MixedBudgetsAndPassiveReceivers) {
  Case probe = make_case("dcube48", 0.0);
  const int n = probe.topo.size();
  auto cfgs = uniform_configs(n, 3);
  for (int i = 0; i < n; ++i) {
    cfgs[static_cast<std::size_t>(i)].n_tx = i % 4;  // includes n_tx = 0
  }
  for (int i = 0; i < n; i += 7)
    cfgs[static_cast<std::size_t>(i)].participates = false;
  cfgs[3].participates = true;  // keep the initiator participating
  for (std::uint64_t seed : {3ULL, 31ULL, 314ULL}) {
    run_sparse_differential("dcube48", 0.0, cfgs, 3, FloodParams{}, seed);
    run_sparse_differential("dcube48", 0.3, cfgs, 3, FloodParams{}, seed);
  }
}

TEST(SparseDifferential, AlternatingTxPowerRebindsCsr) {
  // Back-to-back floods at different TX powers through ONE sparse engine:
  // the CSR rebinds per power exactly like the dense cache does.
  Case c = make_case("office18", 0.3);
  const int n = c.topo.size();
  auto cfgs = uniform_configs(n, 3);

  GlossyFlood dense_engine(c.topo, c.field);
  phy::SparseLinkModel links(c.topo, phy::SparseLinkModel::Config::no_culling());
  GlossyFlood sparse_engine(links, c.field);
  util::Pcg32 rng_dense(55);
  util::Pcg32 rng_sparse(55);
  for (double power : {0.0, -7.0, 0.0, 3.0, -7.0}) {
    SCOPED_TRACE("tx_power_dbm " + std::to_string(power));
    FloodParams p;
    p.tx_power_dbm = power;
    FloodResult want = dense_engine.run(0, cfgs, p, rng_dense);
    FloodResult got = sparse_engine.run(0, cfgs, p, rng_sparse);
    expect_identical(want, got);
  }
  expect_same_rng_state(rng_dense, rng_sparse);
}

TEST(SparseDifferential, RunIntoReusedBuffersMatchDense) {
  // Reused workspace/result buffers through the sparse scatter path must be
  // as invisible as through the dense sweep.
  Case c = make_case("dcube48", 0.3);
  const int n = c.topo.size();
  auto cfgs = uniform_configs(n, 3);
  cfgs[4].n_tx = 0;
  cfgs[9].participates = false;

  GlossyFlood dense_engine(c.topo, c.field);
  phy::SparseLinkModel links(c.topo, phy::SparseLinkModel::Config::no_culling());
  GlossyFlood sparse_engine(links, c.field);
  FloodWorkspace ws;
  FloodResult reused;
  util::Pcg32 rng_dense(88);
  util::Pcg32 rng_sparse(88);
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    FloodParams p;
    p.slot_start_us = round * sim::ms(40);
    phy::NodeId init = static_cast<phy::NodeId>((round * 3) % n);
    if (!cfgs[static_cast<std::size_t>(init)].participates) init += 1;
    FloodResult want = dense_engine.run(init, cfgs, p, rng_dense);
    sparse_engine.run_into(init, cfgs, p, rng_sparse, ws, reused);
    expect_identical(want, reused);
  }
  expect_same_rng_state(rng_dense, rng_sparse);
}

TEST(SparseDifferential, CullingPreservesDeliveryRatioOnDcube48) {
  // With real culling the per-reception outcomes may differ (interference
  // sums lose sub-floor terms and RNG streams drift after the first skipped
  // listener), but the culled power is below the noise floor, so the
  // *aggregate* delivery ratio must stay put.
  Case c = make_case("dcube48", 0.3);
  const int n = c.topo.size();
  auto cfgs = uniform_configs(n, 2);

  GlossyFlood dense_engine(c.topo, c.field);
  phy::SparseLinkModel links(
      c.topo, phy::SparseLinkModel::Config::bounded_influence(n));
  GlossyFlood sparse_engine(links, c.field);

  const int kFloods = 200;
  util::Pcg32 rng_dense(2026);
  util::Pcg32 rng_sparse(2026);
  FloodWorkspace ws_dense, ws_sparse;
  FloodResult r_dense, r_sparse;
  double sum_dense = 0.0, sum_sparse = 0.0;
  for (int k = 0; k < kFloods; ++k) {
    FloodParams p;
    p.slot_start_us = k * sim::ms(25);
    const phy::NodeId init = static_cast<phy::NodeId>(k % n);
    dense_engine.run_into(init, cfgs, p, rng_dense, ws_dense, r_dense);
    sparse_engine.run_into(init, cfgs, p, rng_sparse, ws_sparse, r_sparse);
    sum_dense += r_dense.delivery_ratio();
    sum_sparse += r_sparse.delivery_ratio();
  }
  EXPECT_NEAR(sum_sparse / kFloods, sum_dense / kFloods, 0.05);
  EXPECT_GT(sum_sparse / kFloods, 0.5);  // the sparse floods actually flood
}

}  // namespace
}  // namespace dimmer::flood
