#include <gtest/gtest.h>

#include "phy/energy.hpp"

namespace dimmer::phy {
namespace {

TEST(EnergyModel, RxEnergyMatchesDatasheetArithmetic) {
  EnergyModel m;
  // 19.7 mA * 3 V = 59.1 mW; 20 ms of listening = 1.182 mJ.
  EXPECT_NEAR(m.radio_energy_mj(sim::ms(20)), 1.182, 1e-9);
}

TEST(EnergyModel, SplitRxTxAccounting) {
  EnergyModel m;
  double split = m.radio_energy_mj(sim::ms(10), sim::ms(10));
  double all_rx = m.radio_energy_mj(sim::ms(20));
  EXPECT_LT(split, all_rx);  // TX draws slightly less on the CC2420
  EXPECT_NEAR(split, (19.7 + 17.4) * 0.01 * 3.0, 1e-9);
}

TEST(EnergyModel, SleepIsOrdersOfMagnitudeCheaper) {
  EnergyModel m;
  EXPECT_LT(m.sleep_energy_mj(sim::seconds(1)) * 1000,
            m.radio_energy_mj(sim::seconds(1)));
}

TEST(EnergyModel, AveragePowerInterpolatesDuty) {
  EnergyModel m;
  EXPECT_NEAR(m.average_power_mw(1.0), 19.7 * 3.0, 1e-9);
  EXPECT_NEAR(m.average_power_mw(0.0), 1.0e-3 * 3.0, 1e-9);
  EXPECT_GT(m.average_power_mw(0.5), m.average_power_mw(0.1));
}

TEST(EnergyModel, ZeroTimeZeroEnergy) {
  EnergyModel m;
  EXPECT_DOUBLE_EQ(m.radio_energy_mj(0), 0.0);
  EXPECT_DOUBLE_EQ(m.radio_energy_mj(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.sleep_energy_mj(0), 0.0);
}

}  // namespace
}  // namespace dimmer::phy
