#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "phy/batched.hpp"
#include "phy/per.hpp"
#include "phy/propagation.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/simd/simd.hpp"

namespace dimmer::phy {
namespace {

using s1 = util::simd::simd<double, 1>;
constexpr int kW = util::simd::native_width;

// Equivalence bound between the batch entry points and the historical scalar
// functions. On the scalar backend (native_width == 1) the contract is
// bit-identity, checked with EXPECT_EQ; on wider backends the polynomial
// kernels are bounded-ulp, checked with a relative tolerance (DESIGN.md §12
// documents the per-site bounds).
void expect_equivalent(double got, double want, const char* site) {
  if (kW == 1) {
    EXPECT_EQ(got, want) << site;
  } else {
    EXPECT_NEAR(got, want, std::abs(want) * 1e-10 + 1e-12) << site;
  }
}

// ---------------------------------------------------------------------------
// Width-1 kernel instantiations: bitwise against the canonical scalar
// functions on EVERY build (the kernels are templates, so this pins the
// width-1 branches regardless of DIMMER_SIMD).

TEST(SimdKernelsWidth1, BerMatchesScalarBitwise) {
  for (double sinr = -25.0; sinr <= 25.0; sinr += 0.37) {
    EXPECT_EQ(simd_kernels::ber_802154_kernel(s1(sinr)).v, ber_802154(sinr))
        << "sinr=" << sinr;
  }
}

TEST(SimdKernelsWidth1, MwToDbmMatchesScalarBitwise) {
  for (double mw : {1e-12, 3.7e-8, 1.0, 42.0, 1e6}) {
    EXPECT_EQ(simd_kernels::mw_to_dbm_kernel(s1(mw)).v, mw_to_dbm(mw));
  }
  // The non-positive floor.
  EXPECT_EQ(simd_kernels::mw_to_dbm_kernel(s1(0.0)).v, -300.0);
  EXPECT_EQ(simd_kernels::mw_to_dbm_kernel(s1(-1.0)).v, -300.0);
}

TEST(SimdKernelsWidth1, FrameSuccessMatchesScalarBitwise) {
  for (double clean : {-5.0, 0.0, 3.0, 12.0}) {
    for (double jam : {-15.0, -5.0, 3.0}) {
      for (double frac : {0.0, 0.25, 0.5, 1.0, -0.5, 1.5}) {
        EXPECT_EQ(
            simd_kernels::frame_success_kernel(s1(clean), s1(jam), s1(frac), 36)
                .v,
            frame_success_prob(clean, jam, frac, 36))
            << "clean=" << clean << " jam=" << jam << " frac=" << frac;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batch entry points vs the scalar functions at the native width.

TEST(BatchEntryPoints, DbmToMwMatchesScalar) {
  // 2*kW + 3 forces a partial tail chunk on every vector backend.
  const int n = 2 * kW + 3;
  std::vector<double> dbm(static_cast<std::size_t>(n)), mw(dbm.size());
  for (int i = 0; i < n; ++i)
    dbm[static_cast<std::size_t>(i)] = -120.0 + 7.3 * i;
  dbm_to_mw_batch(dbm.data(), mw.data(), n);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    expect_equivalent(mw[u], dbm_to_mw(dbm[u]), "dbm_to_mw");
  }
}

TEST(BatchEntryPoints, BerMatchesScalar) {
  const int n = 3 * kW + 1;
  std::vector<double> sinr(static_cast<std::size_t>(n)), ber(sinr.size());
  for (int i = 0; i < n; ++i)
    sinr[static_cast<std::size_t>(i)] = -20.0 + 1.7 * i;
  ber_802154_batch(sinr.data(), ber.data(), n);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    expect_equivalent(ber[u], ber_802154(sinr[u]), "ber");
  }
}

TEST(BatchEntryPoints, FrameSuccessMatchesScalar) {
  const int n = 2 * kW + 1;
  std::vector<double> clean(static_cast<std::size_t>(n)), jam(clean.size()),
      frac(clean.size()), p(clean.size());
  util::Pcg32 rng(99);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    clean[u] = -10.0 + 20.0 * rng.uniform();
    jam[u] = clean[u] - 12.0 * rng.uniform();
    frac[u] = rng.uniform();
  }
  // Exercise the short-circuit fractions explicitly.
  frac[0] = 0.0;
  if (n > 1) frac[1] = 1.0;
  frame_success_prob_batch(clean.data(), jam.data(), frac.data(), 36, p.data(),
                           n);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    expect_equivalent(p[u], frame_success_prob(clean[u], jam[u], frac[u], 36),
                      "frame_success");
  }
}

TEST(BatchEntryPoints, FrameSuccessRejectsNonPositiveFrame) {
  double x = 5.0, y = 0.0, f = 0.5, p = 0.0;
  EXPECT_THROW(frame_success_prob_batch(&x, &y, &f, 0, &p, 1),
               util::RequireError);
  EXPECT_THROW(frame_success_prob_batch(&x, &y, &f, -3, &p, 1),
               util::RequireError);
}

// ---------------------------------------------------------------------------
// Tail determinism: a value's result must be identical whether it lands in a
// full vector chunk or in the padded tail. Bit-exact on EVERY backend — this
// is the "position independent" half of the determinism contract.

TEST(BatchEntryPoints, TailAndFullChunkAgreeBitwise) {
  const int full = 4 * kW;
  std::vector<double> sinr(static_cast<std::size_t>(full));
  for (int i = 0; i < full; ++i)
    sinr[static_cast<std::size_t>(i)] = -18.0 + 1.1 * i;
  std::vector<double> ber_full(sinr.size());
  ber_802154_batch(sinr.data(), ber_full.data(), full);
  // Re-run every strict prefix; shared elements must not change, no matter
  // how the chunk/tail boundary falls.
  for (int n = 1; n < full; ++n) {
    std::vector<double> ber_n(static_cast<std::size_t>(n));
    ber_802154_batch(sinr.data(), ber_n.data(), n);
    for (int i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      EXPECT_EQ(ber_n[u], ber_full[u]) << "prefix " << n << " index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// reception_success_batch: the full step-3b chain against a literal
// transcription of the historical per-listener expressions.

double reference_reception(double strongest, double total, double fade_db,
                           double interf_mw, double jam_fraction,
                           double coherence_gain, bool apply_fading,
                           double noise_mw, double noise_dbm,
                           int frame_bytes) {
  double signal_mw = strongest + coherence_gain * (total - strongest);
  if (apply_fading) signal_mw *= std::pow(10.0, fade_db / 10.0);
  const double signal_dbm = mw_to_dbm(signal_mw);
  const double sinr_clean_db = signal_dbm - noise_dbm;
  const double sinr_jam_db = interf_mw == 0.0
                                 ? sinr_clean_db
                                 : signal_dbm - mw_to_dbm(noise_mw + interf_mw);
  return frame_success_prob(sinr_clean_db, sinr_jam_db, jam_fraction,
                            frame_bytes);
}

TEST(ReceptionBatch, MatchesReferenceChain) {
  const double noise_mw = dbm_to_mw(-87.0);
  const double noise_dbm = mw_to_dbm(noise_mw);
  for (bool fading : {false, true}) {
    SCOPED_TRACE(fading ? "fading on" : "fading off");
    const int n = 3 * kW + 2;
    ReceptionBatch b;
    b.resize(n);
    b.count = n;
    util::Pcg32 rng(1234);
    for (int i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      b.strongest_mw[u] = dbm_to_mw(-90.0 + 30.0 * rng.uniform());
      b.total_mw[u] = b.strongest_mw[u] * (1.0 + rng.uniform());
      b.fade_db[u] = rng.normal(0.0, 3.0);
      // Mix zero- and nonzero-interference listeners.
      b.interf_mw[u] = (i % 3 == 0) ? 0.0 : dbm_to_mw(-95.0);
      b.jam_fraction[u] = (i % 3 == 0) ? 0.0 : rng.uniform();
    }
    reception_success_batch(b, 0.2, fading, noise_mw, noise_dbm, 36);
    for (int i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const double want = reference_reception(
          b.strongest_mw[u], b.total_mw[u], b.fade_db[u], b.interf_mw[u],
          b.jam_fraction[u], 0.2, fading, noise_mw, noise_dbm, 36);
      expect_equivalent(b.p_ok[u], want, "reception");
      EXPECT_GE(b.p_ok[u], 0.0);
      // The polynomial kernels may overshoot 1.0 by a few ulp on vector
      // backends; the Bernoulli compare tolerates that (p >= 1 always fires).
      EXPECT_LE(b.p_ok[u], 1.0 + 1e-12);
    }
  }
}

TEST(ReceptionBatch, CountPrefixIsPositionIndependent) {
  const double noise_mw = dbm_to_mw(-87.0);
  const double noise_dbm = mw_to_dbm(noise_mw);
  const int n = 2 * kW + 1;
  ReceptionBatch full;
  full.resize(n);
  full.count = n;
  util::Pcg32 rng(77);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    full.strongest_mw[u] = dbm_to_mw(-80.0 + 2.0 * i);
    full.total_mw[u] = full.strongest_mw[u] * 1.5;
    full.fade_db[u] = rng.normal(0.0, 2.0);
    full.interf_mw[u] = (i % 2 == 0) ? 0.0 : 1e-9;
    full.jam_fraction[u] = (i % 2 == 0) ? 0.0 : 0.4;
  }
  reception_success_batch(full, 0.3, true, noise_mw, noise_dbm, 24);
  // Each listener alone in a batch of one must reproduce its batched result
  // bit-for-bit (lanewise kernels + same-kernel tail policy).
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    ReceptionBatch one;
    one.resize(1);
    one.count = 1;
    one.strongest_mw[0] = full.strongest_mw[u];
    one.total_mw[0] = full.total_mw[u];
    one.fade_db[0] = full.fade_db[u];
    one.interf_mw[0] = full.interf_mw[u];
    one.jam_fraction[0] = full.jam_fraction[u];
    reception_success_batch(one, 0.3, true, noise_mw, noise_dbm, 24);
    EXPECT_EQ(one.p_ok[0], full.p_ok[u]) << "listener " << i;
  }
}

TEST(ReceptionBatch, ResizeSizesAllArrays) {
  ReceptionBatch b;
  b.resize(13);
  EXPECT_EQ(b.strongest_mw.size(), 13u);
  EXPECT_EQ(b.total_mw.size(), 13u);
  EXPECT_EQ(b.fade_db.size(), 13u);
  EXPECT_EQ(b.interf_mw.size(), 13u);
  EXPECT_EQ(b.jam_fraction.size(), 13u);
  EXPECT_EQ(b.uniform.size(), 13u);
  EXPECT_EQ(b.p_ok.size(), 13u);
}

}  // namespace
}  // namespace dimmer::phy
