#include <gtest/gtest.h>

#include <memory>

#include "phy/interference.hpp"
#include "phy/topology.hpp"
#include "util/check.hpp"

namespace dimmer::phy {
namespace {

BurstJammer::Config basic_jammer() {
  BurstJammer::Config cfg;
  cfg.burst_us = sim::ms(13);
  cfg.period_us = sim::ms(130);
  cfg.channels = {26};
  return cfg;
}

TEST(BurstJammer, ExactOverlapInsideBurst) {
  BurstJammer j(basic_jammer());
  // Burst occupies [0, 13 ms); a window fully inside reads activity 1.
  EXPECT_DOUBLE_EQ(j.activity(sim::ms(2), sim::ms(5), 26), 1.0);
  // A window fully in the gap reads 0.
  EXPECT_DOUBLE_EQ(j.activity(sim::ms(20), sim::ms(40), 26), 0.0);
}

TEST(BurstJammer, PartialOverlapFraction) {
  BurstJammer j(basic_jammer());
  // [10 ms, 20 ms): 3 ms of the 13 ms burst overlap -> 0.3.
  EXPECT_NEAR(j.activity(sim::ms(10), sim::ms(20), 26), 0.3, 1e-9);
}

TEST(BurstJammer, MultiPeriodWindowAveragesDuty) {
  BurstJammer j(basic_jammer());
  // Over exactly 10 periods the activity equals the duty 13/130.
  EXPECT_NEAR(j.activity(0, sim::ms(1300), 26), 0.1, 1e-9);
}

TEST(BurstJammer, WrongChannelIsSilent) {
  BurstJammer j(basic_jammer());
  EXPECT_DOUBLE_EQ(j.activity(0, sim::ms(5), 15), 0.0);
}

TEST(BurstJammer, PhaseShiftsBursts) {
  auto cfg = basic_jammer();
  cfg.phase_us = sim::ms(50);
  BurstJammer j(cfg);
  EXPECT_DOUBLE_EQ(j.activity(sim::ms(2), sim::ms(5), 26), 0.0);
  EXPECT_DOUBLE_EQ(j.activity(sim::ms(51), sim::ms(55), 26), 1.0);
}

TEST(BurstJammer, ScenarioWindowGates) {
  auto cfg = basic_jammer();
  cfg.start_us = sim::seconds(10);
  cfg.stop_us = sim::seconds(20);
  BurstJammer j(cfg);
  EXPECT_DOUBLE_EQ(j.activity(sim::seconds(5), sim::seconds(5) + sim::ms(5), 26),
                   0.0);
  EXPECT_GT(j.activity(sim::seconds(10), sim::seconds(11), 26), 0.05);
  EXPECT_DOUBLE_EQ(
      j.activity(sim::seconds(25), sim::seconds(25) + sim::ms(5), 26), 0.0);
}

TEST(BurstJammer, JamlabFactoryMatchesPaperParameterisation) {
  // "a 10% interference corresponds to a 13 ms burst every 130 ms".
  auto cfg = BurstJammer::jamlab({0, 0}, 0.10);
  EXPECT_EQ(cfg.burst_us, sim::ms(13));
  EXPECT_EQ(cfg.period_us, sim::ms(130));
  // "a 35% interference ratio represents a 13 ms burst every 37 ms".
  auto cfg35 = BurstJammer::jamlab({0, 0}, 0.35);
  EXPECT_NEAR(static_cast<double>(cfg35.period_us), 37142.0, 10.0);
}

TEST(BurstJammer, RejectsBadConfig) {
  auto cfg = basic_jammer();
  cfg.period_us = sim::ms(5);  // shorter than the burst
  EXPECT_THROW(BurstJammer{cfg}, util::RequireError);
  EXPECT_THROW(BurstJammer::jamlab({0, 0}, 0.0), util::RequireError);
  EXPECT_THROW(BurstJammer::jamlab({0, 0}, 1.2), util::RequireError);
}

TEST(WifiInterferer, PureAndDeterministic) {
  WifiInterferer::Config cfg;
  cfg.duty = 0.4;
  cfg.seed = 9;
  WifiInterferer w(cfg);
  double a1 = w.activity(sim::ms(100), sim::ms(120), 25);
  double a2 = w.activity(sim::ms(100), sim::ms(120), 25);
  EXPECT_DOUBLE_EQ(a1, a2);
}

TEST(WifiInterferer, LongRunDutyApproximatesConfig) {
  WifiInterferer::Config cfg;
  cfg.duty = 0.4;
  cfg.wifi_channel = 13;
  WifiInterferer w(cfg);
  double acc = w.activity(0, sim::seconds(60), 26);
  EXPECT_NEAR(acc, 0.4, 0.05);
}

TEST(WifiInterferer, OnlyCoversOwnStripe) {
  WifiInterferer::Config cfg;
  cfg.wifi_channel = 1;  // covers 11..14
  WifiInterferer w(cfg);
  EXPECT_GT(w.activity(0, sim::seconds(10), 12), 0.0);
  EXPECT_DOUBLE_EQ(w.activity(0, sim::seconds(10), 26), 0.0);
}

TEST(AmbientInterferer, DayBusierThanNight) {
  AmbientInterferer::Config cfg;
  cfg.seed = 4;
  AmbientInterferer a(cfg);
  // 12:00 vs 02:00.
  double day = a.activity(sim::hours(12), sim::hours(12) + sim::minutes(30), 20);
  double night = a.activity(sim::hours(2), sim::hours(2) + sim::minutes(30), 20);
  EXPECT_GT(day, night);
  EXPECT_NEAR(day, cfg.day_duty, 0.04);
}

TEST(InterferenceField, EmptyFieldIsSilent) {
  Topology t = make_office18_topology();
  InterferenceField f;
  auto s = f.sample(0, sim::ms(1), 26, 0, t);
  EXPECT_DOUBLE_EQ(s.power_mw, 0.0);
  EXPECT_DOUBLE_EQ(s.exposure, 0.0);
}

TEST(InterferenceField, AccumulatesSources) {
  Topology t = make_office18_topology();
  InterferenceField f;
  auto cfg = basic_jammer();
  cfg.position = t.position(5);
  f.add(std::make_unique<BurstJammer>(cfg));
  auto one = f.sample(0, sim::ms(5), 26, 5, t);
  EXPECT_GT(one.power_mw, 0.0);
  EXPECT_DOUBLE_EQ(one.exposure, 1.0);

  cfg.tag = 2;
  f.add(std::make_unique<BurstJammer>(cfg));
  auto two = f.sample(0, sim::ms(5), 26, 5, t);
  EXPECT_GT(two.power_mw, one.power_mw);
}

TEST(InterferenceField, NearerNodesSeeMorePower) {
  Topology t = make_line_topology(4, 15.0, /*seed=*/3);
  InterferenceField f;
  auto cfg = basic_jammer();
  cfg.position = t.position(0);
  f.add(std::make_unique<BurstJammer>(cfg));
  auto near = f.sample(0, sim::ms(5), 26, 0, t);
  auto far = f.sample(0, sim::ms(5), 26, 3, t);
  EXPECT_GT(near.power_mw, far.power_mw);
}

TEST(InterferenceField, RejectsNullSource) {
  InterferenceField f;
  EXPECT_THROW(f.add(nullptr), util::RequireError);
}

TEST(DCubeProfiles, LevelTwoIsHarsher) {
  Topology t = make_dcube48_topology();
  InterferenceField l1, l2;
  add_dcube_wifi_level(l1, t, 1);
  add_dcube_wifi_level(l2, t, 2);
  EXPECT_GT(l2.size(), l1.size());
  // Aggregate exposure-weighted power over the band at a central node.
  auto total = [&](const InterferenceField& f) {
    double acc = 0.0;
    for (Channel c = kFirstChannel; c <= kLastChannel; ++c) {
      auto s = f.sample(0, sim::seconds(2), c, 20, t);
      acc += s.power_mw * s.exposure;
    }
    return acc;
  };
  EXPECT_GT(total(l2), total(l1));
}

TEST(DCubeProfiles, InvalidLevelThrows) {
  Topology t = make_dcube48_topology();
  InterferenceField f;
  EXPECT_THROW(add_dcube_wifi_level(f, t, 0), util::RequireError);
  EXPECT_THROW(add_dcube_wifi_level(f, t, 3), util::RequireError);
}

}  // namespace
}  // namespace dimmer::phy
