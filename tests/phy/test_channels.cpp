#include <gtest/gtest.h>

#include <algorithm>

#include "phy/channels.hpp"
#include "util/check.hpp"

namespace dimmer::phy {
namespace {

TEST(Channels, FrequenciesMatchStandard) {
  EXPECT_DOUBLE_EQ(channel_mhz(11), 2405.0);
  EXPECT_DOUBLE_EQ(channel_mhz(26), 2480.0);
  EXPECT_DOUBLE_EQ(wifi_channel_mhz(1), 2412.0);
  EXPECT_DOUBLE_EQ(wifi_channel_mhz(6), 2437.0);
  EXPECT_DOUBLE_EQ(wifi_channel_mhz(11), 2462.0);
}

TEST(Channels, ValidityRange) {
  EXPECT_FALSE(is_valid_channel(10));
  EXPECT_TRUE(is_valid_channel(11));
  EXPECT_TRUE(is_valid_channel(26));
  EXPECT_FALSE(is_valid_channel(27));
}

TEST(Channels, Wifi1CoversLowBand) {
  auto covered = channels_under_wifi(1);
  // 2412 +/- 11 MHz -> 2401..2423 -> channels 11..14 (2405..2420).
  EXPECT_EQ(covered, (std::vector<Channel>{11, 12, 13, 14}));
}

TEST(Channels, Channel26EscapesWifi1To11) {
  for (int w = 1; w <= 11; ++w) {
    auto covered = channels_under_wifi(w);
    EXPECT_EQ(std::count(covered.begin(), covered.end(), 26), 0)
        << "WiFi channel " << w;
  }
}

TEST(Channels, Wifi13ReachesChannel26) {
  auto covered = channels_under_wifi(13);
  EXPECT_NE(std::find(covered.begin(), covered.end(), 26), covered.end());
}

TEST(Channels, InvalidWifiChannelThrows) {
  EXPECT_THROW(channels_under_wifi(0), util::RequireError);
  EXPECT_THROW(channels_under_wifi(14), util::RequireError);
}

TEST(Channels, DefaultHoppingSequenceIsValid) {
  for (Channel c : default_hopping_sequence()) EXPECT_TRUE(is_valid_channel(c));
  // The paper's control channel is part of the rotation.
  const auto& seq = default_hopping_sequence();
  EXPECT_NE(std::find(seq.begin(), seq.end(), kControlChannel), seq.end());
}

}  // namespace
}  // namespace dimmer::phy
