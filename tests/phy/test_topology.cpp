#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "phy/topology.hpp"
#include "util/check.hpp"

namespace dimmer::phy {
namespace {

TEST(PathLossModel, GrowsWithDistance) {
  PathLossModel m;
  EXPECT_LT(m.path_loss_db(1.0), m.path_loss_db(10.0));
  EXPECT_LT(m.path_loss_db(10.0), m.path_loss_db(50.0));
}

TEST(PathLossModel, ClampsTinyDistances) {
  PathLossModel m;
  EXPECT_DOUBLE_EQ(m.path_loss_db(0.0), m.path_loss_db(m.min_distance_m));
}

TEST(RadioConstants, AirtimeMatches802154Bitrate) {
  RadioConstants r;
  // 36 bytes on air at 250 kbps = 36*8/250000 s = 1152 us.
  EXPECT_NEAR(r.airtime_us(30), 1152.0, 1e-9);
}

TEST(Topology, GainIsSymmetric) {
  Topology t = make_office18_topology();
  for (NodeId a = 0; a < t.size(); ++a)
    for (NodeId b = 0; b < t.size(); ++b)
      EXPECT_DOUBLE_EQ(t.gain_db(a, b), t.gain_db(b, a));
}

TEST(Topology, SameSeedSameGains) {
  Topology a = make_office18_topology(99);
  Topology b = make_office18_topology(99);
  for (NodeId i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.gain_db(0, i), b.gain_db(0, i));
}

TEST(Topology, DifferentSeedDifferentShadowing) {
  Topology a = make_office18_topology(1);
  Topology b = make_office18_topology(2);
  int same = 0;
  for (NodeId i = 1; i < a.size(); ++i)
    if (a.gain_db(0, i) == b.gain_db(0, i)) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Topology, RxPowerAddsTxPower) {
  Topology t = make_office18_topology();
  EXPECT_DOUBLE_EQ(t.rx_power_dbm(0, 1, 0.0) + 5.0, t.rx_power_dbm(0, 1, 5.0));
}

TEST(Topology, GainFromPointIsStablePerTag) {
  Topology t = make_office18_topology();
  Vec2 p{10.0, 5.0};
  EXPECT_DOUBLE_EQ(t.gain_from_point_db(p, 3, 7), t.gain_from_point_db(p, 3, 7));
  EXPECT_NE(t.gain_from_point_db(p, 3, 7), t.gain_from_point_db(p, 3, 8));
}

TEST(Topology, RejectsBadNodeIds) {
  Topology t = make_office18_topology();
#ifndef NDEBUG
  // Hot-path accessors validate bounds only in debug builds (DESIGN.md §10);
  // release builds rely on the flood-entry validation instead.
  EXPECT_THROW(t.gain_db(-1, 0), util::RequireError);
  EXPECT_THROW(t.gain_db(0, 18), util::RequireError);
#endif
  EXPECT_THROW(t.position(99), util::RequireError);
}

TEST(Topology, SinrThresholdMonotoneInTarget) {
  // A stricter PER target needs a higher SINR.
  EXPECT_GT(Topology::sinr_threshold_db(36, 0.01),
            Topology::sinr_threshold_db(36, 0.5));
}

TEST(LineTopology, HopCountsIncreaseAlongChain) {
  Topology t = make_line_topology(6, 12.0);
  auto hops = t.hop_counts(0);
  EXPECT_EQ(hops[0], 0);
  for (std::size_t i = 1; i < hops.size(); ++i) {
    EXPECT_GE(hops[i], 1);
    EXPECT_GE(hops[i] + 1, hops[i - 1]);  // non-teleporting chain
  }
  EXPECT_GT(hops.back(), 1);  // 60 m chain is multi-hop at 0 dBm
}

TEST(LineTopology, FarNodesUnreachableWithHugeSpacing) {
  Topology t = make_line_topology(3, 500.0);
  auto hops = t.hop_counts(0);
  EXPECT_EQ(hops[1], -1);
  EXPECT_EQ(hops[2], -1);
}

TEST(GridTopology, SizeAndConnectivity) {
  Topology t = make_grid_topology(3, 4, 8.0);
  EXPECT_EQ(t.size(), 12);
  auto hops = t.hop_counts(0);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
}

TEST(RandomTopology, IsConnectedFromNode0) {
  Topology t = make_random_topology(20, 60.0, 40.0, 5);
  EXPECT_EQ(t.size(), 20);
  auto hops = t.hop_counts(0);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
}

TEST(RandomTopology, ImpossibleBoxThrows) {
  EXPECT_THROW(make_random_topology(3, 5000.0, 5000.0, 1),
               util::RequireError);
}

TEST(Office18, MatchesPaperDeployment) {
  Topology t = make_office18_topology();
  EXPECT_EQ(t.size(), 18);
  auto hops = t.hop_counts(0);
  int diameter = *std::max_element(hops.begin(), hops.end());
  // "our 18-device, 3-hop deployment". hop_counts() uses a strict
  // 10%-PER link criterion; floods reach farther through coherent
  // combining, so the conservative graph diameter is 2-4.
  EXPECT_GE(diameter, 2);
  EXPECT_LE(diameter, 4);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
}

TEST(DCube48, FortyEightConnectedNodes) {
  Topology t = make_dcube48_topology();
  EXPECT_EQ(t.size(), 48);
  auto hops = t.hop_counts(0);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
  EXPECT_GE(*std::max_element(hops.begin(), hops.end()), 2);
}

// Property: in every factory topology, closer node pairs have (on average)
// higher gain than the farthest pairs, despite shadowing.
class TopologyDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopologyDistanceProperty, GainDecaysWithDistanceOnAverage) {
  Topology t = GetParam() == 0   ? make_office18_topology()
               : GetParam() == 1 ? make_dcube48_topology()
                                 : make_grid_topology(4, 5, 10.0);
  double near_acc = 0, far_acc = 0;
  int near_n = 0, far_n = 0;
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b = a + 1; b < t.size(); ++b) {
      double d = distance(t.position(a), t.position(b));
      if (d < 12.0) {
        near_acc += t.gain_db(a, b);
        ++near_n;
      } else if (d > 35.0) {
        far_acc += t.gain_db(a, b);
        ++far_n;
      }
    }
  }
  ASSERT_GT(near_n, 0);
  ASSERT_GT(far_n, 0);
  EXPECT_GT(near_acc / near_n, far_acc / far_n + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Factories, TopologyDistanceProperty,
                         ::testing::Values(0, 1, 2));

// ---- CSR adjacency + campus factory ------------------------------------

// The historical dense BFS, kept verbatim as the reference: scan all N
// candidate neighbors per dequeued node against the clean-SNR link
// predicate. hop_counts_from over good_neighbors must reproduce it exactly.
std::vector<int> dense_reference_hops(const Topology& t, NodeId root,
                                      int frame_bytes, double tx_power_dbm) {
  const double need_dbm =
      t.radio().noise_floor_dbm +
      Topology::sinr_threshold_db(frame_bytes, 0.1);
  std::vector<int> hops(static_cast<std::size_t>(t.size()), -1);
  std::vector<NodeId> queue;
  hops[static_cast<std::size_t>(root)] = 0;
  queue.push_back(root);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (NodeId v = 0; v < t.size(); ++v) {
      if (v == u || hops[static_cast<std::size_t>(v)] >= 0) continue;
      if (t.rx_power_dbm(u, v, tx_power_dbm) < need_dbm) continue;
      hops[static_cast<std::size_t>(v)] = hops[static_cast<std::size_t>(u)] + 1;
      queue.push_back(v);
    }
  }
  return hops;
}

TEST(NeighborCsrTest, HopCountsMatchDenseReferenceBfs) {
  const Topology topos[] = {make_line_topology(8, 12.0),
                            make_grid_topology(4, 4, 10.0),
                            make_office18_topology(), make_dcube48_topology(),
                            make_campus_topology(90)};
  for (const Topology& t : topos) {
    SCOPED_TRACE("n=" + std::to_string(t.size()));
    for (double power : {0.0, -7.0}) {
      NeighborCsr adj = t.good_neighbors(36, power);
      for (NodeId root : {0, t.size() / 2, t.size() - 1}) {
        EXPECT_EQ(t.hop_counts_from(root, adj),
                  dense_reference_hops(t, root, 36, power))
            << "root " << root << " power " << power;
        // The one-shot convenience must agree with the prebuilt-CSR path.
        EXPECT_EQ(t.hop_counts(root, 36, power),
                  t.hop_counts_from(root, adj));
      }
    }
  }
}

TEST(NeighborCsrTest, RowsAreAscendingSymmetricAndSelfFree) {
  Topology t = make_dcube48_topology();
  NeighborCsr adj = t.good_neighbors();
  ASSERT_EQ(adj.n, t.size());
  ASSERT_EQ(adj.row_ptr.size(), static_cast<std::size_t>(t.size()) + 1);
  EXPECT_EQ(adj.row_ptr.back(), adj.col.size());
  auto has_edge = [&](NodeId u, NodeId v) {
    for (std::size_t k = adj.row_ptr[static_cast<std::size_t>(u)];
         k < adj.row_ptr[static_cast<std::size_t>(u) + 1]; ++k)
      if (adj.col[k] == v) return true;
    return false;
  };
  for (NodeId u = 0; u < adj.n; ++u) {
    NodeId prev = -1;
    for (std::size_t k = adj.row_ptr[static_cast<std::size_t>(u)];
         k < adj.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      NodeId v = adj.col[k];
      EXPECT_NE(v, u);       // no self loops
      EXPECT_GT(v, prev);    // strictly ascending within the row
      EXPECT_TRUE(has_edge(v, u)) << u << "<->" << v;  // reciprocal links
      prev = v;
    }
    EXPECT_EQ(adj.degree(u),
              adj.row_ptr[static_cast<std::size_t>(u) + 1] -
                  adj.row_ptr[static_cast<std::size_t>(u)]);
  }
}

TEST(NeighborCsrTest, HopCountsFromRejectsMismatchedAdjacency) {
  Topology a = make_line_topology(8, 12.0);
  Topology b = make_line_topology(9, 12.0);
  NeighborCsr adj = b.good_neighbors();
  EXPECT_THROW((void)a.hop_counts_from(0, adj), util::RequireError);
  EXPECT_THROW((void)a.hop_counts_from(-1, a.good_neighbors()),
               util::RequireError);
}

TEST(CampusTopology, IsDeterministicPerSeed) {
  Topology a = make_campus_topology(200, 5);
  Topology b = make_campus_topology(200, 5);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.position(i).x, b.position(i).x);
    EXPECT_DOUBLE_EQ(a.position(i).y, b.position(i).y);
    EXPECT_DOUBLE_EQ(a.gain_db(0, i), b.gain_db(0, i));
  }
  Topology c = make_campus_topology(200, 6);
  int same = 0;
  for (NodeId i = 0; i < a.size(); ++i)
    if (a.position(i).x == c.position(i).x) ++same;
  EXPECT_LT(same, a.size() / 10);  // different seed, different jitter
}

TEST(CampusTopology, ExactSizeIncludingNonSquareCounts) {
  for (int n : {2, 48, 200, 257, 1024}) {
    EXPECT_EQ(make_campus_topology(n).size(), n) << "n=" << n;
  }
  EXPECT_THROW((void)make_campus_topology(1), util::RequireError);
  EXPECT_THROW((void)make_campus_topology(0), util::RequireError);
}

TEST(CampusTopology, IsConnectedByConstruction) {
  // The factory's whole point: no placement-retry loop, yet every node is
  // reachable from the coordinator corner. Checked across sizes and seeds.
  for (int n : {48, 200, 513}) {
    for (std::uint64_t seed : {1ULL, 9ULL}) {
      Topology t = make_campus_topology(n, seed);
      auto hops = t.hop_counts(0);
      EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                              [](int h) { return h >= 0; }))
          << "n=" << n << " seed=" << seed;
    }
  }
  // Diameter grows with scale (sqrt(n) grid, multi-hop floods at 200+).
  Topology big = make_campus_topology(200);
  auto hops = big.hop_counts(0);
  EXPECT_GE(*std::max_element(hops.begin(), hops.end()), 3);
}

}  // namespace
}  // namespace dimmer::phy
