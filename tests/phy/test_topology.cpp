#include <gtest/gtest.h>

#include <algorithm>

#include "phy/topology.hpp"
#include "util/check.hpp"

namespace dimmer::phy {
namespace {

TEST(PathLossModel, GrowsWithDistance) {
  PathLossModel m;
  EXPECT_LT(m.path_loss_db(1.0), m.path_loss_db(10.0));
  EXPECT_LT(m.path_loss_db(10.0), m.path_loss_db(50.0));
}

TEST(PathLossModel, ClampsTinyDistances) {
  PathLossModel m;
  EXPECT_DOUBLE_EQ(m.path_loss_db(0.0), m.path_loss_db(m.min_distance_m));
}

TEST(RadioConstants, AirtimeMatches802154Bitrate) {
  RadioConstants r;
  // 36 bytes on air at 250 kbps = 36*8/250000 s = 1152 us.
  EXPECT_NEAR(r.airtime_us(30), 1152.0, 1e-9);
}

TEST(Topology, GainIsSymmetric) {
  Topology t = make_office18_topology();
  for (NodeId a = 0; a < t.size(); ++a)
    for (NodeId b = 0; b < t.size(); ++b)
      EXPECT_DOUBLE_EQ(t.gain_db(a, b), t.gain_db(b, a));
}

TEST(Topology, SameSeedSameGains) {
  Topology a = make_office18_topology(99);
  Topology b = make_office18_topology(99);
  for (NodeId i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.gain_db(0, i), b.gain_db(0, i));
}

TEST(Topology, DifferentSeedDifferentShadowing) {
  Topology a = make_office18_topology(1);
  Topology b = make_office18_topology(2);
  int same = 0;
  for (NodeId i = 1; i < a.size(); ++i)
    if (a.gain_db(0, i) == b.gain_db(0, i)) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Topology, RxPowerAddsTxPower) {
  Topology t = make_office18_topology();
  EXPECT_DOUBLE_EQ(t.rx_power_dbm(0, 1, 0.0) + 5.0, t.rx_power_dbm(0, 1, 5.0));
}

TEST(Topology, GainFromPointIsStablePerTag) {
  Topology t = make_office18_topology();
  Vec2 p{10.0, 5.0};
  EXPECT_DOUBLE_EQ(t.gain_from_point_db(p, 3, 7), t.gain_from_point_db(p, 3, 7));
  EXPECT_NE(t.gain_from_point_db(p, 3, 7), t.gain_from_point_db(p, 3, 8));
}

TEST(Topology, RejectsBadNodeIds) {
  Topology t = make_office18_topology();
#ifndef NDEBUG
  // Hot-path accessors validate bounds only in debug builds (DESIGN.md §10);
  // release builds rely on the flood-entry validation instead.
  EXPECT_THROW(t.gain_db(-1, 0), util::RequireError);
  EXPECT_THROW(t.gain_db(0, 18), util::RequireError);
#endif
  EXPECT_THROW(t.position(99), util::RequireError);
}

TEST(Topology, SinrThresholdMonotoneInTarget) {
  // A stricter PER target needs a higher SINR.
  EXPECT_GT(Topology::sinr_threshold_db(36, 0.01),
            Topology::sinr_threshold_db(36, 0.5));
}

TEST(LineTopology, HopCountsIncreaseAlongChain) {
  Topology t = make_line_topology(6, 12.0);
  auto hops = t.hop_counts(0);
  EXPECT_EQ(hops[0], 0);
  for (std::size_t i = 1; i < hops.size(); ++i) {
    EXPECT_GE(hops[i], 1);
    EXPECT_GE(hops[i] + 1, hops[i - 1]);  // non-teleporting chain
  }
  EXPECT_GT(hops.back(), 1);  // 60 m chain is multi-hop at 0 dBm
}

TEST(LineTopology, FarNodesUnreachableWithHugeSpacing) {
  Topology t = make_line_topology(3, 500.0);
  auto hops = t.hop_counts(0);
  EXPECT_EQ(hops[1], -1);
  EXPECT_EQ(hops[2], -1);
}

TEST(GridTopology, SizeAndConnectivity) {
  Topology t = make_grid_topology(3, 4, 8.0);
  EXPECT_EQ(t.size(), 12);
  auto hops = t.hop_counts(0);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
}

TEST(RandomTopology, IsConnectedFromNode0) {
  Topology t = make_random_topology(20, 60.0, 40.0, 5);
  EXPECT_EQ(t.size(), 20);
  auto hops = t.hop_counts(0);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
}

TEST(RandomTopology, ImpossibleBoxThrows) {
  EXPECT_THROW(make_random_topology(3, 5000.0, 5000.0, 1),
               util::RequireError);
}

TEST(Office18, MatchesPaperDeployment) {
  Topology t = make_office18_topology();
  EXPECT_EQ(t.size(), 18);
  auto hops = t.hop_counts(0);
  int diameter = *std::max_element(hops.begin(), hops.end());
  // "our 18-device, 3-hop deployment". hop_counts() uses a strict
  // 10%-PER link criterion; floods reach farther through coherent
  // combining, so the conservative graph diameter is 2-4.
  EXPECT_GE(diameter, 2);
  EXPECT_LE(diameter, 4);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
}

TEST(DCube48, FortyEightConnectedNodes) {
  Topology t = make_dcube48_topology();
  EXPECT_EQ(t.size(), 48);
  auto hops = t.hop_counts(0);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
  EXPECT_GE(*std::max_element(hops.begin(), hops.end()), 2);
}

// Property: in every factory topology, closer node pairs have (on average)
// higher gain than the farthest pairs, despite shadowing.
class TopologyDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopologyDistanceProperty, GainDecaysWithDistanceOnAverage) {
  Topology t = GetParam() == 0   ? make_office18_topology()
               : GetParam() == 1 ? make_dcube48_topology()
                                 : make_grid_topology(4, 5, 10.0);
  double near_acc = 0, far_acc = 0;
  int near_n = 0, far_n = 0;
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b = a + 1; b < t.size(); ++b) {
      double d = distance(t.position(a), t.position(b));
      if (d < 12.0) {
        near_acc += t.gain_db(a, b);
        ++near_n;
      } else if (d > 35.0) {
        far_acc += t.gain_db(a, b);
        ++far_n;
      }
    }
  }
  ASSERT_GT(near_n, 0);
  ASSERT_GT(far_n, 0);
  EXPECT_GT(near_acc / near_n, far_acc / far_n + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Factories, TopologyDistanceProperty,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace dimmer::phy
