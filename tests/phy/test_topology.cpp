#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "phy/topology.hpp"
#include "util/check.hpp"

namespace dimmer::phy {
namespace {

TEST(PathLossModel, GrowsWithDistance) {
  PathLossModel m;
  EXPECT_LT(m.path_loss_db(1.0), m.path_loss_db(10.0));
  EXPECT_LT(m.path_loss_db(10.0), m.path_loss_db(50.0));
}

TEST(PathLossModel, ClampsTinyDistances) {
  PathLossModel m;
  EXPECT_DOUBLE_EQ(m.path_loss_db(0.0), m.path_loss_db(m.min_distance_m));
}

TEST(RadioConstants, AirtimeMatches802154Bitrate) {
  RadioConstants r;
  // 36 bytes on air at 250 kbps = 36*8/250000 s = 1152 us.
  EXPECT_NEAR(r.airtime_us(30), 1152.0, 1e-9);
}

TEST(Topology, GainIsSymmetric) {
  Topology t = make_office18_topology();
  for (NodeId a = 0; a < t.size(); ++a)
    for (NodeId b = 0; b < t.size(); ++b)
      EXPECT_DOUBLE_EQ(t.gain_db(a, b), t.gain_db(b, a));
}

TEST(Topology, SameSeedSameGains) {
  Topology a = make_office18_topology(99);
  Topology b = make_office18_topology(99);
  for (NodeId i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.gain_db(0, i), b.gain_db(0, i));
}

TEST(Topology, DifferentSeedDifferentShadowing) {
  Topology a = make_office18_topology(1);
  Topology b = make_office18_topology(2);
  int same = 0;
  for (NodeId i = 1; i < a.size(); ++i)
    if (a.gain_db(0, i) == b.gain_db(0, i)) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Topology, RxPowerAddsTxPower) {
  Topology t = make_office18_topology();
  EXPECT_DOUBLE_EQ(t.rx_power_dbm(0, 1, 0.0) + 5.0, t.rx_power_dbm(0, 1, 5.0));
}

TEST(Topology, GainFromPointIsStablePerTag) {
  Topology t = make_office18_topology();
  Vec2 p{10.0, 5.0};
  EXPECT_DOUBLE_EQ(t.gain_from_point_db(p, 3, 7), t.gain_from_point_db(p, 3, 7));
  EXPECT_NE(t.gain_from_point_db(p, 3, 7), t.gain_from_point_db(p, 3, 8));
}

TEST(Topology, RejectsBadNodeIds) {
  Topology t = make_office18_topology();
#ifndef NDEBUG
  // Hot-path accessors validate bounds only in debug builds (DESIGN.md §10);
  // release builds rely on the flood-entry validation instead.
  EXPECT_THROW(t.gain_db(-1, 0), util::RequireError);
  EXPECT_THROW(t.gain_db(0, 18), util::RequireError);
#endif
  EXPECT_THROW(t.position(99), util::RequireError);
}

TEST(Topology, SinrThresholdMonotoneInTarget) {
  // A stricter PER target needs a higher SINR.
  EXPECT_GT(Topology::sinr_threshold_db(36, 0.01),
            Topology::sinr_threshold_db(36, 0.5));
}

TEST(LineTopology, HopCountsIncreaseAlongChain) {
  Topology t = make_line_topology(6, 12.0);
  auto hops = t.hop_counts(0);
  EXPECT_EQ(hops[0], 0);
  for (std::size_t i = 1; i < hops.size(); ++i) {
    EXPECT_GE(hops[i], 1);
    EXPECT_GE(hops[i] + 1, hops[i - 1]);  // non-teleporting chain
  }
  EXPECT_GT(hops.back(), 1);  // 60 m chain is multi-hop at 0 dBm
}

TEST(LineTopology, FarNodesUnreachableWithHugeSpacing) {
  Topology t = make_line_topology(3, 500.0);
  auto hops = t.hop_counts(0);
  EXPECT_EQ(hops[1], -1);
  EXPECT_EQ(hops[2], -1);
}

TEST(GridTopology, SizeAndConnectivity) {
  Topology t = make_grid_topology(3, 4, 8.0);
  EXPECT_EQ(t.size(), 12);
  auto hops = t.hop_counts(0);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
}

TEST(RandomTopology, IsConnectedFromNode0) {
  Topology t = make_random_topology(20, 60.0, 40.0, 5);
  EXPECT_EQ(t.size(), 20);
  auto hops = t.hop_counts(0);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
}

TEST(RandomTopology, ImpossibleBoxThrows) {
  EXPECT_THROW(make_random_topology(3, 5000.0, 5000.0, 1),
               util::RequireError);
}

TEST(Office18, MatchesPaperDeployment) {
  Topology t = make_office18_topology();
  EXPECT_EQ(t.size(), 18);
  auto hops = t.hop_counts(0);
  int diameter = *std::max_element(hops.begin(), hops.end());
  // "our 18-device, 3-hop deployment". hop_counts() uses a strict
  // 10%-PER link criterion; floods reach farther through coherent
  // combining, so the conservative graph diameter is 2-4.
  EXPECT_GE(diameter, 2);
  EXPECT_LE(diameter, 4);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
}

TEST(DCube48, FortyEightConnectedNodes) {
  Topology t = make_dcube48_topology();
  EXPECT_EQ(t.size(), 48);
  auto hops = t.hop_counts(0);
  EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                          [](int h) { return h >= 0; }));
  EXPECT_GE(*std::max_element(hops.begin(), hops.end()), 2);
}

// Property: in every factory topology, closer node pairs have (on average)
// higher gain than the farthest pairs, despite shadowing.
class TopologyDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopologyDistanceProperty, GainDecaysWithDistanceOnAverage) {
  Topology t = GetParam() == 0   ? make_office18_topology()
               : GetParam() == 1 ? make_dcube48_topology()
                                 : make_grid_topology(4, 5, 10.0);
  double near_acc = 0, far_acc = 0;
  int near_n = 0, far_n = 0;
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b = a + 1; b < t.size(); ++b) {
      double d = distance(t.position(a), t.position(b));
      if (d < 12.0) {
        near_acc += t.gain_db(a, b);
        ++near_n;
      } else if (d > 35.0) {
        far_acc += t.gain_db(a, b);
        ++far_n;
      }
    }
  }
  ASSERT_GT(near_n, 0);
  ASSERT_GT(far_n, 0);
  EXPECT_GT(near_acc / near_n, far_acc / far_n + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Factories, TopologyDistanceProperty,
                         ::testing::Values(0, 1, 2));

// ---- CSR adjacency + campus factory ------------------------------------

// The historical dense BFS, kept verbatim as the reference: scan all N
// candidate neighbors per dequeued node against the clean-SNR link
// predicate. hop_counts_from over good_neighbors must reproduce it exactly.
std::vector<int> dense_reference_hops(const Topology& t, NodeId root,
                                      int frame_bytes, double tx_power_dbm) {
  const double need_dbm =
      t.radio().noise_floor_dbm +
      Topology::sinr_threshold_db(frame_bytes, 0.1);
  std::vector<int> hops(static_cast<std::size_t>(t.size()), -1);
  std::vector<NodeId> queue;
  hops[static_cast<std::size_t>(root)] = 0;
  queue.push_back(root);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (NodeId v = 0; v < t.size(); ++v) {
      if (v == u || hops[static_cast<std::size_t>(v)] >= 0) continue;
      if (t.rx_power_dbm(u, v, tx_power_dbm) < need_dbm) continue;
      hops[static_cast<std::size_t>(v)] = hops[static_cast<std::size_t>(u)] + 1;
      queue.push_back(v);
    }
  }
  return hops;
}

TEST(NeighborCsrTest, HopCountsMatchDenseReferenceBfs) {
  const Topology topos[] = {make_line_topology(8, 12.0),
                            make_grid_topology(4, 4, 10.0),
                            make_office18_topology(), make_dcube48_topology(),
                            make_campus_topology(90)};
  for (const Topology& t : topos) {
    SCOPED_TRACE("n=" + std::to_string(t.size()));
    for (double power : {0.0, -7.0}) {
      NeighborCsr adj = t.good_neighbors(36, power);
      for (NodeId root : {0, t.size() / 2, t.size() - 1}) {
        EXPECT_EQ(t.hop_counts_from(root, adj),
                  dense_reference_hops(t, root, 36, power))
            << "root " << root << " power " << power;
        // The one-shot convenience must agree with the prebuilt-CSR path.
        EXPECT_EQ(t.hop_counts(root, 36, power),
                  t.hop_counts_from(root, adj));
      }
    }
  }
}

TEST(NeighborCsrTest, RowsAreAscendingSymmetricAndSelfFree) {
  Topology t = make_dcube48_topology();
  NeighborCsr adj = t.good_neighbors();
  ASSERT_EQ(adj.n, t.size());
  ASSERT_EQ(adj.row_ptr.size(), static_cast<std::size_t>(t.size()) + 1);
  EXPECT_EQ(adj.row_ptr.back(), adj.col.size());
  auto has_edge = [&](NodeId u, NodeId v) {
    for (std::size_t k = adj.row_ptr[static_cast<std::size_t>(u)];
         k < adj.row_ptr[static_cast<std::size_t>(u) + 1]; ++k)
      if (adj.col[k] == v) return true;
    return false;
  };
  for (NodeId u = 0; u < adj.n; ++u) {
    NodeId prev = -1;
    for (std::size_t k = adj.row_ptr[static_cast<std::size_t>(u)];
         k < adj.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      NodeId v = adj.col[k];
      EXPECT_NE(v, u);       // no self loops
      EXPECT_GT(v, prev);    // strictly ascending within the row
      EXPECT_TRUE(has_edge(v, u)) << u << "<->" << v;  // reciprocal links
      prev = v;
    }
    EXPECT_EQ(adj.degree(u),
              adj.row_ptr[static_cast<std::size_t>(u) + 1] -
                  adj.row_ptr[static_cast<std::size_t>(u)]);
  }
}

TEST(NeighborCsrTest, HopCountsFromRejectsMismatchedAdjacency) {
  Topology a = make_line_topology(8, 12.0);
  Topology b = make_line_topology(9, 12.0);
  NeighborCsr adj = b.good_neighbors();
  EXPECT_THROW((void)a.hop_counts_from(0, adj), util::RequireError);
  EXPECT_THROW((void)a.hop_counts_from(-1, a.good_neighbors()),
               util::RequireError);
}

TEST(CampusTopology, IsDeterministicPerSeed) {
  Topology a = make_campus_topology(200, 5);
  Topology b = make_campus_topology(200, 5);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.position(i).x, b.position(i).x);
    EXPECT_DOUBLE_EQ(a.position(i).y, b.position(i).y);
    EXPECT_DOUBLE_EQ(a.gain_db(0, i), b.gain_db(0, i));
  }
  Topology c = make_campus_topology(200, 6);
  int same = 0;
  for (NodeId i = 0; i < a.size(); ++i)
    if (a.position(i).x == c.position(i).x) ++same;
  EXPECT_LT(same, a.size() / 10);  // different seed, different jitter
}

TEST(CampusTopology, ExactSizeIncludingNonSquareCounts) {
  for (int n : {2, 48, 200, 257, 1024}) {
    EXPECT_EQ(make_campus_topology(n).size(), n) << "n=" << n;
  }
  EXPECT_THROW((void)make_campus_topology(1), util::RequireError);
  EXPECT_THROW((void)make_campus_topology(0), util::RequireError);
}

TEST(CampusTopology, IsConnectedByConstruction) {
  // The factory's whole point: no placement-retry loop, yet every node is
  // reachable from the coordinator corner. Checked across sizes and seeds.
  for (int n : {48, 200, 513}) {
    for (std::uint64_t seed : {1ULL, 9ULL}) {
      Topology t = make_campus_topology(n, seed);
      auto hops = t.hop_counts(0);
      EXPECT_TRUE(std::all_of(hops.begin(), hops.end(),
                              [](int h) { return h >= 0; }))
          << "n=" << n << " seed=" << seed;
    }
  }
  // Diameter grows with scale (sqrt(n) grid, multi-hop floods at 200+).
  Topology big = make_campus_topology(200);
  auto hops = big.hop_counts(0);
  EXPECT_GE(*std::max_element(hops.begin(), hops.end()), 3);
}

TEST(CulledTopology, SurvivorsBitIdenticalToDense) {
  const int n = 200;
  const std::uint64_t seed = 7;
  Topology dense = make_campus_topology(n, seed);
  const double floor_db = gain_cull_floor_db(dense.radio(), 10.0);
  Topology culled = make_campus_topology_culled(n, seed, floor_db);
  ASSERT_TRUE(culled.culled());
  ASSERT_FALSE(dense.culled());
  EXPECT_EQ(culled.gain_floor_db(), floor_db);
  std::size_t survivors = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      const double dg = dense.gain_db(a, b);
      const double cg = culled.gain_db(a, b);
      if (a == b || dg >= floor_db) {
        // Bitwise: same distance expression, same hashed shadowing draw.
        EXPECT_EQ(dg, cg) << "a=" << a << " b=" << b;
        ++survivors;
      } else {
        EXPECT_EQ(cg, -std::numeric_limits<double>::infinity())
            << "a=" << a << " b=" << b;
      }
    }
  }
  EXPECT_EQ(culled.gain_nnz(), survivors);
}

TEST(CulledTopology, StorageShrinksAtScale) {
  const int n = 512;
  Topology dense = make_campus_topology(n, 3);
  const double floor_db = gain_cull_floor_db(dense.radio(), 10.0);
  Topology culled = make_campus_topology_culled(n, 3, floor_db);
  EXPECT_EQ(dense.gain_nnz(), static_cast<std::size_t>(n) * n);
  EXPECT_EQ(dense.gain_storage_bytes(),
            static_cast<std::size_t>(n) * n * sizeof(double));
  EXPECT_LT(culled.gain_nnz(), dense.gain_nnz() / 2);
  EXPECT_LT(culled.gain_storage_bytes(), dense.gain_storage_bytes() / 2);
}

TEST(CulledTopology, MinusInfFloorKeepsEveryLink) {
  Topology dense = make_campus_topology(48, 5);
  Topology all = make_campus_topology_culled(
      48, 5, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(all.gain_nnz(), static_cast<std::size_t>(48) * 48);
  for (NodeId a = 0; a < 48; ++a)
    for (NodeId b = 0; b < 48; ++b)
      EXPECT_EQ(dense.gain_db(a, b), all.gain_db(a, b));
}

TEST(CulledTopology, RejectsNanFloor) {
  EXPECT_THROW((void)make_campus_topology_culled(
                   48, 1, std::numeric_limits<double>::quiet_NaN()),
               util::RequireError);
}

TEST(GainCullFloor, ConsistentWithSparseLinkModelCulling) {
  RadioConstants radio;
  // rx_power = tx_power + gain; a link culled at construction must satisfy
  // rx_power < noise_floor - margin for all tx_power <= max considered.
  const double floor_db = gain_cull_floor_db(radio, 12.0, 0.0);
  EXPECT_DOUBLE_EQ(floor_db, radio.noise_floor_dbm - 12.0);
  EXPECT_LT(gain_cull_floor_db(radio, 12.0, 5.0), floor_db);
}

TEST(RestrictedTopology, FullMembershipIsBitIdentical) {
  Topology t = make_campus_topology(64, 11);
  std::vector<NodeId> all(64);
  for (int i = 0; i < 64; ++i) all[static_cast<std::size_t>(i)] = i;
  Topology r = t.restricted(all);
  ASSERT_EQ(r.size(), t.size());
  Vec2 jam{20.0, 20.0};
  for (NodeId a = 0; a < 64; ++a) {
    EXPECT_EQ(r.parent_id(a), a);
    EXPECT_EQ(r.gain_from_point_db(jam, a, 42), t.gain_from_point_db(jam, a, 42));
    for (NodeId b = 0; b < 64; ++b) EXPECT_EQ(r.gain_db(a, b), t.gain_db(a, b));
  }
}

TEST(RestrictedTopology, SubsetPreservesPairwiseGainsAndParentIds) {
  Topology t = make_campus_topology(100, 13);
  std::vector<NodeId> members{3, 17, 18, 40, 77, 99};
  Topology r = t.restricted(members);
  ASSERT_EQ(r.size(), 6);
  Vec2 jam{0.0, 0.0};
  for (int i = 0; i < 6; ++i) {
    const NodeId g = members[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.parent_id(i), g);
    EXPECT_EQ(r.position(i).x, t.position(g).x);
    EXPECT_EQ(r.position(i).y, t.position(g).y);
    // External shadowing keys on the parent id: the restricted node hears
    // exactly what its global counterpart hears.
    EXPECT_EQ(r.gain_from_point_db(jam, i, 9), t.gain_from_point_db(jam, g, 9));
    for (int j = 0; j < 6; ++j)
      EXPECT_EQ(r.gain_db(i, j),
                t.gain_db(g, members[static_cast<std::size_t>(j)]));
  }
}

TEST(RestrictedTopology, NestedRestrictionComposesParentIds) {
  Topology t = make_campus_topology(100, 13);
  std::vector<NodeId> outer{3, 17, 18, 40, 77, 99};
  Topology r1 = t.restricted(outer);
  // Local ids 1,3,5 of r1 = parent ids 17, 40, 99.
  Topology r2 = r1.restricted({1, 3, 5});
  ASSERT_EQ(r2.size(), 3);
  EXPECT_EQ(r2.parent_id(0), 17);
  EXPECT_EQ(r2.parent_id(1), 40);
  EXPECT_EQ(r2.parent_id(2), 99);
  EXPECT_EQ(r2.gain_db(0, 2), t.gain_db(17, 99));
  Vec2 jam{50.0, 50.0};
  EXPECT_EQ(r2.gain_from_point_db(jam, 1, 7), t.gain_from_point_db(jam, 40, 7));
}

TEST(RestrictedTopology, CulledParentInheritsCullState) {
  Topology dense = make_campus_topology(200, 7);
  const double floor_db = gain_cull_floor_db(dense.radio(), 10.0);
  Topology culled = make_campus_topology_culled(200, 7, floor_db);
  std::vector<NodeId> members;
  for (NodeId i = 0; i < 200; i += 7) members.push_back(i);
  Topology r = culled.restricted(members);
  ASSERT_TRUE(r.culled());
  EXPECT_EQ(r.gain_floor_db(), floor_db);
  const int m = r.size();
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j)
      EXPECT_EQ(r.gain_db(i, j),
                culled.gain_db(members[static_cast<std::size_t>(i)],
                               members[static_cast<std::size_t>(j)]));
}

TEST(RestrictedTopology, RejectsBadMemberLists) {
  Topology t = make_campus_topology(48, 1);
  EXPECT_THROW((void)t.restricted({5}), util::RequireError);           // < 2
  EXPECT_THROW((void)t.restricted({5, 5}), util::RequireError);       // dup
  EXPECT_THROW((void)t.restricted({9, 5}), util::RequireError);       // order
  EXPECT_THROW((void)t.restricted({0, 48}), util::RequireError);      // range
  EXPECT_THROW((void)t.restricted({-1, 0}), util::RequireError);      // range
}

}  // namespace
}  // namespace dimmer::phy
