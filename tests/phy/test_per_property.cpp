// Property tests for frame_success_prob, pinning the two contracts the
// SIMD frame_success_kernel's branchless form leans on (DESIGN.md §12):
//
//  1. Monotonicity: with the jammed SINR no better than the clean SINR,
//     success probability is non-increasing in jam_fraction.
//  2. The jam_fraction == 0.0 / == 1.0 short-circuit returns are *bitwise*
//     equal to the general two-pow expression evaluated at those fractions
//     (bits * 0.0 == +0.0, std::pow(x, +0.0) == 1.0, p * 1.0 == p).
#include <gtest/gtest.h>

#include <cmath>

#include "phy/per.hpp"

namespace dimmer::phy {
namespace {

TEST(FrameSuccessProperty, MonotoneNonIncreasingInJamFraction) {
  for (double clean : {-2.0, 0.0, 2.0, 4.0, 8.0, 15.0}) {
    for (double delta : {0.5, 3.0, 10.0, 25.0}) {
      const double jammed = clean - delta;  // jamming never helps
      for (int bytes : {8, 36, 127}) {
        SCOPED_TRACE("clean=" + std::to_string(clean) +
                     " jammed=" + std::to_string(jammed) +
                     " bytes=" + std::to_string(bytes));
        double prev = 2.0;
        for (int i = 0; i <= 200; ++i) {
          const double f = i / 200.0;
          const double p = frame_success_prob(clean, jammed, f, bytes);
          EXPECT_LE(p, prev) << "jam_fraction=" << f;
          EXPECT_GE(p, 0.0);
          EXPECT_LE(p, 1.0);
          prev = p;
        }
      }
    }
  }
}

TEST(FrameSuccessProperty, EqualSinrsMakeExposureIrrelevant) {
  // With zero interference power the jammed SINR equals the clean SINR and
  // the exposure fraction must not matter: (1-b)^(B(1-f)) * (1-b)^(Bf) is
  // (1-b)^B for every f. Allow 1 ulp for the split-product rounding.
  for (double sinr : {-4.0, 1.0, 6.0}) {
    const double base = frame_success_prob(sinr, sinr, 0.0, 36);
    for (double f : {0.1, 0.5, 0.9}) {
      const double p = frame_success_prob(sinr, sinr, f, 36);
      EXPECT_NEAR(p, base, std::abs(base) * 1e-14 + 1e-300) << "f=" << f;
    }
  }
}

// The short-circuits must be invisible: evaluating the general expression at
// the boundary fractions gives the exact same bits the early returns give.
double general_form(double sinr_clean_db, double sinr_jammed_db,
                    double jam_fraction, int frame_bytes) {
  const double bits = 8.0 * frame_bytes;
  const double clean_bits = bits * (1.0 - jam_fraction);
  const double jam_bits = bits * jam_fraction;
  const double ber_clean = ber_802154(sinr_clean_db);
  const double ber_jam = ber_802154(sinr_jammed_db);
  return std::pow(1.0 - ber_clean, clean_bits) *
         std::pow(1.0 - ber_jam, jam_bits);
}

TEST(FrameSuccessProperty, ZeroFractionShortCircuitIsBitwiseContinuous) {
  for (double clean : {-6.0, -1.0, 0.0, 2.5, 7.0, 14.0}) {
    for (double jammed : {-20.0, -6.0, 2.5}) {
      for (int bytes : {1, 36, 127}) {
        EXPECT_EQ(frame_success_prob(clean, jammed, 0.0, bytes),
                  general_form(clean, jammed, 0.0, bytes))
            << "clean=" << clean << " jammed=" << jammed
            << " bytes=" << bytes;
      }
    }
  }
}

TEST(FrameSuccessProperty, FullFractionShortCircuitIsBitwiseContinuous) {
  for (double clean : {-6.0, 0.0, 7.0}) {
    for (double jammed : {-20.0, -6.0, 0.0, 7.0}) {
      for (int bytes : {1, 36, 127}) {
        EXPECT_EQ(frame_success_prob(clean, jammed, 1.0, bytes),
                  general_form(clean, jammed, 1.0, bytes))
            << "clean=" << clean << " jammed=" << jammed
            << " bytes=" << bytes;
      }
    }
  }
}

TEST(FrameSuccessProperty, ClampedFractionsHitTheSameShortCircuits) {
  // Out-of-range fractions clamp onto the boundaries, bitwise.
  EXPECT_EQ(frame_success_prob(5.0, -5.0, -3.0, 36),
            frame_success_prob(5.0, -5.0, 0.0, 36));
  EXPECT_EQ(frame_success_prob(5.0, -5.0, 2.0, 36),
            frame_success_prob(5.0, -5.0, 1.0, 36));
}

}  // namespace
}  // namespace dimmer::phy
