#include <gtest/gtest.h>

#include "phy/per.hpp"
#include "util/check.hpp"

namespace dimmer::phy {
namespace {

TEST(Ber, MonotonicallyDecreasingInSinr) {
  double prev = 1.0;
  for (double sinr = -10.0; sinr <= 15.0; sinr += 0.5) {
    double b = ber_802154(sinr);
    EXPECT_LE(b, prev + 1e-12) << "at SINR " << sinr;
    prev = b;
  }
}

TEST(Ber, Bounded) {
  EXPECT_LE(ber_802154(-40.0), 0.5);
  EXPECT_GE(ber_802154(-40.0), 0.0);
  EXPECT_NEAR(ber_802154(30.0), 0.0, 1e-12);
}

TEST(Per, HighSinrMeansReliableFrame) {
  EXPECT_LT(per_802154(10.0, 36), 1e-6);
}

TEST(Per, LowSinrMeansLostFrame) {
  EXPECT_GT(per_802154(-5.0, 36), 0.999);
}

TEST(Per, MonotoneInFrameLength) {
  // Longer frames expose more bits: PER grows with size at fixed SINR.
  double sinr = 1.5;
  double prev = 0.0;
  for (int bytes : {10, 20, 40, 80, 160}) {
    double p = per_802154(sinr, bytes);
    EXPECT_GE(p, prev) << "at " << bytes << " bytes";
    prev = p;
  }
}

TEST(Per, RejectsNonPositiveFrame) {
  EXPECT_THROW(per_802154(5.0, 0), util::RequireError);
  EXPECT_THROW(per_802154(5.0, -3), util::RequireError);
}

TEST(FrameSuccess, NoJamEqualsCleanPer) {
  double p = frame_success_prob(6.0, -10.0, 0.0, 36);
  EXPECT_NEAR(p, 1.0 - per_802154(6.0, 36), 1e-12);
}

TEST(FrameSuccess, FullJamEqualsJammedPer) {
  double p = frame_success_prob(6.0, -10.0, 1.0, 36);
  EXPECT_NEAR(p, 1.0 - per_802154(-10.0, 36), 1e-12);
}

TEST(FrameSuccess, MonotoneInExposure) {
  double prev = 1.1;
  for (double f = 0.0; f <= 1.0; f += 0.1) {
    double p = frame_success_prob(8.0, -5.0, f, 36);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(FrameSuccess, ClampsOutOfRangeExposure) {
  EXPECT_DOUBLE_EQ(frame_success_prob(8.0, -5.0, -0.5, 36),
                   frame_success_prob(8.0, -5.0, 0.0, 36));
  EXPECT_DOUBLE_EQ(frame_success_prob(8.0, -5.0, 1.5, 36),
                   frame_success_prob(8.0, -5.0, 1.0, 36));
}

// Property sweep: success probability is a valid probability everywhere.
class FrameSuccessSweep : public ::testing::TestWithParam<double> {};

TEST_P(FrameSuccessSweep, IsAProbability) {
  double sinr = GetParam();
  for (double jam_sinr : {-20.0, -5.0, 0.0, 5.0}) {
    for (double f : {0.0, 0.3, 0.7, 1.0}) {
      double p = frame_success_prob(sinr, jam_sinr, f, 36);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SinrRange, FrameSuccessSweep,
                         ::testing::Values(-15.0, -5.0, 0.0, 2.0, 5.0, 10.0,
                                           20.0));

}  // namespace
}  // namespace dimmer::phy
