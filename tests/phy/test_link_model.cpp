#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "flood/glossy.hpp"
#include "phy/link_model.hpp"
#include "phy/propagation.hpp"
#include "phy/topology.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/simd/simd.hpp"

namespace dimmer::phy {
namespace {

TEST(CachedLinkModel, EntriesMatchTopologyPerBackendContract) {
  Topology topo = make_office18_topology();
  CachedLinkModel model(topo);
  for (double power : {0.0, -7.0, 3.5}) {
    SCOPED_TRACE("tx_power_dbm " + std::to_string(power));
    LinkMatrixView v = model.prepare(power);
    ASSERT_EQ(v.n, topo.size());
    for (NodeId tx = 0; tx < topo.size(); ++tx) {
      for (NodeId rx = 0; rx < topo.size(); ++rx) {
        double want = dbm_to_mw(topo.rx_power_dbm(tx, rx, power));
        if (util::simd::native_width == 1) {
          // Scalar backend: bit-identity, not tolerance — the matrix must
          // hold the exact double the historical per-reception expression
          // produced (DESIGN.md §12).
          EXPECT_EQ(v.row(tx)[rx], want) << "tx=" << tx << " rx=" << rx;
        } else {
          // Vector backends rebuild rows through the bounded-ulp exp10
          // kernel; DESIGN.md §12 documents this site as tolerance-checked.
          EXPECT_NEAR(v.row(tx)[rx], want, std::abs(want) * 1e-13)
              << "tx=" << tx << " rx=" << rx;
        }
      }
    }
  }
}

TEST(CachedLinkModel, PrepareRejectsNonFiniteTxPower) {
  // Regression: prepare() cached the last power with `power != cached_`.
  // NaN != NaN is always true, so a NaN tx power rebuilt the O(n^2) matrix
  // on EVERY flood (and filled it with NaN mW). Non-finite powers now
  // REQUIRE-fail instead.
  Topology topo = make_line_topology(5, 10.0);
  CachedLinkModel model(topo);
  EXPECT_THROW(model.prepare(std::numeric_limits<double>::quiet_NaN()),
               util::RequireError);
  EXPECT_THROW(model.prepare(std::numeric_limits<double>::infinity()),
               util::RequireError);
  EXPECT_THROW(model.prepare(-std::numeric_limits<double>::infinity()),
               util::RequireError);
  EXPECT_EQ(model.rebuilds(), 0);  // rejected before touching the cache
}

TEST(CachedLinkModel, RebuildsStayFlatAcrossSamePowerFloods) {
  // The user-visible half of the NaN regression: repeated floods at one TX
  // power must hit the cache every time after the first build.
  Topology topo = make_office18_topology();
  InterferenceField field;
  CachedLinkModel model(topo);
  flood::GlossyFlood engine(model, field);
  std::vector<flood::NodeFloodConfig> cfgs(
      18, flood::NodeFloodConfig{2, true});
  util::Pcg32 rng(5);
  for (int i = 0; i < 8; ++i) {
    flood::FloodResult r = engine.run(0, cfgs, flood::FloodParams{}, rng);
    (void)r.receiver_count();
    EXPECT_EQ(model.rebuilds(), 1) << "flood " << i;
  }
}

TEST(CachedLinkModel, RebuildsOnlyOnPowerChange) {
  Topology topo = make_line_topology(5, 10.0);
  CachedLinkModel model(topo);
  EXPECT_EQ(model.rebuilds(), 0);

  model.prepare(0.0);
  EXPECT_EQ(model.rebuilds(), 1);
  model.prepare(0.0);
  model.prepare(0.0);
  EXPECT_EQ(model.rebuilds(), 1);  // cache hit

  model.prepare(-5.0);
  EXPECT_EQ(model.rebuilds(), 2);
  model.prepare(0.0);  // single-entry cache: going back recomputes
  EXPECT_EQ(model.rebuilds(), 3);
  model.prepare(0.0);
  EXPECT_EQ(model.rebuilds(), 3);
}

// A custom backend proving the seam: uniform link power everywhere except
// self-links, regardless of the underlying topology's path loss.
class UniformLinkModel final : public LinkModel {
 public:
  UniformLinkModel(const Topology& topo, double mw) : topo_(&topo) {
    const auto n = static_cast<std::size_t>(topo.size());
    mw_.assign(n * n, mw);
    for (std::size_t i = 0; i < n; ++i) mw_[i * n + i] = 0.0;
  }
  const Topology& topology() const override { return *topo_; }
  LinkMatrixView prepare(double) override {
    return LinkMatrixView{mw_.data(), topo_->size()};
  }

 private:
  const Topology* topo_;
  std::vector<double> mw_;
};

TEST(LinkModel, CustomBackendDrivesFloodEngine) {
  // A line topology whose ends cannot hear each other directly...
  Topology topo = make_line_topology(6, 40.0);
  InterferenceField field;

  // ...but with an artificial backend granting every pair a strong link,
  // everyone receives in one hop.
  UniformLinkModel strong(topo, dbm_to_mw(-40.0));
  flood::GlossyFlood engine(strong, field);
  std::vector<flood::NodeFloodConfig> cfgs(
      6, flood::NodeFloodConfig{2, true});
  util::Pcg32 rng(17);
  flood::FloodResult r = engine.run(0, cfgs, flood::FloodParams{}, rng);
  EXPECT_EQ(r.receiver_count(), 5);
  for (int i = 1; i < 6; ++i) {
    EXPECT_TRUE(r.nodes[static_cast<std::size_t>(i)].received);
    EXPECT_EQ(r.nodes[static_cast<std::size_t>(i)].first_rx_step, 0);
  }

  // With links below the noise floor, nobody receives anything.
  UniformLinkModel dead(topo, dbm_to_mw(-150.0));
  flood::GlossyFlood deaf_engine(dead, field);
  util::Pcg32 rng2(17);
  flood::FloodResult r2 = deaf_engine.run(0, cfgs, flood::FloodParams{}, rng2);
  EXPECT_EQ(r2.receiver_count(), 0);
}

TEST(LinkModel, OwningAndSeamConstructorsAgree) {
  Topology topo = make_office18_topology();
  InterferenceField field;
  CachedLinkModel model(topo);

  flood::GlossyFlood via_seam(model, field);
  flood::GlossyFlood owning(topo, field);

  std::vector<flood::NodeFloodConfig> cfgs(
      18, flood::NodeFloodConfig{3, true});
  util::Pcg32 ra(31), rb(31);
  flood::FloodResult a = via_seam.run(2, cfgs, flood::FloodParams{}, ra);
  flood::FloodResult b = owning.run(2, cfgs, flood::FloodParams{}, rb);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].received, b.nodes[i].received);
    EXPECT_EQ(a.nodes[i].first_rx_step, b.nodes[i].first_rx_step);
    EXPECT_EQ(a.nodes[i].radio_on_us, b.nodes[i].radio_on_us);
  }
  EXPECT_EQ(ra.next_u32(), rb.next_u32());
}

}  // namespace
}  // namespace dimmer::phy
