// SparseLinkModel unit + property suite (DESIGN.md §13).
//
// Three contracts are pinned here: (a) with culling disabled every CSR row is
// full and bitwise equal to the dense CachedLinkModel matrix, (b) with
// culling enabled the model drops exactly the links below the configured
// floor — survivors keep their dense bits — and (c) the culled power any
// listener could lose is provably bounded: each culled link sits below the
// floor, so the per-listener sum is below floor_mw * fan-in, which a
// Config::bounded_influence margin keeps under the noise floor itself.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "phy/link_model.hpp"
#include "phy/propagation.hpp"
#include "phy/sparse_link_model.hpp"
#include "phy/topology.hpp"
#include "util/check.hpp"

namespace dimmer::phy {
namespace {

TEST(SparseLinkModel, NoCullingRowsBitwiseMatchDense) {
  for (int which : {0, 1}) {
    Topology topo =
        which == 0 ? make_office18_topology() : make_dcube48_topology();
    SCOPED_TRACE(which == 0 ? "office18" : "dcube48");
    const int n = topo.size();
    const auto un = static_cast<std::size_t>(n);

    CachedLinkModel dense(topo);
    SparseLinkModel sparse(topo, SparseLinkModel::Config::no_culling());

    for (double power : {0.0, -7.0, 3.0}) {
      SCOPED_TRACE("tx_power_dbm " + std::to_string(power));
      LinkMatrixView want = dense.prepare(power);
      const SparseLinkView* got = sparse.prepare_sparse(power);
      ASSERT_NE(got, nullptr);
      ASSERT_EQ(got->n, n);
      ASSERT_EQ(got->nnz(), un * un);  // every link survives
      for (NodeId tx = 0; tx < n; ++tx) {
        const double* row = want.row(tx);
        const std::size_t begin = got->row_begin(tx);
        ASSERT_EQ(got->row_end(tx) - begin, un);
        for (NodeId rx = 0; rx < n; ++rx) {
          const std::size_t k = begin + static_cast<std::size_t>(rx);
          EXPECT_EQ(got->col[k], rx);  // full row, ascending listener ids
          // Exact bits, not NEAR: same rx_power_dbm expression through the
          // same dbm_to_mw_batch kernel.
          EXPECT_EQ(got->mw[k], row[rx]) << "tx " << tx << " rx " << rx;
        }
      }
    }
  }
}

TEST(SparseLinkModel, CullingDropsExactlySubFloorLinks) {
  // A 64-node line at 12 m pitch spans 756 m — far beyond the default
  // margin's reach — so the default config culls most pairs.
  Topology topo = make_line_topology(64, 12.0);
  const int n = topo.size();
  SparseLinkModel sparse(topo);
  CachedLinkModel dense(topo);

  const double power = 0.0;
  const SparseLinkView* view = sparse.prepare_sparse(power);
  LinkMatrixView want = dense.prepare(power);
  const double floor_dbm = sparse.cull_floor_dbm();
  EXPECT_EQ(floor_dbm, topo.radio().noise_floor_dbm - 20.0);

  ASSERT_LT(sparse.nnz(), static_cast<std::size_t>(n) * n / 4);
  ASSERT_GT(sparse.nnz(), 0u);

  for (NodeId tx = 0; tx < n; ++tx) {
    std::size_t k = view->row_begin(tx);
    const std::size_t end = view->row_end(tx);
    NodeId prev = -1;
    for (NodeId rx = 0; rx < n; ++rx) {
      const bool kept = k < end && view->col[k] == rx;
      if (topo.rx_power_dbm(tx, rx, power) >= floor_dbm) {
        ASSERT_TRUE(kept) << "survivor culled: tx " << tx << " rx " << rx;
        EXPECT_GT(view->col[k], prev);  // ascending within the row
        EXPECT_GT(view->mw[k], 0.0);
        EXPECT_EQ(view->mw[k], want.row(tx)[rx]);  // dense bits preserved
        prev = view->col[k];
        ++k;
      } else {
        ASSERT_FALSE(kept) << "sub-floor link kept: tx " << tx << " rx " << rx;
      }
    }
    EXPECT_EQ(k, end);  // no stray entries beyond the scanned listeners
  }
}

TEST(SparseLinkModel, CulledPowerIsBoundedBelowNoiseFloor) {
  // The property behind bounded_influence: with margin >= headroom +
  // 10*log10(n-1), the total mW a listener loses to culling — even if all
  // n-1 other nodes transmitted at once — stays at least `headroom` dB
  // under the noise floor's own contribution to SINR.
  const double headroom_db = 10.0;
  for (int which : {0, 1}) {
    Topology topo =
        which == 0 ? make_line_topology(256, 12.0) : make_dcube48_topology();
    SCOPED_TRACE(which == 0 ? "line256" : "dcube48");
    const int n = topo.size();
    SparseLinkModel sparse(
        topo, SparseLinkModel::Config::bounded_influence(n, headroom_db));
    CachedLinkModel dense(topo);

    const double power = 0.0;
    const SparseLinkView* view = sparse.prepare_sparse(power);
    LinkMatrixView full = dense.prepare(power);
    const double floor_mw = dbm_to_mw(sparse.cull_floor_dbm());
    const double noise_mw = dbm_to_mw(topo.radio().noise_floor_dbm);

    // The analytic bound itself: worst-case summed culled power < noise/10.
    ASSERT_LE(floor_mw * (n - 1),
              noise_mw * std::pow(10.0, -headroom_db / 10.0) * (1 + 1e-12));

    std::vector<double> culled_sum(static_cast<std::size_t>(n), 0.0);
    for (NodeId tx = 0; tx < n; ++tx) {
      std::size_t k = view->row_begin(tx);
      const std::size_t end = view->row_end(tx);
      for (NodeId rx = 0; rx < n; ++rx) {
        if (k < end && view->col[k] == rx) {
          ++k;  // survivor
          continue;
        }
        const double lost = full.row(tx)[rx];
        EXPECT_LT(lost, floor_mw);  // every culled link sits below the floor
        culled_sum[static_cast<std::size_t>(rx)] += lost;
      }
    }
    for (NodeId rx = 0; rx < n; ++rx) {
      EXPECT_LE(culled_sum[static_cast<std::size_t>(rx)],
                floor_mw * (n - 1) * (1 + 1e-12));
      EXPECT_LT(culled_sum[static_cast<std::size_t>(rx)], noise_mw);
    }
  }
}

TEST(SparseLinkModel, DenseFallbackMatchesCsrScatter) {
  Topology topo = make_line_topology(48, 12.0);
  const int n = topo.size();
  SparseLinkModel sparse(topo);
  CachedLinkModel dense(topo);

  LinkMatrixView got = sparse.prepare(0.0);
  LinkMatrixView want = dense.prepare(0.0);
  const double floor_dbm = sparse.cull_floor_dbm();
  ASSERT_EQ(got.n, n);
  for (NodeId tx = 0; tx < n; ++tx) {
    for (NodeId rx = 0; rx < n; ++rx) {
      if (topo.rx_power_dbm(tx, rx, 0.0) >= floor_dbm) {
        EXPECT_EQ(got.row(tx)[rx], want.row(tx)[rx]);
      } else {
        EXPECT_EQ(got.row(tx)[rx], 0.0);  // culled entries read as exact zero
      }
    }
  }
}

TEST(SparseLinkModel, CachesByPreparedPower) {
  Topology topo = make_office18_topology();
  SparseLinkModel sparse(topo, SparseLinkModel::Config::no_culling());
  EXPECT_EQ(sparse.rebuilds(), 0);
  (void)sparse.prepare_sparse(0.0);
  (void)sparse.prepare_sparse(0.0);
  EXPECT_EQ(sparse.rebuilds(), 1);
  (void)sparse.prepare_sparse(-7.0);
  EXPECT_EQ(sparse.rebuilds(), 2);
  (void)sparse.prepare_sparse(0.0);  // cache keys on the last power only
  EXPECT_EQ(sparse.rebuilds(), 3);
  (void)sparse.prepare_sparse(0.0);
  EXPECT_EQ(sparse.rebuilds(), 3);
}

TEST(SparseLinkModel, RejectsNonFinitePowerWithoutRebuilding) {
  Topology topo = make_office18_topology();
  SparseLinkModel sparse(topo);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)sparse.prepare_sparse(nan), util::RequireError);
  EXPECT_THROW((void)sparse.prepare_sparse(inf), util::RequireError);
  EXPECT_THROW((void)sparse.prepare_sparse(-inf), util::RequireError);
  EXPECT_THROW((void)sparse.prepare(nan), util::RequireError);
  EXPECT_EQ(sparse.rebuilds(), 0);
}

TEST(SparseLinkModel, RejectsNonPositiveCullMargin) {
  Topology topo = make_office18_topology();
  SparseLinkModel::Config cfg;
  cfg.cull_margin_db = 0.0;
  EXPECT_THROW(SparseLinkModel(topo, cfg), util::RequireError);
  cfg.cull_margin_db = -5.0;
  EXPECT_THROW(SparseLinkModel(topo, cfg), util::RequireError);
  cfg.cull_margin_db = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(SparseLinkModel(topo, cfg), util::RequireError);
}

TEST(SparseLinkModel, BoundedInfluenceMarginGrowsWithScale) {
  const double m48 = SparseLinkModel::Config::bounded_influence(48).cull_margin_db;
  const double m2048 =
      SparseLinkModel::Config::bounded_influence(2048).cull_margin_db;
  EXPECT_NEAR(m48, 10.0 + 10.0 * std::log10(47.0), 1e-12);
  EXPECT_NEAR(m2048, 10.0 + 10.0 * std::log10(2047.0), 1e-12);
  EXPECT_GT(m2048, m48);
  EXPECT_THROW(SparseLinkModel::Config::bounded_influence(1),
               util::RequireError);
  EXPECT_THROW(SparseLinkModel::Config::bounded_influence(48, -1.0),
               util::RequireError);
}

TEST(SparseLinkModel, StorageScalesWithSurvivorsNotNodes) {
  // On a long line the CSR holds a thin band around the diagonal; the dense
  // matrix would hold 8*N^2 bytes regardless.
  Topology topo = make_line_topology(256, 12.0);
  const auto un = static_cast<std::size_t>(topo.size());
  SparseLinkModel sparse(topo);
  (void)sparse.prepare_sparse(0.0);
  EXPECT_GT(sparse.nnz(), 0u);
  EXPECT_LT(sparse.nnz(), un * un / 8);
  EXPECT_LT(sparse.storage_bytes(), sizeof(double) * un * un / 4);
}

}  // namespace
}  // namespace dimmer::phy
