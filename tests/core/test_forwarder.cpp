#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "core/forwarder.hpp"

namespace dimmer::core {
namespace {

TEST(ForwarderSelection, StartsAllActive) {
  ForwarderSelection fs(18, 0, ForwarderConfig{});
  EXPECT_EQ(fs.active_count(), 18);
  for (bool r : fs.roles()) EXPECT_TRUE(r);
}

TEST(ForwarderSelection, TurnsLastTenRounds) {
  ForwarderConfig cfg;
  cfg.rounds_per_turn = 10;
  ForwarderSelection fs(6, 0, cfg);
  util::Pcg32 rng(1);
  fs.begin_round(rng);
  phy::NodeId first = fs.current_learner();
  for (int r = 0; r < 9; ++r) {
    fs.end_round(1.0);
    fs.begin_round(rng);
    EXPECT_EQ(fs.current_learner(), first) << "turn changed early at " << r;
  }
  fs.end_round(1.0);
  fs.begin_round(rng);
  EXPECT_NE(fs.current_learner(), first);
  fs.end_round(1.0);
}

TEST(ForwarderSelection, CoordinatorNeverLearns) {
  ForwarderConfig cfg;
  cfg.rounds_per_turn = 1;
  ForwarderSelection fs(5, 2, cfg);
  util::Pcg32 rng(2);
  for (int r = 0; r < 40; ++r) {
    fs.begin_round(rng);
    EXPECT_NE(fs.current_learner(), 2);
    fs.end_round(1.0);
    EXPECT_TRUE(fs.roles()[2]);
  }
}

TEST(ForwarderSelection, EveryNodeGetsATurnPerEpoch) {
  ForwarderConfig cfg;
  cfg.rounds_per_turn = 1;
  ForwarderSelection fs(8, 0, cfg);
  util::Pcg32 rng(3);
  std::set<phy::NodeId> learners;
  for (int r = 0; r < 7; ++r) {
    fs.begin_round(rng);
    learners.insert(fs.current_learner());
    fs.end_round(1.0);
  }
  EXPECT_EQ(learners.size(), 7u);
  EXPECT_EQ(fs.epoch(), 0u);
  fs.begin_round(rng);
  fs.end_round(1.0);
  EXPECT_EQ(fs.epoch(), 1u);  // reshuffled into the next epoch
}

TEST(ForwarderSelection, LearnersEventuallyTryPassivity) {
  ForwarderSelection fs(10, 0, ForwarderConfig{});
  util::Pcg32 rng(4);
  int passive_seen = 0;
  for (int r = 0; r < 400; ++r) {
    fs.begin_round(rng);
    if (!fs.roles()[fs.current_learner()]) ++passive_seen;
    fs.end_round(1.0);  // lossless: passivity is rewarded
  }
  EXPECT_GT(passive_seen, 50);
  // With consistently lossless rounds, some nodes settle passive.
  EXPECT_LT(fs.active_count(), 10);
}

TEST(ForwarderSelection, BreakingRoundResetsLearnersPassiveArm) {
  ForwarderConfig cfg;
  cfg.breaking_reliability = 0.9;
  ForwarderSelection fs(4, 0, cfg);
  util::Pcg32 rng(5);
  // Drive the learner into passivity, then break the network.
  for (int r = 0; r < 200; ++r) {
    fs.begin_round(rng);
    phy::NodeId learner = fs.current_learner();
    bool passive = !fs.roles()[learner];
    fs.end_round(passive ? 0.5 : 1.0);  // passivity breaks the network
    if (passive) {
      // Punished: back to forwarding, weights reinitialised.
      EXPECT_TRUE(fs.roles()[learner]);
      EXPECT_DOUBLE_EQ(fs.bandit(learner).weights()[1], 1.0);
    }
  }
  EXPECT_EQ(fs.active_count(), 4);  // nobody stays passive when it breaks
}

TEST(ForwarderSelection, NetworkWideBreakingPenalty) {
  ForwarderSelection fs(6, 0, ForwarderConfig{});
  util::Pcg32 rng(6);
  // Let some nodes go passive first.
  for (int r = 0; r < 300; ++r) {
    fs.begin_round(rng);
    fs.end_round(1.0);
  }
  ASSERT_LT(fs.active_count(), 6);
  std::vector<double> views(6, 0.5);  // everyone observed a broken round
  fs.apply_breaking_penalty(views);
  EXPECT_EQ(fs.active_count(), 6);
}

TEST(ForwarderSelection, BreakingPenaltySparesHealthyObservers) {
  ForwarderSelection fs(6, 0, ForwarderConfig{});
  util::Pcg32 rng(7);
  for (int r = 0; r < 300; ++r) {
    fs.begin_round(rng);
    fs.end_round(1.0);
  }
  int active_before = fs.active_count();
  ASSERT_LT(active_before, 6);
  std::vector<double> views(6, 1.0);  // everyone saw a clean round
  fs.apply_breaking_penalty(views);
  EXPECT_EQ(fs.active_count(), active_before);
}

TEST(ForwarderSelection, DeterministicOrderPerSeed) {
  ForwarderConfig cfg;
  cfg.rounds_per_turn = 1;
  ForwarderSelection a(8, 0, cfg), b(8, 0, cfg);
  util::Pcg32 ra(9), rb(9);
  for (int r = 0; r < 20; ++r) {
    a.begin_round(ra);
    b.begin_round(rb);
    EXPECT_EQ(a.current_learner(), b.current_learner());
    a.end_round(1.0);
    b.end_round(1.0);
  }
}

TEST(ForwarderSelection, RejectsBadUsage) {
  EXPECT_THROW(ForwarderSelection(1, 0, ForwarderConfig{}),
               util::RequireError);
  EXPECT_THROW(ForwarderSelection(5, 9, ForwarderConfig{}),
               util::RequireError);
  ForwarderSelection fs(4, 0, ForwarderConfig{});
  EXPECT_THROW(fs.end_round(1.0), util::RequireError);  // no begin
  util::Pcg32 rng(1);
  fs.begin_round(rng);
  EXPECT_THROW(fs.begin_round(rng), util::RequireError);  // double begin
  EXPECT_THROW(fs.apply_breaking_penalty({1.0}), util::RequireError);
}

}  // namespace
}  // namespace dimmer::core
