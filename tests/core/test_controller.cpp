#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "core/controller.hpp"

namespace dimmer::core {
namespace {

TEST(ApplyAction, MovesByOneStep) {
  EXPECT_EQ(apply_action(3, AdaptAction::kDecrease), 2);
  EXPECT_EQ(apply_action(3, AdaptAction::kMaintain), 3);
  EXPECT_EQ(apply_action(3, AdaptAction::kIncrease), 4);
}

TEST(ApplyAction, ClampsToValidRange) {
  EXPECT_EQ(apply_action(1, AdaptAction::kDecrease), 1);  // never 0 globally
  EXPECT_EQ(apply_action(8, AdaptAction::kIncrease), 8);
  EXPECT_EQ(apply_action(5, AdaptAction::kIncrease, 5), 5);
}

TEST(StaticController, AlwaysReturnsConfiguredValue) {
  StaticController c(3);
  GlobalSnapshot snap(4);
  EXPECT_EQ(c.decide(snap, true, 7), 3);
  EXPECT_EQ(c.decide(snap, false, 1), 3);
  EXPECT_STREQ(c.name(), "static");
}

TEST(StaticController, RejectsOutOfRange) {
  EXPECT_THROW(StaticController(0), util::RequireError);
  EXPECT_THROW(StaticController(9), util::RequireError);
}

rl::QuantizedMlp make_policy(std::uint64_t seed = 1) {
  FeatureBuilder fb((FeatureConfig()));
  return rl::QuantizedMlp(rl::Mlp({fb.input_size(), 30, 3}, seed));
}

GlobalSnapshot snapshot18() {
  GlobalSnapshot snap(18);
  snap.current_round = 2;
  for (auto& e : snap.entries) {
    e.reliability = 1.0;
    e.radio_on_ms = 8.0;
    e.round = 2;
    e.ever_heard = true;
  }
  return snap;
}

TEST(DqnController, OutputAlwaysInValidRange) {
  DqnController c(make_policy(), FeatureConfig{});
  GlobalSnapshot snap = snapshot18();
  int n = 3;
  for (int r = 0; r < 50; ++r) {
    n = c.decide(snap, r % 3 != 0, n);
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 8);
  }
}

TEST(DqnController, MovesAtMostOneStepPerRound) {
  DqnController c(make_policy(2), FeatureConfig{});
  GlobalSnapshot snap = snapshot18();
  int n = 4;
  for (int r = 0; r < 30; ++r) {
    int next = c.decide(snap, true, n);
    EXPECT_LE(std::abs(next - n), 1);
    n = next;
  }
}

TEST(DqnController, FeatureVectorExposedForDiagnostics) {
  FeatureConfig cfg;
  DqnController c(make_policy(3), cfg);
  GlobalSnapshot snap = snapshot18();
  c.decide(snap, true, 3);
  EXPECT_EQ(static_cast<int>(c.last_features().size()),
            FeatureBuilder(cfg).input_size());
}

TEST(DqnController, HistoryEntersTheFeatures) {
  FeatureConfig cfg;  // M = 2
  DqnController c(make_policy(4), cfg);
  GlobalSnapshot snap = snapshot18();
  c.decide(snap, false, 3);
  // Most recent history bit (position 29) reflects the lossy round.
  EXPECT_DOUBLE_EQ(c.last_features()[29], -1.0);
  c.decide(snap, true, 3);
  EXPECT_DOUBLE_EQ(c.last_features()[29], 1.0);
  EXPECT_DOUBLE_EQ(c.last_features()[30], -1.0);  // shifted
}

TEST(DqnController, RejectsShapeMismatch) {
  FeatureConfig cfg;
  cfg.k = 5;  // input 21, policy expects 31
  EXPECT_THROW(DqnController(make_policy(), cfg), util::RequireError);
  // Wrong output arity.
  rl::QuantizedMlp bad(rl::Mlp({31, 30, 4}, 1));
  EXPECT_THROW(DqnController(std::move(bad), FeatureConfig{}),
               util::RequireError);
}

}  // namespace
}  // namespace dimmer::core
