#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "core/scenarios.hpp"
#include "core/trace_env.hpp"
#include "phy/topology.hpp"

namespace dimmer::core {
namespace {

TraceDataset small_dataset(std::size_t steps = 40, std::uint64_t seed = 3) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  add_static_jamming(field, topo, 0.15);
  TraceCollectionConfig tc;
  tc.steps = steps;
  tc.seed = seed;
  return collect_traces(topo, field, tc);
}

TEST(TraceCollection, ShapesAreComplete) {
  TraceDataset ds = small_dataset(10);
  EXPECT_EQ(ds.size(), 10u);
  EXPECT_EQ(ds.n_nodes(), 18);
  EXPECT_DOUBLE_EQ(ds.slot_ms(), 20.0);
  for (std::size_t s = 0; s < ds.size(); ++s) {
    for (int n = 1; n <= kNMax; ++n) {
      const TraceOutcome& o = ds.step(s).at(n);
      EXPECT_EQ(o.reliability.size(), 18u);
      EXPECT_EQ(o.radio_on_ms.size(), 18u);
      EXPECT_EQ(o.fresh.size(), 18u);
      EXPECT_GE(o.true_reliability, 0.0f);
      EXPECT_LE(o.true_reliability, 1.0f);
      EXPECT_GT(o.true_radio_on_ms, 0.0f);
    }
  }
}

TEST(TraceCollection, HigherNCostsMoreEnergyOnAverage) {
  TraceDataset ds = small_dataset(30);
  double r1 = 0, r8 = 0;
  for (std::size_t s = 0; s < ds.size(); ++s) {
    r1 += ds.step(s).at(1).true_radio_on_ms;
    r8 += ds.step(s).at(8).true_radio_on_ms;
  }
  EXPECT_GT(r8, r1 * 1.5);
}

TEST(TraceCollection, HigherNIsMoreReliableUnderJamming) {
  TraceDataset ds = small_dataset(50);
  double d1 = 0, d8 = 0;
  for (std::size_t s = 0; s < ds.size(); ++s) {
    d1 += ds.step(s).at(1).true_reliability;
    d8 += ds.step(s).at(8).true_reliability;
  }
  EXPECT_GT(d8, d1);
}

TEST(TraceDatasetIo, SaveLoadRoundTrip) {
  TraceDataset ds = small_dataset(8);
  std::string path = ::testing::TempDir() + "dimmer_trace_test.txt";
  ds.save(path);
  TraceDataset loaded = TraceDataset::load(path);
  ASSERT_EQ(loaded.size(), ds.size());
  EXPECT_EQ(loaded.n_nodes(), ds.n_nodes());
  for (std::size_t s = 0; s < ds.size(); ++s) {
    for (int n = 1; n <= kNMax; ++n) {
      const TraceOutcome& a = ds.step(s).at(n);
      const TraceOutcome& b = loaded.step(s).at(n);
      EXPECT_EQ(a.true_lossless, b.true_lossless);
      EXPECT_FLOAT_EQ(a.true_reliability, b.true_reliability);
      for (int i = 0; i < 18; ++i) {
        EXPECT_FLOAT_EQ(a.reliability[i], b.reliability[i]);
        EXPECT_EQ(a.fresh[i], b.fresh[i]);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TraceDatasetIo, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "dimmer_trace_bad.txt";
  {
    std::ofstream os(path);
    os << "wrong-magic 9\n";
  }
  EXPECT_THROW(TraceDataset::load(path), util::RequireError);
  std::remove(path.c_str());
  EXPECT_THROW(TraceDataset::load("/does/not/exist"), util::RequireError);
}

TEST(TraceEnv, ResetAndEpisodeLength) {
  TraceDataset ds = small_dataset(30);
  TraceEnv::Config cfg;
  cfg.episode_len = 5;
  TraceEnv env(ds, cfg);
  util::Pcg32 rng(1);
  std::vector<double> s = env.reset(rng);
  EXPECT_EQ(static_cast<int>(s.size()), env.state_size());
  int steps = 0;
  for (;;) {
    auto sr = env.step(1);  // maintain
    ++steps;
    if (sr.done) break;
  }
  EXPECT_EQ(steps, 5);
}

TEST(TraceEnv, ActionSemantics) {
  TraceDataset ds = small_dataset(30);
  TraceEnv env(ds, TraceEnv::Config{});
  util::Pcg32 rng(2);
  env.reset(rng);
  int n0 = env.current_n_tx();
  env.step(2);  // increase
  EXPECT_EQ(env.current_n_tx(), std::min(n0 + 1, kNMax));
  env.step(0);  // decrease
  EXPECT_EQ(env.current_n_tx(), std::max(1, std::min(n0 + 1, kNMax) - 1));
}

TEST(TraceEnv, NeverLeavesValidRange) {
  TraceDataset ds = small_dataset(60);
  TraceEnv env(ds, TraceEnv::Config{});
  util::Pcg32 rng(3);
  env.reset(rng);
  for (int t = 0; t < 40; ++t) {
    auto sr = env.step(0);  // hammer decrease
    EXPECT_GE(env.current_n_tx(), 1);
    if (sr.done) env.reset(rng);
  }
}

TEST(TraceEnv, RewardFollowsEq3) {
  TraceDataset ds = small_dataset(30);
  TraceEnv env(ds, TraceEnv::Config{});
  util::Pcg32 rng(4);
  env.reset(rng);
  for (int t = 0; t < 20; ++t) {
    auto sr = env.step(1);
    const TraceOutcome& o = env.current_outcome();
    double expect = o.true_lossless
                        ? 1.0 - 0.3 * env.current_n_tx() / 8.0
                        : 0.0;
    EXPECT_DOUBLE_EQ(sr.reward, expect);
    if (sr.done) env.reset(rng);
  }
}

TEST(TraceEnv, PerValueActionSpace) {
  TraceDataset ds = small_dataset(30);
  TraceEnv::Config cfg;
  cfg.action_per_value = true;
  TraceEnv env(ds, cfg);
  EXPECT_EQ(env.action_count(), 8);
  util::Pcg32 rng(5);
  env.reset(rng);
  env.step(4);
  EXPECT_EQ(env.current_n_tx(), 5);  // action k selects N_TX = k + 1
  env.step(0);
  EXPECT_EQ(env.current_n_tx(), 1);
}

TEST(TraceEnv, RejectsInvalidAction) {
  TraceDataset ds = small_dataset(10);
  TraceEnv env(ds, TraceEnv::Config{});
  util::Pcg32 rng(6);
  env.reset(rng);
  EXPECT_THROW(env.step(3), util::RequireError);
  EXPECT_THROW(env.step(-1), util::RequireError);
}

TEST(Trainer, ShortTrainingProducesValidPolicy) {
  TraceDataset ds = small_dataset(40);
  TraceEnv::Config env_cfg;
  TrainerConfig tr;
  tr.total_steps = 1500;
  tr.dqn.epsilon_anneal_steps = 800;
  rl::Mlp net = train_dqn_on_traces(ds, env_cfg, tr);
  EXPECT_EQ(net.input_size(), 31);
  EXPECT_EQ(net.output_size(), 3);
}

TEST(Trainer, PerValueAblationChangesOutputArity) {
  TraceDataset ds = small_dataset(40);
  TraceEnv::Config env_cfg;
  env_cfg.action_per_value = true;
  TrainerConfig tr;
  tr.total_steps = 800;
  rl::Mlp net = train_dqn_on_traces(ds, env_cfg, tr);
  EXPECT_EQ(net.output_size(), 8);
}

TEST(Evaluation, ProducesSaneAggregates) {
  TraceDataset ds = small_dataset(40);
  TraceEnv::Config env_cfg;
  rl::QuantizedMlp policy(rl::Mlp({31, 30, 3}, 4));
  PolicyEvaluation ev = evaluate_policy(ds, policy, env_cfg, 5, 9);
  EXPECT_GE(ev.avg_reliability, 0.0);
  EXPECT_LE(ev.avg_reliability, 1.0);
  EXPECT_GE(ev.avg_n_tx, 1.0);
  EXPECT_LE(ev.avg_n_tx, 8.0);
  EXPECT_GE(ev.avg_radio_on_ms, 0.0);
  EXPECT_LE(ev.avg_radio_on_ms, 20.0);
  EXPECT_GE(ev.loss_rate, 0.0);
  EXPECT_LE(ev.loss_rate, 1.0);
}

}  // namespace
}  // namespace dimmer::core
