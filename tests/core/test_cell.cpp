#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cell.hpp"
#include "core/protocol.hpp"
#include "obs/trace.hpp"
#include "phy/topology.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dimmer::core {
namespace {

std::vector<phy::NodeId> all_sources(int n) {
  std::vector<phy::NodeId> s;
  for (int i = 1; i < n; ++i) s.push_back(i);
  s.push_back(0);
  return s;
}

std::vector<phy::NodeId> iota_members(int n) {
  std::vector<phy::NodeId> m(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) m[static_cast<std::size_t>(i)] = i;
  return m;
}

CellConfig full_cell_config(int n) {
  CellConfig cc;
  cc.cell_id = 0;
  cc.members = iota_members(n);
  cc.coordinator = 0;
  return cc;
}

/// The tentpole identity proof: a Cell covering ALL nodes must be
/// bit-identical to a bare DimmerNetwork over the global topology — same
/// RoundStats, same per-node per-slot FloodResults, same RNG end-state.
TEST(Cell, FullMembershipBitIdenticalToBareNetwork) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  const std::uint64_t seed = 17;

  ProtocolConfig cfg;
  cfg.failover.backups = {1, 2};
  DimmerNetwork bare(topo, field, cfg, std::make_unique<StaticController>(3),
                     0, seed);

  CellConfig cc = full_cell_config(18);
  cc.protocol = cfg;
  Cell cell(topo, field, cc, std::make_unique<StaticController>(3), seed);

  const std::vector<phy::NodeId> sources = all_sources(18);
  for (int r = 0; r < 6; ++r) {
    RoundStats a = bare.run_round(sources);
    const RoundStats& b = cell.run_round(sources);
    ASSERT_EQ(a.reliability, b.reliability) << "round " << r;
    ASSERT_EQ(a.lossless, b.lossless);
    ASSERT_EQ(a.radio_on_ms, b.radio_on_ms);
    ASSERT_EQ(a.total_radio_on_us, b.total_radio_on_us);
    ASSERT_EQ(a.n_tx, b.n_tx);
    ASSERT_EQ(a.desynchronized, b.desynchronized);
    ASSERT_EQ(a.sink_received, b.sink_received);

    // Per-slot, per-node flood outcomes, bit for bit.
    const lwb::RoundResult& ra = bare.last_round_result();
    const lwb::RoundResult& rb = cell.network().last_round_result();
    ASSERT_EQ(ra.data.size(), rb.data.size());
    for (std::size_t k = 0; k < ra.data.size(); ++k) {
      const flood::FloodResult& fa = ra.data[k].flood;
      const flood::FloodResult& fb = rb.data[k].flood;
      ASSERT_EQ(fa.steps_simulated, fb.steps_simulated);
      ASSERT_EQ(fa.nodes.size(), fb.nodes.size());
      for (std::size_t i = 0; i < fa.nodes.size(); ++i) {
        ASSERT_EQ(fa.nodes[i].received, fb.nodes[i].received);
        ASSERT_EQ(fa.nodes[i].first_rx_step, fb.nodes[i].first_rx_step);
        ASSERT_EQ(fa.nodes[i].transmissions, fb.nodes[i].transmissions);
        ASSERT_EQ(fa.nodes[i].radio_on_us, fb.nodes[i].radio_on_us);
      }
    }
  }

  // RNG end-state: equal future draws == every in-simulation draw matched.
  util::Pcg32 ra = bare.rng();
  util::Pcg32 rb = cell.network().rng();
  for (int i = 0; i < 16; ++i) ASSERT_EQ(ra.next_u64(), rb.next_u64());
}

TEST(Cell, RemapsIdsBothWays) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  CellConfig cc;
  cc.cell_id = 4;
  cc.members = {3, 7, 20, 21, 40};
  cc.coordinator = 7;
  Cell cell(topo, field, cc, std::make_unique<StaticController>(3), 1);

  EXPECT_EQ(cell.id(), 4);
  EXPECT_EQ(cell.size(), 5);
  EXPECT_EQ(cell.to_local(3), 0);
  EXPECT_EQ(cell.to_local(40), 4);
  EXPECT_EQ(cell.to_global(2), 20);
  EXPECT_TRUE(cell.is_member(21));
  EXPECT_FALSE(cell.is_member(22));
  EXPECT_FALSE(cell.is_member(-1));
  EXPECT_THROW((void)cell.to_local(22), util::RequireError);
  EXPECT_THROW((void)cell.to_global(5), util::RequireError);
  // The coordinator was remapped into local id space.
  EXPECT_EQ(cell.network().coordinator(), 1);
  EXPECT_EQ(cell.topology().parent_id(1), 7);
}

TEST(Cell, RemapsSinkAndBackupsFromGlobalIds) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  CellConfig cc;
  cc.members = {3, 7, 20, 21, 40};
  cc.coordinator = 7;
  cc.protocol.sink = 40;
  cc.protocol.failover.backups = {20, 21};
  Cell cell(topo, field, cc, std::make_unique<StaticController>(3), 1);
  EXPECT_EQ(cell.network().sink(), 4);
  EXPECT_EQ(cell.network().config().failover.backups,
            (std::vector<phy::NodeId>{2, 3}));
}

TEST(Cell, RejectsNonMemberCoordinatorOrSink) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  CellConfig cc;
  cc.members = {3, 7, 20};
  cc.coordinator = 8;  // not a member
  EXPECT_THROW(Cell(topo, field, cc, std::make_unique<StaticController>(3), 1),
               util::RequireError);
  cc.coordinator = 7;
  cc.protocol.sink = 9;  // not a member
  EXPECT_THROW(Cell(topo, field, cc, std::make_unique<StaticController>(3), 1),
               util::RequireError);
}

TEST(Cell, TracesCarryCellTag) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  CellConfig cc = full_cell_config(18);
  cc.cell_id = 7;
  Cell cell(topo, field, cc, std::make_unique<StaticController>(3), 1);

  obs::RingBufferSink sink(256);
  cell.set_instrumentation(obs::Instrumentation{&sink, nullptr});
  (void)cell.run_round(all_sources(18));

  ASSERT_GT(sink.size(), 0u);
  for (const obs::TraceEvent& e : sink.events()) {
    bool tagged = false;
    for (const auto& t : e.tags)
      if (t.first == "cell" && t.second == "7") tagged = true;
    EXPECT_TRUE(tagged) << "untagged event kind=" << e.kind;
  }
}

/// A sparse-links Cell covering all nodes must be bit-identical to a bare
/// DimmerNetwork bound to a SparseLinkModel over the global topology: the
/// identity restriction copies every gain bit-for-bit, so both CSR builds
/// cull exactly the same links.
TEST(Cell, SparseLinksFullMembershipBitIdenticalToBareSparseNetwork) {
  phy::Topology topo = phy::make_campus_topology(48, 5);
  phy::InterferenceField field;
  const std::vector<phy::NodeId> sources = all_sources(48);
  const std::uint64_t seed = 9;

  phy::SparseLinkModel links(topo);  // default 20 dB culling margin
  DimmerNetwork bare(links, field, ProtocolConfig{},
                     std::make_unique<StaticController>(3), 0, seed);

  CellConfig cc = full_cell_config(48);
  cc.sparse_links = true;
  Cell cell(topo, field, cc, std::make_unique<StaticController>(3), seed);

  for (int r = 0; r < 4; ++r) {
    const RoundStats a = bare.run_round(sources);
    const RoundStats& b = cell.run_round(sources);
    ASSERT_EQ(a.reliability, b.reliability) << "round " << r;
    ASSERT_EQ(a.total_radio_on_us, b.total_radio_on_us);
    ASSERT_EQ(a.sink_received, b.sink_received);
  }
  util::Pcg32 ra = bare.rng();
  util::Pcg32 rb = cell.network().rng();
  for (int i = 0; i < 16; ++i) ASSERT_EQ(ra.next_u64(), rb.next_u64());
}

}  // namespace
}  // namespace dimmer::core
