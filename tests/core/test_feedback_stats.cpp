#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "core/feedback.hpp"
#include "core/stats_collector.hpp"

namespace dimmer::core {
namespace {

TEST(FeedbackCodec, TwoBytesOnTheWire) {
  EXPECT_EQ(kFeedbackHeaderBytes, 2);
  EXPECT_EQ(sizeof(FeedbackHeader), 2u);
}

TEST(FeedbackCodec, RoundTripWithinQuantization) {
  for (double rel : {0.0, 0.25, 0.5, 0.973, 1.0}) {
    for (double radio : {0.0, 3.7, 12.3, 20.0}) {
      FeedbackHeader h = encode_feedback(rel, radio, 20.0);
      EXPECT_NEAR(decode_reliability(h), rel, 0.5 / 255.0 + 1e-12);
      EXPECT_NEAR(decode_radio_on_ms(h, 20.0), radio, 20.0 * 0.5 / 255.0 + 1e-12);
    }
  }
}

TEST(FeedbackCodec, ClampsOutOfRange) {
  FeedbackHeader h = encode_feedback(1.7, 35.0, 20.0);
  EXPECT_DOUBLE_EQ(decode_reliability(h), 1.0);
  EXPECT_DOUBLE_EQ(decode_radio_on_ms(h, 20.0), 20.0);
  FeedbackHeader lo = encode_feedback(-0.3, -5.0, 20.0);
  EXPECT_DOUBLE_EQ(decode_reliability(lo), 0.0);
  EXPECT_DOUBLE_EQ(decode_radio_on_ms(lo, 20.0), 0.0);
}

TEST(FeedbackCodec, ExtremesAreExact) {
  FeedbackHeader full = encode_feedback(1.0, 20.0, 20.0);
  EXPECT_EQ(full.reliability_q, 255);
  EXPECT_EQ(full.radio_on_q, 255);
  FeedbackHeader empty = encode_feedback(0.0, 0.0, 20.0);
  EXPECT_EQ(empty.reliability_q, 0);
  EXPECT_EQ(empty.radio_on_q, 0);
}

TEST(FeedbackCodec, RejectsNonPositiveSlot) {
  EXPECT_THROW(encode_feedback(1.0, 5.0, 0.0), util::RequireError);
}

TEST(StatsCollector, FreshCollectorIsOptimistic) {
  StatsCollector s;
  EXPECT_DOUBLE_EQ(s.reliability(), 1.0);
  EXPECT_DOUBLE_EQ(s.radio_on_ms(), 0.0);
}

TEST(StatsCollector, PrrCountsOnlyReceptionSlots) {
  StatsCollector s(10, 20.0, 10);
  s.record_reception_slot(true, sim::ms(8));
  s.record_reception_slot(false, sim::ms(20));
  s.record_energy_only_slot(sim::ms(18));  // own TX slot: energy only
  EXPECT_DOUBLE_EQ(s.reliability(), 0.5);
  EXPECT_EQ(s.reception_slots_seen(), 2u);
}

TEST(StatsCollector, RadioAveragesAllSlots) {
  StatsCollector s(10, 20.0, 10);
  s.record_reception_slot(true, sim::ms(10));
  s.record_energy_only_slot(sim::ms(20));
  EXPECT_DOUBLE_EQ(s.radio_on_ms(), 15.0);
}

TEST(StatsCollector, SlidingWindowForgetsOldLosses) {
  StatsCollector s(4, 20.0, 4);
  s.record_reception_slot(false, sim::ms(20));
  for (int i = 0; i < 4; ++i) s.record_reception_slot(true, sim::ms(8));
  EXPECT_DOUBLE_EQ(s.reliability(), 1.0);  // the loss rolled out
}

TEST(StatsCollector, SeparateWindowsForPrrAndRadio) {
  // PRR window 4, radio window 2: the radio average must react faster.
  StatsCollector s(4, 20.0, 2);
  s.record_reception_slot(true, sim::ms(20));
  s.record_reception_slot(true, sim::ms(20));
  s.record_reception_slot(true, sim::ms(4));
  s.record_reception_slot(true, sim::ms(4));
  EXPECT_DOUBLE_EQ(s.radio_on_ms(), 4.0);  // only the last two slots
  EXPECT_DOUBLE_EQ(s.reliability(), 1.0);
}

TEST(StatsCollector, SnapshotQuantizesThroughWireFormat) {
  StatsCollector s(8, 20.0, 8);
  for (int i = 0; i < 3; ++i) s.record_reception_slot(true, sim::ms(7));
  s.record_reception_slot(false, sim::ms(20));
  FeedbackHeader h = s.snapshot();
  EXPECT_NEAR(decode_reliability(h), 0.75, 1.0 / 255.0);
  EXPECT_NEAR(decode_radio_on_ms(h, 20.0), 10.25, 20.0 / 255.0);
}

TEST(StatsCollector, ResetClearsEverything) {
  StatsCollector s;
  s.record_reception_slot(false, sim::ms(20));
  s.reset();
  EXPECT_DOUBLE_EQ(s.reliability(), 1.0);
  EXPECT_DOUBLE_EQ(s.radio_on_ms(), 0.0);
  EXPECT_EQ(s.reception_slots_seen(), 0u);
}

}  // namespace
}  // namespace dimmer::core
