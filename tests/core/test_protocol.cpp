#include <gtest/gtest.h>

#include <memory>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "phy/topology.hpp"

namespace dimmer::core {
namespace {

std::vector<phy::NodeId> all_sources(int n) {
  std::vector<phy::NodeId> s;
  for (int i = 1; i < n; ++i) s.push_back(i);
  s.push_back(0);
  return s;
}

TEST(DimmerNetwork, CleanNetworkIsLossless) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  ProtocolConfig cfg;
  DimmerNetwork net(topo, field, cfg, std::make_unique<StaticController>(3),
                    0, 1);
  RoundStats rs = net.run_round(all_sources(18));
  EXPECT_TRUE(rs.lossless);
  EXPECT_DOUBLE_EQ(rs.reliability, 1.0);
  EXPECT_TRUE(rs.coordinator_lossless);
  EXPECT_GT(rs.radio_on_ms, 1.0);
  EXPECT_LT(rs.radio_on_ms, 20.0);
  EXPECT_EQ(rs.n_tx, 3);
  EXPECT_EQ(rs.desynchronized, 0);
}

TEST(DimmerNetwork, TimeAdvancesByRoundPeriod) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  ProtocolConfig cfg;
  cfg.round_period = sim::seconds(4);
  cfg.start_time = sim::hours(1);
  DimmerNetwork net(topo, field, cfg, std::make_unique<StaticController>(3),
                    0, 1);
  EXPECT_EQ(net.now(), sim::hours(1));
  net.run_round(all_sources(18));
  EXPECT_EQ(net.now(), sim::hours(1) + sim::seconds(4));
  EXPECT_EQ(net.round_index(), 1u);
}

TEST(DimmerNetwork, SnapshotsTurnFreshAfterARound) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  DimmerNetwork net(topo, field, ProtocolConfig{},
                    std::make_unique<StaticController>(3), 0, 2);
  net.run_round(all_sources(18));
  const GlobalSnapshot& snap = net.snapshot(0);
  int fresh = 0;
  for (int i = 0; i < 18; ++i) fresh += snap.fresh(i);
  EXPECT_EQ(fresh, 18);  // all headers heard on a clean network
}

TEST(DimmerNetwork, ControllerDrivesCommandedParameter) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  DimmerNetwork net(topo, field, ProtocolConfig{},
                    std::make_unique<StaticController>(6), 0, 3);
  EXPECT_EQ(net.commanded_n_tx(), 3);  // initial_n_tx until first decision
  net.run_round(all_sources(18));
  EXPECT_EQ(net.commanded_n_tx(), 6);
}

TEST(DimmerNetwork, SinkReceptionTracksDataSlots) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  DimmerNetwork net(topo, field, ProtocolConfig{},
                    std::make_unique<StaticController>(3), 0, 4);
  RoundStats rs = net.run_round({5, 9});
  ASSERT_EQ(rs.sink_received.size(), 2u);
  EXPECT_TRUE(rs.sink_received[0]);
  EXPECT_TRUE(rs.sink_received[1]);
  EXPECT_EQ(net.sink(), 0);  // defaults to the coordinator
}

TEST(DimmerNetwork, ExplicitSink) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  ProtocolConfig cfg;
  cfg.sink = 7;
  DimmerNetwork net(topo, field, cfg, std::make_unique<StaticController>(3),
                    0, 4);
  EXPECT_EQ(net.sink(), 7);
}

TEST(DimmerNetwork, HeavyJammingBreaksLossless) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  add_static_jamming(field, topo, 0.35);
  DimmerNetwork net(topo, field, ProtocolConfig{},
                    std::make_unique<StaticController>(1), 0, 5);
  int lossy = 0;
  for (int r = 0; r < 20; ++r) {
    RoundStats rs = net.run_round(all_sources(18));
    if (!rs.lossless) ++lossy;
    EXPECT_LE(rs.reliability, 1.0);
  }
  EXPECT_GT(lossy, 15);
}

TEST(DimmerNetwork, DeterministicGivenSeed) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  add_static_jamming(field, topo, 0.2);
  auto run = [&](std::uint64_t seed) {
    DimmerNetwork net(topo, field, ProtocolConfig{},
                      std::make_unique<StaticController>(3), 0, seed);
    std::vector<double> rels;
    for (int r = 0; r < 10; ++r)
      rels.push_back(net.run_round(all_sources(18)).reliability);
    return rels;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(DimmerNetwork, FeedbackSubsetIsHonoured) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  ProtocolConfig cfg;
  cfg.feedback_nodes = {0, 1, 2};
  DimmerNetwork net(topo, field, cfg, std::make_unique<StaticController>(3),
                    0, 6);
  net.run_round(all_sources(18));
  const GlobalSnapshot& snap = net.snapshot(0);
  EXPECT_TRUE(snap.entries[1].accounted);
  EXPECT_FALSE(snap.entries[5].accounted);
}

TEST(DimmerNetwork, MabRoundsOnlyAfterCalmPeriod) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  ProtocolConfig cfg;
  cfg.forwarder_selection = true;
  cfg.mab_calm_rounds = 2;
  DimmerNetwork net(topo, field, cfg, std::make_unique<StaticController>(3),
                    0, 7);
  RoundStats r0 = net.run_round(all_sources(18));
  EXPECT_FALSE(r0.mab_round);  // calm counter still 0
  net.run_round(all_sources(18));
  RoundStats r2 = net.run_round(all_sources(18));
  EXPECT_TRUE(r2.mab_round);  // two clean rounds passed
}

TEST(DimmerNetwork, MabEveryRoundWhenCalmGateIsZero) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  ProtocolConfig cfg;
  cfg.forwarder_selection = true;
  cfg.mab_calm_rounds = 0;
  DimmerNetwork net(topo, field, cfg, std::make_unique<StaticController>(3),
                    0, 8);
  EXPECT_TRUE(net.run_round(all_sources(18)).mab_round);
  EXPECT_NE(net.forwarder_selection(), nullptr);
}

TEST(DimmerNetwork, ForwarderRolesReduceActiveCountOverTime) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  ProtocolConfig cfg;
  cfg.forwarder_selection = true;
  cfg.mab_calm_rounds = 0;
  cfg.start_time = sim::hours(23);  // quiet night
  DimmerNetwork net(topo, field, cfg, std::make_unique<StaticController>(3),
                    0, 9);
  int min_active = 18;
  for (int r = 0; r < 500; ++r) {
    RoundStats rs = net.run_round(all_sources(18));
    min_active = std::min(min_active, rs.active_forwarders);
  }
  EXPECT_LT(min_active, 18);
}

TEST(DimmerNetwork, RejectsBadConfig) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  ProtocolConfig bad;
  bad.initial_n_tx = 0;
  EXPECT_THROW(DimmerNetwork(topo, field, bad,
                             std::make_unique<StaticController>(3), 0, 1),
               util::RequireError);
  ProtocolConfig cfg;
  EXPECT_THROW(
      DimmerNetwork(topo, field, cfg, nullptr, 0, 1), util::RequireError);
  EXPECT_THROW(DimmerNetwork(topo, field, cfg,
                             std::make_unique<StaticController>(3), 99, 1),
               util::RequireError);
  ProtocolConfig bad_sink;
  bad_sink.sink = 99;
  EXPECT_THROW(DimmerNetwork(topo, field, bad_sink,
                             std::make_unique<StaticController>(3), 0, 1),
               util::RequireError);
}

TEST(DimmerNetwork, TotalRadioAccountingIsConsistent) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  DimmerNetwork net(topo, field, ProtocolConfig{},
                    std::make_unique<StaticController>(3), 0, 10);
  RoundStats rs = net.run_round(all_sources(18));
  EXPECT_GT(rs.total_radio_on_us, 0);
  // Total <= nodes * slots * slot_len.
  EXPECT_LE(rs.total_radio_on_us, 18LL * 19 * sim::ms(20));
}

}  // namespace
}  // namespace dimmer::core
