#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/pretrained.hpp"
#include "core/trace_env.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dimmer::core {
namespace {

TEST(Pretrained, LoadsMatchingCachedPolicyWithoutTraining) {
  // A cached file with the right shape must be returned verbatim — no
  // trace collection, no training (this test would take minutes otherwise).
  std::string path = ::testing::TempDir() + "dimmer_cached_policy.mlp";
  rl::Mlp original({31, 30, 3}, 77);
  {
    std::ofstream os(path);
    original.save(os);
  }
  PretrainedOptions opt;
  rl::Mlp loaded = load_or_train_policy(path, opt, nullptr);
  std::vector<double> x(31, 0.25);
  EXPECT_EQ(loaded.forward(x), original.forward(x));
  std::remove(path.c_str());
}

TEST(Pretrained, CorruptCacheFallsBackToRetraining) {
  // A damaged cache file (torn write, disk corruption) must never abort the
  // pipeline: load_or_train_policy logs, retrains, and overwrites the cache.
  // Tiny budgets keep the retrain path fast enough for a unit test.
  std::string path = ::testing::TempDir() + "dimmer_corrupt_policy.mlp";
  {
    std::ofstream os(path);
    os << "dimmer-mlp 1\n2\n31 30 1\n0.5 0.5\n";  // truncated mid-stream
  }
  PretrainedOptions opt;
  opt.trace_steps = 40;
  opt.train_steps = 200;
  opt.candidates = 1;
  opt.validation_steps = 30;
  std::ostringstream log;
  rl::Mlp policy = load_or_train_policy(path, opt, &log);
  EXPECT_EQ(policy.input_size(), FeatureBuilder(opt.features).input_size());
  EXPECT_NE(log.str().find("retraining"), std::string::npos) << log.str();
  // The rewritten cache is valid now: a second call loads it directly.
  std::ostringstream relog;
  rl::Mlp reloaded = load_or_train_policy(path, opt, &relog);
  EXPECT_EQ(relog.str().find("retraining"), std::string::npos) << relog.str();
  std::vector<double> x(static_cast<std::size_t>(policy.input_size()), 0.25);
  EXPECT_EQ(reloaded.forward(x), policy.forward(x));
  std::remove(path.c_str());
}

TEST(Pretrained, DefaultsMatchThePaper) {
  PretrainedOptions opt;
  EXPECT_EQ(opt.train_steps, 200000u);  // "200 000 iterations"
  EXPECT_EQ(opt.features.k, 10);
  EXPECT_EQ(opt.features.history, 2);
  EXPECT_EQ(opt.round_period, sim::seconds(4));
}

TEST(TabularDiscretizer, StateCountAndBounds) {
  TabularDiscretizer disc;
  EXPECT_EQ(disc.n_states(), 4u * 3 * 9 * 2);
  FeatureBuilder fb(disc.features);
  util::Pcg32 rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    GlobalSnapshot snap(18);
    snap.current_round = 1;
    for (auto& e : snap.entries) {
      e.reliability = rng.uniform();
      e.radio_on_ms = rng.uniform(0.0, 20.0);
      e.round = 1;
      e.ever_heard = true;
    }
    std::deque<bool> hist = {rng.bernoulli(0.5)};
    auto x = fb.build(snap, rng.uniform_int(0, 8), hist);
    EXPECT_LT(disc.state(x), disc.n_states());
  }
}

TEST(TabularDiscretizer, SeparatesTheAxesItEncodes) {
  TabularDiscretizer disc;
  FeatureBuilder fb(disc.features);
  auto make = [&](double rel, double radio, int n, bool lossless) {
    GlobalSnapshot snap(18);
    snap.current_round = 1;
    for (auto& e : snap.entries) {
      e.reliability = rel;
      e.radio_on_ms = radio;
      e.round = 1;
      e.ever_heard = true;
    }
    std::deque<bool> hist = {lossless};
    return disc.state(fb.build(snap, n, hist));
  };
  EXPECT_NE(make(1.0, 8.0, 3, true), make(0.3, 8.0, 3, true));   // reliability
  EXPECT_NE(make(1.0, 2.0, 3, true), make(1.0, 19.0, 3, true));  // radio
  EXPECT_NE(make(1.0, 8.0, 3, true), make(1.0, 8.0, 7, true));   // N_TX
  EXPECT_NE(make(1.0, 8.0, 3, true), make(1.0, 8.0, 3, false));  // history
}

TEST(TabularDiscretizer, RejectsWrongVectorSize) {
  TabularDiscretizer disc;
  EXPECT_THROW(disc.state(std::vector<double>(7, 0.0)), util::RequireError);
}

}  // namespace
}  // namespace dimmer::core
