#include <gtest/gtest.h>

#include <deque>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "core/features.hpp"

namespace dimmer::core {
namespace {

GlobalSnapshot healthy_snapshot(int n, std::uint64_t round = 3) {
  GlobalSnapshot snap(n);
  snap.current_round = round;
  for (int i = 0; i < n; ++i) {
    auto& e = snap.entries[static_cast<std::size_t>(i)];
    e.reliability = 1.0;
    e.radio_on_ms = 7.5;
    e.round = round;
    e.ever_heard = true;
  }
  return snap;
}

TEST(FeatureBuilder, PaperInputSizeIs31) {
  FeatureBuilder fb(FeatureConfig{});  // K=10, M=2, N_max=8
  EXPECT_EQ(fb.input_size(), 31);
}

TEST(FeatureBuilder, SizeFormulaHolds) {
  for (int k : {1, 5, 18}) {
    for (int m : {0, 2, 4}) {
      FeatureConfig cfg;
      cfg.k = k;
      cfg.history = m;
      EXPECT_EQ(FeatureBuilder(cfg).input_size(), 2 * k + 9 + m);
    }
  }
}

TEST(FeatureBuilder, NormalizationEndpoints) {
  // Table I: radio [0, 20 ms] -> [-1, 1].
  EXPECT_DOUBLE_EQ(FeatureBuilder::normalize_radio_on(0.0, 20.0), -1.0);
  EXPECT_DOUBLE_EQ(FeatureBuilder::normalize_radio_on(10.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(FeatureBuilder::normalize_radio_on(20.0, 20.0), 1.0);
  EXPECT_DOUBLE_EQ(FeatureBuilder::normalize_radio_on(25.0, 20.0), 1.0);
  // Reliability [50, 100%] -> [-1, 1]; "below 50% [reads] -1".
  EXPECT_DOUBLE_EQ(FeatureBuilder::normalize_reliability(1.0), 1.0);
  EXPECT_DOUBLE_EQ(FeatureBuilder::normalize_reliability(0.75), 0.0);
  EXPECT_DOUBLE_EQ(FeatureBuilder::normalize_reliability(0.5), -1.0);
  EXPECT_DOUBLE_EQ(FeatureBuilder::normalize_reliability(0.2), -1.0);
}

TEST(FeatureBuilder, SelectsLowestReliabilityNodes) {
  FeatureConfig cfg;
  cfg.k = 2;
  FeatureBuilder fb(cfg);
  GlobalSnapshot snap = healthy_snapshot(6);
  snap.entries[3].reliability = 0.6;
  snap.entries[5].reliability = 0.8;
  std::deque<bool> hist;
  auto x = fb.build(snap, 3, hist);
  // Reliability rows are at positions [k, 2k): worst first.
  EXPECT_DOUBLE_EQ(x[2], FeatureBuilder::normalize_reliability(0.6));
  EXPECT_DOUBLE_EQ(x[3], FeatureBuilder::normalize_reliability(0.8));
}

TEST(FeatureBuilder, StaleFeedbackIsPessimistic) {
  FeatureConfig cfg;
  cfg.k = 1;
  FeatureBuilder fb(cfg);
  GlobalSnapshot snap = healthy_snapshot(4, /*round=*/10);
  snap.entries[2].round = 8;  // stale (freshness window = 1 round)
  std::deque<bool> hist;
  auto x = fb.build(snap, 3, hist);
  EXPECT_DOUBLE_EQ(x[0], 1.0);   // radio pessimistic: 20 ms -> +1
  EXPECT_DOUBLE_EQ(x[1], -1.0);  // reliability pessimistic: 0% -> -1
}

TEST(FeatureBuilder, FreshnessWindowWidens) {
  FeatureConfig cfg;
  cfg.k = 1;
  FeatureBuilder fb(cfg);
  GlobalSnapshot snap = healthy_snapshot(4, 10);
  snap.freshness_rounds = 3;
  snap.entries[2].round = 8;  // within 3 rounds: still fresh
  std::deque<bool> hist;
  auto x = fb.build(snap, 3, hist);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST(FeatureBuilder, NeverHeardIsPessimistic) {
  FeatureConfig cfg;
  cfg.k = 1;
  FeatureBuilder fb(cfg);
  GlobalSnapshot snap = healthy_snapshot(3);
  snap.entries[1].ever_heard = false;
  std::deque<bool> hist;
  auto x = fb.build(snap, 3, hist);
  EXPECT_DOUBLE_EQ(x[1], -1.0);
}

TEST(FeatureBuilder, UnaccountedNodesAreSkipped) {
  FeatureConfig cfg;
  cfg.k = 2;
  FeatureBuilder fb(cfg);
  GlobalSnapshot snap = healthy_snapshot(5);
  snap.entries[0].reliability = 0.1;   // terrible, but unaccounted
  snap.entries[0].accounted = false;
  snap.entries[4].reliability = 0.9;
  std::deque<bool> hist;
  auto x = fb.build(snap, 3, hist);
  // Worst accounted node is 4 at 0.9; node 0 must not appear.
  EXPECT_DOUBLE_EQ(x[2], FeatureBuilder::normalize_reliability(0.9));
  EXPECT_DOUBLE_EQ(x[3], FeatureBuilder::normalize_reliability(1.0));
}

TEST(FeatureBuilder, CyclicPaddingRepeatsWorstRows) {
  FeatureConfig cfg;
  cfg.k = 5;
  FeatureBuilder fb(cfg);
  GlobalSnapshot snap = healthy_snapshot(2);
  snap.entries[1].reliability = 0.7;
  std::deque<bool> hist;
  auto x = fb.build(snap, 3, hist);
  // Two real rows (0.7 then 1.0), repeated cyclically: 0.7 1.0 0.7 1.0 0.7.
  double lo = FeatureBuilder::normalize_reliability(0.7);
  EXPECT_DOUBLE_EQ(x[5], lo);
  EXPECT_DOUBLE_EQ(x[6], 1.0);
  EXPECT_DOUBLE_EQ(x[7], lo);
  EXPECT_DOUBLE_EQ(x[8], 1.0);
  EXPECT_DOUBLE_EQ(x[9], lo);
}

TEST(FeatureBuilder, OneHotEncodesCurrentN) {
  FeatureBuilder fb(FeatureConfig{});
  GlobalSnapshot snap = healthy_snapshot(18);
  std::deque<bool> hist;
  for (int n = 0; n <= 8; ++n) {
    auto x = fb.build(snap, n, hist);
    for (int v = 0; v <= 8; ++v)
      EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(20 + v)],
                       v == n ? 1.0 : 0.0);
  }
}

TEST(FeatureBuilder, HistoryBitsAndColdStart) {
  FeatureBuilder fb(FeatureConfig{});  // M = 2
  GlobalSnapshot snap = healthy_snapshot(18);
  std::deque<bool> hist = {false};  // one round known, losses
  auto x = fb.build(snap, 3, hist);
  EXPECT_DOUBLE_EQ(x[29], -1.0);  // most recent round had losses
  EXPECT_DOUBLE_EQ(x[30], 1.0);   // unknown history treated as lossless
}

TEST(FeatureBuilder, RejectsOutOfRangeN) {
  FeatureBuilder fb(FeatureConfig{});
  GlobalSnapshot snap = healthy_snapshot(18);
  std::deque<bool> hist;
  EXPECT_THROW(fb.build(snap, -1, hist), util::RequireError);
  EXPECT_THROW(fb.build(snap, 9, hist), util::RequireError);
}

TEST(FeatureBuilder, RejectsBadConfig) {
  FeatureConfig cfg;
  cfg.k = 0;
  EXPECT_THROW(FeatureBuilder{cfg}, util::RequireError);
  cfg = FeatureConfig{};
  cfg.history = -1;
  EXPECT_THROW(FeatureBuilder{cfg}, util::RequireError);
}

// Property: every feature is in [-1, 1] for arbitrary snapshots.
class FeatureRangeProperty : public ::testing::TestWithParam<int> {};

TEST_P(FeatureRangeProperty, AllFeaturesNormalized) {
  util::Pcg32 rng(static_cast<std::uint64_t>(GetParam()));
  FeatureBuilder fb(FeatureConfig{});
  GlobalSnapshot snap(18);
  snap.current_round = 5;
  for (auto& e : snap.entries) {
    e.reliability = rng.uniform();
    e.radio_on_ms = rng.uniform(0.0, 25.0);
    e.round = rng.bernoulli(0.8) ? 5 : 3;
    e.ever_heard = rng.bernoulli(0.9);
  }
  std::deque<bool> hist = {rng.bernoulli(0.5), rng.bernoulli(0.5)};
  auto x = fb.build(snap, rng.uniform_int(0, 8), hist);
  for (double v : x) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureRangeProperty,
                         ::testing::Range(1, 12));

}  // namespace
}  // namespace dimmer::core
