// Steady-state allocation audit for the federated round loop (DESIGN.md
// §15): once a few warm-up epochs have grown every pooled buffer — per-cell
// RoundStats/RoundResult pools, scheduler scratch, source/origin lists, and
// the gateway bridge queues — Federation::run_epoch with workers=1 must
// perform ZERO heap allocations, end to end across every cell.
//
// Same operator-new instrumentation as tests/flood/test_workspace.cpp; this
// file lives in its own test binary so the counter never sees other suites'
// traffic. workers=1 is the audited mode (thread spawning allocates by
// nature and is only entered when workers > 1).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/federation.hpp"
#include "phy/topology.hpp"

namespace {

std::atomic<long> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dimmer::core {
namespace {

TEST(FederationAlloc, RunEpochIsAllocationFreeAfterWarmup) {
  phy::Topology topo =
      phy::make_campus_topology_culled(96, 1, phy::gain_cull_floor_db(
                                                  phy::RadioConstants{}, 20.0));
  phy::InterferenceField field;
  FederationConfig fc;
  fc.n_cells = 4;
  fc.sparse_links = true;
  fc.workers = 1;
  Federation fed(topo, field, fc,
                 [](int) { return std::make_unique<StaticController>(3); }, 3);

  // One flow per cell so every cell schedules, bridges, and accounts.
  for (int c = 0; c < fed.cell_count(); ++c) {
    const auto& m = fed.cell(c).members();
    phy::NodeId src = m.back();
    if (src == fed.gateway(c)) src = m[m.size() - 2];
    (void)fed.add_flow(src, fed.cell(c).network().config().round_period);
  }

  // Warm-up: grows schedulers' scratch, per-cell flood workspaces and CSR
  // caches, source/origin lists, and cycles the bridge queues through their
  // peak occupancy at every tree depth.
  for (int e = 0; e < 8; ++e) (void)fed.run_epoch();

  const long before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t delivered = 0;
  for (int e = 0; e < 20; ++e) delivered += fed.run_epoch().delivered;
  const long after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0)
      << "steady-state federated epochs must not allocate (got "
      << (after - before) << " allocations over 20 epochs)";
  // The audit must cover a loop that actually moves traffic.
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace dimmer::core
