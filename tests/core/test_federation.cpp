#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/federation.hpp"
#include "lwb/scheduler.hpp"
#include "phy/topology.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dimmer::core {
namespace {

Federation::ControllerFactory static_factory(int n_tx) {
  return [n_tx](int) { return std::make_unique<StaticController>(n_tx); };
}

FederationConfig small_cfg(int n_cells) {
  FederationConfig fc;
  fc.n_cells = n_cells;
  fc.sink = 0;
  fc.sparse_links = false;  // campus48 is small; dense keeps the tests fast
  return fc;
}

TEST(FederationPartition, DeterministicAndStructurallySound) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  Federation a(topo, field, small_cfg(4), static_factory(3), 7);
  Federation b(topo, field, small_cfg(4), static_factory(3), 7);

  ASSERT_EQ(a.cell_count(), 4);
  // Same topology + same config = same partition, gateways, tree.
  for (phy::NodeId n = 0; n < 48; ++n)
    ASSERT_EQ(a.cell_of(n), b.cell_of(n)) << "node " << n;
  for (int c = 0; c < 4; ++c) {
    ASSERT_EQ(a.parent(c), b.parent(c));
    ASSERT_EQ(a.gateway(c), b.gateway(c));
    ASSERT_EQ(a.cell(c).members(), b.cell(c).members());
  }

  // Every node has a home cell; the sink's cell is the root.
  for (phy::NodeId n = 0; n < 48; ++n) ASSERT_GE(a.cell_of(n), 0);
  EXPECT_EQ(a.cell_of(a.sink()), a.root());
  EXPECT_EQ(a.parent(a.root()), -1);
  EXPECT_EQ(a.gateway(a.root()), -1);

  for (int c = 0; c < 4; ++c) {
    if (c == a.root()) continue;
    const int p = a.parent(c);
    ASSERT_GE(p, 0);
    const phy::NodeId g = a.gateway(c);
    // The gateway is a member of BOTH cells, owned by the child stripe.
    EXPECT_TRUE(a.cell(c).is_member(g));
    EXPECT_TRUE(a.cell(p).is_member(g));
    EXPECT_EQ(a.cell_of(g), c);
    // Neighbor cells run in opposite phases: a gateway is never in two
    // overlapping rounds.
    EXPECT_NE(a.cell(c).schedule_offset(), a.cell(p).schedule_offset());
    // The child's uplink: its protocol sink is the gateway (local id).
    EXPECT_EQ(a.cell(c).network().sink(), a.cell(c).to_local(g));
  }
}

TEST(FederationPartition, RejectsBadConfigs) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  FederationConfig fc = small_cfg(30);  // 48 nodes can't fill 30 cells of >= 2
  EXPECT_THROW(Federation(topo, field, fc, static_factory(3), 1),
               util::RequireError);
  fc = small_cfg(2);
  fc.protocol.failover.backups = {1};  // global-id template knob: forbidden
  EXPECT_THROW(Federation(topo, field, fc, static_factory(3), 1),
               util::RequireError);
  fc = small_cfg(2);
  fc.sink = 99;
  EXPECT_THROW(Federation(topo, field, fc, static_factory(3), 1),
               util::RequireError);
}

/// A 1-cell federation over the whole topology must reduce exactly to the
/// single-network engine: same RoundStats, same RNG end-state, only the
/// federation bookkeeping on top.
TEST(Federation, SingleCellBitIdenticalToBareNetworkPlusScheduler) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  const std::uint64_t seed = 21;

  FederationConfig fc = small_cfg(1);
  Federation fed(topo, field, fc, static_factory(3), seed);
  ASSERT_EQ(fed.cell_count(), 1);
  ASSERT_EQ(fed.root(), 0);

  // The bare replica mirrors what the federation derives internally: the
  // lowest own-node id coordinates, the next auto_backups ids back it up,
  // the protocol sink is the global sink, the cell seed is
  // hash_u64(seed, cell_id).
  ProtocolConfig cfg = fc.protocol;
  cfg.sink = 0;
  cfg.failover.backups = {1, 2};
  DimmerNetwork bare(topo, field, cfg, std::make_unique<StaticController>(3),
                     0, util::hash_u64(seed, 0));
  lwb::Scheduler sched;

  const std::vector<phy::NodeId> flow_sources = {47, 30, 12};
  for (phy::NodeId s : flow_sources) {
    (void)fed.add_flow(s, cfg.round_period);
    (void)sched.add_stream(s, cfg.round_period, bare.now());
  }

  for (int e = 0; e < 8; ++e) {
    const FederationStats fs = fed.run_epoch();
    const std::vector<phy::NodeId> slots =
        sched.schedule_round(bare.now(), fc.max_slots_per_round);
    const RoundStats rs = bare.run_round(slots);

    const RoundStats& cs = fed.cell(0).last_round();
    ASSERT_EQ(cs.reliability, rs.reliability) << "epoch " << e;
    ASSERT_EQ(cs.lossless, rs.lossless);
    ASSERT_EQ(cs.total_radio_on_us, rs.total_radio_on_us);
    ASSERT_EQ(cs.n_tx, rs.n_tx);
    ASSERT_EQ(cs.sources, rs.sources);
    ASSERT_EQ(cs.sink_received, rs.sink_received);

    // Federation bookkeeping is consistent with the raw round: with one
    // cell every sunk packet is a delivery and nothing bridges.
    std::uint64_t sunk = 0;
    for (bool r : rs.sink_received) sunk += r ? 1u : 0u;
    ASSERT_EQ(fs.delivered, sunk);
    ASSERT_EQ(fs.bridged, 0u);
    ASSERT_EQ(fs.originated, slots.size());
    ASSERT_EQ(fs.cells_alive, 1);
    ASSERT_EQ(fs.total_radio_on_us, rs.total_radio_on_us);
  }

  util::Pcg32 ra = bare.rng();
  util::Pcg32 rb = fed.cell(0).network().rng();
  for (int i = 0; i < 16; ++i) ASSERT_EQ(ra.next_u64(), rb.next_u64());
}

/// End-to-end bridging: flows originating in leaf stripes must reach the
/// global sink across multiple gateway hops.
TEST(Federation, BridgesLeafTrafficToTheSink) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  Federation fed(topo, field, small_cfg(4), static_factory(3), 5);

  // One flow per non-root cell, from each cell's highest-id member.
  int flows = 0;
  for (int c = 0; c < fed.cell_count(); ++c) {
    if (c == fed.root()) continue;
    const auto& m = fed.cell(c).members();
    phy::NodeId src = m.back();
    if (src == fed.gateway(c)) src = m[m.size() - 2];
    (void)fed.add_flow(src, fed.cell(c).network().config().round_period);
    ++flows;
  }
  ASSERT_GT(flows, 0);

  std::uint64_t bridged = 0;
  for (int e = 0; e < 24; ++e) bridged += fed.run_epoch().bridged;

  EXPECT_GT(bridged, 0u);
  EXPECT_GT(fed.packets_originated(), 0u);
  EXPECT_GT(fed.packets_delivered(), 0u);
  // Deliveries can't beat the tree: each gateway hop costs an epoch.
  EXPECT_GE(fed.mean_delivery_latency_epochs(), 1.0);
  EXPECT_FALSE(fed.lost());
  EXPECT_EQ(fed.handoff_count(), 0);
}

/// The inter-cell handoff: a cell whose coordinator AND backups all die
/// stays orphaned until the federation hands its flows to the nearest alive
/// ancestor, where the shared gateway proxies them.
TEST(Federation, HandsOffDeadCellFlowsToAncestor) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  FederationConfig fc = small_cfg(4);
  Federation fed(topo, field, fc, static_factory(3), 5);

  // Find a leaf (childless) non-root cell and give it a flow.
  int leaf = -1;
  for (int c = fed.cell_count() - 1; c >= 0; --c)
    if (c != fed.root() && fed.gateway(c) >= 0) {
      leaf = c;
      break;
    }
  ASSERT_GE(leaf, 0);
  const auto& m = fed.cell(leaf).members();
  phy::NodeId src = m.back();
  if (src == fed.gateway(leaf)) src = m[m.size() - 2];
  (void)fed.add_flow(src, fed.cell(leaf).network().config().round_period);

  for (int e = 0; e < 4; ++e) (void)fed.run_epoch();
  ASSERT_EQ(fed.handoff_count(), 0);

  fed.fail_cell_leadership(leaf);

  // The cell's rounds go orphaned; after handoff_silent_epochs consecutive
  // orphaned epochs the federation declares it dead.
  FederationStats st;
  int epochs_to_handoff = 0;
  while (fed.handoff_count() == 0 && epochs_to_handoff < 12) {
    st = fed.run_epoch();
    ++epochs_to_handoff;
  }
  EXPECT_EQ(fed.handoff_count(), 1);
  EXPECT_EQ(st.handoffs, 1);
  EXPECT_GE(epochs_to_handoff, fc.handoff_silent_epochs);
  EXPECT_TRUE(fed.cell_dead(leaf));
  EXPECT_FALSE(fed.lost());

  // The flow survives: the gateway proxies it in the parent's schedule, so
  // deliveries keep accruing after the handoff.
  const std::uint64_t delivered_at_handoff = fed.packets_delivered();
  for (int e = 0; e < 12; ++e) (void)fed.run_epoch();
  EXPECT_GT(fed.packets_delivered(), delivered_at_handoff);
}

TEST(Federation, RootCellDeathLosesTheFederation) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  Federation fed(topo, field, small_cfg(4), static_factory(3), 5);
  (void)fed.add_flow(47, fed.cell(0).network().config().round_period);

  fed.fail_cell_leadership(fed.root());
  FederationStats st;
  for (int e = 0; e < 12 && !fed.lost(); ++e) st = fed.run_epoch();
  EXPECT_TRUE(fed.lost());
  EXPECT_TRUE(st.lost);
  EXPECT_TRUE(fed.cell_dead(fed.root()));
}

/// The worker-count invariance the campaign layer depends on: workers only
/// parallelize the flood engine, never the bridging/accounting barriers.
TEST(Federation, WorkersDoNotChangeResults) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  FederationConfig f1 = small_cfg(4);
  f1.workers = 1;
  FederationConfig f3 = small_cfg(4);
  f3.workers = 3;
  Federation a(topo, field, f1, static_factory(3), 11);
  Federation b(topo, field, f3, static_factory(3), 11);

  for (int c = 0; c < a.cell_count(); ++c) {
    if (c == a.root()) continue;
    const auto& m = a.cell(c).members();
    phy::NodeId src = m.back();
    if (src == a.gateway(c)) src = m[m.size() - 2];
    (void)a.add_flow(src, a.cell(c).network().config().round_period);
    (void)b.add_flow(src, b.cell(c).network().config().round_period);
  }

  for (int e = 0; e < 16; ++e) {
    const FederationStats sa = a.run_epoch();
    const FederationStats sb = b.run_epoch();
    ASSERT_EQ(sa.epoch, sb.epoch);
    ASSERT_EQ(sa.cells_alive, sb.cells_alive);
    ASSERT_EQ(sa.orphaned_cells, sb.orphaned_cells);
    ASSERT_EQ(sa.min_reliability, sb.min_reliability) << "epoch " << e;
    ASSERT_EQ(sa.mean_reliability, sb.mean_reliability);
    ASSERT_EQ(sa.originated, sb.originated);
    ASSERT_EQ(sa.bridged, sb.bridged);
    ASSERT_EQ(sa.delivered, sb.delivered);
    ASSERT_EQ(sa.total_radio_on_us, sb.total_radio_on_us);
  }
  ASSERT_EQ(a.packets_originated(), b.packets_originated());
  ASSERT_EQ(a.packets_delivered(), b.packets_delivered());
  ASSERT_EQ(a.packets_dropped(), b.packets_dropped());
  ASSERT_EQ(a.mean_delivery_latency_epochs(),
            b.mean_delivery_latency_epochs());

  // Per-cell RNG lockstep: every cell drew exactly the same stream.
  for (int c = 0; c < a.cell_count(); ++c) {
    util::Pcg32 ra = a.cell(c).network().rng();
    util::Pcg32 rb = b.cell(c).network().rng();
    for (int i = 0; i < 8; ++i)
      ASSERT_EQ(ra.next_u64(), rb.next_u64()) << "cell " << c;
  }
}

TEST(FederationBalance, GreedyDeterministicAndCovering) {
  // Largest first, least-loaded bin, ties to the lowest bin index.
  EXPECT_EQ(Federation::balance({5, 3, 2, 2}, 2),
            (std::vector<int>{0, 1, 1, 0}));
  // One worker: everything in bin 0.
  EXPECT_EQ(Federation::balance({4, 4, 4}, 1), (std::vector<int>{0, 0, 0}));
  // More workers than items: each item gets its own bin, largest to bin 0.
  const std::vector<int> bins = Federation::balance({1, 9}, 4);
  EXPECT_EQ(bins[1], 0);
  EXPECT_NE(bins[0], bins[1]);
  // Loads stay near-balanced for uniform sizes.
  const std::vector<int> uniform = Federation::balance({2, 2, 2, 2, 2, 2}, 3);
  std::vector<int> load(3, 0);
  for (int b : uniform) load[static_cast<std::size_t>(b)] += 2;
  EXPECT_EQ(*std::max_element(load.begin(), load.end()), 4);
  EXPECT_THROW(Federation::balance({1}, 0), util::RequireError);
}

/// Sparse-links federations (the city-scale configuration) are fully
/// deterministic: two constructions from the same seed stay in lockstep
/// epoch by epoch, RNG end-state included.
TEST(Federation, SparseLinksFederationIsDeterministic) {
  phy::Topology topo = phy::make_campus_topology(48, 3);
  phy::InterferenceField field;
  FederationConfig fc = small_cfg(4);
  fc.sparse_links = true;
  Federation a(topo, field, fc, static_factory(3), 13);
  Federation b(topo, field, fc, static_factory(3), 13);
  (void)a.add_flow(47, a.cell(0).network().config().round_period);
  (void)b.add_flow(47, b.cell(0).network().config().round_period);

  for (int e = 0; e < 8; ++e) {
    const FederationStats sa = a.run_epoch();
    const FederationStats sb = b.run_epoch();
    ASSERT_EQ(sa.mean_reliability, sb.mean_reliability) << "epoch " << e;
    ASSERT_EQ(sa.min_reliability, sb.min_reliability);
    ASSERT_EQ(sa.originated, sb.originated);
    ASSERT_EQ(sa.bridged, sb.bridged);
    ASSERT_EQ(sa.delivered, sb.delivered);
    ASSERT_EQ(sa.total_radio_on_us, sb.total_radio_on_us);
  }
  for (int c = 0; c < a.cell_count(); ++c) {
    util::Pcg32 ra = a.cell(c).network().rng();
    util::Pcg32 rb = b.cell(c).network().rng();
    for (int i = 0; i < 8; ++i)
      ASSERT_EQ(ra.next_u64(), rb.next_u64()) << "cell " << c;
  }
}

}  // namespace
}  // namespace dimmer::core
