#include <gtest/gtest.h>

#include <memory>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "core/collection.hpp"
#include "core/scenarios.hpp"
#include "phy/topology.hpp"

namespace dimmer::core {
namespace {

TEST(Scenarios, JammerPositionsSitInsideTheDeployment) {
  phy::Topology topo = phy::make_office18_topology();
  for (int j : {0, 1}) {
    phy::Vec2 p = office_jammer_position(topo, j);
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, 60.0);
  }
  EXPECT_THROW(office_jammer_position(topo, 2), util::RequireError);
}

TEST(Scenarios, StaticJammingAddsTwoDesynchronizedJammers) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  add_static_jamming(field, topo, 0.3);
  EXPECT_EQ(field.size(), 2u);
  // Bursts are phase-shifted: at t in [0,13ms) only one jammer is active,
  // so exposure at a central node is positive but power varies over time.
  auto s = field.sample(0, sim::ms(5), phy::kControlChannel, 8, topo);
  EXPECT_GT(s.power_mw, 0.0);
}

TEST(Scenarios, ZeroDutyAddsNothing) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  add_static_jamming(field, topo, 0.0);
  EXPECT_TRUE(field.empty());
}

TEST(Scenarios, DynamicJammingFollowsTheTimeline) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  add_dynamic_jamming(field, topo);
  auto active = [&](sim::TimeUs t) {
    auto s = field.sample(t, t + sim::seconds(2), phy::kControlChannel, 8,
                          topo);
    return s.exposure > 0.0;
  };
  EXPECT_FALSE(active(sim::minutes(3)));   // calm
  EXPECT_TRUE(active(sim::minutes(8)));    // 30% phase
  EXPECT_FALSE(active(sim::minutes(14)));  // calm again
  EXPECT_TRUE(active(sim::minutes(18)));   // 5% phase
  EXPECT_FALSE(active(sim::minutes(24)));  // calm tail
}

TEST(Scenarios, DynamicJammingHonoursOrigin) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  add_dynamic_jamming(field, topo, phy::kControlChannel, sim::hours(10));
  auto exposure = [&](sim::TimeUs t) {
    return field
        .sample(t, t + sim::seconds(2), phy::kControlChannel, 8, topo)
        .exposure;
  };
  EXPECT_DOUBLE_EQ(exposure(sim::minutes(8)), 0.0);  // before the origin
  EXPECT_GT(exposure(sim::hours(10) + sim::minutes(8)), 0.0);
}

TEST(Scenarios, TrainingScheduleAlternatesCalmAndJam) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  add_training_schedule(field, topo, sim::hours(2), 5);
  EXPECT_GT(field.size(), 2u);
  // Somewhere in the two hours there must be both jammed and calm minutes.
  int jammed = 0, calm = 0;
  for (int m = 0; m < 120; m += 3) {
    auto s = field.sample(sim::minutes(m), sim::minutes(m) + sim::seconds(20),
                          phy::kControlChannel, 8, topo);
    (s.exposure > 0.05 ? jammed : calm)++;
  }
  EXPECT_GT(jammed, 3);
  EXPECT_GT(calm, 3);
}

std::unique_ptr<DimmerNetwork> collection_network(
    const phy::Topology& topo, const phy::InterferenceField& field,
    bool hop, std::uint64_t seed) {
  ProtocolConfig cfg;
  cfg.round_period = sim::seconds(1);
  cfg.stats_window_slots = 12;
  cfg.radio_window_slots = 7;
  if (hop)
    cfg.round.hop_sequence.assign(phy::default_hopping_sequence().begin(),
                                  phy::default_hopping_sequence().end());
  return std::make_unique<DimmerNetwork>(
      topo, field, cfg, std::make_unique<StaticController>(3), 0, seed);
}

TEST(Collection, CleanNetworkDeliversEverything) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  auto net = collection_network(topo, field, false, 1);
  CollectionConfig cfg;
  cfg.duration = sim::minutes(2);
  CollectionResult res = run_collection(*net, cfg);
  EXPECT_GT(res.sent, 50);
  EXPECT_DOUBLE_EQ(res.reliability, 1.0);
  EXPECT_GT(res.radio_duty, 0.0);
  EXPECT_LT(res.radio_duty, 0.2);
  EXPECT_EQ(res.rounds, 120);
}

TEST(Collection, AcksRecoverWhatBestEffortLoses) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  phy::add_dcube_wifi_level(field, topo, 2);

  auto best_effort_net = collection_network(topo, field, false, 2);
  CollectionConfig be;
  be.duration = sim::minutes(3);
  be.acks = false;
  CollectionResult lossy = run_collection(*best_effort_net, be);

  auto ack_net = collection_network(topo, field, true, 2);
  CollectionConfig ak = be;
  ak.acks = true;
  CollectionResult repaired = run_collection(*ack_net, ak);

  EXPECT_LT(lossy.reliability, 0.9);
  EXPECT_GT(repaired.reliability, lossy.reliability + 0.1);
}

TEST(Collection, SourcesSkipSinkAndCoordinator) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  auto net = collection_network(topo, field, false, 3);
  CollectionConfig cfg;
  cfg.duration = sim::seconds(30);
  CollectionResult res = run_collection(*net, cfg);
  EXPECT_GT(res.rounds, 0);
  // The run must complete without the sink sourcing to itself (would throw).
}

TEST(Collection, RejectsBadConfig) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  auto net = collection_network(topo, field, false, 4);
  CollectionConfig cfg;
  cfg.n_sources = 0;
  EXPECT_THROW(run_collection(*net, cfg), util::RequireError);
  cfg = CollectionConfig{};
  cfg.n_sources = 99;
  EXPECT_THROW(run_collection(*net, cfg), util::RequireError);
  cfg = CollectionConfig{};
  cfg.duration = 0;
  EXPECT_THROW(run_collection(*net, cfg), util::RequireError);
}

}  // namespace
}  // namespace dimmer::core
