#include <gtest/gtest.h>

#include <cmath>

#include "rl/quantized.hpp"

namespace dimmer::rl {
namespace {

TEST(QuantizedMlp, PaperFootprint) {
  // The paper's 31 -> 30 -> 3 network: "our DQN uses 2.1 kB to store
  // weights in flash, and 400 B of RAM for intermediary results".
  Mlp net({31, 30, 3}, 1);
  QuantizedMlp q(net);
  EXPECT_EQ(q.flash_bytes(), 2u * (31 * 30 + 30 + 30 * 3 + 3));  // 2106 B
  EXPECT_LE(q.flash_bytes(), 2200u);
  EXPECT_LE(q.ram_bytes(), 400u);
}

TEST(QuantizedMlp, MatchesFloatWithinQuantizationError) {
  Mlp net({10, 12, 3}, 2);
  QuantizedMlp q(net);
  util::Pcg32 rng(3);
  double max_err = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(10);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    auto yf = net.forward(x);
    auto yq = q.forward(x);
    for (std::size_t i = 0; i < yf.size(); ++i)
      max_err = std::max(max_err, std::abs(yf[i] - yq[i]));
  }
  // Per-weight error 0.005, per-input error 0.005: accumulated error stays
  // within a few centi-units for unit-scale nets.
  EXPECT_LT(max_err, 0.25);
}

TEST(QuantizedMlp, GreedyAgreesOnWellSeparatedOutputs) {
  Mlp net({4, 6, 3}, 4);
  QuantizedMlp q(net);
  util::Pcg32 rng(5);
  int checked = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> x(4);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    auto yf = net.forward(x);
    std::vector<double> sorted = yf;
    std::sort(sorted.begin(), sorted.end());
    double gap = sorted[2] - sorted[1];
    if (gap < 0.3) continue;  // ambiguous under quantization
    int fa = static_cast<int>(
        std::max_element(yf.begin(), yf.end()) - yf.begin());
    EXPECT_EQ(q.greedy_action(x), fa);
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

TEST(QuantizedMlp, IntegerReluClipsNegatives) {
  Mlp net({1, 1, 1}, 1);
  auto& layers = net.mutable_layers();
  layers[0].w = {1.0};
  layers[0].b = {0.0};
  layers[1].w = {1.0};
  layers[1].b = {0.0};
  QuantizedMlp q(net);
  EXPECT_EQ(q.forward_fixed({-0.9})[0], 0);  // ReLU floor in integer path
  EXPECT_EQ(q.forward_fixed({0.5})[0], 50);  // 0.5 at scale 100
}

TEST(QuantizedMlp, SaturatesExtremeWeights) {
  Mlp net({1, 1}, 1);
  net.mutable_layers()[0].w = {1e6};  // saturates at int16 max = 327.67
  net.mutable_layers()[0].b = {0.0};
  QuantizedMlp q(net);
  EXPECT_EQ(q.layers()[0].w[0], 32767);
  // 327.67 * 1.0 (scale 100: 32767 * 100 / 100) = 32767.
  EXPECT_EQ(q.forward_fixed({1.0})[0], 32767);
}

TEST(QuantizedMlp, RejectsWrongInputSize) {
  Mlp net({4, 3}, 1);
  QuantizedMlp q(net);
  EXPECT_THROW(q.forward_fixed({1.0}), util::RequireError);
}

TEST(QuantizedMlp, CustomScaleImprovesPrecision) {
  Mlp net({6, 8, 2}, 6);
  QuantizedMlp coarse(net, 100);
  QuantizedMlp fine(net, 1000);
  util::Pcg32 rng(7);
  double coarse_err = 0.0, fine_err = 0.0;
  for (int t = 0; t < 100; ++t) {
    std::vector<double> x(6);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    auto yf = net.forward(x);
    auto yc = coarse.forward(x);
    auto yn = fine.forward(x);
    for (std::size_t i = 0; i < yf.size(); ++i) {
      coarse_err += std::abs(yf[i] - yc[i]);
      fine_err += std::abs(yf[i] - yn[i]);
    }
  }
  EXPECT_LT(fine_err, coarse_err);
}

}  // namespace
}  // namespace dimmer::rl
