#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "rl/dqn.hpp"
#include "util/check.hpp"

namespace dimmer::rl {
namespace {

DqnConfig tiny_config() {
  DqnConfig cfg;
  cfg.architecture = {2, 8, 2};
  cfg.replay_capacity = 2000;
  cfg.min_replay_before_training = 32;
  cfg.epsilon_anneal_steps = 500;
  cfg.target_sync_period = 50;
  return cfg;
}

TEST(ReplayBuffer, RingEviction) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i)
    buf.push(Transition{{static_cast<double>(i)}, 0, 0.0, {0.0}, false, -1.0});
  EXPECT_EQ(buf.size(), 3u);
  // Entries 2, 3, 4 survive (0 and 1 evicted).
  std::vector<double> first_elems;
  for (std::size_t i = 0; i < buf.size(); ++i)
    first_elems.push_back(buf.at(i).state[0]);
  std::sort(first_elems.begin(), first_elems.end());
  EXPECT_EQ(first_elems, (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(ReplayBuffer, SampleFromEmptyThrows) {
  ReplayBuffer buf(4);
  util::Pcg32 rng(1);
  EXPECT_THROW(buf.sample_indices(2, rng), util::RequireError);
}

TEST(ReplayBuffer, SampleIndicesInRange) {
  ReplayBuffer buf(10);
  for (int i = 0; i < 4; ++i) buf.push(Transition{});
  util::Pcg32 rng(2);
  for (std::size_t i : buf.sample_indices(100, rng)) EXPECT_LT(i, 4u);
}

TEST(DqnAgent, EpsilonAnnealsLinearly) {
  DqnConfig cfg = tiny_config();
  cfg.epsilon_start = 1.0;
  cfg.epsilon_end = 0.1;
  cfg.epsilon_anneal_steps = 100;
  DqnAgent agent(cfg, 1);
  util::Pcg32 rng(1);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 1.0);
  for (int i = 0; i < 50; ++i)
    agent.observe(Transition{{0, 0}, 0, 0, {0, 0}, false, -1.0}, rng);
  EXPECT_NEAR(agent.epsilon(), 0.55, 1e-9);
  for (int i = 0; i < 200; ++i)
    agent.observe(Transition{{0, 0}, 0, 0, {0, 0}, false, -1.0}, rng);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.1);
}

TEST(DqnAgent, GreedyActionMatchesArgmaxQ) {
  DqnAgent agent(tiny_config(), 3);
  std::vector<double> s = {0.4, -0.7};
  auto q = agent.q_values(s);
  int expect = static_cast<int>(
      std::max_element(q.begin(), q.end()) - q.begin());
  EXPECT_EQ(agent.greedy_action(s), expect);
}

TEST(DqnAgent, RejectsOutOfRangeAction) {
  DqnAgent agent(tiny_config(), 3);
  util::Pcg32 rng(1);
  EXPECT_THROW(
      agent.observe(Transition{{0, 0}, 5, 0, {0, 0}, false, -1.0}, rng),
      util::RequireError);
}

TEST(DqnAgent, RejectsBadGamma) {
  DqnConfig cfg = tiny_config();
  cfg.gamma = 1.0;
  EXPECT_THROW(DqnAgent(cfg, 1), util::RequireError);
}

TEST(DqnAgent, RejectsWarmupSmallerThanBatch) {
  DqnConfig cfg = tiny_config();
  cfg.batch_size = 32;
  cfg.min_replay_before_training = 31;  // would train by resampling 31 items
  EXPECT_THROW(DqnAgent(cfg, 1), util::RequireError);
  cfg.min_replay_before_training = 32;
  EXPECT_NO_THROW(DqnAgent(cfg, 1));
}

// Contextual bandit: state (1,0) rewards action 0; state (0,1) rewards
// action 1. The agent must learn the mapping.
TEST(DqnAgent, SolvesContextualBandit) {
  DqnConfig cfg = tiny_config();
  cfg.gamma = 0.0;  // pure bandit
  cfg.lr = 3e-3;
  cfg.epsilon_anneal_steps = 2000;
  cfg.epsilon_end = 0.05;
  DqnAgent agent(cfg, 7);
  util::Pcg32 rng(8);
  for (int t = 0; t < 4000; ++t) {
    bool ctx = rng.bernoulli(0.5);
    std::vector<double> s = ctx ? std::vector<double>{0.0, 1.0}
                                : std::vector<double>{1.0, 0.0};
    int a = agent.select_action(s, rng);
    double r = (a == (ctx ? 1 : 0)) ? 1.0 : 0.0;
    agent.observe(Transition{s, a, r, s, true, -1.0}, rng);
  }
  EXPECT_EQ(agent.greedy_action({1.0, 0.0}), 0);
  EXPECT_EQ(agent.greedy_action({0.0, 1.0}), 1);
}

// Two-state chain: action 1 in state A moves to state B where reward flows.
// Requires bootstrapping (gamma > 0) to solve — exercises the target net.
TEST(DqnAgent, LearnsDelayedRewardThroughBootstrap) {
  DqnConfig cfg = tiny_config();
  cfg.gamma = 0.9;
  cfg.lr = 3e-3;
  cfg.epsilon_anneal_steps = 3000;
  cfg.epsilon_end = 0.1;
  DqnAgent agent(cfg, 11);
  util::Pcg32 rng(12);
  const std::vector<double> A = {1.0, 0.0}, B = {0.0, 1.0};
  for (int episode = 0; episode < 1500; ++episode) {
    // State A: action 1 -> B (no reward), action 0 -> stay A (no reward).
    int a1 = agent.select_action(A, rng);
    if (a1 == 1) {
      agent.observe(Transition{A, a1, 0.0, B, false, -1.0}, rng);
      int a2 = agent.select_action(B, rng);
      // State B: action 0 -> reward 1, terminal.
      double r = a2 == 0 ? 1.0 : 0.0;
      agent.observe(Transition{B, a2, r, B, true, -1.0}, rng);
    } else {
      agent.observe(Transition{A, a1, 0.0, A, true, -1.0}, rng);
    }
  }
  EXPECT_EQ(agent.greedy_action(A), 1);  // go to B
  EXPECT_EQ(agent.greedy_action(B), 0);  // collect
}

TEST(DqnAgent, TransitionDiscountOverridesGamma) {
  // With reward 0 everywhere and discount 0 on all transitions, Q stays
  // near its init; mostly a smoke test that the field is honoured.
  DqnConfig cfg = tiny_config();
  DqnAgent agent(cfg, 5);
  util::Pcg32 rng(5);
  for (int i = 0; i < 200; ++i)
    agent.observe(Transition{{0.5, 0.5}, 0, 0.0, {0.5, 0.5}, false, 1e-9},
                  rng);
  EXPECT_EQ(agent.train_steps(), 200u - cfg.min_replay_before_training + 1);
}

TEST(DqnAgent, VanillaAndDoubleDqnBothTrain) {
  for (bool dd : {false, true}) {
    DqnConfig cfg = tiny_config();
    cfg.double_dqn = dd;
    DqnAgent agent(cfg, 9);
    util::Pcg32 rng(9);
    for (int i = 0; i < 300; ++i)
      agent.observe(Transition{{0.1, 0.2}, i % 2, 0.5, {0.1, 0.2}, false,
                               -1.0},
                    rng);
    EXPECT_GT(agent.train_steps(), 0u);
  }
}

TEST(DqnAgent, CheckpointRoundTripRestoresPolicyAndCounters) {
  DqnConfig cfg = tiny_config();
  DqnAgent trained(cfg, 3);
  util::Pcg32 rng(3);
  for (int i = 0; i < 150; ++i)
    trained.observe(Transition{{0.3, 0.7}, i % 2, 0.25, {0.3, 0.7}, false,
                               -1.0},
                    rng);
  std::stringstream ss;
  trained.save_checkpoint(ss);

  DqnAgent resumed(cfg, 99);  // different seed: weights start out different
  resumed.restore_checkpoint(ss);
  EXPECT_EQ(resumed.steps(), trained.steps());
  EXPECT_EQ(resumed.train_steps(), trained.train_steps());
  std::vector<double> probe = {0.3, 0.7};
  EXPECT_EQ(resumed.q_values(probe), trained.q_values(probe));
  EXPECT_EQ(resumed.greedy_action(probe), trained.greedy_action(probe));
}

TEST(DqnAgent, RestoreRejectsCorruptCheckpointAndKeepsAgentIntact) {
  DqnConfig cfg = tiny_config();
  DqnAgent agent(cfg, 7);
  std::vector<double> probe = {0.1, 0.9};
  std::vector<double> before = agent.q_values(probe);

  DqnAgent donor(cfg, 7);
  std::stringstream good;
  donor.save_checkpoint(good);
  std::string text = good.str();

  std::stringstream bad_magic("dqn-ckpt 1\n0 0 0\n");
  EXPECT_THROW(agent.restore_checkpoint(bad_magic), util::RequireError);
  for (std::size_t cut : {text.size() / 4, text.size() / 2, text.size() - 5}) {
    std::stringstream truncated(text.substr(0, cut));
    EXPECT_THROW(agent.restore_checkpoint(truncated), util::RequireError)
        << "cut at " << cut;
  }
  // Validation happens before any state is committed: the agent still
  // behaves exactly as before the failed restores.
  EXPECT_EQ(agent.q_values(probe), before);
}

TEST(DqnAgent, RestoreRejectsArchitectureMismatch) {
  DqnConfig donor_cfg = tiny_config();
  DqnAgent donor(donor_cfg, 1);
  std::stringstream ss;
  donor.save_checkpoint(ss);

  DqnConfig other = tiny_config();
  other.architecture = {2, 4, 2};  // different hidden width
  DqnAgent agent(other, 1);
  EXPECT_THROW(agent.restore_checkpoint(ss), util::RequireError);
}

TEST(DqnAgent, LrDecayScheduleApplies) {
  DqnConfig cfg = tiny_config();
  cfg.lr = 1e-3;
  cfg.lr_final = 1e-4;
  cfg.lr_decay_steps = 100;
  DqnAgent agent(cfg, 13);
  util::Pcg32 rng(13);
  for (int i = 0; i < 400; ++i)
    agent.observe(Transition{{0, 1}, 0, 0.1, {0, 1}, false, -1.0}, rng);
  // No direct accessor for Adam's lr; the schedule path must at least not
  // corrupt training. Smoke assertion:
  EXPECT_GT(agent.train_steps(), 300u);
}

}  // namespace
}  // namespace dimmer::rl
