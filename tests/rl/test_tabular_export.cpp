#include <gtest/gtest.h>

#include "rl/export.hpp"
#include "rl/tabular.hpp"
#include "util/check.hpp"

namespace dimmer::rl {
namespace {

TEST(TabularQ, GreedyFollowsUpdates) {
  TabularQ q(4, 3, 0.5, 0.0);
  q.update(2, 1, 1.0, 2, true);
  EXPECT_EQ(q.greedy(2), 1u);
  EXPECT_GT(q.q(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(q.q(2, 0), 0.0);
}

TEST(TabularQ, BootstrapsThroughGamma) {
  TabularQ q(2, 2, 1.0, 0.5);
  // State 1 has value 1 on action 0; state 0 reaches state 1 via action 1.
  q.update(1, 0, 1.0, 1, true);
  q.update(0, 1, 0.0, 1, false);
  EXPECT_NEAR(q.q(0, 1), 0.5, 1e-12);
}

TEST(TabularQ, EpsilonGreedyExplores) {
  TabularQ q(1, 4, 0.5, 0.0);
  q.update(0, 2, 1.0, 0, true);
  util::Pcg32 rng(1);
  int non_greedy = 0;
  for (int i = 0; i < 2000; ++i)
    if (q.select(0, 0.5, rng) != 2) ++non_greedy;
  EXPECT_GT(non_greedy, 500);
  EXPECT_LT(non_greedy, 1100);
}

TEST(TabularQ, TracksUnvisitedStates) {
  TabularQ q(10, 2, 0.5, 0.5);
  EXPECT_EQ(q.unvisited_states(), 10u);
  q.update(3, 0, 1.0, 4, false);
  EXPECT_EQ(q.unvisited_states(), 9u);
}

TEST(TabularQ, RejectsBadArguments) {
  EXPECT_THROW(TabularQ(0, 2, 0.5, 0.5), util::RequireError);
  EXPECT_THROW(TabularQ(4, 1, 0.5, 0.5), util::RequireError);
  EXPECT_THROW(TabularQ(4, 2, 0.0, 0.5), util::RequireError);
  EXPECT_THROW(TabularQ(4, 2, 0.5, 1.0), util::RequireError);
  TabularQ q(4, 2, 0.5, 0.5);
  EXPECT_THROW(q.q(4, 0), util::RequireError);
  EXPECT_THROW(q.update(0, 0, 1.0, 9, false), util::RequireError);
}

TEST(ExportC, HeaderContainsAllSections) {
  Mlp net({31, 30, 3}, 5);
  QuantizedMlp q(net);
  std::string h = export_quantized_c_header(q, "dimmer_dqn");
  EXPECT_NE(h.find("#ifndef DIMMER_DQN_H"), std::string::npos);
  EXPECT_NE(h.find("#define DIMMER_DQN_SCALE 100"), std::string::npos);
  EXPECT_NE(h.find("#define DIMMER_DQN_INPUTS 31"), std::string::npos);
  EXPECT_NE(h.find("#define DIMMER_DQN_OUTPUTS 3"), std::string::npos);
  EXPECT_NE(h.find("dimmer_dqn_l0_w[930]"), std::string::npos);
  EXPECT_NE(h.find("dimmer_dqn_l0_b[30]"), std::string::npos);
  EXPECT_NE(h.find("dimmer_dqn_l1_w[90]"), std::string::npos);
  EXPECT_NE(h.find("dimmer_dqn_l1_b[3]"), std::string::npos);
  EXPECT_NE(h.find("static int dimmer_dqn_infer(const int16_t *x)"),
            std::string::npos);
  EXPECT_NE(h.find("if (acc < 0) acc = 0;"), std::string::npos);  // ReLU
}

TEST(ExportC, WeightValuesRoundTrip) {
  Mlp net({2, 2}, 1);
  net.mutable_layers()[0].w = {1.23, -0.5, 0.0, 2.0};
  net.mutable_layers()[0].b = {0.25, -1.0};
  QuantizedMlp q(net);
  std::string h = export_quantized_c_header(q, "tiny");
  EXPECT_NE(h.find("123,-50,0,200"), std::string::npos);
  EXPECT_NE(h.find("25,-100"), std::string::npos);
}

TEST(ExportC, RejectsInvalidPrefix) {
  QuantizedMlp q(Mlp({2, 2}, 1));
  EXPECT_THROW(export_quantized_c_header(q, "9bad"), util::RequireError);
  EXPECT_THROW(export_quantized_c_header(q, "has-dash"), util::RequireError);
  EXPECT_THROW(export_quantized_c_header(q, ""), util::RequireError);
}

TEST(ExportC, RejectsOversizedLayers) {
  QuantizedMlp q(Mlp({80, 3}, 1));  // wider than the emitted 64-slot buffers
  EXPECT_THROW(export_quantized_c_header(q, "big"), util::RequireError);
}

}  // namespace
}  // namespace dimmer::rl
