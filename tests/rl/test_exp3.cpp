#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "rl/exp3.hpp"

namespace dimmer::rl {
namespace {

TEST(Exp3, InitialDistributionIsUniform) {
  Exp3 bandit(4, 0.2);
  auto p = bandit.probabilities();
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(Exp3, ProbabilitiesSumToOne) {
  Exp3 bandit(3, 0.1);
  util::Pcg32 rng(1);
  for (int t = 0; t < 500; ++t) {
    bandit.update(bandit.sample(rng), rng.uniform());
    auto p = bandit.probabilities();
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
  }
}

TEST(Exp3, ExplorationFloorHolds) {
  // Eq. 2: every arm keeps probability >= gamma / K.
  Exp3 bandit(2, 0.12);
  for (int t = 0; t < 300; ++t) bandit.update(0, 1.0);
  auto p = bandit.probabilities();
  EXPECT_GE(p[1], 0.12 / 2 - 1e-12);
  EXPECT_GT(p[0], 0.9);
}

TEST(Exp3, RewardedArmGainsProbability) {
  Exp3 bandit(2, 0.1);
  double before = bandit.probability(1);
  bandit.update(1, 1.0);
  EXPECT_GT(bandit.probability(1), before);
}

TEST(Exp3, ZeroRewardLeavesWeightsUnchanged) {
  Exp3 bandit(2, 0.1);
  auto w = bandit.weights();
  bandit.update(0, 0.0);
  EXPECT_EQ(bandit.weights(), w);
}

TEST(Exp3, AdaptsToAdversarialSwitch) {
  // Arm 0 pays for 200 steps, then arm 1 pays. Exp3 must follow.
  Exp3 bandit(2, 0.15);
  util::Pcg32 rng(2);
  for (int t = 0; t < 200; ++t) {
    std::size_t a = bandit.sample(rng);
    bandit.update(a, a == 0 ? 1.0 : 0.0);
  }
  EXPECT_EQ(bandit.best_arm(), 0u);
  for (int t = 0; t < 400; ++t) {
    std::size_t a = bandit.sample(rng);
    bandit.update(a, a == 1 ? 1.0 : 0.0);
  }
  EXPECT_EQ(bandit.best_arm(), 1u);
}

TEST(Exp3, ResetArmRestoresInitialWeight) {
  Exp3 bandit(2, 0.1);
  for (int i = 0; i < 50; ++i) bandit.update(1, 1.0);
  EXPECT_GT(bandit.weights()[1], bandit.weights()[0]);
  bandit.reset_arm(1);
  EXPECT_DOUBLE_EQ(bandit.weights()[1], 1.0);
}

TEST(Exp3, SurvivesVeryLongRuns) {
  // Exponential weights overflow without renormalisation; 50k wins must not
  // produce inf/NaN probabilities.
  Exp3 bandit(2, 0.3);
  for (int i = 0; i < 50000; ++i) bandit.update(0, 1.0);
  auto p = bandit.probabilities();
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_TRUE(std::isfinite(p[1]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
}

TEST(Exp3, WeightsStayStrictlyPositiveUnderSustainedWins) {
  // Regression: the renormalisation (w /= max_w once max_w > 1e100) used to
  // drive the losing arm's weight through 1e-100, 1e-200, ... to exactly 0.0
  // after a few rescales. A zero weight is permanent — multiplicative
  // updates cannot resurrect it — so the arm was silently dead even though
  // the gamma/K floor kept its probability looking sane.
  Exp3 bandit(2, 0.3);
  for (int i = 0; i < 200000; ++i) bandit.update(0, 1.0);
  for (double w : bandit.weights()) {
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_GT(w, 0.0);  // fails on the pre-fix code: weights()[1] == 0.0
  }
  auto p = bandit.probabilities();
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
}

TEST(Exp3, StarvedArmRecoversWhenRewardsFlip) {
  // After a streak long enough to trigger many renormalisations, the starved
  // arm must still be able to win back the lead once rewards favour it.
  Exp3 bandit(2, 0.3);
  for (int i = 0; i < 200000; ++i) bandit.update(0, 1.0);
  EXPECT_EQ(bandit.best_arm(), 0u);
  for (int i = 0; i < 2000; ++i) bandit.update(1, 1.0);
  EXPECT_EQ(bandit.best_arm(), 1u);  // pre-fix: arm 1 is stuck at weight 0
}

TEST(Exp3, ProbabilityMatchesProbabilitiesVectorExactly) {
  // probability(arm) is the allocation-free hot-path variant; it must be
  // bit-identical to materialising the whole distribution.
  Exp3 bandit(4, 0.15);
  util::Pcg32 rng(17);
  for (int t = 0; t < 300; ++t)
    bandit.update(bandit.sample(rng), rng.uniform());
  auto p = bandit.probabilities();
  for (std::size_t i = 0; i < bandit.arms(); ++i)
    EXPECT_EQ(bandit.probability(i), p[i]);  // exact, not NEAR
}

TEST(Exp3, SampleMatchesMaterializedDistributionWalk) {
  // sample() must consume exactly one uniform and land on the same arm as a
  // reference that materialises probabilities() and walks the CDF with the
  // identical accumulation order.
  Exp3 bandit(3, 0.2);
  util::Pcg32 rng_fast(21), rng_ref(21);
  util::Pcg32 reward_rng(22);
  for (int t = 0; t < 500; ++t) {
    std::size_t fast = bandit.sample(rng_fast);

    auto p = bandit.probabilities();
    double u = rng_ref.uniform();
    std::size_t ref = bandit.arms() - 1;
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      acc += p[i];
      if (u < acc) {
        ref = i;
        break;
      }
    }
    ASSERT_EQ(fast, ref) << "step " << t;
    bandit.update(fast, reward_rng.uniform());
  }
}

TEST(Exp3, SampleFollowsDistribution) {
  Exp3 bandit(2, 0.2);
  for (int i = 0; i < 30; ++i) bandit.update(0, 1.0);
  util::Pcg32 rng(3);
  int arm0 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) arm0 += bandit.sample(rng) == 0;
  EXPECT_NEAR(static_cast<double>(arm0) / n, bandit.probability(0), 0.02);
}

TEST(Exp3, RejectsBadArguments) {
  EXPECT_THROW(Exp3(1, 0.1), util::RequireError);
  EXPECT_THROW(Exp3(2, 0.0), util::RequireError);
  EXPECT_THROW(Exp3(2, 1.5), util::RequireError);
  Exp3 bandit(2, 0.1);
  EXPECT_THROW(bandit.update(2, 0.5), util::RequireError);
  EXPECT_THROW(bandit.update(0, 1.5), util::RequireError);
  EXPECT_THROW(bandit.update(0, -0.1), util::RequireError);
  EXPECT_THROW(bandit.reset_arm(5), util::RequireError);
}

// Property: with K arms and gamma g, the floor g/K holds for every arm after
// arbitrary one-sided reward streams.
class Exp3FloorProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Exp3FloorProperty, FloorAfterOneSidedRewards) {
  auto [arms, gamma] = GetParam();
  Exp3 bandit(static_cast<std::size_t>(arms), gamma);
  for (int i = 0; i < 500; ++i) bandit.update(0, 1.0);
  auto p = bandit.probabilities();
  for (double v : p) EXPECT_GE(v, gamma / arms - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ArmsAndGamma, Exp3FloorProperty,
    ::testing::Combine(::testing::Values(2, 3, 8),
                       ::testing::Values(0.05, 0.12, 0.5)));

}  // namespace
}  // namespace dimmer::rl
