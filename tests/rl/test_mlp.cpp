#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rl/mlp.hpp"

namespace dimmer::rl {
namespace {

TEST(Mlp, ShapesAndSizes) {
  Mlp net({31, 30, 3}, 1);
  EXPECT_EQ(net.input_size(), 31);
  EXPECT_EQ(net.output_size(), 3);
  EXPECT_EQ(net.parameter_count(), 31u * 30 + 30 + 30 * 3 + 3);
  EXPECT_EQ(net.layers().size(), 2u);
  EXPECT_TRUE(net.layers()[0].relu);
  EXPECT_FALSE(net.layers()[1].relu);
}

TEST(Mlp, RejectsBadArchitecture) {
  EXPECT_THROW(Mlp({5}, 1), util::RequireError);
  EXPECT_THROW(Mlp({5, 0, 3}, 1), util::RequireError);
}

TEST(Mlp, ForwardRejectsWrongInputSize) {
  Mlp net({4, 3, 2}, 1);
  EXPECT_THROW(net.forward({1.0, 2.0}), util::RequireError);
}

TEST(Mlp, DeterministicInitialization) {
  Mlp a({8, 6, 2}, 7), b({8, 6, 2}, 7);
  std::vector<double> x = {1, -1, 0.5, 0, 0.2, -0.7, 0.9, 0.1};
  EXPECT_EQ(a.forward(x), b.forward(x));
  Mlp c({8, 6, 2}, 8);
  EXPECT_NE(a.forward(x), c.forward(x));
}

TEST(Mlp, ReluIsAppliedToHiddenLayer) {
  Mlp net({1, 1, 1}, 1);
  auto& layers = net.mutable_layers();
  layers[0].w = {1.0};
  layers[0].b = {0.0};
  layers[1].w = {1.0};
  layers[1].b = {0.0};
  EXPECT_DOUBLE_EQ(net.forward({2.0})[0], 2.0);
  EXPECT_DOUBLE_EQ(net.forward({-2.0})[0], 0.0);  // clipped by ReLU
}

TEST(Mlp, BackwardMatchesNumericalGradient) {
  Mlp net({3, 4, 2}, 3);
  std::vector<double> x = {0.5, -0.3, 0.8};
  // Loss = sum of outputs (dLoss/dOut = ones).
  auto loss = [&](const Mlp& m) {
    auto y = m.forward(x);
    return y[0] + y[1];
  };
  ForwardCache cache;
  net.forward_cached(x, cache);
  auto grads = net.make_grads();
  net.backward(cache, {1.0, 1.0}, grads);

  const double eps = 1e-6;
  Mlp probe = net;
  for (std::size_t li = 0; li < net.layers().size(); ++li) {
    for (std::size_t wi = 0; wi < net.layers()[li].w.size(); wi += 3) {
      probe.copy_parameters_from(net);
      probe.mutable_layers()[li].w[wi] += eps;
      double up = loss(probe);
      probe.mutable_layers()[li].w[wi] -= 2 * eps;
      double dn = loss(probe);
      double numeric = (up - dn) / (2 * eps);
      EXPECT_NEAR(grads[li].dw[wi], numeric, 1e-5)
          << "layer " << li << " weight " << wi;
    }
    for (std::size_t bi = 0; bi < net.layers()[li].b.size(); ++bi) {
      probe.copy_parameters_from(net);
      probe.mutable_layers()[li].b[bi] += eps;
      double up = loss(probe);
      probe.mutable_layers()[li].b[bi] -= 2 * eps;
      double dn = loss(probe);
      EXPECT_NEAR(grads[li].db[bi], (up - dn) / (2 * eps), 1e-5);
    }
  }
}

TEST(Mlp, AdamFitsSimpleRegression) {
  // Learn y = 2x - 1 on [-1, 1].
  Mlp net({1, 16, 1}, 5);
  Adam adam(net, Adam::Config{0.01, 0.9, 0.999, 1e-8});
  util::Pcg32 rng(6);
  auto grads = net.make_grads();
  ForwardCache cache;
  for (int step = 0; step < 2000; ++step) {
    Mlp::zero_grads(grads);
    double se = 0.0;
    for (int b = 0; b < 8; ++b) {
      double x = rng.uniform(-1.0, 1.0);
      double target = 2.0 * x - 1.0;
      auto y = net.forward_cached({x}, cache);
      double err = y[0] - target;
      se += err * err;
      net.backward(cache, {2.0 * err}, grads);
    }
    adam.step(net, grads, 1.0 / 8.0);
    (void)se;
  }
  double mse = 0.0;
  for (double x = -1.0; x <= 1.0; x += 0.1) {
    double err = net.forward({x})[0] - (2.0 * x - 1.0);
    mse += err * err;
  }
  EXPECT_LT(mse / 21.0, 1e-3);
}

TEST(Mlp, SaveLoadRoundTripPreservesOutputs) {
  Mlp net({5, 7, 3}, 9);
  std::stringstream ss;
  net.save(ss);
  Mlp loaded = Mlp::load(ss);
  std::vector<double> x = {0.1, -0.2, 0.3, -0.4, 0.5};
  auto a = net.forward(x);
  auto b = loaded.forward(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Mlp, LoadRejectsGarbage) {
  std::stringstream ss("not-a-net 1\n");
  EXPECT_THROW(Mlp::load(ss), util::RequireError);
}

TEST(Mlp, LoadRejectsTruncatedStream) {
  Mlp net({5, 7, 3}, 9);
  std::stringstream full;
  net.save(full);
  std::string text = full.str();
  // Cut at several depths: mid-header, mid-layer-header, mid-weights.
  for (std::size_t cut : {std::size_t{4}, text.size() / 4, text.size() / 2,
                          text.size() - 3}) {
    std::stringstream ss(text.substr(0, cut));
    EXPECT_THROW(Mlp::load(ss), util::RequireError) << "cut at " << cut;
  }
}

TEST(Mlp, LoadRejectsBadLayerHeader) {
  // in = 0 is not a layer.
  std::stringstream zero("dimmer-mlp 1\n1\n0 3 1\n");
  EXPECT_THROW(Mlp::load(zero), util::RequireError);
  // Absurd width (a corrupt count would otherwise allocate gigabytes).
  std::stringstream huge("dimmer-mlp 1\n1\n2 999999999 0\n");
  EXPECT_THROW(Mlp::load(huge), util::RequireError);
  // relu flag must be 0 or 1.
  std::stringstream relu("dimmer-mlp 1\n1\n2 1 7\n1 1\n0\n");
  EXPECT_THROW(Mlp::load(relu), util::RequireError);
}

TEST(Mlp, LoadRejectsMismatchedLayerChain) {
  // Layer 0 outputs 3 but layer 1 claims 4 inputs: a spliced/corrupt file.
  std::stringstream ss(
      "dimmer-mlp 1\n2\n"
      "2 3 1\n1 1 1 1 1 1\n0 0 0\n"
      "4 1 0\n1 1 1 1\n0\n");
  EXPECT_THROW(Mlp::load(ss), util::RequireError);
}

TEST(Mlp, LoadRejectsNonFiniteWeights) {
  // Whether the platform's stream parser accepts "nan"/"1e999" (yielding a
  // non-finite double) or chokes on it (failbit), the load must throw —
  // never hand back a net that outputs NaN.
  for (const char* bad : {"nan", "inf", "1e999"}) {
    std::stringstream ss(std::string("dimmer-mlp 1\n1\n2 1 0\n") + bad +
                         " 0.5\n0.25\n");
    EXPECT_THROW(Mlp::load(ss), util::RequireError) << bad;
  }
}

TEST(Mlp, FailedLoadDoesNotDisturbStreamlessState) {
  // load is a static factory: a throw must not leak a half-built net.
  // (Exercise it repeatedly to let ASan catch any leak/UB on the path.)
  for (int i = 0; i < 8; ++i) {
    std::stringstream ss("dimmer-mlp 1\n1\n2 1 0\n0.5\n");  // truncated
    EXPECT_THROW(Mlp::load(ss), util::RequireError);
  }
}

TEST(Mlp, CopyParametersRequiresSameShape) {
  Mlp a({4, 3, 2}, 1), b({4, 5, 2}, 1);
  EXPECT_THROW(a.copy_parameters_from(b), util::RequireError);
}

TEST(Adam, LearningRateIsAdjustable) {
  Mlp net({2, 2}, 1);
  Adam adam(net, Adam::Config{1e-3, 0.9, 0.999, 1e-8});
  adam.set_learning_rate(5e-4);
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 5e-4);
}

}  // namespace
}  // namespace dimmer::rl
